// Ablations of the design choices (experiment D7 and Section 6's "tradeoff
// continuum"):
//   (a) the beta sweep of the Columnsort switch -- pins, chips, load ratio,
//       delay, and volume as beta moves through [1/2, 1];
//   (b) hardwired vs programmable barrel shifters on the Revsort stage-2
//       boards (what hardwiring the rev(i) control bits buys);
//   (c) m/n sweep: how the advertised load ratio depends on how many output
//       wires the designer keeps.
#include <cstdio>

#include "bench_common.hpp"
#include "cost/resource_model.hpp"
#include "hyper/barrel_shifter.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/mathutil.hpp"

namespace {

void print_artifacts() {
  using namespace pcs;
  const std::size_t n = 1 << 16;
  const std::size_t m = n / 2;

  pcs::bench::artifact_header("D7a", "Columnsort beta continuum (n = 2^16)");
  std::printf("%8s %8s %8s %10s %10s %10s %10s %14s\n", "beta", "r", "s", "pins",
              "chips", "alpha", "delay", "volume");
  for (double beta : {0.5, 0.5625, 0.625, 0.6875, 0.75, 0.8125, 0.875, 1.0}) {
    auto sw = sw::ColumnsortSwitch::from_beta(n, beta, m);
    cost::ResourceReport r = cost::columnsort_report(sw.r(), sw.s(), m);
    std::printf("%8.4f %8zu %8zu %10zu %10zu %10.4f %10zu %14zu\n", sw.beta(),
                sw.r(), sw.s(), r.pins_per_chip, r.chip_count, r.load_ratio,
                r.gate_delays, r.volume_3d);
  }
  std::printf("(Table 1's continuum: pins/delay/volume rise with beta, chips fall,"
              " load ratio improves)\n");

  pcs::bench::artifact_header("D7b", "hardwired vs programmable barrel shifter");
  std::printf("%8s %22s %22s\n", "width", "hardwired depth/gates",
              "programmable depth/gates");
  for (std::size_t w : {16u, 64u, 256u}) {
    hyper::HardwiredBarrelShifter hard(w, w / 3);
    hyper::ProgrammableBarrelShifter prog(w);
    std::printf("%8zu %10u / %-10zu %10u / %-10zu\n", w, hard.data_path_depth(),
                hard.circuit().gate_count(), prog.data_path_depth(),
                prog.circuit().gate_count());
  }
  std::printf("(hardwiring rev(i) after fabrication removes 2 lg n data-path "
              "delays per shifter\n and all its gates -- the Figure 4 design "
              "decision)\n");

  pcs::bench::artifact_header("D7c", "load ratio vs kept outputs m (n = 2^16)");
  std::printf("%10s %16s %16s %18s\n", "m/n", "revsort alpha", "colsort b=3/4",
              "colsort b=5/8");
  auto c34 = sw::ColumnsortSwitch::from_beta(n, 0.75, m);
  auto c58 = sw::ColumnsortSwitch::from_beta(n, 0.625, m);
  for (double frac : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    auto mm = static_cast<std::size_t>(frac * n);
    cost::ResourceReport rr = cost::revsort_report(n, mm);
    cost::ResourceReport r34 = cost::columnsort_report(c34.r(), c34.s(), mm);
    cost::ResourceReport r58 = cost::columnsort_report(c58.r(), c58.s(), mm);
    std::printf("%10.3f %16.4f %16.4f %18.4f\n", frac, rr.load_ratio, r34.load_ratio,
                r58.load_ratio);
  }
  std::printf("(keeping more outputs dilutes epsilon: alpha = 1 - eps/m)\n");
}

void BM_FromBeta(benchmark::State& state) {
  for (auto _ : state) {
    auto sw = pcs::sw::ColumnsortSwitch::from_beta(1 << 16, 0.75, 1 << 15);
    benchmark::DoNotOptimize(sw.beta());
  }
}
BENCHMARK(BM_FromBeta);

void BM_ProgrammableShifterBuild(benchmark::State& state) {
  for (auto _ : state) {
    pcs::hyper::ProgrammableBarrelShifter sh(256);
    benchmark::DoNotOptimize(sh.data_path_depth());
  }
}
BENCHMARK(BM_ProgrammableShifterBuild);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
