// Shared helpers for the benchmark binaries.
//
// Every bench binary follows the same shape: print the paper artifact it
// regenerates (table rows / figure series) to stdout, then hand control to
// google-benchmark for the wall-clock measurements.  The printed part is the
// reproduction; the timed part characterizes the simulator itself.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "util/heap.hpp"

namespace pcs::bench {

/// Print a section header for a reproduced artifact.
inline void artifact_header(const std::string& id, const std::string& what) {
  std::printf("\n==== %s: %s ====\n", id.c_str(), what.c_str());
}

/// Standard main body: print artifacts via `print_artifacts()`, then run the
/// registered google-benchmark timings.  Heap pages are retained across
/// frees so the timings measure the simulator, not soft page faults from
/// the allocator returning every freed result buffer to the OS.
#define PCS_BENCH_MAIN(print_artifacts)                      \
  int main(int argc, char** argv) {                          \
    pcs::retain_freed_heap_pages();                          \
    print_artifacts();                                       \
    benchmark::Initialize(&argc, argv);                      \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                     \
    benchmark::Shutdown();                                   \
    return 0;                                                \
  }

}  // namespace pcs::bench
