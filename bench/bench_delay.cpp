// Reproduces the gate-delay claims (experiment D1): a message incurs
//   2 lg n           through a single hyperconcentrator chip (refs [1][2]),
//   3 lg n + O(1)    through the Revsort switch (Section 4),
//   4 beta lg n+O(1) through the Columnsort switch (Section 5).
//
// Three columns per design: the paper's closed-form, the resource model's
// count (formula + pad constants), and the *measured* gate depth of the
// reconstructed data-path circuits (selection-tree chips composed through
// the wiring; wiring and hardwired shifters contribute zero logic depth).
#include <cstdio>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "cost/resource_model.hpp"
#include "hyper/barrel_shifter.hpp"
#include "hyper/hyper_circuit.hpp"
#include "switch/columnsort_switch.hpp"
#include "util/mathutil.hpp"

namespace {

// Measured data-path depth through one w-by-w chip (cached across rows).
std::size_t measured_chip_depth(std::size_t w) {
  pcs::hyper::HyperCircuit hc(w);
  return hc.data_path_depth();
}

void print_artifacts() {
  using pcs::cost::DelayModel;
  const DelayModel dm{};                                  // default pads
  const DelayModel zero{.pad_delay = 0, .shifter_delay = 0};  // pure logic

  pcs::bench::artifact_header("D1a", "single chip: 2 lg n gate delays");
  std::printf("%8s %12s %12s %12s\n", "n", "paper 2lg n", "model", "measured");
  for (std::size_t n : {4u, 16u, 64u, 256u}) {
    std::printf("%8zu %12zu %12zu %12zu\n", n,
                pcs::core::hyper_chip_delay_formula(n), zero.chip_delay(n),
                measured_chip_depth(n));
  }

  pcs::bench::artifact_header("D1b", "Revsort switch: 3 lg n + O(1)");
  std::printf("%8s %14s %12s %18s\n", "n", "paper 3lg n+O1", "model",
              "measured (3 chips)");
  for (std::size_t side : {4u, 8u, 16u}) {
    const std::size_t n = side * side;
    std::size_t chip = measured_chip_depth(side);
    // Data path: 3 chip crossings; transposes and the hardwired shifter are
    // pure wiring (depth 0, verified by the barrel-shifter tests).
    std::size_t measured = 3 * chip + pcs::hyper::HardwiredBarrelShifter(side, 1)
                                          .data_path_depth();
    std::printf("%8zu %14zu %12zu %18zu\n", n,
                pcs::core::revsort_delay_formula(n, 0),
                pcs::cost::revsort_report(n, n / 2, zero).gate_delays, measured);
  }

  pcs::bench::artifact_header("D1c", "Columnsort switch: 4 beta lg n + O(1)");
  std::printf("%8s %6s %6s %8s %16s %12s %18s\n", "n", "r", "s", "beta",
              "paper 4b lg n", "model", "measured (2 chips)");
  for (auto [r, s] : {std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{64, 4},
                      std::pair<std::size_t, std::size_t>{128, 8},
                      std::pair<std::size_t, std::size_t>{256, 4}}) {
    const std::size_t n = r * s;
    pcs::sw::ColumnsortSwitch sw(r, s, n / 2);
    std::size_t measured = 2 * measured_chip_depth(r);
    std::printf("%8zu %6zu %6zu %8.3f %16zu %12zu %18zu\n", n, r, s, sw.beta(),
                pcs::core::columnsort_delay_formula(r, 0),
                pcs::cost::columnsort_report(r, s, n / 2, zero).gate_delays, measured);
  }

  pcs::bench::artifact_header(
      "D1e", "Section 1's clocked foil: prefix + butterfly");
  std::printf("%8s %14s %16s %14s\n", "n", "data delays", "control steps",
              "pins/chip");
  for (std::size_t n : {256u, 4096u, 65536u}) {
    auto r = pcs::cost::prefix_butterfly_report(n, zero);
    std::printf("%8zu %14zu %16zu %14zu\n", n, r.gate_delays, r.control_steps,
                r.pins_per_chip);
  }
  std::printf("(4 pins/chip and short data path, but lg n *clocked* control\n"
              " steps per setup -- the non-combinational design the paper's\n"
              " multichip switches outclass at setup time.)\n");

  pcs::bench::artifact_header(
      "D1d", "with I/O pad overhead (default 2/chip + 1/shifter)");
  std::printf("  revsort n=4096:    %zu gate delays (3 lg n = %zu)\n",
              pcs::cost::revsort_report(4096, 2048, dm).gate_delays,
              pcs::core::revsort_delay_formula(4096, 0));
  std::printf("  columnsort 256x16: %zu gate delays (4 lg r = %zu)\n",
              pcs::cost::columnsort_report(256, 16, 2048, dm).gate_delays,
              pcs::core::columnsort_delay_formula(256, 0));
}

void BM_HyperCircuitBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pcs::hyper::HyperCircuit hc(n);
    benchmark::DoNotOptimize(hc.data_path_depth());
  }
}
BENCHMARK(BM_HyperCircuitBuild)->Arg(32)->Arg(128);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
