// Reproduces the nearsorting bounds behind Theorems 3 and 4
// (experiments D2, D3):
//   D2 -- after Revsort Algorithm 1 a sqrt(n) x sqrt(n) mesh has at most
//         2*ceil(n^{1/4}) - 1 dirty rows, so the switch is an
//         O(n^{3/4})-nearsorter;
//   D3 -- Columnsort Algorithm 2 is an (s-1)^2-nearsorter;
// plus Section 6's "at most eight dirty rows" claim for repeated Revsort.
//
// Worst observed values over random + adversarial inputs are printed next
// to the bounds.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/adversary.hpp"
#include "message/traffic.hpp"
#include "sortnet/columnsort.hpp"
#include "sortnet/nearsort.hpp"
#include "sortnet/revsort.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace {

void print_artifacts() {
  using namespace pcs;
  Rng rng(3001);

  pcs::bench::artifact_header("D2 (Thm 3)", "Revsort Algorithm 1 dirty rows");
  std::printf("%10s %8s %14s %14s %16s %16s\n", "n", "side", "bound (rows)",
              "worst rows", "bound eps", "worst eps");
  for (std::size_t side : {8u, 16u, 32u, 64u, 128u}) {
    const std::size_t n = side * side;
    std::size_t bound = sortnet::algorithm1_dirty_row_bound(side);
    std::size_t worst_rows = 0;
    for (int t = 0; t < 200; ++t) {
      BitMatrix m = BitMatrix::from_row_major(
          rng.bernoulli_bits(n, rng.uniform01()), side, side);
      sortnet::revsort_algorithm1(m);
      worst_rows = std::max(worst_rows, m.dirty_row_count());
    }
    sw::RevsortSwitch swr(n, n);
    core::WorstCase wc = core::worst_epsilon_search(swr, 25, 120, rng);
    std::printf("%10zu %8zu %14zu %14zu %16zu %16zu\n", n, side, bound, worst_rows,
                swr.epsilon_bound(), wc.epsilon);
  }

  pcs::bench::artifact_header("D3 (Thm 4)", "Columnsort Algorithm 2 epsilon");
  std::printf("%10s %6s %6s %14s %14s\n", "n", "r", "s", "bound (s-1)^2",
              "worst eps");
  for (auto [r, s] : {std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{64, 8},
                      std::pair<std::size_t, std::size_t>{128, 8},
                      std::pair<std::size_t, std::size_t>{256, 16},
                      std::pair<std::size_t, std::size_t>{64, 16}}) {
    const std::size_t n = r * s;
    sw::ColumnsortSwitch swc(r, s, n);
    core::WorstCase wc = core::worst_epsilon_search(swc, 25, 120, rng);
    std::printf("%10zu %6zu %6zu %14zu %14zu\n", n, r, s, swc.epsilon_bound(),
                wc.epsilon);
  }

  pcs::bench::artifact_header("D2b (Sec 6)",
                              "repeated Revsort: <= 8 dirty rows");
  std::printf("%10s %8s %8s %14s\n", "n", "side", "reps", "worst rows");
  for (std::size_t side : {16u, 32u, 64u, 128u}) {
    const std::size_t n = side * side;
    std::size_t reps = sortnet::full_revsort_repetitions(side);
    std::size_t worst = 0;
    for (int t = 0; t < 100; ++t) {
      BitMatrix m = BitMatrix::from_row_major(
          rng.bernoulli_bits(n, rng.uniform01()), side, side);
      worst = std::max(worst, sortnet::revsort_repeated(m, reps));
    }
    std::printf("%10zu %8zu %8zu %14zu\n", n, side, reps, worst);
  }
}

void BM_Algorithm1(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  pcs::Rng rng(3002);
  pcs::BitMatrix m = pcs::BitMatrix::from_row_major(
      rng.bernoulli_bits(side * side, 0.5), side, side);
  for (auto _ : state) {
    pcs::BitMatrix copy = m;
    pcs::sortnet::revsort_algorithm1(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Algorithm1)->Arg(32)->Arg(128)->Arg(512);

void BM_Algorithm2(benchmark::State& state) {
  const std::size_t r = static_cast<std::size_t>(state.range(0));
  pcs::Rng rng(3003);
  pcs::BitMatrix m =
      pcs::BitMatrix::from_row_major(rng.bernoulli_bits(r * 16, 0.5), r, 16);
  for (auto _ : state) {
    pcs::BitMatrix copy = m;
    pcs::sortnet::columnsort_algorithm2(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Algorithm2)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
