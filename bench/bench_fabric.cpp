// Multi-hop fabric serving performance (experiment FB1): epochs per second
// of the fabric campaign loop as the hop count grows.  Every hop adds one
// fused route_batch dispatch per epoch plus the credit/VOQ bookkeeping, so
// the sweep shows how close the composition comes to the ideal 1/hops
// scaling over the single-switch loop.  The allocator axis (rr vs islip)
// isolates the arbitration cost from the routing cost.
//
// The pipelined twins (experiment F2) run a 4-hop fabric of columnsort
// (64 -> 32) nodes with epochs_in_flight in {1, 2, 4, 8}: the wavefront
// scheduler fuses the ready units of several in-flight epochs into ONE
// route_batch dispatch per switch kind.  The fusion amortizes the fixed
// per-dispatch cost (chunk setup, per-chunk routing scratch, trace
// bookkeeping), so the win is largest where the per-pattern kernel is
// small -- hence the small columnsort node, the shape every hop of a large
// multichip fabric actually has.  On kernel-dominated nodes (the revsort
// 256 sweep above) pipelining is wash, by design: patterns route
// independently, so fusing cannot shrink the kernel work itself.
#include "bench_common.hpp"
#include "fabric/fabric_sim.hpp"
#include "message/traffic.hpp"
#include "runtime/metrics.hpp"

namespace {

void print_artifacts() {
  pcs::bench::artifact_header(
      "FB1", "multi-hop fabric campaign loop, hop-count sweep (timings below)");
}

pcs::fabric::FabricSpec fabric_spec(std::size_t hops, const char* alloc) {
  pcs::fabric::FabricSpec spec;
  spec.topology =
      hops == 1 ? pcs::fabric::Topology::kSingle : pcs::fabric::Topology::kOmega;
  spec.hops = hops;
  spec.radix = 2;
  // Revsort(256 -> 192): guaranteed capacity 80 per node, so a moderate
  // load keeps every hop busy without saturating the drain phase.
  spec.node.family = "revsort";
  spec.node.n = 256;
  spec.node.m = 192;
  spec.credits = 8;
  spec.alloc = alloc;
  return spec;
}

pcs::fabric::FabricOptions bench_opts() {
  pcs::fabric::FabricOptions opts;
  opts.queue_depth = 4;
  opts.seed = 7200;
  opts.warmup_epochs = 4;
  opts.measure_epochs = 32;
  opts.drain_epochs_max = 256;
  opts.check_invariants = false;  // measure the loop, not the checker
  return opts;
}

pcs::fabric::FabricSpec pipelined_spec(std::size_t hops) {
  pcs::fabric::FabricSpec spec = fabric_spec(hops, "rr");
  // Columnsort(64 -> 32): the per-pattern routing kernel is cheap, so the
  // per-dispatch fixed costs the pipeline amortizes dominate the route time.
  spec.node.family = "columnsort";
  spec.node.n = 64;
  spec.node.m = 32;
  return spec;
}

void campaign_loop(benchmark::State& state, pcs::fabric::FabricSpec spec,
                   std::size_t epochs_in_flight = 1) {
  std::uint64_t dispatches = 0;
  for (auto _ : state) {
    pcs::fabric::FabricOptions opts = bench_opts();
    opts.epochs_in_flight = epochs_in_flight;
    pcs::fabric::FabricSim sim(
        spec, opts, [](std::size_t width) {
          return std::unique_ptr<pcs::traffic::TrafficSource>(
              std::make_unique<pcs::traffic::ComposedSource>(
                  pcs::traffic::PatternKind::kUniform,
                  std::make_unique<pcs::traffic::BernoulliProcess>(width, 0.5),
                  0.125));
        });
    pcs::rt::MetricsRegistry metrics;
    sim.run(metrics);
    dispatches += metrics.counter("route_batch_dispatches").value();
    benchmark::DoNotOptimize(dispatches);
  }
  // items = logical route_batch dispatches resolved across all hops (the
  // pipeline merges their physical execution but resolves the same units).
  state.SetItemsProcessed(static_cast<std::int64_t>(dispatches));
}

void BM_FabricHops1(benchmark::State& state) {
  campaign_loop(state, fabric_spec(1, "rr"));
}
void BM_FabricHops2(benchmark::State& state) {
  campaign_loop(state, fabric_spec(2, "rr"));
}
void BM_FabricHops3(benchmark::State& state) {
  campaign_loop(state, fabric_spec(3, "rr"));
}
void BM_FabricHops3ISlip(benchmark::State& state) {
  campaign_loop(state, fabric_spec(3, "islip"));
}

// F2 pipelined twins: the identical 4-hop campaign at increasing pipeline
// depth.  Serial (epochs_in_flight=1) is the baseline the others must beat.
void BM_FabricHops4Pipe1(benchmark::State& state) {
  campaign_loop(state, pipelined_spec(4), 1);
}
void BM_FabricHops4Pipe2(benchmark::State& state) {
  campaign_loop(state, pipelined_spec(4), 2);
}
void BM_FabricHops4Pipe4(benchmark::State& state) {
  campaign_loop(state, pipelined_spec(4), 4);
}
void BM_FabricHops4Pipe8(benchmark::State& state) {
  campaign_loop(state, pipelined_spec(4), 8);
}

BENCHMARK(BM_FabricHops1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricHops2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricHops3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricHops3ISlip)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricHops4Pipe1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricHops4Pipe2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricHops4Pipe4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricHops4Pipe8)->Unit(benchmark::kMillisecond);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
