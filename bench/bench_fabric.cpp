// Multi-hop fabric serving performance (experiment FB1): epochs per second
// of the fabric campaign loop as the hop count grows.  Every hop adds one
// fused route_batch dispatch per epoch plus the credit/VOQ bookkeeping, so
// the sweep shows how close the composition comes to the ideal 1/hops
// scaling over the single-switch loop.  The allocator axis (rr vs islip)
// isolates the arbitration cost from the routing cost.
#include "bench_common.hpp"
#include "fabric/fabric_sim.hpp"
#include "message/traffic.hpp"
#include "runtime/metrics.hpp"

namespace {

void print_artifacts() {
  pcs::bench::artifact_header(
      "FB1", "multi-hop fabric campaign loop, hop-count sweep (timings below)");
}

pcs::fabric::FabricSpec fabric_spec(std::size_t hops, const char* alloc) {
  pcs::fabric::FabricSpec spec;
  spec.topology =
      hops == 1 ? pcs::fabric::Topology::kSingle : pcs::fabric::Topology::kOmega;
  spec.hops = hops;
  spec.radix = 2;
  // Revsort(256 -> 192): guaranteed capacity 80 per node, so a moderate
  // load keeps every hop busy without saturating the drain phase.
  spec.node.family = "revsort";
  spec.node.n = 256;
  spec.node.m = 192;
  spec.credits = 8;
  spec.alloc = alloc;
  return spec;
}

pcs::fabric::FabricOptions bench_opts() {
  pcs::fabric::FabricOptions opts;
  opts.queue_depth = 4;
  opts.seed = 7200;
  opts.warmup_epochs = 4;
  opts.measure_epochs = 32;
  opts.drain_epochs_max = 256;
  opts.check_invariants = false;  // measure the loop, not the checker
  return opts;
}

void campaign_loop(benchmark::State& state, std::size_t hops,
                   const char* alloc) {
  std::uint64_t dispatches = 0;
  for (auto _ : state) {
    pcs::fabric::FabricSim sim(
        fabric_spec(hops, alloc), bench_opts(), [](std::size_t width) {
          return std::unique_ptr<pcs::traffic::TrafficSource>(
              std::make_unique<pcs::traffic::ComposedSource>(
                  pcs::traffic::PatternKind::kUniform,
                  std::make_unique<pcs::traffic::BernoulliProcess>(width, 0.5),
                  0.125));
        });
    pcs::rt::MetricsRegistry metrics;
    sim.run(metrics);
    dispatches += metrics.counter("route_batch_dispatches").value();
    benchmark::DoNotOptimize(dispatches);
  }
  // items = fused route_batch dispatches resolved across all hops.
  state.SetItemsProcessed(static_cast<std::int64_t>(dispatches));
}

void BM_FabricHops1(benchmark::State& state) { campaign_loop(state, 1, "rr"); }
void BM_FabricHops2(benchmark::State& state) { campaign_loop(state, 2, "rr"); }
void BM_FabricHops3(benchmark::State& state) { campaign_loop(state, 3, "rr"); }
void BM_FabricHops3ISlip(benchmark::State& state) {
  campaign_loop(state, 3, "islip");
}

BENCHMARK(BM_FabricHops1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricHops2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricHops3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricHops3ISlip)->Unit(benchmark::kMillisecond);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
