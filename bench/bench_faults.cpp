// Fault-tolerance ablation (extension; the surrounding MIT report's theme):
// how gracefully does each multichip switch degrade as whole chips die?
//
// Tables: delivered fraction and effective (measured) epsilon versus the
// number of dead chips, per stage, under random half load -- plus the
// pipelined throughput model applied to the degraded switches, which is the
// number a machine room actually watches.
#include <cstdio>

#include "bench_common.hpp"
#include "core/adversary.hpp"
#include "message/pipeline.hpp"
#include "sortnet/nearsort.hpp"
#include "plan/compile.hpp"
#include "plan/plan_switch.hpp"
#include "util/rng.hpp"

namespace {

void print_artifacts() {
  using namespace pcs;
  Rng rng(12001);
  const std::size_t n = 1024;  // side 32

  pcs::bench::artifact_header("faults", "Revsort switch, dead chips per stage");
  std::printf("%8s %8s %16s %16s %16s\n", "stage", "dead", "delivered frac",
              "measured eps", "msgs/cycle");
  msg::PipelineModel pipe{.payload_bits = 32, .gates_per_cycle = 8};
  for (std::size_t stage = 0; stage < 3; ++stage) {
    for (std::size_t dead = 0; dead <= 8; dead += 2) {
      std::vector<plan::ChipFault> faults;
      for (std::size_t c = 0; c < dead; ++c) {
        faults.push_back(plan::ChipFault{stage, c * 3 % 32});
      }
      plan::SwitchPlan p = plan::compile_revsort_plan(n, n);
      plan::apply_chip_faults(p, faults);
      plan::PlanSwitch sw(std::move(p));
      std::size_t delivered = 0, offered = 0, worst_eps = 0;
      for (int t = 0; t < 30; ++t) {
        BitVec valid = rng.bernoulli_bits(n, 0.5);
        offered += valid.count();
        delivered += sw.route(valid).routed_count();
        worst_eps = std::max(
            worst_eps, sortnet::min_nearsort_epsilon(sw.nearsorted_valid_bits(valid)));
      }
      double frac = offered ? static_cast<double>(delivered) / offered : 1.0;
      std::printf("%8zu %8zu %16.4f %16zu %16.2f\n", stage, dead, frac, worst_eps,
                  pipe.messages_per_cycle(frac * 0.5 * n));
    }
  }
  std::printf("(stage-0 losses are exactly the dead chips' own traffic; later\n"
              " stages lose concentrated bundles -- place weak chips early.)\n");

  pcs::bench::artifact_header("faults", "Columnsort switch, dead chips");
  std::printf("%8s %8s %16s %16s\n", "stage", "dead", "delivered frac",
              "measured eps");
  for (std::size_t stage = 0; stage < 2; ++stage) {
    for (std::size_t dead = 0; dead <= 4; ++dead) {
      std::vector<plan::ChipFault> faults;
      for (std::size_t c = 0; c < dead; ++c) faults.push_back(plan::ChipFault{stage, c});
      plan::SwitchPlan p = plan::compile_columnsort_plan(128, 8, 1024);
      plan::apply_chip_faults(p, faults);
      plan::PlanSwitch sw(std::move(p));
      std::size_t delivered = 0, offered = 0, worst_eps = 0;
      for (int t = 0; t < 30; ++t) {
        BitVec valid = rng.bernoulli_bits(1024, 0.5);
        offered += valid.count();
        delivered += sw.route(valid).routed_count();
        worst_eps = std::max(
            worst_eps, sortnet::min_nearsort_epsilon(sw.nearsorted_valid_bits(valid)));
      }
      std::printf("%8zu %8zu %16.4f %16zu\n", stage, dead,
                  offered ? static_cast<double>(delivered) / offered : 1.0,
                  worst_eps);
    }
  }
}

void BM_FaultyRoute(benchmark::State& state) {
  pcs::plan::SwitchPlan p = pcs::plan::compile_revsort_plan(1024, 1024);
  pcs::plan::apply_chip_faults(p, {pcs::plan::ChipFault{0, 3}, pcs::plan::ChipFault{1, 7}});
  pcs::plan::PlanSwitch sw(std::move(p));
  pcs::Rng rng(12002);
  pcs::BitVec valid = rng.bernoulli_bits(1024, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.route(valid));
  }
}
BENCHMARK(BM_FaultyRoute);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
