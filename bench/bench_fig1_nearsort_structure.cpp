// Reproduces Figure 1 (experiment F1): the structure of an
// epsilon-nearsorted 0/1 sequence -- a clean run of at least k - epsilon 1s,
// a dirty window of at most 2*epsilon bits, and a clean run of at least
// n - k - epsilon 0s (Lemma 1).
//
// We drive both multichip switches with random valid bits across a sweep of
// k and print the measured decomposition next to the Lemma 1 envelope.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/lemmas.hpp"
#include "sortnet/nearsort.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace {

void print_structure_table(const pcs::sw::ConcentratorSwitch& sw, pcs::Rng& rng) {
  const std::size_t n = sw.inputs();
  std::printf("switch %s, n=%zu, epsilon bound %zu\n", sw.name().c_str(), n,
              sw.epsilon_bound());
  std::printf("%8s %10s %10s %10s %10s %12s %14s\n", "k", "clean-1s", "window",
              "clean-0s", "eps-meas", "eps-bound", "lemma1-holds");
  for (std::size_t k = 0; k <= n; k += std::max<std::size_t>(1, n / 8)) {
    // Worst case over a handful of trials at this k.
    std::size_t worst_eps = 0, worst_window = 0;
    std::size_t clean1 = 0, clean0 = 0;
    bool lemma_ok = true;
    for (int t = 0; t < 20; ++t) {
      pcs::BitVec valid = rng.exact_weight_bits(n, k);
      pcs::BitVec arr = sw.nearsorted_valid_bits(valid);
      auto w = pcs::sortnet::dirty_window(arr);
      std::size_t eps = pcs::sortnet::min_nearsort_epsilon(arr);
      if (eps >= worst_eps) {
        worst_eps = eps;
        worst_window = w.dirty_length();
        clean1 = w.clean_ones;
        clean0 = w.clean_zeros;
      }
      lemma_ok = lemma_ok && pcs::core::lemma1_roundtrip(arr);
    }
    std::printf("%8zu %10zu %10zu %10zu %10zu %12zu %14s\n", k, clean1, worst_window,
                clean0, worst_eps, sw.epsilon_bound(), lemma_ok ? "yes" : "NO");
  }
}

void print_artifacts() {
  pcs::Rng rng(1001);
  pcs::bench::artifact_header("Figure 1", "nearsorted-sequence structure (Lemma 1)");
  pcs::sw::RevsortSwitch rev(1024, 1024);
  print_structure_table(rev, rng);
  std::printf("\n");
  pcs::sw::ColumnsortSwitch col(128, 8, 1024);
  print_structure_table(col, rng);
  std::printf(
      "\nLemma 1 envelope: clean-1s >= k - eps, window <= 2*eps, "
      "clean-0s >= n - k - eps.\n");
}

void BM_MinNearsortEpsilon(benchmark::State& state) {
  pcs::Rng rng(1002);
  pcs::BitVec v = rng.bernoulli_bits(static_cast<std::size_t>(state.range(0)), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pcs::sortnet::min_nearsort_epsilon(v));
  }
}
BENCHMARK(BM_MinNearsortEpsilon)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
