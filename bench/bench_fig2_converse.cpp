// Reproduces Figure 2 (experiment F2): the converse of Lemma 2 fails.  A
// switch can satisfy the (n, m, 1 - epsilon/m) partial-concentration
// contract while arranging its n-wide output so it is *not*
// epsilon-nearsorted: route m - epsilon of the k messages to the first m
// outputs and dump the remaining k - m + epsilon at the very end.  Whenever
// k + epsilon < (n + m)/2 those trailing 1s are more than epsilon positions
// out of place.
#include <cstdio>

#include "bench_common.hpp"
#include "core/lemmas.hpp"
#include "sortnet/nearsort.hpp"
#include "util/rng.hpp"

namespace {

void print_artifacts() {
  using namespace pcs::core;
  pcs::bench::artifact_header("Figure 2",
                              "a partial concentrator need not nearsort");
  struct Case {
    std::size_t n, m, eps, k;
  };
  const Case cases[] = {
      {64, 32, 4, 30},  {256, 128, 16, 120}, {1024, 512, 64, 500},
      {64, 32, 4, 44},  // premise fails: k + eps >= (n+m)/2
  };
  std::printf("%8s %8s %8s %8s %10s %12s %16s\n", "n", "m", "eps", "k", "premise",
              "eps-meas", "eps-nearsorted?");
  for (const Case& c : cases) {
    pcs::BitVec arr = figure2_arrangement(c.n, c.m, c.eps, c.k);
    bool premise = figure2_premise(c.n, c.m, c.eps, c.k);
    std::size_t measured = pcs::sortnet::min_nearsort_epsilon(arr);
    bool nearsorted = pcs::sortnet::is_nearsorted(arr, c.eps);
    std::printf("%8zu %8zu %8zu %8zu %10s %12zu %16s\n", c.n, c.m, c.eps, c.k,
                premise ? "holds" : "fails", measured, nearsorted ? "yes" : "no");
  }
  std::printf(
      "\nWhen the premise holds the arrangement is provably not epsilon-"
      "nearsorted\n(measured epsilon >> epsilon), yet m - eps of the first m "
      "outputs carry\nmessages, so the partial-concentration contract is "
      "satisfied.\n");

  // Small visual, matching the figure: n = 32, m = 16, eps = 2, k = 15.
  pcs::BitVec small = figure2_arrangement(32, 16, 2, 15);
  std::printf("\nexample arrangement (n=32, m=16, eps=2, k=15):\n  %s\n",
              small.to_string().c_str());
  std::printf("  first m=16 outputs: %s   (>= m - eps = 14 ones)\n",
              small.to_string().substr(0, 16).c_str());
}

void BM_Figure2Construction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto arr = pcs::core::figure2_arrangement(n, n / 2, n / 16, n / 2 - 1);
    benchmark::DoNotOptimize(arr);
  }
}
BENCHMARK(BM_Figure2Construction)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
