// Reproduces Figures 3 and 4 (experiments F3, F4): the 2D layout and 3D
// packaging of the Revsort-based switch.
//
// Figure 3: three columns of sqrt(n) hyperconcentrator chips joined by two
// full n-wire crossbars; area Theta(n^2), wiring-dominated.
// Figure 4: three stacks of sqrt(n) boards (stack 2 boards carry
// hyperconcentrator + hardwired barrel shifter); volume Theta(n^{3/2}).
#include <cstdio>

#include <algorithm>

#include "bench_common.hpp"
#include "cost/layout.hpp"
#include "cost/render.hpp"
#include "cost/resource_model.hpp"
#include "switch/revsort_switch.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace {

void print_artifacts() {
  using namespace pcs::cost;
  pcs::bench::artifact_header("Figure 3", "Revsort switch 2D layout");
  std::printf("%10s %10s %12s %14s %14s %12s\n", "n", "side", "width x height",
              "wiring area", "chip area", "area/n^2");
  for (std::size_t side : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const std::size_t n = side * side;
    Floorplan2D plan = revsort_floorplan(side);
    std::printf("%10zu %10zu %6zu x %-6zu %14zu %14zu %12.3f\n", n, side, plan.width,
                plan.height, plan.wiring_area(), plan.chip_area(),
                static_cast<double>(plan.area()) /
                    (static_cast<double>(n) * static_cast<double>(n)));
  }
  std::printf("(area/n^2 approaches 2: the two crossbars dominate -- Theta(n^2))\n");

  pcs::bench::artifact_header("Figure 3 drawing", "side = 8 floorplan");
  std::fputs(render_floorplan(revsort_floorplan(8), 4).c_str(), stdout);

  pcs::bench::artifact_header("Figure 4", "Revsort switch 3D packaging");
  std::printf("%10s %8s %22s %14s %14s\n", "n", "boards", "stack volumes", "total",
              "vol/n^1.5");
  for (std::size_t side : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const std::size_t n = side * side;
    Packaging3D p = revsort_packaging(side);
    std::printf("%10zu %8zu %6zu+%6zu+%6zu %14zu %14.3f\n", n, 3 * side,
                p.stacks[0].volume(), p.stacks[1].volume(), p.stacks[2].volume(),
                p.total_volume(),
                static_cast<double>(p.total_volume()) /
                    (static_cast<double>(n) * pcs::isqrt(n)));
  }
  std::printf("(vol/n^1.5 = 4 exactly: volume = 4 n^{3/2})\n");

  pcs::bench::artifact_header(
      "Figure 3 scenario", "n = 64, m = 28, k = 24 valid messages (the figure's)");
  {
    pcs::sw::RevsortSwitch sw(64, 28);
    pcs::Rng rng(2026);
    std::size_t min_routed = 64, trials = 200;
    for (std::size_t t = 0; t < trials; ++t) {
      pcs::BitVec valid = rng.exact_weight_bits(64, 24);
      min_routed = std::min(min_routed, sw.route(valid).routed_count());
    }
    std::printf("  routed 24/24 in every one of %zu random placements: %s "
                "(min %zu)\n",
                trials, min_routed == 24 ? "yes" : "no", min_routed);
    std::printf("  (the figure shows all 24 paths established; the worst-case\n"
                "   bound alpha*m is pessimistic -- see D4b for the typical "
                "epsilon)\n");
  }

  pcs::bench::artifact_header("Figure 4 detail", "stage-2 board (n = 4096)");
  Packaging3D p = revsort_packaging(64);
  for (const Stack& s : p.stacks) {
    std::printf("  %-32s %zu boards of %zu x %zu\n", s.label.c_str(), s.boards,
                s.board_width, s.board_height);
  }
  ResourceReport r = revsort_report(4096, 2048);
  std::printf("  shifter control pins hardwired per board: %zu (rev(i))\n",
              r.pins_per_chip - 2 * 64);

  pcs::bench::artifact_header("Figure 4 drawing", "side = 16 stacks");
  std::fputs(render_packaging(revsort_packaging(16)).c_str(), stdout);
}

void BM_RevsortFloorplan(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto plan = pcs::cost::revsort_floorplan(side);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_RevsortFloorplan)->Arg(64)->Arg(256);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
