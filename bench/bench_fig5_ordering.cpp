// Reproduces Figure 5 (experiment F5): row-major and column-major positions
// of the elements of a 6x3 matrix, plus a verification sweep of the
// RM/CM index algebra the Columnsort wiring is built on.
#include <cstdio>

#include "bench_common.hpp"
#include "switch/wiring.hpp"
#include "util/mathutil.hpp"

namespace {

void print_artifacts() {
  using namespace pcs;
  pcs::bench::artifact_header("Figure 5", "row-major vs column-major, 6x3 matrix");
  const std::size_t r = 6, s = 3;
  std::printf("row-major:            column-major:\n");
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < s; ++j) std::printf("%4zu", row_major(i, j, s));
    std::printf("      ");
    for (std::size_t j = 0; j < s; ++j) std::printf("%4zu", col_major(i, j, r));
    std::printf("\n");
  }

  pcs::bench::artifact_header("Figure 5 check",
                              "RM^-1 o CM = the stage 1 -> 2 Columnsort wiring");
  // The wiring sends column-major position x to row-major position x; show
  // the full permutation for the 6x3 example.
  sw::Permutation w = sw::cm_to_rm_wiring(r, s);
  std::printf("wire (chip j, pin i) -> (chip', pin'):\n");
  for (std::size_t j = 0; j < s; ++j) {
    for (std::size_t i = 0; i < r; ++i) {
      std::uint32_t d = w.dest(j * r + i);
      std::printf("  (%zu,%zu)->(%u,%u)", j, i, d / static_cast<std::uint32_t>(r),
                  d % static_cast<std::uint32_t>(r));
    }
    std::printf("\n");
  }
  std::printf("bijection: %s\n", w.is_bijection() ? "yes" : "NO");
}

void BM_CmToRmWiring(benchmark::State& state) {
  const std::size_t r = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto w = pcs::sw::cm_to_rm_wiring(r, 16);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_CmToRmWiring)->Arg(256)->Arg(4096);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
