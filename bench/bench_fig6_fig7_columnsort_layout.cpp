// Reproduces Figures 6, 7, and 8 (experiments F6, F7, F8): the 2D layout and
// 3D packaging of the Columnsort-based switch, including the s^2 interstack
// wire transposers of Figure 8 (w wires turned vertical-to-horizontal in
// Theta(w^2) volume).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "cost/layout.hpp"
#include "cost/render.hpp"
#include "switch/columnsort_switch.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace {

void print_artifacts() {
  using namespace pcs::cost;
  pcs::bench::artifact_header("Figure 6", "Columnsort switch 2D layout");
  std::printf("%10s %6s %6s %14s %14s %14s\n", "n", "r", "s", "width x height",
              "wiring area", "chip area");
  for (auto [r, s] : {std::pair<std::size_t, std::size_t>{8, 4},
                      std::pair<std::size_t, std::size_t>{64, 16},
                      std::pair<std::size_t, std::size_t>{256, 16},
                      std::pair<std::size_t, std::size_t>{1024, 64}}) {
    Floorplan2D plan = columnsort_floorplan(r, s);
    std::printf("%10zu %6zu %6zu %7zu x %-6zu %14zu %14zu\n", r * s, r, s, plan.width,
                plan.height, plan.wiring_area(), plan.chip_area());
  }

  pcs::bench::artifact_header("Figure 6 drawing", "8x4 floorplan");
  std::fputs(render_floorplan(columnsort_floorplan(8, 4), 2).c_str(), stdout);

  pcs::bench::artifact_header("Figure 7", "Columnsort switch 3D packaging");
  std::printf("%10s %6s %6s %12s %12s %12s %14s %12s\n", "n", "r", "s", "stack vol",
              "connectors", "conn vol", "total vol", "vol/n^(1+b)");
  for (auto [r, s] : {std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{256, 16},
                      std::pair<std::size_t, std::size_t>{512, 8},
                      std::pair<std::size_t, std::size_t>{4096, 16}}) {
    const std::size_t n = r * s;
    Packaging3D p = columnsort_packaging(r, s);
    double beta = std::log2(static_cast<double>(r)) / std::log2(static_cast<double>(n));
    double norm = static_cast<double>(p.total_volume()) /
                  (static_cast<double>(n) * static_cast<double>(r));
    std::printf("%10zu %6zu %6zu %12zu %12zu %12zu %14zu %9.3f (b=%.2f)\n", n, r, s,
                p.stack_volume(), p.connector_count, p.connector_volume(),
                p.total_volume(), norm, beta);
  }
  std::printf("(vol / (n * r) -> 2: volume = 2 n^{1+beta} + o())\n");

  pcs::bench::artifact_header(
      "Figure 6 scenario", "8x4 mesh, m = 18, k = 14 valid messages (the figure's)");
  {
    pcs::sw::ColumnsortSwitch sw(8, 4, 18);
    pcs::Rng rng(2027);
    std::size_t min_routed = 32, trials = 200;
    for (std::size_t t = 0; t < trials; ++t) {
      pcs::BitVec valid = rng.exact_weight_bits(32, 14);
      min_routed = std::min(min_routed, sw.route(valid).routed_count());
    }
    std::printf("  guaranteed capacity m - (s-1)^2 = %zu; min routed over %zu\n"
                "  random placements of 14 messages: %zu (the figure's scenario\n"
                "  routes all 14)\n",
                sw.guaranteed_capacity(), trials, min_routed);
  }

  pcs::bench::artifact_header("Figure 7 drawing", "r = 16, s = 4 stacks");
  std::fputs(render_packaging(columnsort_packaging(16, 4)).c_str(), stdout);

  pcs::bench::artifact_header("Figure 8", "wire transposer volume, w wires");
  std::printf("%8s %12s\n", "w", "volume");
  for (std::size_t w : {1u, 2u, 4u, 8u, 16u, 64u, 256u}) {
    std::printf("%8zu %12zu\n", w, wire_transposer_volume(w));
  }
  std::printf("(Theta(w^2), as in the figure's w = 4 example)\n");
}

void BM_ColumnsortPackaging(benchmark::State& state) {
  const std::size_t r = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto p = pcs::cost::columnsort_packaging(r, 16);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ColumnsortPackaging)->Arg(256)->Arg(4096);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
