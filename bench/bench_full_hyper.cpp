// Reproduces Section 6's full-sorting variants (experiment D8): multichip
// *hyper*concentrators from complete Revsort (repetitions + Shearsort) and
// complete eight-step Columnsort.
//
// For each size: structural chip-pass count (Revsort: 2 lg lg n + 6 in our
// accounting vs the paper's 2 lg lg n + 4 -- see EXPERIMENTS.md D8), delay
// (ours vs the paper's printed 4 lg n lg lg n + 8 lg n formula), chip count,
// volume, and a correctness sweep confirming full hyperconcentration.
#include <cstdio>

#include "bench_common.hpp"
#include "cost/layout.hpp"
#include "cost/render.hpp"
#include "cost/resource_model.hpp"
#include "switch/full_sort_hyper.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace {

bool verify_hyper(const pcs::sw::ConcentratorSwitch& sw, pcs::Rng& rng, int trials) {
  for (int t = 0; t < trials; ++t) {
    pcs::BitVec valid = rng.bernoulli_bits(sw.inputs(), rng.uniform01());
    pcs::sw::SwitchRouting r = sw.route(valid);
    if (!r.is_partial_injection()) return false;
    const std::size_t k = valid.count();
    if (r.routed_count() != k) return false;
    for (std::size_t j = 0; j < sw.outputs(); ++j) {
      if ((r.input_of_output[j] >= 0) != (j < k)) return false;
    }
  }
  return true;
}

void print_artifacts() {
  using namespace pcs;
  Rng rng(6001);
  const cost::DelayModel zero{.pad_delay = 0, .shifter_delay = 0};

  pcs::bench::artifact_header("D8a", "full-Revsort hyperconcentrator");
  std::printf("%10s %6s %8s %14s %12s %14s %10s %12s %8s\n", "n", "reps",
              "passes", "delay(model)", "paper-delay", "chips", "pins",
              "volume", "sorts?");
  for (std::size_t side : {8u, 16u, 32u, 64u}) {
    const std::size_t n = side * side;
    sw::FullRevsortHyper sw(n);
    cost::ResourceReport r = cost::full_revsort_report(n, zero);
    bool ok = verify_hyper(sw, rng, 40) && sw.extra_phases_used() == 0;
    std::printf("%10zu %6zu %8zu %14zu %12zu %14zu %10zu %12zu %8s\n", n,
                sw.repetitions(), sw.chip_passes(), r.gate_delays,
                cost::paper_full_revsort_delay_formula(n), r.chip_count,
                r.pins_per_chip, r.volume_3d, ok ? "yes" : "NO");
  }
  std::printf("(paper's Section 4-consistent per-chip delay gives passes * lg n;\n"
              " the printed Section 6 formula is ~2x that -- flagged in "
              "EXPERIMENTS.md)\n");

  pcs::bench::artifact_header("D8b", "full-Columnsort hyperconcentrator");
  std::printf("%10s %6s %6s %8s %14s %14s %10s %12s %8s\n", "n", "r", "s",
              "passes", "delay(model)", "paper 8b lg n", "chips", "volume",
              "sorts?");
  for (auto [r, s] : {std::pair<std::size_t, std::size_t>{32, 4},
                      std::pair<std::size_t, std::size_t>{128, 8},
                      std::pair<std::size_t, std::size_t>{512, 8},
                      std::pair<std::size_t, std::size_t>{512, 16}}) {
    const std::size_t n = r * s;
    sw::FullColumnsortHyper sw(r, s);
    cost::ResourceReport rep = cost::full_columnsort_report(r, s, zero);
    bool ok = verify_hyper(sw, rng, 40);
    // Paper: 8 beta lg n + O(1) = 8 lg r.
    std::printf("%10zu %6zu %6zu %8zu %14zu %14u %10zu %12zu %8s\n", n, r, s,
                sw::FullColumnsortHyper::kChipPasses, rep.gate_delays,
                8 * ceil_log2(r), rep.chip_count, rep.volume_3d, ok ? "yes" : "NO");
  }

  pcs::bench::artifact_header("D8 packaging",
                              "full-Revsort stacks (Section 6, side = 16)");
  std::fputs(pcs::cost::render_packaging(pcs::cost::full_revsort_packaging(16))
                 .c_str(),
             stdout);

  pcs::bench::artifact_header(
      "D8c", "partial vs full: what full sorting costs (n = 4096)");
  cost::ResourceReport part = cost::revsort_report(4096, 4096, zero);
  cost::ResourceReport full = cost::full_revsort_report(4096, zero);
  std::printf("  revsort partial: delay %zu, chips %zu, volume %zu\n",
              part.gate_delays, part.chip_count, part.volume_3d);
  std::printf("  revsort full:    delay %zu, chips %zu, volume %zu\n",
              full.gate_delays, full.chip_count, full.volume_3d);
  std::printf("  -> %.2fx delay, %.2fx chips for epsilon 0 instead of %zu\n",
              static_cast<double>(full.gate_delays) / part.gate_delays,
              static_cast<double>(full.chip_count) / part.chip_count, part.epsilon);
}

void BM_FullRevsortRoute(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  pcs::sw::FullRevsortHyper sw(n);
  pcs::Rng rng(6002);
  pcs::BitVec valid = rng.bernoulli_bits(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.route(valid));
  }
}
BENCHMARK(BM_FullRevsortRoute)->Arg(1 << 10)->Arg(1 << 12);

void BM_FullColumnsortRoute(benchmark::State& state) {
  pcs::sw::FullColumnsortHyper sw(512, 8);
  pcs::Rng rng(6003);
  pcs::BitVec valid = rng.bernoulli_bits(4096, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.route(valid));
  }
}
BENCHMARK(BM_FullColumnsortRoute);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
