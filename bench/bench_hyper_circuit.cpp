// Gate-level substrate characterization (experiment P1 / D1 support): size,
// depth, and evaluation throughput of the reconstructed hyperconcentrator
// chip circuit across widths, plus the control-vs-data depth split that
// justifies charging messages only 2 lg n.
#include <cstdio>

#include "bench_common.hpp"
#include "gates/evaluator.hpp"
#include "hyper/hyper_circuit.hpp"
#include "util/rng.hpp"

namespace {

void print_artifacts() {
  pcs::bench::artifact_header("gate-level chip", "size and depth vs width");
  std::printf("%8s %12s %12s %14s %16s\n", "n", "gates", "data depth",
              "control depth", "gates/n^2");
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    pcs::hyper::HyperCircuit hc(n);
    std::printf("%8zu %12zu %12u %14u %16.2f\n", n, hc.gate_count(),
                hc.data_path_depth(), hc.control_path_depth(),
                static_cast<double>(hc.gate_count()) /
                    (static_cast<double>(n) * static_cast<double>(n)));
  }
  std::printf(
      "(data depth = 2 lg n exactly; control depth is setup-time only;\n"
      " gates/n^2 bounded -- the Theta(n^2) area of the published design)\n");
}

void BM_CircuitEvaluateScalar(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  pcs::hyper::HyperCircuit hc(n);
  pcs::Rng rng(8001);
  pcs::BitVec valid = rng.bernoulli_bits(n, 0.5);
  pcs::BitVec data = rng.bernoulli_bits(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hc.evaluate(valid, data));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CircuitEvaluateScalar)->Arg(32)->Arg(128)->Arg(256);

void BM_CircuitEvaluateLanes(benchmark::State& state) {
  // 64 patterns per pass through the word-parallel evaluator.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  pcs::hyper::HyperCircuit hc(n);
  pcs::gates::Evaluator eval(hc.circuit());
  pcs::Rng rng(8002);
  std::vector<std::uint64_t> lanes(2 * n);
  for (auto& w : lanes) w = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate_lanes(lanes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_CircuitEvaluateLanes)->Arg(32)->Arg(128)->Arg(256);

void BM_CircuitConstruction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pcs::hyper::HyperCircuit hc(n);
    benchmark::DoNotOptimize(hc.gate_count());
  }
}
BENCHMARK(BM_CircuitConstruction)->Arg(64)->Arg(256);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
