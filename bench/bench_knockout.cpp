// Application bench: concentrators in their natural habitat, the knockout
// packet switch.  Per-output N-to-L concentrators accept up to L of N
// simultaneous packets; the binomial tail makes loss fall steeply in L.
// We compare per-port implementations: perfect single-chip, the paper's
// Revsort multichip switch, and the prefix+butterfly foil -- measured loss
// against the analytic prediction.
#include <cstdio>

#include "bench_common.hpp"
#include "network/knockout.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace {

using Factory = std::function<std::unique_ptr<pcs::sw::ConcentratorSwitch>(
    std::size_t, std::size_t)>;

Factory hyper_ports() {
  return [](std::size_t n, std::size_t m) {
    return std::make_unique<pcs::sw::HyperSwitch>(n, m);
  };
}

Factory revsort_ports() {
  return [](std::size_t n, std::size_t m) {
    return std::make_unique<pcs::sw::RevsortSwitch>(n, m);
  };
}

void print_artifacts() {
  using pcs::net::KnockoutSwitch;
  pcs::bench::artifact_header(
      "knockout", "loss rate vs accept lines L (N = 64, uniform load 0.9)");
  std::printf("%6s %16s %16s %16s\n", "L", "predicted", "hyper ports",
              "revsort ports");
  for (std::size_t accept : {2u, 4u, 8u, 16u, 32u}) {
    double predicted = KnockoutSwitch::predicted_loss(64, accept, 0.9);
    pcs::Rng ra(13001), rb(13001);
    KnockoutSwitch perfect(64, accept, hyper_ports());
    KnockoutSwitch partial(64, accept, revsort_ports());
    auto sp = perfect.simulate_uniform(0.9, 800, ra);
    auto sq = partial.simulate_uniform(0.9, 800, rb);
    std::printf("%6zu %16.6f %16.6f %16.6f\n", accept, predicted, sp.loss_rate(),
                sq.loss_rate());
  }
  std::printf(
      "(the knockout principle: loss collapses as L grows; the multichip\n"
      " partial concentrator tracks the perfect ports -- its epsilon only\n"
      " bites when more than m - eps packets collide, which the binomial\n"
      " tail already made rare.)\n");

  pcs::bench::artifact_header("knockout", "loss vs offered load (N = 64, L = 8)");
  std::printf("%8s %16s %16s\n", "load", "predicted", "measured (hyper)");
  for (double load : {0.3, 0.6, 0.9, 1.0}) {
    pcs::Rng rng(13002);
    KnockoutSwitch sw(64, 8, hyper_ports());
    auto stats = sw.simulate_uniform(load, 800, rng);
    std::printf("%8.2f %16.8f %16.8f\n", load,
                KnockoutSwitch::predicted_loss(64, 8, load), stats.loss_rate());
  }
}

void BM_KnockoutSlot(benchmark::State& state) {
  pcs::net::KnockoutSwitch sw(64, 8, hyper_ports());
  pcs::Rng rng(13003);
  std::vector<std::int32_t> dests(64);
  for (auto& d : dests) {
    d = rng.chance(0.9) ? static_cast<std::int32_t>(rng.below(64)) : -1;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.route_slot(dests));
  }
}
BENCHMARK(BM_KnockoutSlot);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
