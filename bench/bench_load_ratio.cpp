// Reproduces the load-ratio claims (experiments D4, D5):
//   D4 -- the partial-concentration contract: for k <= alpha*m every valid
//         message is routed; beyond, at least alpha*m outputs fill.  We
//         sweep k, report the measured lossless threshold (largest k with
//         zero loss over trials), and compare against the guaranteed
//         capacity m - epsilon from Lemma 2.
//   D5 -- an (n/alpha, m/alpha, alpha) partial concentrator substituted for
//         an n-by-m perfect concentrator.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/epsilon_stats.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/perfect_from_partial.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace {

void sweep_switch(const pcs::sw::ConcentratorSwitch& sw, pcs::Rng& rng) {
  const std::size_t n = sw.inputs();
  const std::size_t m = sw.outputs();
  const std::size_t capacity = sw.guaranteed_capacity();
  std::printf("\n%s: n=%zu m=%zu epsilon=%zu alpha=%.4f capacity=%zu\n",
              sw.name().c_str(), n, m, sw.epsilon_bound(), sw.load_ratio_bound(),
              capacity);
  std::printf("%8s %10s %12s %12s\n", "k", "routed-min", "routed-avg", "lossless");
  std::size_t measured_threshold = 0;
  bool still_lossless = true;
  for (std::size_t k = 0; k <= n; k += std::max<std::size_t>(1, n / 12)) {
    std::size_t min_routed = n + 1;
    std::size_t total = 0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
      pcs::BitVec valid = rng.exact_weight_bits(n, k);
      std::size_t routed = sw.route(valid).routed_count();
      min_routed = std::min(min_routed, routed);
      total += routed;
    }
    bool lossless = (min_routed == k);
    if (still_lossless && lossless) {
      measured_threshold = k;
    } else {
      still_lossless = still_lossless && lossless;
    }
    std::printf("%8zu %10zu %12.1f %12s\n", k, min_routed,
                static_cast<double>(total) / trials, lossless ? "yes" : "no");
  }
  std::printf("guaranteed lossless up to k=%zu; measured lossless through k=%zu "
              "(random patterns)\n",
              capacity, measured_threshold);
}

void print_artifacts() {
  pcs::Rng rng(4001);
  pcs::bench::artifact_header("D4", "partial-concentration contract, k sweep");
  pcs::sw::HyperSwitch hyper(1024, 512);
  sweep_switch(hyper, rng);
  pcs::sw::RevsortSwitch rev(1024, 768);
  sweep_switch(rev, rng);
  pcs::sw::ColumnsortSwitch col(128, 8, 768);
  sweep_switch(col, rng);
  pcs::sw::ColumnsortSwitch col_wide(256, 4, 768);
  sweep_switch(col_wide, rng);

  pcs::bench::artifact_header(
      "D4b", "epsilon distribution: typical vs worst vs theorem bound");
  std::printf("%-28s %8s %8s %8s %8s %8s %8s %10s\n", "switch", "density", "mean",
              "p50", "p90", "p99", "max", "bound");
  {
    pcs::sw::RevsortSwitch sw(1024, 1024);
    for (double d : {0.25, 0.5, 0.75}) {
      auto s = pcs::core::collect_epsilon_stats(sw, 300, d, rng);
      std::printf("%-28s %8.2f %8.1f %8zu %8zu %8zu %8zu %10zu\n",
                  sw.name().c_str(), d, s.mean, s.p50, s.p90, s.p99, s.max,
                  sw.epsilon_bound());
    }
  }
  {
    pcs::sw::ColumnsortSwitch sw(128, 8, 1024);
    for (double d : {0.25, 0.5, 0.75}) {
      auto s = pcs::core::collect_epsilon_stats(sw, 300, d, rng);
      std::printf("%-28s %8.2f %8.1f %8zu %8zu %8zu %8zu %10zu\n",
                  sw.name().c_str(), d, s.mean, s.p50, s.p90, s.p99, s.max,
                  sw.epsilon_bound());
    }
  }
  std::printf("(retry traffic is driven by the typical epsilon, not the bound.)\n");

  pcs::bench::artifact_header("D5", "perfect concentrator from a partial one");
  // Inner: columnsort (r=128, s=8) n=1024, m_inner=1024, eps=49 ->
  // capacity 975.  Wrap as a 512-by-487 perfect concentrator and check the
  // min(k, m) guarantee.
  pcs::sw::ColumnsortSwitch inner(128, 8, 1024);
  pcs::sw::PerfectFromPartial perfect(inner, 512, 487);
  std::printf("inner %s; wrapper n=%zu m=%zu, wire overhead %.3fx\n",
              inner.name().c_str(), perfect.inputs(), perfect.outputs(),
              perfect.input_overhead());
  std::printf("%8s %12s %12s\n", "k", "guaranteed", "routed-min");
  for (std::size_t k = 0; k <= 512; k += 64) {
    std::size_t min_routed = 1024;
    for (int t = 0; t < 20; ++t) {
      pcs::BitVec valid = rng.exact_weight_bits(512, k);
      min_routed = std::min(min_routed, perfect.route(valid).routed_count());
    }
    std::printf("%8zu %12zu %12zu\n", k, perfect.guaranteed_routed(k), min_routed);
  }
}

void BM_RouteRevsort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  pcs::sw::RevsortSwitch sw(n, n / 2);
  pcs::Rng rng(4002);
  pcs::BitVec valid = rng.bernoulli_bits(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.route(valid));
  }
}
BENCHMARK(BM_RouteRevsort)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
