// Multi-tier concentration (extension D14): the L-level generalization of
// the paper's deployment -- board, cabinet, and machine tiers each built
// from concentrator switches -- plus what happens when a tier's switches
// are the paper's multichip partial concentrators instead of perfect ones.
#include <cstdio>

#include "bench_common.hpp"
#include "network/multistage.hpp"
#include "util/rng.hpp"

namespace {

void print_artifacts() {
  using namespace pcs::net;
  pcs::bench::artifact_header(
      "D14a", "three-tier network: survivors per level vs offered load");
  // 512 sources -> 32x(16->8) -> 16x(16->8) -> 2x(64->32): trunk 64.
  MultistageNetwork perfect(512,
                            {MultistageNetwork::LevelSpec{16, 8},
                             MultistageNetwork::LevelSpec{16, 8},
                             MultistageNetwork::LevelSpec{64, 32}},
                            hyper_factory());
  MultistageNetwork mixed(512,
                          {MultistageNetwork::LevelSpec{16, 8},
                           MultistageNetwork::LevelSpec{16, 8},
                           MultistageNetwork::LevelSpec{64, 32}},
                          revsort_or_hyper_factory());
  std::printf("(trunk width %zu, %zu switches total; end-to-end capacity %zu)\n",
              perfect.trunk_width(), perfect.total_switches(),
              perfect.guaranteed_end_to_end_capacity());
  std::printf("%10s %10s %12s %12s %12s %12s\n", "k offered", "variant", "after L1",
              "after L2", "at trunk", "loss");
  pcs::Rng rng(14001);
  for (std::size_t k : {32u, 64u, 128u, 256u, 448u}) {
    pcs::BitVec valid = rng.exact_weight_bits(512, k);
    auto sp = perfect.route_once(valid);
    auto sm = mixed.route_once(valid);
    std::printf("%10zu %10s %12zu %12zu %12zu %12zu\n", k, "perfect",
                sp.survivors[0], sp.survivors[1], sp.survivors[2],
                k - sp.survivors[2]);
    std::printf("%10s %10s %12zu %12zu %12zu %12zu\n", "", "revsort",
                sm.survivors[0], sm.survivors[1], sm.survivors[2],
                k - sm.survivors[2]);
  }
  std::printf("(losses concentrate at whichever tier saturates first; the all-\n"
              " revsort variant tracks the perfect one except inside its epsilon\n"
              " band.)\n");

  pcs::bench::artifact_header("D14b", "round simulation with buffered retries");
  std::printf("%10s %10s %12s %14s %20s\n", "arrival", "offered", "delivered",
              "mean-latency", "cuts per level");
  for (double p : {0.05, 0.12, 0.3}) {
    pcs::Rng r2(14002);
    auto stats = perfect.simulate(p, 150, r2);
    std::printf("%10.2f %10zu %12zu %14.2f      %zu / %zu / %zu\n", p, stats.offered,
                stats.delivered, stats.mean_latency(), stats.cut_at_level[0],
                stats.cut_at_level[1], stats.cut_at_level[2]);
  }
}

void BM_MultistageRoute(benchmark::State& state) {
  pcs::net::MultistageNetwork net(512,
                                  {pcs::net::MultistageNetwork::LevelSpec{16, 8},
                                   pcs::net::MultistageNetwork::LevelSpec{16, 8},
                                   pcs::net::MultistageNetwork::LevelSpec{64, 32}},
                                  pcs::net::hyper_factory());
  pcs::Rng rng(14003);
  pcs::BitVec valid = rng.bernoulli_bits(512, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.route_once(valid));
  }
}
BENCHMARK(BM_MultistageRoute);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
