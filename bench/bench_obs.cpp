// Observability overhead: what the tracing layer costs in each of its three
// states, measured on the hottest kernel in the library (the batched Revsort
// counting path, same shape and seed as bench_plan's
// BM_PlanRouteBatchRevsort/16384).
//
// The acceptance bar is "compiled in but disabled within 2% of compiled
// out"; the compiled-out side comes from a -DPCS_TRACING=OFF build of this
// same binary, so the comparison is like for like on one machine:
//
//   cmake -B build-notrace -S . -DPCS_TRACING=OFF
//   cmake --build build-notrace -j --target bench_obs
//   for b in build build-notrace; do
//     ./$b/bench/bench_obs --benchmark_filter=Disabled
//       --benchmark_min_time=2 --benchmark_repetitions=3
//       --benchmark_report_aggregates_only=true    (one line)
//   done
//
// The Enabled benchmarks bound the cost of actually recording: the faulty
// (scalar-path) variant emits one span per chip evaluation -- the worst
// span density in the library -- and the SpanGuard micro-benchmarks price a
// single instrumentation site.
#include <cstdio>

#include "bench_common.hpp"
#include "obs/trace.hpp"
#include "plan/compile.hpp"
#include "plan/plan_executor.hpp"
#include "util/rng.hpp"

namespace {

namespace obs = pcs::obs;
namespace plan = pcs::plan;

void print_artifacts() {
  pcs::bench::artifact_header("O1", "tracing build states");
  std::printf("tracing compiled in: %s\n", obs::kCompiledIn ? "yes" : "no");
  std::printf(
      "states measured: Disabled (gate check only), Enabled (spans+counters\n"
      "recorded and drained).  Compare Disabled here against the same\n"
      "benchmark in a -DPCS_TRACING=OFF build for the <2%% acceptance bar.\n");
}

// Same shape, seed, and batch as bench_plan's BM_PlanRouteBatchRevsort.
void route_batch_loop(benchmark::State& state, const plan::PlanExecutor& exec,
                      std::size_t batch) {
  pcs::Rng rng(7001);
  std::vector<pcs::BitVec> valids;
  valids.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    valids.push_back(rng.bernoulli_bits(exec.inputs(), 0.5));
  }
  std::size_t routed = 0;
  for (auto _ : state) {
    for (const auto& r : exec.route_batch(valids)) routed += r.routed_count();
    benchmark::DoNotOptimize(routed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch) *
                          static_cast<std::int64_t>(exec.inputs()));
}

// The acceptance benchmark: tracing sites present (when compiled in) but the
// tracer disabled, on the fast-path counting kernel.
void BM_ObsDisabledRouteBatchRevsort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  plan::PlanExecutor exec(plan::compile_revsort_plan(n, n / 2));
  route_batch_loop(state, exec, 64);
}
BENCHMARK(BM_ObsDisabledRouteBatchRevsort)->Arg(1 << 14);

// Recording cost on the fast path: one batch span per chunk plus the
// words_routed tally -- spans stay coarse, so this should track the
// disabled number closely.
void BM_ObsEnabledRouteBatchRevsort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  plan::PlanExecutor exec(plan::compile_revsort_plan(n, n / 2));
  obs::Tracer::instance().enable(obs::ClockMode::kTsc);
  route_batch_loop(state, exec, 64);
  obs::Tracer::instance().disable();
  obs::TraceSnapshot snap = obs::Tracer::instance().drain();
  state.counters["spans"] = static_cast<double>(snap.spans.size());
}
BENCHMARK(BM_ObsEnabledRouteBatchRevsort)->Arg(1 << 14);

// Worst span density: a faulted plan loses its counting kernel, so every
// chip evaluation in the scalar pipeline opens a span.
void BM_ObsEnabledRouteFaultyRevsort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  plan::SwitchPlan p = plan::compile_revsort_plan(n, n / 2);
  plan::apply_chip_faults(p, {{0, 0}});
  plan::PlanExecutor exec(std::move(p));
  pcs::Rng rng(7001);
  pcs::BitVec valid = rng.bernoulli_bits(n, 0.5);
  obs::Tracer::instance().enable(obs::ClockMode::kTsc);
  std::size_t routed = 0;
  for (auto _ : state) {
    routed += exec.route(valid).routed_count();
    benchmark::DoNotOptimize(routed);
  }
  obs::Tracer::instance().disable();
  obs::Tracer::instance().clear();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ObsEnabledRouteFaultyRevsort)->Arg(1 << 10);

// Price of one instrumentation site, disabled: the relaxed-load gate.
void BM_ObsSpanGuardDisabled(benchmark::State& state) {
  for (auto _ : state) {
    obs::SpanGuard span("bench.span", obs::cat::kPlan);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanGuardDisabled);

// Price of one recorded span: two clock reads plus a buffer append.
void BM_ObsSpanGuardEnabled(benchmark::State& state) {
  if (!obs::kCompiledIn) {
    state.SkipWithError("tracing compiled out");
    return;
  }
  obs::Tracer::instance().enable(obs::ClockMode::kTsc);
  for (auto _ : state) {
    obs::SpanGuard span("bench.span", obs::cat::kPlan);
    benchmark::DoNotOptimize(&span);
  }
  obs::Tracer::instance().disable();
  obs::Tracer::instance().clear();
}
BENCHMARK(BM_ObsSpanGuardEnabled);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
