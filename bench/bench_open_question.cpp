// Explores the open questions of Section 6:
//   (a) "For what f(p) can we build an (Omega(f(p)), m, 1 - o(p/m)) partial
//        concentrator with two stages of p-pin chips?"  The Columnsort
//        construction realizes f(p) = p^{2-eps'}; we tabulate the realized
//        (n, epsilon) frontier for a grid of pin budgets.
//   (b) "How large an f(p) with k stages?"  The MultipassColumnsortSwitch
//        adds passes; we measure (adversarially) how epsilon falls with the
//        pass count d, i.e. how much load ratio one extra chip crossing
//        (2 lg r gate delays) buys.
#include <cstdio>

#include "bench_common.hpp"
#include "core/adversary.hpp"
#include "switch/multipass_switch.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace {

void print_artifacts() {
  using namespace pcs;

  pcs::bench::artifact_header(
      "open Q (a)", "two-stage frontier: n vs pins p = 2r, eps = (s-1)^2");
  std::printf("%10s %10s %10s %14s %18s\n", "p (pins)", "s", "n = rs", "eps bound",
              "eps/p  (want o(1))");
  for (std::size_t r : {64u, 256u, 1024u}) {
    for (std::size_t s : {4u, 16u, 64u}) {
      if (r % s != 0) continue;
      const std::size_t p = 2 * r;
      const std::size_t n = r * s;
      const std::size_t eps = (s - 1) * (s - 1);
      std::printf("%10zu %10zu %10zu %14zu %18.4f\n", p, s, n, eps,
                  static_cast<double>(eps) / static_cast<double>(p));
    }
  }
  std::printf("(n = p^2/ (2*2) * s/r ... concretely n = (p/2) * s: pushing s up\n"
              " toward r reaches n ~ p^2/4 but epsilon grows as s^2 -- the\n"
              " f(p) = p^(2-eps') tradeoff the paper states.)\n");

  pcs::bench::artifact_header(
      "open Q (b)", "k-stage ablation: worst epsilon vs pass count (r=64, s=8)");
  std::printf("%8s %10s %14s %16s %16s %16s\n", "passes", "chips", "chip passes",
              "eps (same)", "eps (alt)", "delay/msg");
  Rng rng(9001);
  for (std::size_t d = 1; d <= 5; ++d) {
    sw::MultipassColumnsortSwitch same(64, 8, d, 512, sw::ReshapeSchedule::kSame);
    sw::MultipassColumnsortSwitch alt(64, 8, d, 512,
                                      sw::ReshapeSchedule::kAlternating);
    core::WorstCase ws = core::worst_epsilon_search(same, 30, 150, rng);
    core::WorstCase wa = core::worst_epsilon_search(alt, 30, 150, rng);
    std::printf("%8zu %10zu %14zu %16zu %16zu %16zu\n", d,
                same.bill_of_materials().total_chips(), same.chip_passes(),
                ws.epsilon, wa.epsilon, same.chip_passes() * 2 * ceil_log2(64));
  }
  std::printf(
      "(finding: repeating the SAME CM->RM conversion hits a fixed point --\n"
      " worst epsilon stays at Theorem 4's (s-1)^2 no matter how many passes;\n"
      " ALTERNATING the conversion direction, as full Columnsort's steps 2/4\n"
      " do, drops the worst epsilon to ~s-1 by d = 3.  Each extra pass costs\n"
      " one chip crossing = 2 lg r gate delays.)\n");

  pcs::bench::artifact_header(
      "open Q (b')", "same ablation at a wider mesh (r=256, s=16)");
  std::printf("%8s %16s %16s\n", "passes", "eps (same)", "eps (alt)");
  for (std::size_t d = 1; d <= 4; ++d) {
    sw::MultipassColumnsortSwitch same(256, 16, d, 2048, sw::ReshapeSchedule::kSame);
    sw::MultipassColumnsortSwitch alt(256, 16, d, 2048,
                                      sw::ReshapeSchedule::kAlternating);
    core::WorstCase ws = core::worst_epsilon_search(same, 15, 80, rng);
    core::WorstCase wa = core::worst_epsilon_search(alt, 15, 80, rng);
    std::printf("%8zu %16zu %16zu\n", d, ws.epsilon, wa.epsilon);
  }
}

void BM_MultipassRoute(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  pcs::sw::MultipassColumnsortSwitch sw(256, 16, d, 2048);
  pcs::Rng rng(9002);
  pcs::BitVec valid = rng.bernoulli_bits(4096, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.route(valid));
  }
}
BENCHMARK(BM_MultipassRoute)->Arg(1)->Arg(3)->Arg(5);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
