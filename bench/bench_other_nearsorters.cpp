// Section 6's last open question, made executable: "There may be
// epsilon-nearsorters based on networks other than the two-dimensional mesh
// to which we can apply Lemma 2.  What types of partial concentrator
// switches can we build?"
//
// We apply Lemma 2 to comparator networks: full Batcher odd-even merge sort
// (a hyperconcentrator with Theta(n lg^2 n) comparators), its stage-prefix
// truncations (partial concentrators whose epsilon falls stage by stage),
// and odd-even transposition prefixes (a poor nearsorter, included as the
// negative control).  The trade frontier printed here answers the question
// concretely: truncating Batcher buys delay at a quantified epsilon cost,
// bracketed between the mesh designs.
#include <cstdio>

#include "bench_common.hpp"
#include "core/adversary.hpp"
#include "sortnet/displacement.hpp"
#include "switch/comparator_switch.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace {

void print_artifacts() {
  using namespace pcs;
  Rng rng(11001);

  const std::size_t n = 256;
  pcs::bench::artifact_header(
      "other nearsorters", "truncated Batcher prefix: epsilon vs stages (n=256)");
  auto full = sortnet::ComparatorNetwork::odd_even_mergesort(n);
  std::printf("full network: %zu stages, %zu comparators\n", full.stage_count(),
              full.comparator_count());
  std::printf("%8s %14s %12s %16s\n", "stages", "comparators", "delay(2/st)",
              "worst epsilon");
  for (std::size_t st = full.stage_count(); st + 1 > 12; st -= 4) {
    sw::ComparatorSwitch sw = sw::ComparatorSwitch::truncated_batcher(n, n, st, n);
    core::WorstCase wc = core::worst_epsilon_search(sw, 25, 120, rng);
    std::printf("%8zu %14zu %12zu %16zu\n", st,
                sw.network().comparator_count(), sw.gate_delay_model(), wc.epsilon);
  }

  pcs::bench::artifact_header(
      "other nearsorters", "odd-even transposition prefix (negative control)");
  std::printf("%8s %16s\n", "rounds", "worst epsilon");
  for (std::size_t rounds : {8u, 32u, 64u, 128u}) {
    auto net = sortnet::ComparatorNetwork::odd_even_transposition(n, rounds);
    sw::ComparatorSwitch sw(net, n, n, "oet-prefix");
    core::WorstCase wc = core::worst_epsilon_search(sw, 20, 80, rng);
    std::printf("%8zu %16zu\n", rounds, wc.epsilon);
  }
  std::printf("(brick rounds move 1s at most one slot per round: epsilon decays\n"
              " only linearly -- the mesh and Batcher nearsorters are the point.)\n");

  pcs::bench::artifact_header(
      "other nearsorters", "inversion removal per network (n=256, density 0.5)");
  std::printf("%-28s %14s %14s\n", "network", "inversions in", "inversions out");
  {
    Rng r2(11005);
    BitVec in = r2.bernoulli_bits(n, 0.5);
    std::uint64_t inv_in = sortnet::inversion_count(in);
    struct Net { const char* label; sortnet::ComparatorNetwork net; };
    const Net nets[] = {
        {"batcher full", sortnet::ComparatorNetwork::odd_even_mergesort(n)},
        {"batcher half-stages",
         sortnet::ComparatorNetwork::odd_even_mergesort(n).truncated(18)},
        {"brick 32 rounds",
         sortnet::ComparatorNetwork::odd_even_transposition(n, 32)},
    };
    for (const Net& e : nets) {
      std::printf("%-28s %14llu %14llu\n", e.label,
                  static_cast<unsigned long long>(inv_in),
                  static_cast<unsigned long long>(
                      sortnet::inversion_count(e.net.apply(in))));
    }
  }

  pcs::bench::artifact_header(
      "other nearsorters", "cross-family comparison at n=256, m=192");
  std::printf("%-28s %10s %14s %12s\n", "design", "delay", "eps (adv.)",
              "area proxy");
  {
    sw::RevsortSwitch rev(n, 192);
    core::WorstCase wc = core::worst_epsilon_search(rev, 25, 120, rng);
    // 3 chips of 2 lg 16 plus shifter wiring.
    std::printf("%-28s %10zu %14zu %12s\n", rev.name().c_str(),
                static_cast<std::size_t>(3 * 2 * ceil_log2(16)), wc.epsilon, "3n sqrt(n)");
  }
  {
    sw::ColumnsortSwitch col(64, 4, 192);
    core::WorstCase wc = core::worst_epsilon_search(col, 25, 120, rng);
    std::printf("%-28s %10zu %14zu %12s\n", col.name().c_str(),
                static_cast<std::size_t>(2 * 2 * ceil_log2(64)),
                wc.epsilon, "2nr");
  }
  {
    sw::ComparatorSwitch bat = sw::ComparatorSwitch::batcher_hyper(n, 192);
    std::printf("%-28s %10zu %14u %12s\n", bat.name().c_str(),
                bat.gate_delay_model(), 0u, "n lg^2 n");
  }
  {
    auto half = full.truncated(24);
    sw::ComparatorSwitch tb(half, 192, n, "truncated-batcher");
    core::WorstCase wc = core::worst_epsilon_search(tb, 25, 120, rng);
    std::printf("%-28s %10zu %14zu %12s\n", tb.name().c_str(), tb.gate_delay_model(),
                wc.epsilon, "n lg^2 n");
  }
}

void BM_BatcherApply(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto net = pcs::sortnet::ComparatorNetwork::odd_even_mergesort(n);
  pcs::Rng rng(11002);
  pcs::BitVec in = rng.bernoulli_bits(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.apply(in));
  }
}
BENCHMARK(BM_BatcherApply)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
