// Plan-IR performance: wall-clock cost of routing through the shared
// PlanExecutor for every compiled family, scalar and batched.  The batched
// Revsort numbers run the same shapes as bench_sim_speed's
// BM_RouteBatchRevsort, so the two suites can be compared directly -- the
// refactor's acceptance bar is plan throughput within 5% of the pre-plan
// engine (they share the same counting kernels, so any gap is dispatch
// overhead).  Artifacts print each family's compiled structure.
#include <cstdio>

#include "bench_common.hpp"
#include "plan/compile.hpp"
#include "plan/plan_analysis.hpp"
#include "plan/plan_executor.hpp"
#include "util/rng.hpp"

namespace {

namespace plan = pcs::plan;

void print_artifacts() {
  pcs::bench::artifact_header("P2", "compiled switch plans (structure + tallies)");
  const plan::SwitchPlan plans[] = {
      plan::compile_revsort_plan(256, 128),
      plan::compile_columnsort_plan(64, 8, 256),
      plan::compile_multipass_plan(64, 8, 3, 256,
                                   plan::ReshapeSchedule::kAlternating),
      plan::compile_full_revsort_plan(256),
      plan::compile_full_columnsort_plan(64, 4),
  };
  for (const plan::SwitchPlan& p : plans) {
    std::printf("%s\n", p.summary().c_str());
    std::printf("%s\n", plan::analyze_plan(p).summary().c_str());
  }
  std::printf("(digest-pinned in tests/test_plan_ir.cpp; identical wiring is\n"
              " what makes the plan executor bit-for-bit with the legacy\n"
              " per-family recipes.)\n");
}

void route_batch_loop(benchmark::State& state, const plan::PlanExecutor& exec,
                      std::size_t batch) {
  pcs::Rng rng(7001);  // same seed/density as bench_sim_speed's loops
  std::vector<pcs::BitVec> valids;
  valids.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    valids.push_back(rng.bernoulli_bits(exec.inputs(), 0.5));
  }
  std::size_t routed = 0;
  for (auto _ : state) {
    for (const auto& r : exec.route_batch(valids)) routed += r.routed_count();
    benchmark::DoNotOptimize(routed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch) *
                          static_cast<std::int64_t>(exec.inputs()));
}

void BM_PlanRouteScalarRevsort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  plan::PlanExecutor exec(plan::compile_revsort_plan(n, n / 2));
  pcs::Rng rng(7001);
  pcs::BitVec valid = rng.bernoulli_bits(n, 0.5);
  std::size_t routed = 0;
  for (auto _ : state) {
    routed += exec.route(valid).routed_count();
    benchmark::DoNotOptimize(routed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlanRouteScalarRevsort)->Arg(1 << 10)->Arg(1 << 14);

// Same shapes and batch as BM_RouteBatchRevsort (bench_sim_speed.cpp).
// The *Legacy twins below run the identical workload through the
// pre-analysis executor (ExecMode::kLegacy), so every fused gain in this
// suite has its unfused baseline in the same JSON.
void BM_PlanRouteBatchRevsort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  plan::PlanExecutor exec(plan::compile_revsort_plan(n, n / 2));
  route_batch_loop(state, exec, 64);
}
BENCHMARK(BM_PlanRouteBatchRevsort)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_PlanRouteBatchRevsortLegacy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  plan::PlanExecutor exec(plan::compile_revsort_plan(n, n / 2),
                          plan::ExecMode::kLegacy);
  route_batch_loop(state, exec, 64);
}
BENCHMARK(BM_PlanRouteBatchRevsortLegacy)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);

void BM_PlanRouteBatchColumnsort(benchmark::State& state) {
  const std::size_t r = static_cast<std::size_t>(state.range(0));
  plan::PlanExecutor exec(plan::compile_columnsort_plan(r, 16, r * 8));
  route_batch_loop(state, exec, 64);
}
BENCHMARK(BM_PlanRouteBatchColumnsort)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 14);

void BM_PlanRouteBatchColumnsortLegacy(benchmark::State& state) {
  const std::size_t r = static_cast<std::size_t>(state.range(0));
  plan::PlanExecutor exec(plan::compile_columnsort_plan(r, 16, r * 8),
                          plan::ExecMode::kLegacy);
  route_batch_loop(state, exec, 64);
}
BENCHMARK(BM_PlanRouteBatchColumnsortLegacy)
    ->Arg(1 << 8)
    ->Arg(1 << 12)
    ->Arg(1 << 14);

// No counting kernel for the multipass/full families: this measures the
// generic staged LaneBatch pipeline.
void BM_PlanRouteBatchMultipass(benchmark::State& state) {
  const std::size_t r = static_cast<std::size_t>(state.range(0));
  plan::PlanExecutor exec(plan::compile_multipass_plan(
      r, 16, 3, r * 8, plan::ReshapeSchedule::kAlternating));
  route_batch_loop(state, exec, 64);
}
BENCHMARK(BM_PlanRouteBatchMultipass)->Arg(1 << 8)->Arg(1 << 12);

void BM_PlanRouteBatchMultipassLegacy(benchmark::State& state) {
  const std::size_t r = static_cast<std::size_t>(state.range(0));
  plan::PlanExecutor exec(
      plan::compile_multipass_plan(r, 16, 3, r * 8,
                                   plan::ReshapeSchedule::kAlternating),
      plan::ExecMode::kLegacy);
  route_batch_loop(state, exec, 64);
}
BENCHMARK(BM_PlanRouteBatchMultipassLegacy)->Arg(1 << 8)->Arg(1 << 12);

void BM_PlanRouteBatchFullRevsort(benchmark::State& state) {
  plan::PlanExecutor exec(
      plan::compile_full_revsort_plan(static_cast<std::size_t>(state.range(0))));
  route_batch_loop(state, exec, 64);
}
BENCHMARK(BM_PlanRouteBatchFullRevsort)->Arg(1 << 10)->Arg(1 << 14);

// Faulty plans lose the counting kernels: the cost of graceful degradation
// is the generic pipeline, measured here against the healthy twin above.
void BM_PlanRouteBatchFaultyRevsort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  plan::SwitchPlan p = plan::compile_revsort_plan(n, n / 2);
  plan::apply_chip_faults(p, {plan::ChipFault{0, 3}, plan::ChipFault{1, 7}});
  plan::PlanExecutor exec(std::move(p));
  route_batch_loop(state, exec, 64);
}
BENCHMARK(BM_PlanRouteBatchFaultyRevsort)->Arg(1 << 10)->Arg(1 << 14);

void BM_PlanRouteBatchFaultyRevsortLegacy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  plan::SwitchPlan p = plan::compile_revsort_plan(n, n / 2);
  plan::apply_chip_faults(p, {plan::ChipFault{0, 3}, plan::ChipFault{1, 7}});
  plan::PlanExecutor exec(std::move(p), plan::ExecMode::kLegacy);
  route_batch_loop(state, exec, 64);
}
BENCHMARK(BM_PlanRouteBatchFaultyRevsortLegacy)->Arg(1 << 10)->Arg(1 << 14);

void BM_PlanNearsortBatchRevsort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  plan::PlanExecutor exec(plan::compile_revsort_plan(n, n / 2));
  pcs::Rng rng(7001);
  std::vector<pcs::BitVec> valids;
  for (std::size_t i = 0; i < 64; ++i) {
    valids.push_back(rng.bernoulli_bits(n, 0.5));
  }
  std::size_t ones = 0;
  for (auto _ : state) {
    for (const auto& arr : exec.nearsorted_batch(valids)) ones += arr.count();
    benchmark::DoNotOptimize(ones);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlanNearsortBatchRevsort)->Arg(1 << 10)->Arg(1 << 14);

// Compilation itself stays off every route path; this pins its cost.
void BM_PlanCompileRevsort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan::compile_revsort_plan(n, n / 2));
  }
}
BENCHMARK(BM_PlanCompileRevsort)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
