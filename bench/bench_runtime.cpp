// Serving-layer performance (experiment S1): epochs per second of the
// fabric runtime's closed loop -- admission, epoch-batched routing through
// route_batch, delivery accounting -- as lane count and switch family vary.
// The lane axis shows what batching across replicas buys over lanes=1
// (one route() worth of work per dispatch).
#include "bench_common.hpp"
#include "message/traffic.hpp"
#include "runtime/fabric_runtime.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"

namespace {

void print_artifacts() {
  pcs::bench::artifact_header("S1", "fabric runtime serving loop (timings below)");
}

pcs::rt::RuntimeOptions bench_opts(std::size_t lanes) {
  pcs::rt::RuntimeOptions opts;
  opts.queue_depth = 4;
  opts.policy = pcs::msg::CongestionPolicy::kBufferRetry;
  opts.lanes = lanes;
  opts.seed = 7100;
  opts.warmup_epochs = 4;
  opts.measure_epochs = 32;
  opts.drain_epochs_max = 256;
  return opts;
}

void campaign_loop(benchmark::State& state, const pcs::sw::ConcentratorSwitch& sw,
                   std::size_t lanes) {
  const std::size_t n = sw.inputs();
  std::size_t epochs = 0;
  for (auto _ : state) {
    pcs::rt::FabricRuntime runtime(sw, bench_opts(lanes), [n](std::size_t) {
      return std::unique_ptr<pcs::traffic::TrafficSource>(
          std::make_unique<pcs::traffic::ComposedSource>(
              pcs::traffic::PatternKind::kUniform,
              std::make_unique<pcs::traffic::BernoulliProcess>(n, 0.5),
              0.125));
    });
    pcs::rt::MetricsRegistry metrics;
    runtime.run(metrics);
    epochs += metrics.counter("route_batch_dispatches").value();
    benchmark::DoNotOptimize(epochs);
  }
  // items = lane-setups resolved: epochs x lanes.
  state.SetItemsProcessed(static_cast<std::int64_t>(epochs) *
                          static_cast<std::int64_t>(lanes));
}

void BM_ServeRevsort(benchmark::State& state) {
  pcs::sw::RevsortSwitch sw(4096, 3072);
  campaign_loop(state, sw, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_ServeRevsort)->Arg(1)->Arg(8)->Arg(32);

void BM_ServeColumnsort(benchmark::State& state) {
  const auto sw = pcs::sw::ColumnsortSwitch::from_beta(4096, 0.75, 3072);
  campaign_loop(state, sw, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_ServeColumnsort)->Arg(1)->Arg(8)->Arg(32);

void BM_ServeHyper(benchmark::State& state) {
  pcs::sw::HyperSwitch sw(4096, 2048);
  campaign_loop(state, sw, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_ServeHyper)->Arg(1)->Arg(8)->Arg(32);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
