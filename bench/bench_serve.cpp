// Serving-daemon hot paths: what the wire protocol costs per message and
// what the shared plan cache saves per campaign.
//
// The protocol benchmarks price one request round trip's worth of
// encode/decode plus the FrameReader reassembly loop the daemon runs per
// connection -- these sit on every message, so they must stay far below
// campaign cost (a campaign routes hundreds of thousands of messages; the
// framing budget is microseconds).  The cache benchmarks put a number on
// the admission story: a cache hit hands back a shared PlanSwitch in one
// mutex acquisition, a cold miss pays the full compile+analysis, and the
// ratio is what multi-tenant sharing buys.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "serve/plan_cache.hpp"
#include "serve/protocol.hpp"
#include "switch/make_switch.hpp"

namespace {

namespace serve = pcs::serve;

serve::CampaignRequest sample_request() {
  serve::CampaignRequest req;
  req.tenant = "tenant0";
  req.family = "columnsort";
  req.n = 256;
  req.m = 192;
  req.beta = 0.6875;
  req.faults = "1:3,2:0";
  req.arrival = "bursty";
  req.load = 0.45;
  req.seed = 424242;
  req.lanes = 2;
  req.queue_depth = 8;
  req.policy = "drop";
  req.warmup_epochs = 4;
  req.measure_epochs = 32;
  req.drain_epochs_max = 100;
  return req;
}

pcs::SwitchSpec spec_for(std::size_t n) {
  pcs::SwitchSpec spec;
  spec.family = "revsort";
  spec.n = n;
  spec.m = n - n / 4;
  return spec;
}

void print_artifacts() {
  pcs::bench::artifact_header("S1", "serving-daemon hot paths");
  std::printf(
      "protocol: encode/decode of a fully-specified CampaignRequest plus the\n"
      "per-connection FrameReader loop (bytes_per_second is wire\n"
      "throughput).  cache: checkout on a warm key vs the cold\n"
      "compile+analysis it replaces -- the hit/cold ratio is what two\n"
      "tenants sharing one plan saves.\n");
}

void BM_ServeEncodeCampaignRequest(benchmark::State& state) {
  const serve::CampaignRequest req = sample_request();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::vector<std::uint8_t> wire = serve::encode_campaign_request(req);
    bytes += wire.size();
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ServeEncodeCampaignRequest);

void BM_ServeDecodeCampaignRequest(benchmark::State& state) {
  const std::vector<std::uint8_t> wire =
      serve::encode_campaign_request(sample_request());
  for (auto _ : state) {
    serve::Frame f = serve::decode_payload(wire.data() + 4, wire.size() - 4);
    benchmark::DoNotOptimize(f.campaign_request->seed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_ServeDecodeCampaignRequest);

// The daemon's per-connection loop: feed a pipelined burst of frames into
// the reader and drain it, as read() chunks arrive.
void BM_ServeFrameReaderPipelined(benchmark::State& state) {
  const std::size_t frames = static_cast<std::size_t>(state.range(0));
  const std::vector<std::uint8_t> one =
      serve::encode_campaign_request(sample_request());
  std::vector<std::uint8_t> stream;
  stream.reserve(one.size() * frames);
  for (std::size_t i = 0; i < frames; ++i) {
    stream.insert(stream.end(), one.begin(), one.end());
  }
  for (auto _ : state) {
    serve::FrameReader reader;
    std::size_t seen = 0;
    // 4 KiB chunks: the order of magnitude a UDS read() hands back.
    for (std::size_t off = 0; off < stream.size(); off += 4096) {
      reader.feed(stream.data() + off, std::min<std::size_t>(
                                           4096, stream.size() - off));
      while (auto f = reader.next()) seen += (f->type == serve::MsgType::kCampaignRequest);
    }
    if (seen != frames) state.SkipWithError("frame loss");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_ServeFrameReaderPipelined)->Arg(64);

// Warm-key checkout: one mutex acquisition + shared_ptr copy.  This is the
// per-campaign overhead every admitted tenant pays after the first.
void BM_ServeCacheHit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  serve::PlanCache cache(256u << 20);
  const pcs::SwitchSpec spec = spec_for(n);
  (void)cache.checkout(spec, pcs::plan::ExecMode::kFused);  // warm
  for (auto _ : state) {
    serve::PlanCache::Checkout c =
        cache.checkout(spec, pcs::plan::ExecMode::kFused);
    if (!c.hit) state.SkipWithError("expected a warm cache");
    benchmark::DoNotOptimize(c.sw.get());
  }
}
BENCHMARK(BM_ServeCacheHit)->Arg(1 << 10)->Arg(1 << 14);

// Cold compile at byte_budget=0 ("cache nothing"): the full
// compile+analysis a miss pays, i.e. what the hit path amortizes away.
void BM_ServeCacheColdCompile(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  serve::PlanCache cache(0);
  const pcs::SwitchSpec spec = spec_for(n);
  for (auto _ : state) {
    serve::PlanCache::Checkout c =
        cache.checkout(spec, pcs::plan::ExecMode::kFused);
    if (c.hit) state.SkipWithError("budget 0 must never hit");
    benchmark::DoNotOptimize(c.sw.get());
  }
}
BENCHMARK(BM_ServeCacheColdCompile)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
