// Library performance (experiment P1): wall-clock cost of one setup
// (route()) for each switch design across sizes, the hardware-faithful
// wiring path vs the mesh fast path, and the nearsortedness analyzer.
// These are simulator numbers, not hardware claims.
#include "bench_common.hpp"
#include "sortnet/nearsort.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/full_sort_hyper.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace {

void print_artifacts() {
  pcs::bench::artifact_header("P1", "simulator throughput (see timings below)");
}

template <typename Switch>
void route_loop(benchmark::State& state, const Switch& sw) {
  pcs::Rng rng(7001);
  pcs::BitVec valid = rng.bernoulli_bits(sw.inputs(), 0.5);
  std::size_t routed = 0;
  for (auto _ : state) {
    routed += sw.route(valid).routed_count();
    benchmark::DoNotOptimize(routed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sw.inputs()));
}

void BM_RouteHyper(benchmark::State& state) {
  pcs::sw::HyperSwitch sw(static_cast<std::size_t>(state.range(0)),
                          static_cast<std::size_t>(state.range(0)) / 2);
  route_loop(state, sw);
}
BENCHMARK(BM_RouteHyper)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_RouteRevsortMesh(benchmark::State& state) {
  pcs::sw::RevsortSwitch sw(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(0)) / 2);
  route_loop(state, sw);
}
BENCHMARK(BM_RouteRevsortMesh)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_RouteRevsortWiring(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  pcs::sw::RevsortSwitch sw(n, n / 2);
  pcs::Rng rng(7002);
  pcs::BitVec valid = rng.bernoulli_bits(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.route_via_wiring(valid));
  }
}
BENCHMARK(BM_RouteRevsortWiring)->Arg(1 << 10)->Arg(1 << 14);

void BM_RouteColumnsort(benchmark::State& state) {
  const std::size_t r = static_cast<std::size_t>(state.range(0));
  pcs::sw::ColumnsortSwitch sw(r, 16, r * 8);
  route_loop(state, sw);
}
BENCHMARK(BM_RouteColumnsort)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 14);

void BM_RouteFullRevsort(benchmark::State& state) {
  pcs::sw::FullRevsortHyper sw(static_cast<std::size_t>(state.range(0)));
  route_loop(state, sw);
}
BENCHMARK(BM_RouteFullRevsort)->Arg(1 << 10)->Arg(1 << 14);

// Batched setups: 64 valid-bit patterns per call through the word-parallel
// routing engine.  items/sec counts pattern-bits, directly comparable with
// the single-pattern loops above.
template <typename Switch>
void route_batch_loop(benchmark::State& state, const Switch& sw,
                      std::size_t batch) {
  pcs::Rng rng(7001);
  std::vector<pcs::BitVec> valids;
  valids.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    valids.push_back(rng.bernoulli_bits(sw.inputs(), 0.5));
  }
  std::size_t routed = 0;
  for (auto _ : state) {
    for (const auto& r : sw.route_batch(valids)) routed += r.routed_count();
    benchmark::DoNotOptimize(routed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch) *
                          static_cast<std::int64_t>(sw.inputs()));
}

template <typename Switch>
void nearsort_batch_loop(benchmark::State& state, const Switch& sw,
                         std::size_t batch) {
  pcs::Rng rng(7001);
  std::vector<pcs::BitVec> valids;
  valids.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    valids.push_back(rng.bernoulli_bits(sw.inputs(), 0.5));
  }
  std::size_t ones = 0;
  for (auto _ : state) {
    for (const auto& arr : sw.nearsorted_batch(valids)) ones += arr.count();
    benchmark::DoNotOptimize(ones);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch) *
                          static_cast<std::int64_t>(sw.inputs()));
}

void BM_RouteBatchHyper(benchmark::State& state) {
  pcs::sw::HyperSwitch sw(static_cast<std::size_t>(state.range(0)),
                          static_cast<std::size_t>(state.range(0)) / 2);
  route_batch_loop(state, sw, 64);
}
BENCHMARK(BM_RouteBatchHyper)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_RouteBatchRevsort(benchmark::State& state) {
  pcs::sw::RevsortSwitch sw(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(0)) / 2);
  route_batch_loop(state, sw, 64);
}
BENCHMARK(BM_RouteBatchRevsort)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_RouteBatchColumnsort(benchmark::State& state) {
  const std::size_t r = static_cast<std::size_t>(state.range(0));
  pcs::sw::ColumnsortSwitch sw(r, 16, r * 8);
  route_batch_loop(state, sw, 64);
}
BENCHMARK(BM_RouteBatchColumnsort)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 14);

void BM_NearsortBatchRevsort(benchmark::State& state) {
  pcs::sw::RevsortSwitch sw(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(0)) / 2);
  nearsort_batch_loop(state, sw, 64);
}
BENCHMARK(BM_NearsortBatchRevsort)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_NearsortBatchColumnsort(benchmark::State& state) {
  const std::size_t r = static_cast<std::size_t>(state.range(0));
  pcs::sw::ColumnsortSwitch sw(r, 16, r * 8);
  nearsort_batch_loop(state, sw, 64);
}
BENCHMARK(BM_NearsortBatchColumnsort)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 14);

void BM_NearsortAnalysis(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  pcs::Rng rng(7003);
  pcs::BitVec v = rng.bernoulli_bits(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pcs::sortnet::min_nearsort_epsilon(v));
  }
}
BENCHMARK(BM_NearsortAnalysis)->Arg(1 << 14)->Arg(1 << 20);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
