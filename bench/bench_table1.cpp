// Reproduces Table 1 of the paper (experiment T1 in DESIGN.md): resource
// measures for the Revsort-based switch and the Columnsort-based switch at
// beta = 1/2, 5/8, 3/4 -- first the paper's asymptotic table, then concrete
// instantiations at several n so the exponents are visible, then the
// single-chip baseline that motivates the whole exercise.
#include <cstdio>

#include "bench_common.hpp"
#include "cost/resource_model.hpp"
#include "cost/table1.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace {

void print_artifacts() {
  using namespace pcs::cost;
  pcs::bench::artifact_header("Table 1", "resource measures, paper (asymptotic)");
  std::fputs(render_table1_asymptotic().c_str(), stdout);

  for (std::size_t n : {std::size_t{1} << 12, std::size_t{1} << 16,
                        std::size_t{1} << 20}) {
    std::size_t m = n / 2;
    pcs::bench::artifact_header("Table 1", "concrete instantiation");
    std::fputs(render_table1(n, m).c_str(), stdout);
  }

  pcs::bench::artifact_header(
      "Table 1 context", "single-chip baseline (the pin wall, Section 1)");
  for (std::size_t n : {std::size_t{1} << 12, std::size_t{1} << 16}) {
    ResourceReport r = hyper_chip_report(n, n / 2);
    std::printf("  %s\n", r.to_string().c_str());
  }

  pcs::bench::artifact_header(
      "Table 1 context",
      "naive partitioning of the crossbar chip (Omega((n/p)^2) chips)");
  std::printf("%10s %8s %14s %14s %14s %16s\n", "n", "pins", "chips",
              "chip passes", "delay", "vs revsort chips");
  for (std::size_t n : {std::size_t{1} << 12, std::size_t{1} << 16}) {
    for (std::size_t pins : {512u, 2048u}) {
      ResourceReport part = partitioned_hyper_report(n, pins);
      ResourceReport rev = revsort_report(n, n / 2);
      std::printf("%10zu %8zu %14zu %14zu %14zu %13.1fx\n", n, pins,
                  part.chip_count, part.chip_passes, part.gate_delays,
                  static_cast<double>(part.chip_count) /
                      static_cast<double>(rev.chip_count));
    }
  }
  std::printf("(the paper's motivation: at the same pin budget the partitioned\n"
              " crossbar needs quadratically many chips and pays pad delay at\n"
              " every tile crossing; the partial concentrators need Theta(n/p).)\n");

  pcs::bench::artifact_header(
      "Table 1 context",
      "Section 1's clocked foil: prefix + butterfly (4 pins/chip)");
  for (std::size_t n : {std::size_t{1} << 12, std::size_t{1} << 16}) {
    ResourceReport r = prefix_butterfly_report(n);
    std::printf("  %s\n", r.to_string().c_str());
  }
}

void BM_Table1Generation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto cols = pcs::cost::table1_columns(n, n / 2);
    benchmark::DoNotOptimize(cols);
  }
}
BENCHMARK(BM_Table1Generation)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_RevsortBom(benchmark::State& state) {
  pcs::sw::RevsortSwitch sw(1 << 12, 1 << 11);
  for (auto _ : state) {
    auto bom = sw.bill_of_materials();
    benchmark::DoNotOptimize(bom);
  }
}
BENCHMARK(BM_RevsortBom);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
