// Thread-scaling curve for the batched plan executor: the same routing
// workloads as bench_plan, swept over a process-wide parallelism clamp of
// 1/2/4/8 threads (set_max_parallelism).  Batched routing parallelizes
// across chunks of the pattern batch, so the curve measures how far the
// per-chunk scratch reuse and the fused kernels scale before the memory
// system saturates.  The sweep publishes to BENCH_threads.json; EXPERIMENTS
// reads the threads=1..N series from there.  On a 1-vCPU host the clamp
// still exercises the pool handoff, but the curve is flat by construction
// -- the JSON records whatever the machine can actually show.
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "plan/compile.hpp"
#include "plan/plan_executor.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

namespace plan = pcs::plan;

void print_artifacts() {
  pcs::bench::artifact_header(
      "P3", "thread-scaling sweep (set_max_parallelism 1/2/4/8)");
  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());
  std::printf("(each BM_* below takes the clamp as its benchmark arg; the\n"
              " items/s series across args is the scaling curve.)\n");
}

/// Clamp parallelism for the duration of one benchmark run and restore the
/// previous clamp afterwards, so --benchmark_filter reruns stay honest.
class ParallelismClamp {
 public:
  explicit ParallelismClamp(std::size_t threads)
      : prev_(pcs::max_parallelism()) {
    pcs::set_max_parallelism(threads);
  }
  ~ParallelismClamp() { pcs::set_max_parallelism(prev_); }

 private:
  std::size_t prev_;
};

void route_batch_loop(benchmark::State& state, const plan::PlanExecutor& exec,
                      std::size_t batch) {
  pcs::Rng rng(7001);  // same seed/density as bench_plan's loops
  std::vector<pcs::BitVec> valids;
  valids.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    valids.push_back(rng.bernoulli_bits(exec.inputs(), 0.5));
  }
  std::size_t routed = 0;
  for (auto _ : state) {
    for (const auto& r : exec.route_batch(valids)) routed += r.routed_count();
    benchmark::DoNotOptimize(routed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch) *
                          static_cast<std::int64_t>(exec.inputs()));
}

// Counting-kernel family: chunks of the 256-pattern batch run on separate
// workers, each with its own RevsortScratch.
void BM_ThreadsRouteBatchRevsort(benchmark::State& state) {
  const ParallelismClamp clamp(static_cast<std::size_t>(state.range(0)));
  plan::PlanExecutor exec(plan::compile_revsort_plan(1 << 14, 1 << 13));
  route_batch_loop(state, exec, 256);
}
BENCHMARK(BM_ThreadsRouteBatchRevsort)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Generic staged pipeline (no counting kernel): the multipass family's
// per-chunk StageScratch is what the sweep stresses here.
void BM_ThreadsRouteBatchMultipass(benchmark::State& state) {
  const ParallelismClamp clamp(static_cast<std::size_t>(state.range(0)));
  plan::PlanExecutor exec(plan::compile_multipass_plan(
      1 << 10, 16, 3, 1 << 13, plan::ReshapeSchedule::kAlternating));
  route_batch_loop(state, exec, 256);
}
BENCHMARK(BM_ThreadsRouteBatchMultipass)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Faulted plans drop to the fused lane pipeline; its chunked batch walk
// shares the same parallel_for_chunks grain as the healthy paths.
void BM_ThreadsRouteBatchFaultyRevsort(benchmark::State& state) {
  const ParallelismClamp clamp(static_cast<std::size_t>(state.range(0)));
  plan::SwitchPlan p = plan::compile_revsort_plan(1 << 14, 1 << 13);
  plan::apply_chip_faults(p, {plan::ChipFault{0, 3}, plan::ChipFault{1, 7}});
  plan::PlanExecutor exec(std::move(p));
  route_batch_loop(state, exec, 256);
}
BENCHMARK(BM_ThreadsRouteBatchFaultyRevsort)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
