// Reproduces the message-routing behaviour (experiment D6): bit-serial
// messages through the switches under sustained load, with the three
// congestion disciplines of Section 1 (drop / buffer+retry / misroute), and
// the two-level concentration hierarchy of the motivating application.
#include <cstdio>

#include "bench_common.hpp"
#include "cost/resource_model.hpp"
#include "message/ack_protocol.hpp"
#include "message/congestion.hpp"
#include "message/pipeline.hpp"
#include "message/stream_engine.hpp"
#include "message/traffic.hpp"
#include "network/router_sim.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace {

void policy_table(const pcs::sw::ConcentratorSwitch& sw, double arrival_p) {
  std::printf("\n%s at arrival p=%.2f (offered ~%.1f/round, m=%zu):\n",
              sw.name().c_str(), arrival_p,
              arrival_p * static_cast<double>(sw.inputs()), sw.outputs());
  std::printf("%16s %10s %10s %10s %10s %12s\n", "policy", "offered", "delivered",
              "dropped", "backlog", "mean-latency");
  for (auto p : {pcs::msg::CongestionPolicy::kDrop,
                 pcs::msg::CongestionPolicy::kBufferRetry,
                 pcs::msg::CongestionPolicy::kMisrouteRetry}) {
    pcs::Rng rng(5001);
    pcs::msg::RoundStats s = pcs::msg::simulate_rounds(sw, arrival_p, 300, p, rng);
    std::printf("%16s %10zu %10zu %10zu %10zu %12.2f\n",
                pcs::msg::policy_name(p).c_str(), s.offered, s.delivered, s.dropped,
                s.max_backlog, s.mean_latency());
  }
}

void print_artifacts() {
  pcs::bench::artifact_header("D6a", "congestion policies per switch");
  pcs::sw::HyperSwitch hyper(256, 128);
  pcs::sw::RevsortSwitch rev(256, 128);
  pcs::sw::ColumnsortSwitch col(64, 4, 128);
  for (double p : {0.2, 0.6}) {
    policy_table(hyper, p);
    policy_table(rev, p);
    policy_table(col, p);
  }

  pcs::bench::artifact_header("D6b", "two-level concentration hierarchy");
  std::printf("%12s %10s %10s %10s %14s %12s\n", "tree", "arrival", "offered",
              "delivered", "trunk-util", "mean-lat");
  for (double p : {0.05, 0.15, 0.4}) {
    {
      pcs::Rng rng(5002);
      auto tree = pcs::net::make_hyper_tree(4, 64, 16, 32);
      auto s = pcs::net::simulate_tree(tree, p, 200, rng);
      std::printf("%12s %10.2f %10zu %10zu %14.3f %12.2f\n", "hyper", p, s.offered,
                  s.delivered, s.trunk_utilization(tree), s.mean_latency());
    }
    {
      pcs::Rng rng(5002);
      auto tree = pcs::net::make_revsort_tree(4, 64, 16, 32);
      auto s = pcs::net::simulate_tree(tree, p, 200, rng);
      std::printf("%12s %10.2f %10zu %10zu %14.3f %12.2f\n", "revsort", p, s.offered,
                  s.delivered, s.trunk_utilization(tree), s.mean_latency());
    }
    {
      pcs::Rng rng(5002);
      auto tree = pcs::net::make_columnsort_tree(4, 16, 4, 16, 32);
      auto s = pcs::net::simulate_tree(tree, p, 200, rng);
      std::printf("%12s %10.2f %10zu %10zu %14.3f %12.2f\n", "columnsort", p,
                  s.offered, s.delivered, s.trunk_utilization(tree),
                  s.mean_latency());
    }
  }
  std::printf(
      "\n(shape check: at light load the partial-concentrator trees track the\n"
      " perfect-switch tree; under saturation all are capped by the trunk.)\n");

  pcs::bench::artifact_header(
      "D6c", "pipelined throughput & latency model (payload 32b, 8 gates/cycle)");
  pcs::msg::PipelineModel pipe{.payload_bits = 32, .gates_per_cycle = 8};
  const pcs::cost::DelayModel dm{};
  std::printf("%-24s %8s %10s %14s %16s\n", "design (n=4096, m=2048)", "delay",
              "latency", "msgs/cycle", "payload b/cycle");
  struct Row {
    const char* label;
    std::size_t delays;
  };
  const Row rows[] = {
      {"single chip", pcs::cost::hyper_chip_report(4096, 2048, dm).gate_delays},
      {"revsort", pcs::cost::revsort_report(4096, 2048, dm).gate_delays},
      {"columnsort b=2/3", pcs::cost::columnsort_report(256, 16, 2048, dm).gate_delays},
      {"full revsort", pcs::cost::full_revsort_report(4096, dm).gate_delays},
  };
  for (const Row& row : rows) {
    // At capacity every setup fills m outputs.
    double routed = 2048.0;
    std::printf("%-24s %8zu %10zu %14.1f %16.1f\n", row.label, row.delays,
                pipe.message_latency(row.delays), pipe.messages_per_cycle(routed),
                pipe.payload_bits_per_cycle(routed));
  }
  std::printf("(combinational pipelining: depth costs only latency; sustained\n"
              " throughput is fixed by m and the setup period L + 1.)\n");

  std::printf("\nmeasured stream (200 saturating batches, revsort 1024 -> 512):\n");
  {
    pcs::sw::RevsortSwitch sw(1024, 512);
    pcs::msg::ExactCountTraffic gen(1024, 1024);
    pcs::Rng rng(5006);
    pcs::msg::StreamStats s = pcs::msg::run_stream(
        sw, gen, rng, 200, pipe,
        pcs::cost::revsort_report(1024, 512, dm).gate_delays);
    std::printf("  delivered %zu of %zu, %.2f bits/cycle (model %.2f)\n",
                s.delivered, s.offered, s.bits_per_cycle(),
                pipe.payload_bits_per_cycle(512.0));
  }

  pcs::bench::artifact_header(
      "D6d", "drop-and-resend ack protocol (Section 1's third option)");
  std::printf("%-24s %8s %10s %12s %10s %12s %10s\n", "switch (arrival 0.4)",
              "offered", "goodput", "xmissions", "dups", "mean-compl", "gave-up");
  {
    pcs::msg::AckConfig cfg;
    struct Entry {
      const char* label;
      const pcs::sw::ConcentratorSwitch* sw;
    };
    pcs::sw::HyperSwitch hyper_sw(256, 64);
    pcs::sw::RevsortSwitch rev_sw(256, 64);
    for (auto [label, swp] : {Entry{"hyper(256,64)", &hyper_sw},
                              Entry{"revsort(256,64)", &rev_sw}}) {
      pcs::Rng rng(5005);
      pcs::msg::AckStats s = pcs::msg::simulate_ack_protocol(*swp, 0.4, 300, cfg, rng);
      std::printf("%-24s %8zu %10.4f %12zu %10zu %12.2f %10zu\n", label, s.offered,
                  s.goodput(), s.transmissions, s.duplicates, s.mean_completion(),
                  s.gave_up);
    }
  }
  std::printf("(drop-and-resend trades buffering for retransmissions and, with\n"
              " slow acks, duplicates -- the protocol cost the switch designs\n"
              " offload to the higher layer.)\n");
}

void BM_SimulateRounds(benchmark::State& state) {
  pcs::sw::RevsortSwitch sw(256, 128);
  for (auto _ : state) {
    pcs::Rng rng(5003);
    auto s = pcs::msg::simulate_rounds(sw, 0.4, 50,
                                       pcs::msg::CongestionPolicy::kBufferRetry, rng);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SimulateRounds);

// Setup throughput of the word-parallel routing engine: how many complete
// switch setups per second the simulator sustains when rounds are batched
// (64 rounds of valid bits per route_batch call).  items/sec = setups/sec.
void BM_BatchedSetupThroughput(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  pcs::sw::RevsortSwitch sw(n, n / 2);
  pcs::Rng rng(5007);
  constexpr std::size_t kBatch = 64;
  std::vector<pcs::BitVec> rounds;
  rounds.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    rounds.push_back(rng.bernoulli_bits(n, 0.4));
  }
  std::size_t delivered = 0;
  for (auto _ : state) {
    for (const auto& r : sw.route_batch(rounds)) delivered += r.routed_count();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_BatchedSetupThroughput)->Arg(1 << 10)->Arg(1 << 14);

void BM_SimulateTree(benchmark::State& state) {
  auto tree = pcs::net::make_revsort_tree(4, 64, 16, 32);
  for (auto _ : state) {
    pcs::Rng rng(5004);
    auto s = pcs::net::simulate_tree(tree, 0.2, 50, rng);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SimulateTree);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
