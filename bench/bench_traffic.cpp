// Traffic-subsystem performance (experiment T1): cost of the composable
// sources on the campaign hot path.  Valid-bit epochs per second for each
// injection process, destination draws per second for the uniform /
// permutation / hotspot maps, the trace recorder's wrap overhead, and one
// bound-stress search timing (the search is a setup-time cost, but its
// price decides how large a worstcase campaign can reasonably ask for).
#include "bench_common.hpp"
#include "switch/revsort_switch.hpp"
#include "traffic/factory.hpp"
#include "traffic/search.hpp"
#include "traffic/trace.hpp"
#include "util/rng.hpp"

namespace {

constexpr std::size_t kWidth = 4096;

void print_artifacts() {
  pcs::bench::artifact_header("T1", "composable traffic sources (timings below)");
}

pcs::traffic::TrafficSpec spec_of(const char* pattern, const char* injection) {
  pcs::traffic::TrafficSpec spec;
  spec.width = kWidth;
  spec.pattern = pattern;
  spec.injection = injection;
  spec.intensity = 0.5;
  return spec;
}

void next_valid_loop(benchmark::State& state,
                     const pcs::traffic::TrafficSpec& spec) {
  auto src = pcs::traffic::make_source(spec);
  pcs::Rng rng(7200);
  std::size_t bits = 0;
  for (auto _ : state) {
    bits += src->next_valid(rng).count();
    benchmark::DoNotOptimize(bits);
  }
  // items = wires sampled per epoch.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWidth));
}

void BM_NextValidBernoulli(benchmark::State& state) {
  next_valid_loop(state, spec_of("uniform", "bernoulli"));
}
BENCHMARK(BM_NextValidBernoulli);

void BM_NextValidOnOff(benchmark::State& state) {
  next_valid_loop(state, spec_of("uniform", "onoff"));
}
BENCHMARK(BM_NextValidOnOff);

void BM_NextValidExact(benchmark::State& state) {
  next_valid_loop(state, spec_of("uniform", "exact"));
}
BENCHMARK(BM_NextValidExact);

void BM_NextValidHotspot(benchmark::State& state) {
  next_valid_loop(state, spec_of("hotspot", "bernoulli"));
}
BENCHMARK(BM_NextValidHotspot);

void BM_NextValidAdversarial(benchmark::State& state) {
  next_valid_loop(state, spec_of("adversarial", "bernoulli"));
}
BENCHMARK(BM_NextValidAdversarial);

void dest_loop(benchmark::State& state, const char* pattern) {
  auto src = pcs::traffic::make_source(spec_of(pattern, "bernoulli"));
  pcs::Rng rng(7201);
  std::uint64_t sum = 0;
  std::size_t srcw = 0;
  for (auto _ : state) {
    sum += src->dest_for(rng, srcw, kWidth);
    srcw = (srcw + 1) % kWidth;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_DestUniform(benchmark::State& state) { dest_loop(state, "uniform"); }
BENCHMARK(BM_DestUniform);

void BM_DestTranspose(benchmark::State& state) {
  dest_loop(state, "transpose");  // 4096 = 4^6: addressable
}
BENCHMARK(BM_DestTranspose);

void BM_DestHotspot(benchmark::State& state) { dest_loop(state, "hotspot"); }
BENCHMARK(BM_DestHotspot);

void BM_TraceRecordWrapOverhead(benchmark::State& state) {
  // Same epoch loop as BM_NextValidBernoulli, through the recorder; the
  // delta is the wrap cost (append + copy per epoch).
  pcs::traffic::TraceRecorder recorder(kWidth, 1);
  auto src = recorder.wrap(
      pcs::traffic::make_source(spec_of("uniform", "bernoulli")), 0);
  pcs::Rng rng(7200);
  std::size_t bits = 0;
  for (auto _ : state) {
    bits += src->next_valid(rng).count();
    benchmark::DoNotOptimize(bits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWidth));
}
BENCHMARK(BM_TraceRecordWrapOverhead);

void BM_WorstCaseSearch(benchmark::State& state) {
  // Setup-time price of pattern=worstcase on the paper's Revsort shape.
  pcs::sw::RevsortSwitch sw(256, 192);
  std::size_t evals = 0;
  for (auto _ : state) {
    pcs::traffic::SearchOptions opts;
    opts.restarts = static_cast<std::size_t>(state.range(0));
    opts.steps = 50;
    opts.seed = 7202;
    const auto r = pcs::traffic::worst_concentration_search(sw, opts);
    evals += r.evaluations;
    benchmark::DoNotOptimize(evals);
  }
  // items = switch evaluations (route() calls) the search performed.
  state.SetItemsProcessed(static_cast<std::int64_t>(evals));
}
BENCHMARK(BM_WorstCaseSearch)->Arg(2)->Arg(8);

}  // namespace

PCS_BENCH_MAIN(print_artifacts)
