#!/usr/bin/env sh
# Run the simulator-performance benchmarks and leave machine-readable JSON
# at the repo root (BENCH_sim_speed.json, BENCH_throughput.json,
# BENCH_plan.json, BENCH_obs.json).  bench_plan runs the same batched-Revsort shapes as
# bench_sim_speed so the plan executor's throughput can be compared
# directly against the pre-plan engine.
#
# Usage: bench/run_benchmarks.sh [build-dir]
# Always builds the benchmarks before running them: configuring only happens
# on a fresh build directory, but `cmake --build` runs unconditionally (a
# cheap no-op when everything is fresh), so edited benches are never
# silently run stale.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$build_dir" -j --target bench_sim_speed bench_throughput bench_plan bench_obs

"$build_dir/bench/bench_sim_speed" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_sim_speed.json" \
  --benchmark_out_format=json

"$build_dir/bench/bench_throughput" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_throughput.json" \
  --benchmark_out_format=json

"$build_dir/bench/bench_plan" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_plan.json" \
  --benchmark_out_format=json

"$build_dir/bench/bench_obs" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_obs.json" \
  --benchmark_out_format=json

echo "wrote $repo_root/BENCH_sim_speed.json"
echo "wrote $repo_root/BENCH_throughput.json"
echo "wrote $repo_root/BENCH_plan.json"
echo "wrote $repo_root/BENCH_obs.json"
