#!/usr/bin/env sh
# Run the simulator-performance benchmarks and leave machine-readable JSON
# at the repo root, one file per bench (BENCH_sim_speed.json,
# BENCH_throughput.json, BENCH_plan.json, BENCH_threads.json,
# BENCH_obs.json, BENCH_fabric.json, BENCH_serve.json,
# BENCH_traffic.json).  bench_serve
# prices the daemon's wire protocol (encode/decode/FrameReader) and the
# plan cache's hit vs cold-compile paths.  bench_fabric sweeps the multi-hop
# fabric hop count (1/2/3 hops of the same plan-compiled node) for the
# composition-overhead curve.  bench_plan runs the same batched-Revsort shapes as
# bench_sim_speed so the plan executor's throughput can be compared
# directly against the pre-plan engine, and carries a *Legacy twin for each
# batched family so the fused/unfused A/B lands in one JSON.  bench_threads
# sweeps set_max_parallelism over 1/2/4/8 for the threads=1..N scaling
# curve.  bench_traffic prices the composable traffic sources (valid-bit
# epochs, destination draws, trace-record overhead, bound-stress search).
#
# Usage: bench/run_benchmarks.sh [build-dir]
# Always builds the benchmarks before running them: configuring only happens
# on a fresh build directory, but `cmake --build` runs unconditionally (a
# cheap no-op when everything is fresh), so edited benches are never
# silently run stale.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$build_dir" -j --target \
  bench_sim_speed bench_throughput bench_plan bench_threads bench_obs \
  bench_fabric bench_serve bench_traffic

for bench in sim_speed throughput plan threads obs fabric serve traffic; do
  # The plan A/B is the PR-acceptance artifact; on a shared vCPU the host's
  # memory-bandwidth contention swings short runs +/-12%, so give each case
  # a long enough window to average over the bursts.
  extra=""
  [ "$bench" = plan ] && extra="--benchmark_min_time=2"
  # The fabric pipelined twins (F2) resolve a serial-vs-pipelined gap that
  # is smaller than the host's contention swings, so interleave repeated
  # samples and read the medians: every case then sees the same noise
  # phases instead of whichever burst its one time slot landed in.
  [ "$bench" = fabric ] && extra="--benchmark_repetitions=5 \
    --benchmark_enable_random_interleaving=true \
    --benchmark_min_time=0.3"
  "$build_dir/bench/bench_$bench" \
    --benchmark_format=json \
    --benchmark_out="$repo_root/BENCH_$bench.json" \
    --benchmark_out_format=json \
    $extra
  echo "wrote $repo_root/BENCH_$bench.json"
done
