file(REMOVE_RECURSE
  "CMakeFiles/bench_dirty_rows.dir/bench_dirty_rows.cpp.o"
  "CMakeFiles/bench_dirty_rows.dir/bench_dirty_rows.cpp.o.d"
  "bench_dirty_rows"
  "bench_dirty_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dirty_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
