# Empty compiler generated dependencies file for bench_dirty_rows.
# This may be replaced when dependencies are built.
