file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_converse.dir/bench_fig2_converse.cpp.o"
  "CMakeFiles/bench_fig2_converse.dir/bench_fig2_converse.cpp.o.d"
  "bench_fig2_converse"
  "bench_fig2_converse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_converse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
