# Empty dependencies file for bench_fig2_converse.
# This may be replaced when dependencies are built.
