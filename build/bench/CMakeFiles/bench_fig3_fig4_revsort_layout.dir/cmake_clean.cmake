file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fig4_revsort_layout.dir/bench_fig3_fig4_revsort_layout.cpp.o"
  "CMakeFiles/bench_fig3_fig4_revsort_layout.dir/bench_fig3_fig4_revsort_layout.cpp.o.d"
  "bench_fig3_fig4_revsort_layout"
  "bench_fig3_fig4_revsort_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fig4_revsort_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
