# Empty dependencies file for bench_fig3_fig4_revsort_layout.
# This may be replaced when dependencies are built.
