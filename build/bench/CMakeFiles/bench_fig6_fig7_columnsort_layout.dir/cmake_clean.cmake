file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fig7_columnsort_layout.dir/bench_fig6_fig7_columnsort_layout.cpp.o"
  "CMakeFiles/bench_fig6_fig7_columnsort_layout.dir/bench_fig6_fig7_columnsort_layout.cpp.o.d"
  "bench_fig6_fig7_columnsort_layout"
  "bench_fig6_fig7_columnsort_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fig7_columnsort_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
