# Empty dependencies file for bench_fig6_fig7_columnsort_layout.
# This may be replaced when dependencies are built.
