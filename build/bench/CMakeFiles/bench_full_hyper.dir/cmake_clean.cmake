file(REMOVE_RECURSE
  "CMakeFiles/bench_full_hyper.dir/bench_full_hyper.cpp.o"
  "CMakeFiles/bench_full_hyper.dir/bench_full_hyper.cpp.o.d"
  "bench_full_hyper"
  "bench_full_hyper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full_hyper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
