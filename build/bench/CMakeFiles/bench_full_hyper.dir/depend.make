# Empty dependencies file for bench_full_hyper.
# This may be replaced when dependencies are built.
