
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_hyper_circuit.cpp" "bench/CMakeFiles/bench_hyper_circuit.dir/bench_hyper_circuit.cpp.o" "gcc" "bench/CMakeFiles/bench_hyper_circuit.dir/bench_hyper_circuit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_message.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_sortnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
