file(REMOVE_RECURSE
  "CMakeFiles/bench_hyper_circuit.dir/bench_hyper_circuit.cpp.o"
  "CMakeFiles/bench_hyper_circuit.dir/bench_hyper_circuit.cpp.o.d"
  "bench_hyper_circuit"
  "bench_hyper_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hyper_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
