file(REMOVE_RECURSE
  "CMakeFiles/bench_knockout.dir/bench_knockout.cpp.o"
  "CMakeFiles/bench_knockout.dir/bench_knockout.cpp.o.d"
  "bench_knockout"
  "bench_knockout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_knockout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
