# Empty dependencies file for bench_knockout.
# This may be replaced when dependencies are built.
