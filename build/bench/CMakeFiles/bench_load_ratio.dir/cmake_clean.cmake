file(REMOVE_RECURSE
  "CMakeFiles/bench_load_ratio.dir/bench_load_ratio.cpp.o"
  "CMakeFiles/bench_load_ratio.dir/bench_load_ratio.cpp.o.d"
  "bench_load_ratio"
  "bench_load_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_load_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
