# Empty compiler generated dependencies file for bench_load_ratio.
# This may be replaced when dependencies are built.
