file(REMOVE_RECURSE
  "CMakeFiles/bench_multistage.dir/bench_multistage.cpp.o"
  "CMakeFiles/bench_multistage.dir/bench_multistage.cpp.o.d"
  "bench_multistage"
  "bench_multistage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multistage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
