file(REMOVE_RECURSE
  "CMakeFiles/bench_open_question.dir/bench_open_question.cpp.o"
  "CMakeFiles/bench_open_question.dir/bench_open_question.cpp.o.d"
  "bench_open_question"
  "bench_open_question.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_open_question.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
