# Empty compiler generated dependencies file for bench_open_question.
# This may be replaced when dependencies are built.
