file(REMOVE_RECURSE
  "CMakeFiles/bench_other_nearsorters.dir/bench_other_nearsorters.cpp.o"
  "CMakeFiles/bench_other_nearsorters.dir/bench_other_nearsorters.cpp.o.d"
  "bench_other_nearsorters"
  "bench_other_nearsorters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_other_nearsorters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
