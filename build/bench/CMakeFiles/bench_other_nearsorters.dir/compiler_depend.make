# Empty compiler generated dependencies file for bench_other_nearsorters.
# This may be replaced when dependencies are built.
