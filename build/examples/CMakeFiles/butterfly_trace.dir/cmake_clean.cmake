file(REMOVE_RECURSE
  "CMakeFiles/butterfly_trace.dir/butterfly_trace.cpp.o"
  "CMakeFiles/butterfly_trace.dir/butterfly_trace.cpp.o.d"
  "butterfly_trace"
  "butterfly_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/butterfly_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
