# Empty dependencies file for butterfly_trace.
# This may be replaced when dependencies are built.
