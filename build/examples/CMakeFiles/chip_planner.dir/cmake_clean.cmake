file(REMOVE_RECURSE
  "CMakeFiles/chip_planner.dir/chip_planner.cpp.o"
  "CMakeFiles/chip_planner.dir/chip_planner.cpp.o.d"
  "chip_planner"
  "chip_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
