file(REMOVE_RECURSE
  "CMakeFiles/floorplan_gallery.dir/floorplan_gallery.cpp.o"
  "CMakeFiles/floorplan_gallery.dir/floorplan_gallery.cpp.o.d"
  "floorplan_gallery"
  "floorplan_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplan_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
