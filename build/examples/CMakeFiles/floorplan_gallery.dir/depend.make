# Empty dependencies file for floorplan_gallery.
# This may be replaced when dependencies are built.
