file(REMOVE_RECURSE
  "CMakeFiles/message_router.dir/message_router.cpp.o"
  "CMakeFiles/message_router.dir/message_router.cpp.o.d"
  "message_router"
  "message_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
