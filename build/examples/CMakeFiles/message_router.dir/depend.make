# Empty dependencies file for message_router.
# This may be replaced when dependencies are built.
