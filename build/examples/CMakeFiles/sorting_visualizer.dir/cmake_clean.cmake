file(REMOVE_RECURSE
  "CMakeFiles/sorting_visualizer.dir/sorting_visualizer.cpp.o"
  "CMakeFiles/sorting_visualizer.dir/sorting_visualizer.cpp.o.d"
  "sorting_visualizer"
  "sorting_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorting_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
