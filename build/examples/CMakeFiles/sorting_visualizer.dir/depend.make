# Empty dependencies file for sorting_visualizer.
# This may be replaced when dependencies are built.
