file(REMOVE_RECURSE
  "CMakeFiles/verify_new_switch.dir/verify_new_switch.cpp.o"
  "CMakeFiles/verify_new_switch.dir/verify_new_switch.cpp.o.d"
  "verify_new_switch"
  "verify_new_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_new_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
