# Empty compiler generated dependencies file for verify_new_switch.
# This may be replaced when dependencies are built.
