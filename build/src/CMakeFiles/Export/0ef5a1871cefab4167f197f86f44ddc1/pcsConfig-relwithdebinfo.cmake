#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "pcs::pcs_util" for configuration "RelWithDebInfo"
set_property(TARGET pcs::pcs_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pcs::pcs_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpcs_util.a"
  )

list(APPEND _cmake_import_check_targets pcs::pcs_util )
list(APPEND _cmake_import_check_files_for_pcs::pcs_util "${_IMPORT_PREFIX}/lib/libpcs_util.a" )

# Import target "pcs::pcs_sortnet" for configuration "RelWithDebInfo"
set_property(TARGET pcs::pcs_sortnet APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pcs::pcs_sortnet PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpcs_sortnet.a"
  )

list(APPEND _cmake_import_check_targets pcs::pcs_sortnet )
list(APPEND _cmake_import_check_files_for_pcs::pcs_sortnet "${_IMPORT_PREFIX}/lib/libpcs_sortnet.a" )

# Import target "pcs::pcs_gates" for configuration "RelWithDebInfo"
set_property(TARGET pcs::pcs_gates APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pcs::pcs_gates PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpcs_gates.a"
  )

list(APPEND _cmake_import_check_targets pcs::pcs_gates )
list(APPEND _cmake_import_check_files_for_pcs::pcs_gates "${_IMPORT_PREFIX}/lib/libpcs_gates.a" )

# Import target "pcs::pcs_hyper" for configuration "RelWithDebInfo"
set_property(TARGET pcs::pcs_hyper APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pcs::pcs_hyper PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpcs_hyper.a"
  )

list(APPEND _cmake_import_check_targets pcs::pcs_hyper )
list(APPEND _cmake_import_check_files_for_pcs::pcs_hyper "${_IMPORT_PREFIX}/lib/libpcs_hyper.a" )

# Import target "pcs::pcs_switch" for configuration "RelWithDebInfo"
set_property(TARGET pcs::pcs_switch APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pcs::pcs_switch PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpcs_switch.a"
  )

list(APPEND _cmake_import_check_targets pcs::pcs_switch )
list(APPEND _cmake_import_check_files_for_pcs::pcs_switch "${_IMPORT_PREFIX}/lib/libpcs_switch.a" )

# Import target "pcs::pcs_cost" for configuration "RelWithDebInfo"
set_property(TARGET pcs::pcs_cost APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pcs::pcs_cost PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpcs_cost.a"
  )

list(APPEND _cmake_import_check_targets pcs::pcs_cost )
list(APPEND _cmake_import_check_files_for_pcs::pcs_cost "${_IMPORT_PREFIX}/lib/libpcs_cost.a" )

# Import target "pcs::pcs_message" for configuration "RelWithDebInfo"
set_property(TARGET pcs::pcs_message APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pcs::pcs_message PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpcs_message.a"
  )

list(APPEND _cmake_import_check_targets pcs::pcs_message )
list(APPEND _cmake_import_check_files_for_pcs::pcs_message "${_IMPORT_PREFIX}/lib/libpcs_message.a" )

# Import target "pcs::pcs_network" for configuration "RelWithDebInfo"
set_property(TARGET pcs::pcs_network APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pcs::pcs_network PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpcs_network.a"
  )

list(APPEND _cmake_import_check_targets pcs::pcs_network )
list(APPEND _cmake_import_check_files_for_pcs::pcs_network "${_IMPORT_PREFIX}/lib/libpcs_network.a" )

# Import target "pcs::pcs_core" for configuration "RelWithDebInfo"
set_property(TARGET pcs::pcs_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pcs::pcs_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpcs_core.a"
  )

list(APPEND _cmake_import_check_targets pcs::pcs_core )
list(APPEND _cmake_import_check_files_for_pcs::pcs_core "${_IMPORT_PREFIX}/lib/libpcs_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
