
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversary.cpp" "src/CMakeFiles/pcs_core.dir/core/adversary.cpp.o" "gcc" "src/CMakeFiles/pcs_core.dir/core/adversary.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/CMakeFiles/pcs_core.dir/core/bounds.cpp.o" "gcc" "src/CMakeFiles/pcs_core.dir/core/bounds.cpp.o.d"
  "/root/repo/src/core/epsilon_stats.cpp" "src/CMakeFiles/pcs_core.dir/core/epsilon_stats.cpp.o" "gcc" "src/CMakeFiles/pcs_core.dir/core/epsilon_stats.cpp.o.d"
  "/root/repo/src/core/lemmas.cpp" "src/CMakeFiles/pcs_core.dir/core/lemmas.cpp.o" "gcc" "src/CMakeFiles/pcs_core.dir/core/lemmas.cpp.o.d"
  "/root/repo/src/core/verification.cpp" "src/CMakeFiles/pcs_core.dir/core/verification.cpp.o" "gcc" "src/CMakeFiles/pcs_core.dir/core/verification.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pcs_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_sortnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_message.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
