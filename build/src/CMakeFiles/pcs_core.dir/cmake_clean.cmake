file(REMOVE_RECURSE
  "CMakeFiles/pcs_core.dir/core/adversary.cpp.o"
  "CMakeFiles/pcs_core.dir/core/adversary.cpp.o.d"
  "CMakeFiles/pcs_core.dir/core/bounds.cpp.o"
  "CMakeFiles/pcs_core.dir/core/bounds.cpp.o.d"
  "CMakeFiles/pcs_core.dir/core/epsilon_stats.cpp.o"
  "CMakeFiles/pcs_core.dir/core/epsilon_stats.cpp.o.d"
  "CMakeFiles/pcs_core.dir/core/lemmas.cpp.o"
  "CMakeFiles/pcs_core.dir/core/lemmas.cpp.o.d"
  "CMakeFiles/pcs_core.dir/core/verification.cpp.o"
  "CMakeFiles/pcs_core.dir/core/verification.cpp.o.d"
  "libpcs_core.a"
  "libpcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
