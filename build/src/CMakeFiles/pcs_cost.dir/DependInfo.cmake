
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/layout.cpp" "src/CMakeFiles/pcs_cost.dir/cost/layout.cpp.o" "gcc" "src/CMakeFiles/pcs_cost.dir/cost/layout.cpp.o.d"
  "/root/repo/src/cost/render.cpp" "src/CMakeFiles/pcs_cost.dir/cost/render.cpp.o" "gcc" "src/CMakeFiles/pcs_cost.dir/cost/render.cpp.o.d"
  "/root/repo/src/cost/resource_model.cpp" "src/CMakeFiles/pcs_cost.dir/cost/resource_model.cpp.o" "gcc" "src/CMakeFiles/pcs_cost.dir/cost/resource_model.cpp.o.d"
  "/root/repo/src/cost/scaling.cpp" "src/CMakeFiles/pcs_cost.dir/cost/scaling.cpp.o" "gcc" "src/CMakeFiles/pcs_cost.dir/cost/scaling.cpp.o.d"
  "/root/repo/src/cost/table1.cpp" "src/CMakeFiles/pcs_cost.dir/cost/table1.cpp.o" "gcc" "src/CMakeFiles/pcs_cost.dir/cost/table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pcs_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_sortnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
