file(REMOVE_RECURSE
  "CMakeFiles/pcs_cost.dir/cost/layout.cpp.o"
  "CMakeFiles/pcs_cost.dir/cost/layout.cpp.o.d"
  "CMakeFiles/pcs_cost.dir/cost/render.cpp.o"
  "CMakeFiles/pcs_cost.dir/cost/render.cpp.o.d"
  "CMakeFiles/pcs_cost.dir/cost/resource_model.cpp.o"
  "CMakeFiles/pcs_cost.dir/cost/resource_model.cpp.o.d"
  "CMakeFiles/pcs_cost.dir/cost/scaling.cpp.o"
  "CMakeFiles/pcs_cost.dir/cost/scaling.cpp.o.d"
  "CMakeFiles/pcs_cost.dir/cost/table1.cpp.o"
  "CMakeFiles/pcs_cost.dir/cost/table1.cpp.o.d"
  "libpcs_cost.a"
  "libpcs_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcs_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
