file(REMOVE_RECURSE
  "libpcs_cost.a"
)
