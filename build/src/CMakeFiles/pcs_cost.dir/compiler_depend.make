# Empty compiler generated dependencies file for pcs_cost.
# This may be replaced when dependencies are built.
