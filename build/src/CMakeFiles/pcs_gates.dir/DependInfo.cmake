
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gates/builder.cpp" "src/CMakeFiles/pcs_gates.dir/gates/builder.cpp.o" "gcc" "src/CMakeFiles/pcs_gates.dir/gates/builder.cpp.o.d"
  "/root/repo/src/gates/circuit.cpp" "src/CMakeFiles/pcs_gates.dir/gates/circuit.cpp.o" "gcc" "src/CMakeFiles/pcs_gates.dir/gates/circuit.cpp.o.d"
  "/root/repo/src/gates/evaluator.cpp" "src/CMakeFiles/pcs_gates.dir/gates/evaluator.cpp.o" "gcc" "src/CMakeFiles/pcs_gates.dir/gates/evaluator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
