file(REMOVE_RECURSE
  "CMakeFiles/pcs_gates.dir/gates/builder.cpp.o"
  "CMakeFiles/pcs_gates.dir/gates/builder.cpp.o.d"
  "CMakeFiles/pcs_gates.dir/gates/circuit.cpp.o"
  "CMakeFiles/pcs_gates.dir/gates/circuit.cpp.o.d"
  "CMakeFiles/pcs_gates.dir/gates/evaluator.cpp.o"
  "CMakeFiles/pcs_gates.dir/gates/evaluator.cpp.o.d"
  "libpcs_gates.a"
  "libpcs_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcs_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
