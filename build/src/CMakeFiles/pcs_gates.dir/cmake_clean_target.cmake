file(REMOVE_RECURSE
  "libpcs_gates.a"
)
