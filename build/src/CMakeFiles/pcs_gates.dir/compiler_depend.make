# Empty compiler generated dependencies file for pcs_gates.
# This may be replaced when dependencies are built.
