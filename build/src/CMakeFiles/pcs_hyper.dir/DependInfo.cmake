
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hyper/barrel_shifter.cpp" "src/CMakeFiles/pcs_hyper.dir/hyper/barrel_shifter.cpp.o" "gcc" "src/CMakeFiles/pcs_hyper.dir/hyper/barrel_shifter.cpp.o.d"
  "/root/repo/src/hyper/hyper_circuit.cpp" "src/CMakeFiles/pcs_hyper.dir/hyper/hyper_circuit.cpp.o" "gcc" "src/CMakeFiles/pcs_hyper.dir/hyper/hyper_circuit.cpp.o.d"
  "/root/repo/src/hyper/hyperconcentrator.cpp" "src/CMakeFiles/pcs_hyper.dir/hyper/hyperconcentrator.cpp.o" "gcc" "src/CMakeFiles/pcs_hyper.dir/hyper/hyperconcentrator.cpp.o.d"
  "/root/repo/src/hyper/prefix_butterfly.cpp" "src/CMakeFiles/pcs_hyper.dir/hyper/prefix_butterfly.cpp.o" "gcc" "src/CMakeFiles/pcs_hyper.dir/hyper/prefix_butterfly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pcs_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
