file(REMOVE_RECURSE
  "CMakeFiles/pcs_hyper.dir/hyper/barrel_shifter.cpp.o"
  "CMakeFiles/pcs_hyper.dir/hyper/barrel_shifter.cpp.o.d"
  "CMakeFiles/pcs_hyper.dir/hyper/hyper_circuit.cpp.o"
  "CMakeFiles/pcs_hyper.dir/hyper/hyper_circuit.cpp.o.d"
  "CMakeFiles/pcs_hyper.dir/hyper/hyperconcentrator.cpp.o"
  "CMakeFiles/pcs_hyper.dir/hyper/hyperconcentrator.cpp.o.d"
  "CMakeFiles/pcs_hyper.dir/hyper/prefix_butterfly.cpp.o"
  "CMakeFiles/pcs_hyper.dir/hyper/prefix_butterfly.cpp.o.d"
  "libpcs_hyper.a"
  "libpcs_hyper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcs_hyper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
