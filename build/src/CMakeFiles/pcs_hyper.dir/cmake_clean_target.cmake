file(REMOVE_RECURSE
  "libpcs_hyper.a"
)
