# Empty dependencies file for pcs_hyper.
# This may be replaced when dependencies are built.
