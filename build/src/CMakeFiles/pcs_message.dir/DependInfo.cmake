
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/message/ack_protocol.cpp" "src/CMakeFiles/pcs_message.dir/message/ack_protocol.cpp.o" "gcc" "src/CMakeFiles/pcs_message.dir/message/ack_protocol.cpp.o.d"
  "/root/repo/src/message/clocked_sim.cpp" "src/CMakeFiles/pcs_message.dir/message/clocked_sim.cpp.o" "gcc" "src/CMakeFiles/pcs_message.dir/message/clocked_sim.cpp.o.d"
  "/root/repo/src/message/congestion.cpp" "src/CMakeFiles/pcs_message.dir/message/congestion.cpp.o" "gcc" "src/CMakeFiles/pcs_message.dir/message/congestion.cpp.o.d"
  "/root/repo/src/message/message.cpp" "src/CMakeFiles/pcs_message.dir/message/message.cpp.o" "gcc" "src/CMakeFiles/pcs_message.dir/message/message.cpp.o.d"
  "/root/repo/src/message/pipeline.cpp" "src/CMakeFiles/pcs_message.dir/message/pipeline.cpp.o" "gcc" "src/CMakeFiles/pcs_message.dir/message/pipeline.cpp.o.d"
  "/root/repo/src/message/stream_engine.cpp" "src/CMakeFiles/pcs_message.dir/message/stream_engine.cpp.o" "gcc" "src/CMakeFiles/pcs_message.dir/message/stream_engine.cpp.o.d"
  "/root/repo/src/message/traffic.cpp" "src/CMakeFiles/pcs_message.dir/message/traffic.cpp.o" "gcc" "src/CMakeFiles/pcs_message.dir/message/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pcs_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_sortnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
