file(REMOVE_RECURSE
  "CMakeFiles/pcs_message.dir/message/ack_protocol.cpp.o"
  "CMakeFiles/pcs_message.dir/message/ack_protocol.cpp.o.d"
  "CMakeFiles/pcs_message.dir/message/clocked_sim.cpp.o"
  "CMakeFiles/pcs_message.dir/message/clocked_sim.cpp.o.d"
  "CMakeFiles/pcs_message.dir/message/congestion.cpp.o"
  "CMakeFiles/pcs_message.dir/message/congestion.cpp.o.d"
  "CMakeFiles/pcs_message.dir/message/message.cpp.o"
  "CMakeFiles/pcs_message.dir/message/message.cpp.o.d"
  "CMakeFiles/pcs_message.dir/message/pipeline.cpp.o"
  "CMakeFiles/pcs_message.dir/message/pipeline.cpp.o.d"
  "CMakeFiles/pcs_message.dir/message/stream_engine.cpp.o"
  "CMakeFiles/pcs_message.dir/message/stream_engine.cpp.o.d"
  "CMakeFiles/pcs_message.dir/message/traffic.cpp.o"
  "CMakeFiles/pcs_message.dir/message/traffic.cpp.o.d"
  "libpcs_message.a"
  "libpcs_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcs_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
