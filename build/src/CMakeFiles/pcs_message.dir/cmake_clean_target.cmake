file(REMOVE_RECURSE
  "libpcs_message.a"
)
