# Empty compiler generated dependencies file for pcs_message.
# This may be replaced when dependencies are built.
