
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/concentrator_tree.cpp" "src/CMakeFiles/pcs_network.dir/network/concentrator_tree.cpp.o" "gcc" "src/CMakeFiles/pcs_network.dir/network/concentrator_tree.cpp.o.d"
  "/root/repo/src/network/knockout.cpp" "src/CMakeFiles/pcs_network.dir/network/knockout.cpp.o" "gcc" "src/CMakeFiles/pcs_network.dir/network/knockout.cpp.o.d"
  "/root/repo/src/network/multistage.cpp" "src/CMakeFiles/pcs_network.dir/network/multistage.cpp.o" "gcc" "src/CMakeFiles/pcs_network.dir/network/multistage.cpp.o.d"
  "/root/repo/src/network/router_sim.cpp" "src/CMakeFiles/pcs_network.dir/network/router_sim.cpp.o" "gcc" "src/CMakeFiles/pcs_network.dir/network/router_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pcs_message.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_sortnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
