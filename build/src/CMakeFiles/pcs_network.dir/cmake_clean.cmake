file(REMOVE_RECURSE
  "CMakeFiles/pcs_network.dir/network/concentrator_tree.cpp.o"
  "CMakeFiles/pcs_network.dir/network/concentrator_tree.cpp.o.d"
  "CMakeFiles/pcs_network.dir/network/knockout.cpp.o"
  "CMakeFiles/pcs_network.dir/network/knockout.cpp.o.d"
  "CMakeFiles/pcs_network.dir/network/multistage.cpp.o"
  "CMakeFiles/pcs_network.dir/network/multistage.cpp.o.d"
  "CMakeFiles/pcs_network.dir/network/router_sim.cpp.o"
  "CMakeFiles/pcs_network.dir/network/router_sim.cpp.o.d"
  "libpcs_network.a"
  "libpcs_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcs_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
