file(REMOVE_RECURSE
  "libpcs_network.a"
)
