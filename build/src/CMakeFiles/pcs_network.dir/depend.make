# Empty dependencies file for pcs_network.
# This may be replaced when dependencies are built.
