
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sortnet/columnsort.cpp" "src/CMakeFiles/pcs_sortnet.dir/sortnet/columnsort.cpp.o" "gcc" "src/CMakeFiles/pcs_sortnet.dir/sortnet/columnsort.cpp.o.d"
  "/root/repo/src/sortnet/comparator_net.cpp" "src/CMakeFiles/pcs_sortnet.dir/sortnet/comparator_net.cpp.o" "gcc" "src/CMakeFiles/pcs_sortnet.dir/sortnet/comparator_net.cpp.o.d"
  "/root/repo/src/sortnet/displacement.cpp" "src/CMakeFiles/pcs_sortnet.dir/sortnet/displacement.cpp.o" "gcc" "src/CMakeFiles/pcs_sortnet.dir/sortnet/displacement.cpp.o.d"
  "/root/repo/src/sortnet/mesh_ops.cpp" "src/CMakeFiles/pcs_sortnet.dir/sortnet/mesh_ops.cpp.o" "gcc" "src/CMakeFiles/pcs_sortnet.dir/sortnet/mesh_ops.cpp.o.d"
  "/root/repo/src/sortnet/nearsort.cpp" "src/CMakeFiles/pcs_sortnet.dir/sortnet/nearsort.cpp.o" "gcc" "src/CMakeFiles/pcs_sortnet.dir/sortnet/nearsort.cpp.o.d"
  "/root/repo/src/sortnet/revsort.cpp" "src/CMakeFiles/pcs_sortnet.dir/sortnet/revsort.cpp.o" "gcc" "src/CMakeFiles/pcs_sortnet.dir/sortnet/revsort.cpp.o.d"
  "/root/repo/src/sortnet/shearsort.cpp" "src/CMakeFiles/pcs_sortnet.dir/sortnet/shearsort.cpp.o" "gcc" "src/CMakeFiles/pcs_sortnet.dir/sortnet/shearsort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
