file(REMOVE_RECURSE
  "CMakeFiles/pcs_sortnet.dir/sortnet/columnsort.cpp.o"
  "CMakeFiles/pcs_sortnet.dir/sortnet/columnsort.cpp.o.d"
  "CMakeFiles/pcs_sortnet.dir/sortnet/comparator_net.cpp.o"
  "CMakeFiles/pcs_sortnet.dir/sortnet/comparator_net.cpp.o.d"
  "CMakeFiles/pcs_sortnet.dir/sortnet/displacement.cpp.o"
  "CMakeFiles/pcs_sortnet.dir/sortnet/displacement.cpp.o.d"
  "CMakeFiles/pcs_sortnet.dir/sortnet/mesh_ops.cpp.o"
  "CMakeFiles/pcs_sortnet.dir/sortnet/mesh_ops.cpp.o.d"
  "CMakeFiles/pcs_sortnet.dir/sortnet/nearsort.cpp.o"
  "CMakeFiles/pcs_sortnet.dir/sortnet/nearsort.cpp.o.d"
  "CMakeFiles/pcs_sortnet.dir/sortnet/revsort.cpp.o"
  "CMakeFiles/pcs_sortnet.dir/sortnet/revsort.cpp.o.d"
  "CMakeFiles/pcs_sortnet.dir/sortnet/shearsort.cpp.o"
  "CMakeFiles/pcs_sortnet.dir/sortnet/shearsort.cpp.o.d"
  "libpcs_sortnet.a"
  "libpcs_sortnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcs_sortnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
