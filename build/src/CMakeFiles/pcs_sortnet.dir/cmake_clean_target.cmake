file(REMOVE_RECURSE
  "libpcs_sortnet.a"
)
