# Empty compiler generated dependencies file for pcs_sortnet.
# This may be replaced when dependencies are built.
