
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switch/chip.cpp" "src/CMakeFiles/pcs_switch.dir/switch/chip.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/chip.cpp.o.d"
  "/root/repo/src/switch/columnsort_switch.cpp" "src/CMakeFiles/pcs_switch.dir/switch/columnsort_switch.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/columnsort_switch.cpp.o.d"
  "/root/repo/src/switch/comparator_switch.cpp" "src/CMakeFiles/pcs_switch.dir/switch/comparator_switch.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/comparator_switch.cpp.o.d"
  "/root/repo/src/switch/concentrator.cpp" "src/CMakeFiles/pcs_switch.dir/switch/concentrator.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/concentrator.cpp.o.d"
  "/root/repo/src/switch/faults.cpp" "src/CMakeFiles/pcs_switch.dir/switch/faults.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/faults.cpp.o.d"
  "/root/repo/src/switch/full_sort_hyper.cpp" "src/CMakeFiles/pcs_switch.dir/switch/full_sort_hyper.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/full_sort_hyper.cpp.o.d"
  "/root/repo/src/switch/gate_level_switch.cpp" "src/CMakeFiles/pcs_switch.dir/switch/gate_level_switch.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/gate_level_switch.cpp.o.d"
  "/root/repo/src/switch/hyper_switch.cpp" "src/CMakeFiles/pcs_switch.dir/switch/hyper_switch.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/hyper_switch.cpp.o.d"
  "/root/repo/src/switch/label_mesh.cpp" "src/CMakeFiles/pcs_switch.dir/switch/label_mesh.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/label_mesh.cpp.o.d"
  "/root/repo/src/switch/multipass_switch.cpp" "src/CMakeFiles/pcs_switch.dir/switch/multipass_switch.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/multipass_switch.cpp.o.d"
  "/root/repo/src/switch/perfect_from_partial.cpp" "src/CMakeFiles/pcs_switch.dir/switch/perfect_from_partial.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/perfect_from_partial.cpp.o.d"
  "/root/repo/src/switch/revsort_switch.cpp" "src/CMakeFiles/pcs_switch.dir/switch/revsort_switch.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/revsort_switch.cpp.o.d"
  "/root/repo/src/switch/wiring.cpp" "src/CMakeFiles/pcs_switch.dir/switch/wiring.cpp.o" "gcc" "src/CMakeFiles/pcs_switch.dir/switch/wiring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pcs_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_sortnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
