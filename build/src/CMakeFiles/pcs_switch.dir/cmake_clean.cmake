file(REMOVE_RECURSE
  "CMakeFiles/pcs_switch.dir/switch/chip.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/chip.cpp.o.d"
  "CMakeFiles/pcs_switch.dir/switch/columnsort_switch.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/columnsort_switch.cpp.o.d"
  "CMakeFiles/pcs_switch.dir/switch/comparator_switch.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/comparator_switch.cpp.o.d"
  "CMakeFiles/pcs_switch.dir/switch/concentrator.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/concentrator.cpp.o.d"
  "CMakeFiles/pcs_switch.dir/switch/faults.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/faults.cpp.o.d"
  "CMakeFiles/pcs_switch.dir/switch/full_sort_hyper.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/full_sort_hyper.cpp.o.d"
  "CMakeFiles/pcs_switch.dir/switch/gate_level_switch.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/gate_level_switch.cpp.o.d"
  "CMakeFiles/pcs_switch.dir/switch/hyper_switch.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/hyper_switch.cpp.o.d"
  "CMakeFiles/pcs_switch.dir/switch/label_mesh.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/label_mesh.cpp.o.d"
  "CMakeFiles/pcs_switch.dir/switch/multipass_switch.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/multipass_switch.cpp.o.d"
  "CMakeFiles/pcs_switch.dir/switch/perfect_from_partial.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/perfect_from_partial.cpp.o.d"
  "CMakeFiles/pcs_switch.dir/switch/revsort_switch.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/revsort_switch.cpp.o.d"
  "CMakeFiles/pcs_switch.dir/switch/wiring.cpp.o"
  "CMakeFiles/pcs_switch.dir/switch/wiring.cpp.o.d"
  "libpcs_switch.a"
  "libpcs_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcs_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
