file(REMOVE_RECURSE
  "libpcs_switch.a"
)
