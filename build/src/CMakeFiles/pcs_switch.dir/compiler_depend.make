# Empty compiler generated dependencies file for pcs_switch.
# This may be replaced when dependencies are built.
