
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bitmatrix.cpp" "src/CMakeFiles/pcs_util.dir/util/bitmatrix.cpp.o" "gcc" "src/CMakeFiles/pcs_util.dir/util/bitmatrix.cpp.o.d"
  "/root/repo/src/util/bitvec.cpp" "src/CMakeFiles/pcs_util.dir/util/bitvec.cpp.o" "gcc" "src/CMakeFiles/pcs_util.dir/util/bitvec.cpp.o.d"
  "/root/repo/src/util/digest.cpp" "src/CMakeFiles/pcs_util.dir/util/digest.cpp.o" "gcc" "src/CMakeFiles/pcs_util.dir/util/digest.cpp.o.d"
  "/root/repo/src/util/mathutil.cpp" "src/CMakeFiles/pcs_util.dir/util/mathutil.cpp.o" "gcc" "src/CMakeFiles/pcs_util.dir/util/mathutil.cpp.o.d"
  "/root/repo/src/util/parallel.cpp" "src/CMakeFiles/pcs_util.dir/util/parallel.cpp.o" "gcc" "src/CMakeFiles/pcs_util.dir/util/parallel.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/pcs_util.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/pcs_util.dir/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
