file(REMOVE_RECURSE
  "CMakeFiles/pcs_util.dir/util/bitmatrix.cpp.o"
  "CMakeFiles/pcs_util.dir/util/bitmatrix.cpp.o.d"
  "CMakeFiles/pcs_util.dir/util/bitvec.cpp.o"
  "CMakeFiles/pcs_util.dir/util/bitvec.cpp.o.d"
  "CMakeFiles/pcs_util.dir/util/digest.cpp.o"
  "CMakeFiles/pcs_util.dir/util/digest.cpp.o.d"
  "CMakeFiles/pcs_util.dir/util/mathutil.cpp.o"
  "CMakeFiles/pcs_util.dir/util/mathutil.cpp.o.d"
  "CMakeFiles/pcs_util.dir/util/parallel.cpp.o"
  "CMakeFiles/pcs_util.dir/util/parallel.cpp.o.d"
  "CMakeFiles/pcs_util.dir/util/rng.cpp.o"
  "CMakeFiles/pcs_util.dir/util/rng.cpp.o.d"
  "libpcs_util.a"
  "libpcs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
