# Empty dependencies file for pcs_util.
# This may be replaced when dependencies are built.
