# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libpcs_util.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libpcs_sortnet.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libpcs_gates.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libpcs_hyper.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libpcs_switch.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libpcs_cost.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libpcs_message.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libpcs_network.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libpcs_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/pcs" TYPE DIRECTORY FILES
    "/root/repo/src/util"
    "/root/repo/src/sortnet"
    "/root/repo/src/gates"
    "/root/repo/src/hyper"
    "/root/repo/src/switch"
    "/root/repo/src/cost"
    "/root/repo/src/message"
    "/root/repo/src/network"
    "/root/repo/src/core"
    FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/pcs" TYPE FILE FILES "/root/repo/src/pcs.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/pcs/pcsConfig.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/pcs/pcsConfig.cmake"
         "/root/repo/build/src/CMakeFiles/Export/0ef5a1871cefab4167f197f86f44ddc1/pcsConfig.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/pcs/pcsConfig-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/pcs/pcsConfig.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/pcs" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/0ef5a1871cefab4167f197f86f44ddc1/pcsConfig.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/pcs" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/0ef5a1871cefab4167f197f86f44ddc1/pcsConfig-relwithdebinfo.cmake")
  endif()
endif()

