
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ack_protocol.cpp" "tests/CMakeFiles/pcs_tests.dir/test_ack_protocol.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_ack_protocol.cpp.o.d"
  "/root/repo/tests/test_adversary.cpp" "tests/CMakeFiles/pcs_tests.dir/test_adversary.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_adversary.cpp.o.d"
  "/root/repo/tests/test_assert.cpp" "tests/CMakeFiles/pcs_tests.dir/test_assert.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_assert.cpp.o.d"
  "/root/repo/tests/test_barrel_shifter.cpp" "tests/CMakeFiles/pcs_tests.dir/test_barrel_shifter.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_barrel_shifter.cpp.o.d"
  "/root/repo/tests/test_bitmatrix.cpp" "tests/CMakeFiles/pcs_tests.dir/test_bitmatrix.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_bitmatrix.cpp.o.d"
  "/root/repo/tests/test_bitvec.cpp" "tests/CMakeFiles/pcs_tests.dir/test_bitvec.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_bitvec.cpp.o.d"
  "/root/repo/tests/test_bounds.cpp" "tests/CMakeFiles/pcs_tests.dir/test_bounds.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_bounds.cpp.o.d"
  "/root/repo/tests/test_builder.cpp" "tests/CMakeFiles/pcs_tests.dir/test_builder.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_builder.cpp.o.d"
  "/root/repo/tests/test_chip.cpp" "tests/CMakeFiles/pcs_tests.dir/test_chip.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_chip.cpp.o.d"
  "/root/repo/tests/test_circuit.cpp" "tests/CMakeFiles/pcs_tests.dir/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_circuit.cpp.o.d"
  "/root/repo/tests/test_clocked_sim.cpp" "tests/CMakeFiles/pcs_tests.dir/test_clocked_sim.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_clocked_sim.cpp.o.d"
  "/root/repo/tests/test_columnsort.cpp" "tests/CMakeFiles/pcs_tests.dir/test_columnsort.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_columnsort.cpp.o.d"
  "/root/repo/tests/test_columnsort_switch.cpp" "tests/CMakeFiles/pcs_tests.dir/test_columnsort_switch.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_columnsort_switch.cpp.o.d"
  "/root/repo/tests/test_comparator_net.cpp" "tests/CMakeFiles/pcs_tests.dir/test_comparator_net.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_comparator_net.cpp.o.d"
  "/root/repo/tests/test_comparator_switch.cpp" "tests/CMakeFiles/pcs_tests.dir/test_comparator_switch.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_comparator_switch.cpp.o.d"
  "/root/repo/tests/test_concentrator.cpp" "tests/CMakeFiles/pcs_tests.dir/test_concentrator.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_concentrator.cpp.o.d"
  "/root/repo/tests/test_concentrator_tree.cpp" "tests/CMakeFiles/pcs_tests.dir/test_concentrator_tree.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_concentrator_tree.cpp.o.d"
  "/root/repo/tests/test_congestion.cpp" "tests/CMakeFiles/pcs_tests.dir/test_congestion.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_congestion.cpp.o.d"
  "/root/repo/tests/test_cost_misc.cpp" "tests/CMakeFiles/pcs_tests.dir/test_cost_misc.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_cost_misc.cpp.o.d"
  "/root/repo/tests/test_digest.cpp" "tests/CMakeFiles/pcs_tests.dir/test_digest.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_digest.cpp.o.d"
  "/root/repo/tests/test_displacement.cpp" "tests/CMakeFiles/pcs_tests.dir/test_displacement.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_displacement.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/pcs_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_epsilon_stats.cpp" "tests/CMakeFiles/pcs_tests.dir/test_epsilon_stats.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_epsilon_stats.cpp.o.d"
  "/root/repo/tests/test_exhaustive_small.cpp" "tests/CMakeFiles/pcs_tests.dir/test_exhaustive_small.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_exhaustive_small.cpp.o.d"
  "/root/repo/tests/test_faults.cpp" "tests/CMakeFiles/pcs_tests.dir/test_faults.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_faults.cpp.o.d"
  "/root/repo/tests/test_full_sort_hyper.cpp" "tests/CMakeFiles/pcs_tests.dir/test_full_sort_hyper.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_full_sort_hyper.cpp.o.d"
  "/root/repo/tests/test_fuzz_differential.cpp" "tests/CMakeFiles/pcs_tests.dir/test_fuzz_differential.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_fuzz_differential.cpp.o.d"
  "/root/repo/tests/test_gate_level_streaming.cpp" "tests/CMakeFiles/pcs_tests.dir/test_gate_level_streaming.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_gate_level_streaming.cpp.o.d"
  "/root/repo/tests/test_gate_level_switch.cpp" "tests/CMakeFiles/pcs_tests.dir/test_gate_level_switch.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_gate_level_switch.cpp.o.d"
  "/root/repo/tests/test_hyper_circuit.cpp" "tests/CMakeFiles/pcs_tests.dir/test_hyper_circuit.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_hyper_circuit.cpp.o.d"
  "/root/repo/tests/test_hyperconcentrator.cpp" "tests/CMakeFiles/pcs_tests.dir/test_hyperconcentrator.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_hyperconcentrator.cpp.o.d"
  "/root/repo/tests/test_instantiate.cpp" "tests/CMakeFiles/pcs_tests.dir/test_instantiate.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_instantiate.cpp.o.d"
  "/root/repo/tests/test_knockout.cpp" "tests/CMakeFiles/pcs_tests.dir/test_knockout.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_knockout.cpp.o.d"
  "/root/repo/tests/test_label_mesh.cpp" "tests/CMakeFiles/pcs_tests.dir/test_label_mesh.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_label_mesh.cpp.o.d"
  "/root/repo/tests/test_layout.cpp" "tests/CMakeFiles/pcs_tests.dir/test_layout.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_layout.cpp.o.d"
  "/root/repo/tests/test_lemmas.cpp" "tests/CMakeFiles/pcs_tests.dir/test_lemmas.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_lemmas.cpp.o.d"
  "/root/repo/tests/test_mathutil.cpp" "tests/CMakeFiles/pcs_tests.dir/test_mathutil.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_mathutil.cpp.o.d"
  "/root/repo/tests/test_mesh_ops.cpp" "tests/CMakeFiles/pcs_tests.dir/test_mesh_ops.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_mesh_ops.cpp.o.d"
  "/root/repo/tests/test_message.cpp" "tests/CMakeFiles/pcs_tests.dir/test_message.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_message.cpp.o.d"
  "/root/repo/tests/test_multipass_switch.cpp" "tests/CMakeFiles/pcs_tests.dir/test_multipass_switch.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_multipass_switch.cpp.o.d"
  "/root/repo/tests/test_multistage.cpp" "tests/CMakeFiles/pcs_tests.dir/test_multistage.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_multistage.cpp.o.d"
  "/root/repo/tests/test_nearsort.cpp" "tests/CMakeFiles/pcs_tests.dir/test_nearsort.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_nearsort.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/pcs_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_param_batteries.cpp" "tests/CMakeFiles/pcs_tests.dir/test_param_batteries.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_param_batteries.cpp.o.d"
  "/root/repo/tests/test_perfect_from_partial.cpp" "tests/CMakeFiles/pcs_tests.dir/test_perfect_from_partial.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_perfect_from_partial.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/pcs_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_polymorphic_sweep.cpp" "tests/CMakeFiles/pcs_tests.dir/test_polymorphic_sweep.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_polymorphic_sweep.cpp.o.d"
  "/root/repo/tests/test_prefix_butterfly.cpp" "tests/CMakeFiles/pcs_tests.dir/test_prefix_butterfly.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_prefix_butterfly.cpp.o.d"
  "/root/repo/tests/test_render.cpp" "tests/CMakeFiles/pcs_tests.dir/test_render.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_render.cpp.o.d"
  "/root/repo/tests/test_resource_model.cpp" "tests/CMakeFiles/pcs_tests.dir/test_resource_model.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_resource_model.cpp.o.d"
  "/root/repo/tests/test_revsort.cpp" "tests/CMakeFiles/pcs_tests.dir/test_revsort.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_revsort.cpp.o.d"
  "/root/repo/tests/test_revsort_switch.cpp" "tests/CMakeFiles/pcs_tests.dir/test_revsort_switch.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_revsort_switch.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/pcs_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_router_sim.cpp" "tests/CMakeFiles/pcs_tests.dir/test_router_sim.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_router_sim.cpp.o.d"
  "/root/repo/tests/test_scaling.cpp" "tests/CMakeFiles/pcs_tests.dir/test_scaling.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_scaling.cpp.o.d"
  "/root/repo/tests/test_shearsort.cpp" "tests/CMakeFiles/pcs_tests.dir/test_shearsort.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_shearsort.cpp.o.d"
  "/root/repo/tests/test_stream_engine.cpp" "tests/CMakeFiles/pcs_tests.dir/test_stream_engine.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_stream_engine.cpp.o.d"
  "/root/repo/tests/test_table1.cpp" "tests/CMakeFiles/pcs_tests.dir/test_table1.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_table1.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/pcs_tests.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_traffic.cpp.o.d"
  "/root/repo/tests/test_verification.cpp" "tests/CMakeFiles/pcs_tests.dir/test_verification.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_verification.cpp.o.d"
  "/root/repo/tests/test_wiring.cpp" "tests/CMakeFiles/pcs_tests.dir/test_wiring.cpp.o" "gcc" "tests/CMakeFiles/pcs_tests.dir/test_wiring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_message.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_sortnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
