# Empty dependencies file for pcs_tests.
# This may be replaced when dependencies are built.
