// butterfly_trace: watch Section 1's clocked hyperconcentrator work -- the
// parallel-prefix ranks, then the stage-by-stage self-routing of messages
// through the butterfly (LSB-first), which is conflict-free for every
// concentration pattern.
//
//   $ ./butterfly_trace [n] [k] [seed]     (defaults: 16 6 3)
#include <cstdio>
#include <cstdlib>

#include "hyper/prefix_butterfly.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  std::size_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6;
  std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;
  if (!pcs::is_pow2(n) || n < 2 || n > 64 || k > n) {
    std::fprintf(stderr, "need power-of-two n in [2,64] and k <= n\n");
    return 1;
  }

  pcs::Rng rng(seed);
  pcs::BitVec valid = rng.exact_weight_bits(n, k);
  pcs::hyper::PrefixButterflySwitch sw(n);

  std::printf("prefix+butterfly hyperconcentrator, n=%zu, k=%zu messages\n", n, k);
  std::printf("phase 1: %zu sequential prefix steps compute each message's rank\n",
              sw.prefix_steps());
  std::printf("  valid bits: %s\n", valid.to_string().c_str());
  std::printf("  ranks:     ");
  for (std::size_t i = 0; i < n; ++i) {
    if (valid.get(i)) {
      std::printf(" %zu->%zu", i, valid.rank1_before(i));
    }
  }
  std::printf("\n\nphase 2: %zu butterfly stages (destination bits fixed "
              "LSB-first)\n\n",
              sw.butterfly_stages());

  auto trace = sw.route_traced(valid);
  for (std::size_t t = 0; t < trace.rows.size(); ++t) {
    if (t == 0) {
      std::printf("%-10s", "inputs");
    } else {
      std::printf("stage %-4zu", t);
    }
    for (std::int32_t src : trace.rows[t]) {
      if (src < 0) {
        std::printf("  ..");
      } else {
        std::printf(" %3d", src);
      }
    }
    std::printf("\n");
  }
  std::printf("\nconflict-free: %s\n", trace.conflict_free ? "yes" : "NO");
  std::printf("final row r carries the message of rank r: the k messages sit on\n"
              "outputs 0..k-1, exactly the hyperconcentrator contract.\n");
  return 0;
}
