// chip_planner: the design-space exploration a switch architect would do
// with this library.  Given a switch size n, output count m, and a per-chip
// pin budget, enumerate the feasible designs (single-chip, Revsort,
// Columnsort across beta, and the full-sorting variants), print their
// bill-of-materials and resource figures, and recommend the cheapest
// feasible one.
//
//   $ ./chip_planner [n] [m] [pin_budget]     (defaults: 65536 32768 1024)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "pcs.hpp"

namespace {

struct Candidate {
  pcs::cost::ResourceReport report;
  bool feasible = false;
};

void print_candidate(const Candidate& c, std::size_t pin_budget) {
  const auto& r = c.report;
  std::printf("%-34s %8zu %8zu %8.4f %8zu %14zu %10s\n", r.design.c_str(),
              r.pins_per_chip, r.chip_count, r.load_ratio, r.gate_delays,
              r.volume_3d, r.pins_per_chip <= pin_budget ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 16);
  std::size_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : n / 2;
  std::size_t pin_budget = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1024;

  if (!pcs::is_pow2(n)) {
    std::fprintf(stderr, "n must be a power of two (got %zu)\n", n);
    return 1;
  }
  if (m == 0 || m > n) {
    std::fprintf(stderr, "need 1 <= m <= n\n");
    return 1;
  }

  std::printf("planning an n=%zu -> m=%zu concentrator, pin budget %zu/chip\n\n", n,
              m, pin_budget);
  std::printf("%-34s %8s %8s %8s %8s %14s %10s\n", "design", "pins", "chips",
              "alpha", "delay", "volume", "fits?");

  std::vector<Candidate> candidates;

  // Single chip: always listed, usually infeasible -- the paper's premise.
  candidates.push_back({pcs::cost::hyper_chip_report(n, m), false});

  // Revsort, when n is a valid shape.
  std::size_t side = pcs::isqrt(n);
  if (side * side == n && pcs::is_pow2(side)) {
    candidates.push_back({pcs::cost::revsort_report(n, m), false});
  }

  // Columnsort across the beta grid.  The compiled plan carries the
  // realized shape: stage 0 is s chips of width r.
  for (double beta : {0.5, 0.5625, 0.625, 0.6875, 0.75, 0.875, 1.0}) {
    pcs::SwitchSpec cs;
    cs.family = "columnsort";
    cs.n = n;
    cs.m = m;
    cs.beta = beta;
    const pcs::plan::SwitchPlan plan = pcs::make_switch_plan(cs);
    const std::size_t r = plan.stages[0].width;
    const std::size_t s = plan.stages[0].chips;
    // Skip duplicate realized shapes.
    bool dup = false;
    for (const Candidate& c : candidates) {
      if (c.report.design.find("columnsort") != std::string::npos &&
          c.report.pins_per_chip == 2 * r) {
        dup = true;
      }
    }
    if (dup) continue;
    auto rep = pcs::cost::columnsort_report(r, s, m);
    const double realized =
        std::log2(static_cast<double>(r)) / std::log2(static_cast<double>(n));
    rep.design += " (beta=" + std::to_string(realized).substr(0, 5) + ")";
    candidates.push_back({rep, false});
  }

  // Multipass Columnsort (alternating reshapes): one more chip crossing per
  // pass, much better worst epsilon (see bench_open_question).  Chip, delay,
  // and volume tallies come straight from the compiled plan's structure;
  // only epsilon is empirically calibrated.
  {
    pcs::SwitchSpec shape;
    shape.family = "columnsort";
    shape.n = n;
    shape.m = m;
    shape.beta = 0.625;
    const pcs::plan::SwitchPlan base = pcs::make_switch_plan(shape);
    const std::size_t r = base.stages[0].width;
    const std::size_t s = base.stages[0].chips;
    if (s > 1) {
      pcs::SwitchSpec mp;
      mp.family = "multipass";
      mp.r = r;
      mp.s = s;
      mp.passes = 3;
      mp.m = m;
      mp.schedule = pcs::plan::ReshapeSchedule::kAlternating;
      auto rep = pcs::cost::plan_report(pcs::make_switch_plan(mp));
      rep.design = "multipass columnsort (d=3, alt)";
      // Empirically calibrated epsilon ~ s - 1 at d = 3 (EXPERIMENTS.md D9);
      // the plan advertises only the proven d = 1 bound (s-1)^2.
      rep.epsilon = s - 1;
      rep.load_ratio = 1.0 - static_cast<double>(rep.epsilon) / static_cast<double>(m);
      candidates.push_back({rep, false});
    }
  }

  // Full-sorting variants for designers who need a true hyperconcentrator.
  if (side * side == n && pcs::is_pow2(side)) {
    candidates.push_back({pcs::cost::full_revsort_report(n), false});
  }

  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    Candidate& c = candidates[i];
    c.feasible = c.report.pins_per_chip <= pin_budget && c.report.load_ratio > 0.0;
    print_candidate(c, pin_budget);
    if (c.feasible && (!best || c.report.volume_3d < candidates[*best].report.volume_3d)) {
      best = i;
    }
  }

  if (best) {
    const auto& r = candidates[*best].report;
    std::printf("\nrecommended: %s\n", r.design.c_str());
    std::printf("  %s\n", r.to_string().c_str());
    std::printf("  guaranteed lossless messages per setup: %zu of %zu outputs\n",
                r.epsilon >= m ? 0 : m - r.epsilon, m);
  } else {
    std::printf("\nno feasible design under a %zu-pin budget: either raise the\n"
                "budget, lower n, or accept a smaller load ratio (larger s).\n",
                pin_budget);
  }
  return 0;
}
