// floorplan_gallery: draw the paper's physical figures from the geometric
// models -- the 2D layouts of Figures 3 and 6 and the 3D packagings of
// Figures 4 and 7 -- for a switch size of your choosing.
//
//   $ ./floorplan_gallery [side] [r] [s]     (defaults: 8 8 4)
#include <cstdio>
#include <cstdlib>

#include "cost/layout.hpp"
#include "cost/render.hpp"
#include "util/mathutil.hpp"

int main(int argc, char** argv) {
  std::size_t side = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  std::size_t r = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  std::size_t s = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
  if (!pcs::is_pow2(side) || side < 2 || side > 32) {
    std::fprintf(stderr, "side must be a power of two in [2, 32]\n");
    return 1;
  }
  if (s == 0 || r % s != 0 || r > 64) {
    std::fprintf(stderr, "need s | r and r <= 64\n");
    return 1;
  }

  const std::size_t cell = std::max<std::size_t>(1, (side * side) / 40 + 1);
  std::printf("== Figure 3: Revsort switch 2D layout (n = %zu) ==\n\n",
              side * side);
  std::fputs(pcs::cost::render_floorplan(pcs::cost::revsort_floorplan(side), cell)
                 .c_str(),
             stdout);

  std::printf("\n== Figure 4: Revsort switch 3D packaging ==\n\n");
  std::fputs(pcs::cost::render_packaging(pcs::cost::revsort_packaging(side)).c_str(),
             stdout);

  const std::size_t cell2 = std::max<std::size_t>(1, (r * s) / 40 + 1);
  std::printf("\n== Figure 6: Columnsort switch 2D layout (%zux%zu mesh) ==\n\n", r,
              s);
  std::fputs(pcs::cost::render_floorplan(pcs::cost::columnsort_floorplan(r, s), cell2)
                 .c_str(),
             stdout);

  std::printf("\n== Figure 7: Columnsort switch 3D packaging ==\n\n");
  std::fputs(pcs::cost::render_packaging(pcs::cost::columnsort_packaging(r, s))
                 .c_str(),
             stdout);

  std::printf("\n== Figure 8: interstack wire transposers ==\n\n");
  std::printf("each of the %zu connectors turns %zu wires vertical-to-horizontal\n"
              "in a %zu x %zu volume.\n",
              s * s, r / s, r / s, r / s);
  return 0;
}
