// message_router: the deployment scenario from the paper's introduction --
// a message-passing parallel computer whose processor channels funnel
// through a two-level concentration hierarchy onto a trunk.
//
// Simulates sustained traffic with buffered retries through three variants
// of the same hierarchy (perfect single-chip switches, Revsort multichip
// switches, Columnsort multichip switches) and prints throughput, latency,
// and where messages get cut.
//
//   $ ./message_router [arrival_p] [rounds]    (defaults: 0.08 400)
#include <cstdio>
#include <cstdlib>

#include "pcs.hpp"

namespace {

void run_variant(const char* label, const pcs::net::ConcentratorTree& tree,
                 double arrival_p, std::size_t rounds) {
  pcs::Rng rng(42);  // same seed for all variants: same arrival pattern
  pcs::net::TreeSimStats stats = pcs::net::simulate_tree(tree, arrival_p, rounds, rng);
  std::printf("%-12s %s\n", label, stats.to_string().c_str());
  std::printf("             trunk utilization %.3f, latency histogram (rounds: count)",
              stats.trunk_utilization(tree));
  for (std::size_t w = 0; w < stats.latency_histogram.size() && w < 6; ++w) {
    std::printf(" %zu:%zu", w, stats.latency_histogram[w]);
  }
  std::printf("\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  double arrival_p = argc > 1 ? std::strtod(argv[1], nullptr) : 0.08;
  std::size_t rounds = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400;

  // 4 groups x 64 processor channels; each group concentrates to 16 wires;
  // the trunk concentrates 64 wires to 32 network ports.
  std::printf("hierarchy: 256 channels -> 4 x (64 -> 16) -> trunk (64 -> 32)\n");
  std::printf("arrival p=%.3f per idle channel per round, %zu rounds\n\n", arrival_p,
              rounds);

  run_variant("hyper", pcs::net::make_hyper_tree(4, 64, 16, 32), arrival_p, rounds);
  run_variant("revsort", pcs::net::make_revsort_tree(4, 64, 16, 32), arrival_p,
              rounds);
  run_variant("columnsort", pcs::net::make_columnsort_tree(4, 16, 4, 16, 32),
              arrival_p, rounds);

  std::printf(
      "reading the results: at light load all three trees deliver nearly\n"
      "everything; the multichip partial concentrators pay a small extra\n"
      "rejection rate (their epsilon), which the retry protocol absorbs as a\n"
      "round or two of added latency -- the substitution argument of\n"
      "Section 1 in action.\n");
  return 0;
}
