// pcs_loadgen: open-loop client for the pcs_served daemon.
//
// One thread per tenant; each connects to the daemon's Unix-domain socket,
// pipelines its campaign requests back-to-back (open loop -- sends do not
// wait for replies), then collects the in-order replies and reports
// acceptance and latency.  Seeds are derived per (tenant, request) so a
// rerun against a fresh daemon asks for byte-identical campaigns.
//
//   $ ./pcs_loadgen socket=/tmp/pcs.sock tenants=2 requests=4 n=128 m=64
//   $ ./pcs_loadgen socket=/tmp/pcs.sock scrape=metrics.json
//
// Exit status: 0 iff every request got a reply (rejected/error replies are
// reported but still count as "answered"; use require=ok to demand all-OK).
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"

namespace {

using pcs::serve::CampaignReply;
using pcs::serve::CampaignRequest;
using pcs::serve::Frame;
using pcs::serve::FrameReader;
using pcs::serve::MsgType;
using pcs::serve::Status;

struct Options {
  std::string socket_path = "pcs_served.sock";
  std::size_t tenants = 2;
  std::size_t requests = 4;     ///< per tenant
  std::size_t gap_ms = 0;       ///< open-loop inter-send pacing
  std::string scrape_path;      ///< non-empty = scrape mode
  bool require_ok = false;      ///< exit nonzero unless every reply is kOk
  int timeout_ms = 120000;      ///< per-connection overall reply deadline
  CampaignRequest shape;        ///< template; sentinels = server default
};

[[noreturn]] void usage_and_exit(int rc) {
  std::printf(
      "usage: pcs_loadgen [key=value ...]\n"
      "  socket=PATH tenants=N requests=N gap_ms=N require=ok|answered\n"
      "  scrape=FILE            (write one metrics scrape to FILE and exit)\n"
      "  campaign shape: family= n= m= beta= faults= arrival= load= seed=\n"
      "                  lanes= queue_depth= policy= warmup= measure= drain=\n"
      "                  pattern= injection=   (composable traffic model)\n"
      "                  topology= route= epochs_in_flight= deflect_max=\n"
      "                                         (multi-hop fabric campaigns)\n");
  std::exit(rc);
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--help" || arg == "-h") usage_and_exit(0);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "pcs_loadgen: expected key=value, got '%s'\n",
                   arg.c_str());
      usage_and_exit(2);
    }
    const std::string key = arg.substr(0, eq);
    const std::string val = arg.substr(eq + 1);
    try {
      if (key == "socket") o.socket_path = val;
      else if (key == "tenants") o.tenants = std::stoul(val);
      else if (key == "requests") o.requests = std::stoul(val);
      else if (key == "gap_ms") o.gap_ms = std::stoul(val);
      else if (key == "timeout_ms") o.timeout_ms = std::stoi(val);
      else if (key == "scrape") o.scrape_path = val;
      else if (key == "require") o.require_ok = (val == "ok");
      else if (key == "family") o.shape.family = val;
      else if (key == "n") o.shape.n = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "m") o.shape.m = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "beta") o.shape.beta = std::stod(val);
      else if (key == "faults") o.shape.faults = val;
      else if (key == "arrival") o.shape.arrival = val;
      else if (key == "pattern") o.shape.pattern = val;
      else if (key == "injection") o.shape.injection = val;
      else if (key == "load") o.shape.load = std::stod(val);
      else if (key == "seed") o.shape.seed = std::stoull(val);
      else if (key == "lanes") o.shape.lanes = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "queue_depth") o.shape.queue_depth = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "policy") o.shape.policy = val;
      else if (key == "warmup") o.shape.warmup_epochs = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "measure") o.shape.measure_epochs = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "drain") o.shape.drain_epochs_max = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "topology") o.shape.topology = val;
      else if (key == "route") o.shape.route = val;
      else if (key == "epochs_in_flight") o.shape.epochs_in_flight = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "deflect_max") o.shape.deflect_max = static_cast<std::uint32_t>(std::stoul(val));
      else {
        std::fprintf(stderr, "pcs_loadgen: unknown key '%s'\n", key.c_str());
        usage_and_exit(2);
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "pcs_loadgen: bad value for '%s'\n", key.c_str());
      usage_and_exit(2);
    }
  }
  if (o.tenants == 0 || o.requests == 0) {
    std::fprintf(stderr, "pcs_loadgen: tenants and requests must be >= 1\n");
    usage_and_exit(2);
  }
  return o;
}

int connect_uds(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t w = ::write(fd, data, size);
    if (w <= 0) {
      if (w < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    data += static_cast<std::size_t>(w);
    size -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Read frames until `want` replies arrive or the deadline passes; invokes
/// on_reply(index, frame) in arrival order.
template <typename Fn>
bool read_replies(int fd, std::size_t want, int timeout_ms, Fn on_reply) {
  FrameReader reader;
  std::uint8_t buf[65536];
  std::size_t got = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (got < want) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, std::min(wait_ms, 1000));
    if (pr < 0 && errno != EINTR) return false;
    if (pr <= 0) continue;
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r == 0) return false;  // daemon hung up early
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    reader.feed(buf, static_cast<std::size_t>(r));
    while (auto frame = reader.next()) {
      on_reply(got, *frame);
      if (++got == want) break;
    }
  }
  return true;
}

struct TenantResult {
  std::string tenant;
  bool connected = false;
  bool all_answered = false;
  std::size_t ok = 0, rejected = 0, error = 0, cache_hits = 0;
  std::uint64_t offered = 0, delivered = 0, dropped = 0, residual = 0;
  std::vector<double> latency_ms;  ///< per answered request
  std::vector<std::string> reject_reasons;
};

TenantResult run_tenant(const Options& o, std::size_t tenant_idx) {
  TenantResult res;
  res.tenant = "tenant" + std::to_string(tenant_idx);
  const int fd = connect_uds(o.socket_path);
  if (fd < 0) return res;
  res.connected = true;

  // Open loop: pipeline every request, stamping send times as we go.
  std::vector<std::chrono::steady_clock::time_point> sent(o.requests);
  bool send_ok = true;
  for (std::size_t i = 0; i < o.requests && send_ok; ++i) {
    CampaignRequest req = o.shape;
    req.tenant = res.tenant;
    req.seed = o.shape.seed + tenant_idx * 10007 + i;
    const std::vector<std::uint8_t> bytes =
        pcs::serve::encode_campaign_request(req);
    sent[i] = std::chrono::steady_clock::now();
    send_ok = write_all(fd, bytes.data(), bytes.size());
    if (o.gap_ms > 0 && i + 1 < o.requests) {
      std::this_thread::sleep_for(std::chrono::milliseconds(o.gap_ms));
    }
  }

  if (send_ok) {
    res.all_answered = read_replies(
        fd, o.requests, o.timeout_ms, [&](std::size_t i, const Frame& f) {
          if (f.type != MsgType::kCampaignReply || !f.campaign_reply) return;
          const CampaignReply& rep = *f.campaign_reply;
          const double ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - sent[i])
                  .count();
          res.latency_ms.push_back(ms);
          switch (rep.status) {
            case Status::kOk:
              ++res.ok;
              if (rep.cache_hit) ++res.cache_hits;
              res.offered += rep.offered;
              res.delivered += rep.delivered;
              res.dropped += rep.dropped;
              res.residual += rep.residual;
              break;
            case Status::kRejected:
              ++res.rejected;
              res.reject_reasons.push_back(rep.reason);
              break;
            case Status::kError:
              ++res.error;
              res.reject_reasons.push_back(rep.reason);
              break;
          }
        });
  }
  ::close(fd);
  return res;
}

int run_scrape(const Options& o) {
  const int fd = connect_uds(o.socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "pcs_loadgen: cannot connect to %s\n",
                 o.socket_path.c_str());
    return 1;
  }
  const std::vector<std::uint8_t> bytes = pcs::serve::encode_scrape_request();
  std::string json;
  bool got = false;
  if (write_all(fd, bytes.data(), bytes.size())) {
    got = read_replies(fd, 1, o.timeout_ms, [&](std::size_t, const Frame& f) {
      if (f.type == MsgType::kScrapeReply && f.scrape_reply) {
        json = f.scrape_reply->json;
      }
    });
  }
  ::close(fd);
  if (!got || json.empty()) {
    std::fprintf(stderr, "pcs_loadgen: scrape failed\n");
    return 1;
  }
  std::ofstream out(o.scrape_path);
  if (!out.good()) {
    std::fprintf(stderr, "pcs_loadgen: cannot write %s\n",
                 o.scrape_path.c_str());
    return 1;
  }
  out << json;
  if (!json.empty() && json.back() != '\n') out << '\n';
  out.close();
  std::printf("pcs_loadgen: wrote scrape to %s (%zu bytes)\n",
              o.scrape_path.c_str(), json.size());
  return 0;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  if (!o.scrape_path.empty()) return run_scrape(o);

  std::vector<TenantResult> results(o.tenants);
  std::vector<std::thread> threads;
  threads.reserve(o.tenants);
  for (std::size_t t = 0; t < o.tenants; ++t) {
    threads.emplace_back([&o, &results, t] { results[t] = run_tenant(o, t); });
  }
  for (std::thread& th : threads) th.join();

  std::size_t ok = 0, rejected = 0, error = 0, cache_hits = 0, answered = 0;
  std::uint64_t offered = 0, delivered = 0, dropped = 0, residual = 0;
  std::vector<double> all_lat;
  bool every_answered = true;
  for (const TenantResult& r : results) {
    if (!r.connected) {
      std::fprintf(stderr, "pcs_loadgen: %s could not connect to %s\n",
                   r.tenant.c_str(), o.socket_path.c_str());
      every_answered = false;
      continue;
    }
    every_answered = every_answered && r.all_answered;
    ok += r.ok;
    rejected += r.rejected;
    error += r.error;
    cache_hits += r.cache_hits;
    answered += r.latency_ms.size();
    offered += r.offered;
    delivered += r.delivered;
    dropped += r.dropped;
    residual += r.residual;
    all_lat.insert(all_lat.end(), r.latency_ms.begin(), r.latency_ms.end());
    std::printf("%-10s ok=%zu rejected=%zu error=%zu cache_hits=%zu\n",
                r.tenant.c_str(), r.ok, r.rejected, r.error, r.cache_hits);
    for (const std::string& reason : r.reject_reasons) {
      std::printf("           reason: %s\n", reason.c_str());
    }
  }

  const std::size_t total = o.tenants * o.requests;
  std::printf(
      "total: %zu/%zu answered  ok=%zu rejected=%zu error=%zu "
      "cache_hits=%zu\n",
      answered, total, ok, rejected, error, cache_hits);
  std::printf("traffic: offered=%llu delivered=%llu dropped=%llu residual=%llu\n",
              static_cast<unsigned long long>(offered),
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(residual));
  if (!all_lat.empty()) {
    std::printf("latency-ms: p50=%.1f p95=%.1f max=%.1f\n",
                percentile(all_lat, 0.50), percentile(all_lat, 0.95),
                percentile(all_lat, 1.0));
  }

  if (!every_answered || answered != total) return 1;
  if (o.require_ok && ok != total) return 1;
  return 0;
}
