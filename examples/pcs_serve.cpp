// pcs_serve: operate a partial concentrator switch as a service.
//
// Reads a key=value config (see examples/serve_smoke.cfg), builds one fabric
// per family in the config's `family` list, and runs a warmup ->
// measurement -> drain campaign at every offered load in `loads` (or the
// single `arrival_p` point).  Each campaign wraps the switch in the fabric
// runtime: bounded per-input injection queues, the configured congestion
// policy for routing losers, and one route_batch() thread-pool dispatch per
// epoch across all lanes.
//
// Results go to stdout as a summary table and to the `out` file (default
// runtime_metrics.json) as a deterministic JSON document -- identical seeds
// produce byte-identical files, so CI diffs them.
//
//   $ ./pcs_serve --config serve.cfg [key=value ...]
//   $ ./pcs_serve n=256 m=128 family=revsort,columnsort loads=0.1,0.3,0.5
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fabric/fabric_config.hpp"
#include "obs/trace.hpp"
#include "traffic/trace.hpp"
#include "util/assert.hpp"
#include "plan/plan_analysis.hpp"
#include "runtime/config.hpp"
#include "runtime/fabric_runtime.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace_bridge.hpp"
#include "util/parallel.hpp"

namespace {

using pcs::rt::FabricRuntime;
using pcs::rt::MetricsRegistry;
using pcs::rt::RuntimeConfig;
using pcs::rt::RuntimeOptions;
using pcs::rt::RuntimeReport;

struct Campaign {
  std::string family;
  std::string switch_name;
  double load = 0.0;
  RuntimeReport report;
  std::string metrics_json;
  double delivery_rate = 0.0;
  double mean_latency = 0.0;
  bool traced = false;
  pcs::obs::TraceSnapshot trace;
};

RuntimeOptions options_from(const RuntimeConfig& cfg) {
  RuntimeOptions opts;
  opts.queue_depth = cfg.queue_depth;
  opts.policy = pcs::rt::policy_from_string(cfg.policy);
  opts.lanes = cfg.lanes;
  opts.seed = cfg.seed;
  opts.warmup_epochs = cfg.warmup_epochs;
  opts.measure_epochs = cfg.measure_epochs;
  opts.drain_epochs_max = cfg.drain_epochs_max;
  opts.check_invariants = cfg.check_invariants;
  return opts;
}

void start_tracing(const RuntimeConfig& cfg) {
  pcs::obs::Tracer::instance().enable(cfg.trace_clock == "logical"
                                          ? pcs::obs::ClockMode::kLogical
                                          : pcs::obs::ClockMode::kTsc);
}

void finish_tracing(Campaign& c, MetricsRegistry& metrics) {
  pcs::obs::Tracer::instance().disable();
  c.trace = pcs::obs::Tracer::instance().drain();
  c.traced = true;
  pcs::rt::merge_profile(c.trace, metrics);
}

/// topology= campaigns: the same warmup -> measure -> drain loop, but over
/// a multi-hop fabric of plan-compiled switches (src/fabric) instead of one
/// switch behind injection queues.  The JSON campaign shape is identical;
/// per-hop series appear as fabric.hop<k>.* metrics.
Campaign run_fabric_campaign(const std::string& family,
                             const RuntimeConfig& base, double load,
                             bool tracing) {
  auto sim = pcs::fabric::make_fabric_sim(base, family, load);
  MetricsRegistry metrics;

  Campaign c;
  c.family = family;
  c.switch_name = sim->name();
  c.load = load;
  if (tracing) start_tracing(base);
  c.report = sim->run(metrics);
  if (tracing) finish_tracing(c, metrics);
  c.metrics_json = metrics.to_json(6);
  c.delivery_rate = metrics.gauge("delivery_rate").value();
  c.mean_latency = metrics.gauge("mean_latency_epochs").value();
  return c;
}

Campaign run_campaign(const std::string& family, const RuntimeConfig& base,
                      double load, bool tracing) {
  if (!base.topology.empty()) {
    return run_fabric_campaign(family, base, load, tracing);
  }
  RuntimeConfig cfg = base;
  cfg.arrival_p = load;
  auto sw = pcs::rt::make_switch(family, cfg);

  // Traffic plumbing: replay= substitutes a recorded offered stream (one
  // trace stream per lane), record= wraps the per-lane sources so this
  // campaign's stream gets captured, and the default path builds from the
  // config's pattern/injection keys (the switch pointer feeds worstcase).
  std::shared_ptr<const pcs::traffic::TraceLog> replay_log;
  if (!cfg.replay.empty()) {
    replay_log = std::make_shared<const pcs::traffic::TraceLog>(
        pcs::traffic::TraceLog::read_file(cfg.replay));
  }
  pcs::traffic::TraceRecorder recorder(cfg.n, cfg.lanes);
  const bool recording = !cfg.record.empty();
  const pcs::sw::ConcentratorSwitch* sw_ptr = sw.get();
  FabricRuntime::TrafficFactory factory = [&, sw_ptr](std::size_t lane) {
    if (replay_log) {
      PCS_REQUIRE(replay_log->width == cfg.n,
                  "replay trace width " << replay_log->width
                                        << " does not match n=" << cfg.n);
      PCS_REQUIRE(lane < replay_log->streams.size(),
                  "replay trace has " << replay_log->streams.size()
                                      << " streams, campaign wants lane "
                                      << lane);
      return pcs::traffic::make_replay(replay_log, lane);
    }
    auto src = pcs::rt::make_traffic(cfg, cfg.n, sw_ptr);
    return recording ? recorder.wrap(std::move(src), lane) : std::move(src);
  };

  FabricRuntime runtime(*sw, options_from(cfg), std::move(factory));
  MetricsRegistry metrics;
  metrics.gauge("epsilon_bound").set(static_cast<double>(sw->epsilon_bound()));
  metrics.gauge("guaranteed_capacity")
      .set(static_cast<double>(sw->guaranteed_capacity()));
  metrics.gauge("load_ratio_bound").set(sw->load_ratio_bound());

  Campaign c;
  c.family = family;
  c.switch_name = sw->name();
  c.load = load;
  if (tracing) start_tracing(cfg);
  c.report = runtime.run(metrics);
  if (tracing) finish_tracing(c, metrics);
  c.metrics_json = metrics.to_json(6);
  c.delivery_rate = metrics.gauge("delivery_rate").value();
  c.mean_latency = metrics.gauge("mean_latency_epochs").value();
  if (recording) {
    recorder.log().write_file(cfg.record);
    std::printf("recorded offered stream to %s (%zu lanes)\n",
                cfg.record.c_str(), cfg.lanes);
  }
  return c;
}

std::string profile_json(const RuntimeConfig& cfg, const Campaign& c) {
  if (!c.traced) return "{\"enabled\": false}";
  std::ostringstream os;
  os << "{\"enabled\": true, \"clock\": " << pcs::rt::json_escape(cfg.trace_clock)
     << ", \"spans\": " << c.trace.spans.size()
     << ", \"counters\": " << c.trace.counters.size() << "}";
  return os.str();
}

std::string document_json(const RuntimeConfig& cfg,
                          const std::vector<Campaign>& campaigns) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"pcs.runtime.v2\",\n";
  os << "  \"config\":\n" << pcs::rt::config_to_json(cfg, 2) << ",\n";
  os << "  \"campaigns\": [";
  for (std::size_t i = 0; i < campaigns.size(); ++i) {
    const Campaign& c = campaigns[i];
    os << (i ? ",\n" : "\n");
    os << "    {\n";
    os << "      \"family\": " << pcs::rt::json_escape(c.family) << ",\n";
    os << "      \"switch\": " << pcs::rt::json_escape(c.switch_name) << ",\n";
    os << "      \"load\": " << pcs::rt::format_json_double(c.load) << ",\n";
    os << "      \"drained\": " << (c.report.drained ? "true" : "false") << ",\n";
    os << "      \"saturated\": " << (c.report.saturated ? "true" : "false") << ",\n";
    os << "      \"drain_epochs\": " << c.report.drain_epochs_used << ",\n";
    os << "      \"residual_backlog\": " << c.report.residual_backlog << ",\n";
    os << "      \"profile\": " << profile_json(cfg, c) << ",\n";
    os << "      \"metrics\":\n" << c.metrics_json << "\n";
    os << "    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  RuntimeConfig cfg;
  try {
    std::vector<std::string> overrides;
    for (int a = 1; a < argc; ++a) {
      const std::string arg = argv[a];
      if (arg == "--config") {
        if (a + 1 >= argc) {
          std::fprintf(stderr, "--config needs a file argument\n");
          return 2;
        }
        cfg = pcs::rt::load_config_file(argv[++a]);
      } else if (arg == "--help" || arg == "-h") {
        std::printf("usage: pcs_serve [--config FILE] [key=value ...]\n");
        return 0;
      } else {
        overrides.push_back(arg);
      }
    }
    for (const std::string& o : overrides) pcs::rt::apply_override(cfg, o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 2;
  }

  const std::vector<double> loads =
      cfg.loads.empty() ? std::vector<double>{cfg.arrival_p} : cfg.loads;

  if (!cfg.record.empty()) {
    // A recording captures exactly one offered stream; a sweep would
    // silently overwrite it per campaign.
    const std::size_t n_campaigns =
        pcs::rt::split_csv(cfg.family).size() * loads.size();
    if (n_campaigns != 1 || !cfg.topology.empty()) {
      std::fprintf(stderr,
                   "record= needs a single single-switch campaign (one "
                   "family, one load, no topology)\n");
      return 2;
    }
  }

  if (cfg.threads != 0) pcs::set_max_parallelism(cfg.threads);
  // exec=legacy drops every compiled plan to the unfused oracle engine, so
  // the serving metrics A/B the fused path (threads= sweeps compose).
  pcs::plan::set_default_exec_mode(cfg.exec == "legacy"
                                       ? pcs::plan::ExecMode::kLegacy
                                       : pcs::plan::ExecMode::kFused);
  bool tracing = !cfg.trace.empty();
  if (tracing && !pcs::obs::kCompiledIn) {
    std::fprintf(stderr,
                 "warning: trace=%s requested but tracing is compiled out "
                 "(-DPCS_TRACING=OFF); running untraced\n",
                 cfg.trace.c_str());
    tracing = false;
  }

  std::vector<Campaign> campaigns;
  try {
    for (const std::string& family : pcs::rt::split_csv(cfg.family)) {
      for (double load : loads) {
        Campaign c = run_campaign(family, cfg, load, tracing);
        std::printf(
            "%-11s load=%.3f  delivery=%.4f  mean-latency=%.2f epochs  %s"
            " (drain %zu epochs, residual %zu)\n",
            c.family.c_str(), c.load, c.delivery_rate, c.mean_latency,
            c.report.saturated ? "SATURATED" : "drained", c.report.drain_epochs_used,
            c.report.residual_backlog);
        campaigns.push_back(std::move(c));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }

  std::ofstream out(cfg.out);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  out << document_json(cfg, campaigns);
  out.close();
  std::printf("wrote %s (%zu campaigns)\n", cfg.out.c_str(), campaigns.size());

  if (tracing) {
    std::vector<pcs::obs::TraceSnapshot> snapshots;
    snapshots.reserve(campaigns.size());
    for (const Campaign& c : campaigns) snapshots.push_back(c.trace);
    std::ofstream tf(cfg.trace);
    if (!tf.good()) {
      std::fprintf(stderr, "cannot write %s\n", cfg.trace.c_str());
      return 1;
    }
    tf << pcs::obs::chrome_trace_json(snapshots);
    tf.close();
    std::printf("wrote %s (%zu trace groups)\n", cfg.trace.c_str(),
                snapshots.size());
  }
  return 0;
}
