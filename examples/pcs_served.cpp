// pcs_served: the persistent multi-tenant serving daemon.
//
// Where pcs_serve runs a config's campaigns and exits, pcs_served binds a
// Unix-domain socket and serves campaign requests until told to stop:
//
//   $ ./pcs_served --config served.cfg socket=/tmp/pcs.sock &
//   $ ./pcs_loadgen socket=/tmp/pcs.sock tenants=2 requests=8
//   $ ./pcs_loadgen socket=/tmp/pcs.sock scrape=metrics.json
//   $ kill -HUP  $!   # re-read served.cfg (validate-then-swap)
//   $ kill -TERM $!   # graceful drain, flush metrics to `out`, exit 0
//
// The config file is the same key=value format pcs_serve reads, plus the
// daemon keys: socket=, max_inflight=, tenant_quota=, cache_mb=.  Requests
// inherit any field they leave unset from this config, so a SIGHUP that
// changes `arrival_p=` retargets every later default-load campaign without
// dropping the ones in flight.
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "plan/plan_analysis.hpp"
#include "runtime/config.hpp"
#include "serve/daemon.hpp"
#include "util/parallel.hpp"

namespace {

pcs::serve::ServeDaemon* g_daemon = nullptr;

// Only async-signal-safe atomic stores happen here.
void on_signal(int sig) {
  if (g_daemon == nullptr) return;
  if (sig == SIGHUP) {
    g_daemon->notify_reload();
  } else {
    g_daemon->notify_stop();
  }
}

}  // namespace

int main(int argc, char** argv) {
  pcs::rt::RuntimeConfig cfg;
  std::string config_path;
  try {
    std::vector<std::string> overrides;
    for (int a = 1; a < argc; ++a) {
      const std::string arg = argv[a];
      if (arg == "--config") {
        if (a + 1 >= argc) {
          std::fprintf(stderr, "--config needs a file argument\n");
          return 2;
        }
        config_path = argv[++a];
        cfg = pcs::rt::load_config_file(config_path);
      } else if (arg == "--help" || arg == "-h") {
        std::printf("usage: pcs_served [--config FILE] [key=value ...]\n");
        return 0;
      } else {
        overrides.push_back(arg);
      }
    }
    for (const std::string& o : overrides) pcs::rt::apply_override(cfg, o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 2;
  }

  if (cfg.threads != 0) pcs::set_max_parallelism(cfg.threads);
  pcs::plan::set_default_exec_mode(cfg.exec == "legacy"
                                       ? pcs::plan::ExecMode::kLegacy
                                       : pcs::plan::ExecMode::kFused);

  pcs::serve::ServeOptions opts;
  opts.socket_path = cfg.serve_socket;
  opts.config_path = config_path;  // SIGHUP re-reads this ("" disables)

  pcs::serve::ServeDaemon daemon(cfg, opts);
  g_daemon = &daemon;
  std::signal(SIGHUP, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);  // peer hangups surface as write errors

  std::printf("pcs_served: listening on %s (max_inflight=%zu tenant_quota=%zu "
              "cache_mb=%zu)\n",
              cfg.serve_socket.c_str(), cfg.serve_max_inflight,
              cfg.serve_tenant_quota, cfg.serve_cache_mb);
  std::fflush(stdout);

  const int rc = daemon.run();
  g_daemon = nullptr;
  std::printf("pcs_served: %s (exit %d), final metrics in %s\n",
              rc == 0 ? "drained" : "failed", rc, cfg.out.c_str());
  return rc;
}
