// pcs_stress: bound-stress search against the paper's concentration
// guarantees.
//
// For each family, builds the configured switch, runs the seeded
// hill-climbing search (src/traffic/search.hpp) at a sweep of k values
// around the guaranteed capacity m - eps, and prints the measured
// worst-case concentration next to the paper bound.  The search floor is
// re-checked per evaluation (routed >= min(k, capacity)); what this tool
// reports is the *slack* -- how much worse than the best case, and how much
// better than the guaranteed floor, the worst discovered pattern performs.
//
//   $ ./pcs_stress family=revsort,columnsort n=256 m=192
//   $ ./pcs_stress family=revsort n=256 m=192 k=200 restarts=16 steps=500
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/config.hpp"
#include "traffic/search.hpp"
#include "util/assert.hpp"

namespace {

struct Options {
  pcs::rt::RuntimeConfig cfg;
  std::size_t k = 0;  ///< 0 = sweep {capacity+1, capacity+eps/2, m}
  std::size_t restarts = 8;
  std::size_t steps = 200;
  std::size_t chip_w = 8;
};

[[noreturn]] void usage_and_exit(int rc) {
  std::printf(
      "usage: pcs_stress [key=value ...]\n"
      "  family=LIST n=N m=M beta=B seed=S   (switch shape, as pcs_serve)\n"
      "  k=K            valid bits per pattern (0 = sweep around capacity)\n"
      "  restarts=N steps=N chip_w=N         (search shape)\n");
  std::exit(rc);
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  try {
    for (int a = 1; a < argc; ++a) {
      const std::string arg = argv[a];
      if (arg == "--help" || arg == "-h") usage_and_exit(0);
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) usage_and_exit(2);
      const std::string key = arg.substr(0, eq);
      const std::string val = arg.substr(eq + 1);
      if (key == "k") {
        o.k = std::stoul(val);
      } else if (key == "restarts") {
        o.restarts = std::stoul(val);
      } else if (key == "steps") {
        o.steps = std::stoul(val);
      } else if (key == "chip_w") {
        o.chip_w = std::stoul(val);
      } else {
        pcs::rt::apply_override(o.cfg, arg);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pcs_stress: %s\n", e.what());
    return 2;
  }

  std::printf("%-12s %6s %6s %6s %8s %8s %12s %12s %8s\n", "family", "n", "m",
              "k", "routed", "floor", "measured", "bound", "evals");
  try {
    for (const std::string& family : pcs::rt::split_csv(o.cfg.family)) {
      auto sw = pcs::rt::make_switch(family, o.cfg);
      const std::size_t cap = sw->guaranteed_capacity();
      const std::size_t eps = sw->epsilon_bound();
      std::vector<std::size_t> ks;
      if (o.k != 0) {
        ks.push_back(o.k);
      } else {
        // The interesting regime: just past the guarantee, mid-overload,
        // and fully loaded.
        ks.push_back(std::min(cap + 1, sw->inputs()));
        ks.push_back(std::min(cap + (eps + 1) / 2 + 1, sw->inputs()));
        ks.push_back(std::min(sw->outputs(), sw->inputs()));
      }
      for (std::size_t k : ks) {
        pcs::traffic::SearchOptions sopts;
        sopts.k = k;
        sopts.restarts = o.restarts;
        sopts.steps = o.steps;
        sopts.seed = o.cfg.seed;
        sopts.chip_w = o.chip_w;
        const pcs::traffic::SearchResult r =
            pcs::traffic::worst_concentration_search(*sw, sopts);
        std::printf("%-12s %6zu %6zu %6zu %8zu %8zu %12.4f %12.4f %8zu\n",
                    family.c_str(), sw->inputs(), sw->outputs(), r.k, r.routed,
                    std::min(r.k, cap), r.concentration, r.bound,
                    r.evaluations);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pcs_stress: %s\n", e.what());
    return 1;
  }
  return 0;
}
