// Quickstart: build a multichip partial concentrator switch, push a batch of
// bit-serial messages through it, and inspect the routing.
//
//   $ ./quickstart
//
// Walks through the core API: one include (pcs.hpp), one construction path
// (pcs::make_switch over a SwitchSpec), presenting valid bits at setup,
// streaming payloads with the clocked simulator, and reading the resource
// report that Table 1 is built from.
#include <cstdio>

#include "pcs.hpp"

int main() {
  // A 256-input, 192-output partial concentrator built from sixteen
  // 16-by-16 hyperconcentrator chips per stage (Section 4 of the paper).
  pcs::SwitchSpec spec;
  spec.family = "revsort";
  spec.n = 256;
  spec.m = 192;
  auto sw = pcs::make_switch(spec);

  std::printf("switch: %s\n", sw->name().c_str());
  std::printf("  epsilon bound: %zu\n", sw->epsilon_bound());
  std::printf("  load ratio alpha: %.4f\n", sw->load_ratio_bound());
  std::printf("  guaranteed lossless capacity: %zu messages\n",
              sw->guaranteed_capacity());

  // Offer 64 random messages (well under capacity) with 32-bit payloads.
  pcs::Rng rng(2026);
  pcs::BitVec valid = rng.exact_weight_bits(spec.n, 64);
  pcs::msg::MessageBatch batch = pcs::msg::random_batch(valid, 32, 8, rng);

  pcs::msg::ClockedSimResult result = pcs::msg::run_clocked(*sw, batch);
  std::printf("\noffered %zu messages; delivered %zu, congested %zu, %zu cycles\n",
              batch.count(), result.delivered.size(), result.congested.size(),
              result.cycles);
  std::printf("payloads intact: %s\n",
              result.payloads_intact(batch) ? "yes" : "NO (bug!)");

  std::printf("\nfirst five deliveries (input wire -> output wire):\n");
  for (std::size_t i = 0; i < result.delivered.size() && i < 5; ++i) {
    const auto& d = result.delivered[i];
    std::printf("  %3u -> %3u  payload %s...\n", d.observed.source, d.output_wire,
                d.observed.payload.to_string().substr(0, 8).c_str());
  }

  // What would it cost to build?
  pcs::cost::ResourceReport report = pcs::cost::revsort_report(spec.n, spec.m);
  std::printf("\nresource report:\n  %s\n", report.to_string().c_str());
  return 0;
}
