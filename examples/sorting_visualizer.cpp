// sorting_visualizer: watch the valid bits move through the mesh stages of
// each switch.  Renders the matrix after every stage of Revsort Algorithm 1,
// Columnsort Algorithm 2, the full eight-step Columnsort, and a few
// Shearsort phases -- the exact pipelines the multichip switches wire up.
//
//   $ ./sorting_visualizer [side] [density] [seed]   (defaults: 16 0.4 7)
#include <cstdio>
#include <cstdlib>

#include "sortnet/columnsort.hpp"
#include "sortnet/mesh_ops.hpp"
#include "sortnet/nearsort.hpp"
#include "sortnet/revsort.hpp"
#include "sortnet/shearsort.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace {

void show(const char* label, const pcs::BitMatrix& m) {
  std::printf("-- %s (dirty rows: %zu, row-major epsilon: %zu)\n", label,
              m.dirty_row_count(),
              pcs::sortnet::min_nearsort_epsilon(m.to_row_major()));
  std::string rendered = m.to_string();
  for (char& c : rendered) {
    if (c == '0') c = '.';
    if (c == '1') c = '#';
  }
  std::fputs(rendered.c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t side = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  double density = argc > 2 ? std::strtod(argv[2], nullptr) : 0.4;
  std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;
  if (!pcs::is_pow2(side) || side < 2 || side > 64) {
    std::fprintf(stderr, "side must be a power of two in [2, 64]\n");
    return 1;
  }

  pcs::Rng rng(seed);
  pcs::BitMatrix start = pcs::BitMatrix::from_row_major(
      rng.bernoulli_bits(side * side, density), side, side);

  std::printf("==== Revsort Algorithm 1 (the 3-stage switch, Section 4) ====\n\n");
  pcs::BitMatrix m = start;
  show("input (valid bits on the mesh)", m);
  pcs::sortnet::sort_columns(m);
  show("after stage 1: columns sorted", m);
  pcs::sortnet::sort_rows(m);
  show("after stage 2: rows sorted", m);
  pcs::sortnet::rotate_rows_bit_reversed(m);
  show("after barrel shifters: row i rotated by rev(i)", m);
  pcs::sortnet::sort_columns(m);
  show("after stage 3: columns sorted -- the switch output", m);
  std::printf("Theorem 3 dirty-row bound: %zu\n\n",
              pcs::sortnet::algorithm1_dirty_row_bound(side));

  std::printf("==== Columnsort Algorithm 2 (the 2-stage switch, Section 5) ====\n\n");
  const std::size_t s = side >= 8 ? 4 : 2;
  const std::size_t r = side * side / s;
  pcs::BitMatrix c = pcs::BitMatrix::from_row_major(
      rng.bernoulli_bits(r * s, density), r, s);
  std::printf("(shape %zu x %zu; epsilon bound (s-1)^2 = %zu)\n\n", r, s,
              pcs::sortnet::algorithm2_epsilon_bound(s));
  show("input", c);
  pcs::sortnet::sort_columns(c);
  show("after stage 1: columns sorted", c);
  c = pcs::sortnet::cm_to_rm_reshape(c);
  show("after wiring: column-major -> row-major", c);
  pcs::sortnet::sort_columns(c);
  show("after stage 2: columns sorted -- the switch output", c);

  std::printf("==== Full Columnsort, steps 4-8 (Section 6 variant) ====\n\n");
  c = pcs::sortnet::rm_to_cm_reshape(c);
  show("step 4: row-major -> column-major", c);
  pcs::sortnet::sort_columns(c);
  show("step 5: columns sorted", c);
  pcs::sortnet::columnsort_shift_sort_unshift(c);
  show("steps 6-8: shift / sort / unshift", c);
  std::printf("fully sorted (column-major): %s\n\n",
              pcs::sortnet::is_col_major_sorted(c) ? "yes" : "no");

  std::printf("==== Shearsort phases (the full-Revsort finisher) ====\n\n");
  pcs::BitMatrix h = start;
  pcs::sortnet::sort_columns(h);
  show("column-sorted input", h);
  for (int phase = 1; phase <= 3; ++phase) {
    pcs::sortnet::shearsort_phase(h);
    char label[64];
    std::snprintf(label, sizeof label, "after shearsort phase %d", phase);
    show(label, h);
  }
  pcs::sortnet::sort_rows(h);
  show("after the final row sort", h);
  std::printf("fully sorted (row-major): %s\n",
              pcs::sortnet::is_row_major_sorted(h) ? "yes" : "no");
  return 0;
}
