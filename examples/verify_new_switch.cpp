// verify_new_switch: the extension workflow -- implement a new
// ConcentratorSwitch and let the library's verification harness judge it.
//
// Two user-defined switches are checked here:
//   * a correct one (sorting network based, honestly declared), and
//   * a subtly broken one (claims a tighter epsilon than it delivers),
// showing how verify_switch() reports each.
//
//   $ ./verify_new_switch
#include <cstdio>

#include "pcs.hpp"

int main() {
  pcs::Rng rng(99);

  // A user design: the first 2/3 of Batcher's stages as a nearsorter,
  // calibrated honestly with the adversarial search before declaring its
  // epsilon.
  const std::size_t n = 64;
  auto full = pcs::sortnet::ComparatorNetwork::odd_even_mergesort(n);
  const std::size_t stages = (2 * full.stage_count()) / 3;
  pcs::sw::ComparatorSwitch probe =
      pcs::sw::ComparatorSwitch::truncated_batcher(n, n, stages, n);
  pcs::core::WorstCase wc = pcs::core::worst_epsilon_search(probe, 40, 200, rng);
  std::printf("calibration: %zu of %zu stages -> worst epsilon %zu (over %zu "
              "patterns)\n\n",
              stages, full.stage_count(), wc.epsilon, wc.trials);

  pcs::sw::ComparatorSwitch honest =
      pcs::sw::ComparatorSwitch::truncated_batcher(n, n, stages, wc.epsilon);
  std::printf("verifying %s (declared epsilon %zu):\n", honest.name().c_str(),
              honest.epsilon_bound());
  pcs::core::VerifyReport good = pcs::core::verify_switch(honest, rng);
  std::fputs(good.to_string().c_str(), stdout);

  // The same network, overclaimed: epsilon declared at half its real value.
  pcs::sw::ComparatorSwitch liar = pcs::sw::ComparatorSwitch::truncated_batcher(
      n, n, stages, wc.epsilon / 2);
  std::printf("\nverifying the same switch overclaimed (epsilon %zu):\n",
              liar.epsilon_bound());
  pcs::core::VerifyReport bad = pcs::core::verify_switch(liar, rng);
  std::fputs(bad.to_string().c_str(), stdout);

  std::printf("\nthe harness accepts honest declarations and pinpoints the "
              "overclaim\nwith a concrete counterexample pattern.\n");
  return good.all_passed() && !bad.all_passed() ? 0 : 1;
}
