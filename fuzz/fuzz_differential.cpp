// Deterministic differential fuzzer for the concentrator switches.
//
// Sweeps every switch family x degenerate output counts (m in {1, 2, n-1, n}
// plus a random m) x structured and random valid-bit patterns (empty, full,
// single-bit, prefix/suffix, alternating, block, three densities) x batch
// sizes straddling the 64-lane word width (1, 63, 64, 65, 128), and
// cross-checks three independent routing paths against the shared invariant
// library (core/invariants.hpp):
//   scalar      route() / nearsorted_valid_bits() through the PlanExecutor,
//   batch       route_batch() / nearsorted_batch() (counting kernels,
//               LaneBatch lanes, the AVX-512 stage split, the thread pool),
//   gate-level  the composed HyperCircuit realization, on small shapes,
//   legacy      the pre-plan LabelMesh recipes (tests/legacy_reference.hpp),
//               cross-checked against every family including faulty plans.
//   fabric      multi-hop fabric campaigns (random topology / allocator /
//               route policy / credit depth) at epochs_in_flight 1, 2, and 5:
//               conservation, replay identity, and pipelined-vs-serial
//               campaign-counter identity.
// Faulty switches are swept too, against the fault-loss accounting invariant.
//
// Every case is derived deterministically from (seed, case index), so a
// failure report's case index replays alone:
//   pcs_fuzz --seed 1987 --start 4242 --cases 1
// Exit code 0 = clean sweep, 1 = invariant violation (first one reported),
// 2 = usage error.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/invariants.hpp"
#include "fabric/fabric_sim.hpp"
#include "legacy_reference.hpp"
#include "message/traffic.hpp"
#include "plan/compile.hpp"
#include "plan/plan_switch.hpp"
#include "runtime/metrics.hpp"
#include "traffic/factory.hpp"
#include "traffic/trace.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/full_sort_hyper.hpp"
#include "switch/gate_level_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/multipass_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace {

using pcs::BitVec;
using pcs::Rng;
namespace core = pcs::core;
namespace sw = pcs::sw;

struct Options {
  std::size_t cases = 1000;
  std::size_t start = 0;
  std::uint64_t seed = 1987;
  bool verbose = false;
};

/// splitmix64 step: decorrelates the per-case seed from the case index.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// --- pattern zoo ----------------------------------------------------------

constexpr std::size_t kPatternKinds = 10;

BitVec make_pattern(std::size_t kind, std::size_t n, Rng& rng) {
  BitVec v(n);
  switch (kind % kPatternKinds) {
    case 0:  // empty
      return v;
    case 1:  // full
      for (std::size_t i = 0; i < n; ++i) v.set(i, true);
      return v;
    case 2:  // single bit
      v.set(rng.below(n), true);
      return v;
    case 3:  // all but one
      for (std::size_t i = 0; i < n; ++i) v.set(i, true);
      v.set(rng.below(n), false);
      return v;
    case 4:  // prefix of ones (already concentrated)
      return BitVec::prefix_ones(n, rng.below(n + 1));
    case 5: {  // suffix of ones (maximally displaced)
      const std::size_t k = rng.below(n + 1);
      for (std::size_t i = n - k; i < n; ++i) v.set(i, true);
      return v;
    }
    case 6:  // alternating, random phase
      for (std::size_t i = rng.below(2); i < n; i += 2) v.set(i, true);
      return v;
    case 7: {  // one solid block at a random offset
      const std::size_t len = rng.below(n + 1);
      const std::size_t at = len == n ? 0 : rng.below(n - len + 1);
      for (std::size_t i = at; i < at + len; ++i) v.set(i, true);
      return v;
    }
    case 8:  // sparse / dense random
      return rng.bernoulli_bits(n, rng.chance(0.5) ? 0.1 : 0.9);
    default:  // balanced random
      return rng.bernoulli_bits(n, 0.5);
  }
}

std::vector<BitVec> make_batch(std::size_t n, std::size_t count, Rng& rng) {
  std::vector<BitVec> out;
  out.reserve(count);
  // Rotate through the pattern zoo from a random phase so every kind shows
  // up at every batch size, including size 1.
  const std::size_t phase = rng.below(kPatternKinds);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(make_pattern(phase + i, n, rng));
  }
  return out;
}

/// Batch sizes straddling the 64-lane word width, trimmed on big shapes so a
/// 10k-case sweep stays fast under the sanitizers.
std::size_t pick_batch_size(std::size_t n, Rng& rng) {
  static constexpr std::size_t kSizes[] = {1, 63, 64, 65, 128};
  const std::size_t span = n > 512 ? 2 : (n > 128 ? 3 : 5);
  return kSizes[rng.below(span)];
}

/// Degenerate-first m selection: 1, 2, n-1, n, then random interior.
std::size_t pick_m(std::size_t n, Rng& rng) {
  switch (rng.below(5)) {
    case 0: return 1;
    case 1: return n >= 2 ? 2 : 1;
    case 2: return n >= 2 ? n - 1 : 1;
    case 3: return n;
    default: return 1 + rng.below(n);
  }
}

// --- switch construction (cached; shapes repeat across cases) -------------

struct SwitchCache {
  std::map<std::string, std::unique_ptr<sw::ConcentratorSwitch>> switches;
  std::map<std::string, std::unique_ptr<sw::GateLevelSwitchBase>> gates;

  sw::ConcentratorSwitch* get(const std::string& key,
                              std::unique_ptr<sw::ConcentratorSwitch> (*build)(
                                  std::size_t, std::size_t, std::size_t),
                              std::size_t a, std::size_t b, std::size_t c) {
    auto it = switches.find(key);
    if (it == switches.end()) {
      it = switches.emplace(key, build(a, b, c)).first;
    }
    return it->second.get();
  }
};

std::unique_ptr<sw::ConcentratorSwitch> build_hyper(std::size_t n, std::size_t m,
                                                    std::size_t) {
  return std::make_unique<sw::HyperSwitch>(n, m);
}
std::unique_ptr<sw::ConcentratorSwitch> build_revsort(std::size_t n, std::size_t m,
                                                      std::size_t) {
  return std::make_unique<sw::RevsortSwitch>(n, m);
}
std::unique_ptr<sw::ConcentratorSwitch> build_columnsort(std::size_t r, std::size_t s,
                                                         std::size_t m) {
  return std::make_unique<sw::ColumnsortSwitch>(r, s, m);
}
std::unique_ptr<sw::ConcentratorSwitch> build_full_revsort(std::size_t n, std::size_t,
                                                           std::size_t) {
  return std::make_unique<sw::FullRevsortHyper>(n);
}
std::unique_ptr<sw::ConcentratorSwitch> build_full_columnsort(std::size_t r,
                                                              std::size_t s,
                                                              std::size_t) {
  return std::make_unique<sw::FullColumnsortHyper>(r, s);
}
std::unique_ptr<sw::ConcentratorSwitch> build_multipass(std::size_t r, std::size_t s,
                                                        std::size_t code) {
  // code packs (passes, schedule, m): built by the caller below.
  const std::size_t passes = code >> 33;
  const bool alternating = (code >> 32) & 1;
  const std::size_t m = code & 0xffffffffull;
  return std::make_unique<sw::MultipassColumnsortSwitch>(
      r, s, passes, m,
      alternating ? sw::ReshapeSchedule::kAlternating : sw::ReshapeSchedule::kSame);
}

// --- per-family case drivers ----------------------------------------------

struct CaseContext {
  std::string description;  ///< shape summary for the failure report
  sw::ConcentratorSwitch* sw = nullptr;
  sw::ConcentratorSwitch* baseline = nullptr;  ///< fault-free twin (faulty cases)
  std::size_t max_fault_loss = 0;              ///< nonzero marks a faulty switch
};

CaseContext pick_case(std::size_t family, Rng& rng, SwitchCache& cache) {
  CaseContext ctx;
  std::ostringstream key;
  switch (family % 6) {
    case 0: {  // single-chip hyperconcentrator
      static constexpr std::size_t kN[] = {1, 2, 7, 33, 64, 100, 256};
      const std::size_t n = kN[rng.below(std::size(kN))];
      const std::size_t m = pick_m(n, rng);
      key << "hyper/" << n << "/" << m;
      ctx.sw = cache.get(key.str(), build_hyper, n, m, 0);
      break;
    }
    case 1: {  // Revsort partial concentrator
      static constexpr std::size_t kN[] = {1, 4, 16, 64, 256, 1024};
      const std::size_t n = kN[rng.below(std::size(kN))];
      const std::size_t m = pick_m(n, rng);
      key << "revsort/" << n << "/" << m;
      ctx.sw = cache.get(key.str(), build_revsort, n, m, 0);
      break;
    }
    case 2: {  // Columnsort partial concentrator
      static constexpr std::size_t kRS[][2] = {{1, 1}, {2, 1}, {4, 2},  {8, 2},
                                               {16, 4}, {32, 4}, {64, 8}};
      const auto& rs = kRS[rng.below(std::size(kRS))];
      const std::size_t m = pick_m(rs[0] * rs[1], rng);
      key << "columnsort/" << rs[0] << "x" << rs[1] << "/" << m;
      ctx.sw = cache.get(key.str(), build_columnsort, rs[0], rs[1], m);
      break;
    }
    case 3: {  // full-sorting multichip hyperconcentrators (m = n by class)
      if (rng.chance(0.5)) {
        static constexpr std::size_t kN[] = {4, 16, 64, 256};
        const std::size_t n = kN[rng.below(std::size(kN))];
        key << "fullrevsort/" << n;
        ctx.sw = cache.get(key.str(), build_full_revsort, n, 0, 0);
      } else {
        static constexpr std::size_t kRS[][2] = {{2, 1}, {8, 2}, {32, 4}};
        const auto& rs = kRS[rng.below(std::size(kRS))];
        key << "fullcolumnsort/" << rs[0] << "x" << rs[1];
        ctx.sw = cache.get(key.str(), build_full_columnsort, rs[0], rs[1], 0);
      }
      break;
    }
    case 4: {  // multipass Columnsort (the open-question switch)
      static constexpr std::size_t kRS[][2] = {{16, 4}, {32, 4}, {64, 8}};
      const auto& rs = kRS[rng.below(std::size(kRS))];
      const std::size_t passes = 1 + rng.below(3);
      const bool alternating = rng.chance(0.5);
      const std::size_t m = pick_m(rs[0] * rs[1], rng);
      key << "multipass/" << rs[0] << "x" << rs[1] << "/" << passes << "/"
          << alternating << "/" << m;
      ctx.sw = cache.get(key.str(), build_multipass, rs[0], rs[1],
                         (passes << 33) | (std::size_t{alternating} << 32) | m);
      break;
    }
    default: {  // faulty switches: graceful-degradation accounting
      if (rng.chance(0.5)) {
        static constexpr std::size_t kN[] = {16, 64, 256};
        const std::size_t n = kN[rng.below(std::size(kN))];
        const std::size_t side = n == 16 ? 4 : (n == 64 ? 8 : 16);
        const std::size_t m = pick_m(n, rng);
        std::vector<pcs::plan::ChipFault> faults;
        const std::size_t count = 1 + rng.below(3);
        for (std::size_t f = 0; f < count; ++f) {
          faults.push_back(pcs::plan::ChipFault{rng.below(3), rng.below(side)});
        }
        pcs::plan::SwitchPlan p = pcs::plan::compile_revsort_plan(n, m);
        pcs::plan::apply_chip_faults(p, std::move(faults));
        auto faulty = std::make_unique<pcs::plan::PlanSwitch>(std::move(p));
        ctx.max_fault_loss = faulty->max_fault_loss();
        ctx.description = faulty->name();
        // Not cached under a shape key: fault sets vary per case.
        cache.switches["faulty-scratch"] = std::move(faulty);
        ctx.sw = cache.switches["faulty-scratch"].get();
        key << "revsort/" << n << "/" << m;
        ctx.baseline = cache.get(key.str(), build_revsort, n, m, 0);
      } else {
        static constexpr std::size_t kRS[][2] = {{8, 2}, {16, 4}, {64, 8}};
        const auto& rs = kRS[rng.below(std::size(kRS))];
        const std::size_t m = pick_m(rs[0] * rs[1], rng);
        std::vector<pcs::plan::ChipFault> faults;
        const std::size_t count = 1 + rng.below(3);
        for (std::size_t f = 0; f < count; ++f) {
          faults.push_back(pcs::plan::ChipFault{rng.below(2), rng.below(rs[1])});
        }
        pcs::plan::SwitchPlan p =
            pcs::plan::compile_columnsort_plan(rs[0], rs[1], m);
        pcs::plan::apply_chip_faults(p, std::move(faults));
        auto faulty = std::make_unique<pcs::plan::PlanSwitch>(std::move(p));
        ctx.max_fault_loss = faulty->max_fault_loss();
        ctx.description = faulty->name();
        cache.switches["faulty-scratch"] = std::move(faulty);
        ctx.sw = cache.switches["faulty-scratch"].get();
        key << "columnsort/" << rs[0] << "x" << rs[1] << "/" << m;
        ctx.baseline = cache.get(key.str(), build_columnsort, rs[0], rs[1], m);
      }
      break;
    }
  }
  if (ctx.description.empty()) ctx.description = ctx.sw->name();
  return ctx;
}

// --- gate-level cross-check ------------------------------------------------

/// Compare the composed gate-level circuit against the behavioural m = n
/// switch on one (valid, data) pair: identical valid arrangement, and every
/// occupied output position carries its routed input's payload bit.
bool check_gate_level(const sw::GateLevelSwitchBase& gate,
                      const sw::ConcentratorSwitch& model, const BitVec& valid,
                      const BitVec& data, core::InvariantReport& report) {
  ++report.checks_run;
  const sw::GateLevelResult res = gate.evaluate(valid, data);
  const BitVec arrangement = model.nearsorted_valid_bits(valid);
  if (res.valid.size() != arrangement.size() ||
      res.valid.count_diff(arrangement) != 0) {
    report.add("gate-level",
               model.name() + " valid bits diverge from the gate-level circuit on " +
                   core::describe_pattern(valid));
    return false;
  }
  const sw::SwitchRouting routing = model.route(valid);
  for (std::size_t p = 0; p < gate.n(); ++p) {
    const std::int32_t src = routing.input_of_output[p];
    const bool expect = src >= 0 && data.get(static_cast<std::size_t>(src));
    if (res.data.get(p) != expect) {
      std::ostringstream os;
      os << model.name() << " gate-level data bit at output " << p << " is "
         << res.data.get(p) << ", behavioural routing expects " << expect << " on "
         << core::describe_pattern(valid);
      report.add("gate-level", os.str());
      return false;
    }
  }
  return true;
}

bool run_gate_level_case(std::size_t idx, Rng& rng, SwitchCache& cache,
                         core::InvariantReport& report) {
  // Alternate between the two gate-level designs; shapes stay small because
  // gate counts grow as stages * chips * w^2.
  const bool revsort = idx % 2 == 0;
  std::string key;
  sw::GateLevelSwitchBase* gate = nullptr;
  sw::ConcentratorSwitch* model = nullptr;
  if (revsort) {
    static constexpr std::size_t kN[] = {16, 64};
    const std::size_t n = kN[rng.below(std::size(kN))];
    key = "gate-revsort/" + std::to_string(n);
    auto it = cache.gates.find(key);
    if (it == cache.gates.end()) {
      it = cache.gates.emplace(key, std::make_unique<sw::GateLevelRevsortSwitch>(n))
               .first;
    }
    gate = it->second.get();
    model = cache.get("revsort/" + std::to_string(n) + "/" + std::to_string(n),
                      build_revsort, n, n, 0);
  } else {
    static constexpr std::size_t kRS[][2] = {{8, 2}, {16, 4}};
    const auto& rs = kRS[rng.below(std::size(kRS))];
    key = "gate-columnsort/" + std::to_string(rs[0]) + "x" + std::to_string(rs[1]);
    auto it = cache.gates.find(key);
    if (it == cache.gates.end()) {
      it = cache.gates
               .emplace(key, std::make_unique<sw::GateLevelColumnsortSwitch>(rs[0],
                                                                             rs[1]))
               .first;
    }
    gate = it->second.get();
    const std::size_t n = rs[0] * rs[1];
    model = cache.get("columnsort/" + std::to_string(rs[0]) + "x" +
                          std::to_string(rs[1]) + "/" + std::to_string(n),
                      build_columnsort, rs[0], rs[1], n);
  }
  bool ok = true;
  for (int t = 0; t < 4 && ok; ++t) {
    const BitVec valid = make_pattern(rng.below(kPatternKinds), gate->n(), rng);
    const BitVec data = rng.bernoulli_bits(gate->n(), 0.5);
    ok = check_gate_level(*gate, *model, valid, data, report);
  }
  return ok;
}

// --- plan-vs-legacy cross-check --------------------------------------------

/// Compare one switch (now a compiled plan behind the shared executor)
/// against the family's pre-plan LabelMesh recipe on one pattern: identical
/// routing in both directions and identical nearsorted occupancy.
bool check_against_legacy(const sw::ConcentratorSwitch& model, const BitVec& valid,
                          const pcs::legacy::Reference& ref,
                          core::InvariantReport& report) {
  ++report.checks_run;
  const sw::SwitchRouting got = model.route(valid);
  if (got.output_of_input != ref.routing.output_of_input ||
      got.input_of_output != ref.routing.input_of_output) {
    report.add("plan-vs-legacy",
               model.name() + " route diverges from the LabelMesh reference on " +
                   core::describe_pattern(valid));
    return false;
  }
  if (model.nearsorted_valid_bits(valid) != ref.nearsorted) {
    report.add("plan-vs-legacy",
               model.name() +
                   " nearsorted bits diverge from the LabelMesh reference on " +
                   core::describe_pattern(valid));
    return false;
  }
  return true;
}

bool run_legacy_oracle_case(Rng& rng, SwitchCache& cache,
                            core::InvariantReport& report) {
  namespace plan = pcs::plan;
  std::function<pcs::legacy::Reference(const BitVec&)> oracle;
  sw::ConcentratorSwitch* model = nullptr;
  std::ostringstream key;
  switch (rng.below(6)) {
    case 0: {
      static constexpr std::size_t kN[] = {4, 16, 64, 256};
      const std::size_t n = kN[rng.below(std::size(kN))];
      const std::size_t m = pick_m(n, rng);
      key << "revsort/" << n << "/" << m;
      model = cache.get(key.str(), build_revsort, n, m, 0);
      oracle = [m](const BitVec& v) { return pcs::legacy::revsort(v, m); };
      break;
    }
    case 1: {
      static constexpr std::size_t kRS[][2] = {{4, 2}, {16, 4}, {64, 8}};
      const auto& rs = kRS[rng.below(std::size(kRS))];
      const std::size_t m = pick_m(rs[0] * rs[1], rng);
      key << "columnsort/" << rs[0] << "x" << rs[1] << "/" << m;
      model = cache.get(key.str(), build_columnsort, rs[0], rs[1], m);
      oracle = [r = rs[0], s = rs[1], m](const BitVec& v) {
        return pcs::legacy::columnsort(v, r, s, m);
      };
      break;
    }
    case 2: {
      static constexpr std::size_t kRS[][2] = {{16, 4}, {64, 8}};
      const auto& rs = kRS[rng.below(std::size(kRS))];
      const std::size_t passes = 1 + rng.below(3);
      const bool alternating = rng.chance(0.5);
      const std::size_t m = pick_m(rs[0] * rs[1], rng);
      key << "multipass/" << rs[0] << "x" << rs[1] << "/" << passes << "/"
          << alternating << "/" << m;
      model = cache.get(key.str(), build_multipass, rs[0], rs[1],
                        (passes << 33) | (std::size_t{alternating} << 32) | m);
      oracle = [r = rs[0], s = rs[1], passes, m, alternating](const BitVec& v) {
        return pcs::legacy::multipass(v, r, s, passes, m,
                                      alternating
                                          ? sw::ReshapeSchedule::kAlternating
                                          : sw::ReshapeSchedule::kSame);
      };
      break;
    }
    case 3: {
      static constexpr std::size_t kN[] = {4, 16, 64};
      const std::size_t n = kN[rng.below(std::size(kN))];
      key << "fullrevsort/" << n;
      model = cache.get(key.str(), build_full_revsort, n, 0, 0);
      oracle = [](const BitVec& v) { return pcs::legacy::full_revsort(v); };
      break;
    }
    case 4: {
      static constexpr std::size_t kRS[][2] = {{2, 1}, {8, 2}, {32, 4}};
      const auto& rs = kRS[rng.below(std::size(kRS))];
      key << "fullcolumnsort/" << rs[0] << "x" << rs[1];
      model = cache.get(key.str(), build_full_columnsort, rs[0], rs[1], 0);
      oracle = [r = rs[0], s = rs[1]](const BitVec& v) {
        return pcs::legacy::full_columnsort(v, r, s);
      };
      break;
    }
    default: {  // faulty plans against the legacy kill-after-stage recipe
      const bool rev = rng.chance(0.5);
      std::vector<plan::ChipFault> faults;
      const std::size_t count = 1 + rng.below(3);
      if (rev) {
        const std::size_t n = 64, side = 8;
        const std::size_t m = pick_m(n, rng);
        for (std::size_t f = 0; f < count; ++f) {
          faults.push_back(plan::ChipFault{rng.below(3), rng.below(side)});
        }
        plan::SwitchPlan p = plan::compile_revsort_plan(n, m);
        plan::apply_chip_faults(p, faults);
        cache.switches["legacy-faulty-scratch"] =
            std::make_unique<plan::PlanSwitch>(std::move(p));
        oracle = [m, faults](const BitVec& v) {
          return pcs::legacy::revsort(v, m, faults);
        };
      } else {
        const std::size_t r = 16, cs = 4;
        const std::size_t m = pick_m(r * cs, rng);
        for (std::size_t f = 0; f < count; ++f) {
          faults.push_back(plan::ChipFault{rng.below(2), rng.below(cs)});
        }
        plan::SwitchPlan p = plan::compile_columnsort_plan(r, cs, m);
        plan::apply_chip_faults(p, faults);
        cache.switches["legacy-faulty-scratch"] =
            std::make_unique<plan::PlanSwitch>(std::move(p));
        oracle = [r, cs, m, faults](const BitVec& v) {
          return pcs::legacy::columnsort(v, r, cs, m, faults);
        };
      }
      model = cache.switches["legacy-faulty-scratch"].get();
      break;
    }
  }
  bool ok = true;
  for (int t = 0; t < 6 && ok; ++t) {
    const BitVec valid = make_pattern(rng.below(kPatternKinds), model->inputs(), rng);
    ok = check_against_legacy(*model, valid, oracle(valid), report);
  }
  if (!ok) std::cerr << "FAIL plan-vs-legacy: " << model->name() << "\n";
  return ok;
}

// --- traffic-source cross-check --------------------------------------------

/// Sweep random composable traffic specs through the src/traffic factory and
/// check the source-level invariants: every epoch is `width` wide, the exact
/// injection keeps its count, destinations stay below the sink count, the
/// offered count is conserved through trace record -> replay, and the replay
/// is byte-identical to what the recorder saw.
bool run_traffic_case(Rng& rng, core::InvariantReport& report) {
  namespace traffic = pcs::traffic;
  static constexpr std::size_t kWidths[] = {1, 7, 16, 64, 100, 256};

  traffic::TrafficSpec spec;
  spec.width = kWidths[rng.below(std::size(kWidths))];
  static const char* kInjections[] = {"bernoulli", "onoff", "exact"};
  spec.injection = kInjections[rng.below(std::size(kInjections))];
  spec.intensity = rng.uniform01();
  spec.hotspot_fraction = 0.05 + 0.9 * rng.uniform01();
  spec.chip_w = 1 + rng.below(8);

  // Patterns that address by destination need an addressable sink count;
  // everything here uses sinks == width, so gate the pick on the width.
  std::vector<const char*> patterns = {"uniform", "hotspot", "tornado",
                                       "adversarial"};
  const bool pow2 = spec.width != 0 && (spec.width & (spec.width - 1)) == 0;
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < spec.width) ++bits;
  if (pow2) {
    patterns.push_back("bitcomp");
    patterns.push_back("bitrev");
    patterns.push_back("shuffle");
    if (bits % 2 == 0) patterns.push_back("transpose");
  }
  spec.pattern = patterns[rng.below(patterns.size())];

  const std::uint64_t stream_seed = rng.next();
  const std::size_t epochs = 1 + rng.below(8);
  const std::size_t sinks = spec.width;

  traffic::TraceRecorder recorder(spec.width, 1);
  auto source = recorder.wrap(traffic::make_source(spec), 0);
  Rng stream(stream_seed);
  std::vector<BitVec> offered;
  std::vector<std::vector<std::uint32_t>> dests;
  std::size_t offered_total = 0;
  const std::size_t exact_k = std::min(
      static_cast<std::size_t>(
          std::llround(spec.intensity * static_cast<double>(spec.width))),
      spec.width);
  for (std::size_t e = 0; e < epochs; ++e) {
    offered.push_back(source->next_valid(stream));
    const BitVec& v = offered.back();
    ++report.checks_run;
    if (v.size() != spec.width) {
      report.add("traffic", spec.pattern + std::string("/") + spec.injection +
                                " epoch width mismatch");
      return false;
    }
    if (spec.injection == "exact" && spec.pattern != "adversarial" &&
        v.count() != exact_k) {
      report.add("traffic", "exact injection drifted from k");
      return false;
    }
    offered_total += v.count();
    dests.emplace_back();
    for (std::size_t g = 0; g < spec.width; ++g) {
      if (!v.get(g)) continue;
      const std::uint32_t d = source->dest_for(stream, g, sinks);
      ++report.checks_run;
      if (d >= sinks) {
        report.add("traffic", "destination past the sink count");
        return false;
      }
      dests.back().push_back(d);
    }
  }

  // Offered-count conservation through the recorder, then byte-identical
  // replay (valid bits and destinations both).
  std::size_t recorded_total = 0;
  for (const auto& epoch : recorder.log().streams[0].epochs) {
    recorded_total += epoch.valid.count();
  }
  ++report.checks_run;
  if (recorded_total != offered_total) {
    report.add("traffic", "recorder lost offered messages");
    return false;
  }
  auto replay = traffic::make_replay(
      std::make_shared<const traffic::TraceLog>(recorder.log()), 0);
  Rng unused(0);
  for (std::size_t e = 0; e < epochs; ++e) {
    ++report.checks_run;
    const BitVec v = replay->next_valid(unused);
    if (v != offered[e]) {
      report.add("traffic", "replayed valid bits diverge from the recording");
      return false;
    }
    std::size_t i = 0;
    for (std::size_t g = 0; g < spec.width; ++g) {
      if (!v.get(g)) continue;
      if (replay->dest_for(unused, g, sinks) != dests[e][i++]) {
        report.add("traffic", "replayed destination diverges from the recording");
        return false;
      }
    }
  }
  return true;
}

// --- fabric pipeline cross-check -------------------------------------------

/// Deterministic dump of one fabric campaign's outcome: the run report plus
/// every counter, gauge, and histogram EXCEPT the fabric.pipeline.* family,
/// which describes the physical schedule (merge shapes) and legitimately
/// varies with epochs_in_flight.
std::string fabric_fingerprint(const pcs::rt::MetricsRegistry& m,
                               const pcs::rt::RuntimeReport& r) {
  std::ostringstream os;
  os << "drained=" << r.drained << ";saturated=" << r.saturated
     << ";drain_used=" << r.drain_epochs_used
     << ";residual=" << r.residual_backlog << "\n";
  const auto pipeline_metric = [](const std::string& name) {
    return name.rfind("fabric.pipeline.", 0) == 0;
  };
  for (const auto& [name, c] : m.counters()) {
    if (!pipeline_metric(name)) os << name << "=" << c.value() << "\n";
  }
  for (const auto& [name, g] : m.gauges()) {
    if (!pipeline_metric(name)) os << name << "=" << g.value() << "\n";
  }
  for (const auto& [name, h] : m.histograms()) {
    if (pipeline_metric(name)) continue;
    const auto s = h.snapshot();
    os << name << ":" << s.count << "," << s.sum << "," << s.min << ","
       << s.max;
    for (const std::uint64_t b : s.buckets) os << "|" << b;
    os << "\n";
  }
  return os.str();
}

/// Random small fabric campaigns at epochs_in_flight 1, 1 (replay), 2, and 5,
/// with deflection on and off, against three oracles: the sim's own
/// conservation / credit-mirror contracts (check_invariants=true turns every
/// violation into an exception), exact counter conservation at exit, and
/// campaign-outcome identity -- the same seed must reproduce itself, and the
/// pipelined schedules must match the serial schedule metric for metric.
bool run_fabric_case(Rng& rng, core::InvariantReport& report) {
  namespace fabric = pcs::fabric;

  pcs::FabricSpec spec;
  spec.hops = 2 + rng.below(3);  // 2..4
  spec.topology = spec.hops == 3 && rng.chance(0.3)
                      ? fabric::Topology::kFatTree
                      : (rng.chance(0.5) ? fabric::Topology::kOmega
                                         : fabric::Topology::kButterfly);
  spec.radix = 2;
  if (rng.chance(0.5)) {
    spec.node.family = "columnsort";
    spec.node.n = 64;
    spec.node.m = 32;
  } else {
    spec.node.family = "revsort";
    spec.node.n = 64;
    spec.node.m = 48;
  }
  spec.credits = 1 + rng.below(4);  // 1 exercises sustained starvation
  spec.alloc = rng.chance(0.5) ? "rr" : "islip";
  spec.route = rng.chance(0.5) ? "adaptive" : "deterministic";
  spec.deflect_max = spec.route == "adaptive" && rng.chance(0.5)
                         ? 1 + rng.below(3)
                         : 0;

  pcs::fabric::FabricOptions opts;
  opts.queue_depth = 1 + rng.below(3);
  opts.seed = rng.next();
  opts.warmup_epochs = 2;
  opts.measure_epochs = 6;
  opts.drain_epochs_max = 64;
  opts.check_invariants = true;
  const double load = rng.chance(0.25) ? 1.0 : 0.15 + 0.7 * rng.uniform01();

  std::ostringstream desc;
  desc << fabric::topology_name(spec.topology) << "/" << spec.hops << "x"
       << spec.radix << "/" << spec.node.family << "/" << spec.alloc << "/"
       << spec.route << "/dmax" << spec.deflect_max << "/credits"
       << spec.credits << "/load" << load << "/seed" << opts.seed;

  auto campaign = [&](std::size_t epochs_in_flight) {
    pcs::fabric::FabricOptions o = opts;
    o.epochs_in_flight = epochs_in_flight;
    pcs::fabric::FabricSim sim(
        spec, o, [load](std::size_t width) {
          return std::unique_ptr<pcs::traffic::TrafficSource>(
              std::make_unique<pcs::traffic::ComposedSource>(
                  pcs::traffic::PatternKind::kUniform,
                  std::make_unique<pcs::traffic::BernoulliProcess>(width,
                                                                   load),
                  0.125));
        });
    pcs::rt::MetricsRegistry metrics;
    const pcs::rt::RuntimeReport r = sim.run(metrics);
    ++report.checks_run;
    const auto& c = metrics.counters();
    const auto val = [&](const char* name) { return c.at(name).value(); };
    if (val("total.offered") !=
        val("total.delivered") + val("total.dropped") + val("total.residual")) {
      report.add("fabric", "campaign counters break conservation on " +
                               desc.str());
      return std::string();
    }
    return fabric_fingerprint(metrics, r);
  };

  const std::string serial = campaign(1);
  if (serial.empty()) return false;
  ++report.checks_run;
  if (campaign(1) != serial) {
    report.add("fabric", "serial replay diverged from itself on " + desc.str());
    return false;
  }
  for (const std::size_t e : {std::size_t{2}, std::size_t{5}}) {
    ++report.checks_run;
    if (campaign(e) != serial) {
      report.add("fabric", "epochs_in_flight=" + std::to_string(e) +
                               " diverged from the serial campaign on " +
                               desc.str());
      return false;
    }
  }
  return true;
}

// --- driver ----------------------------------------------------------------

bool run_case(std::size_t idx, const Options& opt, SwitchCache& cache,
              core::InvariantReport& report) {
  Rng rng(mix(opt.seed ^ idx));
  // Every 8th case exercises the gate-level path instead of a batch sweep,
  // another 8th cross-checks compiled plans against the legacy recipes,
  // another 8th sweeps the composable traffic sources, and every 16th runs
  // full multi-hop fabric campaigns through the pipeline-identity oracles.
  if (idx % 8 == 7) return run_gate_level_case(idx, rng, cache, report);
  if (idx % 8 == 3) return run_legacy_oracle_case(rng, cache, report);
  if (idx % 8 == 5) return run_traffic_case(rng, report);
  if (idx % 16 == 2) return run_fabric_case(rng, report);

  const CaseContext ctx = pick_case(idx % 6, rng, cache);
  const std::size_t n = ctx.sw->inputs();
  const std::size_t batch = pick_batch_size(n, rng);
  const std::vector<BitVec> patterns = make_batch(n, batch, rng);

  if (opt.verbose) {
    std::cerr << "case " << idx << ": " << ctx.description << " batch=" << batch
              << "\n";
  }

  bool ok = core::check_batch_identity(*ctx.sw, patterns, report);
  for (const BitVec& valid : patterns) {
    if (!ok) break;
    if (ctx.max_fault_loss > 0) {
      const sw::SwitchRouting routing = ctx.sw->route(valid);
      const std::size_t baseline = ctx.baseline->route(valid).routed_count();
      ok = core::check_partial_injection(*ctx.sw, valid, routing, report) &&
           core::check_fault_loss(*ctx.sw, valid, routing, baseline,
                                  ctx.max_fault_loss, report);
    } else {
      ok = core::check_pattern(*ctx.sw, valid, report);
    }
  }
  if (!ok) {
    std::cerr << "FAIL at case " << idx << ": " << ctx.description
              << " batch=" << batch << "\n";
  }
  return ok;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--cases N] [--seed S] [--start K] [--verbose]\n"
               "Deterministic differential fuzz sweep; replay one case with\n"
               "--start <case> --cases 1 and the same --seed.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* { return a + 1 < argc ? argv[++a] : nullptr; };
    if (arg == "--cases") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.cases = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--start") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.start = std::strtoull(v, nullptr, 10);
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      return usage(argv[0]);
    }
  }

  SwitchCache cache;
  core::InvariantReport report;
  for (std::size_t idx = opt.start; idx < opt.start + opt.cases; ++idx) {
    bool ok = false;
    try {
      ok = run_case(idx, opt, cache, report);
    } catch (const std::exception& e) {
      std::cerr << "FAIL at case " << idx << ": unexpected exception: " << e.what()
                << "\n";
      return 1;
    }
    if (!ok) {
      std::cerr << report.to_string() << "\n"
                << "replay: --seed " << opt.seed << " --start " << idx
                << " --cases 1\n";
      return 1;
    }
  }
  std::cout << "fuzz sweep clean: " << opt.cases << " cases, " << report.checks_run
            << " invariant checks, seed " << opt.seed << "\n";
  return 0;
}
