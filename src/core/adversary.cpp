#include "core/adversary.hpp"

#include <array>

#include "message/traffic.hpp"
#include "sortnet/nearsort.hpp"
#include "util/mathutil.hpp"

namespace pcs::core {

std::size_t measured_epsilon(const pcs::sw::ConcentratorSwitch& sw,
                             const BitVec& valid) {
  return sortnet::min_nearsort_epsilon(sw.nearsorted_valid_bits(valid));
}

WorstCase worst_epsilon_search(const pcs::sw::ConcentratorSwitch& sw,
                               std::size_t random_trials, std::size_t climb_steps,
                               Rng& rng) {
  const std::size_t n = sw.inputs();
  WorstCase best;
  best.pattern = BitVec(n);

  auto consider = [&](const BitVec& pattern) {
    ++best.trials;
    std::size_t eps = measured_epsilon(sw, pattern);
    if (eps > best.epsilon) {
      best.epsilon = eps;
      best.k = pattern.count();
      best.pattern = pattern;
    }
  };

  // Densities around the interesting band (half-full meshes stress the
  // dirty region most) plus the extremes.
  const std::array<double, 7> densities = {0.05, 0.25, 0.4, 0.5, 0.6, 0.75, 0.95};
  for (double p : densities) {
    for (std::size_t t = 0; t < random_trials; ++t) {
      consider(rng.bernoulli_bits(n, p));
    }
  }

  // Structured family at a sweep of exact counts.
  const std::size_t chip_w = isqrt(n) > 0 ? isqrt(n) : 1;
  for (std::size_t k = 1; k <= n; k = k * 2 + 1) {
    pcs::msg::AdversarialTraffic adv(n, std::min(k, n), chip_w);
    for (std::size_t f = 0; f < adv.family_size(); ++f) consider(adv.next(rng));
  }

  // Greedy hill-climb from the best pattern found so far.
  BitVec current = best.pattern;
  std::size_t current_eps = best.epsilon;
  for (std::size_t step = 0; step < climb_steps; ++step) {
    std::size_t i = static_cast<std::size_t>(rng.below(n));
    current.flip(i);
    std::size_t eps = measured_epsilon(sw, current);
    ++best.trials;
    if (eps >= current_eps) {
      current_eps = eps;
      if (eps > best.epsilon) {
        best.epsilon = eps;
        best.k = current.count();
        best.pattern = current;
      }
    } else {
      current.flip(i);  // revert
    }
  }
  return best;
}

}  // namespace pcs::core
