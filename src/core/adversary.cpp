#include "core/adversary.hpp"

#include <array>

#include "traffic/traffic_source.hpp"
#include "sortnet/nearsort.hpp"
#include "util/mathutil.hpp"
#include "util/parallel.hpp"

namespace pcs::core {

std::size_t measured_epsilon(const pcs::sw::ConcentratorSwitch& sw,
                             const BitVec& valid) {
  return sortnet::min_nearsort_epsilon(sw.nearsorted_valid_bits(valid));
}

WorstCase worst_epsilon_search(const pcs::sw::ConcentratorSwitch& sw,
                               std::size_t random_trials, std::size_t climb_steps,
                               Rng& rng) {
  const std::size_t n = sw.inputs();
  WorstCase best;
  best.pattern = BitVec(n);

  // Batch evaluation keeps the answer identical to the old one-pattern loop:
  // patterns are drawn in the same RNG order, epsilons are reduced in that
  // order, and only a strictly greater epsilon replaces the incumbent.
  auto consider_batch = [&](const std::vector<BitVec>& patterns) {
    std::vector<BitVec> outs = sw.nearsorted_batch(patterns);
    std::vector<std::size_t> eps(patterns.size(), 0);
    parallel_for(std::size_t{0}, patterns.size(), [&](std::size_t i) {
      eps[i] = sortnet::min_nearsort_epsilon(outs[i]);
    });
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      ++best.trials;
      if (eps[i] > best.epsilon) {
        best.epsilon = eps[i];
        best.k = patterns[i].count();
        best.pattern = patterns[i];
      }
    }
  };

  // Densities around the interesting band (half-full meshes stress the
  // dirty region most) plus the extremes.
  const std::array<double, 7> densities = {0.05, 0.25, 0.4, 0.5, 0.6, 0.75, 0.95};
  {
    std::vector<BitVec> patterns;
    patterns.reserve(densities.size() * random_trials);
    for (double p : densities) {
      for (std::size_t t = 0; t < random_trials; ++t) {
        patterns.push_back(rng.bernoulli_bits(n, p));
      }
    }
    consider_batch(patterns);
  }

  // Structured family at a sweep of exact counts.
  const std::size_t chip_w = isqrt(n) > 0 ? isqrt(n) : 1;
  {
    std::vector<BitVec> patterns;
    for (std::size_t k = 1; k <= n; k = k * 2 + 1) {
      pcs::traffic::AdversarialSource adv(n, std::min(k, n), chip_w);
      for (std::size_t f = 0; f < adv.family_size(); ++f) {
        patterns.push_back(adv.next_valid(rng));
      }
    }
    consider_batch(patterns);
  }

  // Greedy hill-climb from the best pattern found so far.
  BitVec current = best.pattern;
  std::size_t current_eps = best.epsilon;
  for (std::size_t step = 0; step < climb_steps; ++step) {
    std::size_t i = static_cast<std::size_t>(rng.below(n));
    current.flip(i);
    std::size_t eps = measured_epsilon(sw, current);
    ++best.trials;
    if (eps >= current_eps) {
      current_eps = eps;
      if (eps > best.epsilon) {
        best.epsilon = eps;
        best.k = current.count();
        best.pattern = current;
      }
    } else {
      current.flip(i);  // revert
    }
  }
  return best;
}

}  // namespace pcs::core
