// Adversarial search for worst-case nearsortedness: how close do real input
// patterns get to the paper's epsilon bounds?
//
// The search combines the structured family of AdversarialTraffic, uniform
// random patterns at many densities, and a greedy hill-climb that flips
// bits while the measured epsilon does not decrease.  Results feed the
// bench_load_ratio and bench_dirty_rows reports (paper-vs-measured).
#pragma once

#include <cstdint>
#include <string>

#include "switch/concentrator.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace pcs::core {

struct WorstCase {
  std::size_t epsilon = 0;  ///< worst measured nearsortedness
  std::size_t k = 0;        ///< valid count of the worst pattern
  BitVec pattern;           ///< the pattern achieving it
  std::size_t trials = 0;   ///< patterns evaluated
};

/// Search for the input pattern maximizing the measured epsilon of the
/// switch's n-wide output arrangement.  `random_trials` uniform patterns
/// per density plus the structured family plus `climb_steps` hill-climbing
/// flips from the best seed.
WorstCase worst_epsilon_search(const pcs::sw::ConcentratorSwitch& sw,
                               std::size_t random_trials, std::size_t climb_steps,
                               Rng& rng);

/// Convenience: measured epsilon of one pattern through one switch.
std::size_t measured_epsilon(const pcs::sw::ConcentratorSwitch& sw,
                             const BitVec& valid);

}  // namespace pcs::core
