#include "core/bounds.hpp"

#include <algorithm>

#include "sortnet/columnsort.hpp"
#include "sortnet/revsort.hpp"
#include "util/mathutil.hpp"

namespace pcs::core {

std::size_t revsort_epsilon_bound(std::size_t side) {
  return sortnet::algorithm1_dirty_row_bound(side) * side;
}

std::size_t columnsort_epsilon_bound(std::size_t s) {
  return sortnet::algorithm2_epsilon_bound(s);
}

double alpha_from_epsilon(std::size_t epsilon, std::size_t m) {
  if (m == 0) return 0.0;
  return std::clamp(1.0 - static_cast<double>(epsilon) / static_cast<double>(m), 0.0,
                    1.0);
}

std::size_t capacity_from_epsilon(std::size_t epsilon, std::size_t m) {
  return epsilon >= m ? 0 : m - epsilon;
}

std::size_t revsort_delay_formula(std::size_t n, std::size_t o1) {
  return 3 * (n <= 1 ? 0 : ceil_log2(n)) + o1;
}

std::size_t columnsort_delay_formula(std::size_t r, std::size_t o1) {
  return 4 * (r <= 1 ? 0 : ceil_log2(r)) + o1;
}

std::size_t hyper_chip_delay_formula(std::size_t w) {
  return 2 * (w <= 1 ? 0 : ceil_log2(w));
}

}  // namespace pcs::core
