// Closed-form bounds from the paper, gathered so the benches and EXPERIMENTS
// reports quote one source of truth.
#pragma once

#include <cstdint>

namespace pcs::core {

/// Theorem 3: epsilon bound of the Revsort switch on n = side^2 inputs:
/// (2*ceil(n^{1/4}) - 1) * sqrt(n).
std::size_t revsort_epsilon_bound(std::size_t side);

/// Theorem 4: epsilon bound of the Columnsort switch: (s - 1)^2.
std::size_t columnsort_epsilon_bound(std::size_t s);

/// Lemma 2: load ratio alpha = 1 - epsilon / m, clamped to [0, 1].
double alpha_from_epsilon(std::size_t epsilon, std::size_t m);

/// Guaranteed lossless capacity floor(alpha * m) = m - epsilon (or 0).
std::size_t capacity_from_epsilon(std::size_t epsilon, std::size_t m);

/// Paper Section 4: message delay through the Revsort switch,
/// 3 lg n + O(1); the O(1) is pad_overhead (three chip crossings) plus the
/// hardwired shifter.
std::size_t revsort_delay_formula(std::size_t n, std::size_t o1);

/// Paper Section 5: message delay through the Columnsort switch,
/// 4 lg r + O(1) = 4 beta lg n + O(1).
std::size_t columnsort_delay_formula(std::size_t r, std::size_t o1);

/// Paper Section 1 / refs [1][2]: delay through one w-by-w
/// hyperconcentrator chip, 2 lg w.
std::size_t hyper_chip_delay_formula(std::size_t w);

}  // namespace pcs::core
