#include "core/epsilon_stats.hpp"

#include <algorithm>

#include "sortnet/nearsort.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace pcs::core {

EpsilonStats collect_epsilon_stats(const pcs::sw::ConcentratorSwitch& sw,
                                   std::size_t trials, double density, Rng& rng) {
  PCS_REQUIRE(trials > 0, "collect_epsilon_stats trials");
  // Draw every pattern up front (keeping the RNG stream identical to the old
  // one-at-a-time loop), then push the whole batch through the word-parallel
  // sorting substrate and reduce the outputs in parallel.
  std::vector<BitVec> patterns;
  patterns.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    patterns.push_back(rng.bernoulli_bits(sw.inputs(), density));
  }
  std::vector<BitVec> outputs = sw.nearsorted_batch(patterns);
  std::vector<std::size_t> eps(trials, 0);
  parallel_for(std::size_t{0}, trials, [&](std::size_t t) {
    eps[t] = sortnet::min_nearsort_epsilon(outputs[t]);
  });
  double total = 0.0;
  for (std::size_t e : eps) total += static_cast<double>(e);
  std::sort(eps.begin(), eps.end());
  auto pct = [&](double q) {
    std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(trials - 1));
    return eps[idx];
  };
  EpsilonStats s;
  s.samples = trials;
  s.density = density;
  s.mean = total / static_cast<double>(trials);
  s.min = eps.front();
  s.p50 = pct(0.50);
  s.p90 = pct(0.90);
  s.p99 = pct(0.99);
  s.max = eps.back();
  return s;
}

std::vector<EpsilonStats> epsilon_stats_sweep(const pcs::sw::ConcentratorSwitch& sw,
                                              std::size_t trials,
                                              const std::vector<double>& densities,
                                              Rng& rng) {
  std::vector<EpsilonStats> out;
  out.reserve(densities.size());
  for (double d : densities) {
    out.push_back(collect_epsilon_stats(sw, trials, d, rng));
  }
  return out;
}

}  // namespace pcs::core
