// Distributional view of nearsortedness: the paper's bounds are worst-case;
// deployments care about the typical epsilon too (it sets how often the
// retry protocol actually fires).  collect_epsilon_stats samples a switch's
// measured epsilon over random valid-bit patterns and reports mean and
// percentiles, which the load-ratio bench prints next to the worst case and
// the theorem bound.
#pragma once

#include <cstdint>
#include <vector>

#include "switch/concentrator.hpp"
#include "util/rng.hpp"

namespace pcs::core {

struct EpsilonStats {
  std::size_t samples = 0;
  double density = 0.0;      ///< Bernoulli parameter of the sampled patterns
  double mean = 0.0;
  std::size_t min = 0;
  std::size_t p50 = 0;
  std::size_t p90 = 0;
  std::size_t p99 = 0;
  std::size_t max = 0;
};

/// Sample `trials` Bernoulli(density) patterns through the switch and
/// summarize the measured epsilon of the n-wide output arrangement.
EpsilonStats collect_epsilon_stats(const pcs::sw::ConcentratorSwitch& sw,
                                   std::size_t trials, double density, Rng& rng);

/// The same sweep across a grid of densities; one entry per density.
std::vector<EpsilonStats> epsilon_stats_sweep(const pcs::sw::ConcentratorSwitch& sw,
                                              std::size_t trials,
                                              const std::vector<double>& densities,
                                              Rng& rng);

}  // namespace pcs::core
