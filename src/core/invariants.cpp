#include "core/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "sortnet/nearsort.hpp"

namespace pcs::core {

using pcs::sw::ConcentratorSwitch;
using pcs::sw::SwitchRouting;

void InvariantReport::add(std::string invariant, std::string detail) {
  violations.push_back(InvariantViolation{std::move(invariant), std::move(detail)});
}

std::string InvariantReport::to_string() const {
  std::ostringstream os;
  if (ok()) {
    os << "all " << checks_run << " invariant checks passed";
    return os.str();
  }
  os << violations.size() << " violation(s) in " << checks_run << " checks:";
  for (const InvariantViolation& v : violations) {
    os << "\n  [" << v.invariant << "] " << v.detail;
  }
  return os.str();
}

std::string describe_pattern(const BitVec& valid) {
  constexpr std::size_t kShow = 96;
  std::ostringstream os;
  os << "n=" << valid.size() << " k=" << valid.count() << " bits=";
  const std::size_t show = std::min(valid.size(), kShow);
  for (std::size_t i = 0; i < show; ++i) os << (valid.get(i) ? '1' : '0');
  if (valid.size() > kShow) os << "...(" << valid.size() - kShow << " more)";
  return os.str();
}

namespace {

/// Common preamble for a violation detail: which switch, which pattern.
std::string context(const ConcentratorSwitch& sw, const BitVec& valid) {
  std::ostringstream os;
  os << sw.name() << " m=" << sw.outputs() << " on " << describe_pattern(valid);
  return os.str();
}

}  // namespace

bool check_partial_injection(const ConcentratorSwitch& sw, const BitVec& valid,
                             const SwitchRouting& routing, InvariantReport& report) {
  ++report.checks_run;
  const std::size_t n = sw.inputs();
  const std::size_t m = sw.outputs();
  if (routing.output_of_input.size() != n || routing.input_of_output.size() != m) {
    std::ostringstream os;
    os << context(sw, valid) << ": routing sized " << routing.output_of_input.size()
       << "x" << routing.input_of_output.size() << ", expected " << n << "x" << m;
    report.add("partial-injection", os.str());
    return false;
  }
  if (!routing.is_partial_injection()) {
    report.add("partial-injection",
               context(sw, valid) + ": maps are not a consistent partial injection");
    return false;
  }
  for (std::size_t j = 0; j < m; ++j) {
    const std::int32_t src = routing.input_of_output[j];
    if (src < 0) continue;
    if (static_cast<std::size_t>(src) >= n || !valid.get(static_cast<std::size_t>(src))) {
      std::ostringstream os;
      os << context(sw, valid) << ": output " << j << " carries input " << src
         << " which is not a valid input";
      report.add("partial-injection", os.str());
      return false;
    }
  }
  return true;
}

bool check_concentration(const ConcentratorSwitch& sw, const BitVec& valid,
                         const SwitchRouting& routing, InvariantReport& report) {
  ++report.checks_run;
  const std::size_t k = valid.count();
  const std::size_t m = sw.outputs();
  const std::size_t capacity = sw.guaranteed_capacity();
  const std::size_t routed = routing.routed_count();
  if (routed > k) {
    std::ostringstream os;
    os << context(sw, valid) << ": routed " << routed << " > k=" << k;
    report.add("concentration", os.str());
    return false;
  }
  if (k <= capacity && routed != k) {
    std::ostringstream os;
    os << context(sw, valid) << ": k=" << k << " <= capacity=" << capacity
       << " but only " << routed << " routed";
    report.add("concentration", os.str());
    return false;
  }
  if (k > capacity && routed < std::min(capacity, k)) {
    std::ostringstream os;
    os << context(sw, valid) << ": k=" << k << " > capacity=" << capacity
       << " but only " << routed << " outputs filled";
    report.add("concentration", os.str());
    return false;
  }
  if (sw.epsilon_bound() == 0) {
    // Hyperconcentrator prefix property: exactly the first min(k, m) outputs
    // carry messages.  (Input order on that prefix is a stability promise
    // some full sorters do not make, so occupancy is what we check here.)
    const std::size_t expect = std::min(k, m);
    for (std::size_t j = 0; j < m; ++j) {
      const bool occupied = routing.input_of_output[j] >= 0;
      if (occupied == (j < expect)) continue;
      std::ostringstream os;
      os << context(sw, valid) << ": output " << j
         << (occupied ? " carries a message beyond" : " is a hole inside")
         << " the min(k,m)=" << expect << " prefix";
      report.add("concentration", os.str());
      return false;
    }
  }
  return true;
}

bool check_epsilon_bound(const ConcentratorSwitch& sw, const BitVec& valid,
                         const BitVec& arrangement, InvariantReport& report) {
  ++report.checks_run;
  if (arrangement.size() != sw.inputs()) {
    std::ostringstream os;
    os << context(sw, valid) << ": arrangement has " << arrangement.size()
       << " bits, expected n=" << sw.inputs();
    report.add("epsilon-bound", os.str());
    return false;
  }
  const std::size_t k = valid.count();
  const std::size_t carried = arrangement.count();
  const std::size_t max_loss = sw.max_fault_loss();
  if (carried > k || carried + max_loss < k) {
    std::ostringstream os;
    os << context(sw, valid) << ": arrangement carries " << carried
       << " ones, input had k=" << k << " (messages created or lost beyond"
       << " max_fault_loss=" << max_loss << ")";
    report.add("epsilon-bound", os.str());
    return false;
  }
  const std::size_t bound = sw.epsilon_bound();
  if (bound >= sw.inputs()) return true;  // no advertised guarantee (faulty)
  const std::size_t measured = sortnet::min_nearsort_epsilon(arrangement);
  if (measured > bound) {
    std::ostringstream os;
    os << context(sw, valid) << ": measured epsilon " << measured
       << " exceeds advertised bound " << bound;
    report.add("epsilon-bound", os.str());
    return false;
  }
  return true;
}

bool check_batch_identity(const ConcentratorSwitch& sw,
                          const std::vector<BitVec>& valids,
                          InvariantReport& report) {
  ++report.checks_run;
  const std::size_t b = valids.size();
  const std::vector<SwitchRouting> routes = sw.route_batch(valids);
  const std::vector<BitVec> arrangements = sw.nearsorted_batch(valids);
  if (routes.size() != b || arrangements.size() != b) {
    std::ostringstream os;
    os << sw.name() << ": batch of " << b << " returned " << routes.size()
       << " routings and " << arrangements.size() << " arrangements";
    report.add("batch-identity", os.str());
    return false;
  }
  for (std::size_t i = 0; i < b; ++i) {
    const SwitchRouting ref = sw.route(valids[i]);
    if (routes[i].output_of_input != ref.output_of_input ||
        routes[i].input_of_output != ref.input_of_output) {
      std::ostringstream os;
      os << context(sw, valids[i]) << ": route_batch diverges from route() at "
         << "pattern " << i << " of batch size " << b;
      report.add("batch-identity", os.str());
      return false;
    }
    const BitVec ref_arr = sw.nearsorted_valid_bits(valids[i]);
    if (arrangements[i].size() != ref_arr.size() ||
        arrangements[i].count_diff(ref_arr) != 0) {
      std::ostringstream os;
      os << context(sw, valids[i]) << ": nearsorted_batch diverges from "
         << "nearsorted_valid_bits() at pattern " << i << " of batch size " << b;
      report.add("batch-identity", os.str());
      return false;
    }
  }
  return true;
}

bool check_fault_loss(const ConcentratorSwitch& sw, const BitVec& valid,
                      const SwitchRouting& routing, std::size_t baseline_routed,
                      std::size_t max_loss, InvariantReport& report) {
  ++report.checks_run;
  const std::size_t k = valid.count();
  const std::size_t routed = routing.routed_count();
  if (routed > k) {
    std::ostringstream os;
    os << context(sw, valid) << ": routed " << routed << " > k=" << k
       << " (phantom messages)";
    report.add("fault-loss", os.str());
    return false;
  }
  if (routed < baseline_routed && baseline_routed - routed > max_loss) {
    std::ostringstream os;
    os << context(sw, valid) << ": routed " << routed << ", fault-free baseline "
       << baseline_routed << " -- lost " << baseline_routed - routed
       << " to faults, max_fault_loss=" << max_loss;
    report.add("fault-loss", os.str());
    return false;
  }
  return true;
}

bool check_pattern(const ConcentratorSwitch& sw, const BitVec& valid,
                   InvariantReport& report) {
  const SwitchRouting routing = sw.route(valid);
  bool ok = check_partial_injection(sw, valid, routing, report);
  // A faulty switch (no advertised epsilon bound) loses messages by design;
  // the concentration contract only binds working hardware.
  if (sw.epsilon_bound() < sw.inputs()) {
    ok = check_concentration(sw, valid, routing, report) && ok;
  }
  ok = check_epsilon_bound(sw, valid, sw.nearsorted_valid_bits(valid), report) && ok;
  return ok;
}

}  // namespace pcs::core
