// Reusable invariant checkers for ConcentratorSwitch implementations.
//
// verification.hpp answers "does this switch satisfy the paper end to end?"
// with its own pattern generation; this header is the layer below it: each
// function checks ONE invariant on ONE concrete (switch, pattern, result)
// instance and, on failure, records a violation that names the offending
// values (n, m, k, indices, the pattern itself) instead of just a verdict.
// Tests and the differential fuzzer (fuzz/fuzz_differential.cpp) share these
// so a counterexample found by either is reported identically and is
// immediately replayable.
//
// The invariants:
//   * partial-injection   -- routing maps are mutually consistent, sized
//                            (n, m), and route only genuinely valid inputs;
//   * concentration       -- Section 1's contract: k <= capacity routes all
//                            k, k > capacity fills >= capacity outputs; for
//                            hyperconcentrators (epsilon 0) additionally the
//                            output-prefix property (first min(k, m) outputs,
//                            in stable input order);
//   * epsilon-bound       -- the n-wide arrangement conserves the valid
//                            count and its measured nearsort epsilon does
//                            not exceed epsilon_bound() (Theorems 3/4);
//   * batch-identity      -- route_batch / nearsorted_batch are bit-for-bit
//                            the per-pattern methods (PR 1's engine);
//   * fault-loss          -- a faulty switch loses at most max_fault_loss()
//                            messages and routes no phantom ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "switch/concentrator.hpp"
#include "util/bitvec.hpp"

namespace pcs::core {

struct InvariantViolation {
  std::string invariant;  ///< which invariant failed (slug, e.g. "batch-identity")
  std::string detail;     ///< offending values and the pattern, for replay
};

struct InvariantReport {
  std::vector<InvariantViolation> violations;
  std::size_t checks_run = 0;

  bool ok() const noexcept { return violations.empty(); }
  void add(std::string invariant, std::string detail);
  std::string to_string() const;
};

/// Compact description of a pattern for violation messages: n, k, and the
/// bits (truncated past 96 positions).
std::string describe_pattern(const BitVec& valid);

/// Routing maps are sized (inputs, outputs), form a consistent partial
/// injection, and every routed output carries a genuinely valid input.
bool check_partial_injection(const pcs::sw::ConcentratorSwitch& sw,
                             const BitVec& valid,
                             const pcs::sw::SwitchRouting& routing,
                             InvariantReport& report);

/// Section 1's partial-concentration contract against guaranteed_capacity();
/// for epsilon_bound() == 0 switches also the hyperconcentrator prefix
/// property: exactly the outputs 0..min(k,m)-1 carry messages.
bool check_concentration(const pcs::sw::ConcentratorSwitch& sw, const BitVec& valid,
                         const pcs::sw::SwitchRouting& routing,
                         InvariantReport& report);

/// The n-wide arrangement conserves count -- up to the switch's
/// max_fault_loss() messages may vanish into dead chips, never appear --
/// and is epsilon_bound()-nearsorted (skipped when the switch advertises
/// no bound, epsilon_bound() >= n).
bool check_epsilon_bound(const pcs::sw::ConcentratorSwitch& sw, const BitVec& valid,
                         const BitVec& arrangement, InvariantReport& report);

/// route_batch and nearsorted_batch over `valids` are bit-identical to the
/// per-pattern route / nearsorted_valid_bits calls.
bool check_batch_identity(const pcs::sw::ConcentratorSwitch& sw,
                          const std::vector<BitVec>& valids,
                          InvariantReport& report);

/// Fault accounting for switches with dead chips: no phantom routes, and the
/// switch delivers at most `max_loss` fewer messages than `baseline_routed`,
/// the count a fault-free switch of the same shape routes on the same
/// pattern.  (Comparing against k alone is wrong: with k > m even a healthy
/// switch must drop k - m messages, and that capacity loss is not the
/// faults' fault.)
bool check_fault_loss(const pcs::sw::ConcentratorSwitch& sw, const BitVec& valid,
                      const pcs::sw::SwitchRouting& routing,
                      std::size_t baseline_routed, std::size_t max_loss,
                      InvariantReport& report);

/// Run every single-pattern invariant (partial-injection, concentration,
/// epsilon-bound) on one pattern, routing it internally.
bool check_pattern(const pcs::sw::ConcentratorSwitch& sw, const BitVec& valid,
                   InvariantReport& report);

}  // namespace pcs::core
