#include "core/lemmas.hpp"

#include <algorithm>
#include <sstream>

#include "sortnet/nearsort.hpp"
#include "util/assert.hpp"

namespace pcs::core {

bool lemma1_roundtrip(const BitVec& bits) {
  using sortnet::dirty_window;
  using sortnet::lemma1_structure_holds;
  using sortnet::min_nearsort_epsilon;

  const std::size_t n = bits.size();
  const std::size_t eps_min = min_nearsort_epsilon(bits);

  // Forward: the structure must hold for every epsilon >= eps_min (checking
  // eps_min and eps_min + 1 and n suffices; the predicate is monotone).
  if (!lemma1_structure_holds(bits, eps_min)) return false;
  if (!lemma1_structure_holds(bits, std::min(eps_min + 1, n))) return false;
  if (!lemma1_structure_holds(bits, n)) return false;

  // Strictness: when eps_min > 0 the structure must *fail* for eps_min - 1;
  // otherwise eps_min would not be minimal.
  if (eps_min > 0 && lemma1_structure_holds(bits, eps_min - 1)) return false;

  // Converse: rebuild the epsilon implied by the dirty window and confirm
  // it matches the per-element displacement definition.
  sortnet::DirtyWindow w = dirty_window(bits);
  const std::size_t k = bits.count();
  std::size_t eps_from_window = 0;
  if (w.dirty_length() > 0) {
    std::size_t last_one = w.dirty_end - 1;
    std::size_t first_zero = w.dirty_begin;
    if (last_one + 1 > k) eps_from_window = last_one + 1 - k;
    if (k > first_zero) eps_from_window = std::max(eps_from_window, k - first_zero);
  }
  return eps_from_window == eps_min;
}

Lemma2Check check_lemma2(const pcs::sw::ConcentratorSwitch& sw, const BitVec& valid) {
  return check_lemma2(sw, valid, sw.nearsorted_valid_bits(valid), sw.route(valid));
}

Lemma2Check check_lemma2(const pcs::sw::ConcentratorSwitch& sw, const BitVec& valid,
                         const BitVec& arrangement,
                         const pcs::sw::SwitchRouting& routing) {
  Lemma2Check out;
  out.k = valid.count();
  out.measured_epsilon = sortnet::min_nearsort_epsilon(arrangement);

  const std::size_t m = sw.outputs();
  const std::size_t eps = out.measured_epsilon;
  const std::size_t capacity = eps >= m ? 0 : m - eps;  // alpha * m

  out.routed = routing.routed_count();

  std::ostringstream detail;
  if (!routing.is_partial_injection()) {
    out.holds = false;
    detail << "routing is not a partial injection";
    out.detail = detail.str();
    return out;
  }
  if (out.k <= capacity) {
    out.holds = (out.routed == out.k);
    if (!out.holds) {
      detail << "k=" << out.k << " <= capacity=" << capacity << " but only "
             << out.routed << " routed";
    }
  } else {
    out.holds = (out.routed >= std::min(capacity, out.k));
    if (!out.holds) {
      detail << "k=" << out.k << " > capacity=" << capacity << " but only "
             << out.routed << " routed";
    }
  }
  out.detail = detail.str();
  return out;
}

BitVec figure2_arrangement(std::size_t n, std::size_t m, std::size_t epsilon,
                           std::size_t k) {
  PCS_REQUIRE(m <= n, "figure2_arrangement m <= n");
  PCS_REQUIRE(epsilon <= m, "figure2_arrangement epsilon <= m");
  PCS_REQUIRE(k > m - epsilon && k <= n, "figure2_arrangement needs k > m - epsilon");
  const std::size_t lead = m - epsilon;      // 1s routed to the first outputs
  const std::size_t trail = k - lead;        // 1s pushed to the very end
  PCS_REQUIRE(lead + trail <= n, "figure2_arrangement overflow");
  BitVec out(n);
  for (std::size_t i = 0; i < lead; ++i) out.set(i, true);
  for (std::size_t i = 0; i < trail; ++i) out.set(n - 1 - i, true);
  return out;
}

bool figure2_premise(std::size_t n, std::size_t m, std::size_t epsilon,
                     std::size_t k) {
  // k + epsilon < (n + m) / 2, exactly as in the figure caption.
  return 2 * (k + epsilon) < n + m;
}

bool epsilon_bound_respected(const pcs::sw::ConcentratorSwitch& sw,
                             const BitVec& valid) {
  const BitVec arrangement = sw.nearsorted_valid_bits(valid);
  return sortnet::min_nearsort_epsilon(arrangement) <= sw.epsilon_bound();
}

}  // namespace pcs::core
