// Executable statements of the paper's results (Sections 3-5).
//
// Lemma 1:   a 0/1 sequence is epsilon-nearsorted iff it is a clean run of
//            >= k - epsilon 1s, a dirty window of <= 2*epsilon bits, and a
//            clean run of >= n - k - epsilon 0s.
// Lemma 2:   a switch that epsilon-nearsorts its valid bits, restricted to
//            its first m outputs, is an (n, m, 1 - epsilon/m) partial
//            concentrator.
// Figure 2:  the converse of Lemma 2 fails -- a valid partial concentrator
//            can arrange its output so it is not epsilon-nearsorted.
// Theorem 3: the Revsort switch is an (n, m, 1 - O(n^{3/4}/m)) partial
//            concentrator (via the dirty-row bound on Algorithm 1).
// Theorem 4: the Columnsort switch is an (n, m, 1 - (s-1)^2/m) partial
//            concentrator (via Leighton's nearsort bound on Algorithm 2).
//
// Each function checks one concrete instance; the tests and benches sweep
// them over exhaustive/random/adversarial inputs.
#pragma once

#include <cstdint>
#include <string>

#include "switch/concentrator.hpp"
#include "util/bitvec.hpp"

namespace pcs::core {

/// Lemma 1, both directions, on one sequence: for every epsilon in
/// [min epsilon, n], the structural decomposition holds; and conversely the
/// structure at the measured dirty window implies the measured epsilon.
bool lemma1_roundtrip(const BitVec& bits);

/// Lemma 2 on one (switch, input) instance: measure the nearsortedness of
/// the switch's n-wide output arrangement, derive alpha = 1 - epsilon/m,
/// and check both partial-concentration bullets against the actual routing.
struct Lemma2Check {
  std::size_t measured_epsilon = 0;
  std::size_t k = 0;
  std::size_t routed = 0;
  bool holds = false;
  std::string detail;
};
Lemma2Check check_lemma2(const pcs::sw::ConcentratorSwitch& sw, const BitVec& valid);

/// Same check against a routing and arrangement the caller already computed
/// (e.g. out of route_batch / nearsorted_batch), avoiding the re-route.
Lemma2Check check_lemma2(const pcs::sw::ConcentratorSwitch& sw, const BitVec& valid,
                         const BitVec& arrangement,
                         const pcs::sw::SwitchRouting& routing);

/// The Figure 2 construction: the n-wide output arrangement of a
/// *hypothetical but legal* (n, m, 1 - epsilon/m) partial concentrator with
/// k > m - epsilon messages: m - epsilon 1s lead, the remaining
/// k - m + epsilon 1s trail at the very end.  Not epsilon-nearsorted
/// whenever k + epsilon < (n + m) / 2.
BitVec figure2_arrangement(std::size_t n, std::size_t m, std::size_t epsilon,
                           std::size_t k);

/// True iff the Figure 2 premise k + epsilon < (n + m)/2 holds, i.e. the
/// arrangement is guaranteed not epsilon-nearsorted.
bool figure2_premise(std::size_t n, std::size_t m, std::size_t epsilon, std::size_t k);

/// Theorem 3 / Theorem 4 instance check: the switch's measured epsilon on
/// this input does not exceed its advertised epsilon_bound().
bool epsilon_bound_respected(const pcs::sw::ConcentratorSwitch& sw, const BitVec& valid);

}  // namespace pcs::core
