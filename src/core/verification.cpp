#include "core/verification.hpp"

#include <algorithm>
#include <sstream>

#include "core/lemmas.hpp"
#include "message/clocked_sim.hpp"
#include "message/traffic.hpp"
#include "sortnet/nearsort.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::core {

bool VerifyReport::all_passed() const {
  for (const CheckResult& c : checks) {
    if (!c.passed) return false;
  }
  return true;
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  os << (all_passed() ? "PASS" : "FAIL") << " (" << patterns_tried
     << " patterns)\n";
  for (const CheckResult& c : checks) {
    os << "  [" << (c.passed ? "ok" : "FAIL") << "] " << c.name;
    if (!c.passed) os << " -- " << c.counterexample;
    os << "\n";
  }
  return os.str();
}

namespace {

void fail(CheckResult& check, const std::string& detail) {
  if (check.passed) {
    check.passed = false;
    check.counterexample = detail;
  }
}

std::string describe(const BitVec& valid) {
  std::ostringstream os;
  os << "k=" << valid.count();
  if (valid.size() <= 64) os << " pattern=" << valid.to_string();
  return os.str();
}

}  // namespace

VerifyReport verify_switch(const pcs::sw::ConcentratorSwitch& sw, Rng& rng,
                           const VerifyOptions& options) {
  const std::size_t n = sw.inputs();
  VerifyReport report;
  CheckResult routing_ok{"routing is a partial injection", true, ""};
  CheckResult conserve_ok{"arrangement conserves the valid count", true, ""};
  CheckResult contract_ok{"partial-concentration contract", true, ""};
  CheckResult epsilon_ok{"measured epsilon within epsilon_bound()", true, ""};
  CheckResult lemma2_ok{"Lemma 2 on measured epsilon", true, ""};
  CheckResult clocked_ok{"clocked payload integrity", true, ""};

  auto inspect = [&](const BitVec& valid) {
    ++report.patterns_tried;
    pcs::sw::SwitchRouting r = sw.route(valid);
    if (!r.is_partial_injection()) fail(routing_ok, describe(valid));
    BitVec arr = sw.nearsorted_valid_bits(valid);
    if (arr.count() != valid.count()) fail(conserve_ok, describe(valid));
    if (!pcs::sw::concentration_contract_holds(sw, valid, r)) {
      fail(contract_ok, describe(valid));
    }
    if (options.check_epsilon_bound &&
        sortnet::min_nearsort_epsilon(arr) > sw.epsilon_bound()) {
      fail(epsilon_ok, describe(valid));
    }
    Lemma2Check l2 = check_lemma2(sw, valid);
    if (!l2.holds) fail(lemma2_ok, describe(valid) + " (" + l2.detail + ")");
  };

  // Random patterns across densities.
  for (double density : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (std::size_t t = 0; t < options.random_trials; ++t) {
      inspect(rng.bernoulli_bits(n, density));
    }
  }
  // Exact-k sweep.
  const std::size_t step =
      options.k_step > 0 ? options.k_step : std::max<std::size_t>(1, n / 16);
  for (std::size_t k = 0; k <= n; k += step) {
    inspect(rng.exact_weight_bits(n, k));
  }
  // Structured adversarial family.
  const std::size_t chip_w = std::max<std::size_t>(1, isqrt(n));
  for (std::size_t k : {n / 4, n / 2, (3 * n) / 4}) {
    if (k == 0) continue;
    pcs::msg::AdversarialTraffic adv(n, k, chip_w);
    for (std::size_t f = 0; f < adv.family_size(); ++f) inspect(adv.next(rng));
  }
  // Extremes.
  inspect(BitVec(n));
  inspect(BitVec(n, true));

  if (options.check_clocked) {
    BitVec valid = rng.bernoulli_bits(n, 0.5);
    pcs::msg::MessageBatch batch = pcs::msg::random_batch(valid, 16, 4, rng);
    pcs::msg::ClockedSimResult result = pcs::msg::run_clocked(sw, batch);
    if (!result.payloads_intact(batch) ||
        result.delivered.size() + result.congested.size() != batch.count()) {
      fail(clocked_ok, describe(valid));
    }
  }

  report.checks = {routing_ok, conserve_ok, contract_ok,
                   epsilon_ok, lemma2_ok,   clocked_ok};
  if (!options.check_epsilon_bound) report.checks[3].name += " (skipped)";
  if (!options.check_clocked) report.checks[5].name += " (skipped)";
  return report;
}

}  // namespace pcs::core
