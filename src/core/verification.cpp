#include "core/verification.hpp"

#include <algorithm>
#include <sstream>

#include "core/lemmas.hpp"
#include "message/clocked_sim.hpp"
#include "traffic/traffic_source.hpp"
#include "sortnet/nearsort.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/parallel.hpp"

namespace pcs::core {

bool VerifyReport::all_passed() const {
  for (const CheckResult& c : checks) {
    if (!c.passed) return false;
  }
  return true;
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  os << (all_passed() ? "PASS" : "FAIL") << " (" << patterns_tried
     << " patterns)\n";
  for (const CheckResult& c : checks) {
    os << "  [" << (c.passed ? "ok" : "FAIL") << "] " << c.name;
    if (!c.passed) os << " -- " << c.counterexample;
    os << "\n";
  }
  return os.str();
}

namespace {

void fail(CheckResult& check, const std::string& detail) {
  if (check.passed) {
    check.passed = false;
    check.counterexample = detail;
  }
}

std::string describe(const BitVec& valid) {
  std::ostringstream os;
  os << "k=" << valid.count();
  if (valid.size() <= 64) os << " pattern=" << valid.to_string();
  return os.str();
}

}  // namespace

VerifyReport verify_switch(const pcs::sw::ConcentratorSwitch& sw, Rng& rng,
                           const VerifyOptions& options) {
  const std::size_t n = sw.inputs();
  VerifyReport report;
  CheckResult routing_ok{"routing is a partial injection", true, ""};
  CheckResult conserve_ok{"arrangement conserves the valid count", true, ""};
  CheckResult contract_ok{"partial-concentration contract", true, ""};
  CheckResult epsilon_ok{"measured epsilon within epsilon_bound()", true, ""};
  CheckResult lemma2_ok{"Lemma 2 on measured epsilon", true, ""};
  CheckResult clocked_ok{"clocked payload integrity", true, ""};

  // Gather every pattern first, in the same RNG order as the old
  // one-at-a-time loop, then check the whole batch.
  std::vector<BitVec> patterns;

  // Random patterns across densities.
  for (double density : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (std::size_t t = 0; t < options.random_trials; ++t) {
      patterns.push_back(rng.bernoulli_bits(n, density));
    }
  }
  // Exact-k sweep.
  const std::size_t step =
      options.k_step > 0 ? options.k_step : std::max<std::size_t>(1, n / 16);
  for (std::size_t k = 0; k <= n; k += step) {
    patterns.push_back(rng.exact_weight_bits(n, k));
  }
  // Structured adversarial family.
  const std::size_t chip_w = std::max<std::size_t>(1, isqrt(n));
  for (std::size_t k : {n / 4, n / 2, (3 * n) / 4}) {
    if (k == 0) continue;
    pcs::traffic::AdversarialSource adv(n, k, chip_w);
    for (std::size_t f = 0; f < adv.family_size(); ++f) {
      patterns.push_back(adv.next_valid(rng));
    }
  }
  // Extremes.
  patterns.push_back(BitVec(n));
  patterns.push_back(BitVec(n, true));

  const std::size_t total = patterns.size();
  std::vector<pcs::sw::SwitchRouting> routings = sw.route_batch(patterns);
  std::vector<BitVec> arrangements = sw.nearsorted_batch(patterns);

  // Per-pattern verdicts, filled in parallel; the sequential reduction below
  // keeps the reported counterexample the *first* failing pattern, exactly
  // as the old loop did.
  std::vector<std::uint8_t> bad_routing(total, 0), bad_conserve(total, 0),
      bad_contract(total, 0), bad_epsilon(total, 0), bad_lemma2(total, 0);
  std::vector<std::string> lemma2_detail(total);
  parallel_for(std::size_t{0}, total, [&](std::size_t i) {
    const BitVec& valid = patterns[i];
    const pcs::sw::SwitchRouting& r = routings[i];
    const BitVec& arr = arrangements[i];
    if (!r.is_partial_injection()) bad_routing[i] = 1;
    if (arr.count() != valid.count()) bad_conserve[i] = 1;
    if (!pcs::sw::concentration_contract_holds(sw, valid, r)) bad_contract[i] = 1;
    if (options.check_epsilon_bound &&
        sortnet::min_nearsort_epsilon(arr) > sw.epsilon_bound()) {
      bad_epsilon[i] = 1;
    }
    Lemma2Check l2 = check_lemma2(sw, valid, arr, r);
    if (!l2.holds) {
      bad_lemma2[i] = 1;
      lemma2_detail[i] = l2.detail;
    }
  });
  for (std::size_t i = 0; i < total; ++i) {
    ++report.patterns_tried;
    if (bad_routing[i]) fail(routing_ok, describe(patterns[i]));
    if (bad_conserve[i]) fail(conserve_ok, describe(patterns[i]));
    if (bad_contract[i]) fail(contract_ok, describe(patterns[i]));
    if (bad_epsilon[i]) fail(epsilon_ok, describe(patterns[i]));
    if (bad_lemma2[i]) {
      fail(lemma2_ok, describe(patterns[i]) + " (" + lemma2_detail[i] + ")");
    }
  }

  if (options.check_clocked) {
    BitVec valid = rng.bernoulli_bits(n, 0.5);
    pcs::msg::MessageBatch batch = pcs::msg::random_batch(valid, 16, 4, rng);
    pcs::msg::ClockedSimResult result = pcs::msg::run_clocked(sw, batch);
    if (!result.payloads_intact(batch) ||
        result.delivered.size() + result.congested.size() != batch.count()) {
      fail(clocked_ok, describe(valid));
    }
  }

  report.checks = {routing_ok, conserve_ok, contract_ok,
                   epsilon_ok, lemma2_ok,   clocked_ok};
  if (!options.check_epsilon_bound) report.checks[3].name += " (skipped)";
  if (!options.check_clocked) report.checks[5].name += " (skipped)";
  return report;
}

}  // namespace pcs::core
