// One-call verification harness for ConcentratorSwitch implementations.
//
// A downstream user adding a new switch design should be able to ask "does
// it actually satisfy the paper's contracts?" without reassembling the
// checks by hand.  verify_switch() runs the full battery -- routing
// well-formedness, count conservation, the partial-concentration contract
// across a k-sweep, epsilon-bound respect (random + structured adversarial
// patterns), Lemma 2 consistency, and clocked payload integrity -- and
// returns a structured report with the first counterexample when a check
// fails.  The library's own switches pass it by construction (see
// tests/test_verification.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "switch/concentrator.hpp"
#include "util/rng.hpp"

namespace pcs::core {

struct VerifyOptions {
  std::size_t random_trials = 40;   ///< random patterns per density
  std::size_t k_step = 0;           ///< 0 = auto (n / 16, at least 1)
  bool check_epsilon_bound = true;  ///< skip for designs with no guarantee
  bool check_clocked = true;        ///< run one clocked payload pass
};

struct CheckResult {
  std::string name;
  bool passed = true;
  std::string counterexample;  ///< empty when passed
};

struct VerifyReport {
  std::vector<CheckResult> checks;
  std::size_t patterns_tried = 0;

  bool all_passed() const;
  std::string to_string() const;
};

/// Run the battery against `sw` with the given RNG (deterministic per seed).
VerifyReport verify_switch(const pcs::sw::ConcentratorSwitch& sw, Rng& rng,
                           const VerifyOptions& options = {});

}  // namespace pcs::core
