#include "cost/layout.hpp"

#include <sstream>

#include "sortnet/revsort.hpp"
#include "util/assert.hpp"

namespace pcs::cost {

std::size_t Floorplan2D::wiring_area() const {
  std::size_t a = 0;
  for (const Region& r : regions) {
    if (r.label.find("crossbar") != std::string::npos) a += r.area();
  }
  return a;
}

std::size_t Floorplan2D::chip_area() const {
  std::size_t a = 0;
  for (const Region& r : regions) {
    if (r.label.find("crossbar") == std::string::npos) a += r.area();
  }
  return a;
}

namespace {

/// Lay out `stages` columns of `chips_per_stage` w-by-w chips, separated by
/// (stages - 1) full crossbar regions of n = chips_per_stage * w wires.
Floorplan2D staged_floorplan(std::size_t stages, std::size_t chips_per_stage,
                             std::size_t chip_width, const std::string& prefix) {
  const std::size_t n = chips_per_stage * chip_width;
  Floorplan2D plan;
  std::size_t x = 0;
  for (std::size_t st = 0; st < stages; ++st) {
    for (std::size_t c = 0; c < chips_per_stage; ++c) {
      std::ostringstream label;
      label << prefix << " H(" << (st + 1) << "," << c << ")";
      plan.regions.push_back(
          Region{label.str(), x, c * chip_width, chip_width, chip_width});
    }
    x += chip_width;
    if (st + 1 < stages) {
      std::ostringstream label;
      label << prefix << " crossbar " << (st + 1) << "->" << (st + 2);
      plan.regions.push_back(Region{label.str(), x, 0, n, n});
      x += n;
    }
  }
  plan.width = x;
  plan.height = n;
  return plan;
}

}  // namespace

Floorplan2D revsort_floorplan(std::size_t side) {
  PCS_REQUIRE(side > 0, "revsort_floorplan side");
  return staged_floorplan(3, side, side, "revsort");
}

Floorplan2D columnsort_floorplan(std::size_t r, std::size_t s) {
  PCS_REQUIRE(r > 0 && s > 0, "columnsort_floorplan shape");
  return staged_floorplan(2, s, r, "columnsort");
}

std::size_t Packaging3D::stack_volume() const {
  std::size_t v = 0;
  for (const Stack& s : stacks) v += s.volume();
  return v;
}

Packaging3D revsort_packaging(std::size_t side) {
  PCS_REQUIRE(side > 0, "revsort_packaging side");
  const std::size_t n = side * side;
  Packaging3D p;
  // Stacks 1 and 3: one sqrt(n)-by-sqrt(n) hyperconcentrator per board.
  p.stacks.push_back(Stack{"stack 1 (column sort)", side, side, side});
  // Stack 2 boards carry hyperconcentrator + barrel shifter side by side.
  p.stacks.push_back(Stack{"stack 2 (row sort + rev shift)", side, 2 * side, side});
  p.stacks.push_back(Stack{"stack 3 (column sort)", side, side, side});
  PCS_REQUIRE(p.total_volume() == 4 * side * n, "revsort packaging volume identity");
  return p;
}

Packaging3D columnsort_packaging(std::size_t r, std::size_t s) {
  PCS_REQUIRE(r > 0 && s > 0 && r % s == 0, "columnsort_packaging shape");
  Packaging3D p;
  p.stacks.push_back(Stack{"stack 1 (column sort)", s, r, r});
  p.stacks.push_back(Stack{"stack 2 (column sort)", s, r, r});
  p.connector_count = s * s;
  p.connector_volume_each = wire_transposer_volume(r / s);
  return p;
}

std::size_t wire_transposer_volume(std::size_t w) { return w * w; }

Packaging3D full_revsort_packaging(std::size_t side) {
  PCS_REQUIRE(side >= 2, "full_revsort_packaging side");
  Packaging3D p;
  const std::size_t reps = pcs::sortnet::full_revsort_repetitions(side);
  for (std::size_t t = 0; t < reps; ++t) {
    std::ostringstream a, b;
    a << "rep " << (t + 1) << " column sort";
    b << "rep " << (t + 1) << " row sort + rev shift";
    p.stacks.push_back(Stack{a.str(), side, side, side});
    p.stacks.push_back(Stack{b.str(), side, 2 * side, side});
  }
  p.stacks.push_back(Stack{"post-rep column sort", side, side, side});
  for (int phase = 1; phase <= 3; ++phase) {
    std::ostringstream a, b;
    a << "shearsort " << phase << " row sort";
    b << "shearsort " << phase << " column sort";
    p.stacks.push_back(Stack{a.str(), side, side, side});
    p.stacks.push_back(Stack{b.str(), side, side, side});
  }
  p.stacks.push_back(Stack{"final row sort", side, side, side});
  return p;
}

}  // namespace pcs::cost
