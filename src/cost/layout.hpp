// Geometric layout models behind Figures 3, 4, 6, 7, and 8.
//
// 2D layouts (Figures 3 and 6): stages of chips stacked vertically, joined
// by full n-wire crossbar wiring regions.  3D packagings (Figures 4 and 7):
// one chip (or chip pair) per board, boards grouped into stacks, stacks
// joined face-to-face; the Columnsort packaging additionally needs s^2
// interstack wire transposers (Figure 8), each turning a group of r/s wires
// from vertical to horizontal alignment in Theta((r/s)^2) volume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pcs::cost {

/// One rectangular region of a 2D floorplan.
struct Region {
  std::string label;
  std::size_t x = 0, y = 0;       ///< lower-left corner, wire pitches
  std::size_t width = 0, height = 0;

  std::size_t area() const noexcept { return width * height; }
};

/// A column-by-column 2D floorplan: alternating chip columns and crossbar
/// wiring regions, as in Figures 3 and 6.
struct Floorplan2D {
  std::vector<Region> regions;
  std::size_t width = 0;
  std::size_t height = 0;

  std::size_t area() const noexcept { return width * height; }
  std::size_t wiring_area() const;
  std::size_t chip_area() const;
};

/// Figure 3: the Revsort switch in 2D.  n = side^2.
Floorplan2D revsort_floorplan(std::size_t side);

/// Figure 6: the Columnsort switch in 2D on an r-by-s mesh.
Floorplan2D columnsort_floorplan(std::size_t r, std::size_t s);

/// One stack of boards in a 3D packaging.
struct Stack {
  std::string label;
  std::size_t boards = 0;
  std::size_t board_width = 0;   ///< wire pitches
  std::size_t board_height = 0;

  std::size_t volume() const noexcept { return boards * board_width * board_height; }
};

/// A 3D packaging: stacks plus (optionally) interstack wire transposers.
struct Packaging3D {
  std::vector<Stack> stacks;
  std::size_t connector_count = 0;
  std::size_t connector_volume_each = 0;

  std::size_t stack_volume() const;
  std::size_t connector_volume() const noexcept {
    return connector_count * connector_volume_each;
  }
  std::size_t total_volume() const { return stack_volume() + connector_volume(); }
};

/// Figure 4: the Revsort switch in 3D.  n = side^2.
Packaging3D revsort_packaging(std::size_t side);

/// Figure 7: the Columnsort switch in 3D.
Packaging3D columnsort_packaging(std::size_t r, std::size_t s);

/// Section 6's full-Revsort hyperconcentrator packaging: ceil(lg lg sqrt(n))
/// repetitions of the Figure 4 stack pair (column sort; row sort + shifter),
/// the post-repetition column-sort stack, three Shearsort stack pairs, and
/// the final row-sort stack.
Packaging3D full_revsort_packaging(std::size_t side);

/// Figure 8: volume of one w-wire vertical-to-horizontal transposer.
std::size_t wire_transposer_volume(std::size_t w);

}  // namespace pcs::cost
