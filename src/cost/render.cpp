#include "cost/render.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/assert.hpp"

namespace pcs::cost {

std::string render_floorplan(const Floorplan2D& plan, std::size_t cell) {
  PCS_REQUIRE(cell > 0, "render_floorplan cell");
  const std::size_t cols = (plan.width + cell - 1) / cell;
  const std::size_t rows = (plan.height + cell - 1) / cell;
  PCS_REQUIRE(cols <= 400 && rows <= 400, "render_floorplan too large; raise cell");
  std::vector<std::string> grid(rows, std::string(cols, ' '));

  for (const Region& r : plan.regions) {
    const bool is_wiring = r.label.find("crossbar") != std::string::npos;
    // Stage digit: the character after "H(" for chips, '/' hatching for wires.
    char fill = '/';
    if (!is_wiring) {
      auto pos = r.label.find("H(");
      fill = (pos != std::string::npos && pos + 2 < r.label.size())
                 ? r.label[pos + 2]
                 : '#';
    }
    std::size_t c0 = r.x / cell;
    std::size_t c1 = std::max(c0 + 1, (r.x + r.width + cell - 1) / cell);
    std::size_t r0 = r.y / cell;
    std::size_t r1 = std::max(r0 + 1, (r.y + r.height + cell - 1) / cell);
    for (std::size_t y = r0; y < std::min(r1, rows); ++y) {
      for (std::size_t x = c0; x < std::min(c1, cols); ++x) {
        grid[y][x] = fill;
      }
    }
  }

  std::ostringstream os;
  os << "+" << std::string(cols, '-') << "+\n";
  // Row 0 of the model is the top of the drawing.
  for (const std::string& line : grid) {
    os << "|" << line << "|\n";
  }
  os << "+" << std::string(cols, '-') << "+\n";
  os << "legend: digits = chip stages, / = crossbar wiring; 1 char = " << cell
     << "x" << cell << " wire pitches\n";
  return os.str();
}

std::string render_packaging(const Packaging3D& p) {
  std::ostringstream os;
  for (const Stack& s : p.stacks) {
    os << s.label << ": " << s.boards << " boards of " << s.board_width << "x"
       << s.board_height << "\n";
    std::size_t shown = std::min<std::size_t>(s.boards, 6);
    for (std::size_t b = 0; b < shown; ++b) {
      os << "  [" << std::string(std::min<std::size_t>(s.board_width / 2, 40), '=')
         << "]\n";
    }
    if (shown < s.boards) {
      os << "  ... (" << (s.boards - shown) << " more)\n";
    }
  }
  if (p.connector_count > 0) {
    os << p.connector_count << " interstack wire transposers, volume "
       << p.connector_volume_each << " each (Figure 8)\n";
  }
  os << "total volume: " << p.total_volume() << " wire-pitch^3\n";
  return os.str();
}

}  // namespace pcs::cost
