// ASCII rendering of floorplans and packagings: Figures 3, 4, 6, and 7
// drawn from the geometric models, at a caller-chosen scale.  Used by the
// layout benches and the floorplan example so a reader can eyeball the
// reproduction against the paper's figures.
#pragma once

#include <string>

#include "cost/layout.hpp"

namespace pcs::cost {

/// Render a 2D floorplan as character art.  `cell` wire pitches map to one
/// character; chip regions are boxed with their stage digit, crossbar
/// regions are hatched.  Keep plan.width / cell <= ~160 for sane output.
std::string render_floorplan(const Floorplan2D& plan, std::size_t cell);

/// Render a 3D packaging as a stack diagram: one row per stack with board
/// count and board outline, connectors summarized below.
std::string render_packaging(const Packaging3D& p);

}  // namespace pcs::cost
