#include "cost/resource_model.hpp"

#include <algorithm>
#include <sstream>

#include "plan/compile.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::cost {

std::size_t DelayModel::chip_delay(std::size_t width) const {
  const std::size_t lg = width <= 1 ? 0 : ceil_log2(width);
  return 2 * lg + pad_delay;
}

std::string ResourceReport::to_string() const {
  std::ostringstream os;
  os << design << ": n=" << n << " m=" << m << " pins/chip=" << pins_per_chip
     << " chips=" << chip_count << " boards=" << board_count << " (" << board_types
     << " types)";
  if (connector_count > 0) os << " connectors=" << connector_count;
  os << " epsilon=" << epsilon << " alpha=" << load_ratio
     << " delay=" << gate_delays << " area2d=" << area_2d << " vol3d=" << volume_3d;
  if (!combinational) os << " [clocked, " << control_steps << " control steps]";
  return os.str();
}

namespace {
double clamped_alpha(std::size_t epsilon, std::size_t m) {
  if (m == 0) return 0.0;
  return std::clamp(1.0 - static_cast<double>(epsilon) / static_cast<double>(m), 0.0,
                    1.0);
}
}  // namespace

ResourceReport plan_report(const plan::SwitchPlan& plan, const DelayModel& dm) {
  ResourceReport r;
  r.design = plan.name;
  r.n = plan.n;
  r.m = plan.m;
  r.pins_per_chip = plan.max_pins_per_chip();
  r.chip_count = plan.chip_count();
  r.board_count = plan.board_count();
  r.board_types = plan.board_types();
  r.connector_count = plan.connector_count();
  r.epsilon = plan.fully_sorting ? 0 : plan.epsilon;
  r.load_ratio = plan.fully_sorting ? 1.0 : clamped_alpha(plan.epsilon, plan.m);
  r.chip_passes = plan.chip_passes();
  r.gate_delays = 0;
  for (const plan::PlanStage& st : plan.stages) {
    r.gate_delays += dm.chip_delay(st.width);
    if (st.has_shifter) r.gate_delays += dm.shifter_delay;
  }
  r.area_2d = plan.area_2d();
  r.volume_3d = plan.volume_3d();
  return r;
}

ResourceReport hyper_chip_report(std::size_t n, std::size_t m, const DelayModel& dm) {
  PCS_REQUIRE(m >= 1 && m <= n, "hyper_chip_report m range");
  ResourceReport r;
  r.design = "single-chip hyperconcentrator";
  r.n = n;
  r.m = m;
  r.pins_per_chip = 2 * n;
  r.chip_count = 1;
  r.board_count = 1;
  r.board_types = 1;
  r.epsilon = 0;
  r.load_ratio = 1.0;
  r.chip_passes = 1;
  r.gate_delays = dm.chip_delay(n);
  r.area_2d = n * n;    // the chip itself
  r.volume_3d = n * n;  // one board
  return r;
}

ResourceReport revsort_report(std::size_t n, std::size_t m, const DelayModel& dm) {
  // Figures 3 and 4 (two crossbar regions, three stacks, shifter boards of
  // double area) all fall out of the compiled plan's structure.
  ResourceReport r = plan_report(plan::compile_revsort_plan(n, m), dm);
  r.design = "revsort partial concentrator";
  return r;
}

ResourceReport columnsort_report(std::size_t r_rows, std::size_t s_cols, std::size_t m,
                                 const DelayModel& dm) {
  // Figures 6, 7 and 8 (one crossbar region, two stacks, s^2 interstack
  // wire transposers of volume (r/s)^2) from the compiled plan's structure.
  ResourceReport rep =
      plan_report(plan::compile_columnsort_plan(r_rows, s_cols, m), dm);
  rep.design = "columnsort partial concentrator";
  return rep;
}

ResourceReport partitioned_hyper_report(std::size_t n, std::size_t pins,
                                        const DelayModel& dm) {
  PCS_REQUIRE(pins >= 8, "partitioned_hyper_report needs at least 8 pins");
  const std::size_t x = pins / 4;  // tile side supported by the pin budget
  const std::size_t tiles_per_side = ceil_div(n, x);
  ResourceReport r;
  r.design = "partitioned crossbar hyperconcentrator";
  r.n = n;
  r.m = n;
  r.pins_per_chip = 4 * std::min(x, n);
  r.chip_count = tiles_per_side * tiles_per_side;  // the Omega((n/p)^2) blowup
  r.board_count = tiles_per_side;                  // one board per tile row
  r.board_types = 1;
  r.epsilon = 0;
  r.load_ratio = 1.0;
  // A message's data path runs across a row of tiles and down a column:
  // logic depth is still 2 lg n, but every tile boundary costs pads.
  r.chip_passes = 2 * tiles_per_side;
  r.gate_delays = 2 * (n <= 1 ? 0 : ceil_log2(n)) + r.chip_passes * dm.pad_delay;
  r.area_2d = n * n;
  r.volume_3d = tiles_per_side * (n * std::min(x, n));  // boards of n-by-x tiles
  return r;
}

ResourceReport prefix_butterfly_report(std::size_t n, const DelayModel& dm) {
  PCS_REQUIRE(is_pow2(n), "prefix_butterfly_report n must be a power of two");
  const std::size_t lg = n <= 1 ? 0 : exact_log2(n);
  ResourceReport r;
  r.design = "prefix+butterfly hyperconcentrator (clocked)";
  r.n = n;
  r.m = n;
  r.pins_per_chip = 4;  // one 2-by-2 butterfly switch per chip
  // n/2 switches per butterfly stage plus an (n - 1)-node prefix tree.
  r.chip_count = (n / 2) * lg + (n - 1);
  r.board_count = lg;  // one board per butterfly stage (plus the prefix tree)
  r.board_types = 2;
  r.epsilon = 0;
  r.load_ratio = 1.0;
  r.chip_passes = lg;
  // Data path: one 2-by-2 steering element (2 gate delays) per stage.
  r.gate_delays = lg * (2 + dm.pad_delay);
  r.combinational = false;
  r.control_steps = lg;  // the sequential prefix phase
  // Paper: buildable in volume Theta(n^{3/2}); carried with constant 1.
  r.area_2d = n * lg;  // n wires x lg n stages of constant-size elements
  r.volume_3d = n * isqrt(n);
  return r;
}

ResourceReport full_revsort_report(std::size_t n, const DelayModel& dm) {
  // Rotation-carrying stacks (double-area boards, shifter delay per
  // repetition) are has_shifter stages of the compiled plan.
  ResourceReport r = plan_report(plan::compile_full_revsort_plan(n), dm);
  r.design = "full-revsort hyperconcentrator";
  return r;
}

ResourceReport full_columnsort_report(std::size_t r_rows, std::size_t s_cols,
                                      const DelayModel& dm) {
  ResourceReport rep =
      plan_report(plan::compile_full_columnsort_plan(r_rows, s_cols), dm);
  rep.design = "full-columnsort hyperconcentrator";
  return rep;
}

std::size_t paper_full_revsort_delay_formula(std::size_t n) {
  PCS_REQUIRE(n >= 4, "paper_full_revsort_delay_formula n");
  const std::size_t lg = ceil_log2(n);
  const std::size_t lglg = ceil_log2(lg);
  return 4 * lg * lglg + 8 * lg;
}

}  // namespace pcs::cost
