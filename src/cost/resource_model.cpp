#include "cost/resource_model.hpp"

#include <algorithm>
#include <sstream>

#include "sortnet/columnsort.hpp"
#include "sortnet/revsort.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/full_sort_hyper.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::cost {

std::size_t DelayModel::chip_delay(std::size_t width) const {
  const std::size_t lg = width <= 1 ? 0 : ceil_log2(width);
  return 2 * lg + pad_delay;
}

std::string ResourceReport::to_string() const {
  std::ostringstream os;
  os << design << ": n=" << n << " m=" << m << " pins/chip=" << pins_per_chip
     << " chips=" << chip_count << " boards=" << board_count << " (" << board_types
     << " types)";
  if (connector_count > 0) os << " connectors=" << connector_count;
  os << " epsilon=" << epsilon << " alpha=" << load_ratio
     << " delay=" << gate_delays << " area2d=" << area_2d << " vol3d=" << volume_3d;
  if (!combinational) os << " [clocked, " << control_steps << " control steps]";
  return os.str();
}

namespace {
double clamped_alpha(std::size_t epsilon, std::size_t m) {
  if (m == 0) return 0.0;
  return std::clamp(1.0 - static_cast<double>(epsilon) / static_cast<double>(m), 0.0,
                    1.0);
}
}  // namespace

ResourceReport hyper_chip_report(std::size_t n, std::size_t m, const DelayModel& dm) {
  PCS_REQUIRE(m >= 1 && m <= n, "hyper_chip_report m range");
  ResourceReport r;
  r.design = "single-chip hyperconcentrator";
  r.n = n;
  r.m = m;
  r.pins_per_chip = 2 * n;
  r.chip_count = 1;
  r.board_count = 1;
  r.board_types = 1;
  r.epsilon = 0;
  r.load_ratio = 1.0;
  r.chip_passes = 1;
  r.gate_delays = dm.chip_delay(n);
  r.area_2d = n * n;    // the chip itself
  r.volume_3d = n * n;  // one board
  return r;
}

ResourceReport revsort_report(std::size_t n, std::size_t m, const DelayModel& dm) {
  const std::size_t v = isqrt(n);
  PCS_REQUIRE(v * v == n && is_pow2(v), "revsort_report shape");
  PCS_REQUIRE(m >= 1 && m <= n, "revsort_report m range");
  const std::size_t lg_v = v <= 1 ? 0 : ceil_log2(v);
  ResourceReport r;
  r.design = "revsort partial concentrator";
  r.n = n;
  r.m = m;
  // Stage-2 boards carry the shifter's hardwired control pins on top of the
  // 2*sqrt(n) data pins: the paper's 2 sqrt(n) + ceil(lg n / 2).
  r.pins_per_chip = 2 * v + lg_v;
  r.chip_count = 3 * v + v;  // 3 sqrt(n) hyper chips + sqrt(n) shifters
  r.board_count = 3 * v;     // Figure 4: three stacks of sqrt(n) boards
  r.board_types = 2;         // stages 1/3 identical; stage 2 adds the shifter
  r.epsilon = sortnet::algorithm1_dirty_row_bound(v) * v;
  r.load_ratio = clamped_alpha(r.epsilon, m);
  r.chip_passes = pcs::sw::RevsortSwitch::kChipPasses;
  r.gate_delays = 3 * dm.chip_delay(v) + dm.shifter_delay;
  // Figure 3: three chip columns of sqrt(n) chips (area n each) joined by
  // two n-wire crossbar regions.
  r.area_2d = 2 * n * n + 3 * v * (v * v);
  // Figure 4: stacks 1 and 3 have boards of area n; stack 2 boards carry
  // hyper + shifter (area 2n).
  r.volume_3d = v * n + v * 2 * n + v * n;
  return r;
}

ResourceReport columnsort_report(std::size_t r_rows, std::size_t s_cols, std::size_t m,
                                 const DelayModel& dm) {
  PCS_REQUIRE(s_cols > 0 && r_rows % s_cols == 0, "columnsort_report shape");
  const std::size_t n = r_rows * s_cols;
  PCS_REQUIRE(m >= 1 && m <= n, "columnsort_report m range");
  ResourceReport rep;
  rep.design = "columnsort partial concentrator";
  rep.n = n;
  rep.m = m;
  rep.pins_per_chip = 2 * r_rows;
  rep.chip_count = 2 * s_cols;
  rep.board_count = 2 * s_cols;  // Figure 7: two stacks of s boards
  rep.board_types = 1;
  rep.epsilon = sortnet::algorithm2_epsilon_bound(s_cols);
  rep.load_ratio = clamped_alpha(rep.epsilon, m);
  rep.chip_passes = pcs::sw::ColumnsortSwitch::kChipPasses;
  rep.gate_delays = 2 * dm.chip_delay(r_rows);
  // Figure 6: two chip columns of s chips (area r^2 each) joined by one
  // n-wire crossbar region.
  rep.area_2d = n * n + 2 * s_cols * (r_rows * r_rows);
  // Figure 7: two stacks of s boards of area r^2 each, plus s^2 interstack
  // wire transposers of volume (r/s)^2 each (Figure 8).
  const std::size_t w = r_rows / s_cols;
  rep.connector_count = s_cols * s_cols;
  rep.volume_3d = 2 * s_cols * (r_rows * r_rows) + rep.connector_count * (w * w);
  return rep;
}

ResourceReport partitioned_hyper_report(std::size_t n, std::size_t pins,
                                        const DelayModel& dm) {
  PCS_REQUIRE(pins >= 8, "partitioned_hyper_report needs at least 8 pins");
  const std::size_t x = pins / 4;  // tile side supported by the pin budget
  const std::size_t tiles_per_side = ceil_div(n, x);
  ResourceReport r;
  r.design = "partitioned crossbar hyperconcentrator";
  r.n = n;
  r.m = n;
  r.pins_per_chip = 4 * std::min(x, n);
  r.chip_count = tiles_per_side * tiles_per_side;  // the Omega((n/p)^2) blowup
  r.board_count = tiles_per_side;                  // one board per tile row
  r.board_types = 1;
  r.epsilon = 0;
  r.load_ratio = 1.0;
  // A message's data path runs across a row of tiles and down a column:
  // logic depth is still 2 lg n, but every tile boundary costs pads.
  r.chip_passes = 2 * tiles_per_side;
  r.gate_delays = 2 * (n <= 1 ? 0 : ceil_log2(n)) + r.chip_passes * dm.pad_delay;
  r.area_2d = n * n;
  r.volume_3d = tiles_per_side * (n * std::min(x, n));  // boards of n-by-x tiles
  return r;
}

ResourceReport prefix_butterfly_report(std::size_t n, const DelayModel& dm) {
  PCS_REQUIRE(is_pow2(n), "prefix_butterfly_report n must be a power of two");
  const std::size_t lg = n <= 1 ? 0 : exact_log2(n);
  ResourceReport r;
  r.design = "prefix+butterfly hyperconcentrator (clocked)";
  r.n = n;
  r.m = n;
  r.pins_per_chip = 4;  // one 2-by-2 butterfly switch per chip
  // n/2 switches per butterfly stage plus an (n - 1)-node prefix tree.
  r.chip_count = (n / 2) * lg + (n - 1);
  r.board_count = lg;  // one board per butterfly stage (plus the prefix tree)
  r.board_types = 2;
  r.epsilon = 0;
  r.load_ratio = 1.0;
  r.chip_passes = lg;
  // Data path: one 2-by-2 steering element (2 gate delays) per stage.
  r.gate_delays = lg * (2 + dm.pad_delay);
  r.combinational = false;
  r.control_steps = lg;  // the sequential prefix phase
  // Paper: buildable in volume Theta(n^{3/2}); carried with constant 1.
  r.area_2d = n * lg;  // n wires x lg n stages of constant-size elements
  r.volume_3d = n * isqrt(n);
  return r;
}

ResourceReport full_revsort_report(std::size_t n, const DelayModel& dm) {
  const std::size_t v = isqrt(n);
  PCS_REQUIRE(v * v == n && is_pow2(v), "full_revsort_report shape");
  pcs::sw::FullRevsortHyper sw(n);
  const std::size_t passes = sw.chip_passes();
  const std::size_t reps = sw.repetitions();
  ResourceReport r;
  r.design = "full-revsort hyperconcentrator";
  r.n = n;
  r.m = n;
  const std::size_t lg_v = v <= 1 ? 0 : ceil_log2(v);
  r.pins_per_chip = 2 * v + lg_v;
  r.chip_count = passes * v + reps * v;  // hyper chips + shifters
  r.board_count = passes * v;
  r.board_types = 2;
  r.epsilon = 0;
  r.load_ratio = 1.0;
  r.chip_passes = passes;
  r.gate_delays = passes * dm.chip_delay(v) + reps * dm.shifter_delay;
  r.area_2d = (passes - 1) * n * n + passes * v * (v * v);
  // Rotation-carrying stacks have double-area boards.
  r.volume_3d = (passes - reps) * v * n + reps * v * 2 * n;
  return r;
}

ResourceReport full_columnsort_report(std::size_t r_rows, std::size_t s_cols,
                                      const DelayModel& dm) {
  PCS_REQUIRE(sortnet::columnsort_shape_ok(r_rows, s_cols),
              "full_columnsort_report shape");
  const std::size_t n = r_rows * s_cols;
  ResourceReport rep;
  rep.design = "full-columnsort hyperconcentrator";
  rep.n = n;
  rep.m = n;
  rep.pins_per_chip = 2 * r_rows;
  rep.chip_count = 3 * s_cols + (s_cols + 1);
  rep.board_count = rep.chip_count;
  rep.board_types = 1;
  rep.epsilon = 0;
  rep.load_ratio = 1.0;
  rep.chip_passes = pcs::sw::FullColumnsortHyper::kChipPasses;
  rep.gate_delays = 4 * dm.chip_delay(r_rows);
  rep.area_2d = 3 * n * n + rep.chip_count * (r_rows * r_rows);
  const std::size_t w = r_rows / s_cols;
  rep.connector_count = 3 * s_cols * s_cols;
  rep.volume_3d = rep.chip_count * (r_rows * r_rows) + rep.connector_count * (w * w);
  return rep;
}

std::size_t paper_full_revsort_delay_formula(std::size_t n) {
  PCS_REQUIRE(n >= 4, "paper_full_revsort_delay_formula n");
  const std::size_t lg = ceil_log2(n);
  const std::size_t lglg = ceil_log2(lg);
  return 4 * lg * lglg + 8 * lg;
}

}  // namespace pcs::cost
