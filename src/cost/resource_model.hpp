// Physical resource model: turns a switch design into the five measures of
// Table 1 (pins per chip, chip count, load ratio, gate delays, volume) plus
// board/connector counts and 2D area.
//
// Units are technology-normalized, as in the paper's Theta-statements:
//  * one unit of length = one wire pitch;
//  * a w-by-w hyperconcentrator chip (or w-bit barrel shifter) occupies
//    w x w = w^2 units^2 of silicon;
//  * a board is as large as the chips it carries, and one board occupies
//    one unit of stack height, so a stack of b boards of area A has volume
//    b * A;
//  * an n-wire crossbar wiring region in a 2D layout occupies n x n units^2.
//
// The delay model follows Section 4: a message incurs 2*ceil(lg w) gate
// delays inside a w-by-w hyperconcentrator chip plus a constant for I/O pad
// circuitry, and a constant through a hardwired barrel shifter.  With the
// default constants the totals reproduce the paper's 2 lg n / 3 lg n + O(1)
// / 4 beta lg n + O(1) formulas exactly.
#pragma once

#include <cstdint>
#include <string>

#include "plan/switch_plan.hpp"

namespace pcs::cost {

struct DelayModel {
  /// O(1) gate delays contributed by I/O pad circuitry per chip crossing.
  unsigned pad_delay = 2;
  /// O(1) gate delays through a hardwired barrel shifter (pure wiring plus
  /// its pads).
  unsigned shifter_delay = 1;

  /// Message delay through one w-by-w hyperconcentrator chip.
  std::size_t chip_delay(std::size_t width) const;
};

/// One design's resource figures.  Every quantity is an exact count under
/// the normalization above, not just an order of growth.
struct ResourceReport {
  std::string design;
  std::size_t n = 0;                ///< input wires
  std::size_t m = 0;                ///< output wires
  std::size_t pins_per_chip = 0;    ///< max data+control pins on any chip
  std::size_t chip_count = 0;
  std::size_t board_count = 0;
  std::size_t board_types = 0;
  std::size_t connector_count = 0;  ///< interstack wire transposers
  std::size_t epsilon = 0;          ///< guaranteed nearsortedness
  double load_ratio = 1.0;          ///< alpha = 1 - epsilon/m (clamped)
  std::size_t chip_passes = 0;      ///< chips a message traverses
  std::size_t gate_delays = 0;      ///< message delay through the switch
  std::size_t area_2d = 0;          ///< Figure 3/6 layout area
  std::size_t volume_3d = 0;        ///< Figure 4/7 packaging volume
  bool combinational = true;        ///< false: clocked control (Section 1's foil)
  std::size_t control_steps = 0;    ///< sequential control steps when clocked

  std::string to_string() const;
};

/// Resource figures derived from a compiled SwitchPlan: every count walks
/// the exact stage/wiring structure the executor simulates, so the report
/// stays honest under fault rewrites and for any future family.  The
/// family-specific reports below compile the corresponding plan and
/// delegate here (only the design string is their own), which is what pins
/// them to the simulated structure.
ResourceReport plan_report(const plan::SwitchPlan& plan,
                           const DelayModel& dm = {});

/// Single-chip n-by-n hyperconcentrator used as an n-by-m perfect
/// concentrator (the baseline whose 2n pins force multichip designs).
ResourceReport hyper_chip_report(std::size_t n, std::size_t m,
                                 const DelayModel& dm = {});

/// The Revsort-based partial concentrator (Section 4).  n = side^2, side a
/// power of two.
ResourceReport revsort_report(std::size_t n, std::size_t m,
                              const DelayModel& dm = {});

/// The Columnsort-based partial concentrator (Section 5) on an r-by-s mesh.
ResourceReport columnsort_report(std::size_t r, std::size_t s, std::size_t m,
                                 const DelayModel& dm = {});

/// Section 1's motivating negative result, made executable: naively
/// partitioning the Theta(n^2)-area crossbar hyperconcentrator across
/// p-pin chips.  Tiling the n-by-n selector array into x-by-x tiles needs
/// 4x pins per tile (x wires in on each of two sides, out on two sides),
/// so x = p/4 and ceil(n/x)^2 chips -- the Omega((n/p)^2) blowup -- and a
/// message now crosses ~2 n/x chips of pad delay instead of one.
ResourceReport partitioned_hyper_report(std::size_t n, std::size_t pins,
                                        const DelayModel& dm = {});

/// Section 1's non-combinational foil: the parallel-prefix + butterfly
/// hyperconcentrator (O(n lg n) chips, 4 data pins per chip,
/// Theta(n^{3/2}) volume, lg n sequential control steps).
ResourceReport prefix_butterfly_report(std::size_t n, const DelayModel& dm = {});

/// Section 6 full-sorting hyperconcentrator variants.
ResourceReport full_revsort_report(std::size_t n, const DelayModel& dm = {});
ResourceReport full_columnsort_report(std::size_t r, std::size_t s,
                                      const DelayModel& dm = {});

/// The paper's printed delay formula for the full-Revsort hyperconcentrator,
/// 4 lg n lg lg n + 8 lg n (for comparison with our structural count; see
/// DESIGN.md section 4 on the factor-of-two discrepancy).
std::size_t paper_full_revsort_delay_formula(std::size_t n);

}  // namespace pcs::cost
