#include "cost/scaling.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace pcs::cost {

ScalingFit fit_power_law(const std::vector<std::pair<std::size_t, double>>& points) {
  PCS_REQUIRE(points.size() >= 2, "fit_power_law needs at least two points");
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  const double count = static_cast<double>(points.size());
  for (const auto& [n, v] : points) {
    PCS_REQUIRE(n > 0 && v > 0, "fit_power_law positive values");
    double x = std::log(static_cast<double>(n));
    double y = std::log(v);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
  }
  const double denom = count * sxx - sx * sx;
  PCS_REQUIRE(denom > 0, "fit_power_law degenerate abscissae");
  ScalingFit fit;
  fit.exponent = (count * sxy - sx * sy) / denom;
  const double ss_tot = syy - sy * sy / count;
  if (ss_tot <= 0) {
    fit.r_squared = 1.0;  // constant series: a perfect zero-slope fit
  } else {
    const double ss_reg = fit.exponent * (sxy - sx * sy / count);
    fit.r_squared = ss_reg / ss_tot;
  }
  return fit;
}

}  // namespace pcs::cost
