// Empirical scaling-exponent estimation: turns a series of (n, value)
// measurements into a log-log slope, so tests and benches can assert the
// Theta exponents of Table 1 rigorously instead of eyeballing ratios.
#pragma once

#include <cstdint>
#include <vector>

namespace pcs::cost {

struct ScalingFit {
  double exponent = 0.0;   ///< least-squares slope of log(value) vs log(n)
  double r_squared = 0.0;  ///< goodness of fit in [0, 1]
};

/// Least-squares fit of value ~ C * n^exponent over the given points.
/// Precondition: >= 2 points, all n and value strictly positive.
ScalingFit fit_power_law(const std::vector<std::pair<std::size_t, double>>& points);

/// Convenience: measure a quantity at several n via a callback and fit.
template <typename F>
ScalingFit fit_power_law_of(const std::vector<std::size_t>& ns, F&& measure) {
  std::vector<std::pair<std::size_t, double>> pts;
  pts.reserve(ns.size());
  for (std::size_t n : ns) pts.emplace_back(n, static_cast<double>(measure(n)));
  return fit_power_law(pts);
}

}  // namespace pcs::cost
