#include "cost/table1.hpp"

#include <iomanip>
#include <sstream>

#include "switch/columnsort_switch.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::cost {

std::vector<Table1Column> table1_columns(std::size_t n, std::size_t m,
                                         const DelayModel& dm) {
  PCS_REQUIRE(is_pow2(n), "table1_columns n must be a power of two");
  std::vector<Table1Column> cols;
  cols.push_back(Table1Column{"Revsort", revsort_report(n, m, dm)});
  for (double beta : kTable1Betas) {
    // Realize the same shape selection the switch factory uses so that the
    // table matches what would actually be built.
    auto sw = pcs::sw::ColumnsortSwitch::from_beta(n, beta, m);
    std::ostringstream hdr;
    hdr << "Columnsort b=" << beta;
    cols.push_back(
        Table1Column{hdr.str(), columnsort_report(sw.r(), sw.s(), m, dm)});
  }
  return cols;
}

std::string render_table1(std::size_t n, std::size_t m, const DelayModel& dm) {
  auto cols = table1_columns(n, m, dm);
  std::ostringstream os;
  os << "Table 1 (concrete, n=" << n << ", m=" << m << ")\n";
  const int w = 18;
  os << std::left << std::setw(16) << "";
  for (const auto& c : cols) os << std::setw(w) << c.header;
  os << "\n";
  auto row = [&](const std::string& label, auto getter) {
    os << std::left << std::setw(16) << label;
    for (const auto& c : cols) {
      std::ostringstream cell;
      cell << getter(c.report);
      os << std::setw(w) << cell.str();
    }
    os << "\n";
  };
  row("pins per chip", [](const ResourceReport& r) { return r.pins_per_chip; });
  row("chip count", [](const ResourceReport& r) { return r.chip_count; });
  row("epsilon", [](const ResourceReport& r) { return r.epsilon; });
  os << std::left << std::setw(16) << "load ratio";
  for (const auto& c : cols) {
    std::ostringstream cell;
    cell << std::fixed << std::setprecision(4) << c.report.load_ratio;
    os << std::setw(w) << cell.str();
  }
  os << "\n";
  row("gate delays", [](const ResourceReport& r) { return r.gate_delays; });
  row("volume", [](const ResourceReport& r) { return r.volume_3d; });
  row("boards", [](const ResourceReport& r) { return r.board_count; });
  row("connectors", [](const ResourceReport& r) { return r.connector_count; });
  return os.str();
}

std::string render_table1_asymptotic() {
  std::ostringstream os;
  os << "Table 1 (paper, asymptotic)\n";
  const int w = 18;
  const char* headers[] = {"", "Revsort", "Columnsort b=1/2", "Columnsort b=5/8",
                           "Columnsort b=3/4"};
  const char* rows[][5] = {
      {"pins per chip", "Th(n^1/2)", "Th(n^1/2)", "Th(n^5/8)", "Th(n^3/4)"},
      {"chip count", "Th(n^1/2)", "Th(n^1/2)", "Th(n^3/8)", "Th(n^1/4)"},
      {"load ratio", "1-O(n^3/4 / m)", "1-O(n / m)", "1-O(n^3/4 / m)",
       "1-O(n^1/2 / m) *"},
      {"gate delays", "3 lg n + O(1)", "2 lg n + O(1)", "5/2 lg n + O(1)",
       "3 lg n + O(1)"},
      {"volume", "Th(n^3/2)", "Th(n^3/2)", "Th(n^13/8)", "Th(n^7/4)"},
  };
  for (const char* h : headers) os << std::left << std::setw(w) << h;
  os << "\n";
  for (const auto& r : rows) {
    for (const char* cell : r) os << std::left << std::setw(w) << cell;
    os << "\n";
  }
  os << "* the paper's table prints 1-O(n^1/4 / m) here, but its own formula\n"
        "  1-O(n^(2-2b)/m) with b=3/4 gives n^1/2; we show the formula value\n"
        "  (see EXPERIMENTS.md, discrepancy D-T1).\n";
  return os.str();
}

}  // namespace pcs::cost
