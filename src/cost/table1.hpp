// Table 1 of the paper: resource measures for the Revsort-based partial
// concentrator switch and for the Columnsort-based switch at the beta values
// (1/2, 5/8, 3/4) where the latter matches the former asymptotically.
//
// The paper's table is asymptotic; ours is generated twice: once echoing the
// paper's asymptotic claims, and once as concrete counts from the resource
// model at a caller-chosen n (and m), so the scaling can be checked
// numerically (the bench bench_table1 prints both, and the tests verify the
// exponents by ratio).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cost/resource_model.hpp"

namespace pcs::cost {

/// The beta values Table 1 tabulates for the Columnsort switch.
inline constexpr double kTable1Betas[] = {0.5, 0.625, 0.75};

/// One concrete column of Table 1.
struct Table1Column {
  std::string header;
  ResourceReport report;
};

/// Concrete Table 1 at size n (a power of two that is also a square of a
/// power of two) and output count m.
std::vector<Table1Column> table1_columns(std::size_t n, std::size_t m,
                                         const DelayModel& dm = {});

/// Render the concrete table as fixed-width text (rows = the paper's five
/// measures plus the supporting counts).
std::string render_table1(std::size_t n, std::size_t m, const DelayModel& dm = {});

/// Render the paper's asymptotic Table 1 verbatim, for side-by-side
/// comparison in reports.
std::string render_table1_asymptotic();

}  // namespace pcs::cost
