#include "fabric/allocator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pcs::fabric {

namespace {

void reset_grants(const AllocProblem& p, std::vector<std::uint32_t>& grants) {
  PCS_REQUIRE(p.queued.size() == p.ins * p.outs &&
                  p.cap_in.size() == p.ins && p.cap_out.size() == p.outs,
              "allocator problem shape mismatch: ins=" << p.ins << " outs="
                                                       << p.outs);
  grants.assign(p.ins * p.outs, 0);
}

}  // namespace

std::size_t RoundRobinAllocator::allocate(const AllocProblem& p,
                                          std::vector<std::uint32_t>& grants) {
  PCS_REQUIRE(p.ins == ins_ && p.outs == outs_,
              "allocator built for " << ins_ << "x" << outs_ << ", problem is "
                                     << p.ins << "x" << p.outs);
  reset_grants(p, grants);
  std::vector<std::uint32_t> in_left = p.cap_in;
  std::vector<std::uint32_t> out_left = p.cap_out;
  const std::size_t pairs = ins_ * outs_;
  std::size_t total = 0;
  // Sweep the (in, out) pairs starting at the rotating cursor, one grant per
  // visit, until a full sweep makes no progress.  One-grant granularity is
  // what keeps the discipline fair: a deep VOQ cannot lock out its
  // neighbors within an epoch.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < pairs; ++i) {
      const std::size_t pair = (cursor_ + i) % pairs;
      const std::size_t e = pair / outs_;
      const std::size_t d = pair % outs_;
      if (grants[pair] < p.queued[pair] && in_left[e] > 0 && out_left[d] > 0) {
        ++grants[pair];
        --in_left[e];
        --out_left[d];
        ++total;
        progress = true;
      }
    }
  }
  // Advance the cursor so the pair served first rotates epoch to epoch.
  cursor_ = (cursor_ + 1) % (pairs == 0 ? 1 : pairs);
  return total;
}

std::size_t ISlipAllocator::allocate(const AllocProblem& p,
                                     std::vector<std::uint32_t>& grants) {
  PCS_REQUIRE(p.ins == ins_ && p.outs == outs_,
              "allocator built for " << ins_ << "x" << outs_ << ", problem is "
                                     << p.ins << "x" << p.outs);
  reset_grants(p, grants);
  std::vector<std::uint32_t> in_left = p.cap_in;
  std::vector<std::uint32_t> out_left = p.cap_out;
  std::size_t total = 0;

  // Iterated request/grant/accept.  Each iteration matches every input with
  // at most one output (and vice versa); the unit-grant rounds repeat until
  // caps are exhausted or no request can be served, so multi-message quotas
  // (cap_in / cap_out > 1) are filled one round at a time -- the standard
  // generalization of unit-bandwidth iSLIP to quota matching.
  bool progress = true;
  while (progress) {
    progress = false;
    // Grant phase: each output with remaining quota picks, from the inputs
    // still requesting it, the first at or after its grant pointer.
    std::vector<std::size_t> granted_to(outs_, ins_);  // ins_ = no grant
    for (std::size_t d = 0; d < outs_; ++d) {
      if (out_left[d] == 0) continue;
      for (std::size_t i = 0; i < ins_; ++i) {
        const std::size_t e = (grant_ptr_[d] + i) % ins_;
        if (in_left[e] > 0 && grants[e * outs_ + d] < p.queued[e * outs_ + d]) {
          granted_to[d] = e;
          break;
        }
      }
    }
    // Accept phase: each input with >= 1 grant accepts the first granting
    // output at or after its accept pointer.  Pointers advance one past the
    // match only when it completes (iSLIP's desynchronizing update).
    for (std::size_t e = 0; e < ins_; ++e) {
      if (in_left[e] == 0) continue;
      std::size_t chosen = outs_;
      for (std::size_t i = 0; i < outs_; ++i) {
        const std::size_t d = (accept_ptr_[e] + i) % outs_;
        if (granted_to[d] == e) {
          chosen = d;
          break;
        }
      }
      if (chosen == outs_) continue;
      ++grants[e * outs_ + chosen];
      --in_left[e];
      --out_left[chosen];
      ++total;
      progress = true;
      grant_ptr_[chosen] = (e + 1) % ins_;
      accept_ptr_[e] = (chosen + 1) % outs_;
    }
  }
  return total;
}

std::unique_ptr<Allocator> make_allocator(const std::string& name,
                                          std::size_t ins, std::size_t outs) {
  if (name == "rr") return std::make_unique<RoundRobinAllocator>(ins, outs);
  if (name == "islip") return std::make_unique<ISlipAllocator>(ins, outs);
  PCS_REQUIRE(false, "unknown fabric allocator '" << name
                                                  << "' (rr | islip)");
}

}  // namespace pcs::fabric
