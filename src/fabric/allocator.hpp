// Per-node VOQ allocators for the fabric (the Tiny Tera half of the design
// space).  Each epoch, every fabric node must pick which queued messages to
// present to its concentrator: at most cap_in[e] from in-link e's buffer
// pool (its port block) and at most cap_out[d] toward out-link d (the
// smaller of the out-block width, the node's guaranteed concentration
// capacity, and the channel's remaining credits).  That is a bipartite
// quota-matching problem over the ins x outs VOQ occupancy matrix.
//
// Two classic disciplines are provided:
//   rr     one rotating grand cursor over (in, out) pairs, one grant per
//          visit, swept until no pair can advance.  Simple, fair over time,
//          and the deterministic baseline.
//   islip  iSLIP-style separable request/grant/accept rounds with per-out
//          grant pointers and per-in accept pointers (McKeown's de-
//          synchronizing pointer update: advance only on accepted grants).
//          Converges in a few iterations and avoids the starvation modes
//          of single-pointer round robin under asymmetric load.
//
// Allocators are deterministic: no RNG, all state is the pointer vector, so
// campaigns stay byte-reproducible.  One instance per node persists across
// epochs (the pointers ARE the fairness state).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pcs::fabric {

/// One epoch's allocation input for a single node.
struct AllocProblem {
  std::size_t ins = 0;   ///< in-links (VOQ pool rows)
  std::size_t outs = 0;  ///< out-links (VOQ columns)
  /// queued[e * outs + d] = messages waiting in in-link e's VOQ toward
  /// out-link d.
  std::vector<std::uint32_t> queued;
  /// Per-in-link grant budget this epoch (presentable ports).
  std::vector<std::uint32_t> cap_in;
  /// Per-out-link grant budget this epoch (min of out-block width,
  /// guaranteed node capacity share, and channel credits).
  std::vector<std::uint32_t> cap_out;
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Fill grants[e * outs + d] with the number of messages granted from
  /// VOQ (e, d); returns the total granted.  Postconditions (checked by the
  /// fabric under check_invariants): grants <= queued elementwise, row sums
  /// respect cap_in, column sums respect cap_out.
  virtual std::size_t allocate(const AllocProblem& p,
                               std::vector<std::uint32_t>& grants) = 0;

  virtual const char* name() const noexcept = 0;
};

/// Rotating-cursor round robin over the (in, out) matrix.
class RoundRobinAllocator final : public Allocator {
 public:
  RoundRobinAllocator(std::size_t ins, std::size_t outs)
      : ins_(ins), outs_(outs) {}
  std::size_t allocate(const AllocProblem& p,
                       std::vector<std::uint32_t>& grants) override;
  const char* name() const noexcept override { return "rr"; }

 private:
  std::size_t ins_, outs_;
  std::size_t cursor_ = 0;  ///< starting (in, out) pair, advanced per epoch
};

/// iSLIP-style separable allocator: iterated request/grant/accept with
/// per-output grant pointers and per-input accept pointers.
class ISlipAllocator final : public Allocator {
 public:
  ISlipAllocator(std::size_t ins, std::size_t outs)
      : ins_(ins), outs_(outs), grant_ptr_(outs, 0), accept_ptr_(ins, 0) {}
  std::size_t allocate(const AllocProblem& p,
                       std::vector<std::uint32_t>& grants) override;
  const char* name() const noexcept override { return "islip"; }

 private:
  std::size_t ins_, outs_;
  std::vector<std::size_t> grant_ptr_;   ///< per-out: next input to favor
  std::vector<std::size_t> accept_ptr_;  ///< per-in: next output to favor
};

/// Factory keyed by config slug ("rr" | "islip"); throws on unknown names.
std::unique_ptr<Allocator> make_allocator(const std::string& name,
                                          std::size_t ins, std::size_t outs);

}  // namespace pcs::fabric
