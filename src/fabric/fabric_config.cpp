#include "fabric/fabric_config.hpp"

#include <utility>

#include "fabric/make_fabric.hpp"
#include "traffic/trace.hpp"
#include "util/assert.hpp"

namespace pcs::fabric {

FabricSpec fabric_spec_from(const rt::RuntimeConfig& cfg,
                            const std::string& family) {
  PCS_REQUIRE(!cfg.topology.empty(),
              "fabric_spec_from needs a non-empty topology");
  FabricSpec spec;
  spec.topology = topology_from_string(cfg.topology);
  spec.hops = cfg.fabric_hops;
  spec.radix = cfg.fabric_radix;
  spec.credits = cfg.fabric_credits;
  spec.alloc = cfg.fabric_alloc;
  spec.route = cfg.fabric_route;
  spec.deflect_max = cfg.fabric_deflect_max;
  spec.fault_hop = cfg.fault_hop;
  spec.node.family = family;
  spec.node.n = cfg.n;
  spec.node.m = cfg.m;
  spec.node.beta = cfg.beta;
  spec.node.faults = cfg.faults;
  return spec;
}

FabricOptions fabric_options_from(const rt::RuntimeConfig& cfg) {
  FabricOptions opts;
  opts.queue_depth = cfg.queue_depth;
  opts.seed = cfg.seed;
  opts.warmup_epochs = cfg.warmup_epochs;
  opts.measure_epochs = cfg.measure_epochs;
  opts.drain_epochs_max = cfg.drain_epochs_max;
  opts.check_invariants = cfg.check_invariants;
  opts.epochs_in_flight = cfg.fabric_epochs_in_flight;
  return opts;
}

std::unique_ptr<FabricSim> make_fabric_sim(const rt::RuntimeConfig& cfg,
                                           const std::string& family,
                                           double arrival_p) {
  rt::RuntimeConfig point = cfg;
  point.arrival_p = arrival_p;
  FabricSim::TrafficFactory traffic;
  if (!cfg.replay.empty()) {
    // A fabric campaign has one source bundle, so the recording's stream 0
    // is the whole offered history.
    auto log = std::make_shared<const traffic::TraceLog>(
        traffic::TraceLog::read_file(cfg.replay));
    traffic = [log](std::size_t width) {
      PCS_REQUIRE(log->width == width,
                  "replay trace width " << log->width
                                        << " does not match fabric sources "
                                        << width);
      return traffic::make_replay(log, 0);
    };
  } else {
    traffic = [point](std::size_t width) {
      return rt::make_traffic(point, width);
    };
  }
  // The runtime constructs fabrics exclusively through the public
  // make_fabric entry point, like runtime/config.cpp does for switches.
  return pcs::make_fabric(fabric_spec_from(cfg, family),
                          fabric_options_from(cfg), std::move(traffic));
}

}  // namespace pcs::fabric
