// Bridge from the runtime key=value config (runtime/config.hpp) to fabric
// construction: pcs_serve sets `topology=` to switch a campaign from one
// switch to a multi-hop fabric, and everything else (family, n, m, beta,
// faults, phases, seed) carries over unchanged.  Kept out of pcs_runtime so
// the dependency points upward: fabric knows about the runtime config, the
// runtime never knows about fabrics.
#pragma once

#include <memory>
#include <string>

#include "fabric/fabric_sim.hpp"
#include "fabric/topology.hpp"
#include "runtime/config.hpp"

namespace pcs::fabric {

/// FabricSpec for one family of the config's family list.  The per-node
/// switch takes the config's n / m / beta shape and its faults (applied to
/// hop cfg.fault_hop).  Throws ContractViolation for non-plan families
/// ("hyper") and shapes that do not divide by the radix.
FabricSpec fabric_spec_from(const rt::RuntimeConfig& cfg,
                            const std::string& family);

/// Campaign phases / seed / queue bound lifted straight from the config.
FabricOptions fabric_options_from(const rt::RuntimeConfig& cfg);

/// A ready-to-run simulator for one (config, family, arrival_p) campaign
/// point: spec + options + a make_traffic-backed generator over the
/// fabric's sources.
std::unique_ptr<FabricSim> make_fabric_sim(const rt::RuntimeConfig& cfg,
                                           const std::string& family,
                                           double arrival_p);

}  // namespace pcs::fabric
