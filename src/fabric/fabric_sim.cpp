#include "fabric/fabric_sim.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <iomanip>
#include <iterator>
#include <sstream>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "switch/make_switch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::fabric {

using rt::Counter;
using rt::Gauge;
using rt::Histogram;

namespace {

std::size_t default_epochs_in_flight() {
  const char* s = std::getenv("PCS_FABRIC_EPOCHS_IN_FLIGHT");
  if (s == nullptr || *s == '\0') return 1;
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  PCS_REQUIRE(end != nullptr && *end == '\0' && v >= 1 && v <= 4096,
              "PCS_FABRIC_EPOCHS_IN_FLIGHT must be an integer in [1, 4096], "
              "got '" << s << "'");
  return static_cast<std::size_t>(v);
}

}  // namespace

FabricSim::FabricSim(FabricSpec spec, FabricOptions opts,
                     TrafficFactory traffic)
    : graph_(std::move(spec)),
      opts_(std::move(opts)),
      traffic_factory_(std::move(traffic)) {
  PCS_REQUIRE(opts_.queue_depth >= 1, "fabric queue_depth must be >= 1");
  PCS_REQUIRE(static_cast<bool>(traffic_factory_),
              "FabricSim needs a traffic factory");

  const FabricSpec& sp = graph_.spec();
  SwitchSpec healthy_spec = sp.node;
  healthy_spec.faults.clear();
  healthy_ = pcs::make_switch(healthy_spec);
  healthy_capacity_ = healthy_->guaranteed_capacity();
  if (!sp.node.faults.empty()) {
    // Only hop `fault_hop` routes the fault-rewritten plan.  Grant budgets
    // everywhere still come from healthy_capacity_: the faulted plan
    // advertises zero guaranteed capacity (epsilon = n), which is the right
    // *contract* but would deadlock the fabric as a *budget*; instead the
    // hop over-grants optimistically and accounts every dead-chip loss.
    faulted_ = pcs::make_switch(sp.node);
  }

  policy_ = make_route_policy(sp.route, sp.deflect_max);
  epochs_in_flight_ = opts_.epochs_in_flight != 0 ? opts_.epochs_in_flight
                                                  : default_epochs_in_flight();
  PCS_REQUIRE(epochs_in_flight_ >= 1,
              "fabric epochs_in_flight must be >= 1");

  const std::size_t H = graph_.hops();
  const std::size_t r = graph_.radix();
  if (policy_->reads_costs()) voq_scratch_.resize(r);
  source_q_.resize(graph_.sources());
  pools_.resize(H);
  credits_.assign(H >= 1 ? H - 1 : 0, {});
  for (std::size_t k = 0; k < H; ++k) {
    pools_[k].resize(graph_.nodes_at(k) * r);
    for (Pool& pool : pools_[k]) pool.voq.resize(r);
    if (k + 1 < H) {
      credits_[k].assign(graph_.nodes_at(k) * r,
                         static_cast<std::uint32_t>(sp.credits));
    }
    for (std::size_t node = 0; node < graph_.nodes_at(k); ++node) {
      alloc_.push_back(make_allocator(sp.alloc, r, r));
    }
  }
}

std::string FabricSim::name() const {
  std::ostringstream os;
  os << graph_.name() << " of " << healthy_->name();
  if (faulted_) os << " [hop " << graph_.spec().fault_hop << " faulted]";
  return os.str();
}

std::string FabricSim::hop_metric(std::size_t hop, const char* leaf) const {
  // Zero-pad the hop index to the campaign's widest hop so deterministic
  // scrapes sort numerically (hop09 < hop10).  Fabrics of <= 10 hops keep
  // the legacy single-digit keys.
  std::size_t width = 1;
  for (std::size_t v = graph_.hops() - 1; v >= 10; v /= 10) ++width;
  std::ostringstream os;
  os << "fabric.hop" << std::setw(static_cast<int>(width))
     << std::setfill('0') << hop << "." << leaf;
  return os.str();
}

std::size_t FabricSim::in_flight() const {
  std::size_t n = 0;
  for (const auto& q : source_q_) n += q.size();
  for (const auto& hop : pools_)
    for (const Pool& pool : hop) n += pool.occupancy;
  return n;
}

void FabricSim::check_credit_mirror() const {
  // Credit-based flow control invariant: each channel's credit counter
  // mirrors the free space of the one downstream pool it feeds.
  const std::size_t r = graph_.radix();
  for (std::size_t k = 0; k + 1 < graph_.hops(); ++k) {
    for (std::size_t node = 0; node < graph_.nodes_at(k); ++node) {
      for (std::size_t d = 0; d < r; ++d) {
        const FabricGraph::Channel ch = graph_.channel(k, node, d);
        const Pool& pool = pools_[k + 1][ch.node * r + ch.inlink];
        const std::uint32_t credit = credits_[k][node * r + d];
        PCS_REQUIRE(credit + pool.occupancy == graph_.spec().credits,
                    "credit mirror broken on hop " << k << " node " << node
                        << " link " << d << ": credits=" << credit
                        << " occupancy=" << pool.occupancy << " capacity="
                        << graph_.spec().credits);
      }
    }
  }
}

/// Mutable per-run accounting shared between the engines and the phase
/// helpers.  The per-epoch tally ring attributes deliveries and drops to
/// the epoch whose unit performed them, so the derived backlog
///   offered(<= e) - delivered(<= e) - dropped(<= e)
/// is identical under every schedule -- the pipelined engine records it
/// where the serial loop records the (then equal) structural in_flight().
struct FabricSim::EpochContext {
  rt::MetricsRegistry* metrics = nullptr;
  std::size_t dispatches = 0;

  // Whole-campaign tallies (mirrored into total.* at every epoch check).
  std::uint64_t total_offered = 0;
  std::uint64_t total_delivered = 0;
  std::uint64_t total_dropped = 0;

  // Per-epoch attribution: tally[e - tally_base] = {delivered, dropped}.
  // Folded into the cum_* prefixes when epoch e's injection completes; the
  // ring never grows past epochs_in_flight + 1 entries.
  std::size_t tally_base = 0;
  std::deque<std::array<std::uint64_t, 2>> tally;
  std::uint64_t cum_delivered = 0;
  std::uint64_t cum_dropped = 0;

  std::array<std::uint64_t, 2>& tally_for(std::size_t epoch) {
    PCS_REQUIRE(epoch >= tally_base, "fabric tally for a folded epoch");
    while (epoch - tally_base >= tally.size()) tally.push_back({0, 0});
    return tally[epoch - tally_base];
  }
};

/// One (epoch, hop) stage: the allocator's grants as per-(node, out-link)
/// valid-bit patterns, and the switch routings that resolve them.
struct FabricSim::Unit {
  std::size_t epoch = 0;
  std::size_t hop = 0;

  struct Pattern {
    std::size_t node = 0;
    std::size_t d = 0;
    /// (input port, in-link) in ascending port order so resolution pops
    /// VOQ fronts in grant order.
    std::vector<std::pair<std::size_t, std::size_t>> ports;
  };
  std::vector<Pattern> meta;
  std::vector<BitVec> valids;
  std::vector<sw::SwitchRouting> routings;
};

void FabricSim::alloc_unit(Unit& u, EpochContext& ctx) {
  rt::MetricsRegistry& metrics = *ctx.metrics;
  const std::size_t hop = u.hop;
  const std::size_t r = graph_.radix();
  const std::size_t H = graph_.hops();
  const bool last = hop + 1 == H;
  const std::size_t nodes = graph_.nodes_at(hop);

  Counter& granted_ctr = metrics.counter(hop_metric(hop, "granted"));
  Counter& stalls_ctr = metrics.counter(hop_metric(hop, "credit_stalls"));
  Histogram& occ_hist = metrics.histogram(hop_metric(hop, "occupancy"));
  metrics.histogram(hop_metric(hop, "latency_epochs"));

  obs::SpanGuard alloc_span("fabric.alloc", obs::cat::kRuntime);
  alloc_span.arg("hop", hop);
  AllocProblem problem;
  problem.ins = r;
  problem.outs = r;
  std::vector<std::uint32_t> grants;
  for (std::size_t node = 0; node < nodes; ++node) {
    problem.queued.assign(r * r, 0);
    problem.cap_in.assign(r, static_cast<std::uint32_t>(graph_.in_block()));
    problem.cap_out.assign(r, 0);
    bool any = false;
    for (std::size_t e = 0; e < r; ++e) {
      const Pool& pool = pools_[hop][node * r + e];
      occ_hist.record(pool.occupancy);
      for (std::size_t d = 0; d < r; ++d) {
        const std::size_t q = pool.voq[d].size();
        problem.queued[e * r + d] = static_cast<std::uint32_t>(q);
        if (q > 0) any = true;
      }
    }
    if (!any) continue;
    for (std::size_t d = 0; d < r; ++d) {
      // Column budget: the out-block's wire count, the healthy plan's
      // guaranteed concentration capacity, and (between hops) the
      // channel's remaining credits.  Never the faulted capacity -- see
      // the constructor comment.
      std::size_t cap = std::min(graph_.out_block(), healthy_capacity_);
      if (!last) {
        const std::uint32_t credit = credits_[hop][node * r + d];
        if (credit < cap) cap = credit;
        if (cap == 0) {
          // Backpressure: traffic wants this link but credits gate it.
          bool wants = false;
          for (std::size_t e = 0; e < r && !wants; ++e) {
            wants = problem.queued[e * r + d] > 0;
          }
          if (wants) {
            stalls_ctr.add(1);
            PCS_TRACE_COUNTER("fabric.credit_stalls", 1);
          }
        }
      }
      problem.cap_out[d] = static_cast<std::uint32_t>(cap);
    }
    const std::size_t total =
        alloc_[hop * nodes + node]->allocate(problem, grants);
    if (opts_.check_invariants) {
      for (std::size_t e = 0; e < r; ++e) {
        std::uint32_t row = 0;
        for (std::size_t d = 0; d < r; ++d) {
          PCS_REQUIRE(grants[e * r + d] <= problem.queued[e * r + d],
                      "allocator granted beyond VOQ occupancy");
          row += grants[e * r + d];
        }
        PCS_REQUIRE(row <= problem.cap_in[e], "allocator row budget broken");
      }
      for (std::size_t d = 0; d < r; ++d) {
        std::uint32_t col = 0;
        for (std::size_t e = 0; e < r; ++e) col += grants[e * r + d];
        PCS_REQUIRE(col <= problem.cap_out[d],
                    "allocator column budget broken");
      }
    }
    if (total == 0) continue;
    granted_ctr.add(total);
    const sw::ConcentratorSwitch& node_switch =
        (faulted_ && hop == graph_.spec().fault_hop) ? *faulted_ : *healthy_;
    for (std::size_t d = 0; d < r; ++d) {
      Unit::Pattern pat;
      pat.node = node;
      pat.d = d;
      BitVec valid(node_switch.inputs());
      for (std::size_t e = 0; e < r; ++e) {
        const std::uint32_t g = grants[e * r + d];
        for (std::uint32_t rank = 0; rank < g; ++rank) {
          const std::size_t port = e * graph_.in_block() + rank;
          valid.set(port, true);
          pat.ports.emplace_back(port, e);
        }
      }
      if (pat.ports.empty()) continue;
      u.meta.push_back(std::move(pat));
      u.valids.push_back(std::move(valid));
    }
  }
}

RouteChoice FabricSim::choose_entry(std::size_t hop, std::size_t node,
                                    const Pool& pool, const Msg& msg) {
  RouteContext rc;
  rc.hop = hop;
  rc.node = node;
  rc.dest = msg.dest;
  rc.deflections = msg.deflections;
  const std::size_t r = graph_.radix();
  if (hop + 1 < graph_.hops()) rc.credits = credits_[hop].data() + node * r;
  if (policy_->reads_costs()) {
    for (std::size_t d = 0; d < r; ++d) {
      voq_scratch_[d] = static_cast<std::uint32_t>(pool.voq[d].size());
    }
    rc.voq_depth = voq_scratch_.data();
  }
  return policy_->choose(graph_, rc);
}

void FabricSim::resolve_unit(Unit& u, EpochContext& ctx) {
  rt::MetricsRegistry& metrics = *ctx.metrics;
  const std::size_t hop = u.hop;
  const std::size_t r = graph_.radix();
  const bool last = hop + 1 == graph_.hops();
  const bool hop_faulted = faulted_ && hop == graph_.spec().fault_hop;

  Histogram& hop_lat = metrics.histogram(hop_metric(hop, "latency_epochs"));
  Counter& sent_ctr = metrics.counter(hop_metric(hop, "sent"));
  Counter& hop_delivered = metrics.counter(hop_metric(hop, "delivered"));
  Counter& fault_drops = metrics.counter(hop_metric(hop, "dropped.fault"));
  Counter& delivered = metrics.counter("delivered");
  Counter& dropped = metrics.counter("dropped");
  Histogram& latency = metrics.histogram("latency_epochs");

  for (std::size_t i = 0; i < u.meta.size(); ++i) {
    const Unit::Pattern& pat = u.meta[i];
    const sw::SwitchRouting& routing = u.routings[i];
    for (const auto& [port, e] : pat.ports) {
      Pool& pool = pools_[hop][pat.node * r + e];
      PCS_REQUIRE(!pool.voq[pat.d].empty(),
                  "granted VOQ drained out from under the resolver");
      Msg msg = pool.voq[pat.d].front();
      pool.voq[pat.d].pop_front();
      --pool.occupancy;
      if (hop > 0) {
        // Departing the pool frees one slot: return the credit to the one
        // upstream channel that feeds this in-link.
        const FabricGraph::Upstream up = graph_.upstream(hop, pat.node, e);
        ++credits_[hop - 1][up.node * r + up.link];
      }
      const bool routed = routing.output_of_input[port] >= 0;
      if (!routed) {
        // Grant budgets never exceed the healthy guaranteed capacity, so an
        // unrouted grant is only legal where dead chips can eat messages.
        PCS_REQUIRE(hop_faulted,
                    "healthy hop " << hop << " failed to route a granted "
                        "message within its guaranteed capacity (node "
                        << pat.node << ", link " << pat.d << ")");
        fault_drops.add(1);
        ++ctx.total_dropped;
        ++ctx.tally_for(u.epoch)[1];
        if (msg.measured) dropped.add(1);
        continue;
      }
      hop_lat.record(u.epoch - msg.hop_entered);
      if (last) {
        const std::size_t sink = pat.node * r + pat.d;
        PCS_REQUIRE(sink == msg.dest,
                    "fabric misdelivery: sink " << sink << " != dest "
                        << msg.dest << " (hop " << hop << ", node "
                        << pat.node << ")");
        hop_delivered.add(1);
        ++ctx.total_delivered;
        ++ctx.tally_for(u.epoch)[0];
        if (msg.measured) {
          delivered.add(1);
          latency.record(u.epoch - msg.born);
        }
      } else {
        const FabricGraph::Channel ch = graph_.channel(hop, pat.node, pat.d);
        Pool& down = pools_[hop + 1][ch.node * r + ch.inlink];
        const RouteChoice choice =
            choose_entry(hop + 1, ch.node, down, msg);
        sent_ctr.add(1);
        metrics.counter(hop_metric(hop + 1, "accepted")).add(1);
        if (choice.drop) {
          // Entry refusal: off every minimal path with the deflection
          // budget spent (or a last hop it can never eject from) -- the
          // accounted livelock-protection path.  No credit or pool slot is
          // consumed downstream.
          metrics.counter(hop_metric(hop + 1, "dropped.deflect")).add(1);
          ++ctx.total_dropped;
          ++ctx.tally_for(u.epoch)[1];
          if (msg.measured) dropped.add(1);
          continue;
        }
        PCS_REQUIRE(credits_[hop][pat.node * r + pat.d] > 0,
                    "fabric sent beyond the channel's credits");
        --credits_[hop][pat.node * r + pat.d];
        if (choice.deflected) {
          metrics.counter(hop_metric(hop + 1, "deflections")).add(1);
          PCS_TRACE_COUNTER("fabric.deflections", 1);
          ++msg.deflections;
        }
        msg.hop_entered = static_cast<std::uint32_t>(u.epoch);
        down.voq[choice.link].push_back(msg);
        ++down.occupancy;
      }
    }
  }
}

void FabricSim::serve_hop_serial(std::size_t hop, std::size_t epoch,
                                 EpochContext& ctx) {
  obs::SpanGuard hop_span("fabric.hop", obs::cat::kRuntime);
  hop_span.arg("hop", hop);

  Unit u;
  u.epoch = epoch;
  u.hop = hop;
  alloc_unit(u, ctx);
  if (u.valids.empty()) return;

  // All of the hop's per-output-group patterns resolve in ONE batched
  // dispatch through the plan executor -- the fabric keeps the
  // one-dispatch-per-hop-per-epoch discipline of the single-switch runtime.
  const bool hop_faulted = faulted_ && hop == graph_.spec().fault_hop;
  const sw::ConcentratorSwitch& node_switch =
      hop_faulted ? *faulted_ : *healthy_;
  {
    obs::SpanGuard route_span("fabric.route", obs::cat::kRuntime);
    route_span.arg("hop", hop);
    route_span.arg("patterns", u.valids.size());
    u.routings = node_switch.route_batch(u.valids);
    ++ctx.dispatches;
  }

  obs::SpanGuard resolve_span("fabric.resolve", obs::cat::kRuntime);
  resolve_span.arg("hop", hop);
  resolve_unit(u, ctx);
}

void FabricSim::move_source_heads(std::size_t epoch, EpochContext& ctx) {
  rt::MetricsRegistry& metrics = *ctx.metrics;
  const std::size_t r = graph_.radix();
  Counter& hop0_accepted = metrics.counter(hop_metric(0, "accepted"));
  // Source-queue heads enter hop 0 when its pool has a free slot: VOQ
  // occupancy gates injection just as credits gate the inner hops.
  for (std::size_t g = 0; g < graph_.sources(); ++g) {
    if (source_q_[g].empty()) continue;
    Pool& pool = pools_[0][g];  // node g / r, in-link g % r
    if (pool.occupancy >= graph_.spec().credits) continue;
    Msg msg = source_q_[g].front();
    source_q_[g].pop_front();
    const RouteChoice choice = choose_entry(0, g / r, pool, msg);
    // Every topology reaches every sink from hop 0, so injection can
    // never be refused -- only steered (or, when starved, deflected).
    PCS_REQUIRE(!choice.drop, "route policy refused an injection");
    if (choice.deflected) {
      metrics.counter(hop_metric(0, "deflections")).add(1);
      PCS_TRACE_COUNTER("fabric.deflections", 1);
      ++msg.deflections;
    }
    msg.hop_entered = static_cast<std::uint32_t>(epoch);
    pool.voq[choice.link].push_back(msg);
    ++pool.occupancy;
    hop0_accepted.add(1);
  }
}

void FabricSim::admit_arrivals(std::size_t epoch, bool in_measure,
                               EpochContext& ctx, Rng& rng,
                               traffic::TrafficSource& traffic) {
  rt::MetricsRegistry& metrics = *ctx.metrics;
  Counter& offered = metrics.counter("offered");
  Counter& rejected = metrics.counter("rejected_queue_full");
  Counter& dropped = metrics.counter("dropped");
  const BitVec arrivals = traffic.next_valid(rng);
  for (std::size_t g = 0; g < graph_.sources(); ++g) {
    if (!arrivals.get(g)) continue;
    ++ctx.total_offered;
    if (in_measure) offered.add(1);
    if (source_q_[g].size() >= opts_.queue_depth) {
      // Door rejection: the bounded injection queue is full.
      ++ctx.total_dropped;
      ++ctx.tally_for(epoch)[1];
      rejected.add(1);
      if (in_measure) dropped.add(1);
      continue;
    }
    Msg msg;
    // The destination draw happens only for accepted arrivals, after the
    // queue-depth gate, so uniform sources replay the legacy rng stream
    // bit for bit while permutation patterns consume no randomness here.
    msg.dest = traffic.dest_for(rng, g, graph_.sinks());
    msg.born = static_cast<std::uint32_t>(epoch);
    msg.measured = in_measure;
    source_q_[g].push_back(msg);
  }
}

std::uint64_t FabricSim::epoch_bookkeeping(std::size_t epoch, bool in_measure,
                                           EpochContext& ctx) {
  rt::MetricsRegistry& metrics = *ctx.metrics;
  // Fold this epoch's attributed tally into the prefix sums.  Units of
  // later epochs may already have run under the pipelined schedule; their
  // tallies stay in the ring until their own injection completes.
  PCS_REQUIRE(epoch == ctx.tally_base, "fabric epochs folded out of order");
  if (!ctx.tally.empty()) {
    ctx.cum_delivered += ctx.tally.front()[0];
    ctx.cum_dropped += ctx.tally.front()[1];
    ctx.tally.pop_front();
  }
  ++ctx.tally_base;
  // The derived backlog: offered, delivered, and dropped are all attributed
  // to epochs <= `epoch` now, so this equals the serial loop's structural
  // in_flight() at this very point regardless of the schedule.
  const std::uint64_t backlog =
      ctx.total_offered - ctx.cum_delivered - ctx.cum_dropped;
  if (in_measure) metrics.histogram("backlog").record(backlog);
  // Per-epoch conservation: nothing is created or destroyed untallied.
  // The structural identity holds between any two units on this thread.
  PCS_REQUIRE(ctx.total_offered ==
                  ctx.total_delivered + ctx.total_dropped + in_flight(),
              "fabric conservation broken at epoch "
                  << epoch << ": offered " << ctx.total_offered
                  << " != delivered " << ctx.total_delivered << " + dropped "
                  << ctx.total_dropped << " + in-flight " << in_flight());
  if (opts_.check_invariants) check_credit_mirror();
  return backlog;
}

rt::RuntimeReport FabricSim::run(rt::MetricsRegistry& metrics) {
  Rng rng(opts_.seed);
  std::unique_ptr<traffic::TrafficSource> traffic =
      traffic_factory_(graph_.sources());
  PCS_REQUIRE(traffic && traffic->width() == graph_.sources(),
              "fabric traffic generator width must equal sources()="
                  << graph_.sources());

  // Campaign-wide series exist even when zero (stable scrape key set).
  metrics.counter("offered");
  metrics.counter("rejected_queue_full");
  metrics.counter("dropped");
  metrics.histogram("backlog");
  metrics.counter(hop_metric(0, "accepted"));

  EpochContext ctx;
  ctx.metrics = &metrics;

  return epochs_in_flight_ == 1 ? run_serial(metrics, ctx, rng, *traffic)
                                : run_pipelined(metrics, ctx, rng, *traffic);
}

rt::RuntimeReport FabricSim::run_serial(rt::MetricsRegistry& metrics,
                                        EpochContext& ctx, Rng& rng,
                                        traffic::TrafficSource& traffic) {
  const std::size_t measure_end = opts_.warmup_epochs + opts_.measure_epochs;
  rt::RuntimeReport report;
  std::size_t epoch = 0;
  while (true) {
    const bool in_measure =
        epoch >= opts_.warmup_epochs && epoch < measure_end;
    const bool in_drain = epoch >= measure_end;
    if (in_drain) {
      if (in_flight() == 0) {
        report.drained = true;
        break;
      }
      if (epoch - measure_end >= opts_.drain_epochs_max) {
        report.saturated = true;
        break;
      }
      // Same commit-to-execute drain accounting as FabricRuntime::run.
      ++report.drain_epochs_used;
    }

    obs::SpanGuard epoch_span("fabric.epoch", obs::cat::kRuntime);
    epoch_span.arg("epoch", epoch);

    for (std::size_t k = graph_.hops(); k-- > 0;)
      serve_hop_serial(k, epoch, ctx);

    move_source_heads(epoch, ctx);
    if (!in_drain) admit_arrivals(epoch, in_measure, ctx, rng, traffic);
    epoch_bookkeeping(epoch, in_measure, ctx);
    ++epoch;
  }
  return finish_run(report, ctx, metrics);
}

rt::RuntimeReport FabricSim::run_pipelined(rt::MetricsRegistry& metrics,
                                           EpochContext& ctx, Rng& rng,
                                           traffic::TrafficSource& traffic) {
  const std::size_t H = graph_.hops();
  const std::size_t E = epochs_in_flight_;
  const std::size_t measure_end = opts_.warmup_epochs + opts_.measure_epochs;
  rt::RuntimeReport report;

  Counter& merged_ctr = metrics.counter("fabric.pipeline.dispatches");
  Histogram& wave_hist = metrics.histogram("fabric.pipeline.wave_units");

  // Per-hop sequence tickets: rc[k] = epochs hop k has fully resolved, so
  // hop k's next unit serves epoch rc[k].  `injected` counts epochs whose
  // injection + bookkeeping completed; the dependency structure guarantees
  // every unit of those epochs resolved first.
  std::vector<std::size_t> rc(H, 0);
  std::size_t injected = 0;
  std::size_t opened = 0;
  bool stop_opening = false;

  std::vector<Unit> units;
  std::vector<BitVec> batch;
  std::vector<sw::SwitchRouting> routings;
  while (true) {
    // Open epochs: warmup/measure epochs freely up to E in flight; drain
    // epochs one at a time, each gated on the previous epoch's completion
    // (the continue-draining decision needs the exact backlog).
    while (!stop_opening && opened - injected < E) {
      if (opened >= measure_end) {
        if (injected < opened) break;
        const std::uint64_t backlog =
            ctx.total_offered - ctx.cum_delivered - ctx.cum_dropped;
        if (backlog == 0) {
          report.drained = true;
          stop_opening = true;
          break;
        }
        if (opened - measure_end >= opts_.drain_epochs_max) {
          report.saturated = true;
          stop_opening = true;
          break;
        }
        ++report.drain_epochs_used;
      }
      ++opened;
    }
    if (injected == opened) {
      PCS_REQUIRE(stop_opening, "fabric pipeline stalled with no open epoch");
      break;
    }

    // Collect the ready wavefront: hop k is ready for epoch e = rc[k] when
    // the same epoch resolved downstream (credits returned), the previous
    // epoch resolved upstream (pools filled), and the previous epoch
    // resolved here (allocator/pool sequence ticket).  Ready units always
    // carry distinct epochs spaced two hops apart -- except for policies
    // that read live costs: resolving unit(e, k) reads credits_[k + 1]
    // (pool-entry choice at hop k + 1), which unit(e + 1, k + 2)'s credit
    // returns would mutate ahead of serial order, so cost-reading policies
    // additionally wait for hop k - 2 (three-hop spacing).  Either way the
    // shared-state access order equals the serial loop's, which is what
    // makes campaign counters independent of epochs_in_flight.
    const bool strict = policy_->reads_costs();
    // Collect ascending by hop.  rc[] is monotone non-decreasing in k (hop k
    // only advances while rc[k + 1] > rc[k]), and readiness at hop k demands
    // rc[k + 1] > rc[k], so ascending hop order IS ascending epoch order --
    // the wave comes out sorted for free.  Unit slots (and their inner
    // vectors' capacity) are recycled across waves.
    std::size_t n_units = 0;
    for (std::size_t k = 0; k < H; ++k) {
      const std::size_t e = rc[k];
      if (e >= opened) continue;
      if (k + 1 < H && rc[k + 1] <= e) continue;
      if (k == 0 ? injected < e : rc[k - 1] < e) continue;
      if (strict && k >= 1 && (k >= 2 ? rc[k - 2] < e : injected < e))
        continue;
      if (units.size() <= n_units) units.emplace_back();
      Unit& u = units[n_units++];
      u.epoch = e;
      u.hop = k;
      u.meta.clear();
      u.valids.clear();
      u.routings.clear();
    }
    PCS_REQUIRE(n_units > 0, "fabric pipeline made no progress");

    obs::SpanGuard wave_span("fabric.wave", obs::cat::kRuntime);
    wave_span.arg("units", n_units);
    wave_hist.record(n_units);
    PCS_TRACE_COUNTER("fabric.pipeline.wave", n_units);

    for (std::size_t i = 0; i < n_units; ++i) alloc_unit(units[i], ctx);

    // Fuse the wave's dispatches: every ready unit routing the same switch
    // shares ONE route_batch call, widening the executor's 64-pattern word
    // lanes across epochs.  Patterns are routed independently inside the
    // batch, so the fused results are bit-identical to per-unit dispatches.
    for (const bool faulted_kind : {false, true}) {
      batch.clear();
      std::size_t member_units = 0;
      for (std::size_t i = 0; i < n_units; ++i) {
        Unit& u = units[i];
        if (u.valids.empty()) continue;
        const bool hop_faulted = faulted_ && u.hop == graph_.spec().fault_hop;
        if (hop_faulted != faulted_kind) continue;
        // Resolution walks u.meta + u.routings only, so the valid masks are
        // dead after the dispatch: MOVE their words into the fused batch
        // (the outer u.valids keeps its size -- that is the pattern count
        // the routings slice-back below still needs).
        batch.insert(batch.end(), std::make_move_iterator(u.valids.begin()),
                     std::make_move_iterator(u.valids.end()));
        ++member_units;
      }
      if (batch.empty()) continue;
      const sw::ConcentratorSwitch& node_switch =
          faulted_kind ? *faulted_ : *healthy_;
      {
        obs::SpanGuard route_span("fabric.route", obs::cat::kRuntime);
        route_span.arg("patterns", batch.size());
        route_span.arg("units", member_units);
        routings = node_switch.route_batch(batch);
        merged_ctr.add(1);
      }
      std::size_t base = 0;
      for (std::size_t i = 0; i < n_units; ++i) {
        Unit& u = units[i];
        if (u.valids.empty()) continue;
        const bool hop_faulted = faulted_ && u.hop == graph_.spec().fault_hop;
        if (hop_faulted != faulted_kind) continue;
        u.routings.assign(
            std::make_move_iterator(routings.begin() +
                                    static_cast<std::ptrdiff_t>(base)),
            std::make_move_iterator(
                routings.begin() +
                static_cast<std::ptrdiff_t>(base + u.valids.size())));
        base += u.valids.size();
        ++ctx.dispatches;  // one logical dispatch per unit, serial parity
      }
    }

    for (std::size_t i = 0; i < n_units; ++i) {
      Unit& u = units[i];
      if (!u.valids.empty()) {
        obs::SpanGuard resolve_span("fabric.resolve", obs::cat::kRuntime);
        resolve_span.arg("hop", u.hop);
        resolve_span.arg("epoch", u.epoch);
        resolve_unit(u, ctx);
      }
      rc[u.hop] = u.epoch + 1;
    }

    // Injection + bookkeeping for every epoch whose hop-0 unit resolved.
    while (injected < opened && rc[0] > injected) {
      const std::size_t e = injected;
      const bool in_measure =
          e >= opts_.warmup_epochs && e < measure_end;
      move_source_heads(e, ctx);
      if (e < measure_end) admit_arrivals(e, in_measure, ctx, rng, traffic);
      epoch_bookkeeping(e, in_measure, ctx);
      ++injected;
    }
  }

  metrics.gauge("fabric.pipeline.epochs_in_flight")
      .set(static_cast<double>(E));
  return finish_run(report, ctx, metrics);
}

rt::RuntimeReport FabricSim::finish_run(rt::RuntimeReport report,
                                        EpochContext& ctx,
                                        rt::MetricsRegistry& metrics) {
  // Residual backlog: messages still queued at exit, an explicit term of
  // the conservation identity (nonzero exactly when saturated).
  std::size_t residual = 0;
  std::size_t residual_measured = 0;
  auto tally = [&](const std::deque<Msg>& q) {
    residual += q.size();
    for (const Msg& m : q) residual_measured += m.measured ? 1 : 0;
  };
  for (const auto& q : source_q_) tally(q);
  const auto& counters = std::as_const(metrics).counters();
  auto counter_or_zero = [&](const std::string& name) -> std::uint64_t {
    // Read without creating: optional series (dropped.deflect) must not
    // materialize zero-valued scrape keys on campaigns that never use them.
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
  };
  for (std::size_t k = 0; k < graph_.hops(); ++k) {
    std::size_t hop_residual = 0;
    for (const Pool& pool : pools_[k]) {
      for (const auto& q : pool.voq) {
        hop_residual += q.size();
        tally(q);
      }
    }
    metrics.gauge(hop_metric(k, "residual"))
        .set(static_cast<double>(hop_residual));
    // Per-hop conservation: everything a hop accepted either moved on,
    // ejected, died on a dead chip, was reclaimed off-path, or is still
    // buffered here.
    const std::uint64_t accepted =
        metrics.counter(hop_metric(k, "accepted")).value();
    const std::uint64_t out =
        metrics.counter(hop_metric(k, "sent")).value() +
        metrics.counter(hop_metric(k, "delivered")).value() +
        metrics.counter(hop_metric(k, "dropped.fault")).value() +
        counter_or_zero(hop_metric(k, "dropped.deflect"));
    PCS_REQUIRE(accepted == out + hop_residual,
                "fabric hop " << k << " accounting broken: accepted "
                    << accepted << " != forwarded+delivered+dropped " << out
                    << " + residual " << hop_residual);
  }
  report.residual_backlog = residual;

  PCS_REQUIRE(ctx.total_offered ==
                  ctx.total_delivered + ctx.total_dropped + residual,
              "fabric conservation broken at exit: offered "
                  << ctx.total_offered << " != delivered "
                  << ctx.total_delivered << " + dropped " << ctx.total_dropped
                  << " + residual " << residual);
  PCS_REQUIRE(report.drained == (residual == 0),
              "drained flag disagrees with residual " << residual);

  metrics.counter("total.offered").add(ctx.total_offered);
  metrics.counter("total.delivered").add(ctx.total_delivered);
  metrics.counter("total.dropped").add(ctx.total_dropped);
  metrics.counter("total.residual").add(residual);
  metrics.counter("residual").add(residual_measured);
  metrics.counter("route_batch_dispatches").add(ctx.dispatches);
  metrics.counter("epochs.warmup").add(opts_.warmup_epochs);
  metrics.counter("epochs.measure").add(opts_.measure_epochs);
  metrics.counter("epochs.drain").add(report.drain_epochs_used);

  const Counter& delivered = metrics.counter("delivered");
  const Histogram& latency = metrics.histogram("latency_epochs");
  const double measured_offered =
      static_cast<double>(metrics.counter("offered").value());
  metrics.gauge("delivery_rate")
      .set(measured_offered > 0
               ? static_cast<double>(delivered.value()) / measured_offered
               : 0.0);
  metrics.gauge("mean_latency_epochs").set(latency.mean());
  metrics.gauge("throughput_per_epoch")
      .set(opts_.measure_epochs > 0
               ? static_cast<double>(delivered.value()) /
                     static_cast<double>(opts_.measure_epochs)
               : 0.0);
  metrics.gauge("offered_load")
      .set(opts_.measure_epochs > 0
               ? measured_offered /
                     (static_cast<double>(opts_.measure_epochs) *
                      static_cast<double>(graph_.sources()))
               : 0.0);
  metrics.gauge("backlog.residual").set(static_cast<double>(residual));
  metrics.gauge("saturated").set(report.saturated ? 1.0 : 0.0);
  metrics.gauge("fabric.hops").set(static_cast<double>(graph_.hops()));
  metrics.gauge("fabric.nodes").set(static_cast<double>(graph_.total_nodes()));
  metrics.gauge("fabric.sources").set(static_cast<double>(graph_.sources()));
  metrics.gauge("fabric.sinks").set(static_cast<double>(graph_.sinks()));
  return report;
}

}  // namespace pcs::fabric
