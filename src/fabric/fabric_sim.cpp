#include "fabric/fabric_sim.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "switch/make_switch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::fabric {

using rt::Counter;
using rt::Gauge;
using rt::Histogram;

namespace {

std::string hop_metric(std::size_t hop, const char* leaf) {
  std::ostringstream os;
  os << "fabric.hop" << hop << "." << leaf;
  return os.str();
}

}  // namespace

FabricSim::FabricSim(FabricSpec spec, FabricOptions opts,
                     TrafficFactory traffic)
    : graph_(std::move(spec)),
      opts_(std::move(opts)),
      traffic_factory_(std::move(traffic)) {
  PCS_REQUIRE(opts_.queue_depth >= 1, "fabric queue_depth must be >= 1");
  PCS_REQUIRE(static_cast<bool>(traffic_factory_),
              "FabricSim needs a traffic factory");

  const FabricSpec& sp = graph_.spec();
  SwitchSpec healthy_spec = sp.node;
  healthy_spec.faults.clear();
  healthy_ = pcs::make_switch(healthy_spec);
  healthy_capacity_ = healthy_->guaranteed_capacity();
  if (!sp.node.faults.empty()) {
    // Only hop `fault_hop` routes the fault-rewritten plan.  Grant budgets
    // everywhere still come from healthy_capacity_: the faulted plan
    // advertises zero guaranteed capacity (epsilon = n), which is the right
    // *contract* but would deadlock the fabric as a *budget*; instead the
    // hop over-grants optimistically and accounts every dead-chip loss.
    faulted_ = pcs::make_switch(sp.node);
  }

  const std::size_t H = graph_.hops();
  const std::size_t r = graph_.radix();
  source_q_.resize(graph_.sources());
  pools_.resize(H);
  credits_.assign(H >= 1 ? H - 1 : 0, {});
  for (std::size_t k = 0; k < H; ++k) {
    pools_[k].resize(graph_.nodes_at(k) * r);
    for (Pool& pool : pools_[k]) pool.voq.resize(r);
    if (k + 1 < H) {
      credits_[k].assign(graph_.nodes_at(k) * r,
                         static_cast<std::uint32_t>(sp.credits));
    }
    for (std::size_t node = 0; node < graph_.nodes_at(k); ++node) {
      alloc_.push_back(make_allocator(sp.alloc, r, r));
    }
  }
}

std::string FabricSim::name() const {
  std::ostringstream os;
  os << graph_.name() << " of " << healthy_->name();
  if (faulted_) os << " [hop " << graph_.spec().fault_hop << " faulted]";
  return os.str();
}

std::size_t FabricSim::in_flight() const {
  std::size_t n = 0;
  for (const auto& q : source_q_) n += q.size();
  for (const auto& hop : pools_)
    for (const Pool& pool : hop) n += pool.occupancy;
  return n;
}

void FabricSim::check_credit_mirror() const {
  // Credit-based flow control invariant: each channel's credit counter
  // mirrors the free space of the one downstream pool it feeds.
  const std::size_t r = graph_.radix();
  for (std::size_t k = 0; k + 1 < graph_.hops(); ++k) {
    for (std::size_t node = 0; node < graph_.nodes_at(k); ++node) {
      for (std::size_t d = 0; d < r; ++d) {
        const FabricGraph::Channel ch = graph_.channel(k, node, d);
        const Pool& pool = pools_[k + 1][ch.node * r + ch.inlink];
        const std::uint32_t credit = credits_[k][node * r + d];
        PCS_REQUIRE(credit + pool.occupancy == graph_.spec().credits,
                    "credit mirror broken on hop " << k << " node " << node
                        << " link " << d << ": credits=" << credit
                        << " occupancy=" << pool.occupancy << " capacity="
                        << graph_.spec().credits);
      }
    }
  }
}

/// Mutable per-run accounting shared between run() and serve_hop().
struct FabricSim::EpochContext {
  rt::MetricsRegistry* metrics = nullptr;
  std::size_t epoch = 0;
  std::size_t dispatches = 0;

  // Whole-campaign tallies (mirrored into total.* at every epoch check).
  std::uint64_t total_delivered = 0;
  std::uint64_t total_dropped = 0;
};

void FabricSim::serve_hop(std::size_t hop, EpochContext& ctx) {
  obs::SpanGuard hop_span("fabric.hop", obs::cat::kRuntime);
  hop_span.arg("hop", hop);

  rt::MetricsRegistry& metrics = *ctx.metrics;
  const std::size_t r = graph_.radix();
  const std::size_t H = graph_.hops();
  const bool last = hop + 1 == H;
  const bool hop_faulted = faulted_ && hop == graph_.spec().fault_hop;
  const sw::ConcentratorSwitch& node_switch =
      hop_faulted ? *faulted_ : *healthy_;
  const std::size_t nodes = graph_.nodes_at(hop);

  Counter& granted_ctr = metrics.counter(hop_metric(hop, "granted"));
  Counter& stalls_ctr = metrics.counter(hop_metric(hop, "credit_stalls"));
  Histogram& occ_hist = metrics.histogram(hop_metric(hop, "occupancy"));
  Histogram& hop_lat = metrics.histogram(hop_metric(hop, "latency_epochs"));

  // One valid-bit pattern per (node, out-link) with grants: knockout-style
  // per-output-group concentration.  `ports` keeps (input port, in-link) in
  // ascending port order so resolution pops VOQ fronts in grant order.
  struct Pattern {
    std::size_t node = 0;
    std::size_t d = 0;
    std::vector<std::pair<std::size_t, std::size_t>> ports;
  };
  std::vector<Pattern> meta;
  std::vector<BitVec> valids;

  {
    obs::SpanGuard alloc_span("fabric.alloc", obs::cat::kRuntime);
    alloc_span.arg("hop", hop);
    AllocProblem problem;
    problem.ins = r;
    problem.outs = r;
    std::vector<std::uint32_t> grants;
    for (std::size_t node = 0; node < nodes; ++node) {
      problem.queued.assign(r * r, 0);
      problem.cap_in.assign(r, static_cast<std::uint32_t>(graph_.in_block()));
      problem.cap_out.assign(r, 0);
      bool any = false;
      for (std::size_t e = 0; e < r; ++e) {
        const Pool& pool = pools_[hop][node * r + e];
        occ_hist.record(pool.occupancy);
        for (std::size_t d = 0; d < r; ++d) {
          const std::size_t q = pool.voq[d].size();
          problem.queued[e * r + d] = static_cast<std::uint32_t>(q);
          if (q > 0) any = true;
        }
      }
      if (!any) continue;
      for (std::size_t d = 0; d < r; ++d) {
        // Column budget: the out-block's wire count, the healthy plan's
        // guaranteed concentration capacity, and (between hops) the
        // channel's remaining credits.  Never the faulted capacity -- see
        // the constructor comment.
        std::size_t cap = std::min(graph_.out_block(), healthy_capacity_);
        if (!last) {
          const std::uint32_t credit = credits_[hop][node * r + d];
          if (credit < cap) cap = credit;
          if (cap == 0) {
            // Backpressure: traffic wants this link but credits gate it.
            bool wants = false;
            for (std::size_t e = 0; e < r && !wants; ++e) {
              wants = problem.queued[e * r + d] > 0;
            }
            if (wants) {
              stalls_ctr.add(1);
              PCS_TRACE_COUNTER("fabric.credit_stalls", 1);
            }
          }
        }
        problem.cap_out[d] = static_cast<std::uint32_t>(cap);
      }
      const std::size_t total =
          alloc_[hop * nodes + node]->allocate(problem, grants);
      if (opts_.check_invariants) {
        for (std::size_t e = 0; e < r; ++e) {
          std::uint32_t row = 0;
          for (std::size_t d = 0; d < r; ++d) {
            PCS_REQUIRE(grants[e * r + d] <= problem.queued[e * r + d],
                        "allocator granted beyond VOQ occupancy");
            row += grants[e * r + d];
          }
          PCS_REQUIRE(row <= problem.cap_in[e], "allocator row budget broken");
        }
        for (std::size_t d = 0; d < r; ++d) {
          std::uint32_t col = 0;
          for (std::size_t e = 0; e < r; ++e) col += grants[e * r + d];
          PCS_REQUIRE(col <= problem.cap_out[d],
                      "allocator column budget broken");
        }
      }
      if (total == 0) continue;
      granted_ctr.add(total);
      for (std::size_t d = 0; d < r; ++d) {
        Pattern pat;
        pat.node = node;
        pat.d = d;
        BitVec valid(node_switch.inputs());
        for (std::size_t e = 0; e < r; ++e) {
          const std::uint32_t g = grants[e * r + d];
          for (std::uint32_t rank = 0; rank < g; ++rank) {
            const std::size_t port = e * graph_.in_block() + rank;
            valid.set(port, true);
            pat.ports.emplace_back(port, e);
          }
        }
        if (pat.ports.empty()) continue;
        meta.push_back(std::move(pat));
        valids.push_back(std::move(valid));
      }
    }
  }

  if (valids.empty()) return;

  // All of the hop's per-output-group patterns resolve in ONE batched
  // dispatch through the plan executor -- the fabric keeps the
  // one-dispatch-per-hop-per-epoch discipline of the single-switch runtime.
  std::vector<sw::SwitchRouting> routings;
  {
    obs::SpanGuard route_span("fabric.route", obs::cat::kRuntime);
    route_span.arg("hop", hop);
    route_span.arg("patterns", valids.size());
    routings = node_switch.route_batch(valids);
    ++ctx.dispatches;
  }

  obs::SpanGuard resolve_span("fabric.resolve", obs::cat::kRuntime);
  resolve_span.arg("hop", hop);
  Counter& sent_ctr = metrics.counter(hop_metric(hop, "sent"));
  Counter& hop_delivered = metrics.counter(hop_metric(hop, "delivered"));
  Counter& fault_drops = metrics.counter(hop_metric(hop, "dropped.fault"));
  Counter& delivered = metrics.counter("delivered");
  Counter& dropped = metrics.counter("dropped");
  Histogram& latency = metrics.histogram("latency_epochs");

  for (std::size_t i = 0; i < meta.size(); ++i) {
    const Pattern& pat = meta[i];
    const sw::SwitchRouting& routing = routings[i];
    for (const auto& [port, e] : pat.ports) {
      Pool& pool = pools_[hop][pat.node * r + e];
      PCS_REQUIRE(!pool.voq[pat.d].empty(),
                  "granted VOQ drained out from under the resolver");
      Msg msg = pool.voq[pat.d].front();
      pool.voq[pat.d].pop_front();
      --pool.occupancy;
      if (hop > 0) {
        // Departing the pool frees one slot: return the credit to the one
        // upstream channel that feeds this in-link.
        const FabricGraph::Upstream up = graph_.upstream(hop, pat.node, e);
        ++credits_[hop - 1][up.node * r + up.link];
      }
      const bool routed = routing.output_of_input[port] >= 0;
      if (!routed) {
        // Grant budgets never exceed the healthy guaranteed capacity, so an
        // unrouted grant is only legal where dead chips can eat messages.
        PCS_REQUIRE(hop_faulted,
                    "healthy hop " << hop << " failed to route a granted "
                        "message within its guaranteed capacity (node "
                        << pat.node << ", link " << pat.d << ")");
        fault_drops.add(1);
        ++ctx.total_dropped;
        if (msg.measured) dropped.add(1);
        continue;
      }
      hop_lat.record(ctx.epoch - msg.hop_entered);
      if (last) {
        const std::size_t sink = pat.node * r + pat.d;
        PCS_REQUIRE(sink == msg.dest,
                    "fabric misdelivery: sink " << sink << " != dest "
                        << msg.dest << " (hop " << hop << ", node "
                        << pat.node << ")");
        hop_delivered.add(1);
        ++ctx.total_delivered;
        if (msg.measured) {
          delivered.add(1);
          latency.record(ctx.epoch - msg.born);
        }
      } else {
        const FabricGraph::Channel ch = graph_.channel(hop, pat.node, pat.d);
        PCS_REQUIRE(credits_[hop][pat.node * r + pat.d] > 0,
                    "fabric sent beyond the channel's credits");
        --credits_[hop][pat.node * r + pat.d];
        Pool& down = pools_[hop + 1][ch.node * r + ch.inlink];
        const std::size_t next_d =
            graph_.out_link(hop + 1, ch.node, msg.dest);
        msg.hop_entered = static_cast<std::uint32_t>(ctx.epoch);
        down.voq[next_d].push_back(msg);
        ++down.occupancy;
        sent_ctr.add(1);
        metrics.counter(hop_metric(hop + 1, "accepted")).add(1);
      }
    }
  }
}

rt::RuntimeReport FabricSim::run(rt::MetricsRegistry& metrics) {
  const std::size_t r = graph_.radix();
  Rng rng(opts_.seed);
  std::unique_ptr<traffic::TrafficSource> traffic =
      traffic_factory_(graph_.sources());
  PCS_REQUIRE(traffic && traffic->width() == graph_.sources(),
              "fabric traffic generator width must equal sources()="
                  << graph_.sources());

  Counter& offered = metrics.counter("offered");
  Counter& rejected = metrics.counter("rejected_queue_full");
  Counter& dropped = metrics.counter("dropped");
  Histogram& backlog_hist = metrics.histogram("backlog");
  Counter& hop0_accepted = metrics.counter(hop_metric(0, "accepted"));

  EpochContext ctx;
  ctx.metrics = &metrics;

  std::uint64_t total_offered = 0;
  const std::size_t measure_end = opts_.warmup_epochs + opts_.measure_epochs;

  rt::RuntimeReport report;
  std::size_t epoch = 0;
  while (true) {
    const bool in_measure =
        epoch >= opts_.warmup_epochs && epoch < measure_end;
    const bool in_drain = epoch >= measure_end;
    if (in_drain) {
      if (in_flight() == 0) {
        report.drained = true;
        break;
      }
      if (epoch - measure_end >= opts_.drain_epochs_max) {
        report.saturated = true;
        break;
      }
      // Same commit-to-execute drain accounting as FabricRuntime::run.
      ++report.drain_epochs_used;
    }

    obs::SpanGuard epoch_span("fabric.epoch", obs::cat::kRuntime);
    epoch_span.arg("epoch", epoch);
    ctx.epoch = epoch;

    for (std::size_t k = graph_.hops(); k-- > 0;) serve_hop(k, ctx);

    // Source-queue heads enter hop 0 when its pool has a free slot: VOQ
    // occupancy gates injection just as credits gate the inner hops.
    for (std::size_t g = 0; g < graph_.sources(); ++g) {
      if (source_q_[g].empty()) continue;
      Pool& pool = pools_[0][g];  // node g / r, in-link g % r
      if (pool.occupancy >= graph_.spec().credits) continue;
      Msg msg = source_q_[g].front();
      source_q_[g].pop_front();
      msg.hop_entered = static_cast<std::uint32_t>(epoch);
      pool.voq[graph_.out_link(0, g / r, msg.dest)].push_back(msg);
      ++pool.occupancy;
      hop0_accepted.add(1);
    }

    if (!in_drain) {
      const BitVec arrivals = traffic->next_valid(rng);
      for (std::size_t g = 0; g < graph_.sources(); ++g) {
        if (!arrivals.get(g)) continue;
        ++total_offered;
        if (in_measure) offered.add(1);
        if (source_q_[g].size() >= opts_.queue_depth) {
          // Door rejection: the bounded injection queue is full.
          ++ctx.total_dropped;
          rejected.add(1);
          if (in_measure) dropped.add(1);
          continue;
        }
        Msg msg;
        // The destination draw happens only for accepted arrivals, after the
        // queue-depth gate, so uniform sources replay the legacy rng stream
        // bit for bit while permutation patterns consume no randomness here.
        msg.dest = traffic->dest_for(rng, g, graph_.sinks());
        msg.born = static_cast<std::uint32_t>(epoch);
        msg.measured = in_measure;
        source_q_[g].push_back(msg);
      }
    }

    const std::size_t backlog = in_flight();
    if (in_measure) backlog_hist.record(backlog);
    // Per-epoch conservation: nothing is created or destroyed untallied.
    PCS_REQUIRE(total_offered ==
                    ctx.total_delivered + ctx.total_dropped + backlog,
                "fabric conservation broken at epoch "
                    << epoch << ": offered " << total_offered
                    << " != delivered " << ctx.total_delivered << " + dropped "
                    << ctx.total_dropped << " + in-flight " << backlog);
    if (opts_.check_invariants) check_credit_mirror();
    ++epoch;
  }

  // Residual backlog: messages still queued at exit, an explicit term of
  // the conservation identity (nonzero exactly when saturated).
  std::size_t residual = 0;
  std::size_t residual_measured = 0;
  auto tally = [&](const std::deque<Msg>& q) {
    residual += q.size();
    for (const Msg& m : q) residual_measured += m.measured ? 1 : 0;
  };
  for (const auto& q : source_q_) tally(q);
  for (std::size_t k = 0; k < graph_.hops(); ++k) {
    std::size_t hop_residual = 0;
    for (const Pool& pool : pools_[k]) {
      for (const auto& q : pool.voq) {
        hop_residual += q.size();
        tally(q);
      }
    }
    metrics.gauge(hop_metric(k, "residual"))
        .set(static_cast<double>(hop_residual));
    // Per-hop conservation: everything a hop accepted either moved on,
    // ejected, died on a dead chip, or is still buffered here.
    const std::uint64_t accepted =
        metrics.counter(hop_metric(k, "accepted")).value();
    const std::uint64_t out =
        metrics.counter(hop_metric(k, "sent")).value() +
        metrics.counter(hop_metric(k, "delivered")).value() +
        metrics.counter(hop_metric(k, "dropped.fault")).value();
    PCS_REQUIRE(accepted == out + hop_residual,
                "fabric hop " << k << " accounting broken: accepted "
                    << accepted << " != forwarded+delivered+faulted " << out
                    << " + residual " << hop_residual);
  }
  report.residual_backlog = residual;

  PCS_REQUIRE(total_offered ==
                  ctx.total_delivered + ctx.total_dropped + residual,
              "fabric conservation broken at exit: offered "
                  << total_offered << " != delivered " << ctx.total_delivered
                  << " + dropped " << ctx.total_dropped << " + residual "
                  << residual);
  PCS_REQUIRE(report.drained == (residual == 0),
              "drained flag disagrees with residual " << residual);

  metrics.counter("total.offered").add(total_offered);
  metrics.counter("total.delivered").add(ctx.total_delivered);
  metrics.counter("total.dropped").add(ctx.total_dropped);
  metrics.counter("total.residual").add(residual);
  metrics.counter("residual").add(residual_measured);
  metrics.counter("route_batch_dispatches").add(ctx.dispatches);
  metrics.counter("epochs.warmup").add(opts_.warmup_epochs);
  metrics.counter("epochs.measure").add(opts_.measure_epochs);
  metrics.counter("epochs.drain").add(report.drain_epochs_used);

  const Counter& delivered = metrics.counter("delivered");
  const Histogram& latency = metrics.histogram("latency_epochs");
  const double measured_offered =
      static_cast<double>(metrics.counter("offered").value());
  metrics.gauge("delivery_rate")
      .set(measured_offered > 0
               ? static_cast<double>(delivered.value()) / measured_offered
               : 0.0);
  metrics.gauge("mean_latency_epochs").set(latency.mean());
  metrics.gauge("throughput_per_epoch")
      .set(opts_.measure_epochs > 0
               ? static_cast<double>(delivered.value()) /
                     static_cast<double>(opts_.measure_epochs)
               : 0.0);
  metrics.gauge("offered_load")
      .set(opts_.measure_epochs > 0
               ? measured_offered /
                     (static_cast<double>(opts_.measure_epochs) *
                      static_cast<double>(graph_.sources()))
               : 0.0);
  metrics.gauge("backlog.residual").set(static_cast<double>(residual));
  metrics.gauge("saturated").set(report.saturated ? 1.0 : 0.0);
  metrics.gauge("fabric.hops").set(static_cast<double>(graph_.hops()));
  metrics.gauge("fabric.nodes").set(static_cast<double>(graph_.total_nodes()));
  metrics.gauge("fabric.sources").set(static_cast<double>(graph_.sources()));
  metrics.gauge("fabric.sinks").set(static_cast<double>(graph_.sinks()));
  return report;
}

}  // namespace pcs::fabric
