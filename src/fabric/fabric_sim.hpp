// Closed-loop multi-hop fabric simulator: many plan-compiled concentrator
// switches composed into a MIN (omega / butterfly / fat-tree / single) with
// credit-based flow control on every inter-hop channel and per-hop virtual
// output queues.  This is ROADMAP item 1: the paper builds one efficient
// multichip switch; the fabric shows what a network of them sustains.
//
// Model, per epoch (one fabric cycle):
//   * Every node holds, per in-link, a buffer POOL of `credits` slots
//     organized as radix VOQ FIFOs (one per out-link) sharing the pool.
//     A pool is fed by exactly one upstream channel, so the channel's
//     credit counter mirrors the pool's free space exactly -- classic
//     credit-based flow control with the invariant
//     credits == capacity - occupancy (checked under check_invariants).
//   * A pluggable allocator (round robin or iSLIP-style separable matching,
//     see allocator.hpp) picks which queued messages each node presents:
//     row budgets are the in-block port widths, column budgets are
//     min(out-block width, the node's guaranteed concentration capacity,
//     remaining downstream credits).
//   * Grants toward one out-link form one valid-bit pattern on the node's
//     switch -- knockout-style per-output-group concentration -- and ALL
//     patterns of a hop are resolved by a single route_batch() call through
//     the fused PlanExecutor, preserving the one-dispatch-per-epoch-per-hop
//     batching discipline of the single-switch runtime.
//   * Hops are served downstream-first, so a forwarded message waits at
//     least one epoch per hop; then source-queue heads move into hop 0's
//     pools (injection gated by pool space), then fresh arrivals enter the
//     bounded per-source queues (door rejection counts as a drop).
//   * The out-link a message departs on is chosen ONCE, when it enters a
//     hop's pool, by the spec's RoutePolicy (route_policy.hpp):
//     "deterministic" destination-digit self-routing, or minimal-"adaptive"
//     over the topology's equal-cost candidates with bounded deflection.
//
// Pipelined execution (epochs_in_flight > 1): the per-(epoch, hop) unit of
// work -- allocate, route, resolve -- obeys a wavefront dependency order
// (unit(e, k) needs unit(e, k+1), unit(e-1, k), and unit(e-1, k-1)), so up
// to min(epochs_in_flight, ceil(hops / 2)) units from successive epochs are
// independent at any instant.  The scheduler tracks per-hop sequence
// tickets (resolved-epoch watermarks), runs every ready unit's allocation,
// then fuses ALL their route_batch dispatches into one batch per switch
// kind -- widening the 64-pattern word lanes the executor vectorizes over
// and amortizing per-dispatch cost -- and resolves in ascending epoch
// order.  All bookkeeping stays on the caller's thread in deterministic
// order; worker threads only ever run inside route_batch itself.  Campaign
// counters are bit-identical for every epochs_in_flight value, and
// epochs_in_flight=1 short-circuits to the serial schedule, bit-identical
// (including traces) to the pre-pipeline loop.
//
// Grant budgets never exceed the HEALTHY plan's guaranteed capacity, so on
// healthy hops every granted message must route (PCS_REQUIRE enforces the
// concentration contract live).  The hop carrying chip faults routes the
// fault-rewritten plan: granted messages that land on dead chips are lost
// and accounted as fabric.hop<k>.dropped.fault -- never silently.  Under
// adaptive routing, deflected messages that exhaust their misroute budget
// drain through fabric.hop<k>.dropped.deflect the same way.
//
// Conservation is enforced every epoch:
//   total.offered == total.delivered + total.dropped + in_flight
// and at exit with the residual backlog as an explicit term (the same
// identity the single-switch runtime exports; see fabric_runtime.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fabric/allocator.hpp"
#include "fabric/route_policy.hpp"
#include "fabric/topology.hpp"
#include "traffic/traffic_source.hpp"
#include "runtime/fabric_runtime.hpp"
#include "runtime/metrics.hpp"
#include "switch/concentrator.hpp"
#include "util/rng.hpp"

namespace pcs::fabric {

struct FabricOptions {
  std::size_t queue_depth = 4;  ///< per-source injection queue bound (>= 1)
  std::uint64_t seed = 1;
  std::size_t warmup_epochs = 32;
  std::size_t measure_epochs = 256;
  std::size_t drain_epochs_max = 1024;  ///< drain cap; exceeding it = saturated
  bool check_invariants = false;  ///< credit/pool mirror + allocator checks
  /// Epochs simultaneously resident in the pipelined scheduler.  0 resolves
  /// the default at construction: PCS_FABRIC_EPOCHS_IN_FLIGHT when set,
  /// else 1.  1 is the serial schedule (bit-identical to the pre-pipeline
  /// loop); campaign counters are identical for every value.
  std::size_t epochs_in_flight = 0;
};

class FabricSim {
 public:
  /// Produces the arrival process over the fabric's sources() wires; called
  /// once at the start of run().  Destinations are drawn uniformly over
  /// sinks() from the campaign RNG (split from opts.seed), so runs are
  /// deterministic per seed.
  using TrafficFactory =
      std::function<std::unique_ptr<traffic::TrafficSource>(std::size_t width)>;

  FabricSim(FabricSpec spec, FabricOptions opts, TrafficFactory traffic);

  /// Run one warmup -> measurement -> drain campaign (same phase and drain
  /// accounting semantics as rt::FabricRuntime::run).  Unprefixed counters
  /// cover messages born in the measurement window; "total.*" counters
  /// cover the whole campaign and satisfy
  ///   total.offered == total.delivered + total.dropped + total.residual.
  /// Per-hop series live under "fabric.hop<k>.*" (indices zero-padded to
  /// the campaign's widest hop, so scrapes order numerically) and satisfy
  ///   accepted == sent|delivered + dropped.fault + dropped.deflect
  ///              + residual.
  rt::RuntimeReport run(rt::MetricsRegistry& metrics);

  const FabricGraph& graph() const noexcept { return graph_; }
  const FabricOptions& options() const noexcept { return opts_; }
  /// The resolved pipeline depth (options().epochs_in_flight or the
  /// PCS_FABRIC_EPOCHS_IN_FLIGHT / 1 default).
  std::size_t epochs_in_flight() const noexcept { return epochs_in_flight_; }
  /// "omega(hops=3, radix=2) of Revsort(256->192)" -- for reports.
  std::string name() const;

 private:
  struct Msg {
    std::uint32_t dest = 0;
    std::uint32_t born = 0;         ///< injection epoch
    std::uint32_t hop_entered = 0;  ///< epoch it entered the current pool
    std::uint16_t deflections = 0;  ///< misroutes absorbed (adaptive only)
    bool measured = false;
  };

  /// One in-link's buffer: `radix` VOQ FIFOs sharing a `credits`-slot pool.
  struct Pool {
    std::vector<std::deque<Msg>> voq;
    std::size_t occupancy = 0;
  };

  struct EpochContext;  // per-run mutable accounting (defined in .cpp)
  struct Unit;          // one (epoch, hop) allocate/route/resolve stage

  rt::RuntimeReport run_serial(rt::MetricsRegistry& metrics, EpochContext& ctx,
                               Rng& rng, traffic::TrafficSource& traffic);
  rt::RuntimeReport run_pipelined(rt::MetricsRegistry& metrics,
                                  EpochContext& ctx, Rng& rng,
                                  traffic::TrafficSource& traffic);

  void alloc_unit(Unit& u, EpochContext& ctx);
  void resolve_unit(Unit& u, EpochContext& ctx);
  void serve_hop_serial(std::size_t hop, std::size_t epoch, EpochContext& ctx);
  RouteChoice choose_entry(std::size_t hop, std::size_t node, const Pool& pool,
                           const Msg& msg);
  void move_source_heads(std::size_t epoch, EpochContext& ctx);
  void admit_arrivals(std::size_t epoch, bool in_measure, EpochContext& ctx,
                      Rng& rng, traffic::TrafficSource& traffic);
  /// Fold epoch `epoch`'s attributed tallies, record the derived backlog
  /// (schedule-independent, so it matches the serial loop bit for bit), and
  /// enforce the structural conservation identity.  Returns the backlog.
  std::uint64_t epoch_bookkeeping(std::size_t epoch, bool in_measure,
                                  EpochContext& ctx);
  rt::RuntimeReport finish_run(rt::RuntimeReport report, EpochContext& ctx,
                               rt::MetricsRegistry& metrics);

  std::string hop_metric(std::size_t hop, const char* leaf) const;
  std::size_t in_flight() const;
  void check_credit_mirror() const;

  FabricGraph graph_;
  FabricOptions opts_;
  TrafficFactory traffic_factory_;

  std::unique_ptr<sw::ConcentratorSwitch> healthy_;
  std::unique_ptr<sw::ConcentratorSwitch> faulted_;  ///< null when no faults
  std::size_t healthy_capacity_ = 0;
  std::unique_ptr<RoutePolicy> policy_;
  std::size_t epochs_in_flight_ = 1;  ///< resolved from opts / env
  std::vector<std::uint32_t> voq_scratch_;  ///< per-choice VOQ depth view

  std::vector<std::deque<Msg>> source_q_;
  /// pools_[hop][node * radix + inlink]
  std::vector<std::vector<Pool>> pools_;
  /// credits_[hop][node * radix + link], hop < hops() - 1
  std::vector<std::vector<std::uint32_t>> credits_;
  /// alloc_[hop * nodes + node]: pointer state persists across epochs
  std::vector<std::unique_ptr<Allocator>> alloc_;
};

}  // namespace pcs::fabric
