#include "fabric/fabric_spec.hpp"

#include <bit>

#include "util/assert.hpp"
#include "util/digest.hpp"

namespace pcs::fabric {

Topology topology_from_string(const std::string& s) {
  if (s == "single") return Topology::kSingle;
  if (s == "omega") return Topology::kOmega;
  if (s == "butterfly") return Topology::kButterfly;
  if (s == "fattree") return Topology::kFatTree;
  PCS_REQUIRE(false, "unknown fabric topology '"
                         << s << "' (single | omega | butterfly | fattree)");
}

const char* topology_name(Topology t) noexcept {
  switch (t) {
    case Topology::kSingle: return "single";
    case Topology::kOmega: return "omega";
    case Topology::kButterfly: return "butterfly";
    case Topology::kFatTree: return "fattree";
  }
  return "?";
}

}  // namespace pcs::fabric

namespace pcs {

void FabricSpec::validate() const {
  const std::size_t r = radix;
  const std::size_t H = hops;
  PCS_REQUIRE(H >= 1, "FabricSpec.hops: need at least one hop, got " << H);
  PCS_REQUIRE(r >= 1, "FabricSpec.radix: must be >= 1, got " << r);
  switch (topology) {
    case fabric::Topology::kSingle:
      PCS_REQUIRE(H == 1, "FabricSpec.hops: topology=single is the 1-hop "
                          "fabric; hops=" << H);
      break;
    case fabric::Topology::kOmega:
    case fabric::Topology::kButterfly:
      break;
    case fabric::Topology::kFatTree:
      PCS_REQUIRE(H == 3, "FabricSpec.hops: topology=fattree is the 2-level "
                          "(3-hop) fat-tree (leaf-up, spine, leaf-down); "
                          "hops=" << H);
      break;
  }
  PCS_REQUIRE(node.n % r == 0,
              "FabricSpec.node.n: " << node.n << " must divide by radix=" << r
                                    << " (equal in-link blocks)");
  PCS_REQUIRE(node.m % r == 0,
              "FabricSpec.node.m: " << node.m << " must divide by radix=" << r
                                    << " (equal out-link blocks)");
  PCS_REQUIRE(node.m / r <= node.n / r,
              "FabricSpec.node: out-block " << node.m / r
                  << " wider than downstream in-block " << node.n / r
                  << ": a channel could overrun its buffer ports");
  PCS_REQUIRE(credits >= 1,
              "FabricSpec.credits: credit-based flow control needs >= 1, got "
                  << credits);
  PCS_REQUIRE(fault_hop < H, "FabricSpec.fault_hop: " << fault_hop
                                 << " out of range for hops=" << H);
  PCS_REQUIRE(route == "deterministic" || route == "adaptive",
              "FabricSpec.route: '" << route
                  << "' is not a route policy (deterministic | adaptive)");
  PCS_REQUIRE(deflect_max == 0 || route == "adaptive",
              "FabricSpec.deflect_max: " << deflect_max
                  << " needs route=adaptive (deterministic routing never "
                     "deflects)");
  PCS_REQUIRE(route == "deterministic" || r <= 64,
              "FabricSpec.radix: adaptive routing supports radix <= 64, got "
                  << r);

  // The node switch must compile to a plan (the fabric routes through the
  // fused PlanExecutor batch path) and, when healthy, concentrate at least
  // one message per epoch or the fabric can never move anything.
  SwitchSpec healthy = node;
  healthy.faults.clear();
  plan::SwitchPlan p = make_switch_plan(healthy);
  PCS_REQUIRE(p.epsilon < p.m,
              "FabricSpec.node: plan " << p.name
                  << " has zero guaranteed capacity (m=" << p.m
                  << ", epsilon=" << p.epsilon
                  << "); the fabric would deadlock");
}

SwitchSpec FabricSpec::node_spec_at(std::size_t hop) const {
  PCS_REQUIRE(hop < hops, "node_spec_at: hop " << hop << " out of range for "
                                                  "hops=" << hops);
  SwitchSpec spec = node;
  if (hop != fault_hop) spec.faults.clear();
  return spec;
}

std::uint64_t FabricSpec::digest(plan::ExecMode exec) const {
  Digest d;
  d.mix_u64(node.digest(exec));
  d.mix_byte(static_cast<std::uint8_t>(topology));
  d.mix_u64(hops);
  d.mix_u64(radix);
  d.mix_u64(credits);
  // Length-prefixed strings so ("rr", "deterministic") can never collide
  // with a concatenation-ambiguous pair -- same framing as SwitchSpec.
  d.mix_u64(alloc.size());
  for (char c : alloc) d.mix_byte(static_cast<std::uint8_t>(c));
  d.mix_u64(route.size());
  for (char c : route) d.mix_byte(static_cast<std::uint8_t>(c));
  d.mix_u64(deflect_max);
  d.mix_u64(fault_hop);
  return d.value();
}

}  // namespace pcs
