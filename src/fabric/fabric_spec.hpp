// The declarative description of a multi-hop fabric, promoted to the same
// public standing as SwitchSpec: `pcs::FabricSpec` + `pcs::make_fabric`
// (make_fabric.hpp) are the one construction path for fabrics, exactly as
// `pcs::SwitchSpec` + `pcs::make_switch` are for single switches.
//
// A FabricSpec names the wiring shape (topology / hops / radix), the
// per-node switch (a full SwitchSpec; faults apply to hop `fault_hop`
// only), the flow-control depth (credits), the VOQ allocator, and the
// routing policy ("deterministic" destination-digit self-routing, or
// "adaptive" minimal-adaptive over the topology's equal-cost candidate
// links with an optional bounded-deflection fallback).
//
// validate() throws ContractViolation naming the offending field;
// digest() is the stable FNV-1a fingerprint over EVERY field (golden-pinned
// by test_fabric_spec.cpp) and keys the serving daemon's campaign replies.
#pragma once

#include <cstdint>
#include <string>

#include "switch/make_switch.hpp"

namespace pcs::fabric {

enum class Topology : unsigned char { kSingle, kOmega, kButterfly, kFatTree };

/// "single" | "omega" | "butterfly" | "fattree"; throws on unknown names.
Topology topology_from_string(const std::string& s);
const char* topology_name(Topology t) noexcept;

}  // namespace pcs::fabric

namespace pcs {

struct FabricSpec {
  fabric::Topology topology = fabric::Topology::kOmega;
  std::size_t hops = 3;   ///< switch stages a message traverses (>= 1)
  std::size_t radix = 2;  ///< links per node; the destination digit base
  /// Per-node switch.  Must be a plan family (make_switch_plan succeeds);
  /// n and m must divide by radix, and the healthy plan must keep a
  /// positive guaranteed capacity (m - epsilon >= 1) or nothing can move.
  SwitchSpec node;
  std::size_t credits = 8;   ///< per-channel credit pool (downstream VOQ slots)
  std::string alloc = "rr";  ///< VOQ allocator: "rr" | "islip"
  /// Routing policy at pool-entry link choice: "deterministic" (the
  /// destination-digit rule, bit-identical to the pre-policy fabric) or
  /// "adaptive" (minimal-adaptive over candidate links by remaining
  /// credits, with bounded deflection when every candidate is starved).
  std::string route = "deterministic";
  /// Adaptive only: misroutes a message may absorb before the accounted
  /// `dropped.deflect` path reclaims it (livelock protection).  0 disables
  /// deflection (starved messages wait on their best candidate link).
  std::size_t deflect_max = 0;
  std::size_t fault_hop = 0;  ///< hop whose plan receives node.faults

  /// Throws ContractViolation naming the offending field (FabricSpec.hops,
  /// FabricSpec.radix, ...) for every constraint the wiring, the node plan,
  /// or the routing policy would violate.
  void validate() const;

  /// The switch spec hop `hop` routes: `node` with the fault list kept only
  /// at `fault_hop` (every other hop routes the healthy plan).
  SwitchSpec node_spec_at(std::size_t hop) const;

  /// Stable FNV-1a fingerprint over EVERY spec field: the node switch's own
  /// digest, the wiring shape, flow control, allocator and route policy
  /// strings (length-prefixed), deflection cap, and fault hop.  `exec`
  /// feeds through the node digest for the same reason as SwitchSpec: plans
  /// built for one engine must not be served as the other.  Pinned by a
  /// golden test (test_fabric_spec.cpp) so it cannot silently drift.
  std::uint64_t digest(plan::ExecMode exec = plan::ExecMode::kFused) const;
};

}  // namespace pcs

namespace pcs::fabric {

/// Fabric code predates the promotion to pcs:: and names the spec
/// unqualified; keep that spelling valid.
using ::pcs::FabricSpec;

}  // namespace pcs::fabric
