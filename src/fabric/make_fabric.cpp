#include "fabric/make_fabric.hpp"

#include <utility>

namespace pcs {

std::unique_ptr<fabric::FabricSim> make_fabric(
    FabricSpec spec, fabric::FabricOptions opts,
    fabric::FabricSim::TrafficFactory traffic) {
  // FabricSim's FabricGraph member re-validates, but validate eagerly so a
  // bad spec fails here, before any switch plan compiles.
  spec.validate();
  return std::make_unique<fabric::FabricSim>(std::move(spec), std::move(opts),
                                             std::move(traffic));
}

}  // namespace pcs
