// The one public construction path for every fabric in the library --
// the multi-hop mirror of switch/make_switch.hpp.
//
// A FabricSpec (fabric/fabric_spec.hpp) declares the whole fabric: the
// topology, hop count, radix, the per-node SwitchSpec, channel credits, the
// allocator, and the route policy with its deflection budget.  make_fabric()
// validates it (ContractViolation messages name the offending
// "FabricSpec.<field>") and returns the ready-to-run simulator.
// runtime/fabric_config.cpp, the serving daemon, the benches, and anything
// outside src/ construct fabrics exclusively through here; FabricSim's own
// constructor remains for tests that need to poke at half-built pieces.
//
// FabricSpec::digest() fingerprints every field (golden-pinned by
// test_fabric_spec.cpp), so caches and replay logs can key on the spec the
// same way the serving daemon keys plans on SwitchSpec::digest().
#pragma once

#include <memory>

#include "fabric/fabric_sim.hpp"
#include "fabric/fabric_spec.hpp"

namespace pcs {

/// Build the fabric simulator: validates `spec` (throws ContractViolation
/// naming the bad field), resolves options (epochs_in_flight = 0 defers to
/// PCS_FABRIC_EPOCHS_IN_FLIGHT, else 1), and instantiates the node switch
/// plans once, shared across every hop.  `traffic` produces the arrival
/// process over the fabric's sources; see FabricSim::TrafficFactory.
std::unique_ptr<fabric::FabricSim> make_fabric(
    FabricSpec spec, fabric::FabricOptions opts,
    fabric::FabricSim::TrafficFactory traffic);

}  // namespace pcs
