#include "fabric/route_policy.hpp"

#include "util/assert.hpp"

namespace pcs::fabric {

namespace {

class DeterministicPolicy final : public RoutePolicy {
 public:
  RouteChoice choose(const FabricGraph& g,
                     const RouteContext& ctx) const override {
    return RouteChoice{g.out_link(ctx.hop, ctx.node, ctx.dest), false, false};
  }
  bool reads_costs() const noexcept override { return false; }
  const char* name() const noexcept override { return "deterministic"; }
};

class MinimalAdaptivePolicy final : public RoutePolicy {
 public:
  explicit MinimalAdaptivePolicy(std::size_t deflect_max)
      : deflect_max_(deflect_max) {}

  RouteChoice choose(const FabricGraph& g,
                     const RouteContext& ctx) const override {
    const std::size_t r = g.radix();
    const bool last = ctx.hop + 1 == g.hops();
    PCS_REQUIRE(ctx.voq_depth != nullptr,
                "adaptive route policy needs VOQ depths");
    PCS_REQUIRE(last == (ctx.credits == nullptr),
                "adaptive route policy: credits exactly on non-final hops");
    const std::uint64_t cand = g.candidate_mask(ctx.hop, ctx.node, ctx.dest);

    // Pick the best link within `mask` by (credits desc, VOQ depth asc,
    // index asc).  The last hop has no credit axis (ejection is free).
    auto best_in = [&](std::uint64_t mask,
                       bool require_credit) -> std::ptrdiff_t {
      std::ptrdiff_t best = -1;
      for (std::size_t d = 0; d < r; ++d) {
        if (!(mask >> d & 1)) continue;
        const std::uint32_t cr = last ? 1 : ctx.credits[d];
        if (require_credit && cr == 0) continue;
        if (best < 0) {
          best = static_cast<std::ptrdiff_t>(d);
          continue;
        }
        const std::uint32_t bcr =
            last ? 1 : ctx.credits[static_cast<std::size_t>(best)];
        if (cr > bcr ||
            (cr == bcr &&
             ctx.voq_depth[d] < ctx.voq_depth[static_cast<std::size_t>(best)]))
          best = static_cast<std::ptrdiff_t>(d);
      }
      return best;
    };

    if (cand == 0) {
      // Off every minimal path: a previous deflection put it here.  Escape
      // onto the best credited link if budget remains; otherwise reclaim it
      // through the accounted drop path (livelock protection).
      if (last || ctx.deflections >= deflect_max_) return {0, false, true};
      const std::uint64_t all =
          r == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << r) - 1;
      std::ptrdiff_t link = best_in(all, true);
      if (link < 0) link = best_in(all, false);  // all starved: park lowest-cost
      return {static_cast<std::size_t>(link), true, false};
    }

    const std::ptrdiff_t minimal = best_in(cand, false);
    if (last || ctx.credits[static_cast<std::size_t>(minimal)] > 0)
      return {static_cast<std::size_t>(minimal), false, false};

    // Every candidate is credit-starved.  Deflect onto a credited
    // non-candidate link when the budget allows; else wait on the best
    // candidate (the allocator will serve it once credits return).
    if (ctx.deflections < deflect_max_) {
      const std::uint64_t all =
          r == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << r) - 1;
      const std::ptrdiff_t detour = best_in(all & ~cand, true);
      if (detour >= 0) return {static_cast<std::size_t>(detour), true, false};
    }
    return {static_cast<std::size_t>(minimal), false, false};
  }
  bool reads_costs() const noexcept override { return true; }
  const char* name() const noexcept override { return "adaptive"; }

 private:
  std::size_t deflect_max_;
};

}  // namespace

std::unique_ptr<RoutePolicy> make_route_policy(const std::string& name,
                                               std::size_t deflect_max) {
  if (name == "deterministic") {
    PCS_REQUIRE(deflect_max == 0,
                "deterministic routing never deflects; deflect_max="
                    << deflect_max);
    return std::make_unique<DeterministicPolicy>();
  }
  if (name == "adaptive") return std::make_unique<MinimalAdaptivePolicy>(deflect_max);
  PCS_REQUIRE(false, "unknown route policy '" << name
                         << "' (deterministic | adaptive)");
}

}  // namespace pcs::fabric
