// Pluggable pool-entry link choice for the fabric simulator.
//
// A message's out-link at hop k is chosen once, when it enters hop k's VOQ
// pool (injection for hop 0, the inter-hop push for the rest): the VOQ it
// joins IS the link it will depart on.  The policy makes that choice:
//
//   deterministic  the destination-digit rule (FabricGraph::out_link),
//                  bit-identical to the fabric before policies existed.
//   adaptive       minimal-adaptive: among the topology's equal-cost
//                  candidate links (FabricGraph::candidate_mask -- all
//                  radix up-links on the fat-tree's up-hop, the unique
//                  digit link elsewhere) prefer the most remaining
//                  credits, tie-broken by shortest VOQ then lowest index.
//                  When EVERY candidate is credit-starved and the message
//                  has deflection budget left, it may misroute onto the
//                  best non-candidate link (counted fabric.hop<k>.
//                  deflections).  Off-path messages whose budget is spent
//                  -- or that reach a hop with no escape -- take the
//                  accounted drop path (fabric.hop<k>.dropped.deflect), so
//                  every conservation PCS_REQUIRE keeps balancing and a
//                  deflected message can never livelock.
//
// Policies are stateless and deterministic: the choice is a pure function
// of the context, so pipelined schedules that replay the same entry
// sequence reproduce the same fabric bit for bit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fabric/topology.hpp"

namespace pcs::fabric {

/// Everything the policy may inspect for one message entering `hop`.
struct RouteContext {
  std::size_t hop = 0;
  std::size_t node = 0;         ///< node at `hop` whose pool is being entered
  std::size_t dest = 0;         ///< sink index
  std::size_t deflections = 0;  ///< misroutes this message already absorbed
  /// This node's per-out-link remaining credits (radix entries); null on
  /// the last hop, where ejection is never credit-gated.
  const std::uint32_t* credits = nullptr;
  /// Depth of each VOQ in the pool being entered (radix entries); null when
  /// the caller knows the policy never reads costs (deterministic).
  const std::uint32_t* voq_depth = nullptr;
};

struct RouteChoice {
  std::size_t link = 0;
  bool deflected = false;  ///< link is off every minimal path to dest
  bool drop = false;       ///< no viable link: take the accounted drop path
};

class RoutePolicy {
 public:
  virtual ~RoutePolicy() = default;
  virtual RouteChoice choose(const FabricGraph& g,
                             const RouteContext& ctx) const = 0;
  /// True when choose() reads credits/voq_depth (the caller skips building
  /// the cost arrays for policies that never look).
  virtual bool reads_costs() const noexcept = 0;
  virtual const char* name() const noexcept = 0;
};

/// "deterministic" | "adaptive"; throws on unknown names.  `deflect_max`
/// is the adaptive policy's misroute budget per message (0 = never
/// deflect; starved messages wait on their best candidate link).
std::unique_ptr<RoutePolicy> make_route_policy(const std::string& name,
                                               std::size_t deflect_max);

}  // namespace pcs::fabric
