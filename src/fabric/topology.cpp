#include "fabric/topology.hpp"

#include <sstream>

#include "switch/make_switch.hpp"
#include "util/assert.hpp"

namespace pcs::fabric {

Topology topology_from_string(const std::string& s) {
  if (s == "single") return Topology::kSingle;
  if (s == "omega") return Topology::kOmega;
  if (s == "butterfly") return Topology::kButterfly;
  if (s == "fattree") return Topology::kFatTree;
  PCS_REQUIRE(false, "unknown fabric topology '"
                         << s << "' (single | omega | butterfly | fattree)");
}

const char* topology_name(Topology t) noexcept {
  switch (t) {
    case Topology::kSingle: return "single";
    case Topology::kOmega: return "omega";
    case Topology::kButterfly: return "butterfly";
    case Topology::kFatTree: return "fattree";
  }
  return "?";
}

namespace {

std::size_t ipow(std::size_t base, std::size_t exp) {
  std::size_t v = 1;
  for (std::size_t i = 0; i < exp; ++i) {
    PCS_REQUIRE(v <= (std::size_t{1} << 24) / base,
                "fabric size " << base << "^" << exp
                               << " exceeds the sanity bound");
    v *= base;
  }
  return v;
}

}  // namespace

FabricGraph::FabricGraph(FabricSpec spec) : spec_(std::move(spec)) {
  const std::size_t r = spec_.radix;
  const std::size_t H = spec_.hops;
  PCS_REQUIRE(H >= 1, "fabric needs at least one hop, got " << H);
  PCS_REQUIRE(r >= 1, "fabric radix must be >= 1, got " << r);
  switch (spec_.topology) {
    case Topology::kSingle:
      PCS_REQUIRE(H == 1, "topology=single is the 1-hop fabric; hops=" << H);
      nodes_per_hop_ = 1;
      break;
    case Topology::kOmega:
    case Topology::kButterfly:
      nodes_per_hop_ = ipow(r, H - 1);
      break;
    case Topology::kFatTree:
      PCS_REQUIRE(H == 3, "topology=fattree is the 2-level (3-hop) fat-tree "
                          "(leaf-up, spine, leaf-down); hops=" << H);
      nodes_per_hop_ = r;  // r leaves up, r spines, r leaves down
      break;
  }
  total_nodes_ = nodes_per_hop_ * H;
  // fattree sources = r leaves x r host links = r^2, same as nodes*radix;
  // the others are nodes_per_hop * radix = r^H.
  sources_ = nodes_per_hop_ * r;
  sinks_ = sources_;

  PCS_REQUIRE(spec_.node.n % r == 0,
              "node inputs n=" << spec_.node.n
                               << " must divide by radix=" << r
                               << " (equal in-link blocks)");
  PCS_REQUIRE(spec_.node.m % r == 0,
              "node outputs m=" << spec_.node.m
                                << " must divide by radix=" << r
                                << " (equal out-link blocks)");
  in_block_ = spec_.node.n / r;
  out_block_ = spec_.node.m / r;
  PCS_REQUIRE(out_block_ <= in_block_,
              "out-block " << out_block_ << " wider than downstream in-block "
                           << in_block_
                           << ": a channel could overrun its buffer ports");
  PCS_REQUIRE(spec_.credits >= 1,
              "credit-based flow control needs credits >= 1, got "
                  << spec_.credits);
  PCS_REQUIRE(spec_.fault_hop < H,
              "fault_hop=" << spec_.fault_hop << " out of range for hops="
                           << H);

  // The node switch must compile to a plan (the fabric routes through the
  // fused PlanExecutor batch path) and, when healthy, concentrate at least
  // one message per epoch or the fabric can never move anything.
  SwitchSpec healthy = spec_.node;
  healthy.faults.clear();
  plan::SwitchPlan p = make_switch_plan(healthy);
  PCS_REQUIRE(p.epsilon < p.m,
              "node plan " << p.name << " has zero guaranteed capacity (m="
                           << p.m << ", epsilon=" << p.epsilon
                           << "); the fabric would deadlock");
}

std::size_t FabricGraph::nodes_at(std::size_t hop) const {
  PCS_REQUIRE(hop < spec_.hops, "hop " << hop << " out of range");
  return nodes_per_hop_;
}

FabricGraph::Channel FabricGraph::channel(std::size_t hop, std::size_t node,
                                          std::size_t link) const {
  const std::size_t r = spec_.radix;
  const std::size_t H = spec_.hops;
  const std::size_t S = nodes_per_hop_;
  PCS_REQUIRE(hop + 1 < H, "channel(): hop " << hop << " is the last hop");
  PCS_REQUIRE(node < S && link < r, "channel(): node/link out of range");
  switch (spec_.topology) {
    case Topology::kSingle:
      break;  // unreachable: single has no inter-hop channels
    case Topology::kOmega: {
      // Perfect shuffle on radix-r digits: drop the MSB digit of `node`,
      // append `link`.  The dropped digit becomes the downstream in-link,
      // so channels land on distinct in-links (a permutation of the stage
      // boundary).
      const std::size_t msb_div = S / r;  // r^(H-2)
      return Channel{static_cast<std::uint32_t>((node % msb_div) * r + link),
                     static_cast<std::uint32_t>(node / msb_div)};
    }
    case Topology::kButterfly: {
      // Boundary `hop` flips digit `hop` (MSB-first among the H-1 node
      // digits): downstream node = node with that digit set to `link`, and
      // the replaced digit names the downstream in-link.
      const std::size_t place = ipow(r, H - 2 - hop);
      const std::size_t digit = (node / place) % r;
      const std::size_t down = node + (link - digit) * place;
      return Channel{static_cast<std::uint32_t>(down),
                     static_cast<std::uint32_t>(digit)};
    }
    case Topology::kFatTree:
      // hop 0 (leaf s) -- link d --> spine d, in-link s;
      // hop 1 (spine t) -- link d --> down-leaf d, in-link t.
      return Channel{static_cast<std::uint32_t>(link),
                     static_cast<std::uint32_t>(node)};
  }
  PCS_REQUIRE(false, "channel(): unreachable");
}

std::size_t FabricGraph::out_link(std::size_t hop, std::size_t node,
                                  std::size_t dest) const {
  const std::size_t r = spec_.radix;
  const std::size_t H = spec_.hops;
  PCS_REQUIRE(hop < H && node < nodes_per_hop_ && dest < sinks_,
              "out_link(): hop/node/dest out of range");
  switch (spec_.topology) {
    case Topology::kSingle:
      return dest;  // one node; out-link IS the sink (dest < radix)
    case Topology::kOmega:
    case Topology::kButterfly:
      // Destination-tag self-routing: hop k consumes digit k of `dest`,
      // MSB-first over H base-r digits.  After the last hop, node*r+link
      // equals dest exactly (checked on ejection by FabricSim).
      return (dest / ipow(r, H - 1 - hop)) % r;
    case Topology::kFatTree: {
      const std::size_t leaf = dest / r;  // destination leaf
      const std::size_t port = dest % r;  // host port on that leaf
      if (hop == 0) return port % r;      // spread up-links by port digit
      if (hop == 1) return leaf;          // spine picks the destination leaf
      return port;                        // down-leaf ejects on the port
    }
  }
  PCS_REQUIRE(false, "out_link(): unreachable");
}

FabricGraph::Upstream FabricGraph::upstream(std::size_t hop, std::size_t node,
                                            std::size_t inlink) const {
  const std::size_t r = spec_.radix;
  const std::size_t H = spec_.hops;
  const std::size_t S = nodes_per_hop_;
  PCS_REQUIRE(hop >= 1 && hop < H, "upstream(): hop " << hop << " has no "
                                                         "upstream stage");
  PCS_REQUIRE(node < S && inlink < r, "upstream(): node/inlink out of range");
  switch (spec_.topology) {
    case Topology::kSingle:
      break;  // unreachable
    case Topology::kOmega: {
      // Invert the shuffle: upstream node = inlink digit prepended to the
      // downstream node's upper digits; the appended digit was the link.
      const std::size_t msb_div = S / r;
      return Upstream{
          static_cast<std::uint32_t>(inlink * msb_div + node / r),
          static_cast<std::uint32_t>(node % r)};
    }
    case Topology::kButterfly: {
      // Invert the digit replacement at boundary hop-1: the upstream node
      // had digit `inlink` where the downstream node has its own digit,
      // and the link equals the downstream digit.
      const std::size_t b = hop - 1;
      const std::size_t place = ipow(r, H - 2 - b);
      const std::size_t digit = (node / place) % r;
      const std::size_t up = node + (inlink - digit) * place;
      return Upstream{static_cast<std::uint32_t>(up),
                      static_cast<std::uint32_t>(digit)};
    }
    case Topology::kFatTree:
      // Inverse of channel(): spine `node` in-link s came from leaf s link
      // `node`; down-leaf `node` in-link t came from spine t link `node`.
      return Upstream{static_cast<std::uint32_t>(inlink),
                      static_cast<std::uint32_t>(node)};
  }
  PCS_REQUIRE(false, "upstream(): unreachable");
}

std::string FabricGraph::name() const {
  std::ostringstream os;
  os << topology_name(spec_.topology) << "(hops=" << spec_.hops
     << ", radix=" << spec_.radix << ")";
  return os.str();
}

}  // namespace pcs::fabric
