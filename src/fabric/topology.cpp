#include "fabric/topology.hpp"

#include <sstream>

#include "switch/make_switch.hpp"
#include "util/assert.hpp"

namespace pcs::fabric {

namespace {

std::size_t ipow(std::size_t base, std::size_t exp) {
  std::size_t v = 1;
  for (std::size_t i = 0; i < exp; ++i) {
    PCS_REQUIRE(v <= (std::size_t{1} << 24) / base,
                "fabric size " << base << "^" << exp
                               << " exceeds the sanity bound");
    v *= base;
  }
  return v;
}

}  // namespace

FabricGraph::FabricGraph(FabricSpec spec) : spec_(std::move(spec)) {
  // Every shape/plan/policy constraint lives in the spec itself now, with
  // ContractViolation messages naming the offending FabricSpec field.
  spec_.validate();
  const std::size_t r = spec_.radix;
  const std::size_t H = spec_.hops;
  switch (spec_.topology) {
    case Topology::kSingle:
      nodes_per_hop_ = 1;
      break;
    case Topology::kOmega:
    case Topology::kButterfly:
      nodes_per_hop_ = ipow(r, H - 1);
      break;
    case Topology::kFatTree:
      nodes_per_hop_ = r;  // r leaves up, r spines, r leaves down
      break;
  }
  total_nodes_ = nodes_per_hop_ * H;
  // fattree sources = r leaves x r host links = r^2, same as nodes*radix;
  // the others are nodes_per_hop * radix = r^H.
  sources_ = nodes_per_hop_ * r;
  sinks_ = sources_;
  in_block_ = spec_.node.n / r;
  out_block_ = spec_.node.m / r;
}

std::size_t FabricGraph::nodes_at(std::size_t hop) const {
  PCS_REQUIRE(hop < spec_.hops, "hop " << hop << " out of range");
  return nodes_per_hop_;
}

FabricGraph::Channel FabricGraph::channel(std::size_t hop, std::size_t node,
                                          std::size_t link) const {
  const std::size_t r = spec_.radix;
  const std::size_t H = spec_.hops;
  const std::size_t S = nodes_per_hop_;
  PCS_REQUIRE(hop + 1 < H, "channel(): hop " << hop << " is the last hop");
  PCS_REQUIRE(node < S && link < r, "channel(): node/link out of range");
  switch (spec_.topology) {
    case Topology::kSingle:
      break;  // unreachable: single has no inter-hop channels
    case Topology::kOmega: {
      // Perfect shuffle on radix-r digits: drop the MSB digit of `node`,
      // append `link`.  The dropped digit becomes the downstream in-link,
      // so channels land on distinct in-links (a permutation of the stage
      // boundary).
      const std::size_t msb_div = S / r;  // r^(H-2)
      return Channel{static_cast<std::uint32_t>((node % msb_div) * r + link),
                     static_cast<std::uint32_t>(node / msb_div)};
    }
    case Topology::kButterfly: {
      // Boundary `hop` flips digit `hop` (MSB-first among the H-1 node
      // digits): downstream node = node with that digit set to `link`, and
      // the replaced digit names the downstream in-link.
      const std::size_t place = ipow(r, H - 2 - hop);
      const std::size_t digit = (node / place) % r;
      const std::size_t down = node + (link - digit) * place;
      return Channel{static_cast<std::uint32_t>(down),
                     static_cast<std::uint32_t>(digit)};
    }
    case Topology::kFatTree:
      // hop 0 (leaf s) -- link d --> spine d, in-link s;
      // hop 1 (spine t) -- link d --> down-leaf d, in-link t.
      return Channel{static_cast<std::uint32_t>(link),
                     static_cast<std::uint32_t>(node)};
  }
  PCS_REQUIRE(false, "channel(): unreachable");
}

std::size_t FabricGraph::out_link(std::size_t hop, std::size_t node,
                                  std::size_t dest) const {
  const std::size_t r = spec_.radix;
  const std::size_t H = spec_.hops;
  PCS_REQUIRE(hop < H && node < nodes_per_hop_ && dest < sinks_,
              "out_link(): hop/node/dest out of range");
  switch (spec_.topology) {
    case Topology::kSingle:
      return dest;  // one node; out-link IS the sink (dest < radix)
    case Topology::kOmega:
    case Topology::kButterfly:
      // Destination-tag self-routing: hop k consumes digit k of `dest`,
      // MSB-first over H base-r digits.  After the last hop, node*r+link
      // equals dest exactly (checked on ejection by FabricSim).
      return (dest / ipow(r, H - 1 - hop)) % r;
    case Topology::kFatTree: {
      const std::size_t leaf = dest / r;  // destination leaf
      const std::size_t port = dest % r;  // host port on that leaf
      if (hop == 0) return port % r;      // spread up-links by port digit
      if (hop == 1) return leaf;          // spine picks the destination leaf
      return port;                        // down-leaf ejects on the port
    }
  }
  PCS_REQUIRE(false, "out_link(): unreachable");
}

std::uint64_t FabricGraph::candidate_mask(std::size_t hop, std::size_t node,
                                          std::size_t dest) const {
  const std::size_t r = spec_.radix;
  const std::size_t H = spec_.hops;
  PCS_REQUIRE(hop < H && node < nodes_per_hop_ && dest < sinks_,
              "candidate_mask(): hop/node/dest out of range");
  PCS_REQUIRE(r <= 64, "candidate_mask(): radix " << r << " exceeds the "
                                                     "64-link mask width");
  switch (spec_.topology) {
    case Topology::kSingle:
      return std::uint64_t{1} << dest;  // one node; out-link IS the sink
    case Topology::kOmega: {
      // After hop k the node index holds the k destination digits already
      // consumed (the shuffle appends the chosen link digit), so dest is
      // reachable iff node's low k digits equal dest's top k digits -- and
      // then the unique minimal link is the standard digit rule.
      const std::size_t consumed = ipow(r, hop);            // r^k
      const std::size_t remaining = ipow(r, H - hop);       // r^(H-k)
      if (node % consumed != dest / remaining) return 0;
      return std::uint64_t{1} << out_link(hop, node, dest);
    }
    case Topology::kButterfly: {
      // Boundary b rewrites node digit b, so by hop k digits 0..k-1
      // (MSB-first) are frozen: dest's leaf (dest / r) must agree with the
      // node on those digits or no remaining boundary can repair them.
      const std::size_t tail = ipow(r, H - 1 - hop);  // digits still mutable
      if (node / tail != (dest / r) / tail) return 0;
      return std::uint64_t{1} << out_link(hop, node, dest);
    }
    case Topology::kFatTree: {
      // Up-hop: every spine reaches every leaf, so all r up-links are
      // equal-cost candidates (the genuinely multipath stage).  Spine:
      // the destination leaf's link, always reachable.  Down-leaf: the
      // host port, but only on the destination leaf itself.
      if (hop == 0) {
        return r == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << r) - 1;
      }
      if (hop == 1) return std::uint64_t{1} << (dest / r);
      if (node != dest / r) return 0;
      return std::uint64_t{1} << (dest % r);
    }
  }
  PCS_REQUIRE(false, "candidate_mask(): unreachable");
}

FabricGraph::Upstream FabricGraph::upstream(std::size_t hop, std::size_t node,
                                            std::size_t inlink) const {
  const std::size_t r = spec_.radix;
  const std::size_t H = spec_.hops;
  const std::size_t S = nodes_per_hop_;
  PCS_REQUIRE(hop >= 1 && hop < H, "upstream(): hop " << hop << " has no "
                                                         "upstream stage");
  PCS_REQUIRE(node < S && inlink < r, "upstream(): node/inlink out of range");
  switch (spec_.topology) {
    case Topology::kSingle:
      break;  // unreachable
    case Topology::kOmega: {
      // Invert the shuffle: upstream node = inlink digit prepended to the
      // downstream node's upper digits; the appended digit was the link.
      const std::size_t msb_div = S / r;
      return Upstream{
          static_cast<std::uint32_t>(inlink * msb_div + node / r),
          static_cast<std::uint32_t>(node % r)};
    }
    case Topology::kButterfly: {
      // Invert the digit replacement at boundary hop-1: the upstream node
      // had digit `inlink` where the downstream node has its own digit,
      // and the link equals the downstream digit.
      const std::size_t b = hop - 1;
      const std::size_t place = ipow(r, H - 2 - b);
      const std::size_t digit = (node / place) % r;
      const std::size_t up = node + (inlink - digit) * place;
      return Upstream{static_cast<std::uint32_t>(up),
                      static_cast<std::uint32_t>(digit)};
    }
    case Topology::kFatTree:
      // Inverse of channel(): spine `node` in-link s came from leaf s link
      // `node`; down-leaf `node` in-link t came from spine t link `node`.
      return Upstream{static_cast<std::uint32_t>(inlink),
                      static_cast<std::uint32_t>(node)};
  }
  PCS_REQUIRE(false, "upstream(): unreachable");
}

std::string FabricGraph::name() const {
  std::ostringstream os;
  os << topology_name(spec_.topology) << "(hops=" << spec_.hops
     << ", radix=" << spec_.radix << ")";
  return os.str();
}

}  // namespace pcs::fabric
