// Multi-hop fabric topologies built from plan-compiled concentrator
// switches (ROADMAP item 1: the scale unlock).
//
// A fabric is `hops` stages of identical (n, m) concentrator nodes joined
// by fixed inter-hop channels.  Every node has `radix` in-links and `radix`
// out-links: its n input ports are split into radix in-blocks of n/radix
// ports and its m outputs into radix out-blocks of m/radix wires, so a
// channel carries at most m/radix messages per epoch into a downstream
// block of n/radix ports.  Which downstream node an out-link reaches is the
// topology:
//
//   single     one node, hops == 1 (the degenerate fabric: radix ejection
//              links straight to the sinks).
//   omega      radix^(hops-1) nodes per stage; boundary wiring is the
//              radix-ary perfect shuffle (drop the node index's most
//              significant digit, append the out-link digit).
//   butterfly  same node count; boundary b replaces digit b of the node
//              index with the out-link digit (radix-ary butterfly).
//   fattree    2-level fat-tree, hops == 3: radix leaves x radix spines,
//              traversed leaf-up -> spine -> leaf-down.
//
// All four are self-routing by destination digits (the omega/butterfly
// destination-tag property; arXiv:1012.5597's fundamental arrangements):
// out_link() at hop k inspects one digit of the destination, and following
// channel() through every hop lands on exactly sink `dest` from any source.
// The topology tests verify that property exhaustively on small fabrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/fabric_spec.hpp"
#include "switch/make_switch.hpp"

namespace pcs::fabric {

/// The resolved wiring of a FabricSpec.  Channels are 1:1 with downstream
/// in-links, so (hop, node, out-link) fully names a channel and its credit
/// counter.
class FabricGraph {
 public:
  struct Channel {
    std::uint32_t node;    ///< downstream node index at hop+1
    std::uint32_t inlink;  ///< downstream in-link the channel feeds
  };

  explicit FabricGraph(FabricSpec spec);

  const FabricSpec& spec() const noexcept { return spec_; }
  std::size_t hops() const noexcept { return spec_.hops; }
  std::size_t radix() const noexcept { return spec_.radix; }

  /// Nodes at hop k (uniform per topology; kept per-hop for clarity).
  std::size_t nodes_at(std::size_t hop) const;
  /// Total nodes across all hops.
  std::size_t total_nodes() const noexcept { return total_nodes_; }

  /// Injection channels: one bounded source queue each, mapped onto hop 0's
  /// (node, in-link) pairs; source g feeds node g / radix, in-link g % radix.
  std::size_t sources() const noexcept { return sources_; }
  /// Ejection channels: sink of a message leaving last-hop node s on
  /// out-link d is s * radix + d.  Destinations are sink indices.
  std::size_t sinks() const noexcept { return sinks_; }

  /// Input ports per in-block (n / radix) and wires per out-block
  /// (m / radix) of every node.
  std::size_t in_block() const noexcept { return in_block_; }
  std::size_t out_block() const noexcept { return out_block_; }

  /// The downstream end of channel (hop, node, link).  hop < hops() - 1.
  Channel channel(std::size_t hop, std::size_t node, std::size_t link) const;

  /// The out-link a message for sink `dest` takes at (hop, node): the
  /// destination-digit rule.  The node argument only matters for fat-tree
  /// sanity checks; digit routing is node-independent.
  std::size_t out_link(std::size_t hop, std::size_t node,
                       std::size_t dest) const;

  /// Bit d set iff out-link d of (hop, node) lies on a minimal path to sink
  /// `dest`.  Zero exactly when `dest` is unreachable from this node -- a
  /// deflected message wandered off every minimal path and can only be
  /// reclaimed by the accounted drop path.  Omega/butterfly paths are
  /// unique (singleton or empty mask); the fat-tree's up-hop exposes all
  /// `radix` equal-cost up-links.  Requires radix <= 64 (adaptive routing's
  /// candidate-set representation; validated by FabricSpec::validate).
  std::uint64_t candidate_mask(std::size_t hop, std::size_t node,
                               std::size_t dest) const;

  /// candidate_mask(hop, node, dest) != 0.
  bool reachable(std::size_t hop, std::size_t node, std::size_t dest) const {
    return candidate_mask(hop, node, dest) != 0;
  }

  /// The upstream channel feeding (hop, node, inlink); hop >= 1.  Used to
  /// return credits when a message departs a downstream VOQ pool.
  struct Upstream {
    std::uint32_t node;  ///< upstream node index at hop-1
    std::uint32_t link;  ///< upstream out-link
  };
  Upstream upstream(std::size_t hop, std::size_t node, std::size_t inlink) const;

  /// "omega(hops=3, radix=2)" -- prefix of the fabric's display name.
  std::string name() const;

 private:
  FabricSpec spec_;
  std::size_t nodes_per_hop_ = 0;  ///< uniform for single/omega/butterfly
  std::size_t total_nodes_ = 0;
  std::size_t sources_ = 0;
  std::size_t sinks_ = 0;
  std::size_t in_block_ = 0;
  std::size_t out_block_ = 0;
};

}  // namespace pcs::fabric
