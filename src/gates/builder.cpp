#include "gates/builder.hpp"

#include <vector>

#include "util/assert.hpp"

namespace pcs::gates {

NodeId Builder::or_tree(std::span<const NodeId> xs) {
  if (xs.empty()) return c_->const_zero();
  std::vector<NodeId> level(xs.begin(), xs.end());
  while (level.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(c_->add_or(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

NodeId Builder::and_tree(std::span<const NodeId> xs) {
  if (xs.empty()) return c_->const_one();
  std::vector<NodeId> level(xs.begin(), xs.end());
  while (level.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(c_->add_and(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

NodeId Builder::steer2(NodeId l, NodeId gl, NodeId r, NodeId gr) {
  return c_->add_or(c_->add_and(l, gl), c_->add_and(r, gr));
}

NodeId Builder::mux(NodeId sel, NodeId a, NodeId b) {
  NodeId nsel = c_->add_not(sel);
  return c_->add_or(c_->add_and(sel, a), c_->add_and(nsel, b));
}

NodeId Builder::at_least(std::span<const NodeId> thermo, std::size_t t) {
  if (t == 0) return c_->const_one();
  if (t > thermo.size()) return c_->const_zero();
  return thermo[t - 1];
}

std::vector<NodeId> Builder::thermometer_add(std::span<const NodeId> a,
                                             std::span<const NodeId> b) {
  const std::size_t la = a.size();
  const std::size_t lb = b.size();
  std::vector<NodeId> out;
  out.reserve(la + lb);
  for (std::size_t k = 0; k < la + lb; ++k) {
    // out[k] = (a + b >= k+1) = OR over splits p + q = k+1 of
    // (a >= p AND b >= q), with p in [max(0, k+1-lb), min(la, k+1)].
    std::vector<NodeId> terms;
    const std::size_t target = k + 1;
    std::size_t p_lo = target > lb ? target - lb : 0;
    std::size_t p_hi = target < la ? target : la;
    for (std::size_t p = p_lo; p <= p_hi; ++p) {
      std::size_t q = target - p;
      NodeId ap = at_least(a, p);
      NodeId bq = at_least(b, q);
      if (p == 0) {
        terms.push_back(bq);
      } else if (q == 0) {
        terms.push_back(ap);
      } else {
        terms.push_back(c_->add_and(ap, bq));
      }
    }
    out.push_back(or_tree(terms));
  }
  return out;
}

std::vector<NodeId> Builder::thermometer_count(std::span<const NodeId> bits) {
  if (bits.empty()) return {};
  // Binary merge: each input bit is a length-1 thermometer code; repeatedly
  // thermometer_add adjacent pairs.
  std::vector<std::vector<NodeId>> level;
  level.reserve(bits.size());
  for (NodeId b : bits) level.push_back({b});
  while (level.size() > 1) {
    std::vector<std::vector<NodeId>> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(thermometer_add(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  PCS_REQUIRE(level[0].size() == bits.size(), "thermometer_count length");
  return level[0];
}

}  // namespace pcs::gates
