// Higher-level construction helpers over Circuit: balanced OR/AND trees,
// two-gate-deep steered selectors, multiplexers, and thermometer-code adders.
//
// These are the idioms the reconstructed hyperconcentrator data and control
// paths are written in (see hyper/hyper_circuit.*).
#pragma once

#include <span>
#include <vector>

#include "gates/circuit.hpp"

namespace pcs::gates {

class Builder {
 public:
  explicit Builder(Circuit& c) : c_(&c) {}

  Circuit& circuit() noexcept { return *c_; }

  /// Balanced OR tree over the given nodes; depth = ceil(lg count).
  /// An empty span yields constant 0.
  NodeId or_tree(std::span<const NodeId> xs);

  /// Balanced AND tree over the given nodes; depth = ceil(lg count).
  /// An empty span yields constant 1.
  NodeId and_tree(std::span<const NodeId> xs);

  /// Steered two-way combine: (l AND gl) OR (r AND gr).  Exactly two gate
  /// delays from l/r to the output -- the node of the data-path selection
  /// tree that gives the hyperconcentrator its 2 lg n message delay.
  NodeId steer2(NodeId l, NodeId gl, NodeId r, NodeId gr);

  /// Classic multiplexer: sel ? a : b.  Three gates, two gate delays from
  /// a/b, three from sel (through the NOT).
  NodeId mux(NodeId sel, NodeId a, NodeId b);

  /// Thermometer-code addition.  Inputs a (length la) and b (length lb)
  /// encode integers in unary (a[i] = 1 iff value > i, nonincreasing).
  /// Output (length la + lb) encodes their sum: out[k] = OR over p+q=k+1,
  /// p<=la, q<=lb of (a has >= p ones AND b has >= q ones).
  /// This is the merge step of the setup-time population counter.
  std::vector<NodeId> thermometer_add(std::span<const NodeId> a,
                                      std::span<const NodeId> b);

  /// Thermometer population count of the given bits: out[k] = 1 iff more
  /// than k of the inputs are 1.  Built by binary merging; the output length
  /// equals the input length.
  std::vector<NodeId> thermometer_count(std::span<const NodeId> bits);

 private:
  /// a-with->= semantics: node meaning "value >= t", where t in [0, len];
  /// t = 0 is constant one, t = len+... handled by caller.
  NodeId at_least(std::span<const NodeId> thermo, std::size_t t);

  Circuit* c_;
};

}  // namespace pcs::gates
