#include "gates/circuit.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pcs::gates {

NodeId Circuit::add_node(NodeKind kind, NodeId a, NodeId b) {
  if (kind != NodeKind::kInput && kind != NodeKind::kConstZero &&
      kind != NodeKind::kConstOne) {
    PCS_REQUIRE(a < nodes_.size(), "gate operand a out of range");
    if (kind != NodeKind::kNot) {
      PCS_REQUIRE(b < nodes_.size(), "gate operand b out of range");
    }
  }
  nodes_.push_back(Node{kind, a, b});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Circuit::add_input() {
  NodeId id = add_node(NodeKind::kInput, 0, 0);
  inputs_.push_back(id);
  return id;
}

NodeId Circuit::const_zero() {
  if (const_zero_ == UINT32_MAX) const_zero_ = add_node(NodeKind::kConstZero, 0, 0);
  return const_zero_;
}

NodeId Circuit::const_one() {
  if (const_one_ == UINT32_MAX) const_one_ = add_node(NodeKind::kConstOne, 0, 0);
  return const_one_;
}

NodeId Circuit::add_not(NodeId a) { return add_node(NodeKind::kNot, a, 0); }
NodeId Circuit::add_and(NodeId a, NodeId b) { return add_node(NodeKind::kAnd, a, b); }
NodeId Circuit::add_or(NodeId a, NodeId b) { return add_node(NodeKind::kOr, a, b); }
NodeId Circuit::add_xor(NodeId a, NodeId b) { return add_node(NodeKind::kXor, a, b); }

void Circuit::mark_output(NodeId id) {
  PCS_REQUIRE(id < nodes_.size(), "output id out of range");
  outputs_.push_back(id);
}

std::size_t Circuit::gate_count() const noexcept {
  std::size_t gates = 0;
  for (const Node& n : nodes_) {
    if (n.kind != NodeKind::kInput && n.kind != NodeKind::kConstZero &&
        n.kind != NodeKind::kConstOne) {
      ++gates;
    }
  }
  return gates;
}

std::vector<std::uint32_t> Circuit::node_depths() const {
  std::vector<std::uint32_t> depth(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    switch (n.kind) {
      case NodeKind::kInput:
      case NodeKind::kConstZero:
      case NodeKind::kConstOne:
        depth[i] = 0;
        break;
      case NodeKind::kNot:
        depth[i] = depth[n.a] + 1;
        break;
      default:
        depth[i] = std::max(depth[n.a], depth[n.b]) + 1;
        break;
    }
  }
  return depth;
}

std::vector<std::uint32_t> Circuit::output_depths() const {
  std::vector<std::uint32_t> depth = node_depths();
  std::vector<std::uint32_t> out;
  out.reserve(outputs_.size());
  for (NodeId id : outputs_) out.push_back(depth[id]);
  return out;
}

std::uint32_t Circuit::depth() const {
  std::uint32_t best = 0;
  for (std::uint32_t d : output_depths()) best = std::max(best, d);
  return best;
}

std::vector<NodeId> Circuit::instantiate(const Circuit& sub,
                                         std::span<const NodeId> input_bindings) {
  PCS_REQUIRE(input_bindings.size() == sub.input_count(),
              "instantiate binding count");
  for (NodeId b : input_bindings) {
    PCS_REQUIRE(b < nodes_.size(), "instantiate binding id");
  }
  std::vector<NodeId> map(sub.nodes_.size());
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < sub.nodes_.size(); ++i) {
    const Node& n = sub.nodes_[i];
    switch (n.kind) {
      case NodeKind::kInput:
        map[i] = input_bindings[next_input++];
        break;
      case NodeKind::kConstZero:
        map[i] = const_zero();
        break;
      case NodeKind::kConstOne:
        map[i] = const_one();
        break;
      case NodeKind::kNot:
        map[i] = add_not(map[n.a]);
        break;
      case NodeKind::kAnd:
        map[i] = add_and(map[n.a], map[n.b]);
        break;
      case NodeKind::kOr:
        map[i] = add_or(map[n.a], map[n.b]);
        break;
      case NodeKind::kXor:
        map[i] = add_xor(map[n.a], map[n.b]);
        break;
    }
  }
  std::vector<NodeId> outs;
  outs.reserve(sub.outputs_.size());
  for (NodeId id : sub.outputs_) outs.push_back(map[id]);
  return outs;
}

std::vector<std::int64_t> Circuit::output_depths_from(
    std::span<const NodeId> sources) const {
  std::vector<std::int64_t> depth(nodes_.size(), -1);
  for (NodeId s : sources) {
    PCS_REQUIRE(s < nodes_.size(), "output_depths_from source id");
    depth[s] = 0;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.kind == NodeKind::kInput || n.kind == NodeKind::kConstZero ||
        n.kind == NodeKind::kConstOne) {
      continue;  // keeps 0 if a source, -1 otherwise
    }
    std::int64_t longest = depth[n.a];
    if (n.kind != NodeKind::kNot) longest = std::max(longest, depth[n.b]);
    if (longest >= 0) depth[i] = std::max(depth[i], longest + 1);
  }
  std::vector<std::int64_t> out;
  out.reserve(outputs_.size());
  for (NodeId id : outputs_) out.push_back(depth[id]);
  return out;
}

}  // namespace pcs::gates
