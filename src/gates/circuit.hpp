// Combinational gate-level netlist.
//
// The paper states its delay results in *gate delays*: a message passing
// through a switch traverses a combinational data path whose depth is the
// figure of merit (2 lg n through a hyperconcentrator chip, 3 lg n + O(1)
// through the Revsort switch, ...).  This module gives those statements an
// executable meaning: circuits are DAGs of fan-in-<=2 gates, depth is the
// longest input-to-output gate path, and the evaluator checks functional
// equivalence against the behavioural models.
//
// Nodes are created in topological order (every operand id is smaller than
// the gate's own id), so evaluation and depth analysis are single passes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pcs::gates {

/// Kinds of circuit nodes.  Inputs and constants contribute zero delay;
/// every logic gate contributes one gate delay.
enum class NodeKind : std::uint8_t {
  kInput,
  kConstZero,
  kConstOne,
  kNot,   // one operand
  kAnd,   // two operands
  kOr,    // two operands
  kXor,   // two operands
};

/// Index of a node within a Circuit.
using NodeId = std::uint32_t;

struct Node {
  NodeKind kind;
  NodeId a = 0;  ///< first operand (unused for inputs/constants)
  NodeId b = 0;  ///< second operand (unused for NOT)
};

class Circuit {
 public:
  /// Append a primary input; returns its node id.
  NodeId add_input();

  /// Constant nodes (shared; repeated calls return the same node).
  NodeId const_zero();
  NodeId const_one();

  NodeId add_not(NodeId a);
  NodeId add_and(NodeId a, NodeId b);
  NodeId add_or(NodeId a, NodeId b);
  NodeId add_xor(NodeId a, NodeId b);

  /// Declare a node as the i-th primary output (in call order).
  void mark_output(NodeId id);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t input_count() const noexcept { return inputs_.size(); }
  std::size_t output_count() const noexcept { return outputs_.size(); }

  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  const std::vector<NodeId>& inputs() const noexcept { return inputs_; }
  const std::vector<NodeId>& outputs() const noexcept { return outputs_; }

  /// Number of logic gates (excludes inputs and constants).
  std::size_t gate_count() const noexcept;

  /// Gate depth of every node (inputs and constants are depth 0).
  std::vector<std::uint32_t> node_depths() const;

  /// Gate depth of each primary output.
  std::vector<std::uint32_t> output_depths() const;

  /// Maximum gate depth over all primary outputs -- the circuit's gate-delay
  /// figure in the paper's sense.
  std::uint32_t depth() const;

  /// Instantiate another circuit inside this one: every node of `sub` is
  /// copied, with sub's primary inputs replaced by the given existing nodes
  /// of *this* circuit (one binding per sub input, in order).  Returns the
  /// nodes corresponding to sub's primary outputs.  Sub's own output marks
  /// are NOT propagated; the caller decides what to expose.
  ///
  /// This is how multichip switches are assembled at gate level: each chip
  /// is one instantiation, inter-chip wiring is just the choice of bindings.
  std::vector<NodeId> instantiate(const Circuit& sub,
                                  std::span<const NodeId> input_bindings);

  /// Gate depth of each primary output counting only paths that start at one
  /// of the given source nodes; -1 for outputs unreachable from them.
  ///
  /// This separates the *message data path* (what the paper charges a
  /// message for: 2 lg n through a hyperconcentrator chip) from the *control
  /// path* computed once at setup: measure with sources = the data inputs.
  std::vector<std::int64_t> output_depths_from(std::span<const NodeId> sources) const;

 private:
  NodeId add_node(NodeKind kind, NodeId a, NodeId b);

  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  NodeId const_zero_ = UINT32_MAX;
  NodeId const_one_ = UINT32_MAX;
};

}  // namespace pcs::gates
