#include "gates/evaluator.hpp"

#include "util/assert.hpp"

namespace pcs::gates {

std::vector<std::uint64_t> Evaluator::evaluate_lanes(
    const std::vector<std::uint64_t>& inputs) const {
  const Circuit& c = *circuit_;
  PCS_REQUIRE(inputs.size() == c.input_count(), "Evaluator input arity");
  std::vector<std::uint64_t> value(c.node_count(), 0);
  std::size_t next_input = 0;
  const auto& nodes = c.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    switch (n.kind) {
      case NodeKind::kInput:
        value[i] = inputs[next_input++];
        break;
      case NodeKind::kConstZero:
        value[i] = 0;
        break;
      case NodeKind::kConstOne:
        value[i] = ~std::uint64_t{0};
        break;
      case NodeKind::kNot:
        value[i] = ~value[n.a];
        break;
      case NodeKind::kAnd:
        value[i] = value[n.a] & value[n.b];
        break;
      case NodeKind::kOr:
        value[i] = value[n.a] | value[n.b];
        break;
      case NodeKind::kXor:
        value[i] = value[n.a] ^ value[n.b];
        break;
    }
  }
  std::vector<std::uint64_t> out;
  out.reserve(c.output_count());
  for (NodeId id : c.outputs()) out.push_back(value[id]);
  return out;
}

BitVec Evaluator::evaluate(const BitVec& inputs) const {
  PCS_REQUIRE(inputs.size() == circuit_->input_count(), "Evaluator input arity");
  std::vector<std::uint64_t> lanes(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    lanes[i] = inputs.get(i) ? 1u : 0u;
  }
  std::vector<std::uint64_t> out_lanes = evaluate_lanes(lanes);
  BitVec out(out_lanes.size());
  for (std::size_t i = 0; i < out_lanes.size(); ++i) {
    out.set(i, (out_lanes[i] & 1u) != 0);
  }
  return out;
}

}  // namespace pcs::gates
