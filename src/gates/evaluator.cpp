#include "gates/evaluator.hpp"

#include "util/assert.hpp"

namespace pcs::gates {

const std::vector<std::uint64_t>& Evaluator::evaluate_lanes(
    const std::vector<std::uint64_t>& inputs, EvalScratch& scratch) const {
  const Circuit& c = *circuit_;
  PCS_REQUIRE(inputs.size() == c.input_count(), "Evaluator input arity");
  // Every node is written before it is read (topological order), so the
  // value array only needs the right size, not zeroing.
  scratch.value.resize(c.node_count());
  std::vector<std::uint64_t>& value = scratch.value;
  std::size_t next_input = 0;
  const auto& nodes = c.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    switch (n.kind) {
      case NodeKind::kInput:
        value[i] = inputs[next_input++];
        break;
      case NodeKind::kConstZero:
        value[i] = 0;
        break;
      case NodeKind::kConstOne:
        value[i] = ~std::uint64_t{0};
        break;
      case NodeKind::kNot:
        value[i] = ~value[n.a];
        break;
      case NodeKind::kAnd:
        value[i] = value[n.a] & value[n.b];
        break;
      case NodeKind::kOr:
        value[i] = value[n.a] | value[n.b];
        break;
      case NodeKind::kXor:
        value[i] = value[n.a] ^ value[n.b];
        break;
    }
  }
  scratch.out.resize(c.output_count());
  std::size_t pos = 0;
  for (NodeId id : c.outputs()) scratch.out[pos++] = value[id];
  return scratch.out;
}

std::vector<std::uint64_t> Evaluator::evaluate_lanes(
    const std::vector<std::uint64_t>& inputs) const {
  EvalScratch scratch;
  evaluate_lanes(inputs, scratch);
  return std::move(scratch.out);
}

void Evaluator::evaluate(const BitVec& inputs, EvalScratch& scratch,
                         BitVec& out) const {
  PCS_REQUIRE(inputs.size() == circuit_->input_count(), "Evaluator input arity");
  scratch.lanes.resize(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    scratch.lanes[i] = inputs.get(i) ? 1u : 0u;
  }
  const std::vector<std::uint64_t>& out_lanes = evaluate_lanes(scratch.lanes, scratch);
  if (out.size() != out_lanes.size()) {
    out = BitVec(out_lanes.size());
  } else {
    out.fill(false);
  }
  for (std::size_t i = 0; i < out_lanes.size(); ++i) {
    if ((out_lanes[i] & 1u) != 0) out.set(i, true);
  }
}

BitVec Evaluator::evaluate(const BitVec& inputs) const {
  EvalScratch scratch;
  BitVec out;
  evaluate(inputs, scratch, out);
  return out;
}

}  // namespace pcs::gates
