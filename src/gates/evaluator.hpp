// Circuit evaluation.
//
// Two granularities: single-pattern evaluation over BitVec, and word-parallel
// evaluation that propagates 64 independent input patterns per pass (each
// bit lane of a 64-bit word is one pattern).  The word-parallel path is how
// the exhaustive equivalence tests and the gate-level benches stay cheap:
// one sweep of an n-input hyperconcentrator circuit validates 64 patterns.
#pragma once

#include <cstdint>
#include <vector>

#include "gates/circuit.hpp"
#include "util/bitvec.hpp"

namespace pcs::gates {

/// Reusable evaluation buffers.  The exhaustive tests and the gate-level
/// switches call evaluate() in tight loops; passing one of these keeps the
/// per-node value array (and the lane staging buffers) alive across calls
/// instead of allocating three vectors per evaluation.
struct EvalScratch {
  std::vector<std::uint64_t> lanes;  ///< staged input lanes
  std::vector<std::uint64_t> value;  ///< per-node values
  std::vector<std::uint64_t> out;    ///< output lanes
};

class Evaluator {
 public:
  explicit Evaluator(const Circuit& c) : circuit_(&c) {}

  /// Evaluate one input pattern; returns one bit per primary output.
  BitVec evaluate(const BitVec& inputs) const;

  /// Same, reusing caller scratch; `out` is resized/overwritten in place.
  void evaluate(const BitVec& inputs, EvalScratch& scratch, BitVec& out) const;

  /// Evaluate up to 64 patterns at once.  inputs[i] holds the value of
  /// primary input i across all lanes (lane l = bit l).  Returns one word
  /// per primary output with the same lane layout.
  std::vector<std::uint64_t> evaluate_lanes(
      const std::vector<std::uint64_t>& inputs) const;

  /// Same, reusing caller scratch; the result lives in scratch.out until the
  /// next call with the same scratch.
  const std::vector<std::uint64_t>& evaluate_lanes(
      const std::vector<std::uint64_t>& inputs, EvalScratch& scratch) const;

 private:
  const Circuit* circuit_;
};

}  // namespace pcs::gates
