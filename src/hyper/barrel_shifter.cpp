#include "hyper/barrel_shifter.hpp"

#include <algorithm>

#include "gates/builder.hpp"
#include "gates/evaluator.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::hyper {

BitVec rotate_right(const BitVec& bits, std::size_t amount) {
  const std::size_t n = bits.size();
  if (n == 0) return bits;
  amount %= n;
  BitVec out(n);
  for (std::size_t j = 0; j < n; ++j) {
    out.set((j + amount) % n, bits.get(j));
  }
  return out;
}

HardwiredBarrelShifter::HardwiredBarrelShifter(std::size_t n, std::size_t amount)
    : n_(n), amount_(n > 0 ? amount % n : 0) {
  PCS_REQUIRE(n > 0, "HardwiredBarrelShifter size");
  data_inputs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) data_inputs_.push_back(circuit_.add_input());
  // Output (j + amount) mod n is input j: rotation is pure wiring.
  for (std::size_t out = 0; out < n; ++out) {
    std::size_t in = (out + n - amount_) % n;
    circuit_.mark_output(data_inputs_[in]);
  }
}

BitVec HardwiredBarrelShifter::evaluate(const BitVec& bits) const {
  PCS_REQUIRE(bits.size() == n_, "HardwiredBarrelShifter::evaluate width");
  gates::Evaluator eval(circuit_);
  return eval.evaluate(bits);
}

std::uint32_t HardwiredBarrelShifter::data_path_depth() const {
  auto depths = circuit_.output_depths_from(data_inputs_);
  std::int64_t best = 0;
  for (std::int64_t d : depths) best = std::max(best, d);
  return static_cast<std::uint32_t>(best);
}

ProgrammableBarrelShifter::ProgrammableBarrelShifter(std::size_t n) : n_(n) {
  PCS_REQUIRE(n > 0, "ProgrammableBarrelShifter size");
  gates::Builder builder(circuit_);
  data_inputs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) data_inputs_.push_back(circuit_.add_input());
  const std::size_t stages = (n <= 1) ? 0 : ceil_log2(n);
  for (std::size_t t = 0; t < stages; ++t) control_inputs_.push_back(circuit_.add_input());

  std::vector<gates::NodeId> wires = data_inputs_;
  for (std::size_t t = 0; t < stages; ++t) {
    const std::size_t shift = std::size_t{1} << t;
    gates::NodeId sel = control_inputs_[t];
    gates::NodeId nsel = circuit_.add_not(sel);
    std::vector<gates::NodeId> next(n);
    for (std::size_t out = 0; out < n; ++out) {
      gates::NodeId shifted = wires[(out + n - (shift % n)) % n];
      gates::NodeId straight = wires[out];
      // 2 gate delays per stage from the data wires (the NOT is on the
      // control path and does not delay the data).
      next[out] = circuit_.add_or(circuit_.add_and(sel, shifted),
                                  circuit_.add_and(nsel, straight));
    }
    wires = std::move(next);
  }
  for (gates::NodeId w : wires) circuit_.mark_output(w);
}

BitVec ProgrammableBarrelShifter::evaluate(const BitVec& bits, std::size_t amount) const {
  PCS_REQUIRE(bits.size() == n_, "ProgrammableBarrelShifter::evaluate width");
  amount %= n_;
  BitVec inputs(n_ + control_inputs_.size());
  for (std::size_t i = 0; i < n_; ++i) inputs.set(i, bits.get(i));
  for (std::size_t t = 0; t < control_inputs_.size(); ++t) {
    inputs.set(n_ + t, ((amount >> t) & 1u) != 0);
  }
  gates::Evaluator eval(circuit_);
  return eval.evaluate(inputs);
}

std::uint32_t ProgrammableBarrelShifter::data_path_depth() const {
  auto depths = circuit_.output_depths_from(data_inputs_);
  std::int64_t best = 0;
  for (std::int64_t d : depths) best = std::max(best, d);
  return static_cast<std::uint32_t>(best);
}

}  // namespace pcs::hyper
