// Barrel shifter: the second chip type of the Revsort switch's stage-2
// boards (Figure 4).  Board i rotates its row right by rev(i); the paper
// hardwires the ceil(lg sqrt(n)) control bits after board fabrication, so
// the shifter adds only a constant number of gate delays to a message.
//
// Two models:
//  * functional rotation (used by the switch simulations), and
//  * gate-level circuits -- a hardwired variant (pure wiring, zero logic
//    delay, matching the paper's "only a constant number of gate delays")
//    and a programmable variant (lg n mux stages, 2 gate delays each) for
//    the ablation bench that quantifies what hardwiring buys.
#pragma once

#include <cstdint>

#include "gates/circuit.hpp"
#include "util/bitvec.hpp"

namespace pcs::hyper {

/// Rotate `bits` right by `amount` places: bit j moves to (j + amount) mod n.
BitVec rotate_right(const BitVec& bits, std::size_t amount);

/// Gate-level barrel shifter with the rotation amount fixed at construction
/// (the hardwired control bits of Figure 4).  Outputs are wired straight to
/// inputs: zero gate depth.
class HardwiredBarrelShifter {
 public:
  HardwiredBarrelShifter(std::size_t n, std::size_t amount);

  std::size_t n() const noexcept { return n_; }
  std::size_t amount() const noexcept { return amount_; }
  const gates::Circuit& circuit() const noexcept { return circuit_; }

  BitVec evaluate(const BitVec& bits) const;

  /// Gate depth from data inputs to outputs (0 for the hardwired shifter).
  std::uint32_t data_path_depth() const;

 private:
  std::size_t n_;
  std::size_t amount_;
  gates::Circuit circuit_;
  std::vector<gates::NodeId> data_inputs_;
};

/// Gate-level barrel shifter with ceil(lg n) binary control inputs selecting
/// the rotation amount at run time; stage t conditionally rotates by 2^t.
class ProgrammableBarrelShifter {
 public:
  explicit ProgrammableBarrelShifter(std::size_t n);

  std::size_t n() const noexcept { return n_; }
  std::size_t control_bits() const noexcept { return control_inputs_.size(); }
  const gates::Circuit& circuit() const noexcept { return circuit_; }

  /// Rotate right by `amount` (encoded onto the control inputs).
  BitVec evaluate(const BitVec& bits, std::size_t amount) const;

  /// Gate depth from data inputs to outputs: 2 per mux stage.
  std::uint32_t data_path_depth() const;

 private:
  std::size_t n_;
  gates::Circuit circuit_;
  std::vector<gates::NodeId> data_inputs_;
  std::vector<gates::NodeId> control_inputs_;
};

}  // namespace pcs::hyper
