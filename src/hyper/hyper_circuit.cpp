#include "hyper/hyper_circuit.hpp"

#include <algorithm>

#include "gates/builder.hpp"
#include "gates/evaluator.hpp"
#include "util/assert.hpp"

namespace pcs::hyper {

namespace {

using gates::Builder;
using gates::Circuit;
using gates::NodeId;

/// Shared construction state: prefix thermometer codes and a cache of their
/// negations, addressed as (prefix length x, threshold j).
struct ControlPlane {
  Circuit* c;
  Builder* b;
  // thermo[x] = thermometer code of count(valid[0..x)): thermo[x][k] = 1 iff
  // that count >= k + 1.  thermo[0] is empty.
  std::vector<std::vector<NodeId>> thermo;
  // not_cache[x][j] = NOT(count[0,x) > j), built lazily.
  std::vector<std::vector<NodeId>> not_cache;

  /// Node meaning count(valid[0..x)) > j.
  NodeId above(std::size_t x, std::size_t j) const {
    const auto& t = thermo[x];
    return j < t.size() ? t[j] : c->const_zero();
  }

  /// Node meaning count(valid[0..x)) <= j (lazily built NOT).
  NodeId not_above(std::size_t x, std::size_t j) {
    if (j >= thermo[x].size()) return c->const_one();
    NodeId& slot = not_cache[x][j];
    if (slot == UINT32_MAX) slot = c->add_not(thermo[x][j]);
    return slot;
  }
};

/// Build the selection tree for output j over inputs [lo, hi); returns the
/// node carrying the data bit of the rank-j valid input when it lies in the
/// interval, and 0 otherwise.
NodeId build_tree(ControlPlane& cp, const std::vector<NodeId>& data, std::size_t j,
                  std::size_t lo, std::size_t hi) {
  if (hi - lo == 1) return data[lo];
  std::size_t mid = lo + (hi - lo + 1) / 2;
  NodeId l = build_tree(cp, data, j, lo, mid);
  NodeId r = build_tree(cp, data, j, mid, hi);
  // Left steering: rank-j valid input lies in [lo, mid), i.e.
  // count[0,lo) <= j AND count[0,mid) > j.
  NodeId gl = cp.c->add_and(cp.not_above(lo, j), cp.above(mid, j));
  NodeId gr = cp.c->add_and(cp.not_above(mid, j), cp.above(hi, j));
  return cp.b->steer2(l, gl, r, gr);
}

}  // namespace

HyperCircuit::HyperCircuit(std::size_t n) : n_(n) {
  PCS_REQUIRE(n > 0, "HyperCircuit size");
  Builder builder(circuit_);

  valid_inputs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) valid_inputs_.push_back(circuit_.add_input());
  data_inputs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) data_inputs_.push_back(circuit_.add_input());

  ControlPlane cp{&circuit_, &builder, {}, {}};
  cp.thermo.resize(n + 1);
  cp.not_cache.assign(n + 1, std::vector<NodeId>());
  for (std::size_t x = 1; x <= n; ++x) {
    std::vector<NodeId> bit{valid_inputs_[x - 1]};
    cp.thermo[x] = builder.thermometer_add(cp.thermo[x - 1], bit);
    cp.not_cache[x].assign(cp.thermo[x].size(), UINT32_MAX);
  }

  // Data outputs: one selection tree per output wire.
  std::vector<NodeId> roots;
  roots.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    roots.push_back(build_tree(cp, data_inputs_, j, 0, n));
  }
  for (NodeId root : roots) circuit_.mark_output(root);

  // Sorted valid-bit outputs: output j carries count(valid) > j.
  for (std::size_t j = 0; j < n; ++j) circuit_.mark_output(cp.above(n, j));
}

HyperCircuit::Result HyperCircuit::evaluate(const BitVec& valid,
                                            const BitVec& data) const {
  gates::EvalScratch scratch;
  Result res;
  evaluate(valid, data, scratch, res);
  return res;
}

void HyperCircuit::evaluate(const BitVec& valid, const BitVec& data,
                            gates::EvalScratch& scratch, Result& res) const {
  PCS_REQUIRE(valid.size() == n_ && data.size() == n_, "HyperCircuit::evaluate width");
  // Stage the inputs straight into the lane buffer (lane 0 only) instead of
  // round-tripping through a BitVec.
  scratch.lanes.resize(2 * n_);
  for (std::size_t i = 0; i < n_; ++i) {
    scratch.lanes[i] = valid.get(i) ? 1u : 0u;
    scratch.lanes[n_ + i] = data.get(i) ? 1u : 0u;
  }
  gates::Evaluator eval(circuit_);
  const std::vector<std::uint64_t>& out = eval.evaluate_lanes(scratch.lanes, scratch);
  if (res.data.size() != n_) res.data = BitVec(n_); else res.data.fill(false);
  if (res.valid.size() != n_) res.valid = BitVec(n_); else res.valid.fill(false);
  for (std::size_t j = 0; j < n_; ++j) {
    if ((out[j] & 1u) != 0) res.data.set(j, true);
    if ((out[n_ + j] & 1u) != 0) res.valid.set(j, true);
  }
}

std::uint32_t HyperCircuit::data_path_depth() const {
  auto depths = circuit_.output_depths_from(data_inputs_);
  std::int64_t best = 0;
  for (std::size_t j = 0; j < n_; ++j) best = std::max(best, depths[j]);
  return static_cast<std::uint32_t>(best);
}

std::uint32_t HyperCircuit::control_path_depth() const {
  auto depths = circuit_.output_depths_from(valid_inputs_);
  std::int64_t best = 0;
  for (std::int64_t d : depths) best = std::max(best, d);
  return static_cast<std::uint32_t>(best);
}

}  // namespace pcs::hyper
