// Gate-level reconstruction of the Cormen–Leiserson n-by-n hyperconcentrator
// chip (paper refs [1], [2]; the internals are in the author's MEng thesis,
// so the circuit here is a reconstruction that reproduces the published
// interface exactly -- see DESIGN.md section 4).
//
// Structure:
//
//  * Data path.  One binary *selection tree* per output wire, over the n
//    data inputs.  Each tree node is a steered combine
//    (l AND gl) OR (r AND gr), two gate delays, so a message bit incurs
//    exactly 2*ceil(lg n) gate delays from data input to data output -- the
//    figure the paper quotes for the chip.  n trees of (n - 1) nodes each
//    give the Theta(n^2) gate count / chip area of the published design.
//
//  * Control path.  Computed from the n valid bits once, during setup.
//    Prefix population counts in thermometer code select, for output j, the
//    unique input with rank j among the valid inputs: at a tree node
//    covering [lo, mid) u [mid, hi), gl_j = (count[0,lo) <= j < count[0,mid))
//    and gr_j likewise for the right half.  Control depth counts toward
//    setup latency, not message delay, and is reported separately.
//
//  * Sorted-valid outputs.  Output j's valid bit is count[0,n) > j -- the
//    thermometer code itself -- so the chip's outputs carry nonincreasing
//    valid bits, as Section 2 of the paper requires.
//
// The circuit's primary inputs are the n valid bits followed by the n data
// bits; its primary outputs are the n routed data bits followed by the n
// sorted valid bits.
#pragma once

#include <cstdint>
#include <vector>

#include "gates/circuit.hpp"
#include "gates/evaluator.hpp"
#include "util/bitvec.hpp"

namespace pcs::hyper {

class HyperCircuit {
 public:
  /// Build the circuit for an n-input chip.  Gate count is Theta(n^2);
  /// keep n modest (<= 1024) in tests and benches.
  explicit HyperCircuit(std::size_t n);

  std::size_t n() const noexcept { return n_; }
  const gates::Circuit& circuit() const noexcept { return circuit_; }

  /// Run one setup: returns the routed data bits (outputs 0..n-1) and the
  /// sorted valid bits (outputs n..2n-1).
  struct Result {
    BitVec data;
    BitVec valid;
  };
  Result evaluate(const BitVec& valid, const BitVec& data) const;

  /// Same, reusing caller buffers across calls (for evaluation loops).
  void evaluate(const BitVec& valid, const BitVec& data,
                gates::EvalScratch& scratch, Result& out) const;

  /// Maximum gate depth from a *data* input to a data output: the message
  /// delay through the chip.  Equals 2*ceil(lg n) by construction.
  std::uint32_t data_path_depth() const;

  /// Maximum gate depth from a *valid* input to any output: the setup
  /// (control) latency of the reconstruction.
  std::uint32_t control_path_depth() const;

  /// Total logic gates (the chip-area proxy; Theta(n^2)).
  std::size_t gate_count() const { return circuit_.gate_count(); }

 private:
  std::size_t n_;
  gates::Circuit circuit_;
  std::vector<gates::NodeId> valid_inputs_;
  std::vector<gates::NodeId> data_inputs_;
};

}  // namespace pcs::hyper
