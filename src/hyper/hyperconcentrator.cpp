#include "hyper/hyperconcentrator.hpp"

#include "util/assert.hpp"

namespace pcs::hyper {

std::size_t Routing::routed_count() const noexcept {
  std::size_t k = 0;
  for (std::int32_t o : output_of_input) {
    if (o != kIdle) ++k;
  }
  return k;
}

bool Routing::is_consistent() const noexcept {
  for (std::size_t i = 0; i < output_of_input.size(); ++i) {
    std::int32_t o = output_of_input[i];
    if (o == kIdle) continue;
    if (o < 0 || static_cast<std::size_t>(o) >= input_of_output.size()) return false;
    if (input_of_output[static_cast<std::size_t>(o)] != static_cast<std::int32_t>(i)) {
      return false;
    }
  }
  for (std::size_t j = 0; j < input_of_output.size(); ++j) {
    std::int32_t i = input_of_output[j];
    if (i == kIdle) continue;
    if (i < 0 || static_cast<std::size_t>(i) >= output_of_input.size()) return false;
    if (output_of_input[static_cast<std::size_t>(i)] != static_cast<std::int32_t>(j)) {
      return false;
    }
  }
  return true;
}

Hyperconcentrator::Hyperconcentrator(std::size_t n) : n_(n) {
  PCS_REQUIRE(n > 0, "Hyperconcentrator size");
}

Routing Hyperconcentrator::route(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "Hyperconcentrator::route input width");
  Routing r;
  r.output_of_input.assign(n_, kIdle);
  r.input_of_output.assign(n_, kIdle);
  std::size_t rank = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (valid.get(i)) {
      r.output_of_input[i] = static_cast<std::int32_t>(rank);
      r.input_of_output[rank] = static_cast<std::int32_t>(i);
      ++rank;
    }
  }
  return r;
}

BitVec Hyperconcentrator::output_valid_bits(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "Hyperconcentrator::output_valid_bits width");
  return BitVec::prefix_ones(n_, valid.count());
}

void stable_concentrate(std::vector<std::int32_t>& slots) {
  std::size_t write = 0;
  for (std::size_t read = 0; read < slots.size(); ++read) {
    if (slots[read] != kIdle) slots[write++] = slots[read];
  }
  for (; write < slots.size(); ++write) slots[write] = kIdle;
}

}  // namespace pcs::hyper
