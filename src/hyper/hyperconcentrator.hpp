// Functional model of the single-chip n-by-n hyperconcentrator switch
// (Cormen–Leiserson; the paper's basic building block).
//
// Interface contract (paper, Section 1): for any set of k valid inputs,
// 1 <= k <= n, the switch establishes disjoint electrical paths from those
// inputs to the first k outputs Y_1..Y_k.  Our model is additionally
// *stable*: the i-th valid input (in input order) is routed to output i.
// Stability is a free choice the paper leaves open; it makes the multichip
// simulations deterministic and lets the tests pin down exact routings.
//
// The gate-level reconstruction of the same switch lives in hyper_circuit.*.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace pcs::hyper {

/// Index used for "no message" / "no output": -1.
inline constexpr std::int32_t kIdle = -1;

/// The routing a concentrator establishes during setup.
struct Routing {
  /// output_of_input[i] = output wire input i is routed to, or kIdle.
  std::vector<std::int32_t> output_of_input;
  /// input_of_output[j] = input wire routed to output j, or kIdle.
  std::vector<std::int32_t> input_of_output;

  std::size_t routed_count() const noexcept;

  /// True iff the routing is a partial injection consistent in both
  /// directions (every claimed path appears in both maps, no duplicates).
  bool is_consistent() const noexcept;
};

class Hyperconcentrator {
 public:
  explicit Hyperconcentrator(std::size_t n);

  std::size_t n() const noexcept { return n_; }

  /// Establish paths for the given valid bits: the j-th valid input (j from
  /// 0) is routed to output j.  All k valid inputs are routed -- a
  /// hyperconcentrator never drops messages.
  Routing route(const BitVec& valid) const;

  /// The valid bits as they appear on the outputs: sorted nonincreasingly.
  BitVec output_valid_bits(const BitVec& valid) const;

 private:
  std::size_t n_;
};

/// The per-chip operation the multichip switch simulations use: stably move
/// all occupied slots (label >= 0) to the front, back-filling with kIdle.
/// Applying this to a chip's input slots gives its output slots, because the
/// chip routes its j-th valid message to its j-th output.
void stable_concentrate(std::vector<std::int32_t>& slots);

}  // namespace pcs::hyper
