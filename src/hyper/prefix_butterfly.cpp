#include "hyper/prefix_butterfly.hpp"

#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::hyper {

PrefixButterflySwitch::PrefixButterflySwitch(std::size_t n) : n_(n) {
  PCS_REQUIRE(is_pow2(n), "PrefixButterflySwitch needs power-of-two n");
  stages_ = n <= 1 ? 0 : exact_log2(n);
}

PrefixButterflySwitch::Trace PrefixButterflySwitch::route_traced(
    const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "PrefixButterflySwitch width");
  Trace trace;
  trace.rows.reserve(stages_ + 1);

  // Phase 1 (the parallel prefix circuit): ranks.  The lg n sequential
  // steps are modeled by prefix_steps(); functionally this is rank1_before.
  std::vector<std::int32_t> dest(n_, kIdle);
  std::vector<std::int32_t> rows(n_, kIdle);
  for (std::size_t i = 0; i < n_; ++i) {
    if (valid.get(i)) {
      dest[i] = static_cast<std::int32_t>(valid.rank1_before(i));
      rows[i] = static_cast<std::int32_t>(i);
    }
  }
  trace.rows.push_back(rows);

  // Phase 2: self-routing through the butterfly, fixing destination bits
  // LSB-first (the reverse-butterfly orientation).  Monotone compact
  // destination sequences -- which ranks always are -- never collide; the
  // MSB-first orientation does collide (e.g. inputs {0,2} at n=16), which
  // is why the reconstruction pins this ordering down by test.
  for (std::size_t t = 0; t < stages_; ++t) {
    const std::size_t bit = t;
    std::vector<std::int32_t> next(n_, kIdle);
    for (std::size_t r = 0; r < n_; ++r) {
      std::int32_t src = trace.rows.back()[r];
      if (src == kIdle) continue;
      std::size_t d = static_cast<std::size_t>(dest[static_cast<std::size_t>(src)]);
      std::size_t target = (r & ~(std::size_t{1} << bit)) |
                           (((d >> bit) & std::size_t{1}) << bit);
      if (next[target] != kIdle) {
        trace.conflict_free = false;
        return trace;
      }
      next[target] = src;
    }
    trace.rows.push_back(std::move(next));
  }
  return trace;
}

Routing PrefixButterflySwitch::route(const BitVec& valid) const {
  Trace trace = route_traced(valid);
  PCS_REQUIRE(trace.conflict_free,
              "butterfly self-routing conflicted on a concentration pattern");
  Routing r;
  r.output_of_input.assign(n_, kIdle);
  r.input_of_output.assign(n_, kIdle);
  const std::vector<std::int32_t>& final_rows = trace.rows.back();
  for (std::size_t row = 0; row < n_; ++row) {
    std::int32_t src = final_rows[row];
    if (src == kIdle) continue;
    r.input_of_output[row] = src;
    r.output_of_input[static_cast<std::size_t>(src)] = static_cast<std::int32_t>(row);
  }
  return r;
}

}  // namespace pcs::hyper
