// The alternative hyperconcentrator of the paper's Section 1: "a parallel
// prefix circuit and a butterfly network ... volume Theta(n^{3/2}) with
// O(n lg n) chips and as few as four data pins per chip, but this switch is
// not combinational."  (Paper ref [1].)
//
// Reconstruction:
//   phase 1 (control, sequential): a parallel-prefix tree computes each
//     valid input's rank in lg n time steps -- this is the part that makes
//     the switch clocked rather than combinational;
//   phase 2 (data): messages self-route through a lg n-stage butterfly,
//     message at input i heading for output rank_i.  Because the
//     destination sequence of a concentration pattern is monotone and
//     compact (ranks 0..k-1 in input order), the butterfly routes it with
//     no two messages ever contending for a switch port; route() asserts
//     this and route_traced() exposes the stage-by-stage occupancy so the
//     tests can check it independently.
//
// The paper uses this design as the foil that motivates the multichip
// *partial* concentrators: cheap pins, but sequential control.  We give it
// the same Routing interface as the combinational chip and a resource-model
// entry so the comparison lands in the same tables.
#pragma once

#include <cstdint>
#include <vector>

#include "hyper/hyperconcentrator.hpp"
#include "util/bitvec.hpp"

namespace pcs::hyper {

class PrefixButterflySwitch {
 public:
  /// n must be a power of two.
  explicit PrefixButterflySwitch(std::size_t n);

  std::size_t n() const noexcept { return n_; }

  /// Sequential control steps of the prefix phase: lg n.
  std::size_t prefix_steps() const noexcept { return stages_; }

  /// Butterfly data stages: lg n.
  std::size_t butterfly_stages() const noexcept { return stages_; }

  /// Same contract and stability as Hyperconcentrator::route; internally
  /// verifies the butterfly self-routing is conflict-free.
  Routing route(const BitVec& valid) const;

  /// Stage-by-stage butterfly occupancy: trace[t][row] = source input of
  /// the message on row `row` after stage t (trace[0] is the input side).
  struct Trace {
    std::vector<std::vector<std::int32_t>> rows;
    bool conflict_free = true;
  };
  Trace route_traced(const BitVec& valid) const;

 private:
  std::size_t n_;
  std::size_t stages_;
};

}  // namespace pcs::hyper
