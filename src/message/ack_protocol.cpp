#include "message/ack_protocol.hpp"

#include <deque>
#include <optional>
#include <vector>

#include "util/assert.hpp"

namespace pcs::msg {

double AckStats::goodput() const {
  return offered == 0 ? 1.0 : static_cast<double>(delivered) / static_cast<double>(offered);
}

double AckStats::duplicate_rate() const {
  return transmissions == 0
             ? 0.0
             : static_cast<double>(duplicates) / static_cast<double>(transmissions);
}

double AckStats::mean_completion() const {
  return delivered == 0 ? 0.0 : total_completion_rounds / static_cast<double>(delivered);
}

namespace {
struct SenderState {
  bool active = false;        ///< a message is outstanding on this wire
  bool delivered_once = false;
  bool acked = false;
  std::size_t born = 0;
  std::size_t last_send = 0;
  std::size_t retries = 0;
  bool want_send = false;  ///< transmit this round
};

struct PendingAck {
  std::size_t wire;
  std::size_t due_round;
};
}  // namespace

AckStats simulate_ack_protocol(const pcs::sw::ConcentratorSwitch& sw,
                               double arrival_p, std::size_t rounds,
                               const AckConfig& config, Rng& rng) {
  PCS_REQUIRE(config.timeout >= 1, "AckConfig timeout");
  const std::size_t n = sw.inputs();
  std::vector<SenderState> sender(n);
  std::deque<PendingAck> acks;
  AckStats stats;
  stats.rounds = rounds;

  for (std::size_t round = 0; round < rounds; ++round) {
    // Deliver due acks.
    while (!acks.empty() && acks.front().due_round <= round) {
      SenderState& s = sender[acks.front().wire];
      acks.pop_front();
      if (s.active) {
        s.acked = true;
        s.active = false;  // done; the wire frees up
      }
    }

    // Arrivals and resend timers.
    for (std::size_t w = 0; w < n; ++w) {
      SenderState& s = sender[w];
      s.want_send = false;
      if (!s.active) {
        if (rng.chance(arrival_p)) {
          s = SenderState{};
          s.active = true;
          s.born = round;
          s.want_send = true;
          ++stats.offered;
        }
        continue;
      }
      // Outstanding and unacked: resend when the timer expires.
      if (round >= s.last_send + config.timeout) {
        if (s.retries >= config.max_retries) {
          ++stats.gave_up;
          s.active = false;
          continue;
        }
        ++s.retries;
        s.want_send = true;
      }
    }

    // One setup with everyone who transmits this round.
    BitVec valid(n);
    for (std::size_t w = 0; w < n; ++w) {
      if (sender[w].active && sender[w].want_send) {
        valid.set(w, true);
        sender[w].last_send = round;
        ++stats.transmissions;
      }
    }
    if (valid.count() == 0) continue;
    pcs::sw::SwitchRouting routing = sw.route(valid);
    for (std::size_t w = 0; w < n; ++w) {
      if (!valid.get(w)) continue;
      if (routing.output_of_input[w] >= 0) {
        SenderState& s = sender[w];
        if (!s.delivered_once) {
          s.delivered_once = true;
          ++stats.delivered;
          stats.total_completion_rounds += static_cast<double>(round - s.born);
        } else {
          ++stats.duplicates;
        }
        acks.push_back(PendingAck{w, round + config.ack_delay});
      }
      // Losers are dropped silently: the timeout will trigger the resend.
    }
  }
  return stats;
}

}  // namespace pcs::msg
