// Higher-level acknowledgment protocol (paper Section 1: unsuccessfully
// routed messages may simply be dropped, "relying on a higher-level
// acknowledgment protocol to detect this situation and resend them").
//
// The switch drops losers silently; senders learn about delivery only
// through acks that return after `ack_delay` rounds.  A sender retransmits
// when no ack has arrived `timeout` rounds after a send, up to
// `max_retries` times; because an ack may simply be slow, retransmissions
// can duplicate messages that actually got through -- the simulator tracks
// goodput, duplicates, and gives-up separately, which is the real cost
// accounting of the drop-and-resend discipline.
#pragma once

#include <cstdint>
#include <string>

#include "switch/concentrator.hpp"
#include "util/rng.hpp"

namespace pcs::msg {

struct AckConfig {
  std::size_t ack_delay = 2;    ///< rounds for an ack to come back
  std::size_t timeout = 4;      ///< rounds a sender waits before resending
  std::size_t max_retries = 5;  ///< resends before giving up
};

struct AckStats {
  std::size_t rounds = 0;
  std::size_t offered = 0;        ///< distinct messages generated
  std::size_t transmissions = 0;  ///< send attempts incl. retransmissions
  std::size_t delivered = 0;      ///< distinct messages that got through
  std::size_t duplicates = 0;     ///< extra copies of already-delivered messages
  std::size_t gave_up = 0;        ///< senders that exhausted max_retries
  double total_completion_rounds = 0.0;  ///< birth -> first delivery, summed

  double goodput() const;          ///< delivered / offered
  double duplicate_rate() const;   ///< duplicates / transmissions
  double mean_completion() const;  ///< rounds from birth to first delivery
};

/// Run the drop-and-resend protocol over `rounds` rounds: each round every
/// idle sender starts a new message with probability arrival_p; all senders
/// with an outstanding unacked message (whose resend timer expired, or
/// fresh) present valid bits; the switch drops losers; winners' acks arrive
/// ack_delay rounds later.
AckStats simulate_ack_protocol(const pcs::sw::ConcentratorSwitch& sw,
                               double arrival_p, std::size_t rounds,
                               const AckConfig& config, Rng& rng);

}  // namespace pcs::msg
