#include "message/clocked_sim.hpp"

#include "util/assert.hpp"

namespace pcs::msg {

bool ClockedSimResult::payloads_intact(const MessageBatch& sent) const {
  for (const Delivery& d : delivered) {
    const Message& original = sent.message(d.observed.source);
    if (original.payload != d.observed.payload) return false;
  }
  return true;
}

ClockedSimResult run_clocked(const pcs::sw::ConcentratorSwitch& sw,
                             const MessageBatch& batch) {
  PCS_REQUIRE(batch.n_inputs() == sw.inputs(), "run_clocked batch width");
  // Determine the (uniform) payload length.
  std::size_t payload_len = 0;
  bool any = false;
  for (std::size_t i = 0; i < batch.n_inputs(); ++i) {
    if (!batch.has_message(i)) continue;
    if (!any) {
      payload_len = batch.message(i).payload.size();
      any = true;
    } else {
      PCS_REQUIRE(batch.message(i).payload.size() == payload_len,
                  "run_clocked payload lengths must match");
    }
  }

  // Cycle 0: setup.
  pcs::sw::SwitchRouting routing = sw.route(batch.valid_bits());
  PCS_REQUIRE(routing.is_partial_injection(), "switch produced invalid routing");

  // Cycles 1..payload_len: stream bits along the established paths.
  const std::size_t m = sw.outputs();
  std::vector<BitVec> observed(m);
  for (std::size_t j = 0; j < m; ++j) {
    if (routing.input_of_output[j] >= 0) observed[j] = BitVec(payload_len);
  }
  for (std::size_t t = 0; t < payload_len; ++t) {
    for (std::size_t j = 0; j < m; ++j) {
      std::int32_t src = routing.input_of_output[j];
      if (src < 0) continue;
      const Message& msg = batch.message(static_cast<std::size_t>(src));
      observed[j].set(t, msg.payload.get(t));
    }
  }

  ClockedSimResult result;
  result.cycles = 1 + payload_len;
  for (std::size_t j = 0; j < m; ++j) {
    std::int32_t src = routing.input_of_output[j];
    if (src < 0) continue;
    const Message& msg = batch.message(static_cast<std::size_t>(src));
    Delivery d;
    d.output_wire = static_cast<std::uint32_t>(j);
    d.observed.source = msg.source;
    d.observed.dest = msg.dest;
    d.observed.payload = observed[j];
    result.delivered.push_back(d);
  }
  for (std::size_t i = 0; i < batch.n_inputs(); ++i) {
    if (batch.has_message(i) && routing.output_of_input[i] < 0) {
      result.congested.push_back(batch.message(i));
    }
  }
  return result;
}

}  // namespace pcs::msg
