// Cycle-accurate bit-serial simulation of one switch setup (Section 2).
//
// Cycle 0 ("setup"): each input wire presents its valid bit; the switch
// establishes electrical paths.  Cycles 1..L: payload bits enter the input
// wires one per cycle and ride the established paths; output wire j emits,
// on cycle t, the bit that entered its routed input wire on cycle t.
//
// The simulator streams honestly -- bit-by-bit through the routing map --
// rather than copying payloads wholesale, so a routing inconsistency (two
// inputs claiming one output, a path that moves mid-message) would corrupt
// an observable payload and fail the checks.
#pragma once

#include <cstdint>
#include <vector>

#include "message/message.hpp"
#include "switch/concentrator.hpp"

namespace pcs::msg {

/// One delivered message: where it came out plus the bits observed there.
struct Delivery {
  std::uint32_t output_wire = 0;
  Message observed;  ///< source/dest copied from the sender, payload as observed
};

struct ClockedSimResult {
  std::vector<Delivery> delivered;
  std::vector<Message> congested;  ///< valid messages that won no output wire
  std::size_t cycles = 0;          ///< 1 (setup) + payload length

  /// True iff every delivered payload matches what its source sent.
  bool payloads_intact(const MessageBatch& sent) const;
};

/// Run one setup + full payload stream of `batch` through `sw`.
/// All messages in the batch must have equal payload length.
ClockedSimResult run_clocked(const pcs::sw::ConcentratorSwitch& sw,
                             const MessageBatch& batch);

}  // namespace pcs::msg
