#include "message/congestion.hpp"

#include <algorithm>
#include <optional>

#include "util/assert.hpp"

namespace pcs::msg {

std::string policy_name(CongestionPolicy p) {
  switch (p) {
    case CongestionPolicy::kDrop:
      return "drop";
    case CongestionPolicy::kBufferRetry:
      return "buffer-retry";
    case CongestionPolicy::kMisrouteRetry:
      return "misroute-retry";
  }
  return "unknown";
}

double RoundStats::delivery_rate() const {
  return offered == 0 ? 1.0 : static_cast<double>(delivered) / static_cast<double>(offered);
}

double RoundStats::mean_latency() const {
  return delivered == 0 ? 0.0 : total_latency_rounds / static_cast<double>(delivered);
}

namespace {
struct Pending {
  std::size_t born_round = 0;
  bool is_retry = false;
};
}  // namespace

RoundStats simulate_rounds(const pcs::sw::ConcentratorSwitch& sw, double arrival_p,
                           std::size_t rounds, CongestionPolicy policy, Rng& rng) {
  const std::size_t n = sw.inputs();
  std::vector<std::optional<Pending>> wire(n);
  std::vector<Pending> roaming;  // misrouted messages looking for a free wire
  RoundStats stats;
  stats.rounds = rounds;

  for (std::size_t round = 0; round < rounds; ++round) {
    // Misrouted losers from previous rounds re-enter on random free wires.
    if (!roaming.empty()) {
      for (auto it = roaming.begin(); it != roaming.end();) {
        std::size_t start = static_cast<std::size_t>(rng.below(n));
        bool placed = false;
        for (std::size_t off = 0; off < n; ++off) {
          std::size_t w = (start + off) % n;
          if (!wire[w].has_value()) {
            wire[w] = *it;
            wire[w]->is_retry = true;
            placed = true;
            break;
          }
        }
        if (placed) {
          ++stats.retries;
          it = roaming.erase(it);
        } else {
          ++it;  // everything busy; roam another round
        }
      }
    }

    // Fresh arrivals on free wires.
    for (std::size_t w = 0; w < n; ++w) {
      if (!wire[w].has_value() && rng.chance(arrival_p)) {
        wire[w] = Pending{round, false};
        ++stats.offered;
      } else if (wire[w].has_value() && wire[w]->is_retry) {
        ++stats.retries;
        wire[w]->is_retry = false;  // count each retry round once
      }
    }

    // One setup.
    BitVec valid(n);
    for (std::size_t w = 0; w < n; ++w) valid.set(w, wire[w].has_value());
    pcs::sw::SwitchRouting routing = sw.route(valid);

    std::size_t backlog = 0;
    for (std::size_t w = 0; w < n; ++w) {
      if (!wire[w].has_value()) continue;
      if (routing.output_of_input[w] >= 0) {
        ++stats.delivered;
        const std::size_t waited = round - wire[w]->born_round;
        stats.total_latency_rounds += static_cast<double>(waited);
        if (stats.latency_histogram.size() <= waited) {
          stats.latency_histogram.resize(waited + 1, 0);
        }
        ++stats.latency_histogram[waited];
        wire[w].reset();
      } else {
        switch (policy) {
          case CongestionPolicy::kDrop:
            ++stats.dropped;
            wire[w].reset();
            break;
          case CongestionPolicy::kBufferRetry:
            wire[w]->is_retry = true;
            ++backlog;
            break;
          case CongestionPolicy::kMisrouteRetry:
            roaming.push_back(*wire[w]);
            wire[w].reset();
            ++backlog;
            break;
        }
      }
    }
    backlog += roaming.size();
    stats.max_backlog = std::max(stats.max_backlog, backlog);
  }
  for (std::size_t w = 0; w < n; ++w) {
    if (wire[w].has_value()) ++stats.final_backlog;
  }
  stats.final_backlog += roaming.size();
  return stats;
}

}  // namespace pcs::msg
