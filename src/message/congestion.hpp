// Congestion handling (paper Section 1): when more messages enter than the
// switch can route, the unsuccessfully routed ones are either buffered and
// resent, misrouted (sent anyway and re-injected downstream), or dropped and
// recovered by a higher-level acknowledgment protocol.  The switch designs
// are compatible with all three; this module implements them as policies
// over a round-based simulation so their cost can be compared.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "message/message.hpp"
#include "switch/concentrator.hpp"
#include "util/rng.hpp"

namespace pcs::msg {

enum class CongestionPolicy : std::uint8_t {
  kDrop,           ///< losers vanish; the ack protocol regenerates them later
  kBufferRetry,    ///< losers wait at their input and retry next round
  kMisrouteRetry,  ///< losers are offered again on a random free input wire
};

std::string policy_name(CongestionPolicy p);

struct RoundStats {
  std::size_t rounds = 0;
  std::size_t offered = 0;      ///< message-arrival events (fresh messages)
  std::size_t delivered = 0;    ///< messages that won an output wire
  std::size_t dropped = 0;      ///< messages lost forever (kDrop only)
  std::size_t retries = 0;      ///< retry transmissions
  std::size_t max_backlog = 0;  ///< peak queued losers (retry policies)
  std::size_t final_backlog = 0;  ///< messages still waiting after the last round
  double total_latency_rounds = 0.0;  ///< sum over delivered of rounds waited
  /// latency_histogram[w] = deliveries that waited exactly w rounds (same
  /// shape as net::TreeSimStats), so retry policies expose their latency
  /// tail, not just the mean.  Conservation always holds exactly:
  /// offered == delivered + dropped + final_backlog.
  std::vector<std::size_t> latency_histogram;

  double delivery_rate() const;
  double mean_latency() const;
};

/// Round-based congestion simulation: each round, fresh messages arrive on
/// each free input wire with probability `arrival_p`, join any backlog
/// (per the policy), the switch routes one setup, winners leave, losers are
/// handled per the policy.  Runs `rounds` rounds.
RoundStats simulate_rounds(const pcs::sw::ConcentratorSwitch& sw, double arrival_p,
                           std::size_t rounds, CongestionPolicy policy, Rng& rng);

}  // namespace pcs::msg
