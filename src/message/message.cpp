#include "message/message.hpp"

#include "util/assert.hpp"

namespace pcs::msg {

MessageBatch::MessageBatch(std::size_t n_inputs) : slots_(n_inputs) {
  PCS_REQUIRE(n_inputs > 0, "MessageBatch size");
}

void MessageBatch::add(const Message& m) {
  PCS_REQUIRE(m.source < slots_.size(), "MessageBatch::add wire range");
  PCS_REQUIRE(!slots_[m.source].has_value(), "MessageBatch::add wire already used");
  slots_[m.source] = m;
}

bool MessageBatch::has_message(std::size_t wire) const {
  PCS_REQUIRE(wire < slots_.size(), "MessageBatch::has_message range");
  return slots_[wire].has_value();
}

const Message& MessageBatch::message(std::size_t wire) const {
  PCS_REQUIRE(wire < slots_.size(), "MessageBatch::message range");
  PCS_REQUIRE(slots_[wire].has_value(), "MessageBatch::message empty wire");
  return *slots_[wire];
}

std::size_t MessageBatch::count() const noexcept {
  std::size_t k = 0;
  for (const auto& s : slots_) {
    if (s.has_value()) ++k;
  }
  return k;
}

BitVec MessageBatch::valid_bits() const {
  BitVec v(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) v.set(i, slots_[i].has_value());
  return v;
}

MessageBatch random_batch(const BitVec& valid, std::size_t payload_bits,
                          std::size_t dest_count, Rng& rng) {
  PCS_REQUIRE(dest_count > 0, "random_batch dest_count");
  MessageBatch batch(valid.size());
  for (std::size_t i = 0; i < valid.size(); ++i) {
    if (!valid.get(i)) continue;
    Message m;
    m.source = static_cast<std::uint32_t>(i);
    m.dest = static_cast<std::uint32_t>(rng.below(dest_count));
    m.payload = rng.bernoulli_bits(payload_bits, 0.5);
    batch.add(m);
  }
  return batch;
}

}  // namespace pcs::msg
