// Bit-serial messages (paper Section 2).
//
// A message is a stream of bits arriving on a wire at one bit per clock
// cycle.  The first bit is the valid bit; all valid bits arrive during the
// same cycle ("setup"), establish the electrical paths through the switch,
// and the following payload bits ride those paths unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace pcs::msg {

struct Message {
  std::uint32_t source = 0;  ///< input wire the message enters on
  std::uint32_t dest = 0;    ///< logical destination (used by the network layer)
  BitVec payload;            ///< bits following the valid bit

  bool operator==(const Message&) const = default;
};

/// What one switch sees at setup: at most one message per input wire.
class MessageBatch {
 public:
  explicit MessageBatch(std::size_t n_inputs);

  std::size_t n_inputs() const noexcept { return slots_.size(); }

  /// Place a message on its source wire.  The wire must be free and the
  /// message's source must match the wire index.
  void add(const Message& m);

  bool has_message(std::size_t wire) const;
  const Message& message(std::size_t wire) const;

  /// Number of messages in the batch (the paper's k).
  std::size_t count() const noexcept;

  /// The valid bits this batch presents at setup.
  BitVec valid_bits() const;

 private:
  std::vector<std::optional<Message>> slots_;
};

/// Build a batch of uniform-length random-payload messages on the wires set
/// in `valid`, destinations chosen uniformly in [0, dest_count).
MessageBatch random_batch(const BitVec& valid, std::size_t payload_bits,
                          std::size_t dest_count, Rng& rng);

}  // namespace pcs::msg
