#include "message/pipeline.hpp"

#include "util/assert.hpp"

namespace pcs::msg {

std::size_t PipelineModel::flight_cycles(std::size_t gate_delays) const {
  PCS_REQUIRE(gates_per_cycle > 0, "PipelineModel gates_per_cycle");
  return (gate_delays + gates_per_cycle - 1) / gates_per_cycle;
}

std::size_t PipelineModel::message_latency(std::size_t gate_delays) const {
  return flight_cycles(gate_delays) + setup_period();
}

double PipelineModel::messages_per_cycle(double routed_per_setup) const {
  PCS_REQUIRE(routed_per_setup >= 0.0, "PipelineModel routed_per_setup");
  return routed_per_setup / static_cast<double>(setup_period());
}

double PipelineModel::payload_bits_per_cycle(double routed_per_setup) const {
  return messages_per_cycle(routed_per_setup) * static_cast<double>(payload_bits);
}

}  // namespace pcs::msg
