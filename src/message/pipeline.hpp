// Pipelined-throughput model for combinational concentrator switches.
//
// Section 2's message format: a setup cycle carries the valid bits, the next
// L cycles carry payload.  Because the switch is combinational and the paths
// persist for a whole message, a new batch can begin every L + 1 cycles, and
// consecutive batches overlap in the wire pipeline.  Given a clock that
// accommodates `gates_per_cycle` gate delays, a design with G gate delays of
// message latency adds ceil(G / gates_per_cycle) cycles of time-of-flight.
//
// This converts the paper's gate-delay figures into the numbers a system
// architect compares: sustained messages/cycle and payload bits/cycle per
// switch, and end-to-end message latency.
#pragma once

#include <cstdint>

namespace pcs::msg {

struct PipelineModel {
  std::size_t payload_bits = 32;   ///< L: payload cycles per message
  std::size_t gates_per_cycle = 8; ///< gate delays the clock period absorbs

  /// Cycles between consecutive setups: L + 1.
  std::size_t setup_period() const noexcept { return payload_bits + 1; }

  /// Time-of-flight cycles for a switch with `gate_delays` of logic.
  std::size_t flight_cycles(std::size_t gate_delays) const;

  /// Total latency of one message: flight + setup + payload drain.
  std::size_t message_latency(std::size_t gate_delays) const;

  /// Sustained messages per cycle when `routed_per_setup` messages win
  /// output wires each setup.
  double messages_per_cycle(double routed_per_setup) const;

  /// Sustained payload bits per cycle.
  double payload_bits_per_cycle(double routed_per_setup) const;
};

}  // namespace pcs::msg
