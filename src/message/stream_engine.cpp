#include "message/stream_engine.hpp"

#include "util/assert.hpp"

namespace pcs::msg {

double StreamStats::messages_per_cycle() const {
  return total_cycles == 0
             ? 0.0
             : static_cast<double>(delivered) / static_cast<double>(total_cycles);
}

double StreamStats::bits_per_cycle() const {
  return total_cycles == 0
             ? 0.0
             : static_cast<double>(payload_bits) / static_cast<double>(total_cycles);
}

double StreamStats::delivery_rate() const {
  return offered == 0 ? 1.0
                      : static_cast<double>(delivered) / static_cast<double>(offered);
}

StreamStats run_stream(const pcs::sw::ConcentratorSwitch& sw, TrafficGen& gen,
                       Rng& rng, std::size_t batches, const PipelineModel& pipe,
                       std::size_t switch_gate_delays) {
  PCS_REQUIRE(gen.width() == sw.inputs(), "run_stream traffic width");
  PCS_REQUIRE(batches > 0, "run_stream batches");
  StreamStats stats;
  stats.batches = batches;
  stats.flight_cycles = pipe.flight_cycles(switch_gate_delays);
  for (std::size_t b = 0; b < batches; ++b) {
    BitVec valid = gen.next(rng);
    stats.offered += valid.count();
    pcs::sw::SwitchRouting r = sw.route(valid);
    PCS_REQUIRE(r.is_partial_injection(), "run_stream invalid routing");
    std::size_t routed = r.routed_count();
    stats.delivered += routed;
    stats.payload_bits += routed * pipe.payload_bits;
  }
  // Batches start every setup_period() cycles; the final batch's last bit
  // emerges flight + setup_period cycles after its setup begins.
  stats.total_cycles =
      (batches - 1) * pipe.setup_period() + pipe.setup_period() + stats.flight_cycles;
  return stats;
}

}  // namespace pcs::msg
