// Continuous-stream engine: back-to-back message batches pipelined through
// a combinational switch.
//
// run_clocked() simulates one batch in isolation; real deployments stream:
// a new setup begins every L + 1 cycles (valid cycle + L payload cycles)
// while earlier batches are still in flight through the switch's gate
// pipeline.  This engine drives a traffic generator for a whole campaign,
// accounts cycles with the PipelineModel, and reports sustained throughput
// and per-batch delivery -- the numbers behind the D6c table, measured
// rather than assumed.
#pragma once

#include <cstdint>

#include "message/pipeline.hpp"
#include "message/traffic.hpp"
#include "switch/concentrator.hpp"
#include "util/rng.hpp"

namespace pcs::msg {

struct StreamStats {
  std::size_t batches = 0;
  std::size_t offered = 0;         ///< messages presented across all batches
  std::size_t delivered = 0;       ///< messages that won output wires
  std::size_t payload_bits = 0;    ///< payload bits delivered
  std::size_t total_cycles = 0;    ///< first setup to last bit out
  std::size_t flight_cycles = 0;   ///< pipeline fill from the delay model

  double messages_per_cycle() const;
  double bits_per_cycle() const;
  double delivery_rate() const;
};

/// Stream `batches` consecutive batches from `gen` through `sw`; each batch
/// occupies the switch for pipe.setup_period() cycles, with pipe's flight
/// time added once at the tail (the pipeline fill).
StreamStats run_stream(const pcs::sw::ConcentratorSwitch& sw, TrafficGen& gen,
                       Rng& rng, std::size_t batches, const PipelineModel& pipe,
                       std::size_t switch_gate_delays);

}  // namespace pcs::msg
