#include "message/traffic.hpp"

#include <sstream>

#include "traffic/pattern.hpp"
#include "util/assert.hpp"

namespace pcs::msg {
namespace {

std::vector<double> hotspot_rates(std::size_t width, std::size_t hot,
                                  double p_hot, double p_cold) {
  PCS_REQUIRE(hot <= width, "HotSpotTraffic hot range");
  std::vector<double> rates(width, p_cold);
  for (std::size_t i = 0; i < hot; ++i) rates[i] = p_hot;
  return rates;
}

}  // namespace

BernoulliTraffic::BernoulliTraffic(std::size_t width, double p)
    : TrafficGen(width), process_(width, p) {}

BitVec BernoulliTraffic::next(Rng& rng) { return process_.next(rng); }

std::string BernoulliTraffic::name() const { return process_.name(); }

ExactCountTraffic::ExactCountTraffic(std::size_t width, std::size_t k)
    : TrafficGen(width), process_(width, k) {}

BitVec ExactCountTraffic::next(Rng& rng) { return process_.next(rng); }

std::string ExactCountTraffic::name() const { return process_.name(); }

BurstyTraffic::BurstyTraffic(std::size_t width, double p_on, double p_off,
                             double on_to_off, double off_to_on)
    : TrafficGen(width),
      process_(width, p_on, p_off, on_to_off, off_to_on),
      p_on_(p_on),
      p_off_(p_off) {}

BitVec BurstyTraffic::next(Rng& rng) { return process_.next(rng); }

std::string BurstyTraffic::name() const {
  // Keep the historical label (reports pin it), not OnOffProcess's.
  std::ostringstream os;
  os << "bursty(on=" << p_on_ << ",off=" << p_off_ << ")";
  return os.str();
}

HotSpotTraffic::HotSpotTraffic(std::size_t width, std::size_t hot, double p_hot,
                               double p_cold)
    : TrafficGen(width),
      hot_(hot),
      process_(hotspot_rates(width, hot, p_hot, p_cold)) {}

BitVec HotSpotTraffic::next(Rng& rng) { return process_.next(rng); }

std::string HotSpotTraffic::name() const {
  std::ostringstream os;
  os << "hotspot(" << hot_ << "/" << width_ << ")";
  return os.str();
}

AdversarialTraffic::AdversarialTraffic(std::size_t width, std::size_t k,
                                       std::size_t chip_w)
    : TrafficGen(width), source_(width, k, chip_w) {}

BitVec AdversarialTraffic::next(Rng& rng) { return source_.next_valid(rng); }

std::string AdversarialTraffic::name() const { return source_.name(); }

}  // namespace pcs::msg
