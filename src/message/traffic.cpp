#include "message/traffic.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace pcs::msg {

BernoulliTraffic::BernoulliTraffic(std::size_t width, double p)
    : TrafficGen(width), p_(p) {
  PCS_REQUIRE(p >= 0.0 && p <= 1.0, "BernoulliTraffic p");
}

BitVec BernoulliTraffic::next(Rng& rng) { return rng.bernoulli_bits(width_, p_); }

std::string BernoulliTraffic::name() const {
  std::ostringstream os;
  os << "bernoulli(p=" << p_ << ")";
  return os.str();
}

ExactCountTraffic::ExactCountTraffic(std::size_t width, std::size_t k)
    : TrafficGen(width), k_(k) {
  PCS_REQUIRE(k <= width, "ExactCountTraffic k");
}

BitVec ExactCountTraffic::next(Rng& rng) { return rng.exact_weight_bits(width_, k_); }

std::string ExactCountTraffic::name() const {
  std::ostringstream os;
  os << "exact(k=" << k_ << ")";
  return os.str();
}

BurstyTraffic::BurstyTraffic(std::size_t width, double p_on, double p_off,
                             double on_to_off, double off_to_on)
    : TrafficGen(width),
      p_on_(p_on),
      p_off_(p_off),
      on_to_off_(on_to_off),
      off_to_on_(off_to_on),
      state_on_(width, false) {
  PCS_REQUIRE(p_on >= 0 && p_on <= 1 && p_off >= 0 && p_off <= 1, "BurstyTraffic p");
  PCS_REQUIRE(on_to_off >= 0 && on_to_off <= 1 && off_to_on >= 0 && off_to_on <= 1,
              "BurstyTraffic transitions");
}

BitVec BurstyTraffic::next(Rng& rng) {
  BitVec out(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    if (state_on_[i]) {
      if (rng.chance(on_to_off_)) state_on_[i] = false;
    } else {
      if (rng.chance(off_to_on_)) state_on_[i] = true;
    }
    out.set(i, rng.chance(state_on_[i] ? p_on_ : p_off_));
  }
  return out;
}

std::string BurstyTraffic::name() const {
  std::ostringstream os;
  os << "bursty(on=" << p_on_ << ",off=" << p_off_ << ")";
  return os.str();
}

HotSpotTraffic::HotSpotTraffic(std::size_t width, std::size_t hot, double p_hot,
                               double p_cold)
    : TrafficGen(width), hot_(hot), p_hot_(p_hot), p_cold_(p_cold) {
  PCS_REQUIRE(hot <= width, "HotSpotTraffic hot range");
}

BitVec HotSpotTraffic::next(Rng& rng) {
  BitVec out(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    out.set(i, rng.chance(i < hot_ ? p_hot_ : p_cold_));
  }
  return out;
}

std::string HotSpotTraffic::name() const {
  std::ostringstream os;
  os << "hotspot(" << hot_ << "/" << width_ << ")";
  return os.str();
}

AdversarialTraffic::AdversarialTraffic(std::size_t width, std::size_t k,
                                       std::size_t chip_w)
    : TrafficGen(width), k_(k), chip_w_(chip_w) {
  PCS_REQUIRE(k <= width, "AdversarialTraffic k");
  PCS_REQUIRE(chip_w >= 1, "AdversarialTraffic chip width");
}

BitVec AdversarialTraffic::next(Rng& rng) {
  (void)rng;  // the family is deterministic
  BitVec out(width_);
  const std::size_t pattern = cursor_ % family_size();
  ++cursor_;
  std::size_t placed = 0;
  switch (pattern) {
    case 0:  // prefix block
      for (std::size_t i = 0; i < k_; ++i) out.set(i, true);
      break;
    case 1:  // suffix block
      for (std::size_t i = 0; i < k_; ++i) out.set(width_ - 1 - i, true);
      break;
    case 2: {  // even stride across the whole width
      if (k_ > 0) {
        for (std::size_t i = 0; i < k_; ++i) {
          out.set((i * width_) / k_, true);
        }
      }
      break;
    }
    case 3: {  // first pins of each chip first (fills chips breadth-first)
      for (std::size_t pin = 0; pin < chip_w_ && placed < k_; ++pin) {
        for (std::size_t chip = 0; chip * chip_w_ + pin < width_ && placed < k_;
             ++chip) {
          out.set(chip * chip_w_ + pin, true);
          ++placed;
        }
      }
      break;
    }
    case 4: {  // diagonal within chips
      for (std::size_t d = 0; placed < k_; ++d) {
        for (std::size_t chip = 0; chip * chip_w_ < width_ && placed < k_; ++chip) {
          std::size_t idx = chip * chip_w_ + ((chip + d) % chip_w_);
          if (idx < width_ && !out.get(idx)) {
            out.set(idx, true);
            ++placed;
          }
        }
        if (d > width_) break;  // safety for degenerate shapes
      }
      break;
    }
  }
  return out;
}

std::string AdversarialTraffic::name() const {
  std::ostringstream os;
  os << "adversarial(k=" << k_ << ")";
  return os.str();
}

}  // namespace pcs::msg
