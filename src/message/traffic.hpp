// Valid-bit traffic generators: the synthetic stand-in for the "parallel
// supercomputer" whose processors feed the switch (DESIGN.md section 4,
// substitution 3).
//
// Each generator produces one valid-bit pattern per call.  Besides the
// memoryless Bernoulli workload, there are bursty sources (two-state Markov
// chains, modelling processors that alternate compute and communication
// phases), hot-spot workloads (a clustered subset of wires is much more
// active -- the case that stresses a nearsorting switch, since clustered
// valid bits concentrate into few mesh columns), and structured adversarial
// patterns used by the load-ratio benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace pcs::msg {

class TrafficGen {
 public:
  virtual ~TrafficGen() = default;
  virtual BitVec next(Rng& rng) = 0;
  virtual std::string name() const = 0;
  std::size_t width() const noexcept { return width_; }

 protected:
  explicit TrafficGen(std::size_t width) : width_(width) {}
  std::size_t width_;
};

/// Independent Bernoulli(p) valid bits.
class BernoulliTraffic : public TrafficGen {
 public:
  BernoulliTraffic(std::size_t width, double p);
  BitVec next(Rng& rng) override;
  std::string name() const override;

 private:
  double p_;
};

/// Exactly k valid bits, uniformly placed.
class ExactCountTraffic : public TrafficGen {
 public:
  ExactCountTraffic(std::size_t width, std::size_t k);
  BitVec next(Rng& rng) override;
  std::string name() const override;

 private:
  std::size_t k_;
};

/// Per-wire two-state Markov chain: in the ON state a wire is valid with
/// probability p_on, in OFF with p_off; switches state with the given
/// transition probabilities.  Produces temporally correlated bursts.
class BurstyTraffic : public TrafficGen {
 public:
  BurstyTraffic(std::size_t width, double p_on, double p_off, double on_to_off,
                double off_to_on);
  BitVec next(Rng& rng) override;
  std::string name() const override;

 private:
  double p_on_, p_off_, on_to_off_, off_to_on_;
  std::vector<bool> state_on_;
};

/// A contiguous block of `hot` wires is valid with probability p_hot, the
/// rest with p_cold.  Spatially clustered load.
class HotSpotTraffic : public TrafficGen {
 public:
  HotSpotTraffic(std::size_t width, std::size_t hot, double p_hot, double p_cold);
  BitVec next(Rng& rng) override;
  std::string name() const override;

 private:
  std::size_t hot_;
  double p_hot_, p_cold_;
};

/// Structured adversarial patterns with exactly k valid bits, cycling
/// through a family of layouts (prefix block, suffix block, even stride,
/// per-chip-first-pins, diagonal) that historically maximize measured
/// nearsortedness epsilon for mesh-based switches of chip width `chip_w`.
class AdversarialTraffic : public TrafficGen {
 public:
  AdversarialTraffic(std::size_t width, std::size_t k, std::size_t chip_w);
  BitVec next(Rng& rng) override;
  std::string name() const override;

  /// Number of distinct patterns in the family (next() cycles through them).
  std::size_t family_size() const noexcept { return 5; }

 private:
  std::size_t k_;
  std::size_t chip_w_;
  std::size_t cursor_ = 0;
};

}  // namespace pcs::msg
