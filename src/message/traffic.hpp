// Legacy valid-bit traffic generators -- DEPRECATED thin adapters.
//
// The real traffic model lives in src/traffic/ (spatial pattern x injection
// process, trace replay, adversarial search); construct sources through
// traffic/factory.hpp.  These classes remain only for callers that still
// speak the old `BitVec next(Rng&)` interface (the stream engine, a few
// benches, and tests); each one delegates to the equivalent src/traffic/
// piece, so both interfaces draw identical streams from equal seeds.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "traffic/injection.hpp"
#include "traffic/traffic_source.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace pcs::msg {

class TrafficGen {
 public:
  virtual ~TrafficGen() = default;
  virtual BitVec next(Rng& rng) = 0;
  virtual std::string name() const = 0;
  std::size_t width() const noexcept { return width_; }

 protected:
  explicit TrafficGen(std::size_t width) : width_(width) {}
  std::size_t width_;
};

/// Independent Bernoulli(p) valid bits.  Adapter over
/// traffic::BernoulliProcess.
class BernoulliTraffic : public TrafficGen {
 public:
  BernoulliTraffic(std::size_t width, double p);
  BitVec next(Rng& rng) override;
  std::string name() const override;

 private:
  traffic::BernoulliProcess process_;
};

/// Exactly k valid bits, uniformly placed.  Adapter over
/// traffic::ExactCountProcess.
class ExactCountTraffic : public TrafficGen {
 public:
  ExactCountTraffic(std::size_t width, std::size_t k);
  BitVec next(Rng& rng) override;
  std::string name() const override;

 private:
  traffic::ExactCountProcess process_;
};

/// Per-wire two-state Markov chain.  Adapter over traffic::OnOffProcess.
class BurstyTraffic : public TrafficGen {
 public:
  BurstyTraffic(std::size_t width, double p_on, double p_off, double on_to_off,
                double off_to_on);
  BitVec next(Rng& rng) override;
  std::string name() const override;

 private:
  traffic::OnOffProcess process_;
  double p_on_, p_off_;
};

/// A contiguous block of `hot` wires is valid with probability p_hot, the
/// rest with p_cold.  Adapter over a rate-profiled
/// traffic::BernoulliProcess.
class HotSpotTraffic : public TrafficGen {
 public:
  HotSpotTraffic(std::size_t width, std::size_t hot, double p_hot, double p_cold);
  BitVec next(Rng& rng) override;
  std::string name() const override;

 private:
  std::size_t hot_;
  traffic::BernoulliProcess process_;
};

/// Structured adversarial patterns with exactly k valid bits.  Adapter over
/// traffic::AdversarialSource.
class AdversarialTraffic : public TrafficGen {
 public:
  AdversarialTraffic(std::size_t width, std::size_t k, std::size_t chip_w);
  BitVec next(Rng& rng) override;
  std::string name() const override;

  /// Number of distinct patterns in the family (next() cycles through them).
  std::size_t family_size() const noexcept { return source_.family_size(); }

 private:
  traffic::AdversarialSource source_;
};

}  // namespace pcs::msg
