#include "network/concentrator_tree.hpp"

#include "switch/columnsort_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"

namespace pcs::net {

ConcentratorTree::ConcentratorTree(
    std::vector<std::unique_ptr<pcs::sw::ConcentratorSwitch>> level1,
    std::unique_ptr<pcs::sw::ConcentratorSwitch> level2)
    : level1_(std::move(level1)), level2_(std::move(level2)) {
  PCS_REQUIRE(!level1_.empty(), "ConcentratorTree needs level-1 switches");
  PCS_REQUIRE(level2_ != nullptr, "ConcentratorTree needs a trunk switch");
  const std::size_t n = level1_[0]->inputs();
  const std::size_t m = level1_[0]->outputs();
  for (const auto& sw : level1_) {
    PCS_REQUIRE(sw->inputs() == n && sw->outputs() == m,
                "ConcentratorTree level-1 switches must be uniform");
  }
  PCS_REQUIRE(level2_->inputs() == level1_.size() * m,
              "ConcentratorTree trunk width mismatch");
}

std::size_t ConcentratorTree::inputs_per_group() const {
  return level1_[0]->inputs();
}

std::size_t ConcentratorTree::total_inputs() const {
  return groups() * inputs_per_group();
}

std::size_t ConcentratorTree::trunk_outputs() const { return level2_->outputs(); }

const pcs::sw::ConcentratorSwitch& ConcentratorTree::level1(std::size_t g) const {
  PCS_REQUIRE(g < level1_.size(), "ConcentratorTree::level1 index");
  return *level1_[g];
}

ConcentratorTree::ShotResult ConcentratorTree::route_once(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == total_inputs(), "ConcentratorTree::route_once width");
  const std::size_t n = inputs_per_group();
  const std::size_t m = level1_[0]->outputs();

  ShotResult result;
  result.trunk_output_of_source.assign(total_inputs(), -1);
  result.offered = valid.count();

  // Level 1: each group's switch routes its block; level-2 input wire
  // g * m + j carries group g's output j.
  std::vector<std::int32_t> level2_source(groups() * m, -1);
  BitVec level2_valid(groups() * m);
  for (std::size_t g = 0; g < groups(); ++g) {
    BitVec group_valid(n);
    for (std::size_t i = 0; i < n; ++i) group_valid.set(i, valid.get(g * n + i));
    pcs::sw::SwitchRouting r = level1_[g]->route(group_valid);
    for (std::size_t j = 0; j < m; ++j) {
      std::int32_t src = r.input_of_output[j];
      if (src >= 0) {
        level2_source[g * m + j] = static_cast<std::int32_t>(g * n) + src;
        level2_valid.set(g * m + j, true);
        ++result.survived_level1;
      }
    }
  }

  // Level 2: the trunk switch.
  pcs::sw::SwitchRouting trunk = level2_->route(level2_valid);
  for (std::size_t j = 0; j < level2_->outputs(); ++j) {
    std::int32_t wire = trunk.input_of_output[j];
    if (wire < 0) continue;
    std::int32_t src = level2_source[static_cast<std::size_t>(wire)];
    PCS_REQUIRE(src >= 0, "trunk routed an idle wire");
    result.trunk_output_of_source[static_cast<std::size_t>(src)] =
        static_cast<std::int32_t>(j);
    ++result.reached_trunk;
  }
  return result;
}

ConcentratorTree make_revsort_tree(std::size_t groups, std::size_t n, std::size_t m,
                                   std::size_t trunk_outputs) {
  std::vector<std::unique_ptr<pcs::sw::ConcentratorSwitch>> level1;
  level1.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    level1.push_back(std::make_unique<pcs::sw::RevsortSwitch>(n, m));
  }
  auto trunk = std::make_unique<pcs::sw::RevsortSwitch>(groups * m, trunk_outputs);
  return ConcentratorTree(std::move(level1), std::move(trunk));
}

ConcentratorTree make_columnsort_tree(std::size_t groups, std::size_t r, std::size_t s,
                                      std::size_t m, std::size_t trunk_outputs) {
  std::vector<std::unique_ptr<pcs::sw::ConcentratorSwitch>> level1;
  level1.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    level1.push_back(std::make_unique<pcs::sw::ColumnsortSwitch>(r, s, m));
  }
  // Trunk shape: keep the same aspect style, r2 rows = trunk inputs / s.
  const std::size_t trunk_n = groups * m;
  PCS_REQUIRE(trunk_n % s == 0, "make_columnsort_tree trunk width not divisible");
  const std::size_t r2 = trunk_n / s;
  auto trunk = std::make_unique<pcs::sw::ColumnsortSwitch>(r2, s, trunk_outputs);
  return ConcentratorTree(std::move(level1), std::move(trunk));
}

ConcentratorTree make_hyper_tree(std::size_t groups, std::size_t n, std::size_t m,
                                 std::size_t trunk_outputs) {
  std::vector<std::unique_ptr<pcs::sw::ConcentratorSwitch>> level1;
  level1.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    level1.push_back(std::make_unique<pcs::sw::HyperSwitch>(n, m));
  }
  auto trunk = std::make_unique<pcs::sw::HyperSwitch>(groups * m, trunk_outputs);
  return ConcentratorTree(std::move(level1), std::move(trunk));
}

}  // namespace pcs::net
