// The deployment the paper's introduction motivates: a parallel computer
// whose many processor channels are funneled onto fewer network ports.
//
// A ConcentratorTree is a two-level concentration hierarchy: `groups`
// first-level switches each take n processor channels down to m wires, and
// one second-level (trunk) switch takes the groups * m survivors down to
// the trunk width.  route_once() performs one setup of the whole tree;
// round-based traffic simulation with retries lives in router_sim.*.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "switch/concentrator.hpp"
#include "util/bitvec.hpp"

namespace pcs::net {

class ConcentratorTree {
 public:
  /// level1 switches must all have equal input/output counts; level2 must
  /// have exactly level1.size() * level1[0]->outputs() inputs.
  ConcentratorTree(std::vector<std::unique_ptr<pcs::sw::ConcentratorSwitch>> level1,
                   std::unique_ptr<pcs::sw::ConcentratorSwitch> level2);

  std::size_t groups() const noexcept { return level1_.size(); }
  std::size_t inputs_per_group() const;
  std::size_t total_inputs() const;
  std::size_t trunk_outputs() const;

  const pcs::sw::ConcentratorSwitch& level1(std::size_t g) const;
  const pcs::sw::ConcentratorSwitch& level2() const { return *level2_; }

  struct ShotResult {
    /// trunk_output_of_source[i] = trunk output carrying source i, or -1.
    std::vector<std::int32_t> trunk_output_of_source;
    std::size_t offered = 0;
    std::size_t survived_level1 = 0;
    std::size_t reached_trunk = 0;
  };

  /// One setup of the whole tree for the given source valid bits
  /// (size total_inputs(), group g owning the contiguous block
  /// [g * n, (g+1) * n)).
  ShotResult route_once(const BitVec& valid) const;

 private:
  std::vector<std::unique_ptr<pcs::sw::ConcentratorSwitch>> level1_;
  std::unique_ptr<pcs::sw::ConcentratorSwitch> level2_;
};

/// Tree with Revsort level-1 switches (n -> m each) and a Revsort trunk.
/// groups * m must itself be a valid Revsort size (square of a power of 2).
ConcentratorTree make_revsort_tree(std::size_t groups, std::size_t n, std::size_t m,
                                   std::size_t trunk_outputs);

/// Tree with Columnsort level-1 switches and a Columnsort trunk.
ConcentratorTree make_columnsort_tree(std::size_t groups, std::size_t r,
                                      std::size_t s, std::size_t m,
                                      std::size_t trunk_outputs);

/// Baseline: single-chip hyperconcentrators at both levels (what you would
/// build if pin count were no object).
ConcentratorTree make_hyper_tree(std::size_t groups, std::size_t n, std::size_t m,
                                 std::size_t trunk_outputs);

}  // namespace pcs::net
