#include "network/knockout.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace pcs::net {

KnockoutSwitch::KnockoutSwitch(
    std::size_t ports, std::size_t accept,
    const std::function<std::unique_ptr<pcs::sw::ConcentratorSwitch>(std::size_t,
                                                                     std::size_t)>&
        port_factory)
    : ports_(ports), accept_(accept) {
  PCS_REQUIRE(ports > 0 && accept > 0 && accept <= ports, "KnockoutSwitch shape");
  port_concentrators_.reserve(ports);
  for (std::size_t p = 0; p < ports; ++p) {
    auto sw = port_factory(ports, accept);
    PCS_REQUIRE(sw != nullptr && sw->inputs() == ports && sw->outputs() == accept,
                "KnockoutSwitch port factory mismatch");
    port_concentrators_.push_back(std::move(sw));
  }
}

KnockoutSwitch::SlotResult KnockoutSwitch::route_slot(
    const std::vector<std::int32_t>& dests) const {
  PCS_REQUIRE(dests.size() == ports_, "KnockoutSwitch::route_slot width");
  SlotResult result;
  // The broadcast fabric presents, at output port p, a valid bit per input
  // that addressed p; the port concentrator picks up to L of them.
  for (std::size_t p = 0; p < ports_; ++p) {
    BitVec valid(ports_);
    std::size_t here = 0;
    for (std::size_t i = 0; i < ports_; ++i) {
      if (dests[i] == static_cast<std::int32_t>(p)) {
        valid.set(i, true);
        ++here;
      }
    }
    if (here == 0) continue;
    result.offered += here;
    std::size_t accepted = port_concentrators_[p]->route(valid).routed_count();
    result.accepted += accepted;
    result.knocked_out += here - accepted;
  }
  return result;
}

double KnockoutSwitch::LoadStats::loss_rate() const {
  return offered == 0
             ? 0.0
             : static_cast<double>(offered - accepted) / static_cast<double>(offered);
}

KnockoutSwitch::LoadStats KnockoutSwitch::simulate_uniform(double load,
                                                           std::size_t slots,
                                                           Rng& rng) const {
  PCS_REQUIRE(load >= 0.0 && load <= 1.0, "KnockoutSwitch load");
  LoadStats stats;
  stats.slots = slots;
  std::vector<std::int32_t> dests(ports_);
  for (std::size_t t = 0; t < slots; ++t) {
    for (std::size_t i = 0; i < ports_; ++i) {
      dests[i] = rng.chance(load) ? static_cast<std::int32_t>(rng.below(ports_)) : -1;
    }
    SlotResult r = route_slot(dests);
    stats.offered += r.offered;
    stats.accepted += r.accepted;
  }
  return stats;
}

double KnockoutSwitch::predicted_loss(std::size_t ports, std::size_t accept,
                                      double load) {
  PCS_REQUIRE(ports > 0 && accept <= ports, "predicted_loss shape");
  PCS_REQUIRE(load >= 0.0 && load <= 1.0, "predicted_loss load");
  // Arrivals at one output ~ Binomial(N, p/N).  Expected excess beyond L,
  // divided by the expected arrivals p.
  const double n = static_cast<double>(ports);
  const double q = load / n;
  if (load == 0.0) return 0.0;
  double pk = std::pow(1.0 - q, n);  // P[K = 0]
  double excess = 0.0;
  for (std::size_t k = 1; k <= ports; ++k) {
    // Recurrence: P[K = k] = P[K = k-1] * (n - k + 1)/k * q/(1 - q).
    pk *= (n - static_cast<double>(k) + 1.0) / static_cast<double>(k) * q / (1.0 - q);
    if (k > accept) {
      excess += static_cast<double>(k - accept) * pk;
    }
  }
  return excess / load;
}

}  // namespace pcs::net
