// Knockout-style packet switch: the classic deployment of concentrator
// switches in communication networks (the paper's opening sentence: "The
// problem of concentrating relatively few signals on many input lines onto
// a lesser number of output lines must be solved in many kinds of
// communication networks").
//
// An N-input, N-output packet switch broadcasts every input to every output
// port; each output port then uses an N-to-L *concentrator* to accept up to
// L simultaneous packets per time slot (L << N), dropping the rest.  Under
// uniform random traffic the binomial tail makes the loss probability fall
// steeply in L -- with L = 8, famously below 1e-6 at full load -- so a
// cheap multichip partial concentrator per port is exactly what the design
// wants.  This module simulates the fabric with a pluggable per-port
// concentrator and measures the loss rate, letting the paper's switches be
// compared against the perfect baseline in their natural habitat.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "switch/concentrator.hpp"
#include "util/rng.hpp"

namespace pcs::net {

class KnockoutSwitch {
 public:
  /// N ports; each output port accepts up to L packets per slot through a
  /// concentrator produced by `port_factory(N, L)`.
  KnockoutSwitch(std::size_t ports, std::size_t accept,
                 const std::function<std::unique_ptr<pcs::sw::ConcentratorSwitch>(
                     std::size_t, std::size_t)>& port_factory);

  std::size_t ports() const noexcept { return ports_; }
  std::size_t accept() const noexcept { return accept_; }

  struct SlotResult {
    std::size_t offered = 0;
    std::size_t accepted = 0;
    std::size_t knocked_out = 0;  ///< lost to the per-port concentrators
  };

  /// One time slot: dests[i] is input i's destination port, or -1 if input
  /// i has no packet this slot.
  SlotResult route_slot(const std::vector<std::int32_t>& dests) const;

  struct LoadStats {
    std::size_t slots = 0;
    std::size_t offered = 0;
    std::size_t accepted = 0;
    double loss_rate() const;
  };

  /// Simulate `slots` time slots of uniform traffic: each input holds a
  /// packet with probability `load`, destination uniform over the ports.
  LoadStats simulate_uniform(double load, std::size_t slots, Rng& rng) const;

  /// The binomial-tail loss probability the Knockout analysis predicts for
  /// a *perfect* N-to-L concentrator under uniform load p: the expected
  /// number of packets beyond L at one output, over the expected arrivals.
  static double predicted_loss(std::size_t ports, std::size_t accept, double load);

 private:
  std::size_t ports_;
  std::size_t accept_;
  std::vector<std::unique_ptr<pcs::sw::ConcentratorSwitch>> port_concentrators_;
};

}  // namespace pcs::net
