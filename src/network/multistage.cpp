#include "network/multistage.hpp"

#include <algorithm>

#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::net {

MultistageNetwork::MultistageNetwork(std::size_t sources,
                                     const std::vector<LevelSpec>& levels,
                                     const SwitchFactory& factory)
    : sources_(sources) {
  PCS_REQUIRE(sources > 0, "MultistageNetwork sources");
  PCS_REQUIRE(!levels.empty(), "MultistageNetwork needs at least one level");
  std::size_t width = sources;
  for (const LevelSpec& spec : levels) {
    PCS_REQUIRE(spec.fan_in > 0 && spec.fan_out > 0 && spec.fan_out <= spec.fan_in,
                "MultistageNetwork level spec");
    PCS_REQUIRE(width % spec.fan_in == 0,
                "MultistageNetwork fan_in must divide the level width");
    Stage stage;
    stage.fan_in = spec.fan_in;
    stage.fan_out = spec.fan_out;
    const std::size_t count = width / spec.fan_in;
    stage.switches.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      auto sw = factory(spec.fan_in, spec.fan_out);
      PCS_REQUIRE(sw != nullptr && sw->inputs() == spec.fan_in &&
                      sw->outputs() == spec.fan_out,
                  "MultistageNetwork factory produced a mismatched switch");
      stage.switches.push_back(std::move(sw));
    }
    width = count * spec.fan_out;
    stages_.push_back(std::move(stage));
  }
}

std::size_t MultistageNetwork::trunk_width() const {
  const Stage& last = stages_.back();
  return last.switches.size() * last.fan_out;
}

std::size_t MultistageNetwork::switches_at(std::size_t level) const {
  PCS_REQUIRE(level < stages_.size(), "MultistageNetwork level index");
  return stages_[level].switches.size();
}

std::size_t MultistageNetwork::total_switches() const {
  std::size_t total = 0;
  for (const Stage& s : stages_) total += s.switches.size();
  return total;
}

const pcs::sw::ConcentratorSwitch& MultistageNetwork::switch_at(
    std::size_t level, std::size_t index) const {
  PCS_REQUIRE(level < stages_.size(), "MultistageNetwork level index");
  PCS_REQUIRE(index < stages_[level].switches.size(), "MultistageNetwork node index");
  return *stages_[level].switches[index];
}

MultistageNetwork::ShotResult MultistageNetwork::route_once(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == sources_, "MultistageNetwork::route_once width");
  ShotResult result;
  result.offered = valid.count();

  // wires[w] = source index carried by wire w at the current level, or -1.
  std::vector<std::int32_t> wires(sources_, -1);
  for (std::size_t i = 0; i < sources_; ++i) {
    if (valid.get(i)) wires[i] = static_cast<std::int32_t>(i);
  }

  for (const Stage& stage : stages_) {
    const std::size_t count = stage.switches.size();
    std::vector<std::int32_t> next(count * stage.fan_out, -1);
    std::size_t survivors = 0;
    for (std::size_t g = 0; g < count; ++g) {
      BitVec group_valid(stage.fan_in);
      for (std::size_t i = 0; i < stage.fan_in; ++i) {
        group_valid.set(i, wires[g * stage.fan_in + i] >= 0);
      }
      pcs::sw::SwitchRouting r = stage.switches[g]->route(group_valid);
      for (std::size_t j = 0; j < stage.fan_out; ++j) {
        std::int32_t local = r.input_of_output[j];
        if (local >= 0) {
          next[g * stage.fan_out + j] =
              wires[g * stage.fan_in + static_cast<std::size_t>(local)];
          ++survivors;
        }
      }
    }
    wires = std::move(next);
    result.survivors.push_back(survivors);
  }

  result.trunk_output_of_source.assign(sources_, -1);
  for (std::size_t w = 0; w < wires.size(); ++w) {
    if (wires[w] >= 0) {
      result.trunk_output_of_source[static_cast<std::size_t>(wires[w])] =
          static_cast<std::int32_t>(w);
    }
  }
  return result;
}

std::size_t MultistageNetwork::guaranteed_end_to_end_capacity() const {
  std::size_t cap = sources_;
  for (const Stage& s : stages_) {
    cap = std::min(cap, s.switches[0]->guaranteed_capacity());
  }
  return cap;
}

double MultistageNetwork::SimStats::delivery_rate() const {
  return offered == 0 ? 1.0
                      : static_cast<double>(delivered) / static_cast<double>(offered);
}

double MultistageNetwork::SimStats::mean_latency() const {
  return delivered == 0 ? 0.0 : total_latency_rounds / static_cast<double>(delivered);
}

MultistageNetwork::SimStats MultistageNetwork::simulate(double arrival_p,
                                                        std::size_t rounds,
                                                        Rng& rng) const {
  SimStats stats;
  stats.rounds = rounds;
  stats.cut_at_level.assign(levels(), 0);
  std::vector<std::int64_t> born(sources_, -1);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < sources_; ++i) {
      if (born[i] < 0 && rng.chance(arrival_p)) {
        born[i] = static_cast<std::int64_t>(round);
        ++stats.offered;
      }
    }
    BitVec valid(sources_);
    std::size_t backlog = 0;
    for (std::size_t i = 0; i < sources_; ++i) {
      if (born[i] >= 0) {
        valid.set(i, true);
        ++backlog;
      }
    }
    stats.max_backlog = std::max(stats.max_backlog, backlog);
    if (backlog == 0) continue;

    ShotResult shot = route_once(valid);
    std::size_t entering = backlog;
    for (std::size_t l = 0; l < shot.survivors.size(); ++l) {
      stats.cut_at_level[l] += entering - shot.survivors[l];
      entering = shot.survivors[l];
    }
    for (std::size_t i = 0; i < sources_; ++i) {
      if (born[i] >= 0 && shot.trunk_output_of_source[i] >= 0) {
        stats.total_latency_rounds +=
            static_cast<double>(round - static_cast<std::size_t>(born[i]));
        ++stats.delivered;
        born[i] = -1;
      }
    }
  }
  return stats;
}

SwitchFactory hyper_factory() {
  return [](std::size_t inputs, std::size_t outputs) {
    return std::make_unique<pcs::sw::HyperSwitch>(inputs, outputs);
  };
}

SwitchFactory revsort_or_hyper_factory() {
  return [](std::size_t inputs,
            std::size_t outputs) -> std::unique_ptr<pcs::sw::ConcentratorSwitch> {
    std::size_t side = isqrt(inputs);
    if (side * side == inputs && is_pow2(side)) {
      return std::make_unique<pcs::sw::RevsortSwitch>(inputs, outputs);
    }
    return std::make_unique<pcs::sw::HyperSwitch>(inputs, outputs);
  };
}

}  // namespace pcs::net
