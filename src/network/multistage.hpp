// L-level concentration networks: the general form of the two-level
// ConcentratorTree, for deployments where traffic funnels through several
// tiers (board -> cabinet -> machine trunk, the topology the paper's
// introduction gestures at).
//
// Level l consists of `width(l) / fan_in(l)` identical switches, each taking
// fan_in(l) wires down to out(l) wires; level l+1's input width is
// (width(l) / fan_in(l)) * out(l).  route_once() performs one setup of the
// whole network and reports per-level survivor counts, so the designer can
// see exactly which tier cuts traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "switch/concentrator.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace pcs::net {

/// Builds the switch used by every node of one level: called with the
/// node's input count n_l and must return a switch with inputs() == n_l.
using SwitchFactory = std::function<std::unique_ptr<pcs::sw::ConcentratorSwitch>(
    std::size_t inputs, std::size_t outputs)>;

class MultistageNetwork {
 public:
  struct LevelSpec {
    std::size_t fan_in;   ///< wires into each switch of this level
    std::size_t fan_out;  ///< wires out of each switch of this level
  };

  /// Build a network over `sources` input wires.  Each level's fan_in must
  /// divide that level's width; fan_out <= fan_in.
  MultistageNetwork(std::size_t sources, const std::vector<LevelSpec>& levels,
                    const SwitchFactory& factory);

  std::size_t sources() const noexcept { return sources_; }
  std::size_t levels() const noexcept { return stages_.size(); }
  std::size_t trunk_width() const;

  /// Number of switches at level l and in total.
  std::size_t switches_at(std::size_t level) const;
  std::size_t total_switches() const;

  const pcs::sw::ConcentratorSwitch& switch_at(std::size_t level,
                                               std::size_t index) const;

  struct ShotResult {
    std::vector<std::int32_t> trunk_output_of_source;  ///< -1 if cut
    std::size_t offered = 0;
    std::vector<std::size_t> survivors;  ///< after each level
  };

  /// One setup of the whole network.
  ShotResult route_once(const BitVec& valid) const;

  struct SimStats {
    std::size_t rounds = 0;
    std::size_t offered = 0;
    std::size_t delivered = 0;
    std::vector<std::size_t> cut_at_level;  ///< waiting messages cut per level
    std::size_t max_backlog = 0;
    double total_latency_rounds = 0.0;

    double delivery_rate() const;
    double mean_latency() const;
  };

  /// Round-based traffic with buffered retries, as router_sim does for the
  /// two-level tree: each round idle sources arrive with probability
  /// arrival_p, waiting messages present valid bits, winners leave.
  SimStats simulate(double arrival_p, std::size_t rounds, Rng& rng) const;

  /// Worst-case lossless capacity of the whole network: messages per setup
  /// guaranteed through every level regardless of placement, which is
  /// limited by each level's per-switch guaranteed capacity (adversarial
  /// placement can direct everything at one switch) -- the min over levels
  /// of the per-switch capacity at that level.
  std::size_t guaranteed_end_to_end_capacity() const;

 private:
  struct Stage {
    std::vector<std::unique_ptr<pcs::sw::ConcentratorSwitch>> switches;
    std::size_t fan_in;
    std::size_t fan_out;
  };

  std::size_t sources_;
  std::vector<Stage> stages_;
};

/// Convenience factory: every node is a single-chip HyperSwitch.
SwitchFactory hyper_factory();

/// Convenience factory: Revsort switches where the shape allows (input
/// count a square of a power of two), falling back to HyperSwitch
/// otherwise.  The fallback keeps mixed tiers buildable; real designs size
/// tiers so the multichip switch fits.
SwitchFactory revsort_or_hyper_factory();

}  // namespace pcs::net
