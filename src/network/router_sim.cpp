#include "network/router_sim.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace pcs::net {

double TreeSimStats::delivery_rate() const {
  return offered == 0 ? 1.0 : static_cast<double>(delivered) / static_cast<double>(offered);
}

double TreeSimStats::mean_latency() const {
  return delivered == 0 ? 0.0 : total_latency_rounds / static_cast<double>(delivered);
}

double TreeSimStats::trunk_utilization(const ConcentratorTree& tree) const {
  const double capacity =
      static_cast<double>(rounds) * static_cast<double>(tree.trunk_outputs());
  return capacity == 0.0 ? 0.0 : static_cast<double>(delivered) / capacity;
}

std::string TreeSimStats::to_string() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " offered=" << offered << " delivered=" << delivered
     << " (rate " << delivery_rate() << ") l1-rejects=" << level1_rejections
     << " trunk-rejects=" << trunk_rejections << " mean-latency=" << mean_latency()
     << " max-backlog=" << max_backlog;
  return os.str();
}

TreeSimStats simulate_tree(const ConcentratorTree& tree, double arrival_p,
                           std::size_t rounds, Rng& rng) {
  const std::size_t n = tree.total_inputs();
  std::vector<std::int64_t> born(n, -1);  // -1 = idle source
  TreeSimStats stats;
  stats.rounds = rounds;

  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      if (born[i] < 0 && rng.chance(arrival_p)) {
        born[i] = static_cast<std::int64_t>(round);
        ++stats.offered;
      }
    }
    BitVec valid(n);
    std::size_t backlog = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (born[i] >= 0) {
        valid.set(i, true);
        ++backlog;
      }
    }
    stats.max_backlog = std::max(stats.max_backlog, backlog);
    if (backlog == 0) continue;

    ConcentratorTree::ShotResult shot = tree.route_once(valid);
    stats.trunk_rejections += shot.survived_level1 - shot.reached_trunk;
    stats.level1_rejections += backlog - shot.survived_level1;
    for (std::size_t i = 0; i < n; ++i) {
      if (born[i] >= 0 && shot.trunk_output_of_source[i] >= 0) {
        const std::size_t waited = round - static_cast<std::size_t>(born[i]);
        stats.total_latency_rounds += static_cast<double>(waited);
        if (stats.latency_histogram.size() <= waited) {
          stats.latency_histogram.resize(waited + 1, 0);
        }
        ++stats.latency_histogram[waited];
        ++stats.delivered;
        born[i] = -1;
      }
    }
  }
  return stats;
}

}  // namespace pcs::net
