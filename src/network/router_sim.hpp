// Round-based traffic simulation over a ConcentratorTree with buffered
// retries: the message-routing life of the switches inside a parallel
// computer, reported as throughput and latency statistics.
//
// Each round, every idle source generates a message with probability
// arrival_p; all waiting messages present valid bits; the tree routes one
// setup; sources whose messages reach the trunk become idle again, the rest
// keep their message buffered for the next round (the buffer-and-retry
// congestion discipline of Section 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "network/concentrator_tree.hpp"
#include "util/rng.hpp"

namespace pcs::net {

struct TreeSimStats {
  std::size_t rounds = 0;
  std::size_t offered = 0;
  std::size_t delivered = 0;
  std::size_t level1_rejections = 0;  ///< waiting messages cut at level 1
  std::size_t trunk_rejections = 0;   ///< survived level 1, cut at the trunk
  std::size_t max_backlog = 0;
  double total_latency_rounds = 0.0;
  std::vector<std::size_t> latency_histogram;  ///< index = rounds waited

  double delivery_rate() const;
  double mean_latency() const;
  double trunk_utilization(const ConcentratorTree& tree) const;
  std::string to_string() const;
};

TreeSimStats simulate_tree(const ConcentratorTree& tree, double arrival_p,
                           std::size_t rounds, Rng& rng);

}  // namespace pcs::net
