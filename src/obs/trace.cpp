#include "obs/trace.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace pcs::obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

std::uint64_t read_ticks() noexcept {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

// Per-thread recording buffer.  Registered once per thread and kept alive by
// the global registry (shared_ptr), so a thread exiting never loses data and
// drain() never races a destructor.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanRecord> spans;
  std::map<std::string, std::uint64_t> counters;
};

}  // namespace

struct Tracer::Impl {
  std::mutex registry_mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;

  std::mutex intern_mu;
  std::set<std::string> interned;  // node-based: c_str() stays stable

  std::atomic<std::uint64_t> logical{0};
  std::atomic<ClockMode> mode{ClockMode::kTsc};

  // Tick -> microsecond calibration anchors (tsc mode).
  std::uint64_t t0_ticks = 0;
  std::chrono::steady_clock::time_point t0_wall{};

  ThreadBuffer& local() {
    thread_local std::shared_ptr<ThreadBuffer> tls;
    if (!tls) {
      tls = std::make_shared<ThreadBuffer>();
      std::lock_guard<std::mutex> lock(registry_mu);
      buffers.push_back(tls);
    }
    return *tls;
  }
};

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Impl& Tracer::impl() {
  static Impl impl;
  return impl;
}

void Tracer::enable(ClockMode mode) {
  if (!kCompiledIn) return;
  clear();
  Impl& im = impl();
  im.mode.store(mode, std::memory_order_relaxed);
  im.logical.store(0, std::memory_order_relaxed);
  im.t0_ticks = read_ticks();
  im.t0_wall = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() noexcept {
  enabled_.store(false, std::memory_order_release);
}

void Tracer::clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.registry_mu);
  for (auto& buf : im.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->spans.clear();
    buf->counters.clear();
  }
  im.logical.store(0, std::memory_order_relaxed);
}

TraceSnapshot Tracer::drain() {
  Impl& im = impl();
  TraceSnapshot snap;
  snap.clock = im.mode.load(std::memory_order_relaxed);
  if (snap.clock == ClockMode::kTsc) {
    const std::uint64_t t1 = read_ticks();
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - im.t0_wall)
                          .count();
    snap.ticks_per_us =
        us > 1.0 ? static_cast<double>(t1 - im.t0_ticks) / us : 1.0;
    if (snap.ticks_per_us <= 0.0) snap.ticks_per_us = 1.0;
  }
  std::lock_guard<std::mutex> lock(im.registry_mu);
  for (auto& buf : im.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    snap.spans.insert(snap.spans.end(), buf->spans.begin(), buf->spans.end());
    for (const auto& [name, v] : buf->counters) snap.counters[name] += v;
    buf->spans.clear();
    buf->counters.clear();
  }
  return snap;
}

const char* Tracer::intern(const std::string& s) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.intern_mu);
  return im.interned.insert(s).first->c_str();
}

std::uint64_t Tracer::now() noexcept {
  Impl& im = impl();
  if (im.mode.load(std::memory_order_relaxed) == ClockMode::kLogical) {
    return im.logical.fetch_add(1, std::memory_order_relaxed);
  }
  return read_ticks();
}

void Tracer::record(const SpanRecord& rec) {
  ThreadBuffer& buf = impl().local();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.spans.push_back(rec);
}

void Tracer::counter_add(const char* name, std::uint64_t delta) {
  ThreadBuffer& buf = impl().local();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.counters[name] += delta;
}

void SpanGuard::open(const char* name, const char* category) noexcept {
  rec_.name = name;
  rec_.cat = category;
  rec_.begin = Tracer::instance().now();
}

void SpanGuard::close() noexcept {
  Tracer& tracer = Tracer::instance();
  rec_.end = tracer.now();
  rec_.tid = static_cast<std::uint32_t>(ThreadPool::current_worker_id());
  tracer.record(rec_);
}

std::map<std::string, SpanStat> aggregate_spans(const TraceSnapshot& snap) {
  std::map<std::string, SpanStat> out;
  for (const SpanRecord& s : snap.spans) {
    SpanStat& st = out[s.name];
    const std::uint64_t dur = s.end - s.begin;
    ++st.count;
    st.total_ticks += dur;
    st.max_ticks = std::max(st.max_ticks, dur);
  }
  return out;
}

namespace {

std::string fmt_us(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  PCS_REQUIRE(ec == std::errc(), "to_chars failed for trace timestamp");
  std::string s(buf, ptr);
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

std::string escape(const char* s) {
  std::string out = "\"";
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceSnapshot>& snapshots) {
  // One shared origin: the earliest begin tick across every snapshot, so
  // the only run-to-run variation in tsc mode is span durations, and in
  // logical mode nothing varies at all.
  std::uint64_t origin = UINT64_MAX;
  for (const TraceSnapshot& snap : snapshots) {
    if (!snapshots.empty() && !snap.spans.empty()) {
      PCS_REQUIRE(snap.clock == snapshots.front().clock,
                  "chrome_trace_json: snapshots mix clock modes");
    }
    for (const SpanRecord& s : snap.spans) origin = std::min(origin, s.begin);
  }
  if (origin == UINT64_MAX) origin = 0;

  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (std::size_t pid = 0; pid < snapshots.size(); ++pid) {
    const TraceSnapshot& snap = snapshots[pid];
    std::vector<SpanRecord> spans = snap.spans;
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                if (a.end != b.end) return a.end > b.end;  // parents first
                if (a.tid != b.tid) return a.tid < b.tid;
                return std::strcmp(a.name, b.name) < 0;
              });
    const bool logical = snap.clock == ClockMode::kLogical;
    for (const SpanRecord& s : spans) {
      os << (first ? "\n" : ",\n");
      first = false;
      os << "    {\"name\": " << escape(s.name) << ", \"cat\": " << escape(s.cat)
         << ", \"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << s.tid
         << ", \"ts\": ";
      if (logical) {
        os << (s.begin - origin) << ", \"dur\": " << (s.end - s.begin);
      } else {
        os << fmt_us(static_cast<double>(s.begin - origin) / snap.ticks_per_us)
           << ", \"dur\": "
           << fmt_us(static_cast<double>(s.end - s.begin) / snap.ticks_per_us);
      }
      if (s.arg_count > 0) {
        os << ", \"args\": {";
        for (std::uint32_t a = 0; a < s.arg_count; ++a) {
          if (a) os << ", ";
          os << escape(s.arg_key[a]) << ": " << s.arg_val[a];
        }
        os << "}";
      }
      os << "}";
    }
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace pcs::obs
