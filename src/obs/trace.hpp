// Low-overhead tracing and per-stage profiling for the switch simulator.
//
// The paper's whole argument is about where cost lives per stage (Table 1),
// yet the executor and runtime used to report only end-to-end aggregates.
// This layer makes the staged execution observable: RAII spans around plan
// stages, chip evaluations, batch chunks, and runtime epochs, plus named
// counters, all drained into a snapshot that exports as Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing) or aggregates into the
// runtime metrics registry (see runtime/trace_bridge.hpp).
//
// Cost model:
//   * compiled out (-DPCS_TRACING_DISABLED, CMake -DPCS_TRACING=OFF):
//     kCompiledIn is constexpr false, Tracer::enabled() folds to false, and
//     every span/counter site dead-code-eliminates to nothing;
//   * compiled in but disabled (the default): one relaxed atomic load and a
//     predictable branch per site -- <2% on the hottest batch kernel (the
//     bench_obs acceptance bar);
//   * enabled: two clock reads plus one append to a per-thread buffer per
//     span.  Buffers are registered globally and drained by the caller.
//
// Clock modes:
//   * kTsc      -- raw rdtsc ticks, calibrated to microseconds between
//                  enable() and drain().  Cheapest; timestamps vary run to
//                  run.
//   * kLogical  -- a global atomic sequence number per clock read.  With
//                  parallelism clamped to one thread (set_max_parallelism),
//                  two identical runs produce byte-identical traces; this is
//                  what the CI determinism diff runs.
//
// Threading contract: record() may run concurrently from any thread;
// enable()/disable()/clear()/drain() must be called from quiescent points
// (no spans in flight), which the runtime guarantees between campaigns.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pcs::obs {

#ifdef PCS_TRACING_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

enum class ClockMode : unsigned char {
  kTsc,      ///< rdtsc ticks, calibrated to microseconds at drain
  kLogical,  ///< global sequence number: deterministic with 1 thread
};

/// Span categories (the `cat` field of the Chrome events).  The CI trace
/// checker counts kChip spans against stages x chips x epochs.
namespace cat {
inline constexpr const char* kPlan = "plan";
inline constexpr const char* kStage = "plan.stage";
inline constexpr const char* kChip = "plan.chip";
inline constexpr const char* kBatch = "plan.batch";
inline constexpr const char* kRuntime = "runtime";
}  // namespace cat

/// One closed span.  `name` and `cat` are interned or static strings (they
/// must outlive the tracer's snapshot); up to two integer args ride along
/// into the Chrome event's "args" object.
struct SpanRecord {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t begin = 0;  ///< raw ticks (mode-dependent)
  std::uint64_t end = 0;
  std::uint32_t tid = 0;  ///< pool worker id (0 = caller / non-pool thread)
  std::uint32_t arg_count = 0;
  const char* arg_key[2] = {nullptr, nullptr};
  std::uint64_t arg_val[2] = {0, 0};
};

/// Everything recorded between enable()/clear() and drain().
struct TraceSnapshot {
  ClockMode clock = ClockMode::kTsc;
  double ticks_per_us = 1.0;  ///< 1.0 in logical mode
  std::vector<SpanRecord> spans;
  std::map<std::string, std::uint64_t> counters;

  bool empty() const noexcept { return spans.empty() && counters.empty(); }
};

/// Aggregate view of a snapshot's spans, keyed by span name.
struct SpanStat {
  std::uint64_t count = 0;
  std::uint64_t total_ticks = 0;
  std::uint64_t max_ticks = 0;
};

std::map<std::string, SpanStat> aggregate_spans(const TraceSnapshot& snap);

/// Deterministic Chrome trace-event JSON over one snapshot per process-like
/// group: snapshot i renders with pid = i.  All timestamps share a single
/// normalized origin (the global minimum begin tick); events sort by
/// (ts, -dur, tid, name), so identical snapshots render byte-identically.
/// Requires every snapshot to share one clock mode.
std::string chrome_trace_json(const std::vector<TraceSnapshot>& snapshots);

class Tracer {
 public:
  /// The process-wide tracer every span records into.
  static Tracer& instance();

  /// Fast gate for every instrumentation site.  Constant false when the
  /// subsystem is compiled out, else one relaxed atomic load.
  static bool enabled() noexcept {
    return kCompiledIn && enabled_.load(std::memory_order_relaxed);
  }

  /// Start recording (no-op when compiled out).  Clears prior data and
  /// anchors the tick -> microsecond calibration.
  void enable(ClockMode mode = ClockMode::kTsc);

  /// Stop recording.  Buffered data survives until clear()/drain().
  void disable() noexcept;

  /// Discard everything buffered so far (quiescent callers only).
  void clear();

  /// Collect and clear all buffered spans and counters.
  TraceSnapshot drain();

  /// Copy `s` into the tracer's stable string pool and return a pointer
  /// valid for the process lifetime -- span names for dynamically-named
  /// stages (plan stage labels) go through here.
  const char* intern(const std::string& s);

  /// One clock read in the current mode.
  std::uint64_t now() noexcept;

  /// Append one closed span to the calling thread's buffer.
  void record(const SpanRecord& rec);

  /// Add `delta` to the named counter (merged across threads at drain).
  void counter_add(const char* name, std::uint64_t delta);

 private:
  Tracer() = default;
  struct Impl;
  Impl& impl();

  static std::atomic<bool> enabled_;
};

/// RAII span: opens on construction when tracing is enabled, records on
/// destruction.  A guard constructed while disabled is inert (including its
/// destructor), so mid-span disable never tears.
class SpanGuard {
 public:
  SpanGuard(const char* name, const char* category) noexcept {
    if (Tracer::enabled()) open(name, category);
  }
  ~SpanGuard() {
    if (rec_.name != nullptr) close();
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Attach an integer arg (at most two; extras are dropped).
  void arg(const char* key, std::uint64_t value) noexcept {
    if (rec_.name != nullptr && rec_.arg_count < 2) {
      rec_.arg_key[rec_.arg_count] = key;
      rec_.arg_val[rec_.arg_count] = value;
      ++rec_.arg_count;
    }
  }

 private:
  void open(const char* name, const char* category) noexcept;
  void close() noexcept;

  SpanRecord rec_;  // name == nullptr marks an inert guard
};

#define PCS_OBS_CONCAT_IMPL(a, b) a##b
#define PCS_OBS_CONCAT(a, b) PCS_OBS_CONCAT_IMPL(a, b)

#ifndef PCS_TRACING_DISABLED
/// Scoped span covering the rest of the enclosing block.
#define PCS_TRACE_SPAN(name, category) \
  pcs::obs::SpanGuard PCS_OBS_CONCAT(pcs_trace_span_, __COUNTER__)(name, category)
/// Named counter bump, gated on the tracer being enabled.
#define PCS_TRACE_COUNTER(name, delta)                         \
  do {                                                         \
    if (pcs::obs::Tracer::enabled()) {                         \
      pcs::obs::Tracer::instance().counter_add((name), (delta)); \
    }                                                          \
  } while (0)
#else
#define PCS_TRACE_SPAN(name, category) ((void)0)
#define PCS_TRACE_COUNTER(name, delta) ((void)0)
#endif

}  // namespace pcs::obs
