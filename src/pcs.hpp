// Umbrella header for the pcs library: multichip partial concentrator
// switches after Cormen (MIT-LCS-TM-322, 1987), with the mesh-sorting,
// gate-level, cost-model, and message-routing substrates they rest on.
//
// Layering (each layer only depends on the ones above it):
//   util    -- bit vectors/matrices, integer math, RNG, parallel_for
//   obs     -- tracing/profiling spans and counters (Chrome trace export)
//   sortnet -- Revsort / Shearsort / Columnsort on 0/1 meshes, nearsortedness
//   gates   -- combinational netlists, depth analysis, evaluation
//   hyper   -- the single-chip hyperconcentrator (functional + gate-level)
//   plan    -- the staged-plan IR every switch family compiles to, plus the
//              one executor (scalar, batch, fault-rewritten) that runs it
//   switch  -- the paper's multichip constructions (the core contribution)
//   cost    -- pins / chips / boards / area / volume / delay (Table 1)
//   message -- bit-serial streaming, congestion policies, traffic
//   network -- two-level concentration hierarchies and round simulation
//   core    -- executable lemmas/theorems, bounds, adversarial search
//   runtime -- closed-loop serving layer: queues, admission, epoch-batched
//              routing, phased campaigns, metrics export
//   fabric  -- multi-hop networks of plan-compiled switches: declarative
//              FabricSpec/make_fabric, credit flow control, VOQ allocation,
//              pluggable route policies, pipelined epoch execution
#pragma once

#include "util/assert.hpp"
#include "util/bitmatrix.hpp"
#include "util/bitvec.hpp"
#include "util/digest.hpp"
#include "util/mathutil.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include "obs/trace.hpp"

#include "sortnet/columnsort.hpp"
#include "sortnet/comparator_net.hpp"
#include "sortnet/displacement.hpp"
#include "sortnet/lane_batch.hpp"
#include "sortnet/mesh_ops.hpp"
#include "sortnet/nearsort.hpp"
#include "sortnet/revsort.hpp"
#include "sortnet/shearsort.hpp"

#include "gates/builder.hpp"
#include "gates/circuit.hpp"
#include "gates/evaluator.hpp"

#include "hyper/barrel_shifter.hpp"
#include "hyper/hyper_circuit.hpp"
#include "hyper/hyperconcentrator.hpp"
#include "hyper/prefix_butterfly.hpp"

#include "plan/compile.hpp"
#include "plan/plan_executor.hpp"
#include "plan/plan_switch.hpp"
#include "plan/switch_plan.hpp"

#include "switch/chip.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/concentrator.hpp"
#include "switch/full_sort_hyper.hpp"
#include "switch/gate_level_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/comparator_switch.hpp"
#include "switch/make_switch.hpp"
#include "switch/multipass_switch.hpp"
#include "switch/perfect_from_partial.hpp"
#include "switch/revsort_switch.hpp"
#include "switch/wiring.hpp"

#include "cost/layout.hpp"
#include "cost/resource_model.hpp"
#include "cost/render.hpp"
#include "cost/scaling.hpp"
#include "cost/table1.hpp"

#include "traffic/factory.hpp"
#include "traffic/injection.hpp"
#include "traffic/pattern.hpp"
#include "traffic/search.hpp"
#include "traffic/trace.hpp"
#include "traffic/traffic_source.hpp"

#include "message/ack_protocol.hpp"
#include "message/clocked_sim.hpp"
#include "message/congestion.hpp"
#include "message/message.hpp"
#include "message/pipeline.hpp"
#include "message/stream_engine.hpp"
#include "message/traffic.hpp"

#include "network/concentrator_tree.hpp"
#include "network/knockout.hpp"
#include "network/multistage.hpp"
#include "network/router_sim.hpp"

#include "core/adversary.hpp"
#include "core/bounds.hpp"
#include "core/epsilon_stats.hpp"
#include "core/invariants.hpp"
#include "core/lemmas.hpp"
#include "core/verification.hpp"

#include "runtime/config.hpp"
#include "runtime/fabric_runtime.hpp"
#include "runtime/metrics.hpp"
#include "runtime/stats_bridge.hpp"
#include "runtime/trace_bridge.hpp"

#include "fabric/allocator.hpp"
#include "fabric/fabric_config.hpp"
#include "fabric/fabric_sim.hpp"
#include "fabric/fabric_spec.hpp"
#include "fabric/make_fabric.hpp"
#include "fabric/route_policy.hpp"
#include "fabric/topology.hpp"
