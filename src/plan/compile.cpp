#include "plan/compile.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "sortnet/columnsort.hpp"
#include "sortnet/revsort.hpp"
#include "switch/wiring.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::plan {

namespace {

/// A stage whose inbound link is the given wiring permutation:
/// in_src is the permutation's inverse (wire w is fed by dest^-1(w)).
PlanStage stage_from_wiring(std::size_t chips, std::size_t width,
                            const sw::Permutation& link) {
  PlanStage st;
  st.chips = chips;
  st.width = width;
  st.in_src.resize(chips * width);
  const auto& dest = link.dests();
  PCS_REQUIRE(dest.size() == st.in_src.size(),
              "stage link size: " << dest.size() << " wires=" << st.in_src.size());
  for (std::size_t i = 0; i < dest.size(); ++i) {
    st.in_src[dest[i]] = static_cast<std::int32_t>(i);
  }
  return st;
}

/// A first stage fed directly by the switch inputs (identity link).
PlanStage input_stage(std::size_t chips, std::size_t width) {
  PlanStage st;
  st.chips = chips;
  st.width = width;
  st.in_src.resize(chips * width);
  for (std::size_t w = 0; w < st.in_src.size(); ++w) {
    st.in_src[w] = static_cast<std::int32_t>(w);
  }
  return st;
}

/// Row-major readout of an r-by-s mesh whose final stage holds the wires
/// column-major: output position i*s + j observes wire j*r + i.
std::vector<std::uint32_t> row_major_readout(std::size_t r, std::size_t s) {
  std::vector<std::uint32_t> readout(r * s);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      readout[i * s + j] = static_cast<std::uint32_t>(j * r + i);
    }
  }
  return readout;
}

std::vector<std::uint32_t> identity_readout(std::size_t n) {
  std::vector<std::uint32_t> readout(n);
  for (std::size_t i = 0; i < n; ++i) readout[i] = static_cast<std::uint32_t>(i);
  return readout;
}

void tag_connectors(PlanStage& st, std::size_t connectors, std::size_t volume) {
  st.link_connectors = connectors;
  st.connector_volume = volume;
}

/// Fill in tracing labels any compiler left empty: "<prefix>.s<idx>" for
/// main stages and "<prefix>.safety<idx>" for the safety net.  Labels are
/// presentation-only (excluded from digest()).
void label_stages(SwitchPlan& plan, const char* prefix) {
  for (std::size_t i = 0; i < plan.stages.size(); ++i) {
    if (plan.stages[i].label.empty()) {
      std::ostringstream os;
      os << prefix << ".s" << i;
      plan.stages[i].label = os.str();
    }
  }
  for (std::size_t i = 0; i < plan.safety_stages.size(); ++i) {
    if (plan.safety_stages[i].label.empty()) {
      std::ostringstream os;
      os << prefix << ".safety" << i;
      plan.safety_stages[i].label = os.str();
    }
  }
}

}  // namespace

SwitchPlan compile_revsort_plan(std::size_t n, std::size_t m) {
  PCS_REQUIRE(n > 0, "compile_revsort_plan n must be positive");
  const std::size_t side = isqrt(n);
  PCS_REQUIRE(side * side == n,
              "compile_revsort_plan n must be a perfect square: n=" << n);
  PCS_REQUIRE(is_pow2(side),
              "compile_revsort_plan sqrt(n) must be a power of two: n="
                  << n << " side=" << side);
  PCS_REQUIRE(m >= 1 && m <= n, "compile_revsort_plan m range: m=" << m
                                    << " n=" << n);
  SwitchPlan plan;
  plan.family = PlanFamily::kRevsort;
  plan.n = n;
  plan.m = m;
  // Dirty rows after Algorithm 1, times the row width.
  plan.epsilon = sortnet::algorithm1_dirty_row_bound(side) * side;
  plan.stages.push_back(input_stage(side, side));
  plan.stages.back().label = "revsort.s0.columns";
  plan.stages.push_back(
      stage_from_wiring(side, side, sw::transpose_wiring(side)));
  plan.stages.back().has_shifter = true;
  plan.stages.back().label = "revsort.s1.rows+shift";
  plan.stages.push_back(
      stage_from_wiring(side, side, sw::rev_rotate_transpose_wiring(side)));
  plan.stages.back().label = "revsort.s2.columns";
  plan.readout = row_major_readout(side, side);

  plan.fast_path = FastPathKind::kRevsortCount;
  plan.fp_side = side;
  const unsigned q = exact_log2(side);
  plan.fp_rev.resize(side);
  for (std::size_t i = 0; i < side; ++i) {
    plan.fp_rev[i] = static_cast<std::uint32_t>(bit_reverse(i, q));
  }

  std::ostringstream os;
  os << "revsort(" << n << "," << m << ")";
  plan.name = os.str();
  return plan;
}

SwitchPlan compile_columnsort_plan(std::size_t r, std::size_t s, std::size_t m) {
  PCS_REQUIRE(r > 0 && s > 0,
              "compile_columnsort_plan shape: r=" << r << " s=" << s);
  PCS_REQUIRE(r % s == 0,
              "compile_columnsort_plan requires s to divide r: r=" << r
                                                                   << " s=" << s);
  const std::size_t n = r * s;
  PCS_REQUIRE(m >= 1 && m <= n, "compile_columnsort_plan m range: m="
                                    << m << " n=" << n << " (r=" << r
                                    << " s=" << s << ")");
  SwitchPlan plan;
  plan.family = PlanFamily::kColumnsort;
  plan.n = n;
  plan.m = m;
  plan.epsilon = sortnet::algorithm2_epsilon_bound(s);
  plan.stages.push_back(input_stage(s, r));
  plan.stages.back().label = "columnsort.s0.columns";
  plan.stages.push_back(stage_from_wiring(s, r, sw::cm_to_rm_wiring(r, s)));
  // Figure 8 packaging: the CM -> RM link is s^2 interstack wire
  // transposers, each spanning an (r/s)-by-(r/s) wire block.
  tag_connectors(plan.stages.back(), s * s, (r / s) * (r / s));
  plan.stages.back().label = "columnsort.s1.rows";
  plan.readout = row_major_readout(r, s);

  plan.fast_path = FastPathKind::kColumnsortCount;
  plan.fp_r = r;
  plan.fp_s = s;

  std::ostringstream os;
  os << "columnsort(r=" << r << ",s=" << s << ",m=" << m << ")";
  plan.name = os.str();
  return plan;
}

SwitchPlan compile_columnsort_plan_beta(std::size_t n, double beta, std::size_t m) {
  PCS_REQUIRE(is_pow2(n), "compile_columnsort_plan_beta requires power-of-two n");
  PCS_REQUIRE(beta >= 0.5 && beta <= 1.0,
              "compile_columnsort_plan_beta requires 1/2 <= beta <= 1");
  const unsigned lgn = exact_log2(n);
  // r = 2^e with e the nearest integer to beta * lg n, clamped so that
  // s = 2^(lg n - e) divides r, i.e. lg n - e <= e.
  auto e = static_cast<unsigned>(std::lround(beta * lgn));
  unsigned e_min = (lgn + 1) / 2;
  if (e < e_min) e = e_min;
  if (e > lgn) e = lgn;
  const std::size_t r = std::size_t{1} << e;
  const std::size_t s = n / r;
  return compile_columnsort_plan(r, s, m);
}

SwitchPlan compile_multipass_plan(std::size_t r, std::size_t s, std::size_t passes,
                                  std::size_t m, ReshapeSchedule schedule) {
  PCS_REQUIRE(r > 0 && s > 0 && r % s == 0,
              "compile_multipass_plan requires s to divide r: r=" << r
                                                                  << " s=" << s);
  PCS_REQUIRE(passes >= 1,
              "compile_multipass_plan needs at least one pass, got " << passes);
  const std::size_t n = r * s;
  PCS_REQUIRE(m >= 1 && m <= n,
              "compile_multipass_plan m range: m=" << m << " n=" << n);
  SwitchPlan plan;
  plan.family = PlanFamily::kMultipass;
  plan.n = n;
  plan.m = m;
  plan.epsilon = sortnet::algorithm2_epsilon_bound(s);

  const sw::Permutation cm_to_rm = sw::cm_to_rm_wiring(r, s);
  const sw::Permutation rm_to_cm = cm_to_rm.inverse();
  plan.stages.push_back(input_stage(s, r));
  for (std::size_t k = 1; k <= passes; ++k) {
    // The link out of pass k-1: alternating schedules flip direction on
    // odd-numbered passes (pass index p = k-1).
    const bool reverse =
        schedule == ReshapeSchedule::kAlternating && (k - 1) % 2 == 1;
    plan.stages.push_back(
        stage_from_wiring(s, r, reverse ? rm_to_cm : cm_to_rm));
    tag_connectors(plan.stages.back(), s * s, (r / s) * (r / s));
  }
  // With the alternating schedule and an even pass count the last reshape
  // was RM -> CM, so the nearly-sorted read-out order is column-major
  // (exactly as in full Columnsort, whose output order is column-major).
  const bool reads_row_major =
      !(schedule == ReshapeSchedule::kAlternating && passes % 2 == 0);
  plan.readout = reads_row_major ? row_major_readout(r, s) : identity_readout(n);

  std::ostringstream os;
  os << "multipass-columnsort(r=" << r << ",s=" << s << ",d=" << passes
     << (schedule == ReshapeSchedule::kAlternating ? ",alt" : ",same")
     << ",m=" << m << ")";
  plan.name = os.str();
  label_stages(plan, "multipass");
  return plan;
}

SwitchPlan compile_full_revsort_plan(std::size_t n) {
  PCS_REQUIRE(n > 0, "compile_full_revsort_plan n must be positive");
  const std::size_t side = isqrt(n);
  PCS_REQUIRE(side * side == n,
              "compile_full_revsort_plan n must be a perfect square: n=" << n);
  PCS_REQUIRE(is_pow2(side),
              "compile_full_revsort_plan sqrt(n) must be a power of two: n="
                  << n << " side=" << side);
  const std::size_t reps = sortnet::full_revsort_repetitions(side);

  const sw::Permutation transpose = sw::transpose_wiring(side);
  const sw::Permutation rev_rot = sw::rev_rotate_transpose_wiring(side);
  const sw::Permutation rev_odd = sw::reverse_odd_rows_wiring(side);
  // Shearsort alternating row phase with plain chips: reverse the odd rows
  // on the way in, front-concentrate, un-reverse on the way out (folded
  // into the next link).
  const sw::Permutation into_alt_rows = transpose.then(rev_odd);
  const sw::Permutation alt_rows_to_cols = rev_odd.then(transpose);

  SwitchPlan plan;
  plan.family = PlanFamily::kFullRevsort;
  plan.n = n;
  plan.m = n;
  plan.epsilon = 0;
  plan.fully_sorting = true;
  // Repetitions of Revsort steps 1-3: column sort, row sort (+ on-board
  // shifters feeding the rev-rotate link), back to columns.
  for (std::size_t t = 0; t < reps; ++t) {
    plan.stages.push_back(t == 0 ? input_stage(side, side)
                                 : stage_from_wiring(side, side, rev_rot));
    plan.stages.push_back(stage_from_wiring(side, side, transpose));
    plan.stages.back().has_shifter = true;
  }
  // Column sort, three Shearsort phases, final 1s-first row sort.
  plan.stages.push_back(stage_from_wiring(side, side, rev_rot));
  for (int phase = 0; phase < 3; ++phase) {
    plan.stages.push_back(stage_from_wiring(side, side, into_alt_rows));
    plan.stages.push_back(stage_from_wiring(side, side, alt_rows_to_cols));
  }
  plan.stages.push_back(stage_from_wiring(side, side, transpose));
  // Final stage sorts rows in row-major layout: the readout is the wires
  // themselves.
  plan.readout = identity_readout(n);

  // Safety net: one extra Shearsort phase (alternating rows, columns, rows)
  // per iteration, looping back onto the row-major output layout.
  plan.safety_stages.push_back(stage_from_wiring(side, side, rev_odd));
  plan.safety_stages.push_back(
      stage_from_wiring(side, side, alt_rows_to_cols));
  plan.safety_stages.push_back(stage_from_wiring(side, side, transpose));
  plan.safety_limit = side;

  std::ostringstream os;
  os << "full-revsort-hyper(" << n << ")";
  plan.name = os.str();
  label_stages(plan, "full-revsort");
  return plan;
}

SwitchPlan compile_full_columnsort_plan(std::size_t r, std::size_t s) {
  PCS_REQUIRE(sortnet::columnsort_shape_ok(r, s),
              "compile_full_columnsort_plan requires s | r and r >= 2(s-1)^2: r="
                  << r << " s=" << s);
  const std::size_t n = r * s;
  SwitchPlan plan;
  plan.family = PlanFamily::kFullColumnsort;
  plan.n = n;
  plan.m = n;
  plan.epsilon = 0;
  plan.fully_sorting = true;

  plan.stages.push_back(input_stage(s, r));                       // step 1
  plan.stages.push_back(
      stage_from_wiring(s, r, sw::cm_to_rm_wiring(r, s)));        // steps 2-3
  tag_connectors(plan.stages.back(), s * s, (r / s) * (r / s));
  plan.stages.push_back(
      stage_from_wiring(s, r, sw::cm_to_rm_wiring(r, s).inverse()));  // 4-5
  tag_connectors(plan.stages.back(), s * s, (r / s) * (r / s));

  // Steps 6-8: shift the column-major sequence down by floor(r/2) across a
  // widened (s+1)-chip stage, with "sorts-before-everything" pads ahead of
  // the window and idles behind it; the readout un-shifts.
  const std::size_t shift = r / 2;
  PlanStage shifted;
  shifted.chips = s + 1;
  shifted.width = r;
  shifted.in_src.resize(shifted.wires());
  for (std::size_t w = 0; w < shifted.wires(); ++w) {
    if (w < shift) {
      shifted.in_src[w] = kFeedPad;
    } else if (w < shift + n) {
      shifted.in_src[w] = static_cast<std::int32_t>(w - shift);
    } else {
      shifted.in_src[w] = kFeedIdle;
    }
  }
  tag_connectors(shifted, s * s, (r / s) * (r / s));
  plan.stages.push_back(std::move(shifted));

  // Column-major readout through the un-shift window.  The pads provably
  // stay below it: the executor asserts none escapes.
  plan.readout.resize(n);
  for (std::size_t x = 0; x < n; ++x) {
    plan.readout[x] = static_cast<std::uint32_t>(shift + x);
  }

  std::ostringstream os;
  os << "full-columnsort-hyper(r=" << r << ",s=" << s << ")";
  plan.name = os.str();
  label_stages(plan, "full-columnsort");
  return plan;
}

}  // namespace pcs::plan
