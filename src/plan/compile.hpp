// Compilers from the paper's switch families to the staged-plan IR.
//
// Each compiler emits the family's fixed hardware as data: stage shapes,
// inter-stage links (as in_src gathers built from the wiring builders in
// switch/wiring.hpp), readout order, epsilon bound, and the batch fast-path
// parameters.  The switch classes in switch/ are thin wrappers holding a
// PlanExecutor over these plans; PlanSwitch runs any of them (or a
// fault-rewritten variant) behind the ConcentratorSwitch interface.
#pragma once

#include "plan/switch_plan.hpp"

namespace pcs::plan {

/// Section 4 Revsort partial concentrator: three stages of sqrt(n)-wide
/// chips, barrel shifters on stage 2.  n = side^2, side a power of two,
/// 1 <= m <= n.
SwitchPlan compile_revsort_plan(std::size_t n, std::size_t m);

/// Section 5 Columnsort partial concentrator: two stages of s chips of
/// width r joined by the CM -> RM wiring.  s divides r, 1 <= m <= r*s.
SwitchPlan compile_columnsort_plan(std::size_t r, std::size_t s, std::size_t m);

/// Columnsort shape from the paper's beta parameter (r nearest n^beta that
/// keeps s = n/r a divisor of r).  n a power of two, 1/2 <= beta <= 1.
SwitchPlan compile_columnsort_plan_beta(std::size_t n, double beta, std::size_t m);

/// Section 6 open-question multipass switch: `passes` sort+reshape passes
/// plus a final column sort.
SwitchPlan compile_multipass_plan(std::size_t r, std::size_t s, std::size_t passes,
                                  std::size_t m,
                                  ReshapeSchedule schedule = ReshapeSchedule::kSame);

/// Section 6 full-sorting Revsort hyperconcentrator (m = n), including its
/// Shearsort safety net as the plan's safety stages.
SwitchPlan compile_full_revsort_plan(std::size_t n);

/// Section 6 full-sorting Columnsort hyperconcentrator (m = n): all eight
/// steps, with the shift step as a widened (s+1)-chip stage fed pads.
SwitchPlan compile_full_columnsort_plan(std::size_t r, std::size_t s);

}  // namespace pcs::plan
