#include "plan/counting_kernels.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define PCS_REVSORT_AVX512 1
#include <immintrin.h>
#endif

namespace pcs::plan {

namespace {

/// Per-column populations -> histogram -> CSR row offsets.  Row t of the
/// sorted matrix has one slot per column with more than t valids, so suffix
/// sums of the population histogram give the row lengths and a prefix scan
/// the offsets.  Requires whole valid-words per column (v >= 64).  Returns
/// the number of nonempty rows.
std::size_t build_row_offsets(const std::vector<std::uint64_t>& words,
                              std::size_t v, std::size_t wpc,
                              RevsortScratch& s) {
  std::uint32_t* histo = s.col_count.data();
  std::memset(histo, 0, (v + 1) * sizeof(std::uint32_t));
  std::size_t maxc = 0;
  for (std::size_t c = 0; c < v; ++c) {
    std::uint32_t cnt = 0;
    for (std::size_t j = 0; j < wpc; ++j) {
      cnt += static_cast<std::uint32_t>(std::popcount(words[c * wpc + j]));
    }
    ++histo[cnt];
    if (cnt > maxc) maxc = cnt;
  }
  std::uint32_t acc = 0;
  for (std::size_t t = maxc; t-- > 0;) {
    acc += histo[t + 1];
    s.row_start[t] = acc;  // row length, rewritten to the offset below
  }
  std::uint32_t start = 0;
  for (std::size_t t = 0; t < maxc; ++t) {
    const std::uint32_t len = s.row_start[t];
    s.row_start[t] = start;
    s.cursor[t] = start;
    start += len;
  }
  s.row_start[maxc] = start;
  return maxc;
}

/// The dense-prefix kernels' variant of the count pass: per-column valid
/// counts (into s.row_count), plus CSR offsets restricted to the ragged
/// rows [minc, maxc) — the dense prefix never touches the CSR at all.
void build_ragged_offsets(const std::vector<std::uint64_t>& words,
                          std::size_t v, std::size_t wpc, RevsortScratch& s,
                          std::uint32_t& minc, std::uint32_t& maxc) {
  std::uint32_t* histo = s.col_count.data();
  std::memset(histo, 0, (v + 1) * sizeof(std::uint32_t));
  minc = static_cast<std::uint32_t>(v);
  maxc = 0;
  for (std::size_t c = 0; c < v; ++c) {
    std::uint32_t cnt = 0;
    for (std::size_t j = 0; j < wpc; ++j) {
      cnt += static_cast<std::uint32_t>(std::popcount(words[c * wpc + j]));
    }
    s.row_count[c] = cnt;
    ++histo[cnt];
    minc = std::min(minc, cnt);
    maxc = std::max(maxc, cnt);
  }
  // Ragged row t in [minc, maxc) holds one slot per column with count > t:
  // suffix sums of the histogram give the lengths, a prefix scan the offsets.
  std::uint32_t acc = 0;
  for (std::uint32_t t = maxc; t-- > minc;) {
    acc += histo[t + 1];
    s.row_start[t] = acc;
  }
  std::uint32_t start = 0;
  for (std::uint32_t t = minc; t < maxc; ++t) {
    const std::uint32_t len = s.row_start[t];
    s.row_start[t] = start;
    s.cursor[t] = start;
    start += len;
  }
  s.row_start[maxc] = start;
}

}  // namespace

// ---------------------------------------------------------------------------
// Legacy scalar kernel (PR 1, moved verbatim from plan_executor.cpp).
// ---------------------------------------------------------------------------

// Replays the staged route as pure rank arithmetic on the set bits.  Stage 1
// sends the t-th valid of column c to row t; the transpose hands row t its
// labels in ascending column order, so a stable counting sort by t reproduces
// the stage-2 pin order; the barrel shifter adds rev(t) to the stage-2 rank;
// and stage 3 ranks each destination column by ascending row, which is
// exactly the t-ascending CSR walk.  O(n/64 + k) per pattern.
sw::SwitchRouting revsort_route_kernel(const BitVec& valid, std::size_t m,
                                       std::size_t v, unsigned q,
                                       const std::vector<std::uint32_t>& rev,
                                       RevsortScratch& s) {
  const std::size_t n = valid.size();
  s.reserve_staging(n);
  std::fill(s.col_count.begin(), s.col_count.end(), 0u);
  std::fill(s.row_count.begin(), s.row_count.end(), 0u);
  std::fill(s.col3_count.begin(), s.col3_count.end(), 0u);

  // Stage 1: rank each set bit within its column (= its stage-1 output row).
  std::size_t k = 0;
  const auto& words = valid.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const std::uint32_t x = static_cast<std::uint32_t>(
          wi * 64 + static_cast<std::size_t>(std::countr_zero(w)));
      w &= w - 1;
      const std::uint32_t t = s.col_count[x >> q]++;
      s.t_of[k] = t;
      s.x_of[k] = x;
      ++s.row_count[t];
      ++k;
    }
  }

  // Stable counting sort by row: within a row, labels keep ascending-column
  // order (ascending x), matching the stage-2 chip's pin order.
  s.row_start[0] = 0;
  for (std::size_t t = 0; t < v; ++t) {
    s.row_start[t + 1] = s.row_start[t] + s.row_count[t];
    s.cursor[t] = s.row_start[t];
  }
  for (std::size_t idx = 0; idx < k; ++idx) {
    s.row_x[s.cursor[s.t_of[idx]]++] = s.x_of[idx];
  }

  // Stages 2 + 3: stage-2 rank j2 is the bucket offset; the shifter moves it
  // to column (rev(t) + j2) mod v; stage 3 ranks that column by ascending t.
  sw::SwitchRouting out;
  out.output_of_input.assign(n, -1);
  out.input_of_output.assign(m, -1);
  for (std::size_t t = 0; t < v; ++t) {
    for (std::uint32_t idx = s.row_start[t]; idx < s.row_start[t + 1]; ++idx) {
      const std::uint32_t j2 = idx - s.row_start[t];
      const std::uint32_t j3 = (rev[t] + j2) & static_cast<std::uint32_t>(v - 1);
      const std::size_t pos = static_cast<std::size_t>(s.col3_count[j3]++) * v + j3;
      if (pos < m) {
        const std::uint32_t x = s.row_x[idx];
        out.input_of_output[pos] = static_cast<std::int32_t>(x);
        out.output_of_input[x] = static_cast<std::int32_t>(pos);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Dense-prefix scalar kernel (fused mode, v >= 64).
// ---------------------------------------------------------------------------

namespace {

// The dense-prefix decomposition.  Row t of the stage-1 sorted matrix is
// *dense* when every column has more than t valids, i.e. for all t < minc.
// In a dense row the stage-2 rank of column c's item is just c (the stable
// sort adds nothing), so its final position is closed-form:
//
//   pos(t, c) = t * v + ((rev(t) + c) mod v)
//
// with no cross-column state at all.  The kernel exploits that three ways:
//  - output_of_input is produced in input order during the column scan
//    (phase A), one sequential write stream covering hits and -1s alike;
//  - dense items stage only their 16-bit intra-column bit offset (col_x16),
//    a quarter of the legacy CSR traffic, and input_of_output's dense rows
//    are emitted as whole rotated rows (phase B), sequential again;
//  - only items at ranks >= minc are "ragged" and take the CSR + scatter
//    path (phase C), seeded with the dense prefix's per-column fill counts.
// At moderate densities the ragged tail is a few percent of the items, so
// nearly all traffic is sequential and the large-n cliff disappears.
sw::SwitchRouting revsort_route_dense_scalar(
    const BitVec& valid, std::size_t m, std::size_t v, unsigned q,
    const std::vector<std::uint32_t>& rev, RevsortScratch& s) {
  const std::size_t n = valid.size();
  const auto& words = valid.words();
  const std::size_t wpc = v / 64;  // exact since v >= 64 and v is pow2
  std::uint32_t minc, maxc;
  build_ragged_offsets(words, v, wpc, s, minc, maxc);
  sw::SwitchRouting out;
  out.output_of_input.assign(n, -1);
  out.input_of_output.resize(m);
  std::int32_t* out_in = out.output_of_input.data();
  std::int32_t* in_out = out.input_of_output.data();
  const std::uint32_t dense_rows = minc;
  const std::uint32_t mrow = static_cast<std::uint32_t>(m >> q);
  const std::uint32_t vmask = static_cast<std::uint32_t>(v - 1);
  // Ragged region of input_of_output: dense rows below m are fully written
  // by phase B, everything after them starts empty and fills in phase C.
  {
    const std::size_t lo =
        std::min<std::size_t>(static_cast<std::size_t>(dense_rows) << q, m);
    if (m > lo) std::memset(in_out + lo, 0xFF, (m - lo) * sizeof(std::int32_t));
  }
  std::uint16_t* cx16 = s.col_x16.data();
  std::uint32_t* cursor = s.cursor.data();
  std::uint32_t* row_x = s.row_x.data();
  // Phase A: one pass over the valid words.  Dense ranks get the closed-form
  // position written straight into output_of_input and stage their intra-
  // column offset; ragged ranks bucket their label into the CSR.
  for (std::size_t c = 0; c < v; ++c) {
    std::uint32_t t = 0;
    const std::uint32_t cbase = static_cast<std::uint32_t>(c * v);
    const std::uint32_t rc = static_cast<std::uint32_t>(c);
    std::uint16_t* cx = cx16 + c * dense_rows;
    for (std::size_t j = 0; j < wpc; ++j) {
      std::uint64_t w = words[c * wpc + j];
      const std::uint32_t wb = static_cast<std::uint32_t>(j * 64);
      while (w != 0) {
        const std::uint32_t xi =
            wb + static_cast<std::uint32_t>(std::countr_zero(w));
        w &= w - 1;
        if (t < dense_rows) {
          cx[t] = static_cast<std::uint16_t>(xi);
          const std::size_t pos = (static_cast<std::size_t>(t) << q) |
                                  ((rev[t] + rc) & vmask);
          if (pos < m) {
            out_in[cbase + xi] = static_cast<std::int32_t>(pos);
          }
        } else {
          row_x[cursor[t]++] = cbase + xi;
        }
        ++t;
      }
    }
  }
  // Phase B: dense rows of input_of_output, written as whole rotated rows.
  const std::uint32_t demit = std::min(dense_rows, mrow);
  for (std::uint32_t t = 0; t < demit; ++t) {
    const std::uint32_t rt = rev[t];
    std::int32_t* base = in_out + (static_cast<std::size_t>(t) << q);
    const std::uint16_t* cxt = cx16 + t;
    for (std::uint32_t c = 0; c < v; ++c) {
      const std::uint32_t x =
          (c << q) + cxt[static_cast<std::size_t>(c) * dense_rows];
      base[(rt + c) & vmask] = static_cast<std::int32_t>(x);
    }
  }
  // A dense row straddling m (only when m < dense_rows * v) emits just its
  // below-m positions.
  if (demit < dense_rows && (static_cast<std::size_t>(demit) << q) < m) {
    const std::uint32_t t = demit;
    const std::uint32_t rt = rev[t];
    const std::size_t rowbase = static_cast<std::size_t>(t) << q;
    for (std::uint32_t c = 0; c < v; ++c) {
      const std::uint32_t j3 = (rt + c) & vmask;
      const std::size_t pos = rowbase + j3;
      if (pos < m) {
        const std::uint32_t x =
            (c << q) + cx16[static_cast<std::size_t>(c) * dense_rows + t];
        in_out[pos] = static_cast<std::int32_t>(x);
      }
    }
  }
  // Phase C: the ragged rows take the legacy row walk, with every stage-3
  // column fill seeded by the one item per column each dense row emitted.
  std::uint32_t* col3 = s.col3_count.data();
  for (std::size_t j = 0; j < v; ++j) col3[j] = dense_rows;
  for (std::uint32_t t = dense_rows; t < maxc; ++t) {
    const std::uint32_t rt = rev[t];
    for (std::uint32_t idx = s.row_start[t]; idx < s.row_start[t + 1]; ++idx) {
      const std::uint32_t j2 = idx - s.row_start[t];
      const std::uint32_t j3 = (rt + j2) & vmask;
      const std::size_t pos =
          (static_cast<std::size_t>(col3[j3]++) << q) | j3;
      if (pos < m) {
        const std::uint32_t x = row_x[idx];
        in_out[pos] = static_cast<std::int32_t>(x);
        out_in[x] = static_cast<std::int32_t>(pos);
      }
    }
  }
  return out;
}

}  // namespace

#ifdef PCS_REVSORT_AVX512

namespace {

bool cpu_has_avx512f_impl() {
  static const bool ok =
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("bmi2");
  return ok;
}

}  // namespace

// AVX-512 lane-parallel variant of the counting kernel, used when each
// matrix column is a whole number of 64-bit words (v >= 64).  Three ideas:
//  - within a column the t-th set bit goes to row t, so the CSR cursors a
//    column consumes form one contiguous block: compress the set-bit labels
//    straight out of the mask word and scatter them in 16-lane groups;
//  - rows are walked in two wrap-free segments, so the stage-3 column fills
//    sit at consecutive addresses and need plain loads/stores, not gathers;
//  - only the two routing-table writes are true scatters, and both are
//    conflict-free within a row (distinct outputs, distinct inputs).
__attribute__((target("avx512f")))
sw::SwitchRouting revsort_route_kernel_avx512(
    const BitVec& valid, std::size_t m, std::size_t v, unsigned q,
    const std::vector<std::uint32_t>& rev, RevsortScratch& s) {
  const std::size_t n = valid.size();
  const auto& words = valid.words();
  const std::size_t wpc = v / 64;  // words per column; exact since v >= 64
  const std::size_t maxc = build_row_offsets(words, v, wpc, s);
  const __m512i iota =
      _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  const __m512i one = _mm512_set1_epi32(1);
  // Counting sort without the label staging pass: compress each column's
  // set-bit labels out of the valid words and scatter them to cursor[t]
  // (t = in-column rank, so the cursor block is a contiguous load).
  std::uint32_t* row_x = s.row_x.data();
  std::uint32_t* cursor = s.cursor.data();
  for (std::size_t c = 0; c < v; ++c) {
    std::uint32_t fill = 0;
    const std::uint32_t base = static_cast<std::uint32_t>(c * v);
    for (std::size_t j = 0; j < wpc; ++j) {
      const std::uint64_t w = words[c * wpc + j];
      if (w == 0) continue;
      const std::uint32_t wb = base + static_cast<std::uint32_t>(j * 64);
      for (unsigned h = 0; h < 4; ++h) {
        const __mmask16 mk = static_cast<__mmask16>((w >> (16 * h)) & 0xFFFF);
        if (!mk) continue;
        const unsigned pc = static_cast<unsigned>(std::popcount(
            static_cast<std::uint32_t>(mk)));
        const __m512i xv = _mm512_maskz_compress_epi32(
            mk, _mm512_add_epi32(
                    _mm512_set1_epi32(static_cast<int>(wb + 16 * h)), iota));
        const __m512i idx = _mm512_loadu_si512(cursor + fill);
        const __mmask16 lanes = static_cast<__mmask16>((1u << pc) - 1);
        _mm512_mask_i32scatter_epi32(row_x, lanes, idx, xv, 4);
        fill += pc;
      }
    }
    // Advance the one cursor slot per row this column consumed.
    for (std::uint32_t t = 0; t < fill; t += 16) {
      const __mmask16 mt =
          static_cast<__mmask16>((1u << std::min(16u, fill - t)) - 1);
      _mm512_mask_storeu_epi32(
          cursor + t, mt,
          _mm512_add_epi32(_mm512_maskz_loadu_epi32(mt, cursor + t), one));
    }
  }
  // Stages 2+3: the shifter maps stage-2 rank j2 to column (rev(t)+j2) mod v.
  // Splitting each row at the wrap point keeps j3 consecutive, so the stage-3
  // fills are contiguous loads/stores and only the routing tables scatter.
  // Each row runs as two passes: first compute every position into pos_buf
  // (scratch-only traffic), then scatter from sequential reads.  Interleaving
  // the col3 loads with the table scatters instead makes the kernel hostage
  // to 4K store-to-load aliasing against the caller-controlled output
  // addresses, which more than doubled its time for unlucky heap layouts.
  sw::SwitchRouting out;
  out.output_of_input.assign(n, -1);
  out.input_of_output.assign(m, -1);
  std::uint32_t* col3 = s.col3_count.data();
  std::uint32_t* pos_buf = s.pos_buf.data();
  std::memset(col3, 0, v * sizeof(std::uint32_t));
  std::int32_t* in_out = out.input_of_output.data();
  std::int32_t* out_in = out.output_of_input.data();
  const __m512i vm = _mm512_set1_epi32(static_cast<int>(m));
  for (std::size_t t = 0; t < maxc; ++t) {
    const std::uint32_t rt = rev[t];
    const std::uint32_t len = s.row_start[t + 1] - s.row_start[t];
    const std::uint32_t* row = row_x + s.row_start[t];
    const std::uint32_t seg0 = std::min(len, static_cast<std::uint32_t>(v) - rt);
    for (unsigned seg = 0; seg < 2; ++seg) {
      const std::uint32_t j2lo = seg == 0 ? 0 : seg0;
      const std::uint32_t j2hi = seg == 0 ? seg0 : len;
      const std::uint32_t j3base = seg == 0 ? rt : 0;
      for (std::uint32_t j2 = j2lo; j2 < j2hi; j2 += 16) {
        const std::uint32_t live = std::min(16u, j2hi - j2);
        const __mmask16 mt = static_cast<__mmask16>((1u << live) - 1);
        const std::uint32_t j3c = j3base + (j2 - j2lo);
        const __m512i fillv = _mm512_maskz_loadu_epi32(mt, col3 + j3c);
        const __m512i j3v =
            _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(j3c)), iota);
        const __m512i posv = _mm512_add_epi32(
            _mm512_slli_epi32(fillv, static_cast<int>(q)), j3v);
        _mm512_mask_storeu_epi32(pos_buf + j2, mt, posv);
        _mm512_mask_storeu_epi32(col3 + j3c, mt, _mm512_add_epi32(fillv, one));
      }
    }
    for (std::uint32_t j2 = 0; j2 < len; j2 += 16) {
      const std::uint32_t live = std::min(16u, len - j2);
      const __mmask16 mt = static_cast<__mmask16>((1u << live) - 1);
      const __m512i xv = _mm512_maskz_loadu_epi32(mt, row + j2);
      const __m512i posv = _mm512_maskz_loadu_epi32(mt, pos_buf + j2);
      const __mmask16 ok = _mm512_mask_cmplt_epu32_mask(mt, posv, vm);
      _mm512_mask_i32scatter_epi32(in_out, ok, posv, xv, 4);
      _mm512_mask_i32scatter_epi32(out_in, ok, xv, posv, 4);
    }
  }
  return out;
}

namespace {

// AVX-512 dense-prefix kernel.  Same decomposition as the scalar variant
// above (see its comment); the vector twists:
//  - phase A writes output_of_input with full 16-lane stores, -1s included:
//    the closed-form dense positions are compressed against the mask word
//    and expanded back onto the bit lanes, so the table needs no -1 prefill
//    and no scatter;
//  - the dense 16-bit staging store is _mm512_mask_cvtepi32_storeu_epi16,
//    which is plain AVX512F (the dispatch gate does not include AVX512BW);
//  - phase B re-reads the staged offsets with a scale-2 gather (stride
//    dense_rows across columns) and emits each dense row with one straight
//    store per 16 columns, falling back to a scatter only for the <= 1
//    vector that wraps the barrel rotation;
//  - masked loads/stores fault-suppress the dead lanes, so the only slack
//    the scratch needs is col_x16's +16 entries for the gather's 32-bit
//    reads at the tail.
__attribute__((target("avx512f")))
sw::SwitchRouting revsort_route_dense_avx512(
    const BitVec& valid, std::size_t m, std::size_t v, unsigned q,
    const std::vector<std::uint32_t>& rev, RevsortScratch& s) {
  const std::size_t n = valid.size();
  const auto& words = valid.words();
  const std::size_t wpc = v / 64;
  std::uint32_t minc, maxc;
  build_ragged_offsets(words, v, wpc, s, minc, maxc);
  sw::SwitchRouting out;
  out.output_of_input.resize(n);  // fully written by phase A
  out.input_of_output.resize(m);
  std::int32_t* out_in = out.output_of_input.data();
  std::int32_t* in_out = out.input_of_output.data();
  const std::uint32_t dense_rows = minc;
  const std::uint32_t mrow = static_cast<std::uint32_t>(m >> q);
  // Ragged region of input_of_output (phase B covers everything below it).
  {
    const std::size_t lo =
        std::min<std::size_t>(static_cast<std::size_t>(dense_rows) << q, m);
    if (m > lo) std::memset(in_out + lo, 0xFF, (m - lo) * sizeof(std::int32_t));
  }

  const __m512i iota =
      _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i vneg1 = _mm512_set1_epi32(-1);
  const __m512i vm = _mm512_set1_epi32(static_cast<int>(m));
  const __m512i vmaskv = _mm512_set1_epi32(static_cast<int>(v - 1));
  std::uint16_t* cx16 = s.col_x16.data();
  std::uint32_t* cursor = s.cursor.data();
  std::uint32_t* row_x = s.row_x.data();
  const std::uint32_t* revp = rev.data();

  // Phase A: sequential bit read, sequential output_of_input write.
  for (std::size_t c = 0; c < v; ++c) {
    std::uint32_t t = 0;
    const std::uint32_t cbase = static_cast<std::uint32_t>(c * v);
    std::uint16_t* cx = cx16 + c * dense_rows;
    const __m512i vc = _mm512_set1_epi32(static_cast<int>(c));
    for (std::size_t j = 0; j < wpc; ++j) {
      const std::uint64_t w = words[c * wpc + j];
      const std::uint32_t wb = static_cast<std::uint32_t>(j * 64);
      for (unsigned h = 0; h < 4; ++h) {
        const std::uint32_t x0 = wb + 16 * h;  // intra-column window base
        const __mmask16 mk = static_cast<__mmask16>((w >> (16 * h)) & 0xFFFF);
        if (!mk) {
          _mm512_storeu_si512(out_in + cbase + x0, vneg1);
          continue;
        }
        const unsigned pc = static_cast<unsigned>(std::popcount(
            static_cast<std::uint32_t>(mk)));
        // Compressed intra-column bit offsets of this window's set bits.
        const __m512i bitposv = _mm512_maskz_compress_epi32(
            mk, _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(x0)),
                                 iota));
        const unsigned kd =
            t < dense_rows ? std::min(pc, dense_rows - t) : 0;
        __m512i posc = vneg1;
        if (kd) {
          const __mmask16 mkd = static_cast<__mmask16>((1u << kd) - 1);
          // Stage the dense ranks' 16-bit offsets, column-major.
          _mm512_mask_cvtepi32_storeu_epi16(cx + t, mkd, bitposv);
          // Closed-form positions ((t+k) << q) | ((rev(t+k)+c) mod v),
          // clipped against m to -1.
          const __m512i revv = _mm512_maskz_loadu_epi32(mkd, revp + t);
          const __m512i j3v =
              _mm512_and_si512(_mm512_add_epi32(revv, vc), vmaskv);
          const __m512i tv =
              _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(t)), iota);
          const __m512i p = _mm512_or_si512(
              _mm512_slli_epi32(tv, static_cast<int>(q)), j3v);
          const __mmask16 okm = _mm512_mask_cmplt_epu32_mask(mkd, p, vm);
          posc = _mm512_mask_mov_epi32(vneg1, okm, p);
        }
        // Ragged ranks bucket their global label into the CSR.
        if (pc > kd) {
          const __mmask16 mr = static_cast<__mmask16>(
              ((1u << pc) - 1) & ~((1u << kd) - 1));
          const __m512i idx = _mm512_maskz_loadu_epi32(mr, cursor + t);
          const __m512i xv = _mm512_add_epi32(
              _mm512_set1_epi32(static_cast<int>(cbase)), bitposv);
          _mm512_mask_i32scatter_epi32(row_x, mr, idx, xv, 4);
          _mm512_mask_storeu_epi32(cursor + t, mr, _mm512_add_epi32(idx, one));
        }
        // Expand the compressed dense positions back onto their bit lanes
        // (-1 everywhere else) and store the window in one go.
        const __m512i lanes = _mm512_mask_expand_epi32(vneg1, mk, posc);
        _mm512_storeu_si512(out_in + cbase + x0, lanes);
        t += pc;
      }
    }
  }

  // Phase B: dense rows of input_of_output, whole rotated rows at a time.
  const std::uint32_t demit = std::min(dense_rows, mrow);
  const __m512i strided = _mm512_set1_epi32(static_cast<int>(dense_rows));
  for (std::uint32_t t = 0; t < demit; ++t) {
    const std::uint32_t rt = revp[t];
    std::int32_t* base = in_out + (static_cast<std::size_t>(t) << q);
    const __m512i tv = _mm512_set1_epi32(static_cast<int>(t));
    for (std::uint32_t c = 0; c < v; c += 16) {
      const __m512i cv =
          _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(c)), iota);
      // Gather the staged offsets at col_x16[(c+k) * dense_rows + t].
      const __m512i idx =
          _mm512_add_epi32(_mm512_mullo_epi32(cv, strided), tv);
      __m512i g = _mm512_i32gather_epi32(
          idx, reinterpret_cast<const int*>(cx16), 2);
      g = _mm512_and_si512(g, _mm512_set1_epi32(0xFFFF));
      const __m512i xv = _mm512_add_epi32(
          _mm512_slli_epi32(cv, static_cast<int>(q)), g);
      const std::uint32_t j3c = (rt + c) & static_cast<std::uint32_t>(v - 1);
      if (j3c + 16 <= v) {
        _mm512_storeu_si512(base + j3c, xv);
      } else {
        const __m512i j3v = _mm512_and_si512(
            _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(rt + c)),
                             iota),
            vmaskv);
        _mm512_i32scatter_epi32(base, j3v, xv, 4);
      }
    }
  }
  // A dense row straddling m emits just its below-m positions.
  if (demit < dense_rows && (static_cast<std::size_t>(demit) << q) < m) {
    const std::uint32_t t = demit;
    const std::uint32_t rt = revp[t];
    std::int32_t* base = in_out + (static_cast<std::size_t>(t) << q);
    const __m512i lim = _mm512_set1_epi32(
        static_cast<int>(static_cast<std::uint32_t>(m) - (t << q)));
    const __m512i tv = _mm512_set1_epi32(static_cast<int>(t));
    for (std::uint32_t c = 0; c < v; c += 16) {
      const __m512i cv =
          _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(c)), iota);
      const __m512i idx =
          _mm512_add_epi32(_mm512_mullo_epi32(cv, strided), tv);
      __m512i g = _mm512_i32gather_epi32(
          idx, reinterpret_cast<const int*>(cx16), 2);
      g = _mm512_and_si512(g, _mm512_set1_epi32(0xFFFF));
      const __m512i xv = _mm512_add_epi32(
          _mm512_slli_epi32(cv, static_cast<int>(q)), g);
      const __m512i j3v = _mm512_and_si512(
          _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(rt + c)), iota),
          vmaskv);
      const __mmask16 ok = _mm512_cmplt_epu32_mask(j3v, lim);
      _mm512_mask_i32scatter_epi32(base, ok, j3v, xv, 4);
    }
  }

  // Phase C: ragged rows via the legacy two-segment row walk, stage-3 fills
  // seeded with the dense prefix's one-item-per-column contribution.
  std::uint32_t* col3 = s.col3_count.data();
  for (std::size_t j = 0; j < v; ++j) col3[j] = dense_rows;
  std::uint32_t* pos_buf = s.pos_buf.data();
  for (std::uint32_t t = dense_rows; t < maxc; ++t) {
    const std::uint32_t rt = revp[t];
    const std::uint32_t len = s.row_start[t + 1] - s.row_start[t];
    const std::uint32_t* row = row_x + s.row_start[t];
    const std::uint32_t seg0 = std::min(len, static_cast<std::uint32_t>(v) - rt);
    for (unsigned seg = 0; seg < 2; ++seg) {
      const std::uint32_t j2lo = seg == 0 ? 0 : seg0;
      const std::uint32_t j2hi = seg == 0 ? seg0 : len;
      const std::uint32_t j3base = seg == 0 ? rt : 0;
      for (std::uint32_t j2 = j2lo; j2 < j2hi; j2 += 16) {
        const std::uint32_t live = std::min(16u, j2hi - j2);
        const __mmask16 mt = static_cast<__mmask16>((1u << live) - 1);
        const std::uint32_t j3c = j3base + (j2 - j2lo);
        const __m512i fillv = _mm512_maskz_loadu_epi32(mt, col3 + j3c);
        const __m512i j3v =
            _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(j3c)), iota);
        const __m512i posv = _mm512_add_epi32(
            _mm512_slli_epi32(fillv, static_cast<int>(q)), j3v);
        _mm512_mask_storeu_epi32(pos_buf + j2, mt, posv);
        _mm512_mask_storeu_epi32(col3 + j3c, mt, _mm512_add_epi32(fillv, one));
      }
    }
    for (std::uint32_t j2 = 0; j2 < len; j2 += 16) {
      const std::uint32_t live = std::min(16u, len - j2);
      const __mmask16 mt = static_cast<__mmask16>((1u << live) - 1);
      const __m512i xv = _mm512_maskz_loadu_epi32(mt, row + j2);
      const __m512i posv = _mm512_maskz_loadu_epi32(mt, pos_buf + j2);
      const __mmask16 ok = _mm512_mask_cmplt_epu32_mask(mt, posv, vm);
      _mm512_mask_i32scatter_epi32(in_out, ok, posv, xv, 4);
      _mm512_mask_i32scatter_epi32(out_in, ok, xv, posv, 4);
    }
  }
  return out;
}

}  // namespace

#else

namespace {
bool cpu_has_avx512f_impl() { return false; }
}  // namespace

sw::SwitchRouting revsort_route_kernel_avx512(
    const BitVec& valid, std::size_t m, std::size_t v, unsigned q,
    const std::vector<std::uint32_t>& rev, RevsortScratch& s) {
  // Unreachable by contract (callers check cpu_has_avx512f()); fall back.
  return revsort_route_kernel(valid, m, v, q, rev, s);
}

#endif  // PCS_REVSORT_AVX512

bool cpu_has_avx512f() { return cpu_has_avx512f_impl(); }

sw::SwitchRouting revsort_route_kernel_fused(
    const BitVec& valid, std::size_t m, std::size_t v, unsigned q,
    const std::vector<std::uint32_t>& rev, RevsortScratch& s, bool vectorize) {
#ifdef PCS_REVSORT_AVX512
  if (vectorize) return revsort_route_dense_avx512(valid, m, v, q, rev, s);
#else
  (void)vectorize;
#endif
  return revsort_route_dense_scalar(valid, m, v, q, rev, s);
}

// ---------------------------------------------------------------------------
// Columnsort kernels.
// ---------------------------------------------------------------------------

// Single ascending pass over the set bits.  Stage 1 sends the t-th valid of
// column c to column-major position y = c*r + t; the CM -> RM wiring lands
// it on stage-2 chip y mod s = t mod s (s divides r), and because y ascends
// along the pass, so does the stage-2 pin y / s within each chip -- the
// stable stage-2 rank is just the chip's fill counter.  With read-out
// position rank*s + chip, the next position a chip emits is a running value
// bumped by s per message.
sw::SwitchRouting columnsort_route_kernel_legacy(const BitVec& valid,
                                                 std::size_t m, std::size_t r,
                                                 std::size_t s,
                                                 ColumnsortScratch& sc) {
  const std::size_t n = valid.size();
  std::fill(sc.col_fill.begin(), sc.col_fill.end(), 0u);
  for (std::size_t j = 0; j < s; ++j) sc.next_pos[j] = j;
  sw::SwitchRouting out;
  out.output_of_input.assign(n, -1);
  out.input_of_output.assign(m, -1);
  const auto& words = valid.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const std::size_t x = wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      const std::size_t j2 = sc.col_fill[x / r]++ % s;
      const std::size_t pos = sc.next_pos[j2];
      sc.next_pos[j2] += s;
      if (pos < m) {
        out.input_of_output[pos] = static_cast<std::int32_t>(x);
        out.output_of_input[x] = static_cast<std::int32_t>(pos);
      }
    }
  }
  return out;
}

// Division-free variant: the bit pass is column-major ascending, so the
// current column is a running boundary (x crosses multiples of r in order)
// and the per-column fill mod s is a wrap-around counter reset at each
// column entry.  Same position sequence as the legacy kernel, bit for bit,
// at a fraction of the per-bit cost.
sw::SwitchRouting columnsort_route_kernel(const BitVec& valid, std::size_t m,
                                          std::size_t r, std::size_t s,
                                          ColumnsortScratch& sc) {
  const std::size_t n = valid.size();
  std::size_t* next_pos = sc.next_pos.data();
  for (std::size_t j = 0; j < s; ++j) next_pos[j] = j;
  sw::SwitchRouting out;
  out.output_of_input.assign(n, -1);
  out.input_of_output.assign(m, -1);
  std::int32_t* in_out = out.input_of_output.data();
  std::int32_t* out_in = out.output_of_input.data();
  const auto& words = valid.words();
  std::size_t col_end = r;  // exclusive end of the current column's bits
  std::size_t j2 = 0;       // current column's fill counter, mod s
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    const std::size_t wb = wi * 64;
    while (w != 0) {
      const std::size_t x = wb + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      while (x >= col_end) {
        col_end += r;
        j2 = 0;
      }
      const std::size_t pos = next_pos[j2];
      next_pos[j2] += s;
      if (++j2 == s) j2 = 0;
      if (pos < m) {
        in_out[pos] = static_cast<std::int32_t>(x);
        out_in[x] = static_cast<std::int32_t>(pos);
      }
    }
  }
  return out;
}

}  // namespace pcs::plan
