// The batch counting kernels behind route_batch's fast paths.
//
// A fault-free Revsort or Columnsort plan routes a pattern without ever
// simulating its stages: the staged execution is replayed as pure rank
// arithmetic on the set bits (DESIGN.md §7).  This header owns every
// variant of those kernels:
//
//  * revsort_route_kernel / revsort_route_kernel_avx512 — the PR 1 kernels,
//    one global counting-sort pass then one full row walk.  Bit-exact, but
//    at large n the CSR staging array plus both routing tables (~3.5 MB per
//    pattern at n = 2^18) fall out of L2 and the scatters go to DRAM: the
//    large-n throughput cliff.  Kept as the ExecMode::kLegacy engine and
//    as the differential-testing oracle.
//  * revsort_route_kernel_fused — the fused-mode kernel, organized around
//    the *dense row prefix*.  Let minc be the smallest per-column valid
//    count: in every row t < minc all v columns are live, so the stage-2
//    rank of column c is just c and the final position is closed-form,
//    pos = t·v + ((rev(t) + c) mod v).  That turns almost all the work
//    into sequential memory traffic: output_of_input is written exactly
//    once, in input order, -1s included (no init memset, no scatter);
//    dense staging shrinks to 16-bit intra-column offsets; and
//    input_of_output's dense rows are written by whole rotated rows.
//    Only the ragged tail (rows >= minc, a few percent of items at
//    moderate densities) takes the legacy scatter path, seeded with the
//    dense prefix's per-column fill counts.  Output is bit-for-bit the
//    legacy kernels' (pinned by differential tests and the fuzzer's
//    fused-vs-legacy family).
//  * columnsort_route_kernel_legacy — the PR 1 single-pass kernel; its
//    inner loop pays one integer divide + one modulo per set bit, which is
//    why Columnsort batch throughput was stuck near ~200 M items/s at
//    every n.
//  * columnsort_route_kernel — the fused-mode rewrite: the pass is already
//    column-major, so the column index and the per-column fill (mod s) are
//    running counters — no division anywhere in the loop.
//
// All kernels are valid only on fault-free plans (apply_chip_faults clears
// FastPathKind); the executor dispatches on plan + ExecMode + CPU.
#pragma once

#include <cstdint>
#include <vector>

#include "switch/concentrator.hpp"
#include "util/bitvec.hpp"

namespace pcs::plan {

/// True when this binary carries the AVX-512 kernel variants and the CPU
/// can run them.
bool cpu_has_avx512f();

/// Per-thread scratch for the Revsort kernels, reused across a chunk of
/// patterns so the batch path allocates once per chunk, not per route.
struct RevsortScratch {
  std::vector<std::uint32_t> col_count;   // stage-1 fill / count histogram
  std::vector<std::uint32_t> row_count;   // per-column valid counts (fused)
  std::vector<std::uint32_t> row_start;   // CSR offsets of the row buckets
  std::vector<std::uint32_t> cursor;      // CSR insertion cursors
  std::vector<std::uint32_t> col3_count;  // stage-3 fill per column
  std::vector<std::uint32_t> pos_buf;     // staged stage-3 positions of a row
  std::vector<std::uint32_t> t_of;        // stage-1 row of the idx-th set bit
  std::vector<std::uint32_t> x_of;        // input label of the idx-th set bit
  std::vector<std::uint32_t> row_x;       // labels bucketed by stage-2 row
  std::vector<std::uint16_t> col_x16;     // dense-prefix 16-bit staging
                                          // (intra-column bit offsets,
                                          // column-major; +16 slack for the
                                          // vector gather's 32-bit reads)

  // cursor carries 16 lanes of slack: the vector kernels load a full
  // 16-lane block at cursor[fill] even when fewer lanes are live.
  RevsortScratch(std::size_t v, std::size_t n)
      : col_count(v + 1),
        row_count(v),
        row_start(v + 2),
        cursor(v + 16),
        col3_count(v),
        pos_buf(v + 16),
        row_x(n),
        col_x16(n + 16) {}

  // The label staging arrays are only used by the legacy scalar kernel;
  // keeping them out of the other paths trims their working set.
  void reserve_staging(std::size_t n) {
    if (t_of.size() < n) {
      t_of.resize(n);
      x_of.resize(n);
    }
  }
};

/// Per-thread scratch for the Columnsort kernels.
struct ColumnsortScratch {
  std::vector<std::uint32_t> col_fill;  // legacy kernel only
  std::vector<std::size_t> next_pos;    // next readout position per chip

  explicit ColumnsortScratch(std::size_t s) : col_fill(s), next_pos(s) {}
};

/// Legacy scalar Revsort kernel (PR 1): valid for any power-of-two side v.
sw::SwitchRouting revsort_route_kernel(const BitVec& valid, std::size_t m,
                                       std::size_t v, unsigned q,
                                       const std::vector<std::uint32_t>& rev,
                                       RevsortScratch& s);

/// Legacy AVX-512 Revsort kernel (PR 1): requires v >= 64 (whole valid
/// words per matrix column) and cpu_has_avx512f().
sw::SwitchRouting revsort_route_kernel_avx512(
    const BitVec& valid, std::size_t m, std::size_t v, unsigned q,
    const std::vector<std::uint32_t>& rev, RevsortScratch& s);

/// Dense-prefix Revsort kernel (fused mode): requires v >= 64.  `vectorize`
/// selects the AVX-512 inner loops (caller must have checked
/// cpu_has_avx512f()); otherwise the scalar dense-prefix loops run.
sw::SwitchRouting revsort_route_kernel_fused(
    const BitVec& valid, std::size_t m, std::size_t v, unsigned q,
    const std::vector<std::uint32_t>& rev, RevsortScratch& s, bool vectorize);

/// Legacy Columnsort kernel (PR 1): one divide + one modulo per set bit.
sw::SwitchRouting columnsort_route_kernel_legacy(const BitVec& valid,
                                                 std::size_t m, std::size_t r,
                                                 std::size_t s,
                                                 ColumnsortScratch& sc);

/// Division-free Columnsort kernel (fused mode): running column boundary
/// and wrap-around fill counter instead of x/r and %s.
sw::SwitchRouting columnsort_route_kernel(const BitVec& valid, std::size_t m,
                                          std::size_t r, std::size_t s,
                                          ColumnsortScratch& sc);

}  // namespace pcs::plan
