#include "plan/plan_analysis.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/assert.hpp"

namespace pcs::plan {

namespace {

std::atomic<ExecMode>& default_mode_slot() noexcept {
  static std::atomic<ExecMode> mode = [] {
    const char* env = std::getenv("PCS_PLAN_EXEC");
    if (env != nullptr && std::strcmp(env, "legacy") == 0) {
      return ExecMode::kLegacy;
    }
    return ExecMode::kFused;
  }();
  return mode;
}

}  // namespace

ExecMode default_exec_mode() noexcept {
  return default_mode_slot().load(std::memory_order_relaxed);
}

void set_default_exec_mode(ExecMode mode) noexcept {
  default_mode_slot().store(mode, std::memory_order_relaxed);
}

const char* gather_kind_name(GatherKind kind) noexcept {
  switch (kind) {
    case GatherKind::kIdentity: return "identity";
    case GatherKind::kStride: return "stride";
    case GatherKind::kGeneral: return "general";
  }
  return "?";
}

GatherKind classify_gather(const std::vector<std::int32_t>& in_src,
                           std::size_t* rows_out, std::size_t* cols_out) {
  const std::size_t n = in_src.size();
  bool identity = true;
  for (std::size_t w = 0; w < n; ++w) {
    if (in_src[w] < 0) return GatherKind::kGeneral;  // constant feeds
    if (static_cast<std::size_t>(in_src[w]) != w) identity = false;
  }
  if (identity) return GatherKind::kIdentity;
  // Fixed-stride shuffle (CM <-> RM / transpose wirings): for some factoring
  // n = a*b, in_src[i*a + j] == j*b + i — the gather reads its source with a
  // constant stride of b.  Wire 1 pins b (i=0, j=1 -> src = b); the mesh
  // being read is b rows of a columns.
  if (n >= 2 && in_src[0] == 0 && in_src[1] > 0) {
    const std::size_t b = static_cast<std::size_t>(in_src[1]);
    if (b > 1 && b < n && n % b == 0) {
      const std::size_t a = n / b;
      bool stride = true;
      for (std::size_t i = 0; i < b && stride; ++i) {
        for (std::size_t j = 0; j < a; ++j) {
          if (in_src[i * a + j] != static_cast<std::int32_t>(j * b + i)) {
            stride = false;
            break;
          }
        }
      }
      if (stride) {
        if (rows_out != nullptr) *rows_out = b;
        if (cols_out != nullptr) *cols_out = a;
        return GatherKind::kStride;
      }
    }
  }
  return GatherKind::kGeneral;
}

namespace {

LinkInfo analyze_link(const std::vector<std::int32_t>& in_src,
                      std::size_t upstream_wires, std::size_t idle_slot,
                      std::size_t pad_slot) {
  LinkInfo info;
  info.kind = classify_gather(in_src, &info.stride_rows, &info.stride_cols);
  // A truncating identity (reading a prefix of a wider upstream stage) must
  // keep its gather table: the fused kernels treat kIdentity as "the whole
  // upstream arrangement is already in place".
  if (info.kind == GatherKind::kIdentity && in_src.size() != upstream_wires) {
    info.kind = GatherKind::kGeneral;
  }
  for (const std::int32_t src : in_src) {
    if (src == kFeedIdle) info.has_idle_feeds = true;
    if (src == kFeedPad) info.has_pad_feeds = true;
    PCS_REQUIRE(src >= kFeedPad &&
                    (src < 0 || static_cast<std::size_t>(src) < upstream_wires),
                "analyze_plan link source out of range: src="
                    << src << " upstream=" << upstream_wires);
  }
  if (info.kind != GatherKind::kIdentity) {
    info.src.resize(in_src.size());
    for (std::size_t w = 0; w < in_src.size(); ++w) {
      const std::int32_t src = in_src[w];
      info.src[w] = src >= 0 ? static_cast<std::uint32_t>(src)
                             : static_cast<std::uint32_t>(
                                   src == kFeedPad ? pad_slot : idle_slot);
    }
  }
  return info;
}

std::vector<std::int32_t> readout_as_link(const SwitchPlan& plan) {
  std::vector<std::int32_t> src(plan.readout.size());
  for (std::size_t pos = 0; pos < plan.readout.size(); ++pos) {
    src[pos] = static_cast<std::int32_t>(plan.readout[pos]);
  }
  return src;
}

}  // namespace

PlanAnalysis analyze_plan(const SwitchPlan& plan) {
  PlanAnalysis a;
  a.max_wires = plan.n;
  for (const PlanStage& st : plan.stages) {
    if (st.wires() > a.max_wires) a.max_wires = st.wires();
  }
  for (const PlanStage& st : plan.safety_stages) {
    if (st.wires() > a.max_wires) a.max_wires = st.wires();
  }
  a.idle_slot = a.max_wires;
  a.pad_slot = a.max_wires + 1;
  a.buf_slots = a.max_wires + 2;

  std::size_t upstream = plan.n;  // stage 0 reads the switch inputs
  a.links.reserve(plan.stages.size());
  for (const PlanStage& st : plan.stages) {
    a.links.push_back(analyze_link(st.in_src, upstream, a.idle_slot, a.pad_slot));
    upstream = st.wires();
  }
  // Safety stages loop on the main pipeline's final width.
  for (const PlanStage& st : plan.safety_stages) {
    a.safety_links.push_back(
        analyze_link(st.in_src, upstream, a.idle_slot, a.pad_slot));
    upstream = st.wires();
  }
  const std::size_t last_wires =
      plan.stages.empty() ? plan.n : plan.stages.back().wires();
  a.readout = analyze_link(readout_as_link(plan), last_wires, a.idle_slot,
                           a.pad_slot);
  return a;
}

std::string PlanAnalysis::summary() const {
  std::ostringstream os;
  const auto describe = [&os](const LinkInfo& info) {
    os << gather_kind_name(info.kind);
    if (info.kind == GatherKind::kStride) {
      os << "(" << info.stride_rows << "x" << info.stride_cols << ")";
    }
    if (info.has_pad_feeds) os << ", pads";
    if (info.has_idle_feeds) os << ", idles";
  };
  for (std::size_t k = 0; k < links.size(); ++k) {
    os << "link " << k << ": ";
    describe(links[k]);
    os << "\n";
  }
  for (std::size_t k = 0; k < safety_links.size(); ++k) {
    os << "safety link " << k << ": ";
    describe(safety_links[k]);
    os << "\n";
  }
  os << "readout: ";
  describe(readout);
  os << "\n";
  return os.str();
}

}  // namespace pcs::plan
