// Plan-analysis pass: classifies every stage link of a SwitchPlan and
// precomputes the gather tables the fused executor reads through.
//
// The staged interpreter (plan_executor.cpp) used to run every stage in two
// passes: materialize the gathered inbound link into a full intermediate
// label vector, then concentrate each chip's segment in place.  At large n
// that intermediate buffer is what blows out L2 — the gather writes n words
// nobody needs once the chips have concentrated.  The analysis pass makes
// the one-pass (fused) evaluation possible:
//
//  * each link's in_src is classified — identity (wire w reads wire w, the
//    gather is a contiguous load), fixed-stride shuffle (the CM<->RM /
//    transpose wirings: in_src[i*cols + j] == j*rows + i, a constant-stride
//    gather), or general (arbitrary permutation, possibly with constant
//    idle/pad feeds — the rev-rotate links and full Columnsort's widened
//    pad stage);
//  * the constant feeds (kFeedIdle / kFeedPad) are remapped onto two
//    sentinel slots past the widest stage, so the fused kernels gather
//    unconditionally from one base pointer with no per-wire branching —
//    state buffers carry the two constants at fixed indices;
//  * the executor picks, per stage, a contiguous-load or gather/compress
//    kernel (AVX-512 when the CPU has it, scalar otherwise) and evaluates
//    every chip by reading *directly through the link* — the inbound
//    intermediate vector is never materialized.
//
// ExecMode selects the fused engine or the legacy two-pass interpreter
// (kept as the differential-testing oracle and for A/B benchmarks); the
// process default honours the PCS_PLAN_EXEC environment variable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "plan/switch_plan.hpp"

namespace pcs::plan {

/// Executor engine selection.  kFused is the default production engine:
/// one-pass gather+concentrate stage evaluation, dense-prefix counting
/// kernels, and the gather-fused lane pipeline.  kLegacy is the pre-fusion
/// interpreter, bit-for-bit identical by contract — the fuzzer and the
/// differential tests cross-check the two on every family.
enum class ExecMode : unsigned char { kFused, kLegacy };

/// Process-wide default mode for newly constructed executors.  Reads the
/// PCS_PLAN_EXEC environment variable once ("legacy" or "fused"; anything
/// else, or unset, means fused).
ExecMode default_exec_mode() noexcept;

/// Override the process default (tests / benchmarks).  Does not affect
/// executors already constructed.
void set_default_exec_mode(ExecMode mode) noexcept;

/// How a stage's inbound gather (or the readout) reads its source.
enum class GatherKind : unsigned char {
  kIdentity,  ///< src[w] == w: contiguous loads, no index table needed
  kStride,    ///< src[i*cols + j] == j*rows + i: constant-stride shuffle
  kGeneral,   ///< arbitrary permutation and/or constant idle/pad feeds
};

const char* gather_kind_name(GatherKind kind) noexcept;

/// One analyzed link: its classification plus the remapped gather table the
/// fused kernels index with (constant feeds folded onto the sentinel slots).
struct LinkInfo {
  GatherKind kind = GatherKind::kGeneral;
  /// kStride only: the (rows, cols) shape with src[i*cols + j] = j*rows + i.
  std::size_t stride_rows = 0;
  std::size_t stride_cols = 0;
  bool has_idle_feeds = false;  ///< any in_src == kFeedIdle
  bool has_pad_feeds = false;   ///< any in_src == kFeedPad
  /// Remapped gather, size = stage wires: upstream wire index, or the
  /// analysis' idle_slot / pad_slot for constant feeds.  Empty for
  /// kIdentity links (the kernels read contiguously instead).
  std::vector<std::uint32_t> src;
};

/// The full analysis of one plan, consumed by PlanExecutor's fused engine.
struct PlanAnalysis {
  std::vector<LinkInfo> links;         ///< one per main stage
  std::vector<LinkInfo> safety_links;  ///< one per safety stage
  LinkInfo readout;                    ///< readout positions gather
  /// Widest stage in wires (>= n for every plan in the library).
  std::size_t max_wires = 0;
  /// Sentinel indices in the executor's state buffers: a slot pinned to the
  /// idle label and a slot pinned to the pad label.
  std::size_t idle_slot = 0;
  std::size_t pad_slot = 0;
  /// State buffers need this many label slots (max_wires + 2 sentinels).
  std::size_t buf_slots = 0;

  /// One line per link: "link 2: stride(16x16)" etc.  Benchmarks print it;
  /// the classification tests pin it per family.
  std::string summary() const;
};

/// Classify one raw gather map (negatives are constant feeds).  Exposed for
/// tests; analyze_plan() applies it to every link of a plan.
GatherKind classify_gather(const std::vector<std::int32_t>& in_src,
                           std::size_t* rows_out = nullptr,
                           std::size_t* cols_out = nullptr);

/// Run the analysis pass over every link of the plan (main stages, safety
/// stages, readout).  Pure function of the plan's wiring; cost is one walk
/// per link, paid at executor construction, never on a route path.
PlanAnalysis analyze_plan(const SwitchPlan& plan);

}  // namespace pcs::plan
