#include "plan/plan_executor.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define PCS_REVSORT_AVX512 1
#include <immintrin.h>
#endif

#include "obs/trace.hpp"
#include "sortnet/lane_batch.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/parallel.hpp"

namespace pcs::plan {

namespace {

/// Stable concentration of one chip segment: occupied slots (anything that
/// is not idle, pads included) sink to the low pins in order.
void concentrate_front(std::int32_t* seg, std::size_t width) {
  std::size_t fill = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const std::int32_t v = seg[i];
    if (v != kIdleLabel) seg[fill++] = v;
  }
  for (; fill < width; ++fill) seg[fill] = kIdleLabel;
}

/// One stage: gather the inbound link out of `prev`, concentrate every
/// chip, then silence dead chips (after their concentrate, before the
/// outbound link -- matching the legacy fault simulations exactly).
/// `span_name` is the stage's interned label; with tracing enabled every
/// chip evaluation (dead chips included -- they are still wired hardware)
/// gets one cat::kChip span under it.
void exec_stage(const PlanStage& st, const std::vector<std::int32_t>& prev,
                std::vector<std::int32_t>& next, const char* span_name) {
  next.resize(st.wires());
  const std::int32_t* in = prev.data();
  std::int32_t* out = next.data();
  for (std::size_t w = 0; w < st.in_src.size(); ++w) {
    const std::int32_t src = st.in_src[w];
    out[w] = src >= 0 ? in[src] : (src == kFeedPad ? kPadLabel : kIdleLabel);
  }
  if (obs::Tracer::enabled()) {
    for (std::size_t c = 0; c < st.chips; ++c) {
      obs::SpanGuard span(span_name, obs::cat::kChip);
      span.arg("chip", c);
      concentrate_front(out + c * st.width, st.width);
    }
    PCS_TRACE_COUNTER("plan.chips_evaluated", st.chips);
  } else {
    for (std::size_t c = 0; c < st.chips; ++c) {
      concentrate_front(out + c * st.width, st.width);
    }
  }
  if (!st.dead.empty()) {
    for (std::size_t c = 0; c < st.chips; ++c) {
      if (st.dead[c]) {
        std::fill(out + c * st.width, out + (c + 1) * st.width, kIdleLabel);
      }
    }
  }
}

bool sequence_concentrated(const std::vector<std::int32_t>& seq) {
  bool seen_idle = false;
  for (std::int32_t s : seq) {
    if (s < 0) {
      seen_idle = true;
    } else if (seen_idle) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Revsort counting kernel (moved verbatim from the pre-plan RevsortSwitch).
// ---------------------------------------------------------------------------

// Per-thread scratch for the counting kernel, reused across a chunk of
// patterns so the batch path allocates once per chunk, not per route.
struct RevsortScratch {
  std::vector<std::uint32_t> col_count;   // stage-1 fill per column
  std::vector<std::uint32_t> row_count;   // stage-2 fill per row
  std::vector<std::uint32_t> row_start;   // CSR offsets of the row buckets
  std::vector<std::uint32_t> cursor;      // CSR insertion cursors
  std::vector<std::uint32_t> col3_count;  // stage-3 fill per column
  std::vector<std::uint32_t> pos_buf;     // staged stage-3 positions of a row
  std::vector<std::uint32_t> t_of;        // stage-1 row of the idx-th set bit
  std::vector<std::uint32_t> x_of;        // input label of the idx-th set bit
  std::vector<std::uint32_t> row_x;       // labels bucketed by stage-2 row

  // cursor carries 16 lanes of slack: the vector kernel loads a full
  // 16-lane block at cursor[fill] even when fewer lanes are live.
  RevsortScratch(std::size_t v, std::size_t n)
      : col_count(v + 1),
        row_count(v),
        row_start(v + 2),
        cursor(v + 16),
        col3_count(v),
        pos_buf(v + 16),
        row_x(n) {}

  // The label staging arrays are only used by the scalar kernel; keeping
  // them out of the vector path trims its working set.
  void reserve_staging(std::size_t n) {
    if (t_of.size() < n) {
      t_of.resize(n);
      x_of.resize(n);
    }
  }
};

// Replays the staged route as pure rank arithmetic on the set bits.  Stage 1
// sends the t-th valid of column c to row t; the transpose hands row t its
// labels in ascending column order, so a stable counting sort by t reproduces
// the stage-2 pin order; the barrel shifter adds rev(t) to the stage-2 rank;
// and stage 3 ranks each destination column by ascending row, which is
// exactly the t-ascending CSR walk.  O(n/64 + k) per pattern.
sw::SwitchRouting revsort_route_kernel(const BitVec& valid, std::size_t m,
                                       std::size_t v, unsigned q,
                                       const std::vector<std::uint32_t>& rev,
                                       RevsortScratch& s) {
  const std::size_t n = valid.size();
  s.reserve_staging(n);
  std::fill(s.col_count.begin(), s.col_count.end(), 0u);
  std::fill(s.row_count.begin(), s.row_count.end(), 0u);
  std::fill(s.col3_count.begin(), s.col3_count.end(), 0u);

  // Stage 1: rank each set bit within its column (= its stage-1 output row).
  std::size_t k = 0;
  const auto& words = valid.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const std::uint32_t x = static_cast<std::uint32_t>(
          wi * 64 + static_cast<std::size_t>(std::countr_zero(w)));
      w &= w - 1;
      const std::uint32_t t = s.col_count[x >> q]++;
      s.t_of[k] = t;
      s.x_of[k] = x;
      ++s.row_count[t];
      ++k;
    }
  }

  // Stable counting sort by row: within a row, labels keep ascending-column
  // order (ascending x), matching the stage-2 chip's pin order.
  s.row_start[0] = 0;
  for (std::size_t t = 0; t < v; ++t) {
    s.row_start[t + 1] = s.row_start[t] + s.row_count[t];
    s.cursor[t] = s.row_start[t];
  }
  for (std::size_t idx = 0; idx < k; ++idx) {
    s.row_x[s.cursor[s.t_of[idx]]++] = s.x_of[idx];
  }

  // Stages 2 + 3: stage-2 rank j2 is the bucket offset; the shifter moves it
  // to column (rev(t) + j2) mod v; stage 3 ranks that column by ascending t.
  sw::SwitchRouting out;
  out.output_of_input.assign(n, -1);
  out.input_of_output.assign(m, -1);
  for (std::size_t t = 0; t < v; ++t) {
    for (std::uint32_t idx = s.row_start[t]; idx < s.row_start[t + 1]; ++idx) {
      const std::uint32_t j2 = idx - s.row_start[t];
      const std::uint32_t j3 = (rev[t] + j2) & static_cast<std::uint32_t>(v - 1);
      const std::size_t pos = static_cast<std::size_t>(s.col3_count[j3]++) * v + j3;
      if (pos < m) {
        const std::uint32_t x = s.row_x[idx];
        out.input_of_output[pos] = static_cast<std::int32_t>(x);
        out.output_of_input[x] = static_cast<std::int32_t>(pos);
      }
    }
  }
  return out;
}

#ifdef PCS_REVSORT_AVX512

bool cpu_has_avx512f_impl() {
  static const bool ok = __builtin_cpu_supports("avx512f");
  return ok;
}

// AVX-512 lane-parallel variant of the counting kernel, used when each
// matrix column is a whole number of 64-bit words (v >= 64).  Three ideas:
//  - within a column the t-th set bit goes to row t, so the CSR cursors a
//    column consumes form one contiguous block: compress the set-bit labels
//    straight out of the mask word and scatter them in 16-lane groups;
//  - rows are walked in two wrap-free segments, so the stage-3 column fills
//    sit at consecutive addresses and need plain loads/stores, not gathers;
//  - only the two routing-table writes are true scatters, and both are
//    conflict-free within a row (distinct outputs, distinct inputs).
__attribute__((target("avx512f")))
sw::SwitchRouting revsort_route_kernel_avx512(
    const BitVec& valid, std::size_t m, std::size_t v, unsigned q,
    const std::vector<std::uint32_t>& rev, RevsortScratch& s) {
  const std::size_t n = valid.size();
  const auto& words = valid.words();
  const std::size_t wpc = v / 64;  // words per column; exact since v >= 64
  // Column populations feed a histogram; row t of the sorted matrix has one
  // slot per column with more than t valids, so suffix sums of the histogram
  // give the row lengths and a prefix scan the CSR offsets.
  std::uint32_t* histo = s.col_count.data();
  std::memset(histo, 0, (v + 1) * sizeof(std::uint32_t));
  std::size_t maxc = 0;
  for (std::size_t c = 0; c < v; ++c) {
    std::uint32_t cnt = 0;
    for (std::size_t j = 0; j < wpc; ++j) {
      cnt += static_cast<std::uint32_t>(std::popcount(words[c * wpc + j]));
    }
    ++histo[cnt];
    if (cnt > maxc) maxc = cnt;
  }
  {
    std::uint32_t acc = 0;
    for (std::size_t t = maxc; t-- > 0;) {
      acc += histo[t + 1];
      s.row_start[t] = acc;  // row length, rewritten to the offset below
    }
    std::uint32_t start = 0;
    for (std::size_t t = 0; t < maxc; ++t) {
      const std::uint32_t len = s.row_start[t];
      s.row_start[t] = start;
      s.cursor[t] = start;
      start += len;
    }
    s.row_start[maxc] = start;
  }
  const __m512i iota =
      _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  const __m512i one = _mm512_set1_epi32(1);
  // Counting sort without the label staging pass: compress each column's
  // set-bit labels out of the valid words and scatter them to cursor[t]
  // (t = in-column rank, so the cursor block is a contiguous load).
  std::uint32_t* row_x = s.row_x.data();
  std::uint32_t* cursor = s.cursor.data();
  for (std::size_t c = 0; c < v; ++c) {
    std::uint32_t fill = 0;
    const std::uint32_t base = static_cast<std::uint32_t>(c * v);
    for (std::size_t j = 0; j < wpc; ++j) {
      const std::uint64_t w = words[c * wpc + j];
      if (w == 0) continue;
      const std::uint32_t wb = base + static_cast<std::uint32_t>(j * 64);
      for (unsigned h = 0; h < 4; ++h) {
        const __mmask16 mk = static_cast<__mmask16>((w >> (16 * h)) & 0xFFFF);
        if (!mk) continue;
        const unsigned pc = static_cast<unsigned>(std::popcount(
            static_cast<std::uint32_t>(mk)));
        const __m512i xv = _mm512_maskz_compress_epi32(
            mk, _mm512_add_epi32(
                    _mm512_set1_epi32(static_cast<int>(wb + 16 * h)), iota));
        const __m512i idx = _mm512_loadu_si512(cursor + fill);
        const __mmask16 lanes = static_cast<__mmask16>((1u << pc) - 1);
        _mm512_mask_i32scatter_epi32(row_x, lanes, idx, xv, 4);
        fill += pc;
      }
    }
    // Advance the one cursor slot per row this column consumed.
    for (std::uint32_t t = 0; t < fill; t += 16) {
      const __mmask16 mt =
          static_cast<__mmask16>((1u << std::min(16u, fill - t)) - 1);
      _mm512_mask_storeu_epi32(
          cursor + t, mt,
          _mm512_add_epi32(_mm512_maskz_loadu_epi32(mt, cursor + t), one));
    }
  }
  // Stages 2+3: the shifter maps stage-2 rank j2 to column (rev(t)+j2) mod v.
  // Splitting each row at the wrap point keeps j3 consecutive, so the stage-3
  // fills are contiguous loads/stores and only the routing tables scatter.
  // Each row runs as two passes: first compute every position into pos_buf
  // (scratch-only traffic), then scatter from sequential reads.  Interleaving
  // the col3 loads with the table scatters instead makes the kernel hostage
  // to 4K store-to-load aliasing against the caller-controlled output
  // addresses, which more than doubled its time for unlucky heap layouts.
  sw::SwitchRouting out;
  out.output_of_input.assign(n, -1);
  out.input_of_output.assign(m, -1);
  std::uint32_t* col3 = s.col3_count.data();
  std::uint32_t* pos_buf = s.pos_buf.data();
  std::memset(col3, 0, v * sizeof(std::uint32_t));
  std::int32_t* in_out = out.input_of_output.data();
  std::int32_t* out_in = out.output_of_input.data();
  const __m512i vm = _mm512_set1_epi32(static_cast<int>(m));
  for (std::size_t t = 0; t < maxc; ++t) {
    const std::uint32_t rt = rev[t];
    const std::uint32_t len = s.row_start[t + 1] - s.row_start[t];
    const std::uint32_t* row = row_x + s.row_start[t];
    const std::uint32_t seg0 = std::min(len, static_cast<std::uint32_t>(v) - rt);
    for (unsigned seg = 0; seg < 2; ++seg) {
      const std::uint32_t j2lo = seg == 0 ? 0 : seg0;
      const std::uint32_t j2hi = seg == 0 ? seg0 : len;
      const std::uint32_t j3base = seg == 0 ? rt : 0;
      for (std::uint32_t j2 = j2lo; j2 < j2hi; j2 += 16) {
        const std::uint32_t live = std::min(16u, j2hi - j2);
        const __mmask16 mt = static_cast<__mmask16>((1u << live) - 1);
        const std::uint32_t j3c = j3base + (j2 - j2lo);
        const __m512i fillv = _mm512_maskz_loadu_epi32(mt, col3 + j3c);
        const __m512i j3v =
            _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(j3c)), iota);
        const __m512i posv = _mm512_add_epi32(
            _mm512_slli_epi32(fillv, static_cast<int>(q)), j3v);
        _mm512_mask_storeu_epi32(pos_buf + j2, mt, posv);
        _mm512_mask_storeu_epi32(col3 + j3c, mt, _mm512_add_epi32(fillv, one));
      }
    }
    for (std::uint32_t j2 = 0; j2 < len; j2 += 16) {
      const std::uint32_t live = std::min(16u, len - j2);
      const __mmask16 mt = static_cast<__mmask16>((1u << live) - 1);
      const __m512i xv = _mm512_maskz_loadu_epi32(mt, row + j2);
      const __m512i posv = _mm512_maskz_loadu_epi32(mt, pos_buf + j2);
      const __mmask16 ok = _mm512_mask_cmplt_epu32_mask(mt, posv, vm);
      _mm512_mask_i32scatter_epi32(in_out, ok, posv, xv, 4);
      _mm512_mask_i32scatter_epi32(out_in, ok, xv, posv, 4);
    }
  }
  return out;
}

#else

bool cpu_has_avx512f_impl() { return false; }

#endif  // PCS_REVSORT_AVX512

}  // namespace

bool cpu_has_avx512f() { return cpu_has_avx512f_impl(); }

namespace {

/// Interned span name for one stage: its label, or "<plan><kind><idx>" when
/// a hand-built plan left the label empty.
const char* intern_stage_name(const SwitchPlan& plan, const PlanStage& st,
                              const char* kind, std::size_t idx) {
  if (!st.label.empty()) return obs::Tracer::instance().intern(st.label);
  return obs::Tracer::instance().intern(plan.name + kind + std::to_string(idx));
}

}  // namespace

PlanExecutor::PlanExecutor(SwitchPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
  stage_span_names_.reserve(plan_.stages.size());
  for (std::size_t i = 0; i < plan_.stages.size(); ++i) {
    stage_span_names_.push_back(
        intern_stage_name(plan_, plan_.stages[i], "#s", i));
  }
  safety_span_names_.reserve(plan_.safety_stages.size());
  for (std::size_t i = 0; i < plan_.safety_stages.size(); ++i) {
    safety_span_names_.push_back(
        intern_stage_name(plan_, plan_.safety_stages[i], "#safety", i));
  }
  if (plan_.fast_path == FastPathKind::kRevsortCount) {
    PCS_REQUIRE(plan_.fp_side > 0 && is_pow2(plan_.fp_side) &&
                    plan_.fp_rev.size() == plan_.fp_side,
                "Revsort fast path parameters: side=" << plan_.fp_side
                                                      << " rev=" << plan_.fp_rev.size());
    fp_q_ = exact_log2(plan_.fp_side);
    // The vector kernel needs whole valid-words per matrix column.
    fp_vectorize_ = cpu_has_avx512f() && plan_.fp_side >= 64;
  }
  if (plan_.fast_path == FastPathKind::kColumnsortCount) {
    PCS_REQUIRE(plan_.fp_r > 0 && plan_.fp_s > 0 &&
                    plan_.fp_r * plan_.fp_s == plan_.n && plan_.fp_r % plan_.fp_s == 0,
                "Columnsort fast path parameters: r=" << plan_.fp_r
                                                      << " s=" << plan_.fp_s);
  }

  // Precompute the generic LaneBatch pipeline: eligible when every stage
  // spans exactly n wires and every link (and the readout) is a bijection,
  // and the plan has no safety net to iterate (faulty plans skip it anyway).
  lanes_eligible_ = plan_.safety_stages.empty() || !plan_.faults.empty();
  for (const PlanStage& st : plan_.stages) {
    if (st.wires() != plan_.n) lanes_eligible_ = false;
  }
  if (lanes_eligible_) {
    const std::size_t n = plan_.n;
    std::vector<std::uint8_t> seen(n);
    for (const PlanStage& st : plan_.stages) {
      std::fill(seen.begin(), seen.end(), 0);
      bool identity = true;
      for (std::size_t w = 0; w < n && lanes_eligible_; ++w) {
        const std::int32_t src = st.in_src[w];
        if (src < 0 || seen[static_cast<std::size_t>(src)]) {
          lanes_eligible_ = false;
          break;
        }
        seen[static_cast<std::size_t>(src)] = 1;
        if (static_cast<std::size_t>(src) != w) identity = false;
      }
      if (!lanes_eligible_) break;
      std::vector<std::uint32_t> dest;
      if (!identity) {
        dest.resize(n);
        for (std::size_t w = 0; w < n; ++w) {
          dest[static_cast<std::size_t>(st.in_src[w])] =
              static_cast<std::uint32_t>(w);
        }
      }
      lane_link_dest_.push_back(std::move(dest));
    }
    if (lanes_eligible_) {
      std::fill(seen.begin(), seen.end(), 0);
      lane_readout_identity_ = true;
      for (std::size_t pos = 0; pos < n; ++pos) {
        const std::uint32_t w = plan_.readout[pos];
        if (seen[w]) {
          lanes_eligible_ = false;
          break;
        }
        seen[w] = 1;
        if (w != pos) lane_readout_identity_ = false;
      }
      if (lanes_eligible_ && !lane_readout_identity_) {
        lane_readout_dest_.resize(n);
        for (std::size_t pos = 0; pos < n; ++pos) {
          lane_readout_dest_[plan_.readout[pos]] = static_cast<std::uint32_t>(pos);
        }
      }
    }
  }
  if (!lanes_eligible_) {
    lane_link_dest_.clear();
    lane_readout_dest_.clear();
  }
}

std::vector<std::int32_t> PlanExecutor::run_stages(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == plan_.n, plan_.name << " width: pattern has "
                                                  << valid.size()
                                                  << " bits, switch has n=" << plan_.n);
  std::vector<std::int32_t> state(plan_.n), next;
  for (std::size_t x = 0; x < plan_.n; ++x) {
    state[x] = valid.get(x) ? static_cast<std::int32_t>(x) : kIdleLabel;
  }
  for (std::size_t k = 0; k < plan_.stages.size(); ++k) {
    obs::SpanGuard span(stage_span_names_[k], obs::cat::kStage);
    exec_stage(plan_.stages[k], state, next, stage_span_names_[k]);
    state.swap(next);
  }
  auto read_out = [&] {
    std::vector<std::int32_t> seq(plan_.n);
    for (std::size_t pos = 0; pos < plan_.n; ++pos) {
      const std::int32_t v = state[plan_.readout[pos]];
      PCS_REQUIRE(v != kPadLabel,
                  plan_.name << ": pad escaped the shift window at pos=" << pos);
      seq[pos] = v;
    }
    return seq;
  };
  std::vector<std::int32_t> seq = read_out();
  if (!plan_.safety_stages.empty() && plan_.faults.empty()) {
    // Safety net: the prescribed structure always fully sorts in practice;
    // if it ever did not, finish with additional sorting phases.
    std::size_t extra = 0;
    while (!sequence_concentrated(seq)) {
      for (std::size_t k = 0; k < plan_.safety_stages.size(); ++k) {
        obs::SpanGuard span(safety_span_names_[k], obs::cat::kStage);
        exec_stage(plan_.safety_stages[k], state, next, safety_span_names_[k]);
        state.swap(next);
      }
      ++extra;
      PCS_TRACE_COUNTER("plan.safety_iterations", 1);
      PCS_REQUIRE(extra <= plan_.safety_limit,
                  plan_.name << " failed to converge");
      seq = read_out();
    }
    extra_phases_.store(extra);
  } else if (plan_.fully_sorting && plan_.faults.empty()) {
    PCS_REQUIRE(sequence_concentrated(seq),
                plan_.name << " output not concentrated");
  }
  return seq;
}

sw::SwitchRouting PlanExecutor::route(const BitVec& valid) const {
  const std::vector<std::int32_t> seq = run_stages(valid);
  sw::SwitchRouting out;
  out.output_of_input.assign(plan_.n, -1);
  out.input_of_output.assign(plan_.m, -1);
  std::uint64_t routed = 0;
  for (std::size_t pos = 0; pos < plan_.m; ++pos) {
    const std::int32_t src = seq[pos];
    if (src >= 0) {
      out.input_of_output[pos] = src;
      out.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(pos);
      ++routed;
    }
  }
  if (obs::Tracer::enabled()) {
    auto& tracer = obs::Tracer::instance();
    tracer.counter_add("plan.words_routed", routed);
    tracer.counter_add("plan.route.scalar", 1);
  }
  return out;
}

BitVec PlanExecutor::nearsorted_valid_bits(const BitVec& valid) const {
  const std::vector<std::int32_t> seq = run_stages(valid);
  BitVec out(plan_.n);
  for (std::size_t pos = 0; pos < plan_.n; ++pos) out.set(pos, seq[pos] >= 0);
  return out;
}

std::vector<sw::SwitchRouting> PlanExecutor::route_batch(
    const std::vector<BitVec>& valids) const {
  std::vector<sw::SwitchRouting> out(valids.size());
  switch (plan_.fast_path) {
    case FastPathKind::kRevsortCount: {
      parallel_for_chunks(0, valids.size(), [&](std::size_t lo, std::size_t hi) {
        obs::SpanGuard span("plan.fastpath.revsort", obs::cat::kBatch);
        span.arg("patterns", hi - lo);
        RevsortScratch scratch(plan_.fp_side, plan_.n);
        for (std::size_t i = lo; i < hi; ++i) {
          PCS_REQUIRE(valids[i].size() == plan_.n,
                      plan_.name << " route_batch width: pattern " << i << " of "
                                 << valids.size() << " has " << valids[i].size()
                                 << " bits, switch has n=" << plan_.n);
#ifdef PCS_REVSORT_AVX512
          if (fp_vectorize_) {
            out[i] = revsort_route_kernel_avx512(valids[i], plan_.m, plan_.fp_side,
                                                 fp_q_, plan_.fp_rev, scratch);
            continue;
          }
#endif
          out[i] = revsort_route_kernel(valids[i], plan_.m, plan_.fp_side, fp_q_,
                                        plan_.fp_rev, scratch);
        }
        if (obs::Tracer::enabled()) {
          std::uint64_t routed = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            for (const std::int32_t v : out[i].input_of_output) routed += v >= 0;
          }
          auto& tracer = obs::Tracer::instance();
          tracer.counter_add("plan.words_routed", routed);
          tracer.counter_add("plan.route.fastpath", hi - lo);
        }
      });
      return out;
    }
    case FastPathKind::kColumnsortCount: {
      const std::size_t r = plan_.fp_r, s = plan_.fp_s, n = plan_.n, m = plan_.m;
      parallel_for_chunks(0, valids.size(), [&](std::size_t lo, std::size_t hi) {
        obs::SpanGuard span("plan.fastpath.columnsort", obs::cat::kBatch);
        span.arg("patterns", hi - lo);
        // Single ascending pass over the set bits.  Stage 1 sends the t-th
        // valid of column c to column-major position y = c*r + t; the
        // CM -> RM wiring lands it on stage-2 chip y mod s = t mod s (s
        // divides r), and because y ascends along the pass, so does the
        // stage-2 pin y / s within each chip -- the stable stage-2 rank is
        // just the chip's fill counter.  With read-out position rank*s +
        // chip, the next position a chip emits is a running value bumped by
        // s per message.
        std::vector<std::uint32_t> col_fill(s);
        std::vector<std::size_t> next_pos(s);
        for (std::size_t i = lo; i < hi; ++i) {
          const BitVec& valid = valids[i];
          PCS_REQUIRE(valid.size() == n,
                      plan_.name << " route_batch width: pattern " << i << " of "
                                 << valids.size() << " has " << valid.size()
                                 << " bits, switch has n=" << n);
          std::fill(col_fill.begin(), col_fill.end(), 0u);
          for (std::size_t j = 0; j < s; ++j) next_pos[j] = j;
          sw::SwitchRouting& out_i = out[i];
          out_i.output_of_input.assign(n, -1);
          out_i.input_of_output.assign(m, -1);
          const auto& words = valid.words();
          for (std::size_t wi = 0; wi < words.size(); ++wi) {
            std::uint64_t w = words[wi];
            while (w != 0) {
              const std::size_t x =
                  wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
              w &= w - 1;
              const std::size_t j2 = col_fill[x / r]++ % s;
              const std::size_t pos = next_pos[j2];
              next_pos[j2] += s;
              if (pos < m) {
                out_i.input_of_output[pos] = static_cast<std::int32_t>(x);
                out_i.output_of_input[x] = static_cast<std::int32_t>(pos);
              }
            }
          }
        }
        if (obs::Tracer::enabled()) {
          std::uint64_t routed = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            for (const std::int32_t v : out[i].input_of_output) routed += v >= 0;
          }
          auto& tracer = obs::Tracer::instance();
          tracer.counter_add("plan.words_routed", routed);
          tracer.counter_add("plan.route.fastpath", hi - lo);
        }
      });
      return out;
    }
    case FastPathKind::kNone:
      break;
  }
  parallel_for(0, valids.size(), [&](std::size_t i) { out[i] = route(valids[i]); });
  return out;
}

std::vector<BitVec> PlanExecutor::nearsorted_batch(
    const std::vector<BitVec>& valids) const {
  std::vector<BitVec> out(valids.size());
  if (plan_.fully_sorting && plan_.faults.empty()) {
    // A full sorter always leaves the valid bits fully concentrated, so the
    // batch nearsorted bits are prefix_ones(n, count) without simulating.
    PCS_TRACE_COUNTER("plan.nearsorted.prefix_shortcut", valids.size());
    parallel_for(0, valids.size(), [&](std::size_t i) {
      PCS_REQUIRE(valids[i].size() == plan_.n,
                  plan_.name << " nearsorted_batch width: pattern " << i << " of "
                             << valids.size() << " has " << valids[i].size()
                             << " bits, switch has n=" << plan_.n);
      out[i] = BitVec::prefix_ones(plan_.n, valids[i].count());
    });
    return out;
  }
  if (lanes_eligible_) {
    const std::size_t blocks = ceil_div(valids.size(), sortnet::LaneBatch::kLanes);
    parallel_for(0, blocks, [&](std::size_t b) {
      const std::size_t first = b * sortnet::LaneBatch::kLanes;
      const std::size_t count =
          std::min(sortnet::LaneBatch::kLanes, valids.size() - first);
      obs::SpanGuard span("plan.lane_block", obs::cat::kBatch);
      span.arg("lanes", count);
      PCS_TRACE_COUNTER("plan.lane_blocks", 1);
      sortnet::LaneBatch lanes(plan_.n);
      lanes.load(valids, first, count);
      for (std::size_t k = 0; k < plan_.stages.size(); ++k) {
        const PlanStage& st = plan_.stages[k];
        if (!lane_link_dest_[k].empty()) lanes.permute(lane_link_dest_[k]);
        lanes.concentrate_segments(st.width);
        if (!st.dead.empty()) {
          for (std::size_t c = 0; c < st.chips; ++c) {
            if (st.dead[c]) lanes.clear_positions(c * st.width, (c + 1) * st.width);
          }
        }
      }
      if (!lane_readout_identity_) lanes.permute(lane_readout_dest_);
      lanes.store(out, first);
    });
    return out;
  }
  parallel_for(0, valids.size(),
               [&](std::size_t i) { out[i] = nearsorted_valid_bits(valids[i]); });
  return out;
}

}  // namespace pcs::plan
