#include "plan/plan_executor.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define PCS_PLAN_CHIP_AVX512 1
#include <immintrin.h>
#endif

#include "obs/trace.hpp"
#include "plan/counting_kernels.hpp"
#include "sortnet/lane_batch.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/parallel.hpp"

namespace pcs::plan {

namespace {

/// Stable concentration of one chip segment: occupied slots (anything that
/// is not idle, pads included) sink to the low pins in order.
void concentrate_front(std::int32_t* seg, std::size_t width) {
  std::size_t fill = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const std::int32_t v = seg[i];
    if (v != kIdleLabel) seg[fill++] = v;
  }
  for (; fill < width; ++fill) seg[fill] = kIdleLabel;
}

/// Legacy stage evaluation: gather the inbound link out of `prev` into a
/// full intermediate vector, concentrate every chip in place, then silence
/// dead chips (after their concentrate, before the outbound link --
/// matching the legacy fault simulations exactly).  `span_name` is the
/// stage's interned label; with tracing enabled every chip evaluation (dead
/// chips included -- they are still wired hardware) gets one cat::kChip
/// span under it.
void exec_stage(const PlanStage& st, const std::vector<std::int32_t>& prev,
                std::vector<std::int32_t>& next, const char* span_name) {
  next.resize(st.wires());
  const std::int32_t* in = prev.data();
  std::int32_t* out = next.data();
  for (std::size_t w = 0; w < st.in_src.size(); ++w) {
    const std::int32_t src = st.in_src[w];
    out[w] = src >= 0 ? in[src] : (src == kFeedPad ? kPadLabel : kIdleLabel);
  }
  if (obs::Tracer::enabled()) {
    for (std::size_t c = 0; c < st.chips; ++c) {
      obs::SpanGuard span(span_name, obs::cat::kChip);
      span.arg("chip", c);
      concentrate_front(out + c * st.width, st.width);
    }
    PCS_TRACE_COUNTER("plan.chips_evaluated", st.chips);
  } else {
    for (std::size_t c = 0; c < st.chips; ++c) {
      concentrate_front(out + c * st.width, st.width);
    }
  }
  if (!st.dead.empty()) {
    for (std::size_t c = 0; c < st.chips; ++c) {
      if (st.dead[c]) {
        std::fill(out + c * st.width, out + (c + 1) * st.width, kIdleLabel);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fused chip kernels: evaluate one chip by reading straight through the
// analyzed inbound gather.  The intermediate gathered vector of the legacy
// path is never materialized -- a chip's concentrate is one gather+compress
// over its pin window.  Constant idle/pad feeds were remapped onto sentinel
// state slots by the analysis pass, so the gathers are unconditional.
// ---------------------------------------------------------------------------

/// Identity link: the chip's pins are already contiguous in `prev`.
std::size_t chip_copy_concentrate(const std::int32_t* in, std::size_t width,
                                  std::int32_t* out) {
  std::size_t fill = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const std::int32_t v = in[i];
    if (v != kIdleLabel) out[fill++] = v;
  }
  return fill;
}

/// General / stride link: pin i of the chip reads prev[src[i]].
std::size_t chip_gather_concentrate(const std::int32_t* prev,
                                    const std::uint32_t* src,
                                    std::size_t width, std::int32_t* out) {
  std::size_t fill = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const std::int32_t v = prev[src[i]];
    if (v != kIdleLabel) out[fill++] = v;
  }
  return fill;
}

#ifdef PCS_PLAN_CHIP_AVX512

__attribute__((target("avx512f")))
std::size_t chip_copy_concentrate_avx512(const std::int32_t* in,
                                         std::size_t width, std::int32_t* out) {
  const __m512i idlev = _mm512_set1_epi32(kIdleLabel);
  std::size_t fill = 0;
  for (std::size_t i = 0; i < width; i += 16) {
    const unsigned live =
        static_cast<unsigned>(std::min<std::size_t>(16, width - i));
    const __mmask16 mt = static_cast<__mmask16>((1u << live) - 1);
    const __m512i v = _mm512_maskz_loadu_epi32(mt, in + i);
    const __mmask16 occ = _mm512_mask_cmpneq_epi32_mask(mt, v, idlev);
    _mm512_mask_compressstoreu_epi32(out + fill, occ, v);
    fill += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(occ)));
  }
  return fill;
}

__attribute__((target("avx512f")))
std::size_t chip_gather_concentrate_avx512(const std::int32_t* prev,
                                           const std::uint32_t* src,
                                           std::size_t width,
                                           std::int32_t* out) {
  const __m512i idlev = _mm512_set1_epi32(kIdleLabel);
  std::size_t fill = 0;
  for (std::size_t i = 0; i < width; i += 16) {
    const unsigned live =
        static_cast<unsigned>(std::min<std::size_t>(16, width - i));
    const __mmask16 mt = static_cast<__mmask16>((1u << live) - 1);
    const __m512i idx = _mm512_maskz_loadu_epi32(mt, src + i);
    const __m512i v = _mm512_mask_i32gather_epi32(idlev, mt, idx, prev, 4);
    const __mmask16 occ = _mm512_mask_cmpneq_epi32_mask(mt, v, idlev);
    _mm512_mask_compressstoreu_epi32(out + fill, occ, v);
    fill += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(occ)));
  }
  return fill;
}

#endif  // PCS_PLAN_CHIP_AVX512

/// Fused stage evaluation: one gather+compress per chip, reading `prev`
/// through the analyzed link.  Same trace span structure as the legacy
/// exec_stage (one cat::kChip span per chip, chips_evaluated counter).
void exec_stage_fused(const PlanStage& st, const LinkInfo& link,
                      const std::int32_t* prev, std::int32_t* next,
                      const char* span_name, bool simd) {
#ifndef PCS_PLAN_CHIP_AVX512
  (void)simd;
#endif
  const bool identity = link.kind == GatherKind::kIdentity;
  const std::uint32_t* src = identity ? nullptr : link.src.data();
  const auto eval_chip = [&](std::size_t c) {
    std::int32_t* out = next + c * st.width;
    std::size_t fill;
#ifdef PCS_PLAN_CHIP_AVX512
    if (simd) {
      fill = identity
                 ? chip_copy_concentrate_avx512(prev + c * st.width, st.width,
                                                out)
                 : chip_gather_concentrate_avx512(prev, src + c * st.width,
                                                  st.width, out);
    } else
#endif
    {
      fill = identity
                 ? chip_copy_concentrate(prev + c * st.width, st.width, out)
                 : chip_gather_concentrate(prev, src + c * st.width, st.width,
                                           out);
    }
    for (; fill < st.width; ++fill) out[fill] = kIdleLabel;
  };
  if (obs::Tracer::enabled()) {
    for (std::size_t c = 0; c < st.chips; ++c) {
      obs::SpanGuard span(span_name, obs::cat::kChip);
      span.arg("chip", c);
      eval_chip(c);
    }
    PCS_TRACE_COUNTER("plan.chips_evaluated", st.chips);
  } else {
    for (std::size_t c = 0; c < st.chips; ++c) eval_chip(c);
  }
  if (!st.dead.empty()) {
    for (std::size_t c = 0; c < st.chips; ++c) {
      if (st.dead[c]) {
        std::fill(next + c * st.width, next + (c + 1) * st.width, kIdleLabel);
      }
    }
  }
}

bool sequence_concentrated(const std::vector<std::int32_t>& seq) {
  bool seen_idle = false;
  for (std::int32_t s : seq) {
    if (s < 0) {
      seen_idle = true;
    } else if (seen_idle) {
      return false;
    }
  }
  return true;
}

/// Interned span name for one stage: its label, or "<plan><kind><idx>" when
/// a hand-built plan left the label empty.
const char* intern_stage_name(const SwitchPlan& plan, const PlanStage& st,
                              const char* kind, std::size_t idx) {
  if (!st.label.empty()) return obs::Tracer::instance().intern(st.label);
  return obs::Tracer::instance().intern(plan.name + kind + std::to_string(idx));
}

}  // namespace

PlanExecutor::PlanExecutor(SwitchPlan plan, ExecMode mode)
    : plan_(std::move(plan)), mode_(mode) {
  plan_.validate();
  analysis_ = analyze_plan(plan_);
  fused_simd_ = cpu_has_avx512f();
  stage_span_names_.reserve(plan_.stages.size());
  for (std::size_t i = 0; i < plan_.stages.size(); ++i) {
    stage_span_names_.push_back(
        intern_stage_name(plan_, plan_.stages[i], "#s", i));
  }
  safety_span_names_.reserve(plan_.safety_stages.size());
  for (std::size_t i = 0; i < plan_.safety_stages.size(); ++i) {
    safety_span_names_.push_back(
        intern_stage_name(plan_, plan_.safety_stages[i], "#safety", i));
  }
  if (plan_.fast_path == FastPathKind::kRevsortCount) {
    PCS_REQUIRE(plan_.fp_side > 0 && is_pow2(plan_.fp_side) &&
                    plan_.fp_rev.size() == plan_.fp_side,
                "Revsort fast path parameters: side=" << plan_.fp_side
                                                      << " rev=" << plan_.fp_rev.size());
    fp_q_ = exact_log2(plan_.fp_side);
    // The vector kernels need whole valid-words per matrix column.
    fp_vectorize_ = cpu_has_avx512f() && plan_.fp_side >= 64;
  }
  if (plan_.fast_path == FastPathKind::kColumnsortCount) {
    PCS_REQUIRE(plan_.fp_r > 0 && plan_.fp_s > 0 &&
                    plan_.fp_r * plan_.fp_s == plan_.n && plan_.fp_r % plan_.fp_s == 0,
                "Columnsort fast path parameters: r=" << plan_.fp_r
                                                      << " s=" << plan_.fp_s);
  }

  // Lane-pipeline eligibility.  Both engines refuse plans that might
  // iterate their safety net (fault-free plans with safety stages; faulty
  // plans skip the net anyway).  The fused engine reads through the
  // analysis gather tables, so that is its *only* requirement -- pad feeds,
  // non-bijective links, and width-changing stages all batch.  The legacy
  // engine additionally needs every stage on n wires and every link (and
  // the readout) to be a bijection, with precomputed permute dest arrays.
  lanes_eligible_ = plan_.safety_stages.empty() || !plan_.faults.empty();
  if (mode_ == ExecMode::kLegacy && lanes_eligible_) {
    for (const PlanStage& st : plan_.stages) {
      if (st.wires() != plan_.n) lanes_eligible_ = false;
    }
    if (lanes_eligible_) {
      const std::size_t n = plan_.n;
      std::vector<std::uint8_t> seen(n);
      for (const PlanStage& st : plan_.stages) {
        std::fill(seen.begin(), seen.end(), 0);
        bool identity = true;
        for (std::size_t w = 0; w < n && lanes_eligible_; ++w) {
          const std::int32_t src = st.in_src[w];
          if (src < 0 || seen[static_cast<std::size_t>(src)]) {
            lanes_eligible_ = false;
            break;
          }
          seen[static_cast<std::size_t>(src)] = 1;
          if (static_cast<std::size_t>(src) != w) identity = false;
        }
        if (!lanes_eligible_) break;
        std::vector<std::uint32_t> dest;
        if (!identity) {
          dest.resize(n);
          for (std::size_t w = 0; w < n; ++w) {
            dest[static_cast<std::size_t>(st.in_src[w])] =
                static_cast<std::uint32_t>(w);
          }
        }
        lane_link_dest_.push_back(std::move(dest));
      }
      if (lanes_eligible_) {
        std::fill(seen.begin(), seen.end(), 0);
        lane_readout_identity_ = true;
        for (std::size_t pos = 0; pos < n; ++pos) {
          const std::uint32_t w = plan_.readout[pos];
          if (seen[w]) {
            lanes_eligible_ = false;
            break;
          }
          seen[w] = 1;
          if (w != pos) lane_readout_identity_ = false;
        }
        if (lanes_eligible_ && !lane_readout_identity_) {
          lane_readout_dest_.resize(n);
          for (std::size_t pos = 0; pos < n; ++pos) {
            lane_readout_dest_[plan_.readout[pos]] = static_cast<std::uint32_t>(pos);
          }
        }
      }
    }
    if (!lanes_eligible_) {
      lane_link_dest_.clear();
      lane_readout_dest_.clear();
    }
  }
}

std::vector<std::int32_t> PlanExecutor::run_stages_legacy(
    const BitVec& valid, StageScratch& scratch) const {
  std::vector<std::int32_t>& state = scratch.state;
  std::vector<std::int32_t>& next = scratch.next;
  state.resize(plan_.n);
  for (std::size_t x = 0; x < plan_.n; ++x) {
    state[x] = valid.get(x) ? static_cast<std::int32_t>(x) : kIdleLabel;
  }
  for (std::size_t k = 0; k < plan_.stages.size(); ++k) {
    obs::SpanGuard span(stage_span_names_[k], obs::cat::kStage);
    exec_stage(plan_.stages[k], state, next, stage_span_names_[k]);
    state.swap(next);
  }
  auto read_out = [&] {
    std::vector<std::int32_t> seq(plan_.n);
    for (std::size_t pos = 0; pos < plan_.n; ++pos) {
      const std::int32_t v = state[plan_.readout[pos]];
      PCS_REQUIRE(v != kPadLabel,
                  plan_.name << ": pad escaped the shift window at pos=" << pos);
      seq[pos] = v;
    }
    return seq;
  };
  std::vector<std::int32_t> seq = read_out();
  if (!plan_.safety_stages.empty() && plan_.faults.empty()) {
    // Safety net: the prescribed structure always fully sorts in practice;
    // if it ever did not, finish with additional sorting phases.
    std::size_t extra = 0;
    while (!sequence_concentrated(seq)) {
      for (std::size_t k = 0; k < plan_.safety_stages.size(); ++k) {
        obs::SpanGuard span(safety_span_names_[k], obs::cat::kStage);
        exec_stage(plan_.safety_stages[k], state, next, safety_span_names_[k]);
        state.swap(next);
      }
      ++extra;
      PCS_TRACE_COUNTER("plan.safety_iterations", 1);
      PCS_REQUIRE(extra <= plan_.safety_limit,
                  plan_.name << " failed to converge");
      seq = read_out();
    }
    extra_phases_.store(extra);
  } else if (plan_.fully_sorting && plan_.faults.empty()) {
    PCS_REQUIRE(sequence_concentrated(seq),
                plan_.name << " output not concentrated");
  }
  return seq;
}

std::vector<std::int32_t> PlanExecutor::run_stages_fused(
    const BitVec& valid, StageScratch& scratch) const {
  std::vector<std::int32_t>& state = scratch.state;
  std::vector<std::int32_t>& next = scratch.next;
  if (state.size() != analysis_.buf_slots) {
    // Both buffers carry the two sentinel slots past the widest stage; the
    // stage kernels only ever write [0, wires), so the pins survive the
    // swaps for the whole walk (and across reuses of this scratch).
    state.assign(analysis_.buf_slots, kIdleLabel);
    next.assign(analysis_.buf_slots, kIdleLabel);
    state[analysis_.pad_slot] = kPadLabel;
    next[analysis_.pad_slot] = kPadLabel;
  }
  for (std::size_t x = 0; x < plan_.n; ++x) {
    state[x] = valid.get(x) ? static_cast<std::int32_t>(x) : kIdleLabel;
  }
  for (std::size_t k = 0; k < plan_.stages.size(); ++k) {
    obs::SpanGuard span(stage_span_names_[k], obs::cat::kStage);
    exec_stage_fused(plan_.stages[k], analysis_.links[k], state.data(),
                     next.data(), stage_span_names_[k], fused_simd_);
    state.swap(next);
  }
  const LinkInfo& ro = analysis_.readout;
  auto read_out = [&] {
    std::vector<std::int32_t> seq(plan_.n);
    for (std::size_t pos = 0; pos < plan_.n; ++pos) {
      const std::int32_t v = ro.kind == GatherKind::kIdentity
                                 ? state[pos]
                                 : state[ro.src[pos]];
      PCS_REQUIRE(v != kPadLabel,
                  plan_.name << ": pad escaped the shift window at pos=" << pos);
      seq[pos] = v;
    }
    return seq;
  };
  std::vector<std::int32_t> seq = read_out();
  if (!plan_.safety_stages.empty() && plan_.faults.empty()) {
    std::size_t extra = 0;
    while (!sequence_concentrated(seq)) {
      for (std::size_t k = 0; k < plan_.safety_stages.size(); ++k) {
        obs::SpanGuard span(safety_span_names_[k], obs::cat::kStage);
        exec_stage_fused(plan_.safety_stages[k], analysis_.safety_links[k],
                         state.data(), next.data(), safety_span_names_[k],
                         fused_simd_);
        state.swap(next);
      }
      ++extra;
      PCS_TRACE_COUNTER("plan.safety_iterations", 1);
      PCS_REQUIRE(extra <= plan_.safety_limit,
                  plan_.name << " failed to converge");
      seq = read_out();
    }
    extra_phases_.store(extra);
  } else if (plan_.fully_sorting && plan_.faults.empty()) {
    PCS_REQUIRE(sequence_concentrated(seq),
                plan_.name << " output not concentrated");
  }
  return seq;
}

std::vector<std::int32_t> PlanExecutor::run_stages(
    const BitVec& valid, StageScratch& scratch) const {
  PCS_REQUIRE(valid.size() == plan_.n, plan_.name << " width: pattern has "
                                                  << valid.size()
                                                  << " bits, switch has n=" << plan_.n);
  return mode_ == ExecMode::kFused ? run_stages_fused(valid, scratch)
                                   : run_stages_legacy(valid, scratch);
}

sw::SwitchRouting PlanExecutor::route_with_scratch(const BitVec& valid,
                                                   StageScratch& scratch) const {
  const std::vector<std::int32_t> seq = run_stages(valid, scratch);
  sw::SwitchRouting out;
  out.output_of_input.assign(plan_.n, -1);
  out.input_of_output.assign(plan_.m, -1);
  std::uint64_t routed = 0;
  for (std::size_t pos = 0; pos < plan_.m; ++pos) {
    const std::int32_t src = seq[pos];
    if (src >= 0) {
      out.input_of_output[pos] = src;
      out.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(pos);
      ++routed;
    }
  }
  if (obs::Tracer::enabled()) {
    auto& tracer = obs::Tracer::instance();
    tracer.counter_add("plan.words_routed", routed);
    tracer.counter_add("plan.route.scalar", 1);
  }
  return out;
}

sw::SwitchRouting PlanExecutor::route(const BitVec& valid) const {
  StageScratch scratch;
  return route_with_scratch(valid, scratch);
}

BitVec PlanExecutor::nearsorted_valid_bits(const BitVec& valid) const {
  StageScratch scratch;
  const std::vector<std::int32_t> seq = run_stages(valid, scratch);
  BitVec out(plan_.n);
  for (std::size_t pos = 0; pos < plan_.n; ++pos) out.set(pos, seq[pos] >= 0);
  return out;
}

std::vector<sw::SwitchRouting> PlanExecutor::route_batch(
    const std::vector<BitVec>& valids) const {
  std::vector<sw::SwitchRouting> out(valids.size());
  switch (plan_.fast_path) {
    case FastPathKind::kRevsortCount: {
      // Fused mode runs the dense-prefix kernel whenever the matrix columns
      // are whole valid-words (it scans columns wordwise); legacy mode keeps
      // the PR 1 kernels as the A/B baseline and differential oracle.
      const bool fused = mode_ == ExecMode::kFused && plan_.fp_side >= 64;
      parallel_for_chunks(0, valids.size(), [&](std::size_t lo, std::size_t hi) {
        obs::SpanGuard span("plan.fastpath.revsort", obs::cat::kBatch);
        span.arg("patterns", hi - lo);
        RevsortScratch scratch(plan_.fp_side, plan_.n);
        for (std::size_t i = lo; i < hi; ++i) {
          PCS_REQUIRE(valids[i].size() == plan_.n,
                      plan_.name << " route_batch width: pattern " << i << " of "
                                 << valids.size() << " has " << valids[i].size()
                                 << " bits, switch has n=" << plan_.n);
          if (fused) {
            out[i] = revsort_route_kernel_fused(valids[i], plan_.m,
                                                plan_.fp_side, fp_q_,
                                                plan_.fp_rev, scratch,
                                                fp_vectorize_);
          } else if (fp_vectorize_) {
            out[i] = revsort_route_kernel_avx512(valids[i], plan_.m,
                                                 plan_.fp_side, fp_q_,
                                                 plan_.fp_rev, scratch);
          } else {
            out[i] = revsort_route_kernel(valids[i], plan_.m, plan_.fp_side,
                                          fp_q_, plan_.fp_rev, scratch);
          }
        }
        if (obs::Tracer::enabled()) {
          std::uint64_t routed = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            for (const std::int32_t v : out[i].input_of_output) routed += v >= 0;
          }
          auto& tracer = obs::Tracer::instance();
          tracer.counter_add("plan.words_routed", routed);
          tracer.counter_add("plan.route.fastpath", hi - lo);
        }
      });
      return out;
    }
    case FastPathKind::kColumnsortCount: {
      const std::size_t r = plan_.fp_r, s = plan_.fp_s, n = plan_.n, m = plan_.m;
      parallel_for_chunks(0, valids.size(), [&](std::size_t lo, std::size_t hi) {
        obs::SpanGuard span("plan.fastpath.columnsort", obs::cat::kBatch);
        span.arg("patterns", hi - lo);
        ColumnsortScratch scratch(s);
        for (std::size_t i = lo; i < hi; ++i) {
          PCS_REQUIRE(valids[i].size() == n,
                      plan_.name << " route_batch width: pattern " << i << " of "
                                 << valids.size() << " has " << valids[i].size()
                                 << " bits, switch has n=" << n);
          out[i] = mode_ == ExecMode::kFused
                       ? columnsort_route_kernel(valids[i], m, r, s, scratch)
                       : columnsort_route_kernel_legacy(valids[i], m, r, s,
                                                        scratch);
        }
        if (obs::Tracer::enabled()) {
          std::uint64_t routed = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            for (const std::int32_t v : out[i].input_of_output) routed += v >= 0;
          }
          auto& tracer = obs::Tracer::instance();
          tracer.counter_add("plan.words_routed", routed);
          tracer.counter_add("plan.route.fastpath", hi - lo);
        }
      });
      return out;
    }
    case FastPathKind::kNone:
      break;
  }
  // Generic path: chunked scalar walks, one stage scratch per chunk so the
  // label buffers are allocated once per worker, not once per pattern.
  parallel_for_chunks(0, valids.size(), [&](std::size_t lo, std::size_t hi) {
    StageScratch scratch;
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = route_with_scratch(valids[i], scratch);
    }
  });
  return out;
}

std::vector<BitVec> PlanExecutor::nearsorted_batch(
    const std::vector<BitVec>& valids) const {
  std::vector<BitVec> out(valids.size());
  if (plan_.fully_sorting && plan_.faults.empty()) {
    // A full sorter always leaves the valid bits fully concentrated, so the
    // batch nearsorted bits are prefix_ones(n, count) without simulating.
    PCS_TRACE_COUNTER("plan.nearsorted.prefix_shortcut", valids.size());
    parallel_for(0, valids.size(), [&](std::size_t i) {
      PCS_REQUIRE(valids[i].size() == plan_.n,
                  plan_.name << " nearsorted_batch width: pattern " << i << " of "
                             << valids.size() << " has " << valids[i].size()
                             << " bits, switch has n=" << plan_.n);
      out[i] = BitVec::prefix_ones(plan_.n, valids[i].count());
    });
    return out;
  }
  if (lanes_eligible_ && mode_ == ExecMode::kFused) {
    // Fused lane pipeline: word-parallel occupancy through the analysis
    // gather tables.  Constant feeds read the sentinel slots (idle = zero
    // word, pad = all-ones word), re-pinned after every gather because the
    // gather recycles the position store.
    const std::size_t blocks = ceil_div(valids.size(), sortnet::LaneBatch::kLanes);
    parallel_for(0, blocks, [&](std::size_t b) {
      const std::size_t first = b * sortnet::LaneBatch::kLanes;
      const std::size_t count =
          std::min(sortnet::LaneBatch::kLanes, valids.size() - first);
      obs::SpanGuard span("plan.lane_block", obs::cat::kBatch);
      span.arg("lanes", count);
      PCS_TRACE_COUNTER("plan.lane_blocks", 1);
      sortnet::LaneBatch lanes(plan_.n, analysis_.buf_slots);
      lanes.load(valids, first, count);
      const auto pin_sentinels = [&] {
        lanes.set_constant(analysis_.idle_slot, 0);
        lanes.set_constant(analysis_.pad_slot, ~std::uint64_t{0});
      };
      pin_sentinels();
      for (std::size_t k = 0; k < plan_.stages.size(); ++k) {
        const PlanStage& st = plan_.stages[k];
        const LinkInfo& link = analysis_.links[k];
        if (link.kind != GatherKind::kIdentity) {
          lanes.gather(link.src);
          pin_sentinels();
        }
        lanes.concentrate_segments(st.width);
        if (!st.dead.empty()) {
          for (std::size_t c = 0; c < st.chips; ++c) {
            if (st.dead[c]) lanes.clear_positions(c * st.width, (c + 1) * st.width);
          }
        }
      }
      if (analysis_.readout.kind != GatherKind::kIdentity) {
        lanes.gather(analysis_.readout.src);
      }
      lanes.store(out, first);
    });
    return out;
  }
  if (lanes_eligible_ && mode_ == ExecMode::kLegacy) {
    const std::size_t blocks = ceil_div(valids.size(), sortnet::LaneBatch::kLanes);
    parallel_for(0, blocks, [&](std::size_t b) {
      const std::size_t first = b * sortnet::LaneBatch::kLanes;
      const std::size_t count =
          std::min(sortnet::LaneBatch::kLanes, valids.size() - first);
      obs::SpanGuard span("plan.lane_block", obs::cat::kBatch);
      span.arg("lanes", count);
      PCS_TRACE_COUNTER("plan.lane_blocks", 1);
      sortnet::LaneBatch lanes(plan_.n);
      lanes.load(valids, first, count);
      for (std::size_t k = 0; k < plan_.stages.size(); ++k) {
        const PlanStage& st = plan_.stages[k];
        if (!lane_link_dest_[k].empty()) lanes.permute(lane_link_dest_[k]);
        lanes.concentrate_segments(st.width);
        if (!st.dead.empty()) {
          for (std::size_t c = 0; c < st.chips; ++c) {
            if (st.dead[c]) lanes.clear_positions(c * st.width, (c + 1) * st.width);
          }
        }
      }
      if (!lane_readout_identity_) lanes.permute(lane_readout_dest_);
      lanes.store(out, first);
    });
    return out;
  }
  parallel_for_chunks(0, valids.size(), [&](std::size_t lo, std::size_t hi) {
    StageScratch scratch;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::vector<std::int32_t> seq = run_stages(valids[i], scratch);
      BitVec bits(plan_.n);
      for (std::size_t pos = 0; pos < plan_.n; ++pos) {
        bits.set(pos, seq[pos] >= 0);
      }
      out[i] = std::move(bits);
    }
  });
  return out;
}

}  // namespace pcs::plan
