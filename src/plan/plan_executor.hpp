// The one executor behind every multichip switch: interprets a SwitchPlan.
//
// Scalar route() walks the stages on a flat label vector (gather the
// inbound link, stable-concentrate each chip's segment, silence dead
// chips), then reads the output positions through the plan's readout
// gather.  nearsorted_valid_bits() is the same walk projected to
// occupancy.  The batch entry points dispatch on the plan:
//
//   route_batch       -> the family counting kernels (Revsort's three-stage
//                        rank-arithmetic kernel with its AVX-512 variant,
//                        Columnsort's single-pass kernel) when the plan
//                        carries a FastPathKind, else parallel scalar walks;
//   nearsorted_batch  -> prefix_ones for fault-free fully-sorting plans,
//                        a generic word-parallel LaneBatch pipeline when
//                        every link is a bijection on n wires, else
//                        parallel scalar walks.
//
// All paths are bit-for-bit identical to the scalar walk (differential
// tests + fuzz cross-check), which is itself bit-for-bit identical to the
// pre-plan per-family switch simulations.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "plan/switch_plan.hpp"
#include "switch/concentrator.hpp"
#include "util/bitvec.hpp"

namespace pcs::plan {

/// True when this CPU can run the AVX-512 Revsort kernel.
bool cpu_has_avx512f();

class PlanExecutor {
 public:
  /// Takes ownership of the plan (it is fixed hardware; executors never
  /// mutate it).  Validates the plan's structure up front.
  explicit PlanExecutor(SwitchPlan plan);

  // Movable so the switch classes embedding an executor stay movable (the
  // atomic phase counter forces these to be spelled out).
  PlanExecutor(PlanExecutor&& other) noexcept
      : plan_(std::move(other.plan_)),
        fp_q_(other.fp_q_),
        fp_vectorize_(other.fp_vectorize_),
        lanes_eligible_(other.lanes_eligible_),
        lane_link_dest_(std::move(other.lane_link_dest_)),
        lane_readout_dest_(std::move(other.lane_readout_dest_)),
        lane_readout_identity_(other.lane_readout_identity_),
        stage_span_names_(std::move(other.stage_span_names_)),
        safety_span_names_(std::move(other.safety_span_names_)),
        extra_phases_(other.extra_phases_.load()) {}
  PlanExecutor& operator=(PlanExecutor&& other) noexcept {
    plan_ = std::move(other.plan_);
    fp_q_ = other.fp_q_;
    fp_vectorize_ = other.fp_vectorize_;
    lanes_eligible_ = other.lanes_eligible_;
    lane_link_dest_ = std::move(other.lane_link_dest_);
    lane_readout_dest_ = std::move(other.lane_readout_dest_);
    lane_readout_identity_ = other.lane_readout_identity_;
    stage_span_names_ = std::move(other.stage_span_names_);
    safety_span_names_ = std::move(other.safety_span_names_);
    extra_phases_.store(other.extra_phases_.load());
    return *this;
  }
  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  const SwitchPlan& plan() const noexcept { return plan_; }
  std::size_t inputs() const noexcept { return plan_.n; }
  std::size_t outputs() const noexcept { return plan_.m; }

  sw::SwitchRouting route(const BitVec& valid) const;
  BitVec nearsorted_valid_bits(const BitVec& valid) const;
  std::vector<sw::SwitchRouting> route_batch(
      const std::vector<BitVec>& valids) const;
  std::vector<BitVec> nearsorted_batch(const std::vector<BitVec>& valids) const;

  /// Safety-net iterations the last route() needed (always 0 in practice;
  /// atomic so route_batch may run routes concurrently).
  std::size_t extra_phases_used() const noexcept { return extra_phases_.load(); }

 private:
  /// Runs the staged pipeline (including the safety net on fault-free
  /// plans) and returns the n labels at the readout positions.
  std::vector<std::int32_t> run_stages(const BitVec& valid) const;

  SwitchPlan plan_;
  unsigned fp_q_ = 0;        // exact_log2(fp_side) for the Revsort kernel
  bool fp_vectorize_ = false;
  // Generic LaneBatch pipeline, precomputed when every stage spans n wires
  // and every link (and the readout) is a bijection: per-stage permute dest
  // arrays (empty = identity, skipped), the readout dest, and the dead-chip
  // segments to clear after each stage's concentrate.
  bool lanes_eligible_ = false;
  std::vector<std::vector<std::uint32_t>> lane_link_dest_;
  std::vector<std::uint32_t> lane_readout_dest_;
  bool lane_readout_identity_ = false;
  // Interned span names (stage labels, or "<plan>#s<idx>" fallbacks) so the
  // tracing sites hand out stable const char* without per-route allocation.
  std::vector<const char*> stage_span_names_;
  std::vector<const char*> safety_span_names_;
  mutable std::atomic<std::size_t> extra_phases_{0};
};

}  // namespace pcs::plan
