// The one executor behind every multichip switch: interprets a SwitchPlan.
//
// Two engines share every entry point, selected by ExecMode (plan_analysis):
//
//   kFused (default) -- the analysis pass classifies each stage's inbound
//   gather, and chip evaluation reads *directly through the composed
//   gather*: one gather+compress kernel per chip (AVX-512 when the CPU has
//   it, scalar otherwise) instead of materializing the gathered link into an
//   intermediate label vector and concentrating in place.  The batch paths
//   reuse one scratch per worker chunk, the Revsort counting kernel uses the
//   dense-prefix decomposition so its traffic is sequential at large n, the
//   Columnsort kernel is division-free, and the nearsorted lane pipeline
//   reads through the analysis tables (sentinel idle/pad slots), which
//   makes every plan in the library lane-eligible -- pad feeds and
//   width-changing stages included.
//
//   kLegacy -- the pre-fusion two-pass interpreter and the PR 1 counting
//   kernels, kept as the differential-testing oracle and the A/B benchmark
//   baseline.  Bit-for-bit identical outputs by contract.
//
// Scalar route() walks the stages on a flat label vector (gather the
// inbound link, stable-concentrate each chip's segment, silence dead
// chips), then reads the output positions through the plan's readout
// gather.  nearsorted_valid_bits() is the same walk projected to
// occupancy.  The batch entry points dispatch on the plan:
//
//   route_batch       -> the family counting kernels (Revsort's three-stage
//                        rank-arithmetic kernel, Columnsort's single-pass
//                        kernel) when the plan carries a FastPathKind, else
//                        chunked scalar walks with per-chunk scratch;
//   nearsorted_batch  -> prefix_ones for fault-free fully-sorting plans,
//                        the word-parallel LaneBatch pipeline otherwise
//                        (fused mode; legacy mode still requires every link
//                        to be a bijection on n wires), else scalar walks.
//
// All paths are bit-for-bit identical to the scalar walk (differential
// tests + fuzz cross-check), which is itself bit-for-bit identical to the
// pre-plan per-family switch simulations.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "plan/plan_analysis.hpp"
#include "plan/switch_plan.hpp"
#include "switch/concentrator.hpp"
#include "util/bitvec.hpp"

namespace pcs::plan {

/// True when this CPU can run the AVX-512 kernels (re-exported from
/// counting_kernels.hpp for convenience).
bool cpu_has_avx512f();

class PlanExecutor {
 public:
  /// Takes ownership of the plan (it is fixed hardware; executors never
  /// mutate it).  Validates the plan's structure and runs the analysis pass
  /// up front.  `mode` defaults to the process-wide engine selection
  /// (PCS_PLAN_EXEC / set_default_exec_mode).
  explicit PlanExecutor(SwitchPlan plan, ExecMode mode = default_exec_mode());

  // Movable so the switch classes embedding an executor stay movable (the
  // atomic phase counter forces these to be spelled out).
  PlanExecutor(PlanExecutor&& other) noexcept
      : plan_(std::move(other.plan_)),
        mode_(other.mode_),
        analysis_(std::move(other.analysis_)),
        fused_simd_(other.fused_simd_),
        fp_q_(other.fp_q_),
        fp_vectorize_(other.fp_vectorize_),
        lanes_eligible_(other.lanes_eligible_),
        lane_link_dest_(std::move(other.lane_link_dest_)),
        lane_readout_dest_(std::move(other.lane_readout_dest_)),
        lane_readout_identity_(other.lane_readout_identity_),
        stage_span_names_(std::move(other.stage_span_names_)),
        safety_span_names_(std::move(other.safety_span_names_)),
        extra_phases_(other.extra_phases_.load()) {}
  PlanExecutor& operator=(PlanExecutor&& other) noexcept {
    plan_ = std::move(other.plan_);
    mode_ = other.mode_;
    analysis_ = std::move(other.analysis_);
    fused_simd_ = other.fused_simd_;
    fp_q_ = other.fp_q_;
    fp_vectorize_ = other.fp_vectorize_;
    lanes_eligible_ = other.lanes_eligible_;
    lane_link_dest_ = std::move(other.lane_link_dest_);
    lane_readout_dest_ = std::move(other.lane_readout_dest_);
    lane_readout_identity_ = other.lane_readout_identity_;
    stage_span_names_ = std::move(other.stage_span_names_);
    safety_span_names_ = std::move(other.safety_span_names_);
    extra_phases_.store(other.extra_phases_.load());
    return *this;
  }
  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  const SwitchPlan& plan() const noexcept { return plan_; }
  ExecMode exec_mode() const noexcept { return mode_; }
  const PlanAnalysis& analysis() const noexcept { return analysis_; }
  std::size_t inputs() const noexcept { return plan_.n; }
  std::size_t outputs() const noexcept { return plan_.m; }

  sw::SwitchRouting route(const BitVec& valid) const;
  BitVec nearsorted_valid_bits(const BitVec& valid) const;
  std::vector<sw::SwitchRouting> route_batch(
      const std::vector<BitVec>& valids) const;
  std::vector<BitVec> nearsorted_batch(const std::vector<BitVec>& valids) const;

  /// Safety-net iterations the last route() needed (always 0 in practice;
  /// atomic so route_batch may run routes concurrently).
  std::size_t extra_phases_used() const noexcept { return extra_phases_.load(); }

 private:
  /// Reusable per-walk label buffers.  The fused engine sizes them to the
  /// analysis' buf_slots (sentinel idle/pad slots pinned past the widest
  /// stage); the legacy engine grows them per stage.  The batch paths carry
  /// one per worker chunk so scalar walks stop allocating per pattern.
  struct StageScratch {
    std::vector<std::int32_t> state;
    std::vector<std::int32_t> next;
  };

  /// Runs the staged pipeline (including the safety net on fault-free
  /// plans) and returns the n labels at the readout positions.  Dispatches
  /// on mode_.
  std::vector<std::int32_t> run_stages(const BitVec& valid,
                                       StageScratch& scratch) const;
  std::vector<std::int32_t> run_stages_legacy(const BitVec& valid,
                                              StageScratch& scratch) const;
  std::vector<std::int32_t> run_stages_fused(const BitVec& valid,
                                             StageScratch& scratch) const;
  sw::SwitchRouting route_with_scratch(const BitVec& valid,
                                       StageScratch& scratch) const;

  SwitchPlan plan_;
  ExecMode mode_ = ExecMode::kFused;
  PlanAnalysis analysis_;
  bool fused_simd_ = false;  // AVX-512 gather/compress chip kernels usable
  unsigned fp_q_ = 0;        // exact_log2(fp_side) for the Revsort kernel
  bool fp_vectorize_ = false;
  // Legacy LaneBatch pipeline, precomputed (legacy mode only) when every
  // stage spans n wires and every link (and the readout) is a bijection:
  // per-stage permute dest arrays (empty = identity, skipped), the readout
  // dest, and the dead-chip segments to clear after each stage's
  // concentrate.  In fused mode the lane pipeline reads through the
  // analysis gather tables instead and lanes_eligible_ only excludes plans
  // that might iterate their safety net.
  bool lanes_eligible_ = false;
  std::vector<std::vector<std::uint32_t>> lane_link_dest_;
  std::vector<std::uint32_t> lane_readout_dest_;
  bool lane_readout_identity_ = false;
  // Interned span names (stage labels, or "<plan>#s<idx>" fallbacks) so the
  // tracing sites hand out stable const char* without per-route allocation.
  std::vector<const char*> stage_span_names_;
  std::vector<const char*> safety_span_names_;
  mutable std::atomic<std::size_t> extra_phases_{0};
};

}  // namespace pcs::plan
