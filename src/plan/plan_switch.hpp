// PlanSwitch: any compiled (or fault-rewritten) SwitchPlan behind the
// ConcentratorSwitch interface.  This is how family-agnostic consumers --
// the clocked simulator, the runtime, the fuzzer's fault family -- run a
// plan without knowing which compiler produced it.
#pragma once

#include <utility>

#include "plan/plan_executor.hpp"
#include "switch/concentrator.hpp"

namespace pcs::plan {

class PlanSwitch : public sw::ConcentratorSwitch {
 public:
  /// `mode` picks the executor engine (default: the process-wide selection,
  /// see plan_analysis.hpp); tests pass ExecMode::kLegacy to run the
  /// differential oracle behind the same interface.
  explicit PlanSwitch(SwitchPlan plan, ExecMode mode = default_exec_mode())
      : exec_(std::move(plan), mode) {}

  std::size_t inputs() const override { return exec_.inputs(); }
  std::size_t outputs() const override { return exec_.outputs(); }
  std::size_t epsilon_bound() const override { return exec_.plan().epsilon; }
  sw::SwitchRouting route(const BitVec& valid) const override {
    return exec_.route(valid);
  }
  BitVec nearsorted_valid_bits(const BitVec& valid) const override {
    return exec_.nearsorted_valid_bits(valid);
  }
  std::vector<sw::SwitchRouting> route_batch(
      const std::vector<BitVec>& valids) const override {
    return exec_.route_batch(valids);
  }
  std::vector<BitVec> nearsorted_batch(
      const std::vector<BitVec>& valids) const override {
    return exec_.nearsorted_batch(valids);
  }
  std::string name() const override { return exec_.plan().name; }

  const SwitchPlan& plan() const noexcept { return exec_.plan(); }
  const PlanExecutor& executor() const noexcept { return exec_; }

  /// Upper bound on messages a setup can lose to the plan's dead chips.
  std::size_t max_fault_loss() const noexcept override {
    return exec_.plan().max_fault_loss;
  }

 private:
  PlanExecutor exec_;
};

}  // namespace pcs::plan
