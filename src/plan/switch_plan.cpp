#include "plan/switch_plan.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "util/assert.hpp"
#include "util/digest.hpp"
#include "util/mathutil.hpp"

namespace pcs::plan {

bool PlanStage::any_dead() const noexcept {
  return std::find(dead.begin(), dead.end(), std::uint8_t{1}) != dead.end();
}

std::size_t SwitchPlan::shifter_count() const noexcept {
  std::size_t total = 0;
  for (const PlanStage& st : stages)
    if (st.has_shifter) total += st.chips;
  return total;
}

std::size_t SwitchPlan::chip_count() const noexcept {
  return board_count() + shifter_count();
}

std::size_t SwitchPlan::board_count() const noexcept {
  std::size_t total = 0;
  for (const PlanStage& st : stages) total += st.chips;
  return total;
}

std::size_t SwitchPlan::board_types() const noexcept {
  std::set<std::pair<std::size_t, bool>> types;
  for (const PlanStage& st : stages) types.emplace(st.width, st.has_shifter);
  return types.size();
}

std::size_t SwitchPlan::max_pins_per_chip() const noexcept {
  std::size_t pins = 0;
  for (const PlanStage& st : stages) {
    std::size_t p = 2 * st.width;
    if (st.has_shifter) p += ceil_log2(st.width);
    pins = std::max(pins, p);
  }
  return pins;
}

std::size_t SwitchPlan::connector_count() const noexcept {
  std::size_t total = 0;
  for (const PlanStage& st : stages) total += st.link_connectors;
  return total;
}

std::size_t SwitchPlan::area_2d() const noexcept {
  // One n-wire crossbar region per inter-stage link, plus w^2 of silicon
  // per chip (the chips themselves are laid out as squares).
  std::size_t area = 0;
  if (!stages.empty()) area += (stages.size() - 1) * n * n;
  for (const PlanStage& st : stages) area += st.chips * st.width * st.width;
  return area;
}

std::size_t SwitchPlan::volume_3d() const noexcept {
  // Stacked-board packaging: each chip contributes one board of area w^2,
  // doubled when the board also carries a barrel shifter, plus the
  // interstack connector volumes.
  std::size_t vol = 0;
  for (const PlanStage& st : stages) {
    std::size_t board = st.width * st.width * (st.has_shifter ? 2 : 1);
    vol += st.chips * board;
    vol += st.link_connectors * st.connector_volume;
  }
  return vol;
}

std::uint64_t SwitchPlan::digest() const {
  Digest d;
  d.mix_byte(static_cast<std::uint8_t>(family));
  d.mix_u64(n);
  d.mix_u64(m);
  d.mix_u64(epsilon);
  d.mix_byte(fully_sorting ? 1 : 0);
  auto mix_stage = [&d](const PlanStage& st) {
    d.mix_u64(st.chips);
    d.mix_u64(st.width);
    d.mix_byte(st.has_shifter ? 1 : 0);
    d.mix_u64(st.link_connectors);
    d.mix_u64(st.connector_volume);
    for (std::int32_t src : st.in_src) d.mix_i32(src);
    for (std::uint8_t dd : st.dead) d.mix_byte(dd);
  };
  d.mix_u64(stages.size());
  for (const PlanStage& st : stages) mix_stage(st);
  d.mix_u64(readout.size());
  for (std::uint32_t r : readout) d.mix_u64(r);
  d.mix_u64(safety_stages.size());
  for (const PlanStage& st : safety_stages) mix_stage(st);
  d.mix_u64(safety_limit);
  d.mix_u64(faults.size());
  for (const ChipFault& f : faults) {
    d.mix_u64(f.stage);
    d.mix_u64(f.chip);
  }
  return d.value();
}

std::string SwitchPlan::summary() const {
  std::ostringstream out;
  out << name << ": n=" << n << " m=" << m << " epsilon=" << epsilon
      << (fully_sorting ? " fully-sorting" : "") << "\n";
  std::size_t idx = 0;
  for (const PlanStage& st : stages) {
    out << "  stage " << idx++ << ": " << st.chips << " x " << st.width
        << "-wire hyper" << (st.has_shifter ? " + shifter" : "");
    if (st.link_connectors > 0)
      out << ", link " << st.link_connectors << " connectors";
    std::size_t dead_count =
        static_cast<std::size_t>(std::count(st.dead.begin(), st.dead.end(), 1));
    if (dead_count > 0) out << ", " << dead_count << " dead";
    out << "\n";
  }
  if (!safety_stages.empty())
    out << "  safety net: " << safety_stages.size() << " stages, limit "
        << safety_limit << "\n";
  out << "  chips=" << chip_count() << " boards=" << board_count()
      << " board-types=" << board_types() << " pins<=" << max_pins_per_chip()
      << " passes=" << chip_passes() << "\n";
  out << "  area=" << area_2d() << " volume=" << volume_3d()
      << " connectors=" << connector_count() << "\n";
  return out.str();
}

namespace {

void validate_stage(const PlanStage& st, std::size_t prev_wires,
                    std::size_t index, bool allow_pads) {
  PCS_REQUIRE(st.chips > 0 && st.width > 0,
              "plan stage " << index << " shape: chips=" << st.chips
                            << " width=" << st.width);
  PCS_REQUIRE(st.in_src.size() == st.wires(),
              "plan stage " << index << " in_src size: " << st.in_src.size()
                            << " wires=" << st.wires());
  PCS_REQUIRE(st.dead.empty() || st.dead.size() == st.chips,
              "plan stage " << index << " dead size: " << st.dead.size()
                            << " chips=" << st.chips);
  for (std::int32_t src : st.in_src) {
    if (src == kFeedIdle) continue;
    if (src == kFeedPad) {
      PCS_REQUIRE(allow_pads, "plan stage " << index << " feeds a pad but the "
                                            << "plan family does not use pads");
      continue;
    }
    PCS_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < prev_wires,
                "plan stage " << index << " in_src out of range: src=" << src
                              << " prev_wires=" << prev_wires);
  }
}

}  // namespace

void SwitchPlan::validate() const {
  PCS_REQUIRE(n > 0, "plan n=" << n);
  PCS_REQUIRE(m >= 1 && m <= n, "plan m range: m=" << m << " n=" << n);
  PCS_REQUIRE(!stages.empty(), "plan has no stages");
  const bool allow_pads = family == PlanFamily::kFullColumnsort;
  std::size_t prev = n;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    validate_stage(stages[i], prev, i, allow_pads);
    prev = stages[i].wires();
  }
  PCS_REQUIRE(readout.size() == n,
              "plan readout size: " << readout.size() << " n=" << n);
  for (std::uint32_t r : readout)
    PCS_REQUIRE(r < prev, "plan readout wire out of range: wire="
                              << r << " last_stage_wires=" << prev);
  // Safety stages cycle back onto the final stage's wire space: each must
  // preserve that wire count so the loop can iterate.
  for (std::size_t i = 0; i < safety_stages.size(); ++i) {
    validate_stage(safety_stages[i], prev, stages.size() + i, false);
    PCS_REQUIRE(safety_stages[i].wires() == prev,
                "safety stage " << i << " changes wire count: "
                                << safety_stages[i].wires() << " vs " << prev);
    prev = safety_stages[i].wires();
  }
  PCS_REQUIRE(safety_stages.empty() == (safety_limit == 0),
              "safety_limit=" << safety_limit << " with "
                              << safety_stages.size() << " safety stages");
}

void apply_chip_faults(SwitchPlan& plan, std::vector<ChipFault> faults) {
  for (const ChipFault& f : faults) {
    PCS_REQUIRE(f.stage < plan.stages.size(),
                "fault stage out of range: stage=" << f.stage << " stages="
                                                   << plan.stages.size());
    PCS_REQUIRE(f.chip < plan.stages[f.stage].chips,
                "fault chip out of range: stage=" << f.stage
                                                  << " chip=" << f.chip
                                                  << " chips="
                                                  << plan.stages[f.stage].chips);
  }
  // A chip is either dead or not: repeating a coordinate must not inflate
  // the loss bound.
  std::sort(faults.begin(), faults.end(), [](const ChipFault& a, const ChipFault& b) {
    return std::tie(a.stage, a.chip) < std::tie(b.stage, b.chip);
  });
  faults.erase(std::unique(faults.begin(), faults.end()), faults.end());

  for (const ChipFault& f : faults) {
    PlanStage& st = plan.stages[f.stage];
    if (st.dead.empty()) st.dead.assign(st.chips, 0);
    if (st.dead[f.chip]) continue;  // already dead from an earlier rewrite
    st.dead[f.chip] = 1;
    plan.max_fault_loss += st.width;
    plan.faults.push_back(f);
  }

  if (!plan.faults.empty()) {
    // Dead chips void every routing guarantee: no nearsorting bound, no
    // fully-sorted output, and the counting fast paths (which assume every
    // chip concentrates) no longer replay the staged execution.
    plan.epsilon = plan.n;
    plan.fully_sorting = false;
    plan.fast_path = FastPathKind::kNone;
    std::string base = plan.name;
    if (base.rfind("faulty-", 0) == 0) {
      // Re-applying faults: strip the previous dead-count decoration.
      base = base.substr(7, base.rfind(",dead=") - 7);
      base += ')';
    }
    PCS_REQUIRE(!base.empty() && base.back() == ')',
                "plan name not decoratable: " << base);
    std::ostringstream renamed;
    renamed << "faulty-" << base.substr(0, base.size() - 1)
            << ",dead=" << plan.faults.size() << ")";
    plan.name = renamed.str();
  }
}

}  // namespace pcs::plan
