// The staged-plan IR every multichip switch compiles to.
//
// All of the paper's multichip constructions are the same shape: an ordered
// list of *stages*, each stage a row of parallel hyperconcentrator chips,
// joined by fixed inter-stage wiring.  A SwitchPlan captures that shape as
// data so one executor (plan_executor.hpp) can route any of the five switch
// families, one rewrite (apply_chip_faults) can inject dead chips into any
// of them, and one cost walk (cost::plan_report) can derive the Table 1
// numbers from the exact wiring that gets simulated.
//
// Wire-space conventions:
//  * A stage's wires are numbered chip-major: stage chip c, pin w is wire
//    c * width + w.
//  * The link into a stage is a gather: in_src[w] names the previous
//    stage's output wire feeding wire w (for stage 0, the switch input
//    index), or one of two constants -- kFeedIdle for a wire fed nothing
//    and kFeedPad for the sentinel "sorts-before-everything" pads of full
//    Columnsort's shift step.  Bijective links model pure wiring
//    permutations; the widened pad stage of full Columnsort is the one
//    non-bijective link in the library.
//  * readout[pos] names the last stage's output wire observed at output
//    position pos; the switch's m outputs are readout positions [0, m).
//  * safety_stages, when present, are looped by the executor until the
//    readout is concentrated (the full-Revsort Shearsort safety net).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pcs::plan {

/// Slot labels used by the executor (same values as the LabelMesh codes the
/// mesh simulations use: idle = -1, pad-one = -2).
inline constexpr std::int32_t kIdleLabel = -1;
inline constexpr std::int32_t kPadLabel = -2;

/// in_src constants for wires fed a constant instead of an upstream wire.
inline constexpr std::int32_t kFeedIdle = -1;
inline constexpr std::int32_t kFeedPad = -2;

enum class PlanFamily : unsigned char {
  kRevsort,         ///< Section 4, three stages + barrel shifters
  kColumnsort,      ///< Section 5, two stages
  kMultipass,       ///< Section 6 open question, d passes + final sort
  kFullRevsort,     ///< Section 6 full-sorting Revsort hyperconcentrator
  kFullColumnsort,  ///< Section 6 full-sorting Columnsort (8 steps)
};

/// Batch fast-path tag: a counting kernel that is bit-identical to the
/// staged execution but replays it as rank arithmetic on the set bits.
/// Only valid on fault-free plans; apply_chip_faults clears it.
enum class FastPathKind : unsigned char {
  kNone,
  kRevsortCount,     ///< three-stage Revsort counting kernel (+AVX-512)
  kColumnsortCount,  ///< single-pass Columnsort counting kernel
};

/// Reshape schedule of the multipass switch (re-exported by
/// switch/multipass_switch.hpp as sw::ReshapeSchedule).
enum class ReshapeSchedule : unsigned char {
  kSame,         ///< every pass converts column-major -> row-major
  kAlternating,  ///< odd passes CM -> RM, even passes RM -> CM
};

/// A dead chip, identified by its stage index and position within the stage.
struct ChipFault {
  std::size_t stage;
  std::size_t chip;

  bool operator==(const ChipFault&) const = default;
};

/// One stage: `chips` parallel `width`-wire hyperconcentrator chips, plus
/// the wiring that feeds them and the board-level annotations the cost
/// model needs.
struct PlanStage {
  std::size_t chips = 0;
  std::size_t width = 0;
  /// Human-readable stage name for tracing/profiling (span names, profile
  /// rollup keys).  Presentation only: NOT part of digest() -- the golden
  /// digests pin the hardware structure, and a label rename is not a
  /// hardware change.  Executors fall back to "<plan>#s<idx>" when empty.
  std::string label;
  /// Gather feeding this stage: in_src[w] is the upstream wire (>= 0),
  /// kFeedIdle, or kFeedPad.  Size chips * width.
  std::vector<std::int32_t> in_src;
  /// Per-chip dead flags, set by apply_chip_faults: a dead chip drives all
  /// of its output pins idle (after its concentrate, before the next link).
  std::vector<std::uint8_t> dead;
  /// This stage's boards also carry a hardwired barrel shifter feeding the
  /// outbound link (Revsort stacks 2; Figure 4).
  bool has_shifter = false;
  /// Interstack wire-transposer connectors on this stage's inbound link
  /// (Figure 8) and the unit volume of each.
  std::size_t link_connectors = 0;
  std::size_t connector_volume = 0;

  std::size_t wires() const noexcept { return chips * width; }
  bool any_dead() const noexcept;
};

struct SwitchPlan {
  PlanFamily family = PlanFamily::kRevsort;
  std::string name;
  std::size_t n = 0;        ///< input wires
  std::size_t m = 0;        ///< output wires (readout positions [0, m))
  std::size_t epsilon = 0;  ///< guaranteed nearsortedness of the readout
  bool fully_sorting = false;

  std::vector<PlanStage> stages;
  /// Output position -> last-stage output wire; size n.
  std::vector<std::uint32_t> readout;

  /// Safety-net stages (full Revsort): looped by the executor until the
  /// readout is concentrated, at most safety_limit iterations.
  std::vector<PlanStage> safety_stages;
  std::size_t safety_limit = 0;

  /// Fast-path dispatch for route_batch, with its kernel parameters.
  FastPathKind fast_path = FastPathKind::kNone;
  std::size_t fp_side = 0;            ///< Revsort kernel: side = sqrt(n)
  std::vector<std::uint32_t> fp_rev;  ///< Revsort kernel: bit-reversal table
  std::size_t fp_r = 0, fp_s = 0;     ///< Columnsort kernel shape

  /// Dead chips applied to this plan (deduplicated) and the resulting loss
  /// bound: at most one chip width per dead chip and setup.
  std::vector<ChipFault> faults;
  std::size_t max_fault_loss = 0;

  // --- structural tallies (satellite: chip_planner reads these) ----------

  /// Chips a message passes through: one per stage.
  std::size_t chip_passes() const noexcept { return stages.size(); }
  /// Hyperconcentrator chips plus the barrel shifters on shifter stages.
  std::size_t chip_count() const noexcept;
  /// Barrel shifters (one per chip on every has_shifter stage).
  std::size_t shifter_count() const noexcept;
  /// Boards: one per hyperconcentrator chip (shifters share boards).
  std::size_t board_count() const noexcept;
  /// Distinct (width, has_shifter) board designs.
  std::size_t board_types() const noexcept;
  /// Max data+control pins on any chip: 2w, plus ceil(lg w) hardwired shift
  /// bits on shifter stages.
  std::size_t max_pins_per_chip() const noexcept;
  /// Interstack connectors summed over the links.
  std::size_t connector_count() const noexcept;
  /// Figure 3/6 layout area: one n-wire crossbar region per inter-stage
  /// link plus every chip's w^2 silicon.
  std::size_t area_2d() const noexcept;
  /// Figure 4/7 packaging volume: board area (doubled on shifter-carrying
  /// boards) per chip plus the connector volumes.
  std::size_t volume_3d() const noexcept;

  /// Structural fingerprint (FNV-1a over shape, wiring, readout, faults):
  /// the golden-digest tests pin these per family and shape.
  std::uint64_t digest() const;

  /// Multi-line human-readable dump: one line per stage plus the tallies.
  std::string summary() const;

  /// Structural sanity: in_src ranges, readout range, dead-flag sizes.
  /// Throws ContractViolation on malformed plans.
  void validate() const;
};

/// Family-agnostic fault rewrite: mark the given chips dead in `plan`.
/// Coordinates are validated against the plan's stages; duplicates
/// collapse (a chip is either dead or not).  The rewritten plan advertises
/// no nearsorting guarantee (epsilon = n), loses its batch fast path and
/// fully-sorting shortcut, and renames itself "faulty-<name>(...,dead=K)".
void apply_chip_faults(SwitchPlan& plan, std::vector<ChipFault> faults);

}  // namespace pcs::plan
