#include "runtime/config.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "runtime/metrics.hpp"
#include "switch/make_switch.hpp"
#include "util/assert.hpp"

namespace pcs::rt {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::size_t parse_size(const std::string& key, const std::string& v) {
  std::size_t pos = 0;
  unsigned long long out = 0;
  try {
    out = std::stoull(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  PCS_REQUIRE(pos == v.size() && !v.empty(), "config key " << key
                                                           << " expects an integer, got '"
                                                           << v << "'");
  return static_cast<std::size_t>(out);
}

double parse_double(const std::string& key, const std::string& v) {
  std::size_t pos = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  PCS_REQUIRE(pos == v.size() && !v.empty(),
              "config key " << key << " expects a number, got '" << v << "'");
  return out;
}

bool parse_bool(const std::string& key, const std::string& v) {
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  PCS_REQUIRE(false, "config key " << key << " expects a boolean, got '" << v << "'");
  return false;  // unreachable
}

void set_key(RuntimeConfig& cfg, const std::string& key, const std::string& value) {
  if (key == "family") {
    cfg.family = value;
  } else if (key == "n") {
    cfg.n = parse_size(key, value);
  } else if (key == "m") {
    cfg.m = parse_size(key, value);
  } else if (key == "beta") {
    cfg.beta = parse_double(key, value);
  } else if (key == "arrival") {
    cfg.arrival = value;
  } else if (key == "arrival_p") {
    cfg.arrival_p = parse_double(key, value);
  } else if (key == "pattern") {
    cfg.pattern = value;
  } else if (key == "injection") {
    cfg.injection = value;
  } else if (key == "hotspot_fraction") {
    cfg.hotspot_fraction = parse_double(key, value);
  } else if (key == "record") {
    cfg.record = value;
  } else if (key == "replay") {
    cfg.replay = value;
  } else if (key == "loads") {
    cfg.loads.clear();
    for (const std::string& item : split_csv(value)) {
      cfg.loads.push_back(parse_double(key, item));
    }
  } else if (key == "queue_depth") {
    cfg.queue_depth = parse_size(key, value);
  } else if (key == "policy") {
    cfg.policy = value;
  } else if (key == "seed") {
    cfg.seed = static_cast<std::uint64_t>(parse_size(key, value));
  } else if (key == "lanes") {
    cfg.lanes = parse_size(key, value);
  } else if (key == "warmup_epochs") {
    cfg.warmup_epochs = parse_size(key, value);
  } else if (key == "measure_epochs") {
    cfg.measure_epochs = parse_size(key, value);
  } else if (key == "drain_epochs_max") {
    cfg.drain_epochs_max = parse_size(key, value);
  } else if (key == "faults") {
    cfg.faults.clear();
    for (const std::string& item : split_csv(value)) {
      const auto colon = item.find(':');
      PCS_REQUIRE(colon != std::string::npos,
                  "config key faults expects stage:chip entries, got '" << item
                  << "'");
      cfg.faults.push_back(
          plan::ChipFault{parse_size(key, item.substr(0, colon)),
                          parse_size(key, item.substr(colon + 1))});
    }
  } else if (key == "check_invariants") {
    cfg.check_invariants = parse_bool(key, value);
  } else if (key == "out") {
    cfg.out = value;
  } else if (key == "threads") {
    cfg.threads = parse_size(key, value);
  } else if (key == "exec") {
    cfg.exec = value;
  } else if (key == "trace") {
    cfg.trace = value;
  } else if (key == "trace_clock") {
    cfg.trace_clock = value;
  } else if (key == "topology") {
    cfg.topology = value;
  } else if (key == "hops") {
    cfg.fabric_hops = parse_size(key, value);
  } else if (key == "radix") {
    cfg.fabric_radix = parse_size(key, value);
  } else if (key == "alloc") {
    cfg.fabric_alloc = value;
  } else if (key == "credits") {
    cfg.fabric_credits = parse_size(key, value);
  } else if (key == "route") {
    cfg.fabric_route = value;
  } else if (key == "deflect_max") {
    cfg.fabric_deflect_max = parse_size(key, value);
  } else if (key == "epochs_in_flight") {
    cfg.fabric_epochs_in_flight = parse_size(key, value);
  } else if (key == "fault_hop") {
    cfg.fault_hop = parse_size(key, value);
  } else if (key == "socket") {
    cfg.serve_socket = value;
  } else if (key == "max_inflight") {
    cfg.serve_max_inflight = parse_size(key, value);
  } else if (key == "tenant_quota") {
    cfg.serve_tenant_quota = parse_size(key, value);
  } else if (key == "cache_mb") {
    cfg.serve_cache_mb = parse_size(key, value);
  } else {
    PCS_REQUIRE(false, "unknown config key '" << key << "'");
  }
}

void validate(const RuntimeConfig& cfg) {
  PCS_REQUIRE(!split_csv(cfg.family).empty(), "family list is empty");
  for (const std::string& f : split_csv(cfg.family)) {
    PCS_REQUIRE(f == "revsort" || f == "columnsort" || f == "hyper",
                "unknown switch family '" << f << "'");
    PCS_REQUIRE(cfg.faults.empty() || f != "hyper",
                "faults require a plan-compiled family; 'hyper' has no plan");
  }
  PCS_REQUIRE(cfg.arrival == "bernoulli" || cfg.arrival == "exact" ||
                  cfg.arrival == "bursty" || cfg.arrival == "hotspot",
              "unknown arrival process '" << cfg.arrival << "'");
  PCS_REQUIRE(cfg.pattern.empty() || traffic::known_pattern(cfg.pattern),
              "unknown traffic pattern '" << cfg.pattern << "'");
  PCS_REQUIRE(cfg.injection.empty() || traffic::known_injection(cfg.injection),
              "unknown injection process '" << cfg.injection << "'");
  PCS_REQUIRE(cfg.hotspot_fraction > 0.0 && cfg.hotspot_fraction <= 1.0,
              "config key hotspot_fraction must be in (0,1], got "
                  << cfg.hotspot_fraction);
  PCS_REQUIRE(cfg.record.empty() || cfg.replay.empty(),
              "record and replay are mutually exclusive");
  policy_from_string(cfg.policy);  // throws on unknown
  PCS_REQUIRE(cfg.n >= 1 && cfg.m >= 1 && cfg.m <= cfg.n,
              "switch shape: n=" << cfg.n << " m=" << cfg.m);
  PCS_REQUIRE(cfg.arrival_p >= 0.0 && cfg.arrival_p <= 1.0,
              "arrival_p out of [0,1]: " << cfg.arrival_p);
  for (double load : cfg.loads) {
    PCS_REQUIRE(load >= 0.0 && load <= 1.0, "load out of [0,1]: " << load);
  }
  PCS_REQUIRE(cfg.queue_depth >= 1, "queue_depth must be >= 1");
  PCS_REQUIRE(cfg.lanes >= 1, "lanes must be >= 1");
  PCS_REQUIRE(cfg.measure_epochs >= 1, "measure_epochs must be >= 1");
  PCS_REQUIRE(cfg.trace_clock == "tsc" || cfg.trace_clock == "logical",
              "trace_clock must be 'tsc' or 'logical', got '" << cfg.trace_clock
                                                              << "'");
  PCS_REQUIRE(cfg.exec == "fused" || cfg.exec == "legacy",
              "exec must be 'fused' or 'legacy', got '" << cfg.exec << "'");
  PCS_REQUIRE(cfg.topology.empty() || cfg.topology == "single" ||
                  cfg.topology == "omega" || cfg.topology == "butterfly" ||
                  cfg.topology == "fattree",
              "topology must be single|omega|butterfly|fattree, got '"
                  << cfg.topology << "'");
  PCS_REQUIRE(cfg.fabric_alloc == "rr" || cfg.fabric_alloc == "islip",
              "alloc must be 'rr' or 'islip', got '" << cfg.fabric_alloc << "'");
  PCS_REQUIRE(cfg.fabric_route == "deterministic" ||
                  cfg.fabric_route == "adaptive",
              "route must be 'deterministic' or 'adaptive', got '"
                  << cfg.fabric_route << "'");
  PCS_REQUIRE(cfg.fabric_deflect_max == 0 || cfg.fabric_route == "adaptive",
              "deflect_max=" << cfg.fabric_deflect_max
                             << " needs route=adaptive");
  PCS_REQUIRE(cfg.fabric_epochs_in_flight <= 4096,
              "epochs_in_flight must be <= 4096, got "
                  << cfg.fabric_epochs_in_flight);
  PCS_REQUIRE(!cfg.serve_socket.empty(), "socket path must be non-empty");
  PCS_REQUIRE(cfg.serve_max_inflight >= 1, "max_inflight must be >= 1");
  PCS_REQUIRE(cfg.serve_tenant_quota >= 1, "tenant_quota must be >= 1");
  if (!cfg.topology.empty()) {
    PCS_REQUIRE(cfg.fabric_hops >= 1, "hops must be >= 1");
    PCS_REQUIRE(cfg.fabric_radix >= 1, "radix must be >= 1");
    PCS_REQUIRE(cfg.fabric_credits >= 1, "credits must be >= 1");
    for (const std::string& f : split_csv(cfg.family)) {
      PCS_REQUIRE(f != "hyper",
                  "fabric campaigns need a plan-compiled family; 'hyper' has "
                  "no plan");
    }
  }
}

}  // namespace

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

RuntimeConfig parse_config_text(const std::string& text) {
  RuntimeConfig cfg;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    PCS_REQUIRE(eq != std::string::npos,
                "config line " << lineno << " is not key=value: '" << line << "'");
    const std::string key = trim(line.substr(0, eq));
    // A key with embedded whitespace is always a typo ("queue depth = 4");
    // name the offending line instead of falling through to the generic
    // unknown-key error.  Duplicate keys are allowed and take the LAST
    // occurrence, matching CLI override semantics (set_key overwrites).
    PCS_REQUIRE(key.find_first_of(" \t") == std::string::npos,
                "config line " << lineno << ": key '" << key
                               << "' contains whitespace");
    set_key(cfg, key, trim(line.substr(eq + 1)));
  }
  validate(cfg);
  return cfg;
}

RuntimeConfig load_config_file(const std::string& path) {
  std::ifstream in(path);
  PCS_REQUIRE(in.good(), "cannot read config file '" << path << "'");
  std::ostringstream body;
  body << in.rdbuf();
  return parse_config_text(body.str());
}

void apply_override(RuntimeConfig& cfg, const std::string& assignment) {
  const auto eq = assignment.find('=');
  PCS_REQUIRE(eq != std::string::npos,
              "override is not key=value: '" << assignment << "'");
  const std::string key = trim(assignment.substr(0, eq));
  PCS_REQUIRE(key.find_first_of(" \t") == std::string::npos,
              "override key '" << key << "' contains whitespace (in '"
                               << assignment << "')");
  set_key(cfg, key, trim(assignment.substr(eq + 1)));
  validate(cfg);
}

std::string config_to_json(const RuntimeConfig& cfg, std::size_t indent) {
  const std::string pad(indent, ' ');
  std::ostringstream os;
  os << pad << "{\n";
  os << pad << "  \"alloc\": " << json_escape(cfg.fabric_alloc) << ",\n";
  os << pad << "  \"arrival\": " << json_escape(cfg.arrival) << ",\n";
  os << pad << "  \"arrival_p\": " << format_json_double(cfg.arrival_p) << ",\n";
  os << pad << "  \"beta\": " << format_json_double(cfg.beta) << ",\n";
  os << pad << "  \"cache_mb\": " << cfg.serve_cache_mb << ",\n";
  os << pad << "  \"check_invariants\": " << (cfg.check_invariants ? "true" : "false")
     << ",\n";
  os << pad << "  \"credits\": " << cfg.fabric_credits << ",\n";
  os << pad << "  \"deflect_max\": " << cfg.fabric_deflect_max << ",\n";
  os << pad << "  \"drain_epochs_max\": " << cfg.drain_epochs_max << ",\n";
  os << pad << "  \"epochs_in_flight\": " << cfg.fabric_epochs_in_flight
     << ",\n";
  os << pad << "  \"exec\": " << json_escape(cfg.exec) << ",\n";
  os << pad << "  \"family\": " << json_escape(cfg.family) << ",\n";
  os << pad << "  \"fault_hop\": " << cfg.fault_hop << ",\n";
  os << pad << "  \"faults\": [";
  for (std::size_t i = 0; i < cfg.faults.size(); ++i) {
    if (i) os << ", ";
    os << "[" << cfg.faults[i].stage << ", " << cfg.faults[i].chip << "]";
  }
  os << "],\n";
  os << pad << "  \"hops\": " << cfg.fabric_hops << ",\n";
  os << pad << "  \"hotspot_fraction\": " << format_json_double(cfg.hotspot_fraction)
     << ",\n";
  os << pad << "  \"injection\": " << json_escape(cfg.injection) << ",\n";
  os << pad << "  \"lanes\": " << cfg.lanes << ",\n";
  os << pad << "  \"loads\": [";
  for (std::size_t i = 0; i < cfg.loads.size(); ++i) {
    if (i) os << ", ";
    os << format_json_double(cfg.loads[i]);
  }
  os << "],\n";
  os << pad << "  \"m\": " << cfg.m << ",\n";
  os << pad << "  \"max_inflight\": " << cfg.serve_max_inflight << ",\n";
  os << pad << "  \"measure_epochs\": " << cfg.measure_epochs << ",\n";
  os << pad << "  \"n\": " << cfg.n << ",\n";
  os << pad << "  \"pattern\": " << json_escape(cfg.pattern) << ",\n";
  os << pad << "  \"policy\": " << json_escape(cfg.policy) << ",\n";
  os << pad << "  \"queue_depth\": " << cfg.queue_depth << ",\n";
  os << pad << "  \"radix\": " << cfg.fabric_radix << ",\n";
  os << pad << "  \"record\": " << json_escape(cfg.record) << ",\n";
  os << pad << "  \"replay\": " << json_escape(cfg.replay) << ",\n";
  os << pad << "  \"route\": " << json_escape(cfg.fabric_route) << ",\n";
  os << pad << "  \"seed\": " << cfg.seed << ",\n";
  os << pad << "  \"socket\": " << json_escape(cfg.serve_socket) << ",\n";
  os << pad << "  \"tenant_quota\": " << cfg.serve_tenant_quota << ",\n";
  os << pad << "  \"threads\": " << cfg.threads << ",\n";
  os << pad << "  \"topology\": " << json_escape(cfg.topology) << ",\n";
  os << pad << "  \"trace\": " << json_escape(cfg.trace) << ",\n";
  os << pad << "  \"trace_clock\": " << json_escape(cfg.trace_clock) << ",\n";
  os << pad << "  \"warmup_epochs\": " << cfg.warmup_epochs << "\n";
  os << pad << "}";
  return os.str();
}

msg::CongestionPolicy policy_from_string(const std::string& s) {
  if (s == "drop") return msg::CongestionPolicy::kDrop;
  if (s == "buffer-retry") return msg::CongestionPolicy::kBufferRetry;
  if (s == "misroute-retry") return msg::CongestionPolicy::kMisrouteRetry;
  PCS_REQUIRE(false, "unknown congestion policy '" << s << "'");
  return msg::CongestionPolicy::kDrop;  // unreachable
}

std::unique_ptr<sw::ConcentratorSwitch> make_switch(const std::string& family,
                                                    const RuntimeConfig& cfg) {
  // Thin adapter onto the unified factory: the per-family dispatch (and the
  // fault rewrite behind PlanSwitch) lives in pcs::make_switch now.
  SwitchSpec spec;
  spec.family = family;
  spec.n = cfg.n;
  spec.m = cfg.m;
  spec.beta = cfg.beta;
  spec.faults = cfg.faults;
  return pcs::make_switch(spec);
}

traffic::TrafficSpec traffic_spec_from(const RuntimeConfig& cfg,
                                       std::size_t width) {
  traffic::TrafficSpec spec;
  spec.width = width;
  spec.intensity = cfg.arrival_p;
  spec.hotspot_fraction = cfg.hotspot_fraction;
  spec.search_seed = cfg.seed;
  // Legacy arrival derivation first (bit-identical to the old generators)...
  if (cfg.arrival == "bernoulli") {
    spec.pattern = "uniform";
    spec.injection = "bernoulli";
  } else if (cfg.arrival == "exact") {
    spec.pattern = "uniform";
    spec.injection = "exact";
  } else if (cfg.arrival == "bursty") {
    spec.pattern = "uniform";
    spec.injection = "onoff";
  } else if (cfg.arrival == "hotspot") {
    spec.pattern = "hotspot";
    spec.injection = "bernoulli";
  } else {
    PCS_REQUIRE(false, "unknown arrival process '" << cfg.arrival << "'");
  }
  // ...then explicit pattern=/injection= keys override either axis.
  if (!cfg.pattern.empty()) spec.pattern = cfg.pattern;
  if (!cfg.injection.empty()) spec.injection = cfg.injection;
  return spec;
}

std::unique_ptr<traffic::TrafficSource> make_traffic(
    const RuntimeConfig& cfg, std::size_t width,
    const sw::ConcentratorSwitch* search_switch) {
  traffic::TrafficSpec spec = traffic_spec_from(cfg, width);
  spec.search_switch = search_switch;
  return traffic::make_source(spec);
}

}  // namespace pcs::rt
