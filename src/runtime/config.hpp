// Config-driven construction for the fabric runtime: a small key=value file
// format (one `key = value` per line, `#` comments) describing the switch
// family, shape, traffic, queueing discipline, and campaign phases, plus
// factories that turn a parsed config into the concrete switch and traffic
// generators.  pcs_serve (examples/pcs_serve.cpp) is the CLI face; tests
// drive the same parser so a config that passes them runs everywhere.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "message/congestion.hpp"
#include "plan/switch_plan.hpp"
#include "switch/concentrator.hpp"
#include "traffic/factory.hpp"

namespace pcs::rt {

struct RuntimeConfig {
  /// Switch family: comma-separated list of revsort | columnsort | hyper.
  std::string family = "revsort";
  std::size_t n = 256;   ///< input wires
  std::size_t m = 128;   ///< output wires
  double beta = 0.75;    ///< Columnsort shape parameter (Table 1 continuum)

  /// Dead chips to inject: `faults = stage:chip,stage:chip,...`.  Applied
  /// to the compiled plan via plan::apply_chip_faults, so it works for any
  /// plan-compiled family (not "hyper").
  std::vector<plan::ChipFault> faults;

  /// Arrival process: bernoulli | exact | bursty | hotspot.  All derive
  /// their intensity from arrival_p (see make_traffic); exact presents
  /// round(arrival_p * n) messages per epoch.
  std::string arrival = "bernoulli";
  double arrival_p = 0.25;

  /// Composable traffic model (src/traffic).  When empty, both keys derive
  /// from `arrival` (bernoulli/exact/bursty -> uniform pattern with the
  /// matching process, hotspot -> hotspot pattern x bernoulli), so legacy
  /// configs keep their bit-identical streams.  Explicit values override:
  /// pattern = uniform|transpose|bitcomp|bitrev|shuffle|tornado|hotspot|
  /// adversarial|worstcase, injection = bernoulli|onoff|exact.
  std::string pattern;
  std::string injection;
  /// Hot block fraction for the hotspot pattern, in (0,1].
  double hotspot_fraction = 0.125;

  /// Offered-stream trace capture/replay (src/traffic/trace.hpp).  `record`
  /// writes the campaign's offered stream to this path (single-campaign
  /// configs only); `replay` substitutes a recorded stream for the
  /// generator, reproducing it byte for byte.
  std::string record;
  std::string replay;

  /// Offered-load sweep: arrival_p values to campaign over; when empty the
  /// single point `arrival_p` is run.
  std::vector<double> loads;

  std::size_t queue_depth = 4;  ///< per-input injection queue bound
  std::string policy = "buffer-retry";  ///< drop | buffer-retry | misroute-retry
  std::uint64_t seed = 1;
  std::size_t lanes = 4;  ///< independent closed-loop replicas batched per epoch

  std::size_t warmup_epochs = 32;
  std::size_t measure_epochs = 256;
  std::size_t drain_epochs_max = 1024;

  bool check_invariants = false;  ///< run core/invariants on every setup
  std::string out = "runtime_metrics.json";

  /// Clamp on worker threads for every parallel dispatch (see
  /// pcs::set_max_parallelism).  0 = no clamp; 1 = deterministic order.
  std::size_t threads = 0;
  /// Plan-executor engine: "fused" (analysis-driven gather fusion, the
  /// default) or "legacy" (per-stage materialization; the differential
  /// oracle).  Applied process-wide via plan::set_default_exec_mode before
  /// any switch is built, so serving campaigns can A/B the two engines.
  std::string exec = "fused";
  /// When non-empty, trace every campaign and write one Chrome trace-event
  /// JSON (Perfetto-loadable) to this path; the per-campaign profile rollup
  /// appears in the metrics document either way.
  std::string trace;
  /// Trace clock: "tsc" (wall-calibrated ticks) or "logical" (deterministic
  /// sequence numbers; byte-identical traces with threads = 1).
  std::string trace_clock = "tsc";

  // --- multi-hop fabric campaigns (src/fabric) ---------------------------
  // When `topology` is non-empty, pcs_serve composes `hops` stages of
  // plan-compiled switches of the configured family/shape into that
  // topology and runs the closed-loop fabric campaign instead of the
  // single-switch one.  See fabric/fabric_config.hpp for the translation.

  /// "" (single-switch campaigns) | single | omega | butterfly | fattree.
  std::string topology;
  std::size_t fabric_hops = 3;    ///< switch stages a message traverses
  std::size_t fabric_radix = 2;   ///< links per node (the MIN digit base)
  std::string fabric_alloc = "rr";     ///< VOQ allocator: rr | islip
  std::size_t fabric_credits = 8;      ///< per-channel credit pool depth
  /// Pool-entry link choice: deterministic | adaptive (route= key).
  std::string fabric_route = "deterministic";
  /// Adaptive routing's per-message misroute budget (deflect_max= key);
  /// requires route=adaptive when nonzero.
  std::size_t fabric_deflect_max = 0;
  /// Pipelined fabric scheduler depth (epochs_in_flight= key).  0 defers to
  /// PCS_FABRIC_EPOCHS_IN_FLIGHT (else 1); campaign counters are identical
  /// for every value, 1 is the bit-identical serial schedule.
  std::size_t fabric_epochs_in_flight = 0;
  /// Hop whose plan receives `faults` in fabric campaigns (single-switch
  /// campaigns apply them to the one switch regardless).
  std::size_t fault_hop = 0;

  // --- serving daemon (src/serve, examples/pcs_served) -------------------
  // Read by pcs_served; the batch pcs_serve CLI ignores them.  All four hot
  // reload on SIGHUP through the validate-then-swap path.

  /// Unix-domain socket path the daemon listens on.
  std::string serve_socket = "pcs_served.sock";
  /// Daemon-wide cap on concurrently running campaigns.
  std::size_t serve_max_inflight = 8;
  /// Per-tenant cap on concurrently running campaigns.
  std::size_t serve_tenant_quota = 4;
  /// Plan-cache byte budget in MiB (estimated footprint; 0 disables
  /// caching so every request compiles cold).
  std::size_t serve_cache_mb = 64;
};

/// Parse a whole config file body.  Unknown keys, malformed values, keys
/// with embedded whitespace, and out-of-range settings throw
/// pcs::ContractViolation naming the line.  Duplicate keys take the LAST
/// occurrence -- the same rule CLI overrides follow, so "file then
/// overrides" and "file with a repeated key" agree.
RuntimeConfig parse_config_text(const std::string& text);

/// parse_config_text over a file's contents; throws if unreadable.
RuntimeConfig load_config_file(const std::string& path);

/// Apply one `key=value` override (the CLI's trailing arguments).
void apply_override(RuntimeConfig& cfg, const std::string& assignment);

/// The parsed config echoed as a JSON object (sorted keys, deterministic),
/// every line prefixed by `indent` spaces, for embedding in reports.
std::string config_to_json(const RuntimeConfig& cfg, std::size_t indent = 0);

/// Split a comma-separated list, trimming blanks; "a,b" -> {"a", "b"}.
std::vector<std::string> split_csv(const std::string& s);

/// Congestion policy from its policy_name() slug; throws on unknown names.
msg::CongestionPolicy policy_from_string(const std::string& s);

/// Build one switch of `family` (a single name, not a list) with the
/// config's shape: revsort -> RevsortSwitch(n, m), columnsort ->
/// ColumnsortSwitch::from_beta(n, beta, m), hyper -> HyperSwitch(n, m).
/// With cfg.faults set, revsort/columnsort compile their plan, apply the
/// faults, and return the fault-rewritten plan behind plan::PlanSwitch.
std::unique_ptr<sw::ConcentratorSwitch> make_switch(const std::string& family,
                                                    const RuntimeConfig& cfg);

/// Translate the config's traffic keys into a traffic::TrafficSpec over
/// `width` wires.  With pattern=/injection= empty the spec derives from
/// `arrival` exactly as the legacy generators did: bursty uses a two-state
/// Markov chain with p_on = min(1, 3p), p_off = p/3 and 0.05 transition
/// probabilities; hotspot concentrates on floor(width * hotspot_fraction)
/// wires (`arrival_p` is the nominal *per-input* intensity, front-loaded
/// onto the hot block at min(1, 4p) with the cold wires at p/2).
traffic::TrafficSpec traffic_spec_from(const RuntimeConfig& cfg,
                                       std::size_t width);

/// Build a traffic source for the config over `width` wires via the
/// src/traffic factory.  Each lane gets its own source so on-off state
/// never couples lanes.  `search_switch` is required only when the config
/// selects pattern=worstcase (the bound-stress search needs a switch).
std::unique_ptr<traffic::TrafficSource> make_traffic(
    const RuntimeConfig& cfg, std::size_t width,
    const sw::ConcentratorSwitch* search_switch = nullptr);

}  // namespace pcs::rt
