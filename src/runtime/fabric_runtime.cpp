#include "runtime/fabric_runtime.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "core/invariants.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::rt {

namespace {

// SplitMix64 step: decorrelated per-lane seeds from the master seed.
std::uint64_t split_seed(std::uint64_t master, std::uint64_t lane) {
  std::uint64_t z = master + (lane + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct QueuedMsg {
  std::uint64_t born = 0;  ///< epoch the message entered its queue
  bool measured = false;   ///< born inside the measurement window
};

struct Lane {
  std::vector<std::deque<QueuedMsg>> queues;
  std::unique_ptr<traffic::TrafficSource> traffic;
  Rng rng;

  explicit Lane(std::size_t n, std::unique_ptr<traffic::TrafficSource> src,
                std::uint64_t seed)
      : queues(n), traffic(std::move(src)), rng(seed) {}

  std::size_t backlog() const {
    std::size_t total = 0;
    for (const auto& q : queues) total += q.size();
    return total;
  }
};

}  // namespace

FabricRuntime::FabricRuntime(const sw::ConcentratorSwitch& sw, RuntimeOptions opts,
                             TrafficFactory traffic_factory)
    : sw_(sw), opts_(opts), traffic_factory_(std::move(traffic_factory)) {
  PCS_REQUIRE(opts_.queue_depth >= 1, "queue_depth must be >= 1");
  PCS_REQUIRE(opts_.lanes >= 1, "lanes must be >= 1");
  PCS_REQUIRE(opts_.measure_epochs >= 1, "measure_epochs must be >= 1");
  PCS_REQUIRE(static_cast<bool>(traffic_factory_), "traffic factory is empty");
}

RuntimeReport FabricRuntime::run(MetricsRegistry& metrics) {
  const std::size_t n = sw_.inputs();

  std::vector<Lane> lanes;
  lanes.reserve(opts_.lanes);
  for (std::size_t l = 0; l < opts_.lanes; ++l) {
    auto gen = traffic_factory_(l);
    PCS_REQUIRE(gen != nullptr && gen->width() == n,
                "traffic generator for lane " << l << " has width "
                                              << (gen ? gen->width() : 0)
                                              << ", switch has " << n << " inputs");
    lanes.emplace_back(n, std::move(gen), split_seed(opts_.seed, l));
  }

  Counter& offered = metrics.counter("offered");
  Counter& delivered = metrics.counter("delivered");
  Counter& dropped = metrics.counter("dropped");
  Counter& misroute_overflow = metrics.counter("dropped.misroute_overflow");
  Counter& rejected = metrics.counter("rejected_queue_full");
  Counter& retries = metrics.counter("retries");
  Counter& total_offered = metrics.counter("total.offered");
  Counter& total_delivered = metrics.counter("total.delivered");
  Counter& total_dropped = metrics.counter("total.dropped");
  Counter& total_rejected = metrics.counter("total.rejected_queue_full");
  Counter& dispatches = metrics.counter("route_batch_dispatches");
  Histogram& latency = metrics.histogram("latency_epochs");
  Histogram& backlog_hist = metrics.histogram("backlog");
  Histogram& presented_hist = metrics.histogram("presented_k");

  const std::size_t measure_begin = opts_.warmup_epochs;
  const std::size_t measure_end = opts_.warmup_epochs + opts_.measure_epochs;

  RuntimeReport report;
  std::vector<BitVec> patterns(opts_.lanes, BitVec(n));
  std::uint64_t epoch = 0;

  // One iteration = one epoch; loop covers warmup, measurement, and drain.
  while (true) {
    const bool in_measure = epoch >= measure_begin && epoch < measure_end;
    const bool in_drain = epoch >= measure_end;

    if (in_drain) {
      bool all_empty = true;
      for (const Lane& lane : lanes) {
        if (lane.backlog() != 0) {
          all_empty = false;
          break;
        }
      }
      if (all_empty) {
        report.drained = true;
        break;
      }
      if (epoch - measure_end >= opts_.drain_epochs_max) break;  // saturated
      // Count the drain epoch at the moment it commits to executing: after
      // BOTH break checks, before the epoch span opens.  Whichever way the
      // drain ends, drain_epochs_used == drain epochs that dispatched a
      // route_batch == the `epochs.drain` counter == the trace's epoch-span
      // count minus warmup and measurement (the saturated-campaign
      // regression tests pin all three identities).
      ++report.drain_epochs_used;
    }

    // The epoch span opens after the drain-break checks, so the span count
    // equals route_batch_dispatches exactly (the trace checker relies on it).
    obs::SpanGuard epoch_span("runtime.epoch", obs::cat::kRuntime);
    epoch_span.arg("epoch", epoch);

    // Admission: fresh arrivals join their input's queue unless it is full
    // (backpressure: the arrival is rejected at the door, never offered).
    if (!in_drain) {
      obs::SpanGuard inject_span("runtime.inject", obs::cat::kRuntime);
      std::uint64_t stalls = 0;
      for (Lane& lane : lanes) {
        const BitVec fresh = lane.traffic->next_valid(lane.rng);
        for (std::size_t i = 0; i < n; ++i) {
          if (!fresh.get(i)) continue;
          if (lane.queues[i].size() < opts_.queue_depth) {
            lane.queues[i].push_back(QueuedMsg{epoch, in_measure});
            total_offered.add();
            if (in_measure) offered.add();
          } else {
            total_rejected.add();
            if (in_measure) rejected.add();
            ++stalls;
          }
        }
      }
      if (stalls != 0) PCS_TRACE_COUNTER("runtime.backpressure_stalls", stalls);
    }

    // One setup per lane: the heads of the non-empty queues.
    {
      obs::SpanGuard present_span("runtime.present", obs::cat::kRuntime);
      for (std::size_t l = 0; l < opts_.lanes; ++l) {
        BitVec& valid = patterns[l];
        std::size_t k = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const bool occupied = !lanes[l].queues[i].empty();
          valid.set(i, occupied);
          k += occupied ? 1 : 0;
        }
        if (in_measure) {
          presented_hist.record(k);
          backlog_hist.record(lanes[l].backlog());
        }
      }
    }

    // The epoch's single thread-pool dispatch: all lanes at once.
    std::vector<sw::SwitchRouting> routings;
    {
      obs::SpanGuard route_span("runtime.route", obs::cat::kRuntime);
      route_span.arg("lanes", opts_.lanes);
      routings = sw_.route_batch(patterns);
      dispatches.add();
    }

    obs::SpanGuard resolve_span("runtime.resolve", obs::cat::kRuntime);
    for (std::size_t l = 0; l < opts_.lanes; ++l) {
      Lane& lane = lanes[l];
      const sw::SwitchRouting& routing = routings[l];

      if (opts_.check_invariants) {
        core::InvariantReport rep;
        core::check_partial_injection(sw_, patterns[l], routing, rep);
        core::check_concentration(sw_, patterns[l], routing, rep);
        core::check_epsilon_bound(sw_, patterns[l],
                                  sw_.nearsorted_valid_bits(patterns[l]), rep);
        PCS_REQUIRE(rep.ok(), "epoch " << epoch << " lane " << l << ": "
                                       << rep.to_string());
      }

      std::vector<QueuedMsg> misrouted;  // losers looking for another queue
      for (std::size_t i = 0; i < n; ++i) {
        if (!patterns[l].get(i)) continue;
        if (routing.output_of_input[i] >= 0) {
          const QueuedMsg head = lane.queues[i].front();
          lane.queues[i].pop_front();
          total_delivered.add();
          if (head.measured) {
            delivered.add();
            latency.record(epoch - head.born);
          }
          continue;
        }
        switch (opts_.policy) {
          case msg::CongestionPolicy::kDrop: {
            const QueuedMsg head = lane.queues[i].front();
            lane.queues[i].pop_front();
            total_dropped.add();
            if (head.measured) dropped.add();
            break;
          }
          case msg::CongestionPolicy::kBufferRetry:
            // Loser keeps its queue slot and is re-presented next epoch.
            // Retries are attributed by event time (the epoch the retry
            // happens in), not the message's birth window: under sustained
            // overload the losing heads are typically warmup-born.
            if (in_measure) retries.add();
            break;
          case msg::CongestionPolicy::kMisrouteRetry: {
            misrouted.push_back(lane.queues[i].front());
            lane.queues[i].pop_front();
            break;
          }
        }
      }

      // Misrouted losers re-enter on a random input with queue space; with
      // every queue full the re-injection wire would stall forever, so the
      // message is dropped explicitly (and accounted).
      for (const QueuedMsg& m : misrouted) {
        const std::size_t start = static_cast<std::size_t>(lane.rng.below(n));
        bool placed = false;
        for (std::size_t off = 0; off < n && !placed; ++off) {
          std::size_t w = (start + off) % n;
          if (lane.queues[w].size() < opts_.queue_depth) {
            lane.queues[w].push_back(m);
            placed = true;
          }
        }
        if (placed) {
          if (in_measure) retries.add();
        } else {
          total_dropped.add();
          if (m.measured) {
            dropped.add();
            misroute_overflow.add();
          }
        }
      }
    }

    ++epoch;
  }
  report.saturated = !report.drained;
  if (report.saturated) PCS_TRACE_COUNTER("runtime.saturation", 1);

  std::size_t residual = 0;
  std::size_t residual_measured = 0;
  for (const Lane& lane : lanes) {
    for (const auto& q : lane.queues) {
      residual += q.size();
      for (const QueuedMsg& m : q) residual_measured += m.measured ? 1 : 0;
    }
  }
  report.residual_backlog = residual;

  // The residual backlog is a first-class term of the conservation identity,
  // so it is exported as counters (not just report fields): a saturated
  // campaign's metrics document must balance on its own, without the reader
  // reaching for the RuntimeReport.  `total.residual` covers every queued
  // message at exit; `residual` only those born in the measurement window.
  metrics.counter("total.residual").add(residual);
  metrics.counter("residual").add(residual_measured);

  // Conservation: every accepted message is delivered, explicitly dropped,
  // or still sitting in a queue -- for the whole campaign and for the
  // measurement window alone.  Both identities hold in the drained AND the
  // saturated exit: residual is exactly the backlog left at whichever exit
  // was taken.
  PCS_REQUIRE(total_offered.value() ==
                  total_delivered.value() + total_dropped.value() + residual,
              "conservation: offered=" << total_offered.value() << " delivered="
                                       << total_delivered.value() << " dropped="
                                       << total_dropped.value() << " residual="
                                       << residual);
  PCS_REQUIRE(offered.value() ==
                  delivered.value() + dropped.value() + residual_measured,
              "measured conservation: offered="
                  << offered.value() << " delivered=" << delivered.value()
                  << " dropped=" << dropped.value() << " residual="
                  << residual_measured);

  metrics.counter("epochs.warmup").add(opts_.warmup_epochs);
  metrics.counter("epochs.measure").add(opts_.measure_epochs);
  metrics.counter("epochs.drain").add(report.drain_epochs_used);

  const double measured_offered = static_cast<double>(offered.value());
  metrics.gauge("delivery_rate")
      .set(measured_offered == 0.0
               ? 1.0
               : static_cast<double>(delivered.value()) / measured_offered);
  metrics.gauge("mean_latency_epochs").set(latency.mean());
  metrics.gauge("throughput_per_epoch")
      .set(static_cast<double>(delivered.value()) /
           static_cast<double>(opts_.measure_epochs));
  metrics.gauge("offered_load")
      .set(measured_offered /
           (static_cast<double>(opts_.lanes) *
            static_cast<double>(opts_.measure_epochs) * static_cast<double>(n)));
  metrics.gauge("backlog.residual").set(static_cast<double>(residual));
  metrics.gauge("saturated").set(report.saturated ? 1.0 : 0.0);

  return report;
}

}  // namespace pcs::rt
