// Closed-loop serving layer around a ConcentratorSwitch: the operational
// counterpart to the one-shot simulators.  Messages arrive into bounded
// per-input injection queues, an admission/overload policy (the Section 1
// congestion disciplines, reused from message/congestion.hpp) decides what
// happens to routing losers, and the campaign runs booksim-style phases:
// warmup (queues fill, nothing recorded) -> measurement (every event
// attributed) -> drain (arrivals stop; either the backlog empties or the
// drain cap trips and the run is declared saturated).
//
// The runtime serves `lanes` independent closed-loop replicas of the same
// switch.  Each epoch, every lane contributes one valid-bit setup (the heads
// of its non-empty queues) and all of them are resolved by a single
// route_batch() call -- one thread-pool dispatch through PR 1's word-parallel
// batch engine per epoch, rather than one route() per replica.  Lanes model
// independent fabric cells behind a load balancer; batching across them is
// what makes a sweep of long campaigns cheap.
//
// Everything is deterministic per seed: lane RNGs are split from the master
// seed, route_batch is bit-identical to route(), and metrics export is
// byte-stable, so two runs of the same config produce identical JSON.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "message/congestion.hpp"
#include "runtime/metrics.hpp"
#include "switch/concentrator.hpp"
#include "traffic/traffic_source.hpp"

namespace pcs::rt {

struct RuntimeOptions {
  std::size_t queue_depth = 4;  ///< per-input injection queue bound (>= 1)
  msg::CongestionPolicy policy = msg::CongestionPolicy::kBufferRetry;
  std::size_t lanes = 4;        ///< independent replicas batched per epoch
  std::uint64_t seed = 1;
  std::size_t warmup_epochs = 32;
  std::size_t measure_epochs = 256;
  std::size_t drain_epochs_max = 1024;  ///< drain cap; exceeding it = saturated
  bool check_invariants = false;  ///< core/invariants on every (setup, routing)
};

struct RuntimeReport {
  bool drained = false;     ///< backlog emptied within drain_epochs_max
  bool saturated = false;   ///< !drained: offered load exceeded service rate
  std::size_t drain_epochs_used = 0;
  std::size_t residual_backlog = 0;  ///< messages still queued at exit
};

class FabricRuntime {
 public:
  /// Per-lane traffic construction; called once per lane at start of run()
  /// so stateful sources (on-off Markov chains) never couple lanes.
  using TrafficFactory =
      std::function<std::unique_ptr<traffic::TrafficSource>(std::size_t lane)>;

  /// `sw` must outlive the runtime.  The factory must produce sources of
  /// width sw.inputs().
  FabricRuntime(const sw::ConcentratorSwitch& sw, RuntimeOptions opts,
                TrafficFactory traffic_factory);

  /// Run one warmup -> measurement -> drain campaign, reporting into
  /// `metrics` (see DESIGN.md section 9 for the schema).  Counters without a
  /// prefix cover messages born in the measurement window (except `retries`,
  /// which counts retry events occurring during measurement); "total.*"
  /// counters cover the whole campaign and satisfy exact conservation:
  ///   total.offered == total.delivered + total.dropped + total.residual
  /// where `total.residual` (== residual_backlog) counts the messages still
  /// queued at exit -- nonzero exactly when the campaign saturated, and
  /// exported as a counter so the metrics document balances on its own.
  /// Throws pcs::ContractViolation if conservation or (when enabled) a
  /// routing invariant fails.
  RuntimeReport run(MetricsRegistry& metrics);

  const sw::ConcentratorSwitch& fabric() const noexcept { return sw_; }
  const RuntimeOptions& options() const noexcept { return opts_; }

 private:
  const sw::ConcentratorSwitch& sw_;
  RuntimeOptions opts_;
  TrafficFactory traffic_factory_;
};

}  // namespace pcs::rt
