#include "runtime/metrics.hpp"

#include <bit>
#include <charconv>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace pcs::rt {

void Histogram::record_n(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  const std::size_t b = value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  if (buckets_.size() <= b) buckets_.resize(b + 1, 0);
  buckets_[b] += weight;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += weight;
  sum_ += value * weight;
}

double Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

std::string format_json_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  PCS_REQUIRE(ec == std::errc{}, "double formatting failed");
  std::string s(buf, ptr);
  // "1" -> "1.0" so the token reads as a real; exponent forms already do.
  if (s.find_first_of(".eEn") == std::string::npos) s += ".0";
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string spaces(std::size_t n) { return std::string(n, ' '); }

template <typename Map, typename Emit>
void emit_map(std::ostringstream& os, const std::string& key, const Map& map,
              std::size_t indent, bool trailing_comma, Emit emit_value) {
  os << spaces(indent + 2) << json_escape(key) << ": {";
  bool first = true;
  for (const auto& [name, metric] : map) {
    os << (first ? "\n" : ",\n") << spaces(indent + 4) << json_escape(name) << ": ";
    emit_value(os, metric, indent + 4);
    first = false;
  }
  if (!first) os << "\n" << spaces(indent + 2);
  os << "}" << (trailing_comma ? "," : "") << "\n";
}

}  // namespace

std::string MetricsRegistry::to_json(std::size_t indent) const {
  std::ostringstream os;
  os << spaces(indent) << "{\n";
  emit_map(os, "counters", counters_, indent, true,
           [](std::ostringstream& o, const Counter& c, std::size_t) { o << c.value(); });
  emit_map(os, "gauges", gauges_, indent, true,
           [](std::ostringstream& o, const Gauge& g, std::size_t) {
             o << format_json_double(g.value());
           });
  emit_map(os, "histograms", histograms_, indent, false,
           [](std::ostringstream& o, const Histogram& h, std::size_t ind) {
             o << "{\"count\": " << h.count() << ", \"sum\": " << h.sum()
               << ", \"min\": " << h.min() << ", \"max\": " << h.max()
               << ", \"mean\": " << format_json_double(h.mean()) << ",\n"
               << spaces(ind + 1) << "\"buckets\": [";
             for (std::size_t b = 0; b < h.buckets().size(); ++b) {
               if (b) o << ", ";
               o << "[" << Histogram::bucket_upper_bound(b) << ", " << h.buckets()[b]
                 << "]";
             }
             o << "]}";
           });
  os << spaces(indent) << "}";
  return os.str();
}

}  // namespace pcs::rt
