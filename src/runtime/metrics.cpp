#include "runtime/metrics.hpp"

#include <bit>
#include <charconv>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace pcs::rt {

void Histogram::record_n(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  const std::size_t b = value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  std::lock_guard<std::mutex> lock(mu_);
  if (buckets_.size() <= b) buckets_.resize(b + 1, 0);
  buckets_[b] += weight;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += weight;
  sum_ += value * weight;
}

void Histogram::merge(const Snapshot& other) {
  if (other.count == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (buckets_.size() < other.buckets.size()) buckets_.resize(other.buckets.size(), 0);
  for (std::size_t b = 0; b < other.buckets.size(); ++b) buckets_[b] += other.buckets[b];
  if (count_ == 0 || other.min < min_) min_ = other.min;
  if (other.max > max_) max_ = other.max;
  count_ += other.count;
  sum_ += other.sum;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.buckets = buckets_;
  s.count = count_;
  s.sum = sum_;
  s.min = count_ == 0 ? 0 : min_;
  s.max = max_;
  return s;
}

std::uint64_t Histogram::count() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::uint64_t Histogram::sum() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

std::uint64_t Histogram::min() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0 : min_;
}

std::uint64_t Histogram::max() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::vector<std::uint64_t> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

std::string format_json_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  PCS_REQUIRE(ec == std::errc{}, "double formatting failed");
  std::string s(buf, ptr);
  // "1" -> "1.0" so the token reads as a real; exponent forms already do.
  if (s.find_first_of(".eEn") == std::string::npos) s += ".0";
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const std::string&, std::uint64_t)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) fn(name, c.value());
}

void MetricsRegistry::for_each_gauge(
    const std::function<void(const std::string&, double)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, g] : gauges_) fn(name, g.value());
}

void MetricsRegistry::for_each_histogram(
    const std::function<void(const std::string&, const Histogram::Snapshot&)>& fn)
    const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, h] : histograms_) fn(name, h.snapshot());
}

namespace {

std::string spaces(std::size_t n) { return std::string(n, ' '); }

template <typename Map, typename Emit>
void emit_map(std::ostringstream& os, const std::string& key, const Map& map,
              std::size_t indent, bool trailing_comma, Emit emit_value) {
  os << spaces(indent + 2) << json_escape(key) << ": {";
  bool first = true;
  for (const auto& [name, metric] : map) {
    os << (first ? "\n" : ",\n") << spaces(indent + 4) << json_escape(name) << ": ";
    emit_value(os, metric, indent + 4);
    first = false;
  }
  if (!first) os << "\n" << spaces(indent + 2);
  os << "}" << (trailing_comma ? "," : "") << "\n";
}

}  // namespace

std::string MetricsRegistry::to_json(std::size_t indent) const {
  std::ostringstream os;
  // Holding the registry mutex for the whole walk pins the name sets; each
  // histogram is additionally snapshotted under its own lock so its fields
  // stay coherent with each other.
  std::lock_guard<std::mutex> lock(mu_);
  os << spaces(indent) << "{\n";
  emit_map(os, "counters", counters_, indent, true,
           [](std::ostringstream& o, const Counter& c, std::size_t) { o << c.value(); });
  emit_map(os, "gauges", gauges_, indent, true,
           [](std::ostringstream& o, const Gauge& g, std::size_t) {
             o << format_json_double(g.value());
           });
  emit_map(os, "histograms", histograms_, indent, false,
           [](std::ostringstream& o, const Histogram& h, std::size_t ind) {
             const Histogram::Snapshot s = h.snapshot();
             o << "{\"count\": " << s.count << ", \"sum\": " << s.sum
               << ", \"min\": " << s.min << ", \"max\": " << s.max
               << ", \"mean\": " << format_json_double(s.mean()) << ",\n"
               << spaces(ind + 1) << "\"buckets\": [";
             for (std::size_t b = 0; b < s.buckets.size(); ++b) {
               if (b) o << ", ";
               o << "[" << Histogram::bucket_upper_bound(b) << ", " << s.buckets[b]
                 << "]";
             }
             o << "]}";
           });
  os << spaces(indent) << "}";
  return os.str();
}

}  // namespace pcs::rt
