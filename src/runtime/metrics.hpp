// Telemetry for the fabric runtime and the round simulators: named counters,
// gauges, and log2-bucketed histograms collected in a registry and exported
// as deterministic JSON.
//
// The three traffic-facing simulators (runtime/fabric_runtime, the
// message-layer congestion/stream engines, network/router_sim) used to each
// carry an ad-hoc stats struct with incompatible fields; this is the one
// schema they all report through (see stats_bridge.hpp for the adapters).
// Export is byte-deterministic for identical measurements: names are emitted
// in sorted order (std::map) and doubles are printed with std::to_chars
// shortest round-trip form, so a fixed-seed campaign can be diffed in CI.
//
// Thread safety: the serving daemon (src/serve) scrapes a live registry
// while campaign threads are writing it, so every metric is safe for
// concurrent writers plus concurrent readers.  Counters and gauges are
// single atomics (relaxed -- they are statistics, not synchronization);
// histograms guard their buckets with a mutex and hand readers a coherent
// Snapshot.  Metric creation and to_json() serialize on a registry mutex;
// references returned by counter()/gauge()/histogram() stay valid and
// lock-free to hold.  Single-threaded runs pay one uncontended atomic or
// lock per record and keep byte-identical JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pcs::rt {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over nonnegative integer samples with logarithmic buckets:
/// bucket 0 holds the value 0, bucket b >= 1 holds [2^(b-1), 2^b - 1], so a
/// latency or occupancy distribution of any range fits in ~64 buckets while
/// keeping exact count, sum, min, and max.
class Histogram {
 public:
  /// A coherent copy of the histogram's state, taken under the lock; the
  /// scrape path formats from this so a concurrent record() can never tear
  /// the count/sum/buckets relationship.
  struct Snapshot {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean() const noexcept {
      return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  void record(std::uint64_t value) { record_n(value, 1); }
  /// Record `weight` samples of `value` at once (bulk import of a
  /// per-value histogram vector).
  void record_n(std::uint64_t value, std::uint64_t weight);

  /// Merge another histogram's snapshot into this one (bucket-wise add);
  /// the daemon folds per-campaign registries into its global one with this.
  void merge(const Snapshot& other);

  Snapshot snapshot() const;

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;
  std::uint64_t min() const noexcept;
  std::uint64_t max() const noexcept;
  double mean() const noexcept;

  /// Bucket occupancy copy; prefer snapshot() when more than one field is
  /// needed coherently.
  std::vector<std::uint64_t> buckets() const;

  /// Largest value bucket b admits: 0 for b = 0, 2^b - 1 otherwise.
  static std::uint64_t bucket_upper_bound(std::size_t b) noexcept;

 private:
  mutable std::mutex mu_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Named metrics, created on first access and exported in sorted-name order.
/// References returned by counter()/gauge()/histogram() stay valid for the
/// registry's lifetime (node-based map storage) and may be used concurrently
/// with other accessors and with to_json().
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_[name];
  }
  Gauge& gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_[name];
  }
  Histogram& histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return histograms_[name];
  }

  // Read-side iteration.  NOT safe against concurrent metric *creation*;
  // single-threaded analysis code (stats bridges, tests) uses these, the
  // daemon scrape goes through to_json()/for_each_* which lock.
  const std::map<std::string, Counter>& counters() const noexcept { return counters_; }
  const std::map<std::string, Gauge>& gauges() const noexcept { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Locked iteration helpers for cross-registry aggregation while writers
  /// may still be creating metrics in `this`.
  void for_each_counter(
      const std::function<void(const std::string&, std::uint64_t)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string&, double)>& fn) const;
  void for_each_histogram(
      const std::function<void(const std::string&, const Histogram::Snapshot&)>& fn)
      const;

  /// Pretty-printed JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}, every line prefixed by `indent` spaces (the
  /// opening brace included), so it can be embedded in a larger document.
  /// Safe to call while other threads record; sees each metric's value at
  /// some point during the call.
  std::string to_json(std::size_t indent = 0) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// `v` rendered for JSON: shortest round-trip decimal via std::to_chars,
/// with a trailing ".0" added to integral values so the token stays a JSON
/// number that parses back to double.  Non-finite values render as 0 (JSON
/// has no NaN/Inf); producers are expected to guard.
std::string format_json_double(double v);

/// `s` as a JSON string literal, quotes included.
std::string json_escape(const std::string& s);

}  // namespace pcs::rt
