// Telemetry for the fabric runtime and the round simulators: named counters,
// gauges, and log2-bucketed histograms collected in a registry and exported
// as deterministic JSON.
//
// The three traffic-facing simulators (runtime/fabric_runtime, the
// message-layer congestion/stream engines, network/router_sim) used to each
// carry an ad-hoc stats struct with incompatible fields; this is the one
// schema they all report through (see stats_bridge.hpp for the adapters).
// Export is byte-deterministic for identical measurements: names are emitted
// in sorted order (std::map) and doubles are printed with std::to_chars
// shortest round-trip form, so a fixed-seed campaign can be diffed in CI.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pcs::rt {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Histogram over nonnegative integer samples with logarithmic buckets:
/// bucket 0 holds the value 0, bucket b >= 1 holds [2^(b-1), 2^b - 1], so a
/// latency or occupancy distribution of any range fits in ~64 buckets while
/// keeping exact count, sum, min, and max.
class Histogram {
 public:
  void record(std::uint64_t value) { record_n(value, 1); }
  /// Record `weight` samples of `value` at once (bulk import of a
  /// per-value histogram vector).
  void record_n(std::uint64_t value, std::uint64_t weight);

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept;

  /// Bucket occupancy; buckets().size() grows to fit the largest sample.
  const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }

  /// Largest value bucket b admits: 0 for b = 0, 2^b - 1 otherwise.
  static std::uint64_t bucket_upper_bound(std::size_t b) noexcept;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Named metrics, created on first access and exported in sorted-name order.
/// References returned by counter()/gauge()/histogram() stay valid for the
/// registry's lifetime (node-based map storage).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const noexcept { return counters_; }
  const std::map<std::string, Gauge>& gauges() const noexcept { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Pretty-printed JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}, every line prefixed by `indent` spaces (the
  /// opening brace included), so it can be embedded in a larger document.
  std::string to_json(std::size_t indent = 0) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// `v` rendered for JSON: shortest round-trip decimal via std::to_chars,
/// with a trailing ".0" added to integral values so the token stays a JSON
/// number that parses back to double.  Non-finite values render as 0 (JSON
/// has no NaN/Inf); producers are expected to guard.
std::string format_json_double(double v);

/// `s` as a JSON string literal, quotes included.
std::string json_escape(const std::string& s);

}  // namespace pcs::rt
