#include "runtime/stats_bridge.hpp"

namespace pcs::rt {

namespace {

void record_latency_histogram(MetricsRegistry& metrics,
                              const std::vector<std::size_t>& per_round) {
  Histogram& h = metrics.histogram("latency_epochs");
  for (std::size_t waited = 0; waited < per_round.size(); ++waited) {
    h.record_n(waited, per_round[waited]);
  }
}

}  // namespace

void record_stats(MetricsRegistry& metrics, const msg::RoundStats& stats) {
  metrics.counter("epochs.measure").add(stats.rounds);
  metrics.counter("offered").add(stats.offered);
  metrics.counter("delivered").add(stats.delivered);
  metrics.counter("dropped").add(stats.dropped);
  metrics.counter("retries").add(stats.retries);
  metrics.gauge("delivery_rate").set(stats.delivery_rate());
  metrics.gauge("mean_latency_epochs").set(stats.mean_latency());
  metrics.gauge("backlog.max").set(static_cast<double>(stats.max_backlog));
  metrics.gauge("backlog.residual").set(static_cast<double>(stats.final_backlog));
  record_latency_histogram(metrics, stats.latency_histogram);
}

void record_stats(MetricsRegistry& metrics, const msg::StreamStats& stats) {
  metrics.counter("epochs.measure").add(stats.batches);
  metrics.counter("offered").add(stats.offered);
  metrics.counter("delivered").add(stats.delivered);
  metrics.counter("payload_bits").add(stats.payload_bits);
  metrics.counter("cycles.total").add(stats.total_cycles);
  metrics.counter("cycles.flight").add(stats.flight_cycles);
  metrics.gauge("delivery_rate").set(stats.delivery_rate());
  metrics.gauge("messages_per_cycle").set(stats.messages_per_cycle());
  metrics.gauge("bits_per_cycle").set(stats.bits_per_cycle());
}

void record_stats(MetricsRegistry& metrics, const net::TreeSimStats& stats) {
  metrics.counter("epochs.measure").add(stats.rounds);
  metrics.counter("offered").add(stats.offered);
  metrics.counter("delivered").add(stats.delivered);
  metrics.counter("rejected.level1").add(stats.level1_rejections);
  metrics.counter("rejected.trunk").add(stats.trunk_rejections);
  metrics.gauge("delivery_rate").set(stats.delivery_rate());
  metrics.gauge("mean_latency_epochs").set(stats.mean_latency());
  metrics.gauge("backlog.max").set(static_cast<double>(stats.max_backlog));
  record_latency_histogram(metrics, stats.latency_histogram);
}

}  // namespace pcs::rt
