// Adapters exporting the legacy simulator stats structs through the shared
// metrics schema, so `msg::simulate_rounds`, `msg::run_stream`,
// `net::simulate_tree`, and the fabric runtime all emit the same counter /
// gauge / histogram names (DESIGN.md section 9) and one JSON consumer can
// read any of them.
//
// Name mapping (per producer, where the field exists):
//   offered / delivered / dropped / retries  -> counters of the same name
//   rounds or batches                        -> counter epochs.measure
//   delivery rate                            -> gauge delivery_rate
//   mean latency (rounds)                    -> gauge mean_latency_epochs
//   per-round latency histogram              -> histogram latency_epochs
//   peak backlog                             -> gauge backlog.max
#pragma once

#include "message/congestion.hpp"
#include "message/stream_engine.hpp"
#include "network/router_sim.hpp"
#include "runtime/metrics.hpp"

namespace pcs::rt {

/// Congestion-round simulation (message layer).
void record_stats(MetricsRegistry& metrics, const msg::RoundStats& stats);

/// Continuous-stream engine; cycle-denominated gauges keep their own names
/// (messages_per_cycle, bits_per_cycle) since no round clock exists.
void record_stats(MetricsRegistry& metrics, const msg::StreamStats& stats);

/// Two-level tree round simulation (network layer); level-1/trunk rejection
/// splits export as rejected.level1 / rejected.trunk.
void record_stats(MetricsRegistry& metrics, const net::TreeSimStats& stats);

}  // namespace pcs::rt
