#include "runtime/trace_bridge.hpp"

namespace pcs::rt {

void merge_profile(const obs::TraceSnapshot& snap, MetricsRegistry& metrics) {
  for (const obs::SpanRecord& rec : snap.spans) {
    metrics.histogram(std::string("profile.span.") + rec.name)
        .record(rec.end - rec.begin);
  }
  for (const auto& [name, value] : snap.counters) {
    metrics.counter("profile." + name).add(value);
  }
}

}  // namespace pcs::rt
