// Folds a drained trace snapshot into the runtime metrics registry: every
// span name becomes a duration histogram "profile.span.<name>" (samples in
// raw ticks -- microseconds-scale under kTsc once divided by ticks_per_us,
// logical steps under kLogical; the histogram's count is the span count),
// and every trace counter becomes "profile.<name>".  This is what turns the
// tracing layer into the `plan_profile` rollup pcs_serve emits per campaign
// under schema pcs.runtime.v2.
#pragma once

#include "obs/trace.hpp"
#include "runtime/metrics.hpp"

namespace pcs::rt {

/// Merge `snap` into `metrics` under the "profile." prefix.  Safe to call
/// with an empty snapshot (no-op).
void merge_profile(const obs::TraceSnapshot& snap, MetricsRegistry& metrics);

}  // namespace pcs::rt
