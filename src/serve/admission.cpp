#include "serve/admission.hpp"

#include "util/assert.hpp"

namespace pcs::serve {

const char* admit_result_name(AdmitResult r) {
  switch (r) {
    case AdmitResult::kAdmitted: return "admitted";
    case AdmitResult::kRejectedSaturated: return "saturated";
    case AdmitResult::kRejectedTenantQuota: return "tenant-quota";
    case AdmitResult::kRejectedDraining: return "draining";
  }
  return "unknown";
}

AdmitResult AdmissionController::try_admit(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    ++stats_.rejected_draining;
    return AdmitResult::kRejectedDraining;
  }
  if (inflight_ >= limits_.max_inflight) {
    ++stats_.rejected_saturated;
    return AdmitResult::kRejectedSaturated;
  }
  std::size_t& mine = per_tenant_[tenant];
  if (mine >= limits_.tenant_quota) {
    ++stats_.rejected_tenant_quota;
    return AdmitResult::kRejectedTenantQuota;
  }
  ++mine;
  ++inflight_;
  ++stats_.admitted;
  return AdmitResult::kAdmitted;
}

void AdmissionController::release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_tenant_.find(tenant);
  PCS_REQUIRE(it != per_tenant_.end() && it->second > 0 && inflight_ > 0,
              "admission release without matching admit for tenant '" << tenant
                                                                      << "'");
  if (--it->second == 0) per_tenant_.erase(it);
  --inflight_;
}

void AdmissionController::start_draining() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

std::size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AdmissionController::set_limits(AdmissionLimits limits) {
  PCS_REQUIRE(limits.max_inflight >= 1 && limits.tenant_quota >= 1,
              "admission limits must be >= 1 (max_inflight="
                  << limits.max_inflight << " tenant_quota="
                  << limits.tenant_quota << ")");
  std::lock_guard<std::mutex> lock(mu_);
  limits_ = limits;
}

AdmissionLimits AdmissionController::limits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limits_;
}

}  // namespace pcs::serve
