// Admission control for the serving daemon: a bounded pool of in-flight
// campaigns with per-tenant quotas, layered ABOVE the per-message door
// backpressure the runtime already applies (bounded injection queues +
// congestion policy).  The door protects a campaign from its own offered
// load; admission protects the daemon from its tenants -- a saturated
// server rejects new campaigns with a reason instead of queueing unbounded
// work, the Tiny Tera shape: arbitrate every cycle, never buffer blindly.
//
// Thread safety: try_admit/release are called from concurrent connection
// threads; everything is guarded by one mutex (admission is far off any
// hot path -- one decision per campaign, not per message).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace pcs::serve {

enum class AdmitResult {
  kAdmitted,
  kRejectedSaturated,    ///< daemon-wide in-flight cap reached
  kRejectedTenantQuota,  ///< this tenant's share of the pool is in use
  kRejectedDraining,     ///< daemon is shutting down; nothing new admitted
};

/// Human-readable slug for reject reasons ("saturated", "tenant-quota",
/// "draining"; "admitted" for kAdmitted), used in CampaignReply.reason.
const char* admit_result_name(AdmitResult r);

struct AdmissionLimits {
  std::size_t max_inflight = 8;   ///< daemon-wide concurrent campaigns
  std::size_t tenant_quota = 4;   ///< per-tenant concurrent campaigns
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionLimits limits) : limits_(limits) {}

  /// One admission decision.  On kAdmitted the caller OWNS one slot and
  /// must release(tenant) exactly once when the campaign finishes (use
  /// Ticket for RAII).
  AdmitResult try_admit(const std::string& tenant);
  void release(const std::string& tenant);

  /// Flip to draining: every subsequent try_admit returns
  /// kRejectedDraining.  Idempotent.
  void start_draining();
  bool draining() const;

  std::size_t inflight() const;

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected_saturated = 0;
    std::uint64_t rejected_tenant_quota = 0;
    std::uint64_t rejected_draining = 0;
  };
  Stats stats() const;

  /// Validated live update (SIGHUP reload): never torn -- both limits swap
  /// under the lock.  In-flight counts are untouched; a reload that lowers
  /// the caps only affects future admissions.
  void set_limits(AdmissionLimits limits);
  AdmissionLimits limits() const;

 private:
  mutable std::mutex mu_;
  AdmissionLimits limits_;
  bool draining_ = false;
  std::size_t inflight_ = 0;
  std::map<std::string, std::size_t> per_tenant_;
  Stats stats_;
};

/// RAII admission slot: releases on destruction if admitted.
class Ticket {
 public:
  Ticket(AdmissionController& ctl, const std::string& tenant)
      : ctl_(ctl), tenant_(tenant), result_(ctl.try_admit(tenant)) {}
  ~Ticket() {
    if (admitted()) ctl_.release(tenant_);
  }
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  bool admitted() const { return result_ == AdmitResult::kAdmitted; }
  AdmitResult result() const { return result_; }

 private:
  AdmissionController& ctl_;
  std::string tenant_;
  AdmitResult result_;
};

}  // namespace pcs::serve
