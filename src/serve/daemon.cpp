#include "serve/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <utility>

#include "fabric/fabric_config.hpp"
#include "runtime/fabric_runtime.hpp"
#include "util/assert.hpp"

namespace pcs::serve {

namespace {

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t put = ::write(fd, data + off, size - off);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(put);
  }
  return true;
}

std::vector<plan::ChipFault> parse_faults(const std::string& s) {
  std::vector<plan::ChipFault> out;
  for (const std::string& item : rt::split_csv(s)) {
    const auto colon = item.find(':');
    PCS_REQUIRE(colon != std::string::npos,
                "faults expects stage:chip entries, got '" << item << "'");
    const auto parse = [&](const std::string& v) {
      std::size_t pos = 0;
      unsigned long long n = 0;
      try {
        n = std::stoull(v, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      PCS_REQUIRE(pos == v.size() && !v.empty(),
                  "faults expects integers, got '" << v << "'");
      return static_cast<std::size_t>(n);
    };
    out.push_back(plan::ChipFault{parse(item.substr(0, colon)),
                                  parse(item.substr(colon + 1))});
  }
  return out;
}

}  // namespace

AdmissionLimits admission_limits_from(const rt::RuntimeConfig& cfg) {
  return AdmissionLimits{cfg.serve_max_inflight, cfg.serve_tenant_quota};
}

std::size_t cache_budget_from(const rt::RuntimeConfig& cfg) {
  return cfg.serve_cache_mb << 20;
}

ServeDaemon::ServeDaemon(rt::RuntimeConfig base, ServeOptions opts)
    : base_(std::move(base)),
      opts_(std::move(opts)),
      admission_(admission_limits_from(base_)),
      cache_(cache_budget_from(base_)) {}

ServeDaemon::~ServeDaemon() {
  // run() joins everything on the normal path; this is the failed-bind /
  // test-only path.
  std::lock_guard<std::mutex> lock(threads_mu_);
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
}

rt::RuntimeConfig ServeDaemon::resolve(const CampaignRequest& req) const {
  rt::RuntimeConfig cfg;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    cfg = base_;
  }
  // The base family may be a sweep list ("revsort,columnsort"); a daemon
  // default must be ONE buildable family, so take the first.
  const auto base_families = rt::split_csv(cfg.family);
  PCS_REQUIRE(!base_families.empty(), "daemon base config has no family");
  cfg.family = req.family.empty() ? base_families.front() : req.family;
  if (req.n != 0) cfg.n = req.n;
  if (req.m != 0) cfg.m = req.m;
  if (req.beta >= 0.0) cfg.beta = req.beta;
  if (!req.faults.empty()) cfg.faults = parse_faults(req.faults);
  if (!req.arrival.empty()) cfg.arrival = req.arrival;
  if (!req.pattern.empty()) cfg.pattern = req.pattern;
  if (!req.injection.empty()) cfg.injection = req.injection;
  if (req.load >= 0.0) cfg.arrival_p = req.load;
  if (req.lanes != kUseServerDefault) cfg.lanes = req.lanes;
  if (req.queue_depth != kUseServerDefault) cfg.queue_depth = req.queue_depth;
  if (!req.policy.empty()) cfg.policy = req.policy;
  if (req.warmup_epochs != kUseServerDefault) cfg.warmup_epochs = req.warmup_epochs;
  if (req.measure_epochs != kUseServerDefault) cfg.measure_epochs = req.measure_epochs;
  if (req.drain_epochs_max != kUseServerDefault)
    cfg.drain_epochs_max = req.drain_epochs_max;
  if (!req.topology.empty()) cfg.topology = req.topology;
  if (!req.route.empty()) cfg.fabric_route = req.route;
  if (req.epochs_in_flight != kUseServerDefault)
    cfg.fabric_epochs_in_flight = req.epochs_in_flight;
  if (req.deflect_max != kUseServerDefault)
    cfg.fabric_deflect_max = req.deflect_max;
  cfg.seed = req.seed;

  PCS_REQUIRE(cfg.n >= 1 && cfg.m >= 1 && cfg.m <= cfg.n,
              "campaign shape: n=" << cfg.n << " m=" << cfg.m);
  PCS_REQUIRE(cfg.arrival_p >= 0.0 && cfg.arrival_p <= 1.0,
              "campaign load out of [0,1]: " << cfg.arrival_p);
  PCS_REQUIRE(cfg.lanes >= 1, "campaign lanes must be >= 1");
  PCS_REQUIRE(cfg.queue_depth >= 1, "campaign queue_depth must be >= 1");
  PCS_REQUIRE(cfg.measure_epochs >= 1, "campaign measure_epochs must be >= 1");
  rt::policy_from_string(cfg.policy);  // throws on unknown
  PCS_REQUIRE(cfg.arrival == "bernoulli" || cfg.arrival == "exact" ||
                  cfg.arrival == "bursty" || cfg.arrival == "hotspot",
              "unknown arrival process '" << cfg.arrival << "'");
  PCS_REQUIRE(cfg.pattern.empty() || traffic::known_pattern(cfg.pattern),
              "unknown traffic pattern '" << cfg.pattern << "'");
  PCS_REQUIRE(cfg.injection.empty() || traffic::known_injection(cfg.injection),
              "unknown injection process '" << cfg.injection << "'");
  PCS_REQUIRE(cfg.fabric_route == "deterministic" ||
                  cfg.fabric_route == "adaptive",
              "unknown route policy '" << cfg.fabric_route << "'");
  PCS_REQUIRE(cfg.fabric_epochs_in_flight <= 4096,
              "campaign epochs_in_flight must be <= 4096, got "
                  << cfg.fabric_epochs_in_flight);
  return cfg;
}

CampaignReply ServeDaemon::run_fabric_campaign(const rt::RuntimeConfig& cfg) {
  // Fabric campaigns bypass the plan cache: the per-node switch is one of
  // potentially many hops and FabricSim owns its plan instances (healthy +
  // faulted) for the campaign's lifetime.  The reply's spec_digest is the
  // FabricSpec fingerprint, the key a future fabric cache would use.
  CampaignReply rep;
  const std::unique_ptr<fabric::FabricSim> sim =
      fabric::make_fabric_sim(cfg, cfg.family, cfg.arrival_p);
  rt::MetricsRegistry local;

  const auto t0 = std::chrono::steady_clock::now();
  const rt::RuntimeReport report = sim->run(local);
  const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  aggregate_campaign(local);
  global_.counter("serve.campaigns_completed").add(1);
  global_.counter("serve.fabric_campaigns").add(1);
  global_.histogram("serve.wall.campaign_us")
      .record(static_cast<std::uint64_t>(wall_us));

  rep.status = Status::kOk;
  rep.cache_hit = false;
  rep.drained = report.drained;
  rep.saturated = report.saturated;
  rep.offered = local.counter("total.offered").value();
  rep.delivered = local.counter("total.delivered").value();
  rep.dropped = local.counter("total.dropped").value();
  rep.residual = local.counter("total.residual").value();
  rep.delivery_rate = local.gauge("delivery_rate").value();
  rep.mean_latency_epochs = local.gauge("mean_latency_epochs").value();
  const plan::ExecMode mode =
      cfg.exec == "legacy" ? plan::ExecMode::kLegacy : plan::ExecMode::kFused;
  rep.spec_digest = sim->graph().spec().digest(mode);
  return rep;
}

CampaignReply ServeDaemon::handle_campaign(const CampaignRequest& req) {
  global_.counter("serve.requests").add(1);

  CampaignReply rep;
  Ticket ticket(admission_, req.tenant);
  if (!ticket.admitted()) {
    const char* slug = admit_result_name(ticket.result());
    global_.counter(std::string("serve.rejected.") + slug).add(1);
    rep.status = Status::kRejected;
    rep.reason = slug;
    return rep;
  }

  try {
    const rt::RuntimeConfig cfg = resolve(req);

    if (!cfg.topology.empty()) return run_fabric_campaign(cfg);

    SwitchSpec spec;
    spec.family = cfg.family;
    spec.n = cfg.n;
    spec.m = cfg.m;
    spec.beta = cfg.beta;
    spec.faults = cfg.faults;
    const plan::ExecMode mode =
        cfg.exec == "legacy" ? plan::ExecMode::kLegacy : plan::ExecMode::kFused;

    const PlanCache::Checkout co = cache_.checkout(spec, mode);
    global_.counter(co.hit ? "serve.cache.hits" : "serve.cache.misses").add(1);

    rt::RuntimeOptions opts;
    opts.queue_depth = cfg.queue_depth;
    opts.policy = rt::policy_from_string(cfg.policy);
    opts.lanes = cfg.lanes;
    opts.seed = cfg.seed;
    opts.warmup_epochs = cfg.warmup_epochs;
    opts.measure_epochs = cfg.measure_epochs;
    opts.drain_epochs_max = cfg.drain_epochs_max;
    opts.check_invariants = cfg.check_invariants;

    // The raw pointer into the cache checkout stays valid for the whole
    // campaign; worstcase sources run their bound-stress search against it.
    const sw::ConcentratorSwitch* sw_ptr = co.sw.get();
    rt::FabricRuntime runtime(*co.sw, opts, [&cfg, sw_ptr](std::size_t) {
      return rt::make_traffic(cfg, cfg.n, sw_ptr);
    });
    rt::MetricsRegistry local;

    const auto t0 = std::chrono::steady_clock::now();
    const rt::RuntimeReport report = runtime.run(local);
    const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

    aggregate_campaign(local);
    global_.counter("serve.campaigns_completed").add(1);
    // Wall time is the one intentionally nondeterministic series; the CI
    // smoke filters "wall" names out of its determinism diff.
    global_.histogram("serve.wall.campaign_us")
        .record(static_cast<std::uint64_t>(wall_us));

    rep.status = Status::kOk;
    rep.cache_hit = co.hit;
    rep.drained = report.drained;
    rep.saturated = report.saturated;
    rep.offered = local.counter("total.offered").value();
    rep.delivered = local.counter("total.delivered").value();
    rep.dropped = local.counter("total.dropped").value();
    rep.residual = local.counter("total.residual").value();
    rep.delivery_rate = local.gauge("delivery_rate").value();
    rep.mean_latency_epochs = local.gauge("mean_latency_epochs").value();
    rep.spec_digest = co.key;
  } catch (const std::exception& e) {
    global_.counter("serve.campaigns_failed").add(1);
    rep.status = Status::kError;
    rep.reason = e.what();
  }
  return rep;
}

void ServeDaemon::aggregate_campaign(const rt::MetricsRegistry& local) {
  // One lock around the whole fold: a scrape serializes against it, so the
  // global conservation identity (sum of per-campaign identities) holds at
  // every observable instant -- never a campaign's offered without its
  // delivered.
  std::lock_guard<std::mutex> lock(agg_mu_);
  local.for_each_counter([this](const std::string& name, std::uint64_t v) {
    global_.counter(name).add(v);
  });
  local.for_each_histogram(
      [this](const std::string& name, const rt::Histogram::Snapshot& snap) {
        global_.histogram(name).merge(snap);
      });
  // Gauges (per-campaign rates, bounds) are not summable; clients get them
  // in their CampaignReply instead.
}

std::string ServeDaemon::scrape_json() const {
  std::lock_guard<std::mutex> lock(agg_mu_);
  const PlanCache::Stats cs = cache_.stats();
  global_.gauge("cache.bytes").set(static_cast<double>(cs.bytes));
  global_.gauge("cache.entries").set(static_cast<double>(cs.entries));
  global_.gauge("cache.evictions").set(static_cast<double>(cs.evictions));
  global_.gauge("serve.inflight").set(static_cast<double>(admission_.inflight()));
  return global_.to_json(0);
}

void ServeDaemon::do_reload() {
  if (opts_.config_path.empty()) {
    global_.counter("serve.config_reload_failures").add(1);
    return;
  }
  try {
    // Validate-then-swap: load_config_file parses AND validates the whole
    // file before anything here changes, so a bad reload is a no-op.
    rt::RuntimeConfig fresh = rt::load_config_file(opts_.config_path);
    {
      std::lock_guard<std::mutex> lock(config_mu_);
      base_ = fresh;
    }
    admission_.set_limits(admission_limits_from(fresh));
    cache_.set_byte_budget(cache_budget_from(fresh));
    global_.counter("serve.config_reloads").add(1);
  } catch (const std::exception&) {
    global_.counter("serve.config_reload_failures").add(1);
  }
}

void ServeDaemon::handle_connection(int fd) {
  FrameReader reader;
  std::vector<std::uint8_t> buf(64 * 1024);
  bool open = true;
  while (open && !stop_requested_.load()) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, opts_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    const ssize_t got = ::read(fd, buf.data(), buf.size());
    if (got <= 0) break;  // peer closed (0) or hard error
    try {
      reader.feed(buf.data(), static_cast<std::size_t>(got));
      while (auto frame = reader.next()) {
        std::vector<std::uint8_t> reply;
        switch (frame->type) {
          case MsgType::kCampaignRequest:
            reply = encode_campaign_reply(handle_campaign(*frame->campaign_request));
            break;
          case MsgType::kScrapeRequest: {
            global_.counter("serve.scrapes").add(1);
            ScrapeReply sr;
            sr.json = scrape_json();
            reply = encode_scrape_reply(sr);
            break;
          }
          default:
            // Server-bound streams must not carry reply types.
            PCS_REQUIRE(false, "unexpected client frame type "
                                   << int(static_cast<std::uint8_t>(frame->type)));
        }
        if (!write_all(fd, reply.data(), reply.size())) {
          open = false;
          break;
        }
      }
    } catch (const std::exception&) {
      global_.counter("serve.protocol_errors").add(1);
      break;
    }
  }
  ::close(fd);
}

int ServeDaemon::run() {
  // Copy, and from opts_: base_.serve_socket can be swapped by a SIGHUP
  // reload mid-run, but the socket we bound never moves.
  const std::string path = opts_.socket_path;
  ::unlink(path.c_str());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return 1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    return 1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    return 1;
  }

  while (!stop_requested_.load()) {
    if (reload_requested_.exchange(false)) do_reload();
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, opts_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0 || !(p.revents & POLLIN)) continue;
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    global_.counter("serve.connections").add(1);
    std::lock_guard<std::mutex> lock(threads_mu_);
    conn_threads_.emplace_back(&ServeDaemon::handle_connection, this, cfd);
  }

  // Graceful drain: nothing new is admitted, connection threads notice
  // stop_requested_ after finishing whatever campaign is in flight, and
  // join below blocks until the last reply went out.
  admission_.start_draining();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(path.c_str());
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (std::thread& t : conn_threads_) {
      if (t.joinable()) t.join();
    }
    conn_threads_.clear();
  }
  PCS_REQUIRE(admission_.inflight() == 0,
              "drain left " << admission_.inflight() << " campaigns in flight");

  // Flush the final rollup so a stopped daemon leaves the same artifact the
  // batch CLI does.
  std::string out_path;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    out_path = base_.out;
  }
  std::ofstream out(out_path);
  if (out.good()) out << scrape_json() << "\n";
  return 0;
}

}  // namespace pcs::serve
