// The persistent multi-tenant serving daemon: pcs_serve's batch campaign
// loop promoted to a long-lived service (ROADMAP item 2; the Tiny Tera
// shape -- a persistent core arbitrating among competing clients).
//
//   clients --UDS frames--> accept loop --> connection threads
//                                             |  admission (serve/admission)
//                                             |  plan cache (serve/plan_cache)
//                                             v
//                             FabricRuntime campaign on the shared pool
//                                             |
//                            per-campaign MetricsRegistry -> global rollup
//
// One connection thread per client; each campaign request is admitted
// (bounded in-flight, per-tenant quota, reject-with-reason), resolves its
// switch through the shared plan cache (tenants with identical specs share
// one compiled plan), and runs the existing warmup/measure/drain campaign
// machinery.  The heavy lifting inside a campaign still goes through the
// PR 1 thread pool via route_batch, so "concurrent campaigns" multiplies
// work across cores, not threads-per-message.
//
// Operational controls:
//   * scrape    -- a protocol request returning the live global
//                  MetricsRegistry as deterministic JSON, without stopping
//                  traffic (campaign rollups fold in under one mutex, so a
//                  scrape never observes a half-aggregated campaign and the
//                  conservation identity holds at every instant);
//   * SIGHUP    -- re-parse the config file through the existing
//                  RuntimeConfig parser; on success the base config,
//                  admission limits, and cache budget swap atomically
//                  (validate-then-swap: a bad file is counted and ignored,
//                  never half-applied);
//   * SIGTERM   -- graceful drain: stop admitting (reject reason
//                  "draining"), let in-flight campaigns run their drain
//                  phase, flush final metrics to cfg.out, exit 0.
//
// Signal handlers must only touch async-signal-safe state: notify_stop()
// and notify_reload() are single atomic stores; the accept loop polls them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/config.hpp"
#include "runtime/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/plan_cache.hpp"
#include "serve/protocol.hpp"

namespace pcs::serve {

struct ServeOptions {
  std::string socket_path = "pcs_served.sock";
  /// Config file re-read on SIGHUP; empty disables hot reload.
  std::string config_path;
  /// Poll granularity of the accept/connection loops; the latency bound on
  /// noticing a signal.
  int poll_interval_ms = 100;
};

/// ServeOptions' tunables that live in the config file (and therefore hot
/// reload): admission limits and the cache byte budget.
AdmissionLimits admission_limits_from(const rt::RuntimeConfig& cfg);
std::size_t cache_budget_from(const rt::RuntimeConfig& cfg);

class ServeDaemon {
 public:
  ServeDaemon(rt::RuntimeConfig base, ServeOptions opts);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Bind the socket and serve until notify_stop(); returns the process
  /// exit code (0 = clean drain).  Call once.
  int run();

  /// Async-signal-safe: request graceful drain / config reload.
  void notify_stop() noexcept { stop_requested_.store(true); }
  void notify_reload() noexcept { reload_requested_.store(true); }

  /// Current global metrics snapshot as deterministic JSON (what a scrape
  /// frame returns).  Thread-safe.
  std::string scrape_json() const;

  /// In-process request execution -- the connection threads call this, and
  /// tests drive admission/cache/campaign behaviour through it without a
  /// socket.  Thread-safe.
  CampaignReply handle_campaign(const CampaignRequest& req);

  const ServeOptions& options() const noexcept { return opts_; }

 private:
  void handle_connection(int fd);
  void do_reload();
  void aggregate_campaign(const rt::MetricsRegistry& local);
  /// Base-config snapshot + request sentinel resolution -> one effective
  /// campaign config.  Throws ContractViolation on out-of-range fields.
  rt::RuntimeConfig resolve(const CampaignRequest& req) const;
  /// The multi-hop path (cfg.topology non-empty): builds the fabric through
  /// pcs::make_fabric (no plan cache; FabricSim owns its plans) and reports
  /// FabricSpec::digest() as the reply's spec_digest.
  CampaignReply run_fabric_campaign(const rt::RuntimeConfig& cfg);

  rt::RuntimeConfig base_;
  mutable std::mutex config_mu_;  ///< guards base_ (reload swaps under it)
  ServeOptions opts_;

  AdmissionController admission_;
  PlanCache cache_;

  /// Global rollup: serve.* operational counters plus the sum/merge of
  /// every completed campaign's counters and histograms.  agg_mu_ makes
  /// campaign-completion aggregation atomic with respect to scrapes.
  /// (mutable: scrape_json() refreshes cache/admission gauges.)
  mutable std::mutex agg_mu_;
  mutable rt::MetricsRegistry global_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> reload_requested_{false};

  int listen_fd_ = -1;
  std::mutex threads_mu_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace pcs::serve
