#include "serve/plan_cache.hpp"

#include <limits>
#include <utility>

#include "util/assert.hpp"

namespace pcs::serve {

std::size_t approx_switch_bytes(const plan::PlanSwitch& sw) {
  const plan::SwitchPlan& p = sw.plan();
  std::size_t bytes = sizeof(plan::PlanSwitch);
  auto stage_bytes = [](const plan::PlanStage& st) {
    return st.in_src.size() * sizeof(std::int32_t) + st.dead.size() +
           st.label.size();
  };
  for (const plan::PlanStage& st : p.stages) bytes += stage_bytes(st);
  for (const plan::PlanStage& st : p.safety_stages) bytes += stage_bytes(st);
  bytes += p.readout.size() * sizeof(std::uint32_t);
  bytes += p.fp_rev.size() * sizeof(std::uint32_t);
  bytes += p.faults.size() * sizeof(plan::ChipFault);
  // The analysis pass materializes one dense uint32 source table per
  // inter-stage link plus lane-granularity mirrors -- empirically ~2x the
  // plan's own wiring, so budget 3x total.
  return 3 * bytes;
}

PlanCache::PlanCache(std::size_t byte_budget) : byte_budget_(byte_budget) {}

PlanCache::Checkout PlanCache::checkout(const SwitchSpec& spec,
                                        plan::ExecMode mode) {
  const std::uint64_t key = spec.digest(mode);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      it->second.last_use = ++tick_;
      return Checkout{it->second.sw, true, key, it->second.bytes};
    }
    ++stats_.misses;
  }

  // Compile outside the lock: a cold build must not block other tenants'
  // hits.  make_switch_plan throws on bad specs before anything is shared.
  auto built = std::make_shared<const plan::PlanSwitch>(make_switch_plan(spec),
                                                        mode);
  const std::size_t bytes = approx_switch_bytes(*built);

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(key);
  if (!inserted) {
    // Another thread built and inserted this key first; adopt its entry.
    ++stats_.rebuild_races;
    it->second.last_use = ++tick_;
    return Checkout{it->second.sw, true, key, it->second.bytes};
  }
  if (byte_budget_ == 0) {
    // Caching disabled: hand the freshly built switch out uncached.
    entries_.erase(it);
    return Checkout{std::move(built), false, key, bytes};
  }
  it->second.sw = std::move(built);
  it->second.bytes = bytes;
  it->second.last_use = ++tick_;
  stats_.bytes += bytes;
  stats_.entries = entries_.size();
  // Copy the caller's reference BEFORE evicting: holding it pins this
  // entry's use_count above 1, so eviction can reclaim older entries but
  // never the one being handed out.
  Checkout out{it->second.sw, false, key, bytes};
  evict_locked();
  return out;
}

void PlanCache::evict_locked() {
  while (stats_.bytes > byte_budget_ && entries_.size() > 1) {
    auto victim = entries_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      // use_count == 1 means only the cache holds it: safe to drop without
      // recompiling under a running campaign.
      if (it->second.sw.use_count() == 1 && it->second.last_use < oldest) {
        oldest = it->second.last_use;
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // everything in use; overshoot
    stats_.bytes -= victim->second.bytes;
    entries_.erase(victim);
    ++stats_.evictions;
  }
  stats_.entries = entries_.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PlanCache::set_byte_budget(std::size_t budget) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = budget;
  if (byte_budget_ > 0) evict_locked();
}

std::size_t PlanCache::byte_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return byte_budget_;
}

}  // namespace pcs::serve
