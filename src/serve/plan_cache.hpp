// Shared switch/plan cache for the serving daemon, keyed by
// SwitchSpec::digest(exec).  Tenants asking for the same (family, shape,
// faults, exec engine) share ONE compiled SwitchPlan and its analysis
// tables behind a single plan::PlanSwitch -- PlanExecutor::route /
// route_batch are const with per-call scratch (the only mutable member is
// an atomic safety counter), so one instance serves any number of
// concurrent campaigns.
//
// Entries are ref-counted via shared_ptr: eviction drops the cache's
// reference, never an in-use tenant's -- a campaign holding a checkout
// keeps its switch alive however the cache churns.  Eviction is LRU by a
// logical tick under a byte budget (an *estimate* of the plan + analysis
// footprint; see approx_switch_bytes), and entries still checked out are
// skipped -- the budget can transiently overshoot rather than strand a
// running campaign's plan or recompile it seconds later.
//
// Concurrency: the map and stats sit behind one mutex, but plan
// COMPILATION runs outside it -- a cold n=2^16 compile must not stall every
// other tenant's hit path.  Two threads missing the same key concurrently
// both compile; the loser adopts the winner's entry and its build is
// discarded (counted in stats().rebuild_races).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "plan/plan_analysis.hpp"
#include "plan/plan_switch.hpp"
#include "switch/make_switch.hpp"

namespace pcs::serve {

/// Deterministic estimate of the resident footprint of a compiled switch:
/// the plan's wiring/readout/fast-path tables plus a fixed multiplier for
/// the executor's analysis tables (dense gather sources mirror the wiring).
std::size_t approx_switch_bytes(const plan::PlanSwitch& sw);

class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Concurrent misses on one key: builds discarded in favor of the
    /// first-inserted entry.
    std::uint64_t rebuild_races = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;  ///< estimated resident bytes of cached entries
  };

  struct Checkout {
    std::shared_ptr<const plan::PlanSwitch> sw;
    bool hit = false;
    std::uint64_t key = 0;      ///< SwitchSpec::digest(exec)
    std::size_t bytes = 0;      ///< this entry's footprint estimate
  };

  /// `byte_budget` bounds the estimated bytes of cached entries; 0 means
  /// "cache nothing" (every checkout compiles, for A/B runs).
  explicit PlanCache(std::size_t byte_budget);

  /// Return the shared switch for `spec` under engine `mode`, compiling on
  /// miss.  Throws ContractViolation for specs that cannot compile (unknown
  /// family, bad shape) -- nothing is inserted on throw.
  Checkout checkout(const SwitchSpec& spec, plan::ExecMode mode);

  Stats stats() const;

  /// Validated live update (SIGHUP reload).  Shrinking evicts immediately
  /// (LRU, in-use entries skipped).
  void set_byte_budget(std::size_t budget);
  std::size_t byte_budget() const;

 private:
  struct Entry {
    std::shared_ptr<const plan::PlanSwitch> sw;
    std::size_t bytes = 0;
    std::uint64_t last_use = 0;  ///< logical tick of the latest checkout
  };

  /// Drop LRU entries (use_count == 1, i.e. cache-only) until within
  /// budget or nothing is evictable.  Caller holds mu_.
  void evict_locked();

  mutable std::mutex mu_;
  std::size_t byte_budget_;
  std::uint64_t tick_ = 0;
  std::map<std::uint64_t, Entry> entries_;
  Stats stats_;
};

}  // namespace pcs::serve
