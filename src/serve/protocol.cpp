#include "serve/protocol.hpp"

#include <bit>
#include <cstring>

#include "util/assert.hpp"

namespace pcs::serve {

namespace {

// --- little-endian primitive writers ------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  PCS_REQUIRE(s.size() < kMaxFrameBytes, "protocol string too large: " << s.size());
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// --- strict bounded reader ----------------------------------------------

class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] |
                                                 (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t len = u32();
    PCS_REQUIRE(len <= size_ - pos_,
                "protocol string length " << len << " exceeds remaining "
                                          << (size_ - pos_) << " bytes");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }
  void expect_done() const {
    PCS_REQUIRE(pos_ == size_, "protocol frame has " << (size_ - pos_)
                                                     << " trailing bytes");
  }

 private:
  void need(std::size_t k) const {
    PCS_REQUIRE(k <= size_ - pos_, "protocol frame truncated: need "
                                       << k << " bytes, have " << (size_ - pos_));
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Start a frame: length placeholder + header; finish() backpatches the
/// length prefix once the body is in.
std::vector<std::uint8_t> begin_frame(MsgType type) {
  std::vector<std::uint8_t> out;
  put_u32(out, 0);  // patched by finish_frame
  put_u16(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  return out;
}

std::vector<std::uint8_t> finish_frame(std::vector<std::uint8_t> out) {
  const std::size_t payload = out.size() - 4;
  PCS_REQUIRE(payload <= kMaxFrameBytes, "frame payload too large: " << payload);
  const auto len = static_cast<std::uint32_t>(payload);
  for (int i = 0; i < 4; ++i) out[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(len >> (8 * i));
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_campaign_request(const CampaignRequest& req) {
  PCS_REQUIRE(!req.tenant.empty(), "CampaignRequest.tenant must be non-empty");
  auto out = begin_frame(MsgType::kCampaignRequest);
  put_str(out, req.tenant);
  put_str(out, req.family);
  put_u32(out, req.n);
  put_u32(out, req.m);
  put_f64(out, req.beta);
  put_str(out, req.faults);
  put_str(out, req.arrival);
  put_f64(out, req.load);
  put_u64(out, req.seed);
  put_u32(out, req.lanes);
  put_u32(out, req.queue_depth);
  put_str(out, req.policy);
  put_u32(out, req.warmup_epochs);
  put_u32(out, req.measure_epochs);
  put_u32(out, req.drain_epochs_max);
  put_str(out, req.pattern);
  put_str(out, req.injection);
  put_str(out, req.topology);
  put_str(out, req.route);
  put_u32(out, req.epochs_in_flight);
  put_u32(out, req.deflect_max);
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_campaign_reply(const CampaignReply& rep) {
  auto out = begin_frame(MsgType::kCampaignReply);
  put_u8(out, static_cast<std::uint8_t>(rep.status));
  put_str(out, rep.reason);
  put_u8(out, rep.cache_hit ? 1 : 0);
  put_u8(out, rep.drained ? 1 : 0);
  put_u8(out, rep.saturated ? 1 : 0);
  put_u64(out, rep.offered);
  put_u64(out, rep.delivered);
  put_u64(out, rep.dropped);
  put_u64(out, rep.residual);
  put_f64(out, rep.delivery_rate);
  put_f64(out, rep.mean_latency_epochs);
  put_u64(out, rep.spec_digest);
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_scrape_request() {
  return finish_frame(begin_frame(MsgType::kScrapeRequest));
}

std::vector<std::uint8_t> encode_scrape_reply(const ScrapeReply& rep) {
  auto out = begin_frame(MsgType::kScrapeReply);
  put_str(out, rep.json);
  return finish_frame(std::move(out));
}

Frame decode_payload(const std::uint8_t* data, std::size_t size) {
  Cursor c(data, size);
  const std::uint16_t version = c.u16();
  PCS_REQUIRE(version == kProtocolVersion,
              "protocol version mismatch: got " << version << ", expected "
                                                << kProtocolVersion);
  const std::uint8_t raw_type = c.u8();
  Frame f;
  switch (raw_type) {
    case static_cast<std::uint8_t>(MsgType::kCampaignRequest): {
      f.type = MsgType::kCampaignRequest;
      CampaignRequest r;
      r.tenant = c.str();
      PCS_REQUIRE(!r.tenant.empty(), "CampaignRequest.tenant must be non-empty");
      r.family = c.str();
      r.n = c.u32();
      r.m = c.u32();
      r.beta = c.f64();
      r.faults = c.str();
      r.arrival = c.str();
      r.load = c.f64();
      r.seed = c.u64();
      r.lanes = c.u32();
      r.queue_depth = c.u32();
      r.policy = c.str();
      r.warmup_epochs = c.u32();
      r.measure_epochs = c.u32();
      r.drain_epochs_max = c.u32();
      r.pattern = c.str();
      r.injection = c.str();
      r.topology = c.str();
      r.route = c.str();
      r.epochs_in_flight = c.u32();
      r.deflect_max = c.u32();
      f.campaign_request = std::move(r);
      break;
    }
    case static_cast<std::uint8_t>(MsgType::kCampaignReply): {
      f.type = MsgType::kCampaignReply;
      CampaignReply r;
      const std::uint8_t st = c.u8();
      PCS_REQUIRE(st <= static_cast<std::uint8_t>(Status::kError),
                  "unknown CampaignReply status " << int(st));
      r.status = static_cast<Status>(st);
      r.reason = c.str();
      r.cache_hit = c.u8() != 0;
      r.drained = c.u8() != 0;
      r.saturated = c.u8() != 0;
      r.offered = c.u64();
      r.delivered = c.u64();
      r.dropped = c.u64();
      r.residual = c.u64();
      r.delivery_rate = c.f64();
      r.mean_latency_epochs = c.f64();
      r.spec_digest = c.u64();
      f.campaign_reply = std::move(r);
      break;
    }
    case static_cast<std::uint8_t>(MsgType::kScrapeRequest): {
      f.type = MsgType::kScrapeRequest;
      break;
    }
    case static_cast<std::uint8_t>(MsgType::kScrapeReply): {
      f.type = MsgType::kScrapeReply;
      ScrapeReply r;
      r.json = c.str();
      f.scrape_reply = std::move(r);
      break;
    }
    default:
      PCS_REQUIRE(false, "unknown protocol message type " << int(raw_type));
  }
  c.expect_done();
  return f;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t size) {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // doesn't grow the buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

std::optional<Frame> FrameReader::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  PCS_REQUIRE(len <= kMaxFrameBytes, "frame length prefix " << len
                                                            << " exceeds cap "
                                                            << kMaxFrameBytes);
  if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  Frame f = decode_payload(buf_.data() + pos_ + 4, len);
  pos_ += 4 + static_cast<std::size_t>(len);
  return f;
}

}  // namespace pcs::serve
