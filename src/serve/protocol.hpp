// The serving daemon's wire protocol: length-prefixed frames over a
// Unix-domain stream socket, deterministic little-endian encode/decode.
//
// Frame layout:
//
//   u32 payload_len | payload
//   payload = u16 version (kProtocolVersion) | u8 type (MsgType) | body
//
// Bodies are fixed-order field sequences (strings are u32 length + bytes,
// doubles are bit_cast to u64), so encoding the same message twice yields
// identical bytes -- the loadgen and the CI smoke rely on that.  Decoding is
// strict: a frame with a bad version, an unknown type, a truncated body, or
// trailing bytes throws pcs::ContractViolation; the daemon catches per
// connection and drops the peer rather than guessing.
//
// The protocol deliberately carries *campaign requests*, not raw packets:
// one round trip = one warmup/measure/drain campaign against a cached plan,
// mirroring how the batch CLI's unit of work becomes the serving unit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pcs::serve {

// v2 appended the composable-traffic fields (pattern, injection) to
// CampaignRequest; v3 appended the fabric-campaign fields (topology, route,
// epochs_in_flight, deflect_max).  Older decoders reject newer frames
// outright rather than misparse them, which is the failure mode we want.
inline constexpr std::uint16_t kProtocolVersion = 3;

/// Hard cap on a frame's payload; anything larger is a corrupt or hostile
/// length prefix (a scrape of a huge registry stays well under this).
inline constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

enum class MsgType : std::uint8_t {
  kCampaignRequest = 1,
  kCampaignReply = 2,
  kScrapeRequest = 3,
  kScrapeReply = 4,
};

/// Sentinel for "use the daemon's configured default" in the u32 knobs
/// below (warmup/measure/drain/lanes/queue_depth).
inline constexpr std::uint32_t kUseServerDefault = 0xffffffffu;

/// One tenant's ask: run a campaign of this shape at this load.  Fields
/// left at their sentinel defer to the daemon's (hot-reloadable) base
/// config, so a loadgen that only names a tenant follows server policy.
struct CampaignRequest {
  std::string tenant;        ///< admission-control bucket; must be non-empty
  std::string family;        ///< "" = server default ("revsort", ...)
  std::uint32_t n = 0;       ///< 0 = server default
  std::uint32_t m = 0;       ///< 0 = server default
  double beta = -1.0;        ///< < 0 = server default
  std::string faults;        ///< "stage:chip,..." ("" = server default)
  std::string arrival;       ///< "" = server default
  double load = -1.0;        ///< offered load; < 0 = server default
  std::uint64_t seed = 1;
  std::uint32_t lanes = kUseServerDefault;
  std::uint32_t queue_depth = kUseServerDefault;
  std::string policy;        ///< "" = server default
  std::uint32_t warmup_epochs = kUseServerDefault;
  std::uint32_t measure_epochs = kUseServerDefault;
  std::uint32_t drain_epochs_max = kUseServerDefault;
  std::string pattern;       ///< "" = server default (derived from arrival)
  std::string injection;     ///< "" = server default (derived from arrival)
  // --- fabric campaigns (v3) --------------------------------------------
  // `topology` selects a multi-hop fabric campaign the same way the config
  // key does: "" inherits the server's topology (usually "", meaning the
  // single-switch path); the u32 knobs use kUseServerDefault as their
  // inherit sentinel so an explicit 0 (e.g. deflect_max=0, "never deflect")
  // stays expressible.
  std::string topology;      ///< "" = server default
  std::string route;         ///< "" = server default (deterministic|adaptive)
  std::uint32_t epochs_in_flight = kUseServerDefault;
  std::uint32_t deflect_max = kUseServerDefault;
};

enum class Status : std::uint8_t {
  kOk = 0,        ///< campaign admitted, ran, stats below are valid
  kRejected = 1,  ///< admission refused; `reason` says why
  kError = 2,     ///< admitted but failed (bad shape, contract violation)
};

struct CampaignReply {
  Status status = Status::kOk;
  std::string reason;  ///< empty on kOk
  bool cache_hit = false;
  bool drained = false;
  bool saturated = false;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t residual = 0;
  double delivery_rate = 0.0;
  double mean_latency_epochs = 0.0;
  std::uint64_t spec_digest = 0;  ///< the plan-cache key the daemon used
};

struct ScrapeReply {
  std::string json;  ///< MetricsRegistry::to_json of the live registry
};

/// A decoded frame: the type tag plus exactly one engaged body (scrape
/// requests have no body fields).
struct Frame {
  MsgType type;
  std::optional<CampaignRequest> campaign_request;
  std::optional<CampaignReply> campaign_reply;
  std::optional<ScrapeReply> scrape_reply;
};

// --- encode: message -> one whole frame (length prefix included) ---------
std::vector<std::uint8_t> encode_campaign_request(const CampaignRequest& req);
std::vector<std::uint8_t> encode_campaign_reply(const CampaignReply& rep);
std::vector<std::uint8_t> encode_scrape_request();
std::vector<std::uint8_t> encode_scrape_reply(const ScrapeReply& rep);

/// Decode one frame's PAYLOAD (the bytes after the u32 length prefix).
/// Throws pcs::ContractViolation on version/type/bounds violations.
Frame decode_payload(const std::uint8_t* data, std::size_t size);

/// Incremental frame extraction for stream reads: feed() appends raw bytes,
/// next() pops one complete decoded frame (std::nullopt until a whole frame
/// has arrived).  Throws on a length prefix exceeding kMaxFrameBytes and on
/// payload decode errors; the buffer is then poisoned and the connection
/// should be dropped.
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t size);
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t pending_bytes() const noexcept { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix (compacted lazily)
};

}  // namespace pcs::serve
