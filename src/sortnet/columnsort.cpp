#include "sortnet/columnsort.hpp"

#include "sortnet/mesh_ops.hpp"
#include "util/assert.hpp"

namespace pcs::sortnet {

BitMatrix cm_to_rm_reshape(const BitMatrix& m) {
  return BitMatrix::from_row_major(m.to_col_major(), m.rows(), m.cols());
}

BitMatrix rm_to_cm_reshape(const BitMatrix& m) {
  // new.to_col_major() must equal m.to_row_major(); build by inverting the
  // column-major read: entry at column-major position x of the new matrix is
  // bit x of the old row-major sequence.
  const std::size_t r = m.rows();
  const std::size_t s = m.cols();
  BitVec rm = m.to_row_major();
  BitMatrix out(r, s);
  for (std::size_t x = 0; x < r * s; ++x) {
    out.set(x % r, x / r, rm.get(x));
  }
  return out;
}

void columnsort_algorithm2(BitMatrix& m) {
  PCS_REQUIRE(m.cols() > 0 && m.rows() % m.cols() == 0,
              "Columnsort requires s to divide r");
  sort_columns(m);
  m = cm_to_rm_reshape(m);
  sort_columns(m);
}

std::size_t algorithm2_epsilon_bound(std::size_t cols) {
  return (cols - 1) * (cols - 1);
}

void columnsort_shift_sort_unshift(BitMatrix& m) {
  const std::size_t r = m.rows();
  const std::size_t s = m.cols();
  const std::size_t shift = r / 2;
  // Extended column-major sequence: `shift` ones (elements that sort before
  // everything in a nonincreasing order), the data, `shift` zeros.  The
  // widened matrix has s+1 columns; its column c is the slice
  // [c*r, (c+1)*r) of this sequence.
  BitVec data = m.to_col_major();
  BitVec ext(shift + r * s + (r - shift));
  for (std::size_t i = 0; i < shift; ++i) ext.set(i, true);
  for (std::size_t i = 0; i < r * s; ++i) ext.set(shift + i, data.get(i));
  BitMatrix wide(r, s + 1);
  for (std::size_t x = 0; x < r * (s + 1); ++x) wide.set(x % r, x / r, ext.get(x));
  sort_columns(wide);
  BitVec sorted_ext = wide.to_col_major();
  BitMatrix out(r, s);
  for (std::size_t x = 0; x < r * s; ++x) {
    out.set(x % r, x / r, sorted_ext.get(shift + x));
  }
  m = out;
}

void columnsort_full(BitMatrix& m) {
  PCS_REQUIRE(m.cols() > 0 && m.rows() % m.cols() == 0,
              "Columnsort requires s to divide r");
  sort_columns(m);                 // step 1
  m = cm_to_rm_reshape(m);         // step 2
  sort_columns(m);                 // step 3
  m = rm_to_cm_reshape(m);         // step 4
  sort_columns(m);                 // step 5
  columnsort_shift_sort_unshift(m);  // steps 6-8
}

bool columnsort_shape_ok(std::size_t rows, std::size_t cols) {
  if (cols == 0 || rows % cols != 0) return false;
  std::size_t d = cols - 1;
  return rows >= 2 * d * d;
}

}  // namespace pcs::sortnet
