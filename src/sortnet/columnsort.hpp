// Columnsort (Leighton) on an r-by-s 0/1 mesh, as used by the paper's second
// multichip switch (Section 5).
//
// Algorithm 2 of the paper is the first three steps of Columnsort:
//   1. fully sort the columns                     (stage-1 chips)
//   2. convert column-major order to row-major    (inter-stage wiring)
//   3. fully sort the columns                     (stage-2 chips)
// Leighton shows the result is (s-1)^2-nearsorted when read in row-major
// order (Theorem 4's prerequisite).
//
// The full eight-step Columnsort (used for the Section 6 hyperconcentrator
// variant) adds the inverse conversion, another column sort, and a
// shift/sort/unshift trio; it fully sorts into column-major order whenever
// r >= 2(s-1)^2.
#pragma once

#include <cstddef>

#include "util/bitmatrix.hpp"

namespace pcs::sortnet {

/// Step 2 of Algorithm 2: the element at row i, column j (column-major
/// position rj + i) moves to row floor((rj+i)/s), column (rj+i) mod s.
/// Equivalently: read the matrix column-major, rewrite it row-major.
BitMatrix cm_to_rm_reshape(const BitMatrix& m);

/// Inverse of cm_to_rm_reshape (Columnsort step 4): read the matrix
/// row-major, rewrite it column-major.
BitMatrix rm_to_cm_reshape(const BitMatrix& m);

/// Algorithm 2 of the paper (Columnsort steps 1-3).  Preconditions: r = rows
/// is a multiple of s = cols (the paper's "s evenly divides r").
void columnsort_algorithm2(BitMatrix& m);

/// The paper's nearsortedness bound for Algorithm 2: epsilon = (s-1)^2.
std::size_t algorithm2_epsilon_bound(std::size_t cols);

/// Columnsort steps 6-8: shift the column-major sequence down by floor(r/2)
/// (padding with 1s before and 0s after, the 0/1 analogues of -inf/+inf for
/// a nonincreasing sort), sort the columns of the widened matrix, unshift.
void columnsort_shift_sort_unshift(BitMatrix& m);

/// All eight Columnsort steps.  Fully sorts the matrix into *column-major*
/// order whenever r >= 2(s-1)^2 (and s divides r).
void columnsort_full(BitMatrix& m);

/// True iff the shape satisfies Columnsort's full-sort requirement
/// r >= 2(s-1)^2 with s dividing r.
bool columnsort_shape_ok(std::size_t rows, std::size_t cols);

}  // namespace pcs::sortnet
