#include "sortnet/comparator_net.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace pcs::sortnet {

ComparatorNetwork::ComparatorNetwork(std::size_t n, std::vector<Comparator> comps)
    : n_(n), stages_(0), comps_(std::move(comps)) {
  PCS_REQUIRE(n > 0, "ComparatorNetwork size");
  for (const Comparator& c : comps_) {
    PCS_REQUIRE(c.lo < n && c.hi < n && c.lo != c.hi, "comparator endpoints");
    stages_ = std::max<std::size_t>(stages_, c.stage + 1);
  }
}

ComparatorNetwork ComparatorNetwork::bitonic_sorter(std::size_t n) {
  PCS_REQUIRE(is_pow2(n), "bitonic_sorter needs power-of-two n");
  std::vector<Comparator> comps;
  std::uint32_t stage = 0;
  for (std::size_t k = 2; k <= n; k <<= 1) {
    for (std::size_t j = k >> 1; j > 0; j >>= 1) {
      for (std::size_t i = 0; i < n; ++i) {
        std::size_t l = i ^ j;
        if (l <= i) continue;
        // Overall *nonincreasing* order: blocks with (i & k) == 0 place the
        // larger value at the smaller index.
        bool ones_first_block = (i & k) == 0;
        Comparator c;
        c.stage = stage;
        if (ones_first_block) {
          c.lo = static_cast<std::uint32_t>(i);
          c.hi = static_cast<std::uint32_t>(l);
        } else {
          c.lo = static_cast<std::uint32_t>(l);
          c.hi = static_cast<std::uint32_t>(i);
        }
        comps.push_back(c);
      }
      ++stage;
    }
  }
  return ComparatorNetwork(n, std::move(comps));
}

ComparatorNetwork ComparatorNetwork::odd_even_mergesort(std::size_t n) {
  PCS_REQUIRE(is_pow2(n), "odd_even_mergesort needs power-of-two n");
  std::vector<Comparator> comps;
  std::uint32_t stage = 0;
  for (std::size_t p = 1; p < n; p <<= 1) {
    for (std::size_t k = p; k >= 1; k >>= 1) {
      for (std::size_t j = k % p; j + k < n; j += 2 * k) {
        for (std::size_t i = 0; i < std::min(k, n - j - k); ++i) {
          std::size_t a = i + j;
          std::size_t b = i + j + k;
          if (a / (2 * p) == b / (2 * p)) {
            // Larger value to the smaller index: nonincreasing output.
            comps.push_back(Comparator{static_cast<std::uint32_t>(a),
                                       static_cast<std::uint32_t>(b), stage});
          }
        }
      }
      ++stage;
      if (k == 1) break;  // k is unsigned; avoid wrap
    }
  }
  return ComparatorNetwork(n, std::move(comps));
}

ComparatorNetwork ComparatorNetwork::odd_even_transposition(std::size_t n,
                                                            std::size_t rounds) {
  std::vector<Comparator> comps;
  for (std::size_t t = 0; t < rounds; ++t) {
    for (std::size_t i = t % 2; i + 1 < n; i += 2) {
      comps.push_back(Comparator{static_cast<std::uint32_t>(i),
                                 static_cast<std::uint32_t>(i + 1),
                                 static_cast<std::uint32_t>(t)});
    }
  }
  return ComparatorNetwork(n, std::move(comps));
}

ComparatorNetwork ComparatorNetwork::truncated(std::size_t stages) const {
  std::vector<Comparator> comps;
  for (const Comparator& c : comps_) {
    if (c.stage < stages) comps.push_back(c);
  }
  return ComparatorNetwork(n_, std::move(comps));
}

BitVec ComparatorNetwork::apply(const BitVec& bits) const {
  PCS_REQUIRE(bits.size() == n_, "ComparatorNetwork::apply width");
  BitVec v = bits;
  for (const Comparator& c : comps_) {
    bool a = v.get(c.lo);
    bool b = v.get(c.hi);
    v.set(c.lo, a || b);
    v.set(c.hi, a && b);
  }
  return v;
}

void ComparatorNetwork::apply_labels(std::vector<std::int32_t>& slots) const {
  PCS_REQUIRE(slots.size() == n_, "ComparatorNetwork::apply_labels width");
  for (const Comparator& c : comps_) {
    if (slots[c.lo] < 0 && slots[c.hi] >= 0) {
      std::swap(slots[c.lo], slots[c.hi]);
    }
  }
}

bool ComparatorNetwork::sorts_all_01(bool exhaustive) const {
  if (exhaustive) {
    PCS_REQUIRE(n_ <= 20, "exhaustive 0/1 check limited to n <= 20");
    for (std::uint64_t pattern = 0; pattern < (std::uint64_t{1} << n_); ++pattern) {
      BitVec in(n_);
      for (std::size_t i = 0; i < n_; ++i) in.set(i, (pattern >> i) & 1u);
      if (!apply(in).is_sorted_nonincreasing()) return false;
    }
    return true;
  }
  Rng rng(0xC0FFEE);
  for (int t = 0; t < 2000; ++t) {
    BitVec in = rng.bernoulli_bits(n_, rng.uniform01());
    if (!apply(in).is_sorted_nonincreasing()) return false;
  }
  // Structured block patterns at every weight.
  for (std::size_t k = 0; k <= n_; ++k) {
    BitVec tail(n_);
    for (std::size_t i = 0; i < k; ++i) tail.set(n_ - 1 - i, true);
    if (!apply(tail).is_sorted_nonincreasing()) return false;
  }
  return true;
}

}  // namespace pcs::sortnet
