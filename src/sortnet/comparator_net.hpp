// Comparator networks on 0/1 sequences: the "epsilon-nearsorters based on
// networks other than the two-dimensional mesh" of the paper's closing
// question (Section 6).
//
// A comparator (lo, hi) oriented ones-first moves the larger bit to the
// lower index: lo' = lo OR hi, hi' = lo AND hi -- one gate delay per
// comparator stage on the valid bits, two on a steered payload.  We provide
// Batcher's bitonic sorter and odd-even merge sort, the odd-even
// transposition (brick) network, and truncation to a stage prefix, which
// turns a sorter into a nearsorter that Lemma 2 converts into a partial
// concentrator (see switch/comparator_switch.*).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace pcs::sortnet {

struct Comparator {
  std::uint32_t lo;     ///< receives the larger bit (ones-first order)
  std::uint32_t hi;     ///< receives the smaller bit
  std::uint32_t stage;  ///< parallel stage index (comparators in a stage are disjoint)
};

class ComparatorNetwork {
 public:
  ComparatorNetwork(std::size_t n, std::vector<Comparator> comps);

  /// Batcher's bitonic sorting network; n must be a power of two.
  /// Stages: lg n (lg n + 1) / 2.
  static ComparatorNetwork bitonic_sorter(std::size_t n);

  /// Batcher's odd-even merge sorting network; n must be a power of two.
  /// Same stage count as bitonic, fewer comparators.
  static ComparatorNetwork odd_even_mergesort(std::size_t n);

  /// `rounds` rounds of odd-even transposition (the brick network); a full
  /// sorter needs n rounds, a prefix is a (weak) nearsorter.
  static ComparatorNetwork odd_even_transposition(std::size_t n, std::size_t rounds);

  /// The prefix of this network consisting of stages [0, stages).
  ComparatorNetwork truncated(std::size_t stages) const;

  std::size_t n() const noexcept { return n_; }
  std::size_t comparator_count() const noexcept { return comps_.size(); }
  std::size_t stage_count() const noexcept { return stages_; }
  const std::vector<Comparator>& comparators() const noexcept { return comps_; }

  /// Apply to a 0/1 sequence (ones move toward index 0).
  BitVec apply(const BitVec& bits) const;

  /// Apply to labeled slots: at each comparator an occupied hi slot falls
  /// through to an idle lo slot; two occupied slots keep their places.
  /// Projecting to valid bits commutes with apply().
  void apply_labels(std::vector<std::int32_t>& slots) const;

  /// True iff the network sorts every 0/1 input of every weight (checked
  /// exhaustively over weights with the canonical worst inputs when
  /// exhaustive = false, or over all 2^n inputs when exhaustive = true and
  /// n <= 20).  The 0/1 principle makes the 0/1 check sufficient.
  bool sorts_all_01(bool exhaustive = false) const;

 private:
  std::size_t n_;
  std::size_t stages_;
  std::vector<Comparator> comps_;
};

}  // namespace pcs::sortnet
