#include "sortnet/displacement.hpp"

namespace pcs::sortnet {

std::uint64_t inversion_count(const BitVec& bits) {
  std::uint64_t zeros_seen = 0;
  std::uint64_t inversions = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.get(i)) {
      inversions += zeros_seen;  // this 1 follows every 0 seen so far
    } else {
      ++zeros_seen;
    }
  }
  return inversions;
}

std::uint64_t displacement_mass(const BitVec& bits) {
  const std::size_t k = bits.count();
  std::uint64_t mass = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.get(i)) {
      if (i >= k) mass += i - (k - 1);
    } else {
      if (i < k) mass += k - i;
    }
  }
  return mass;
}

std::size_t misplaced_count(const BitVec& bits) {
  const std::size_t k = bits.count();
  std::size_t misplaced = 0;
  for (std::size_t i = k; i < bits.size(); ++i) misplaced += bits.get(i);
  return misplaced;
}

}  // namespace pcs::sortnet
