// Displacement and inversion metrics for 0/1 sequences: companions to the
// single-number epsilon of nearsort.hpp.
//
// epsilon is the *max* displacement; routing quality also depends on how
// many elements are displaced and by how much in aggregate.  For a 0/1
// sequence the natural aggregate is the inversion count (pairs 0...1 in
// that order), which equals the minimum number of adjacent transpositions
// to sort, and the total displacement mass (sum over misplaced elements of
// their distance past their block).  These feed the analysis benches and
// give the odd-even-transposition control in bench_other_nearsorters its
// quantitative footing (each brick round removes at most n/2 inversions).
#pragma once

#include <cstdint>

#include "util/bitvec.hpp"

namespace pcs::sortnet {

/// Number of inversions: pairs i < j with bits[i] = 0 and bits[j] = 1.
/// Zero iff sorted nonincreasingly.  O(n).
std::uint64_t inversion_count(const BitVec& bits);

/// Total displacement mass: sum over the 1s of how far each sits beyond
/// position k-1, plus sum over the 0s of how far each sits before position
/// k (k = number of 1s).  Zero iff sorted.  O(n).
std::uint64_t displacement_mass(const BitVec& bits);

/// Number of elements that are out of place (1s beyond the first k
/// positions, 0s within them).  Always even counts misplaced 1s = misplaced
/// 0s; this returns the number of misplaced 1s.
std::size_t misplaced_count(const BitVec& bits);

}  // namespace pcs::sortnet
