#include "sortnet/lane_batch.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::sortnet {

namespace {

// In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3).  Note the
// block swaps pair row k's low bits with row k|j's high bits, so in raw bit
// indices this computes the *anti*-transpose a'[w] bit b = a[63-b] bit 63-w.
void transpose64(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      std::uint64_t t = (a[k] ^ (a[k | j] >> j)) & m;
      a[k] ^= t;
      a[k | j] ^= t << j;
    }
  }
}

// Pure bit-index transpose: afterwards word w bit l == old word l bit w.
// Reversing the rows on both sides of the anti-transpose cancels the index
// flips.  Involutive, so the same routine packs BitVec words into
// lane-transposed form and back.
void transpose_lanes(std::uint64_t a[64]) {
  std::reverse(a, a + 64);
  transpose64(a);
  std::reverse(a, a + 64);
}

}  // namespace

LaneBatch::LaneBatch(std::size_t n, std::size_t capacity) : n_(n), width_(n) {
  PCS_REQUIRE(n > 0, "LaneBatch n");
  PCS_REQUIRE(capacity == 0 || capacity >= n,
              "LaneBatch capacity: capacity=" << capacity << " n=" << n);
  const std::size_t slots = capacity == 0 ? n : capacity;
  pos_.assign(ceil_div(slots, kLanes) * kLanes, 0);
  scratch_.assign(pos_.size(), 0);
}

void LaneBatch::load(const std::vector<BitVec>& patterns, std::size_t first,
                     std::size_t count) {
  PCS_REQUIRE(count >= 1 && count <= kLanes,
              "LaneBatch::load lane count: count=" << count << " kLanes=" << kLanes);
  PCS_REQUIRE(first + count <= patterns.size(),
              "LaneBatch::load range: first=" << first << " count=" << count
              << " patterns=" << patterns.size());
  lanes_ = count;
  width_ = n_;
  const std::size_t blocks = ceil_div(n_, kLanes);
  std::uint64_t block[64];
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      if (l < count) {
        const BitVec& p = patterns[first + l];
        PCS_REQUIRE(p.size() == n_, "LaneBatch::load pattern width: pattern has "
                                        << p.size() << " bits, batch is n=" << n_);
        const auto& w = p.words();
        block[l] = b < w.size() ? w[b] : 0;
      } else {
        block[l] = 0;
      }
    }
    transpose_lanes(block);
    std::copy(block, block + kLanes, pos_.begin() + static_cast<std::ptrdiff_t>(b * kLanes));
  }
  // Padded positions past n carry no wire; keep them zero in every lane.
  std::fill(pos_.begin() + static_cast<std::ptrdiff_t>(n_), pos_.end(), 0);
}

BitVec LaneBatch::extract(std::size_t lane) const {
  PCS_REQUIRE(lane < lanes_, "LaneBatch::extract lane");
  PCS_REQUIRE(width_ == n_, "LaneBatch::extract width: width=" << width_
                                                               << " n=" << n_);
  const std::size_t blocks = ceil_div(n_, kLanes);
  std::vector<std::uint64_t> words(blocks, 0);
  std::uint64_t block[64];
  for (std::size_t b = 0; b < blocks; ++b) {
    std::copy(pos_.begin() + static_cast<std::ptrdiff_t>(b * kLanes),
              pos_.begin() + static_cast<std::ptrdiff_t>((b + 1) * kLanes), block);
    transpose_lanes(block);
    words[b] = block[lane];
  }
  return BitVec::from_words(std::move(words), n_);
}

void LaneBatch::store(std::vector<BitVec>& out, std::size_t first) const {
  PCS_REQUIRE(first + lanes_ <= out.size(), "LaneBatch::store range");
  PCS_REQUIRE(width_ == n_, "LaneBatch::store width: width=" << width_
                                                             << " n=" << n_);
  const std::size_t blocks = ceil_div(n_, kLanes);
  std::vector<std::vector<std::uint64_t>> words(
      lanes_, std::vector<std::uint64_t>(blocks, 0));
  std::uint64_t block[64];
  for (std::size_t b = 0; b < blocks; ++b) {
    std::copy(pos_.begin() + static_cast<std::ptrdiff_t>(b * kLanes),
              pos_.begin() + static_cast<std::ptrdiff_t>((b + 1) * kLanes), block);
    transpose_lanes(block);
    for (std::size_t l = 0; l < lanes_; ++l) words[l][b] = block[l];
  }
  for (std::size_t l = 0; l < lanes_; ++l) {
    out[first + l] = BitVec::from_words(std::move(words[l]), n_);
  }
}

void LaneBatch::concentrate_segments(std::size_t seg_len) {
  PCS_REQUIRE(seg_len > 0 && width_ % seg_len == 0,
              "LaneBatch::concentrate_segments seg_len must divide the width");
  const std::size_t depth = ceil_log2(seg_len + 1);
  if (planes_.size() < depth) planes_.assign(depth, 0);
  std::uint64_t* planes = planes_.data();
  for (std::size_t s0 = 0; s0 < width_; s0 += seg_len) {
    // Count the ones per lane: carry-save add each position word into the
    // bit planes (plane b holds bit b of all 64 counters).
    for (std::size_t p = s0; p < s0 + seg_len; ++p) {
      std::uint64_t carry = pos_[p];
      for (std::size_t b = 0; carry != 0; ++b) {
        std::uint64_t t = planes[b] & carry;
        planes[b] ^= carry;
        carry = t;
      }
    }
    // Thermometer write-back: a lane keeps emitting 1s while its counter is
    // nonzero; each emitted word decrements the counters it drew from.
    for (std::size_t p = s0; p < s0 + seg_len; ++p) {
      std::uint64_t nz = 0;
      for (std::size_t b = 0; b < depth; ++b) nz |= planes[b];
      pos_[p] = nz;
      std::uint64_t borrow = nz;
      for (std::size_t b = 0; borrow != 0; ++b) {
        std::uint64_t old = planes[b];
        planes[b] = old ^ borrow;
        borrow &= ~old;
      }
    }
    // Emitting seg_len words drains exactly what was counted; the planes are
    // zero again for the next segment.
  }
}

void LaneBatch::clear_positions(std::size_t lo, std::size_t hi) {
  PCS_REQUIRE(lo <= hi && hi <= width_,
              "LaneBatch::clear_positions range: lo=" << lo << " hi=" << hi
                                                      << " width=" << width_);
  std::fill(pos_.begin() + static_cast<std::ptrdiff_t>(lo),
            pos_.begin() + static_cast<std::ptrdiff_t>(hi), 0);
}

void LaneBatch::permute(const std::vector<std::uint32_t>& dest) {
  PCS_REQUIRE(dest.size() == width_, "LaneBatch::permute size mismatch");
  for (std::size_t i = 0; i < width_; ++i) scratch_[dest[i]] = pos_[i];
  pos_.swap(scratch_);
}

void LaneBatch::gather(const std::vector<std::uint32_t>& src) {
  PCS_REQUIRE(src.size() > 0 && src.size() <= pos_.size(),
              "LaneBatch::gather width: src=" << src.size()
                                              << " capacity=" << pos_.size());
  const std::uint64_t* in = pos_.data();
  std::uint64_t* out = scratch_.data();
  for (std::size_t i = 0; i < src.size(); ++i) out[i] = in[src[i]];
  pos_.swap(scratch_);
  width_ = src.size();
}

void LaneBatch::set_constant(std::size_t pos, std::uint64_t word) {
  PCS_REQUIRE(pos < pos_.size(),
              "LaneBatch::set_constant slot: pos=" << pos
                                                   << " capacity=" << pos_.size());
  pos_[pos] = word;
}

}  // namespace pcs::sortnet
