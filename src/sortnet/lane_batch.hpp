// Lane-transposed batch evaluation of bit-level sorting meshes.
//
// The gate layer's Evaluator::evaluate_lanes showed the idiom: put 64
// independent patterns in the 64 bits of one word and every bitwise op
// prices 64 Monte-Carlo trials at once.  LaneBatch lifts the same idea to
// the mesh substrates the multichip switches are built from.  Storage is
// *lane-transposed*: word p holds, in bit l, pattern l's valid bit at mesh
// position p (the switches' flat column-major wire numbering).  The two
// primitives every switch pipeline reduces to are then word-parallel:
//
//   * concentrate_segments(L): the bit projection of a stable per-chip
//     concentration -- within each contiguous L-wire chip, each lane's ones
//     sink to the low positions.  Implemented as a bit-sliced counter: a
//     carry-save add of every word into ceil(lg(L+1)) bit planes (one
//     counter per lane, all 64 counted at once), then a thermometer
//     write-back that decrements the planes until they drain.
//   * permute(dest): an inter-stage wiring permutation (wiring.hpp) applied
//     as whole-word moves -- 64 patterns rewired per store.
//   * gather(src): the general inbound-link read the fused plan executor
//     uses -- position i of the next arrangement reads position src[i] of
//     the current one.  Unlike permute it needs no bijection (sources may
//     repeat or be skipped) and may change the active width, so
//     width-changing stages (full Columnsort's widened pad stage) batch
//     too.  Constant idle/pad feeds are modelled as sentinel positions past
//     every stage's wires, pinned with set_constant to all-zeros (idle) or
//     all-ones (pad) words.
//
// Labels do not survive bit-slicing, so LaneBatch computes nearsorted valid
// bits, not routings; the label-level batch path lives in the switches'
// route_batch counting kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace pcs::sortnet {

class LaneBatch {
 public:
  /// Patterns carried per word.
  static constexpr std::size_t kLanes = 64;

  /// An engine over meshes of n wire positions.  `capacity` (>= n; 0 means
  /// n) sizes the position store: slots [n, capacity) are addressable by
  /// gather() and set_constant() but lie outside every load/store -- the
  /// fused executor parks its idle/pad sentinel words and the widened
  /// stages' extra wires there.
  explicit LaneBatch(std::size_t n, std::size_t capacity = 0);

  std::size_t positions() const noexcept { return n_; }

  /// Active width of the current arrangement: n after load(), a stage's
  /// wire count after gather() through that stage's link.
  std::size_t width() const noexcept { return width_; }

  /// Number of patterns currently loaded (<= kLanes).
  std::size_t lanes() const noexcept { return lanes_; }

  /// Load patterns[first, first + count) into lanes 0..count-1 (count <=
  /// kLanes; each pattern must have n bits).  Unused lanes are zero and stay
  /// zero through every operation.
  void load(const std::vector<BitVec>& patterns, std::size_t first,
            std::size_t count);

  /// Lane l's current n-bit arrangement, as a BitVec.
  BitVec extract(std::size_t lane) const;

  /// Extract all loaded lanes into out[first, first + lanes()).
  void store(std::vector<BitVec>& out, std::size_t first) const;

  /// For every contiguous segment of seg_len positions (seg_len must divide
  /// the active width), move each lane's ones to the segment's low
  /// positions -- the bit projection of a chip's stable concentration.
  void concentrate_segments(std::size_t seg_len);

  /// Apply a wiring permutation to all lanes: position i's word moves to
  /// position dest[i].  dest must be a bijection on [0, width()).
  void permute(const std::vector<std::uint32_t>& dest);

  /// Read the next arrangement through a gather: position i becomes the
  /// current position src[i] (any slot below capacity, sentinels included).
  /// Not required to be a bijection.  The active width becomes src.size()
  /// (<= capacity); sentinel slots must be re-pinned with set_constant
  /// afterwards, as the gather recycles the position store.
  void gather(const std::vector<std::uint32_t>& src);

  /// Pin one position slot to a constant word across all lanes (all-zeros =
  /// idle feed, all-ones = pad feed).  The slot may lie past the active
  /// width but must be below capacity.
  void set_constant(std::size_t pos, std::uint64_t word);

  /// Zero positions [lo, hi) in every lane: the bit projection of a dead
  /// chip driving its output pins invalid (plan fault execution).
  void clear_positions(std::size_t lo, std::size_t hi);

 private:
  std::size_t n_;
  std::size_t width_;
  std::size_t lanes_ = 0;
  std::vector<std::uint64_t> pos_;      // padded to a whole 64-word block
  std::vector<std::uint64_t> scratch_;  // permute double-buffer
  std::vector<std::uint64_t> planes_;   // bit-sliced counters
};

}  // namespace pcs::sortnet
