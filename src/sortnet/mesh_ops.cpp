#include "sortnet/mesh_ops.hpp"

#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::sortnet {

BitVec sorted_ones_first(const BitVec& bits) {
  BitVec out(bits.size());
  std::size_t ones = bits.count();
  for (std::size_t i = 0; i < ones; ++i) out.set(i, true);
  return out;
}

void sort_columns(BitMatrix& m) {
  for (std::size_t j = 0; j < m.cols(); ++j) {
    std::size_t ones = m.col(j).count();
    for (std::size_t i = 0; i < m.rows(); ++i) m.set(i, j, i < ones);
  }
}

void sort_rows(BitMatrix& m, RowOrder order) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    std::size_t ones = m.row_count(i);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      bool one_here = (order == RowOrder::kOnesFirst) ? (j < ones) : (j >= m.cols() - ones);
      m.set(i, j, one_here);
    }
  }
}

void sort_rows_alternating(BitMatrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    std::size_t ones = m.row_count(i);
    bool ones_first = (i % 2 == 0);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      bool one_here = ones_first ? (j < ones) : (j >= m.cols() - ones);
      m.set(i, j, one_here);
    }
  }
}

void rotate_row_right(BitMatrix& m, std::size_t i, std::size_t amount) {
  PCS_REQUIRE(i < m.rows(), "rotate_row_right row index");
  const std::size_t s = m.cols();
  if (s == 0) return;
  amount %= s;
  if (amount == 0) return;
  BitVec old = m.row(i);
  for (std::size_t j = 0; j < s; ++j) {
    m.set(i, (amount + j) % s, old.get(j));
  }
}

void rotate_rows_bit_reversed(BitMatrix& m) {
  PCS_REQUIRE(is_pow2(m.rows()), "rotate_rows_bit_reversed needs power-of-two rows");
  const unsigned q = exact_log2(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    rotate_row_right(m, i, static_cast<std::size_t>(bit_reverse(i, q)));
  }
}

bool is_row_major_sorted(const BitMatrix& m) {
  return m.to_row_major().is_sorted_nonincreasing();
}

bool is_col_major_sorted(const BitMatrix& m) {
  return m.to_col_major().is_sorted_nonincreasing();
}

}  // namespace pcs::sortnet
