// Primitive operations on 0/1 meshes that the three sorting algorithms
// (Revsort, Shearsort, Columnsort) are composed from.
//
// All sorts order bits *nonincreasingly* (1s first), matching the paper's
// Section 2 definition of a sorted valid-bit sequence: a hyperconcentrator
// chip routes its k valid messages to its first k outputs, so a chip applied
// to a row or column is exactly a 1s-first full sort of that row or column.
#pragma once

#include <cstddef>

#include "util/bitmatrix.hpp"
#include "util/bitvec.hpp"

namespace pcs::sortnet {

/// Direction of a row sort.  Ones-first means 1s at the low column indices.
enum class RowOrder { kOnesFirst, kZerosFirst };

/// Sort one bit sequence nonincreasingly (1s first).  Counting sort; stable
/// order among equal bits is meaningless for plain bits, but the labeled
/// switch simulation mirrors this with a stable partition.
BitVec sorted_ones_first(const BitVec& bits);

/// Sort every column of m so that 1s occupy the smallest row indices.
/// This is what one stage of column-oriented hyperconcentrator chips does.
void sort_columns(BitMatrix& m);

/// Sort every row of m in the given direction.
void sort_rows(BitMatrix& m, RowOrder order = RowOrder::kOnesFirst);

/// Sort rows in alternating directions (even rows 1s-first, odd rows
/// 0s-first) -- the Shearsort row phase.
void sort_rows_alternating(BitMatrix& m);

/// Cyclically rotate row i of m by `amount` places to the right: the element
/// in column j moves to column (amount + j) mod s.  Matches Algorithm 1
/// step 3 with amount = rev(i).
void rotate_row_right(BitMatrix& m, std::size_t i, std::size_t amount);

/// Apply the Revsort rotation to every row: row i rotates right by rev(i),
/// where rev reverses the lg(rows) bits of i.  Precondition: rows is a power
/// of two.
void rotate_rows_bit_reversed(BitMatrix& m);

/// True iff the matrix, read in row-major order, is fully sorted (1s first).
bool is_row_major_sorted(const BitMatrix& m);

/// True iff the matrix, read in column-major order, is fully sorted.
bool is_col_major_sorted(const BitMatrix& m);

}  // namespace pcs::sortnet
