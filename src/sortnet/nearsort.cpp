#include "sortnet/nearsort.hpp"

#include <bit>

namespace pcs::sortnet {

DirtyWindow dirty_window(const BitVec& bits) {
  const std::size_t n = bits.size();
  const auto& words = bits.words();
  const std::size_t rem = n % BitVec::word_bits();
  // First zero: the first word that is not all-ones over its valid bits
  // (the last word's valid bits are its low rem bits).
  std::size_t first_zero = n;
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    const bool partial = rem != 0 && wi + 1 == words.size();
    const std::uint64_t ones =
        partial ? (std::uint64_t{1} << rem) - 1 : ~std::uint64_t{0};
    if (words[wi] != ones) {
      first_zero = wi * BitVec::word_bits() +
                   static_cast<std::size_t>(std::countr_one(words[wi]));
      break;
    }
  }
  // Last one: the highest set bit of the last nonzero word.
  std::size_t last_one = n;  // n means "no ones"
  for (std::size_t wi = words.size(); wi-- > 0;) {
    if (words[wi] != 0) {
      last_one = wi * BitVec::word_bits() + 63 -
                 static_cast<std::size_t>(std::countl_zero(words[wi]));
      break;
    }
  }
  DirtyWindow w{};
  if (last_one == n || first_zero == n || first_zero > last_one) {
    // Already sorted: all 1s precede all 0s; empty dirty window at the seam.
    std::size_t k = bits.count();
    w.clean_ones = k;
    w.dirty_begin = k;
    w.dirty_end = k;
    w.clean_zeros = n - k;
    return w;
  }
  w.clean_ones = first_zero;
  w.dirty_begin = first_zero;
  w.dirty_end = last_one + 1;
  w.clean_zeros = n - (last_one + 1);
  return w;
}

std::size_t min_nearsort_epsilon(const BitVec& bits) {
  const std::size_t n = bits.size();
  const std::size_t k = bits.count();
  if (n == 0) return 0;
  // A 1 belongs in positions [0, k); a 0 belongs in [k, n).  The farthest
  // out-of-place 1 is the last one; the farthest out-of-place 0 is the first.
  std::size_t eps = 0;
  DirtyWindow w = dirty_window(bits);
  if (w.dirty_length() == 0) return 0;
  std::size_t last_one = w.dirty_end - 1;
  std::size_t first_zero = w.dirty_begin;
  if (last_one + 1 > k) eps = last_one + 1 - k;  // displacement of last 1
  if (k > first_zero && k - first_zero > eps) eps = k - first_zero;
  return eps;
}

bool is_nearsorted(const BitVec& bits, std::size_t epsilon) {
  return min_nearsort_epsilon(bits) <= epsilon;
}

bool lemma1_structure_holds(const BitVec& bits, std::size_t epsilon) {
  const std::size_t n = bits.size();
  const std::size_t k = bits.count();
  DirtyWindow w = dirty_window(bits);
  bool ones_ok = w.clean_ones + epsilon >= k;
  bool zeros_ok = w.clean_zeros + epsilon + k >= n;
  bool window_ok = w.dirty_length() <= 2 * epsilon;
  return ones_ok && zeros_ok && window_ok;
}

}  // namespace pcs::sortnet
