#include "sortnet/nearsort.hpp"

namespace pcs::sortnet {

DirtyWindow dirty_window(const BitVec& bits) {
  const std::size_t n = bits.size();
  std::size_t first_zero = n;
  std::size_t last_one = n;  // n means "no ones"
  for (std::size_t i = 0; i < n; ++i) {
    if (bits.get(i)) {
      last_one = i;
    } else if (first_zero == n) {
      first_zero = i;
    }
  }
  DirtyWindow w{};
  if (last_one == n || first_zero == n || first_zero > last_one) {
    // Already sorted: all 1s precede all 0s; empty dirty window at the seam.
    std::size_t k = bits.count();
    w.clean_ones = k;
    w.dirty_begin = k;
    w.dirty_end = k;
    w.clean_zeros = n - k;
    return w;
  }
  w.clean_ones = first_zero;
  w.dirty_begin = first_zero;
  w.dirty_end = last_one + 1;
  w.clean_zeros = n - (last_one + 1);
  return w;
}

std::size_t min_nearsort_epsilon(const BitVec& bits) {
  const std::size_t n = bits.size();
  const std::size_t k = bits.count();
  if (n == 0) return 0;
  // A 1 belongs in positions [0, k); a 0 belongs in [k, n).  The farthest
  // out-of-place 1 is the last one; the farthest out-of-place 0 is the first.
  std::size_t eps = 0;
  DirtyWindow w = dirty_window(bits);
  if (w.dirty_length() == 0) return 0;
  std::size_t last_one = w.dirty_end - 1;
  std::size_t first_zero = w.dirty_begin;
  if (last_one + 1 > k) eps = last_one + 1 - k;  // displacement of last 1
  if (k > first_zero && k - first_zero > eps) eps = k - first_zero;
  return eps;
}

bool is_nearsorted(const BitVec& bits, std::size_t epsilon) {
  return min_nearsort_epsilon(bits) <= epsilon;
}

bool lemma1_structure_holds(const BitVec& bits, std::size_t epsilon) {
  const std::size_t n = bits.size();
  const std::size_t k = bits.count();
  DirtyWindow w = dirty_window(bits);
  bool ones_ok = w.clean_ones + epsilon >= k;
  bool zeros_ok = w.clean_zeros + epsilon + k >= n;
  bool window_ok = w.dirty_length() <= 2 * epsilon;
  return ones_ok && zeros_ok && window_ok;
}

}  // namespace pcs::sortnet
