// Nearsortedness analysis of 0/1 sequences (Section 3 of the paper).
//
// A sequence is epsilon-nearsorted when every element lies within epsilon
// positions of where it belongs in the fully (nonincreasingly) sorted
// sequence.  For 0/1 sequences Lemma 1 characterizes this exactly: a clean
// run of at least k - epsilon 1s, a dirty window of at most 2*epsilon bits,
// and a clean run of at least n - k - epsilon 0s.  These functions compute
// the tight epsilon and the dirty-window decomposition used by the Figure 1
// bench and by the Lemma 1 / Lemma 2 validators in pcs::core.
#pragma once

#include <cstddef>

#include "util/bitvec.hpp"

namespace pcs::sortnet {

/// Decomposition of a 0/1 sequence into clean prefix / dirty window / clean
/// suffix, as drawn in Figure 1.
struct DirtyWindow {
  std::size_t clean_ones;   ///< length of the leading all-1s run
  std::size_t dirty_begin;  ///< first index of the dirty window
  std::size_t dirty_end;    ///< one past the last index of the dirty window
  std::size_t clean_zeros;  ///< length of the trailing all-0s run

  std::size_t dirty_length() const noexcept { return dirty_end - dirty_begin; }
};

/// Compute the dirty-window decomposition.  The dirty window is
/// [first 0, last 1 + 1), empty when the sequence is already sorted.
DirtyWindow dirty_window(const BitVec& bits);

/// The minimal epsilon for which the sequence is epsilon-nearsorted:
/// max over elements of their displacement past the block of equal values in
/// the sorted sequence.  A sorted sequence has epsilon 0.
std::size_t min_nearsort_epsilon(const BitVec& bits);

/// True iff the sequence is epsilon-nearsorted.
bool is_nearsorted(const BitVec& bits, std::size_t epsilon);

/// Lemma 1, forward direction, checked structurally: an epsilon-nearsorted
/// sequence with k ones has clean_ones >= k - epsilon, dirty window length
/// <= 2*epsilon, and clean_zeros >= n - k - epsilon.  Returns true when the
/// structure holds (it must, for any epsilon >= min_nearsort_epsilon).
bool lemma1_structure_holds(const BitVec& bits, std::size_t epsilon);

}  // namespace pcs::sortnet
