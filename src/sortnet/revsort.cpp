#include "sortnet/revsort.hpp"

#include "sortnet/mesh_ops.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::sortnet {

namespace {
void require_square_pow2(const BitMatrix& m) {
  PCS_REQUIRE(m.rows() == m.cols(), "Revsort requires a square matrix");
  PCS_REQUIRE(is_pow2(m.rows()), "Revsort requires power-of-two side");
}
}  // namespace

void revsort_steps123(BitMatrix& m) {
  require_square_pow2(m);
  sort_columns(m);
  sort_rows(m, RowOrder::kOnesFirst);
  rotate_rows_bit_reversed(m);
}

void revsort_algorithm1(BitMatrix& m) {
  revsort_steps123(m);
  sort_columns(m);
}

std::size_t algorithm1_dirty_row_bound(std::size_t side) {
  // n = side^2, so n^(1/4) = sqrt(side); the bound is 2*ceil(sqrt(side)) - 1.
  std::size_t root = isqrt(side);
  if (root * root < side) ++root;
  return 2 * root - 1;
}

std::size_t full_revsort_repetitions(std::size_t side) {
  PCS_REQUIRE(side >= 2, "full_revsort_repetitions side");
  // ceil(lg lg side): side = 2^q, lg side = q, so this is ceil(lg q).
  unsigned q = ceil_log2(side);
  unsigned reps = (q <= 1) ? 1 : ceil_log2(q);
  return reps == 0 ? 1 : reps;
}

std::size_t revsort_repeated(BitMatrix& m, std::size_t reps) {
  require_square_pow2(m);
  for (std::size_t t = 0; t < reps; ++t) revsort_steps123(m);
  sort_columns(m);
  return m.dirty_row_count();
}

}  // namespace pcs::sortnet
