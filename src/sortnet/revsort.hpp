// Revsort (Schnorr–Shamir) on a sqrt(n)-by-sqrt(n) 0/1 mesh, as used by the
// paper's first multichip switch (Section 4).
//
// Algorithm 1 of the paper is the first 1.5 iterations of Revsort:
//   1. fully sort the columns          (stage-1 hyperconcentrator chips)
//   2. fully sort the rows             (stage-2 chips, after a transpose)
//   3. rotate row i right by rev(i)    (hardwired barrel shifters)
//   4. fully sort the columns          (stage-3 chips, after a transpose)
// After Algorithm 1 the matrix has at most 2*ceil(n^(1/4)) - 1 dirty rows
// (Theorem 3's prerequisite), so its row-major read-out is
// O(n^(3/4))-nearsorted.
//
// Section 6 uses the rest of Revsort: repeating steps 1-3 ceil(lg lg sqrt(n))
// times leaves at most eight dirty rows, after which a few Shearsort phases
// complete a full sort (see full_sort_hyper in the switch module).
#pragma once

#include <cstddef>

#include "util/bitmatrix.hpp"

namespace pcs::sortnet {

/// One repetition of Revsort steps 1-3: sort columns, sort rows (1s first),
/// rotate row i right by rev(i).  Precondition: square power-of-two matrix.
void revsort_steps123(BitMatrix& m);

/// Algorithm 1 of the paper: steps 1-3 followed by a final column sort.
/// Precondition: square power-of-two matrix.
void revsort_algorithm1(BitMatrix& m);

/// The paper's bound on dirty rows after Algorithm 1: 2*ceil(n^(1/4)) - 1,
/// where n = side * side is the number of matrix entries.
std::size_t algorithm1_dirty_row_bound(std::size_t side);

/// Number of repetitions of steps 1-3 Section 6 prescribes before handing
/// off to Shearsort: ceil(lg lg sqrt(n)), at least 1.
std::size_t full_revsort_repetitions(std::size_t side);

/// Repeat steps 1-3 `reps` times, then sort columns once.  Section 6 claims
/// at most eight dirty rows remain when reps = full_revsort_repetitions.
/// Returns the number of dirty rows in the result.
std::size_t revsort_repeated(BitMatrix& m, std::size_t reps);

}  // namespace pcs::sortnet
