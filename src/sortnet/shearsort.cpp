#include "sortnet/shearsort.hpp"

#include "sortnet/mesh_ops.hpp"
#include "util/mathutil.hpp"

namespace pcs::sortnet {

void shearsort_phase(BitMatrix& m) {
  sort_rows_alternating(m);
  sort_columns(m);
}

std::size_t shearsort_halved(std::size_t dirty) { return (dirty + 1) / 2; }

void shearsort_finish(BitMatrix& m, std::size_t phases) {
  for (std::size_t t = 0; t < phases; ++t) shearsort_phase(m);
  sort_rows(m, RowOrder::kOnesFirst);
}

std::size_t shearsort_phase_count(std::size_t rows) {
  return rows <= 1 ? 1 : ceil_log2(rows) + 1;
}

void shearsort_row_major(BitMatrix& m) {
  shearsort_finish(m, shearsort_phase_count(m.rows()));
}

}  // namespace pcs::sortnet
