// Shearsort (Scherson–Sen–Shamir) on an r-by-s 0/1 mesh.
//
// Section 6 of the paper finishes the full-Revsort hyperconcentrator with
// "three iterations of the Shearsort algorithm": once at most eight dirty
// rows remain, each phase (alternating-direction row sort, then column sort)
// at least halves the dirty rows, so three phases leave at most one, and a
// final 1s-first row sort completes a row-major full sort.
#pragma once

#include <cstddef>

#include "util/bitmatrix.hpp"

namespace pcs::sortnet {

/// One Shearsort phase: sort rows in alternating directions (even rows
/// 1s-first, odd rows 0s-first), then sort every column.
void shearsort_phase(BitMatrix& m);

/// The 0/1 halving bound: dirty rows after a phase, given `dirty` before.
std::size_t shearsort_halved(std::size_t dirty);

/// Run `phases` Shearsort phases followed by one final 1s-first row sort.
/// If the input had at most 2^phases dirty rows (and was column-sorted),
/// the result is fully sorted in row-major order.
void shearsort_finish(BitMatrix& m, std::size_t phases);

/// Full Shearsort of an arbitrary 0/1 matrix into row-major order:
/// ceil(lg rows) + 1 phases plus the final row sort.
void shearsort_row_major(BitMatrix& m);

/// Number of phases full Shearsort uses on an r-row matrix.
std::size_t shearsort_phase_count(std::size_t rows);

}  // namespace pcs::sortnet
