#include "switch/chip.hpp"

#include <algorithm>
#include <sstream>

namespace pcs::sw {

std::size_t Bom::total_chips() const noexcept {
  std::size_t total = 0;
  for (const ChipSpec& c : items) total += c.count;
  return total;
}

std::size_t Bom::max_pins_per_chip() const noexcept {
  std::size_t best = 0;
  for (const ChipSpec& c : items) best = std::max(best, c.pins());
  return best;
}

std::size_t Bom::total_chip_area() const noexcept {
  std::size_t area = 0;
  for (const ChipSpec& c : items) area += c.count * c.width * c.width;
  return area;
}

std::string chip_kind_name(ChipKind kind) {
  switch (kind) {
    case ChipKind::kHyperconcentrator:
      return "hyperconcentrator";
    case ChipKind::kBarrelShifter:
      return "barrel-shifter";
  }
  return "unknown";
}

std::string Bom::to_string() const {
  std::ostringstream os;
  for (const ChipSpec& c : items) {
    os << c.count << " x " << c.width << "-wide " << chip_kind_name(c.kind) << " ("
       << c.data_pins << " data pins";
    if (c.control_pins > 0) os << " + " << c.control_pins << " hardwired control";
    os << ")\n";
  }
  return os.str();
}

}  // namespace pcs::sw
