// Chip and board inventory records: the bill of materials a switch design
// implies.  The cost module turns these into the pin counts, chip counts,
// board counts, areas, and volumes of Table 1 and Figures 3, 4, 6, 7.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pcs::sw {

enum class ChipKind : std::uint8_t {
  kHyperconcentrator,  ///< w-by-w hyperconcentrator (Theta(w^2) area)
  kBarrelShifter,      ///< w-bit barrel shifter (Theta(w^2) area)
};

/// One line item of a bill of materials.
struct ChipSpec {
  ChipKind kind;
  std::size_t width;         ///< I/O width w (wires in = wires out = w)
  std::size_t data_pins;     ///< 2w for both chip kinds
  std::size_t control_pins;  ///< hardwired shift bits on barrel shifters
  std::size_t count;         ///< how many identical chips of this spec

  std::size_t pins() const noexcept { return data_pins + control_pins; }
};

struct Bom {
  std::vector<ChipSpec> items;

  std::size_t total_chips() const noexcept;
  std::size_t max_pins_per_chip() const noexcept;
  /// Sum over chips of their Theta(w^2) areas, in wire-pitch^2 units.
  std::size_t total_chip_area() const noexcept;
  std::string to_string() const;
};

/// Human-readable name of a chip kind.
std::string chip_kind_name(ChipKind kind);

}  // namespace pcs::sw
