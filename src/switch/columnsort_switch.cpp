#include "switch/columnsort_switch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "hyper/hyperconcentrator.hpp"
#include "sortnet/columnsort.hpp"
#include "sortnet/lane_batch.hpp"
#include "switch/label_mesh.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/parallel.hpp"

namespace pcs::sw {

ColumnsortSwitch::ColumnsortSwitch(std::size_t r, std::size_t s, std::size_t m)
    : r_(r), s_(s), n_(r * s), m_(m) {
  PCS_REQUIRE(r > 0 && s > 0, "ColumnsortSwitch shape: r=" << r << " s=" << s);
  PCS_REQUIRE(r % s == 0,
              "ColumnsortSwitch requires s to divide r: r=" << r << " s=" << s);
  PCS_REQUIRE(m >= 1 && m <= n_,
              "ColumnsortSwitch m range: m=" << m << " n=" << n_ << " (r=" << r
              << " s=" << s << ")");
  stage1_to_2_ = cm_to_rm_wiring(r_, s_);
  readout_ = row_major_readout_wiring(r_, s_);
}

ColumnsortSwitch ColumnsortSwitch::from_beta(std::size_t n, double beta, std::size_t m) {
  PCS_REQUIRE(is_pow2(n), "from_beta requires power-of-two n");
  PCS_REQUIRE(beta >= 0.5 && beta <= 1.0, "from_beta requires 1/2 <= beta <= 1");
  const unsigned lgn = exact_log2(n);
  // r = 2^e with e the nearest integer to beta * lg n, clamped so that
  // s = 2^(lg n - e) divides r, i.e. lg n - e <= e.
  auto e = static_cast<unsigned>(std::lround(beta * lgn));
  unsigned e_min = (lgn + 1) / 2;
  if (e < e_min) e = e_min;
  if (e > lgn) e = lgn;
  const std::size_t r = std::size_t{1} << e;
  const std::size_t s = n / r;
  return ColumnsortSwitch(r, s, m);
}

double ColumnsortSwitch::beta() const {
  if (n_ <= 1) return 1.0;
  return std::log2(static_cast<double>(r_)) / std::log2(static_cast<double>(n_));
}

std::size_t ColumnsortSwitch::epsilon_bound() const {
  return sortnet::algorithm2_epsilon_bound(s_);
}

SwitchRouting ColumnsortSwitch::finish_row_major(
    const std::vector<std::int32_t>& row_major) const {
  SwitchRouting out;
  out.output_of_input.assign(n_, -1);
  out.input_of_output.assign(m_, -1);
  for (std::size_t pos = 0; pos < m_; ++pos) {
    std::int32_t src = row_major[pos];
    if (src >= 0) {
      out.input_of_output[pos] = src;
      out.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(pos);
    }
  }
  return out;
}

SwitchRouting ColumnsortSwitch::route(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "ColumnsortSwitch::route width: pattern has "
                                      << valid.size() << " bits, switch has n=" << n_);
  LabelMesh mesh = LabelMesh::from_col_major_valid(valid, r_, s_);
  mesh.concentrate_columns();  // stage 1
  mesh.cm_to_rm_reshape();     // inter-stage wiring
  mesh.concentrate_columns();  // stage 2
  return finish_row_major(mesh.to_row_major());
}

SwitchRouting ColumnsortSwitch::route_via_wiring(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "ColumnsortSwitch::route_via_wiring width");
  // Input x drives stage-1 chip x / r, pin x % r: flat wire index x.
  std::vector<std::int32_t> wires(n_, hyper::kIdle);
  for (std::size_t x = 0; x < n_; ++x) {
    if (valid.get(x)) wires[x] = static_cast<std::int32_t>(x);
  }
  auto concentrate_chips = [&](std::vector<std::int32_t>& w) {
    for (std::size_t chip = 0; chip < s_; ++chip) {
      std::vector<std::int32_t> slice(
          w.begin() + static_cast<std::ptrdiff_t>(chip * r_),
          w.begin() + static_cast<std::ptrdiff_t>((chip + 1) * r_));
      hyper::stable_concentrate(slice);
      std::copy(slice.begin(), slice.end(),
                w.begin() + static_cast<std::ptrdiff_t>(chip * r_));
    }
  };
  concentrate_chips(wires);                 // stage 1 chips
  wires = stage1_to_2_.apply(wires);        // RM^-1 o CM wiring
  concentrate_chips(wires);                 // stage 2 chips
  // Output taken row-major: entry (i, j) sits on stage-2 chip j, pin i.
  std::vector<std::int32_t> row_major(n_, hyper::kIdle);
  for (std::size_t j = 0; j < s_; ++j) {
    for (std::size_t i = 0; i < r_; ++i) {
      row_major[i * s_ + j] = wires[j * r_ + i];
    }
  }
  return finish_row_major(row_major);
}

std::vector<SwitchRouting> ColumnsortSwitch::route_batch(
    const std::vector<BitVec>& valids) const {
  std::vector<SwitchRouting> out(valids.size());
  parallel_for_chunks(0, valids.size(), [&](std::size_t lo, std::size_t hi) {
    // Single ascending pass over the set bits.  Stage 1 sends the t-th valid
    // of column c to column-major position y = c*r + t; the CM -> RM wiring
    // lands it on stage-2 chip y mod s = t mod s (s divides r), and because
    // y ascends along the pass, so does the stage-2 pin y / s within each
    // chip -- the stable stage-2 rank is just the chip's fill counter.  With
    // read-out position rank*s + chip, the next position a chip emits is a
    // running value bumped by s per message.
    std::vector<std::uint32_t> col_fill(s_);
    std::vector<std::size_t> next_pos(s_);
    for (std::size_t i = lo; i < hi; ++i) {
      const BitVec& valid = valids[i];
      PCS_REQUIRE(valid.size() == n_,
                  "ColumnsortSwitch::route_batch width: pattern " << i << " of "
                  << valids.size() << " has " << valid.size()
                  << " bits, switch has n=" << n_);
      std::fill(col_fill.begin(), col_fill.end(), 0u);
      for (std::size_t j = 0; j < s_; ++j) next_pos[j] = j;
      SwitchRouting& out_i = out[i];
      out_i.output_of_input.assign(n_, -1);
      out_i.input_of_output.assign(m_, -1);
      const auto& words = valid.words();
      for (std::size_t wi = 0; wi < words.size(); ++wi) {
        std::uint64_t w = words[wi];
        while (w != 0) {
          const std::size_t x =
              wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
          w &= w - 1;
          const std::size_t j2 = col_fill[x / r_]++ % s_;
          const std::size_t pos = next_pos[j2];
          next_pos[j2] += s_;
          if (pos < m_) {
            out_i.input_of_output[pos] = static_cast<std::int32_t>(x);
            out_i.output_of_input[x] = static_cast<std::int32_t>(pos);
          }
        }
      }
    }
  });
  return out;
}

std::vector<BitVec> ColumnsortSwitch::nearsorted_batch(
    const std::vector<BitVec>& valids) const {
  std::vector<BitVec> out(valids.size());
  const std::size_t blocks = ceil_div(valids.size(), sortnet::LaneBatch::kLanes);
  parallel_for(0, blocks, [&](std::size_t b) {
    const std::size_t first = b * sortnet::LaneBatch::kLanes;
    const std::size_t count =
        std::min(sortnet::LaneBatch::kLanes, valids.size() - first);
    sortnet::LaneBatch lanes(n_);
    lanes.load(valids, first, count);
    lanes.concentrate_segments(r_);        // stage 1
    lanes.permute(stage1_to_2_.dests());   // RM^-1 o CM wiring
    lanes.concentrate_segments(r_);        // stage 2
    lanes.permute(readout_.dests());       // row-major read-out
    lanes.store(out, first);
  });
  return out;
}

BitVec ColumnsortSwitch::nearsorted_valid_bits(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_,
              "ColumnsortSwitch::nearsorted_valid_bits width: pattern has "
                  << valid.size() << " bits, switch has n=" << n_);
  LabelMesh mesh = LabelMesh::from_col_major_valid(valid, r_, s_);
  mesh.concentrate_columns();
  mesh.cm_to_rm_reshape();
  mesh.concentrate_columns();
  return mesh.valid_bits().to_row_major();
}

std::string ColumnsortSwitch::name() const {
  std::ostringstream os;
  os << "columnsort(r=" << r_ << ",s=" << s_ << ",m=" << m_ << ")";
  return os.str();
}

Bom ColumnsortSwitch::bill_of_materials() const {
  Bom bom;
  bom.items.push_back(ChipSpec{ChipKind::kHyperconcentrator, r_, 2 * r_, 0, 2 * s_});
  return bom;
}

}  // namespace pcs::sw
