#include "switch/columnsort_switch.hpp"

#include <algorithm>
#include <cmath>

#include "hyper/hyperconcentrator.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::sw {

ColumnsortSwitch::ColumnsortSwitch(std::size_t r, std::size_t s, std::size_t m)
    : r_(r), s_(s), n_(r * s), m_(m),
      exec_(plan::compile_columnsort_plan(r, s, m)) {
  stage1_to_2_ = cm_to_rm_wiring(r_, s_);
}

ColumnsortSwitch ColumnsortSwitch::from_beta(std::size_t n, double beta, std::size_t m) {
  PCS_REQUIRE(is_pow2(n), "from_beta requires power-of-two n");
  PCS_REQUIRE(beta >= 0.5 && beta <= 1.0, "from_beta requires 1/2 <= beta <= 1");
  const unsigned lgn = exact_log2(n);
  // r = 2^e with e the nearest integer to beta * lg n, clamped so that
  // s = 2^(lg n - e) divides r, i.e. lg n - e <= e.
  auto e = static_cast<unsigned>(std::lround(beta * lgn));
  unsigned e_min = (lgn + 1) / 2;
  if (e < e_min) e = e_min;
  if (e > lgn) e = lgn;
  const std::size_t r = std::size_t{1} << e;
  const std::size_t s = n / r;
  return ColumnsortSwitch(r, s, m);
}

double ColumnsortSwitch::beta() const {
  if (n_ <= 1) return 1.0;
  return std::log2(static_cast<double>(r_)) / std::log2(static_cast<double>(n_));
}

SwitchRouting ColumnsortSwitch::finish_row_major(
    const std::vector<std::int32_t>& row_major) const {
  SwitchRouting out;
  out.output_of_input.assign(n_, -1);
  out.input_of_output.assign(m_, -1);
  for (std::size_t pos = 0; pos < m_; ++pos) {
    std::int32_t src = row_major[pos];
    if (src >= 0) {
      out.input_of_output[pos] = src;
      out.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(pos);
    }
  }
  return out;
}

SwitchRouting ColumnsortSwitch::route_via_wiring(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "ColumnsortSwitch::route_via_wiring width");
  // Input x drives stage-1 chip x / r, pin x % r: flat wire index x.
  std::vector<std::int32_t> wires(n_, hyper::kIdle);
  for (std::size_t x = 0; x < n_; ++x) {
    if (valid.get(x)) wires[x] = static_cast<std::int32_t>(x);
  }
  auto concentrate_chips = [&](std::vector<std::int32_t>& w) {
    for (std::size_t chip = 0; chip < s_; ++chip) {
      std::vector<std::int32_t> slice(
          w.begin() + static_cast<std::ptrdiff_t>(chip * r_),
          w.begin() + static_cast<std::ptrdiff_t>((chip + 1) * r_));
      hyper::stable_concentrate(slice);
      std::copy(slice.begin(), slice.end(),
                w.begin() + static_cast<std::ptrdiff_t>(chip * r_));
    }
  };
  concentrate_chips(wires);                 // stage 1 chips
  wires = stage1_to_2_.apply(wires);        // RM^-1 o CM wiring
  concentrate_chips(wires);                 // stage 2 chips
  // Output taken row-major: entry (i, j) sits on stage-2 chip j, pin i.
  std::vector<std::int32_t> row_major(n_, hyper::kIdle);
  for (std::size_t j = 0; j < s_; ++j) {
    for (std::size_t i = 0; i < r_; ++i) {
      row_major[i * s_ + j] = wires[j * r_ + i];
    }
  }
  return finish_row_major(row_major);
}

Bom ColumnsortSwitch::bill_of_materials() const {
  Bom bom;
  bom.items.push_back(ChipSpec{ChipKind::kHyperconcentrator, r_, 2 * r_, 0, 2 * s_});
  return bom;
}

}  // namespace pcs::sw
