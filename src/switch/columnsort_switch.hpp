// The Columnsort-based multichip partial concentrator switch (Section 5).
//
// Construction: two stages of r-by-r hyperconcentrator chips over an
// underlying r x s matrix (n = r*s, s divides r):
//   stage 1: chips = columns, fully sorting each column;
//   wiring:  column-major -> row-major conversion (RM^-1 o CM);
//   stage 2: chips = columns of the converted matrix.
// The output wires are the first m matrix positions in row-major order.
//
// By Theorem 4 this is an (n, m, 1 - (s-1)^2/m) partial concentrator:
// Algorithm 2 (Columnsort steps 1-3) is an (s-1)^2-nearsorter.
//
// The beta parameterization of the paper: r = Theta(n^beta),
// s = Theta(n^{1-beta}), 1/2 <= beta <= 1, trading pins per chip (2r)
// against chip count (2s), load ratio, delay (4 beta lg n + O(1)), and
// volume (Theta(n^{1+beta})) -- the tradeoff continuum of Table 1.
//
// Thin wrapper over plan::compile_columnsort_plan: all ConcentratorSwitch
// virtuals delegate to the shared PlanExecutor.  route_via_wiring() remains
// an independent hardware-literal simulation the tests compare against.
#pragma once

#include "plan/compile.hpp"
#include "plan/plan_executor.hpp"
#include "switch/chip.hpp"
#include "switch/concentrator.hpp"
#include "switch/wiring.hpp"

namespace pcs::sw {

class ColumnsortSwitch : public ConcentratorSwitch {
 public:
  /// Explicit shape: r rows, s columns, s divides r, m <= r*s.
  ColumnsortSwitch(std::size_t r, std::size_t s, std::size_t m);

  /// Shape from the paper's beta parameter: picks r as the power of two
  /// nearest n^beta that keeps s = n/r a divisor of r.  n must be a power
  /// of two; 1/2 <= beta <= 1.
  static ColumnsortSwitch from_beta(std::size_t n, double beta, std::size_t m);

  std::size_t inputs() const override { return n_; }
  std::size_t outputs() const override { return m_; }
  std::size_t epsilon_bound() const override { return exec_.plan().epsilon; }
  SwitchRouting route(const BitVec& valid) const override {
    return exec_.route(valid);
  }
  BitVec nearsorted_valid_bits(const BitVec& valid) const override {
    return exec_.nearsorted_valid_bits(valid);
  }

  /// Word-parallel batch fast paths, provided by the plan executor (see
  /// RevsortSwitch): a single-pass counting kernel per pattern for
  /// routings, LaneBatch lanes for the nearsorted bits.  Bit-identical to
  /// the per-pattern methods.
  std::vector<SwitchRouting> route_batch(
      const std::vector<BitVec>& valids) const override {
    return exec_.route_batch(valids);
  }
  std::vector<BitVec> nearsorted_batch(
      const std::vector<BitVec>& valids) const override {
    return exec_.nearsorted_batch(valids);
  }

  std::string name() const override { return exec_.plan().name; }

  std::size_t r() const noexcept { return r_; }
  std::size_t s() const noexcept { return s_; }

  /// Effective beta = lg r / lg n of the realized shape.
  double beta() const;

  /// The compiled plan this switch executes.
  const plan::SwitchPlan& plan() const noexcept { return exec_.plan(); }

  /// Hardware-faithful simulation through the explicit CM->RM wiring.
  /// Independent of the plan executor; the tests prove the two agree.
  SwitchRouting route_via_wiring(const BitVec& valid) const;

  /// Number of hyperconcentrator chips a message passes through (2).
  static constexpr std::size_t kChipPasses = 2;

  /// Chip inventory: 2s r-by-r hyperconcentrators.
  Bom bill_of_materials() const;

 private:
  SwitchRouting finish_row_major(const std::vector<std::int32_t>& row_major) const;

  std::size_t r_;
  std::size_t s_;
  std::size_t n_;
  std::size_t m_;
  plan::PlanExecutor exec_;
  // Wiring for the independent route_via_wiring simulation.
  Permutation stage1_to_2_;
};

}  // namespace pcs::sw
