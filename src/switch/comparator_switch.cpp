#include "switch/comparator_switch.hpp"

#include <sstream>
#include <utility>

#include "util/assert.hpp"

namespace pcs::sw {

ComparatorSwitch::ComparatorSwitch(sortnet::ComparatorNetwork net, std::size_t m,
                                   std::size_t declared_epsilon, std::string label)
    : net_(std::move(net)),
      m_(m),
      declared_epsilon_(declared_epsilon),
      label_(std::move(label)) {
  PCS_REQUIRE(m >= 1 && m <= net_.n(), "ComparatorSwitch m range");
  if (declared_epsilon_ == 0) {
    PCS_REQUIRE(net_.sorts_all_01(net_.n() <= 16),
                "epsilon 0 declared but the network does not sort");
  }
}

ComparatorSwitch ComparatorSwitch::batcher_hyper(std::size_t n, std::size_t m) {
  return ComparatorSwitch(sortnet::ComparatorNetwork::odd_even_mergesort(n), m, 0,
                          "batcher-hyper");
}

ComparatorSwitch ComparatorSwitch::truncated_batcher(std::size_t n, std::size_t m,
                                                     std::size_t stages,
                                                     std::size_t declared_epsilon) {
  return ComparatorSwitch(
      sortnet::ComparatorNetwork::odd_even_mergesort(n).truncated(stages), m,
      declared_epsilon, "truncated-batcher");
}

SwitchRouting ComparatorSwitch::route(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == net_.n(), "ComparatorSwitch::route width");
  std::vector<std::int32_t> slots(net_.n(), -1);
  for (std::size_t i = 0; i < net_.n(); ++i) {
    if (valid.get(i)) slots[i] = static_cast<std::int32_t>(i);
  }
  net_.apply_labels(slots);
  SwitchRouting out;
  out.output_of_input.assign(net_.n(), -1);
  out.input_of_output.assign(m_, -1);
  for (std::size_t pos = 0; pos < m_; ++pos) {
    std::int32_t src = slots[pos];
    if (src >= 0) {
      out.input_of_output[pos] = src;
      out.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(pos);
    }
  }
  return out;
}

BitVec ComparatorSwitch::nearsorted_valid_bits(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == net_.n(), "ComparatorSwitch width");
  return net_.apply(valid);
}

std::string ComparatorSwitch::name() const {
  std::ostringstream os;
  os << label_ << "(n=" << net_.n() << ",m=" << m_
     << ",stages=" << net_.stage_count() << ")";
  return os.str();
}

}  // namespace pcs::sw
