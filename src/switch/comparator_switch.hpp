// Concentrator switches built from comparator networks -- the answer this
// library gives to the paper's final open question ("what types of partial
// concentrator switches can we build by applying Lemma 2 to other
// epsilon-nearsorters?").
//
// A *full* Batcher network is a 0/1 sorter, hence a hyperconcentrator: it
// routes the k valid messages to the first k outputs with Theta(n lg^2 n)
// comparators (vs the crossbar chip's Theta(n^2) gates) at lg n (lg n + 1)/2
// comparator stages of delay (vs 2 lg n).  A *truncated* network is an
// epsilon-nearsorter, hence by Lemma 2 a partial concentrator; the declared
// epsilon must be calibrated (worst_epsilon_search) because no closed-form
// bound is in the paper -- the constructor records it and the tests validate
// it adversarially.
#pragma once

#include "sortnet/comparator_net.hpp"
#include "switch/chip.hpp"
#include "switch/concentrator.hpp"

namespace pcs::sw {

class ComparatorSwitch : public ConcentratorSwitch {
 public:
  /// Wrap a comparator network as an (n, m, 1 - declared_epsilon/m) partial
  /// concentrator.  declared_epsilon = 0 asserts the network fully sorts
  /// 0/1 inputs (checked at construction via the 0/1 principle sampler).
  ComparatorSwitch(sortnet::ComparatorNetwork net, std::size_t m,
                   std::size_t declared_epsilon, std::string label);

  /// Full Batcher odd-even merge sort: a comparator-network
  /// hyperconcentrator.
  static ComparatorSwitch batcher_hyper(std::size_t n, std::size_t m);

  /// The first `stages` stages of Batcher's network, declared with the
  /// given calibrated epsilon.
  static ComparatorSwitch truncated_batcher(std::size_t n, std::size_t m,
                                            std::size_t stages,
                                            std::size_t declared_epsilon);

  std::size_t inputs() const override { return net_.n(); }
  std::size_t outputs() const override { return m_; }
  std::size_t epsilon_bound() const override { return declared_epsilon_; }
  SwitchRouting route(const BitVec& valid) const override;
  BitVec nearsorted_valid_bits(const BitVec& valid) const override;
  std::string name() const override;

  const sortnet::ComparatorNetwork& network() const noexcept { return net_; }

  /// Message delay model: two gate delays per comparator stage (one steered
  /// combine per payload wire), cf. the mesh designs' 2 lg w per chip.
  std::size_t gate_delay_model() const noexcept { return 2 * net_.stage_count(); }

 private:
  sortnet::ComparatorNetwork net_;
  std::size_t m_;
  std::size_t declared_epsilon_;
  std::string label_;
};

}  // namespace pcs::sw
