#include "switch/concentrator.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace pcs::sw {

std::size_t SwitchRouting::routed_count() const noexcept {
  std::size_t k = 0;
  for (std::int32_t o : output_of_input) {
    if (o >= 0) ++k;
  }
  return k;
}

bool SwitchRouting::is_partial_injection() const noexcept {
  for (std::size_t i = 0; i < output_of_input.size(); ++i) {
    std::int32_t o = output_of_input[i];
    if (o < 0) continue;
    if (static_cast<std::size_t>(o) >= input_of_output.size()) return false;
    if (input_of_output[static_cast<std::size_t>(o)] != static_cast<std::int32_t>(i)) {
      return false;
    }
  }
  for (std::size_t j = 0; j < input_of_output.size(); ++j) {
    std::int32_t i = input_of_output[j];
    if (i < 0) continue;
    if (static_cast<std::size_t>(i) >= output_of_input.size()) return false;
    if (output_of_input[static_cast<std::size_t>(i)] != static_cast<std::int32_t>(j)) {
      return false;
    }
  }
  return true;
}

std::vector<SwitchRouting> ConcentratorSwitch::route_batch(
    const std::vector<BitVec>& valids) const {
  std::vector<SwitchRouting> out(valids.size());
  parallel_for(0, valids.size(), [&](std::size_t i) { out[i] = route(valids[i]); });
  return out;
}

std::vector<BitVec> ConcentratorSwitch::nearsorted_batch(
    const std::vector<BitVec>& valids) const {
  std::vector<BitVec> out(valids.size());
  parallel_for(0, valids.size(),
               [&](std::size_t i) { out[i] = nearsorted_valid_bits(valids[i]); });
  return out;
}

double ConcentratorSwitch::load_ratio_bound() const {
  const double m = static_cast<double>(outputs());
  if (m == 0) return 0.0;
  double alpha = 1.0 - static_cast<double>(epsilon_bound()) / m;
  return std::clamp(alpha, 0.0, 1.0);
}

std::size_t ConcentratorSwitch::guaranteed_capacity() const {
  std::size_t m = outputs();
  std::size_t eps = epsilon_bound();
  return eps >= m ? 0 : m - eps;
}

bool concentration_contract_holds(const ConcentratorSwitch& sw, const BitVec& valid,
                                  const SwitchRouting& routing) {
  if (!routing.is_partial_injection()) return false;
  const std::size_t k = valid.count();
  const std::size_t capacity = sw.guaranteed_capacity();
  const std::size_t routed = routing.routed_count();
  if (k <= capacity) {
    return routed == k;  // every valid message must have been routed
  }
  return routed >= std::min(capacity, k);
}

}  // namespace pcs::sw
