// Abstract interface shared by all concentrator switches in the library
// (single-chip hyperconcentrators, the paper's two multichip partial
// concentrators, and the full-sorting multichip hyperconcentrators).
//
// Terminology (paper, Section 1): an (n, m, alpha) partial concentrator
// switch can establish disjoint paths from any k <= alpha*m valid inputs to
// k of its m outputs; with k > alpha*m it still fills at least alpha*m
// outputs.  A hyperconcentrator is the special case m = n, alpha = 1 with
// the stronger property that the k messages land on the *first* k outputs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace pcs::sw {

/// The routing a switch establishes at setup.  Inputs and outputs may have
/// different counts (n inputs, m <= n outputs).
struct SwitchRouting {
  /// output_of_input[i] = output wire carrying input i's message, or -1 if
  /// input i is invalid or its message fell off the m outputs (congestion).
  std::vector<std::int32_t> output_of_input;
  /// input_of_output[j] = input whose message output j carries, or -1.
  std::vector<std::int32_t> input_of_output;

  std::size_t routed_count() const noexcept;

  /// True iff the maps form a consistent partial injection.
  bool is_partial_injection() const noexcept;
};

class ConcentratorSwitch {
 public:
  virtual ~ConcentratorSwitch() = default;

  /// Number of input wires (the paper's n).
  virtual std::size_t inputs() const = 0;

  /// Number of output wires (the paper's m).
  virtual std::size_t outputs() const = 0;

  /// Guaranteed nearsortedness of the internal n-wide output arrangement:
  /// the switch epsilon-nearsorts its valid bits with this epsilon.  Zero
  /// for hyperconcentrators.
  virtual std::size_t epsilon_bound() const = 0;

  /// Establish paths for one setup.  valid.size() must equal inputs().
  virtual SwitchRouting route(const BitVec& valid) const = 0;

  /// The n-wide arrangement of valid bits on the internal output side,
  /// before restriction to the first m outputs (what Lemma 2 inspects).
  virtual BitVec nearsorted_valid_bits(const BitVec& valid) const = 0;

  /// Route a batch of independent setups.  Bit-for-bit identical to calling
  /// route() per pattern; concrete switches override with batched fast paths
  /// (word-parallel counting kernels, cached route plans).  The base
  /// implementation fans the patterns out over the persistent thread pool.
  virtual std::vector<SwitchRouting> route_batch(
      const std::vector<BitVec>& valids) const;

  /// nearsorted_valid_bits() for a batch of patterns.  Overrides carry 64
  /// patterns per machine word through the sorting substrates (LaneBatch).
  virtual std::vector<BitVec> nearsorted_batch(
      const std::vector<BitVec>& valids) const;

  /// Human-readable design name for reports.
  virtual std::string name() const = 0;

  /// Upper bound on messages one setup can lose to dead chips.  0 for a
  /// healthy switch (every message is conserved); fault-rewritten plans
  /// override with the sum of dead-chip widths.
  virtual std::size_t max_fault_loss() const { return 0; }

  /// The load ratio alpha = 1 - epsilon_bound / m (Lemma 2), clamped to
  /// [0, 1].  With k <= alpha * m valid inputs, all k are routed.
  double load_ratio_bound() const;

  /// Largest k the load-ratio bound guarantees to route losslessly:
  /// floor(alpha * m) = m - epsilon_bound (when nonnegative).
  std::size_t guaranteed_capacity() const;
};

/// Check the partial-concentration contract (the two bullet properties of
/// Section 1) for one routing produced from `valid`:
///   k <= capacity  =>  every valid input routed;
///   k >  capacity  =>  at least `capacity` outputs carry messages.
/// Returns true when the contract holds.
bool concentration_contract_holds(const ConcentratorSwitch& sw, const BitVec& valid,
                                  const SwitchRouting& routing);

}  // namespace pcs::sw
