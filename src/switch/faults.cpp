#include "switch/faults.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "switch/label_mesh.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::sw {

namespace {

/// A chip is either dead or alive: repeated entries describe the same dead
/// chip and must not count twice in max_fault_loss().
void dedupe_faults(std::vector<ChipFault>& faults) {
  std::sort(faults.begin(), faults.end(), [](const ChipFault& a, const ChipFault& b) {
    return std::tie(a.stage, a.chip) < std::tie(b.stage, b.chip);
  });
  faults.erase(std::unique(faults.begin(), faults.end()), faults.end());
}

/// Drive every slot of a dead column chip's outputs invalid.
void kill_column(LabelMesh& mesh, std::size_t col) {
  for (std::size_t i = 0; i < mesh.rows(); ++i) mesh.set(i, col, kIdle);
}

/// Drive every slot of a dead row chip's outputs invalid.
void kill_row(LabelMesh& mesh, std::size_t row) {
  for (std::size_t j = 0; j < mesh.cols(); ++j) mesh.set(row, j, kIdle);
}

void apply_faults(LabelMesh& mesh, const std::vector<ChipFault>& faults,
                  std::size_t stage, bool chips_are_columns) {
  for (const ChipFault& f : faults) {
    if (f.stage != stage) continue;
    if (chips_are_columns) {
      kill_column(mesh, f.chip);
    } else {
      kill_row(mesh, f.chip);
    }
  }
}

SwitchRouting routing_from_row_major(const std::vector<std::int32_t>& row_major,
                                     std::size_t n, std::size_t m) {
  SwitchRouting out;
  out.output_of_input.assign(n, -1);
  out.input_of_output.assign(m, -1);
  for (std::size_t pos = 0; pos < m; ++pos) {
    std::int32_t src = row_major[pos];
    if (src >= 0) {
      out.input_of_output[pos] = src;
      out.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(pos);
    }
  }
  return out;
}

}  // namespace

FaultyRevsortSwitch::FaultyRevsortSwitch(std::size_t n, std::size_t m,
                                         std::vector<ChipFault> faults)
    : n_(n), m_(m), faults_(std::move(faults)) {
  side_ = isqrt(n);
  PCS_REQUIRE(side_ * side_ == n && is_pow2(side_),
              "FaultyRevsortSwitch shape: n=" << n << " must have a power-of-two "
              "integer square root, got side=" << side_);
  PCS_REQUIRE(m >= 1 && m <= n,
              "FaultyRevsortSwitch m range: m=" << m << " n=" << n);
  for (const ChipFault& f : faults_) {
    PCS_REQUIRE(f.stage < 3 && f.chip < side_,
                "FaultyRevsortSwitch fault coords: stage=" << f.stage << " chip="
                << f.chip << " (stages 0..2, chips 0.." << side_ - 1 << ")");
  }
  dedupe_faults(faults_);
}

std::vector<std::int32_t> FaultyRevsortSwitch::run_mesh(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "FaultyRevsortSwitch width: pattern has "
                                      << valid.size() << " bits, switch has n=" << n_);
  LabelMesh mesh = LabelMesh::from_col_major_valid(valid, side_, side_);
  mesh.concentrate_columns();
  apply_faults(mesh, faults_, 0, /*chips_are_columns=*/true);
  mesh.concentrate_rows();
  apply_faults(mesh, faults_, 1, /*chips_are_columns=*/false);
  mesh.rotate_rows_bit_reversed();
  mesh.concentrate_columns();
  apply_faults(mesh, faults_, 2, /*chips_are_columns=*/true);
  return mesh.to_row_major();
}

SwitchRouting FaultyRevsortSwitch::route(const BitVec& valid) const {
  return routing_from_row_major(run_mesh(valid), n_, m_);
}

BitVec FaultyRevsortSwitch::nearsorted_valid_bits(const BitVec& valid) const {
  std::vector<std::int32_t> rm = run_mesh(valid);
  BitVec out(n_);
  for (std::size_t i = 0; i < n_; ++i) out.set(i, rm[i] >= 0);
  return out;
}

std::string FaultyRevsortSwitch::name() const {
  std::ostringstream os;
  os << "faulty-revsort(" << n_ << "," << m_ << ",dead=" << faults_.size() << ")";
  return os.str();
}

FaultyColumnsortSwitch::FaultyColumnsortSwitch(std::size_t r, std::size_t s,
                                               std::size_t m,
                                               std::vector<ChipFault> faults)
    : r_(r), s_(s), n_(r * s), m_(m), faults_(std::move(faults)) {
  PCS_REQUIRE(s > 0 && r % s == 0,
              "FaultyColumnsortSwitch shape: r=" << r << " s=" << s
              << " (s must divide r)");
  PCS_REQUIRE(m >= 1 && m <= n_,
              "FaultyColumnsortSwitch m range: m=" << m << " n=" << n_);
  for (const ChipFault& f : faults_) {
    PCS_REQUIRE(f.stage < 2 && f.chip < s,
                "FaultyColumnsortSwitch fault coords: stage=" << f.stage << " chip="
                << f.chip << " (stages 0..1, chips 0.." << s - 1 << ")");
  }
  dedupe_faults(faults_);
}

std::vector<std::int32_t> FaultyColumnsortSwitch::run_mesh(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "FaultyColumnsortSwitch width: pattern has "
                                      << valid.size() << " bits, switch has n=" << n_);
  LabelMesh mesh = LabelMesh::from_col_major_valid(valid, r_, s_);
  mesh.concentrate_columns();
  apply_faults(mesh, faults_, 0, /*chips_are_columns=*/true);
  mesh.cm_to_rm_reshape();
  mesh.concentrate_columns();
  apply_faults(mesh, faults_, 1, /*chips_are_columns=*/true);
  return mesh.to_row_major();
}

SwitchRouting FaultyColumnsortSwitch::route(const BitVec& valid) const {
  return routing_from_row_major(run_mesh(valid), n_, m_);
}

BitVec FaultyColumnsortSwitch::nearsorted_valid_bits(const BitVec& valid) const {
  std::vector<std::int32_t> rm = run_mesh(valid);
  BitVec out(n_);
  for (std::size_t i = 0; i < n_; ++i) out.set(i, rm[i] >= 0);
  return out;
}

std::string FaultyColumnsortSwitch::name() const {
  std::ostringstream os;
  os << "faulty-columnsort(r=" << r_ << ",s=" << s_ << ",dead=" << faults_.size()
     << ")";
  return os.str();
}

}  // namespace pcs::sw
