// Fault injection for multichip switches: what happens when whole chips die.
//
// A multichip switch is 3*sqrt(n) (+shifters) or 2s separate packages; chips
// fail.  The fault model here is the coarse, pessimistic one relevant to a
// combinational switch: a *dead chip* drives all of its output pins invalid,
// so every message inside it at that stage is lost (downstream recovery is
// the ack/retry protocol's job, Section 1).
//
// Faulty switches advertise no nearsorting guarantee (epsilon_bound() = n --
// Theorems 3/4 assume working hardware); what remains provable, and what the
// tests pin down, is graceful degradation:
//   * the routing is still a partial injection;
//   * a dead stage-1 chip loses exactly the messages that entered it;
//   * any dead chip loses at most chip-width messages per setup;
//   * messages that never traverse a dead chip are still concentrated.
// The bench (bench_faults) measures delivered fraction and effective
// epsilon as chips die -- the availability story a machine designer needs.
#pragma once

#include <vector>

#include "switch/concentrator.hpp"

namespace pcs::sw {

/// A dead chip, identified by its stage and position within the stage.
/// Revsort stages: 0 = column chips, 1 = row chips, 2 = column chips.
/// Columnsort stages: 0 and 1, both column chips.
struct ChipFault {
  std::size_t stage;
  std::size_t chip;

  bool operator==(const ChipFault&) const = default;
};

class FaultyRevsortSwitch : public ConcentratorSwitch {
 public:
  /// Duplicate entries in `faults` are collapsed: a chip is either dead or
  /// not, so repeating it must not inflate max_fault_loss().
  FaultyRevsortSwitch(std::size_t n, std::size_t m, std::vector<ChipFault> faults);

  std::size_t inputs() const override { return n_; }
  std::size_t outputs() const override { return m_; }
  /// No guarantee under faults: Theorem 3 assumes working chips.
  std::size_t epsilon_bound() const override { return n_; }
  SwitchRouting route(const BitVec& valid) const override;
  BitVec nearsorted_valid_bits(const BitVec& valid) const override;
  std::string name() const override;

  std::size_t side() const noexcept { return side_; }
  const std::vector<ChipFault>& faults() const noexcept { return faults_; }

  /// Upper bound on messages a setup can lose to the dead chips:
  /// chip width per fault.
  std::size_t max_fault_loss() const noexcept { return faults_.size() * side_; }

 private:
  std::vector<std::int32_t> run_mesh(const BitVec& valid) const;

  std::size_t n_;
  std::size_t m_;
  std::size_t side_;
  std::vector<ChipFault> faults_;
};

class FaultyColumnsortSwitch : public ConcentratorSwitch {
 public:
  /// Duplicate entries in `faults` are collapsed, as in FaultyRevsortSwitch.
  FaultyColumnsortSwitch(std::size_t r, std::size_t s, std::size_t m,
                         std::vector<ChipFault> faults);

  std::size_t inputs() const override { return n_; }
  std::size_t outputs() const override { return m_; }
  std::size_t epsilon_bound() const override { return n_; }
  SwitchRouting route(const BitVec& valid) const override;
  BitVec nearsorted_valid_bits(const BitVec& valid) const override;
  std::string name() const override;

  std::size_t r() const noexcept { return r_; }
  std::size_t s() const noexcept { return s_; }
  const std::vector<ChipFault>& faults() const noexcept { return faults_; }
  std::size_t max_fault_loss() const noexcept { return faults_.size() * r_; }

 private:
  std::vector<std::int32_t> run_mesh(const BitVec& valid) const;

  std::size_t r_;
  std::size_t s_;
  std::size_t n_;
  std::size_t m_;
  std::vector<ChipFault> faults_;
};

}  // namespace pcs::sw
