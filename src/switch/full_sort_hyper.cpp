#include "switch/full_sort_hyper.hpp"

#include <sstream>

#include "sortnet/columnsort.hpp"
#include "sortnet/revsort.hpp"
#include "switch/label_mesh.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/parallel.hpp"

namespace pcs::sw {

namespace {

SwitchRouting routing_from_sequence(const std::vector<std::int32_t>& seq,
                                    std::size_t n) {
  SwitchRouting out;
  out.output_of_input.assign(n, -1);
  out.input_of_output.assign(n, -1);
  for (std::size_t pos = 0; pos < n; ++pos) {
    std::int32_t src = seq[pos];
    if (src >= 0) {
      out.input_of_output[pos] = src;
      out.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(pos);
    }
  }
  return out;
}

bool sequence_concentrated(const std::vector<std::int32_t>& seq) {
  bool seen_idle = false;
  for (std::int32_t s : seq) {
    if (s < 0) {
      seen_idle = true;
    } else if (seen_idle) {
      return false;
    }
  }
  return true;
}

}  // namespace

FullRevsortHyper::FullRevsortHyper(std::size_t n) : n_(n) {
  PCS_REQUIRE(n > 0, "FullRevsortHyper n must be positive");
  side_ = isqrt(n);
  PCS_REQUIRE(side_ * side_ == n,
              "FullRevsortHyper n must be a perfect square: n=" << n);
  PCS_REQUIRE(is_pow2(side_),
              "FullRevsortHyper sqrt(n) must be a power of two: n=" << n
              << " side=" << side_);
  reps_ = sortnet::full_revsort_repetitions(side_);
}

SwitchRouting FullRevsortHyper::route(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "FullRevsortHyper::route width: pattern has "
                                      << valid.size() << " bits, switch has n=" << n_);
  LabelMesh mesh = LabelMesh::from_col_major_valid(valid, side_, side_);
  for (std::size_t t = 0; t < reps_; ++t) {
    mesh.concentrate_columns();
    mesh.concentrate_rows();
    mesh.rotate_rows_bit_reversed();
  }
  mesh.concentrate_columns();
  for (int phase = 0; phase < 3; ++phase) {
    mesh.concentrate_rows_alternating();
    mesh.concentrate_columns();
  }
  mesh.concentrate_rows();
  // Safety net: the prescribed structure always fully sorts in practice;
  // if it ever did not, finish with additional Shearsort phases.
  std::size_t extra = 0;
  std::vector<std::int32_t> seq = mesh.to_row_major();
  while (!sequence_concentrated(seq)) {
    mesh.concentrate_rows_alternating();
    mesh.concentrate_columns();
    mesh.concentrate_rows();
    ++extra;
    PCS_REQUIRE(extra <= side_, "FullRevsortHyper failed to converge");
    seq = mesh.to_row_major();
  }
  extra_phases_.store(extra);
  return routing_from_sequence(seq, n_);
}

BitVec FullRevsortHyper::nearsorted_valid_bits(const BitVec& valid) const {
  SwitchRouting r = route(valid);
  BitVec out(n_);
  for (std::size_t j = 0; j < n_; ++j) out.set(j, r.input_of_output[j] >= 0);
  return out;
}

std::vector<BitVec> FullRevsortHyper::nearsorted_batch(
    const std::vector<BitVec>& valids) const {
  std::vector<BitVec> out(valids.size());
  parallel_for(0, valids.size(), [&](std::size_t i) {
    PCS_REQUIRE(valids[i].size() == n_,
                "FullRevsortHyper::nearsorted_batch width: pattern " << i << " of "
                << valids.size() << " has " << valids[i].size()
                << " bits, switch has n=" << n_);
    out[i] = BitVec::prefix_ones(n_, valids[i].count());
  });
  return out;
}

std::string FullRevsortHyper::name() const {
  std::ostringstream os;
  os << "full-revsort-hyper(" << n_ << ")";
  return os.str();
}

Bom FullRevsortHyper::bill_of_materials() const {
  // Section 6: ceil(lg lg sqrt(n)) repetitions of stacks 1 and 2 (each stack
  // sqrt(n) hyper chips; stack 2 boards also carry a barrel shifter),
  // followed by the column-sort stack and three Shearsort stack pairs plus
  // the final row-sort stack.
  const std::size_t v = side_;
  const std::size_t lg_v = v <= 1 ? 0 : ceil_log2(v);
  Bom bom;
  bom.items.push_back(
      ChipSpec{ChipKind::kHyperconcentrator, v, 2 * v, 0, chip_passes() * v});
  bom.items.push_back(ChipSpec{ChipKind::kBarrelShifter, v, 2 * v, lg_v, reps_ * v});
  return bom;
}

FullColumnsortHyper::FullColumnsortHyper(std::size_t r, std::size_t s)
    : r_(r), s_(s), n_(r * s) {
  PCS_REQUIRE(sortnet::columnsort_shape_ok(r, s),
              "FullColumnsortHyper requires s | r and r >= 2(s-1)^2: r=" << r
              << " s=" << s);
}

SwitchRouting FullColumnsortHyper::route(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "FullColumnsortHyper::route width: pattern has "
                                      << valid.size() << " bits, switch has n=" << n_);
  LabelMesh mesh = LabelMesh::from_col_major_valid(valid, r_, s_);
  mesh.concentrate_columns();        // step 1
  mesh.cm_to_rm_reshape();           // step 2
  mesh.concentrate_columns();        // step 3
  mesh.rm_to_cm_reshape();           // step 4
  mesh.concentrate_columns();        // step 5
  mesh.shift_concentrate_unshift();  // steps 6-8
  std::vector<std::int32_t> seq = mesh.to_col_major();
  PCS_REQUIRE(sequence_concentrated(seq),
              "FullColumnsortHyper output not concentrated");
  return routing_from_sequence(seq, n_);
}

BitVec FullColumnsortHyper::nearsorted_valid_bits(const BitVec& valid) const {
  SwitchRouting r = route(valid);
  BitVec out(n_);
  for (std::size_t j = 0; j < n_; ++j) out.set(j, r.input_of_output[j] >= 0);
  return out;
}

std::vector<BitVec> FullColumnsortHyper::nearsorted_batch(
    const std::vector<BitVec>& valids) const {
  std::vector<BitVec> out(valids.size());
  parallel_for(0, valids.size(), [&](std::size_t i) {
    PCS_REQUIRE(valids[i].size() == n_,
                "FullColumnsortHyper::nearsorted_batch width: pattern " << i
                << " of " << valids.size() << " has " << valids[i].size()
                << " bits, switch has n=" << n_);
    out[i] = BitVec::prefix_ones(n_, valids[i].count());
  });
  return out;
}

std::string FullColumnsortHyper::name() const {
  std::ostringstream os;
  os << "full-columnsort-hyper(r=" << r_ << ",s=" << s_ << ")";
  return os.str();
}

Bom FullColumnsortHyper::bill_of_materials() const {
  // Steps 1, 3, 5 use s chips each; the shifted sort of step 7 spans the
  // widened matrix and needs s + 1 chips.
  Bom bom;
  bom.items.push_back(
      ChipSpec{ChipKind::kHyperconcentrator, r_, 2 * r_, 0, 3 * s_ + (s_ + 1)});
  return bom;
}

}  // namespace pcs::sw
