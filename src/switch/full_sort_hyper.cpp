#include "switch/full_sort_hyper.hpp"

#include "sortnet/revsort.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::sw {

FullRevsortHyper::FullRevsortHyper(std::size_t n)
    : n_(n),
      side_(isqrt(n)),
      reps_(0),
      exec_(plan::compile_full_revsort_plan(n)) {
  reps_ = sortnet::full_revsort_repetitions(side_);
}

Bom FullRevsortHyper::bill_of_materials() const {
  // Section 6: ceil(lg lg sqrt(n)) repetitions of stacks 1 and 2 (each stack
  // sqrt(n) hyper chips; stack 2 boards also carry a barrel shifter),
  // followed by the column-sort stack and three Shearsort stack pairs plus
  // the final row-sort stack.
  const std::size_t v = side_;
  const std::size_t lg_v = v <= 1 ? 0 : ceil_log2(v);
  Bom bom;
  bom.items.push_back(
      ChipSpec{ChipKind::kHyperconcentrator, v, 2 * v, 0, chip_passes() * v});
  bom.items.push_back(ChipSpec{ChipKind::kBarrelShifter, v, 2 * v, lg_v, reps_ * v});
  return bom;
}

FullColumnsortHyper::FullColumnsortHyper(std::size_t r, std::size_t s)
    : r_(r), s_(s), n_(r * s), exec_(plan::compile_full_columnsort_plan(r, s)) {}

Bom FullColumnsortHyper::bill_of_materials() const {
  // Steps 1, 3, 5 use s chips each; the shifted sort of step 7 spans the
  // widened matrix and needs s + 1 chips.
  Bom bom;
  bom.items.push_back(
      ChipSpec{ChipKind::kHyperconcentrator, r_, 2 * r_, 0, 3 * s_ + (s_ + 1)});
  return bom;
}

}  // namespace pcs::sw
