// Multichip *hyper*concentrator switches (paper Section 6): instead of
// stopping after the nearsorting prefix of Revsort/Columnsort, simulate the
// full sorting algorithms, at the price of more chips and delay.
//
// Full Revsort (n-by-n): repeat Revsort steps 1-3 ceil(lg lg sqrt(n)) times
// (at most eight dirty rows remain, per Schnorr-Shamir), sort columns, run
// three Shearsort phases (halving dirty rows to at most one), and finish
// with a 1s-first row sort.  Output taken row-major.
//
// Full Columnsort (r-by-s): all eight Columnsort steps; output taken
// column-major.  Requires r >= 2(s-1)^2.
//
// Both classes expose the structural chip-pass count so the delay model can
// be checked against the paper's formulas (and the Revsort count documents
// the factor-of-two discrepancy discussed in DESIGN.md section 4).  As a
// safety net, if the prescribed stage sequence ever failed to fully sort
// (it never does in our tests), the executor appends extra Shearsort phases
// and reports them via extra_phases_used().
//
// Thin wrappers over plan::compile_full_revsort_plan /
// plan::compile_full_columnsort_plan; all ConcentratorSwitch virtuals
// delegate to the shared PlanExecutor.
#pragma once

#include "plan/compile.hpp"
#include "plan/plan_executor.hpp"
#include "switch/chip.hpp"
#include "switch/concentrator.hpp"

namespace pcs::sw {

class FullRevsortHyper : public ConcentratorSwitch {
 public:
  /// n = side^2 with side a power of two; this is an n-by-n switch.
  explicit FullRevsortHyper(std::size_t n);

  std::size_t inputs() const override { return n_; }
  std::size_t outputs() const override { return n_; }
  std::size_t epsilon_bound() const override { return 0; }
  SwitchRouting route(const BitVec& valid) const override {
    return exec_.route(valid);
  }
  BitVec nearsorted_valid_bits(const BitVec& valid) const override {
    return exec_.nearsorted_valid_bits(valid);
  }

  /// A full sorter always leaves the valid bits fully concentrated, so the
  /// batch nearsorted bits are prefix_ones(n, count) without simulating.
  std::vector<BitVec> nearsorted_batch(
      const std::vector<BitVec>& valids) const override {
    return exec_.nearsorted_batch(valids);
  }

  std::string name() const override { return exec_.plan().name; }

  std::size_t side() const noexcept { return side_; }

  /// Revsort repetitions prescribed by Section 6: ceil(lg lg sqrt(n)).
  std::size_t repetitions() const noexcept { return reps_; }

  /// Hyperconcentrator chips a message passes through in the prescribed
  /// structure: 2 per repetition + 1 column sort + 2 per Shearsort phase
  /// (x3) + 1 final row sort = 2*reps + 8.
  std::size_t chip_passes() const noexcept { return 2 * reps_ + 8; }

  /// Shearsort phases beyond the prescribed three that the last route()
  /// call needed (0 in every case we have ever observed).
  std::size_t extra_phases_used() const noexcept {
    return exec_.extra_phases_used();
  }

  /// The compiled plan this switch executes.
  const plan::SwitchPlan& plan() const noexcept { return exec_.plan(); }

  Bom bill_of_materials() const;

 private:
  std::size_t n_;
  std::size_t side_;
  std::size_t reps_;
  plan::PlanExecutor exec_;
};

class FullColumnsortHyper : public ConcentratorSwitch {
 public:
  /// r-by-s mesh, s divides r, r >= 2(s-1)^2; this is an (r*s)-by-(r*s)
  /// switch.
  FullColumnsortHyper(std::size_t r, std::size_t s);

  std::size_t inputs() const override { return n_; }
  std::size_t outputs() const override { return n_; }
  std::size_t epsilon_bound() const override { return 0; }
  SwitchRouting route(const BitVec& valid) const override {
    return exec_.route(valid);
  }
  BitVec nearsorted_valid_bits(const BitVec& valid) const override {
    return exec_.nearsorted_valid_bits(valid);
  }

  /// See FullRevsortHyper::nearsorted_batch.
  std::vector<BitVec> nearsorted_batch(
      const std::vector<BitVec>& valids) const override {
    return exec_.nearsorted_batch(valids);
  }

  std::string name() const override { return exec_.plan().name; }

  std::size_t r() const noexcept { return r_; }
  std::size_t s() const noexcept { return s_; }

  /// Hyperconcentrator chips a message passes through: the four column
  /// sorts of the eight-step algorithm (the paper's "a signal passes
  /// through four chips").
  static constexpr std::size_t kChipPasses = 4;

  /// The compiled plan this switch executes.
  const plan::SwitchPlan& plan() const noexcept { return exec_.plan(); }

  Bom bill_of_materials() const;

 private:
  std::size_t r_;
  std::size_t s_;
  std::size_t n_;
  plan::PlanExecutor exec_;
};

}  // namespace pcs::sw
