#include "switch/gate_level_switch.hpp"

#include <algorithm>

#include "gates/evaluator.hpp"
#include "hyper/hyper_circuit.hpp"
#include "plan/compile.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::sw {

namespace {

using gates::NodeId;

/// One inter-stage wire: its valid bit and its data bit, as circuit nodes.
struct Wire {
  NodeId valid;
  NodeId data;
};

/// Instantiate one stage of `chips` w-wide hyperconcentrator chips over the
/// wires (chip c owns wires [c*w, (c+1)*w)).
void instantiate_stage(gates::Circuit& circuit, const gates::Circuit& chip_template,
                       std::size_t chips, std::size_t w, std::vector<Wire>& wires) {
  for (std::size_t c = 0; c < chips; ++c) {
    std::vector<NodeId> bindings;
    bindings.reserve(2 * w);
    for (std::size_t i = 0; i < w; ++i) bindings.push_back(wires[c * w + i].valid);
    for (std::size_t i = 0; i < w; ++i) bindings.push_back(wires[c * w + i].data);
    std::vector<NodeId> outs = circuit.instantiate(chip_template, bindings);
    // Chip outputs: data 0..w-1, then sorted valid bits w..2w-1.
    for (std::size_t i = 0; i < w; ++i) {
      wires[c * w + i] = Wire{outs[w + i], outs[i]};
    }
  }
}

}  // namespace

void GateLevelSwitchBase::build_from_plan(const plan::SwitchPlan& plan) {
  plan.validate();
  const std::size_t n = plan.n;
  PCS_REQUIRE(n == n_, "build_from_plan width");
  for (const plan::PlanStage& st : plan.stages) {
    PCS_REQUIRE(!st.any_dead(),
                "build_from_plan: " << plan.name << " has dead chips; the "
                "gate-level builder realizes fault-free plans only");
  }

  for (std::size_t i = 0; i < n; ++i) valid_inputs_.push_back(circuit_.add_input());
  for (std::size_t i = 0; i < n; ++i) data_inputs_.push_back(circuit_.add_input());

  std::vector<Wire> wires(n);
  for (std::size_t x = 0; x < n; ++x) {
    wires[x] = Wire{valid_inputs_[x], data_inputs_[x]};
  }

  for (const plan::PlanStage& st : plan.stages) {
    PCS_REQUIRE(st.wires() == n,
                "build_from_plan: " << plan.name << " stage feeds "
                << st.wires() << " wires (plan has n=" << n << "); plans with "
                "pad-widened stages have no gate-level realization here");
    // The inbound link: wire w of this stage is upstream wire in_src[w].
    std::vector<Wire> next(n, Wire{0, 0});
    for (std::size_t w = 0; w < n; ++w) {
      const std::int32_t src = st.in_src[w];
      PCS_REQUIRE(src >= 0, "build_from_plan: " << plan.name
                  << " link feeds a constant; not realizable as renaming");
      next[w] = wires[static_cast<std::size_t>(src)];
    }
    wires = std::move(next);
    hyper::HyperCircuit chip(st.width);
    instantiate_stage(circuit_, chip.circuit(), st.chips, st.width, wires);
  }

  for (std::size_t pos = 0; pos < n; ++pos) {
    circuit_.mark_output(wires[plan.readout[pos]].data);
  }
  for (std::size_t pos = 0; pos < n; ++pos) {
    circuit_.mark_output(wires[plan.readout[pos]].valid);
  }
}

GateLevelResult GateLevelSwitchBase::evaluate(const BitVec& valid,
                                              const BitVec& data) const {
  gates::EvalScratch scratch;
  GateLevelResult res;
  evaluate(valid, data, scratch, res);
  return res;
}

void GateLevelSwitchBase::evaluate(const BitVec& valid, const BitVec& data,
                                   gates::EvalScratch& scratch,
                                   GateLevelResult& res) const {
  PCS_REQUIRE(valid.size() == n_ && data.size() == n_, "GateLevelSwitch width");
  // Stage the inputs straight into the lane buffer (lane 0 only) instead of
  // round-tripping through a BitVec.
  scratch.lanes.resize(2 * n_);
  for (std::size_t i = 0; i < n_; ++i) {
    scratch.lanes[i] = valid.get(i) ? 1u : 0u;
    scratch.lanes[n_ + i] = data.get(i) ? 1u : 0u;
  }
  gates::Evaluator eval(circuit_);
  const std::vector<std::uint64_t>& out = eval.evaluate_lanes(scratch.lanes, scratch);
  if (res.data.size() != n_) res.data = BitVec(n_); else res.data.fill(false);
  if (res.valid.size() != n_) res.valid = BitVec(n_); else res.valid.fill(false);
  for (std::size_t j = 0; j < n_; ++j) {
    if ((out[j] & 1u) != 0) res.data.set(j, true);
    if ((out[n_ + j] & 1u) != 0) res.valid.set(j, true);
  }
}

std::uint32_t GateLevelSwitchBase::data_path_depth() const {
  auto depths = circuit_.output_depths_from(data_inputs_);
  std::int64_t best = 0;
  for (std::size_t j = 0; j < n_; ++j) best = std::max(best, depths[j]);
  return static_cast<std::uint32_t>(best);
}

std::uint32_t GateLevelSwitchBase::control_path_depth() const {
  auto depths = circuit_.output_depths_from(valid_inputs_);
  std::int64_t best = 0;
  for (std::int64_t d : depths) best = std::max(best, d);
  return static_cast<std::uint32_t>(best);
}

GateLevelRevsortSwitch::GateLevelRevsortSwitch(std::size_t n)
    : GateLevelSwitchBase(n) {
  side_ = isqrt(n);
  PCS_REQUIRE(side_ * side_ == n && is_pow2(side_), "GateLevelRevsortSwitch shape");
  build_from_plan(plan::compile_revsort_plan(n, n));
}

GateLevelColumnsortSwitch::GateLevelColumnsortSwitch(std::size_t r, std::size_t s)
    : GateLevelSwitchBase(r * s), r_(r), s_(s) {
  PCS_REQUIRE(s > 0 && r % s == 0, "GateLevelColumnsortSwitch shape");
  build_from_plan(plan::compile_columnsort_plan(r, s, r * s));
}

}  // namespace pcs::sw
