#include "switch/gate_level_switch.hpp"

#include <algorithm>

#include "gates/evaluator.hpp"
#include "hyper/hyper_circuit.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::sw {

namespace {

using gates::NodeId;

/// One inter-stage wire: its valid bit and its data bit, as circuit nodes.
struct Wire {
  NodeId valid;
  NodeId data;
};

/// Instantiate one stage of `chips` w-wide hyperconcentrator chips over the
/// wires (chip c owns wires [c*w, (c+1)*w)).
void instantiate_stage(gates::Circuit& circuit, const gates::Circuit& chip_template,
                       std::size_t chips, std::size_t w, std::vector<Wire>& wires) {
  for (std::size_t c = 0; c < chips; ++c) {
    std::vector<NodeId> bindings;
    bindings.reserve(2 * w);
    for (std::size_t i = 0; i < w; ++i) bindings.push_back(wires[c * w + i].valid);
    for (std::size_t i = 0; i < w; ++i) bindings.push_back(wires[c * w + i].data);
    std::vector<NodeId> outs = circuit.instantiate(chip_template, bindings);
    // Chip outputs: data 0..w-1, then sorted valid bits w..2w-1.
    for (std::size_t i = 0; i < w; ++i) {
      wires[c * w + i] = Wire{outs[w + i], outs[i]};
    }
  }
}

/// Apply an inter-stage wiring permutation to the wires (pure renaming).
void apply_wiring(const Permutation& perm, std::vector<Wire>& wires) {
  std::vector<Wire> next(wires.size(), Wire{0, 0});
  for (std::size_t x = 0; x < wires.size(); ++x) {
    next[perm.dest(x)] = wires[x];
  }
  wires = std::move(next);
}

}  // namespace

GateLevelResult GateLevelSwitchBase::evaluate(const BitVec& valid,
                                              const BitVec& data) const {
  gates::EvalScratch scratch;
  GateLevelResult res;
  evaluate(valid, data, scratch, res);
  return res;
}

void GateLevelSwitchBase::evaluate(const BitVec& valid, const BitVec& data,
                                   gates::EvalScratch& scratch,
                                   GateLevelResult& res) const {
  PCS_REQUIRE(valid.size() == n_ && data.size() == n_, "GateLevelSwitch width");
  // Stage the inputs straight into the lane buffer (lane 0 only) instead of
  // round-tripping through a BitVec.
  scratch.lanes.resize(2 * n_);
  for (std::size_t i = 0; i < n_; ++i) {
    scratch.lanes[i] = valid.get(i) ? 1u : 0u;
    scratch.lanes[n_ + i] = data.get(i) ? 1u : 0u;
  }
  gates::Evaluator eval(circuit_);
  const std::vector<std::uint64_t>& out = eval.evaluate_lanes(scratch.lanes, scratch);
  if (res.data.size() != n_) res.data = BitVec(n_); else res.data.fill(false);
  if (res.valid.size() != n_) res.valid = BitVec(n_); else res.valid.fill(false);
  for (std::size_t j = 0; j < n_; ++j) {
    if ((out[j] & 1u) != 0) res.data.set(j, true);
    if ((out[n_ + j] & 1u) != 0) res.valid.set(j, true);
  }
}

std::uint32_t GateLevelSwitchBase::data_path_depth() const {
  auto depths = circuit_.output_depths_from(data_inputs_);
  std::int64_t best = 0;
  for (std::size_t j = 0; j < n_; ++j) best = std::max(best, depths[j]);
  return static_cast<std::uint32_t>(best);
}

std::uint32_t GateLevelSwitchBase::control_path_depth() const {
  auto depths = circuit_.output_depths_from(valid_inputs_);
  std::int64_t best = 0;
  for (std::int64_t d : depths) best = std::max(best, d);
  return static_cast<std::uint32_t>(best);
}

GateLevelRevsortSwitch::GateLevelRevsortSwitch(std::size_t n)
    : GateLevelSwitchBase(n) {
  side_ = isqrt(n);
  PCS_REQUIRE(side_ * side_ == n && is_pow2(side_), "GateLevelRevsortSwitch shape");
  const std::size_t v = side_;

  for (std::size_t i = 0; i < n; ++i) valid_inputs_.push_back(circuit_.add_input());
  for (std::size_t i = 0; i < n; ++i) data_inputs_.push_back(circuit_.add_input());

  std::vector<Wire> wires(n);
  for (std::size_t x = 0; x < n; ++x) wires[x] = Wire{valid_inputs_[x], data_inputs_[x]};

  hyper::HyperCircuit chip(v);

  instantiate_stage(circuit_, chip.circuit(), v, v, wires);  // stage 1
  apply_wiring(transpose_wiring(v), wires);
  instantiate_stage(circuit_, chip.circuit(), v, v, wires);  // stage 2
  apply_wiring(rev_rotate_transpose_wiring(v), wires);       // shifters + transpose
  instantiate_stage(circuit_, chip.circuit(), v, v, wires);  // stage 3

  // Outputs in row-major order: position i*v + j is stage-3 chip j, pin i.
  for (std::size_t i = 0; i < v; ++i) {
    for (std::size_t j = 0; j < v; ++j) circuit_.mark_output(wires[j * v + i].data);
  }
  for (std::size_t i = 0; i < v; ++i) {
    for (std::size_t j = 0; j < v; ++j) circuit_.mark_output(wires[j * v + i].valid);
  }
}

GateLevelColumnsortSwitch::GateLevelColumnsortSwitch(std::size_t r, std::size_t s)
    : GateLevelSwitchBase(r * s), r_(r), s_(s) {
  PCS_REQUIRE(s > 0 && r % s == 0, "GateLevelColumnsortSwitch shape");
  const std::size_t n = r * s;

  for (std::size_t i = 0; i < n; ++i) valid_inputs_.push_back(circuit_.add_input());
  for (std::size_t i = 0; i < n; ++i) data_inputs_.push_back(circuit_.add_input());

  std::vector<Wire> wires(n);
  for (std::size_t x = 0; x < n; ++x) wires[x] = Wire{valid_inputs_[x], data_inputs_[x]};

  hyper::HyperCircuit chip(r);

  instantiate_stage(circuit_, chip.circuit(), s, r, wires);  // stage 1
  apply_wiring(cm_to_rm_wiring(r, s), wires);
  instantiate_stage(circuit_, chip.circuit(), s, r, wires);  // stage 2

  // Outputs in row-major order: position i*s + j is stage-2 chip j, pin i.
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < s; ++j) circuit_.mark_output(wires[j * r + i].data);
  }
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < s; ++j) circuit_.mark_output(wires[j * r + i].valid);
  }
}

}  // namespace pcs::sw
