// End-to-end gate-level realizations of the multichip switches: every
// hyperconcentrator chip is one instantiation of the reconstructed
// HyperCircuit, inter-stage wiring is pure node renaming, and the hardwired
// barrel shifters of the Revsort design are wiring too.
//
// This is the strongest executable form of the paper's delay theorems: the
// *measured* longest data-input-to-data-output gate path of the composed
// circuit equals
//     3 * 2 lg sqrt(n) = 3 lg n        (Revsort switch),
//     2 * 2 lg r       = 4 beta lg n   (Columnsort switch),
// with the O(1) pad terms excluded exactly as the circuits exclude pads.
// Functional equivalence with the behavioural switches is established by
// evaluating both on the same inputs (see tests/test_gate_level_switch.cpp).
//
// Gate counts grow as (stages * chips_per_stage * w^2); keep n modest
// (<= 1024 for Revsort, r <= 256 for Columnsort) when instantiating.
#pragma once

#include <cstdint>
#include <vector>

#include "gates/circuit.hpp"
#include "gates/evaluator.hpp"
#include "plan/switch_plan.hpp"
#include "switch/wiring.hpp"
#include "util/bitvec.hpp"

namespace pcs::sw {

/// Result of pushing one setup + one data bit through a gate-level switch.
struct GateLevelResult {
  BitVec data;   ///< data bit observed on each of the n output positions
  BitVec valid;  ///< valid bit observed on each of the n output positions
};

class GateLevelSwitchBase {
 public:
  virtual ~GateLevelSwitchBase() = default;

  std::size_t n() const noexcept { return n_; }
  const gates::Circuit& circuit() const noexcept { return circuit_; }

  /// Evaluate one setup: per-input valid bits and one payload bit each.
  /// Outputs are in the switch's output order (row-major / column-major as
  /// the design dictates), full width n.
  GateLevelResult evaluate(const BitVec& valid, const BitVec& data) const;

  /// Same, reusing caller buffers across calls (for evaluation loops).
  void evaluate(const BitVec& valid, const BitVec& data,
                gates::EvalScratch& scratch, GateLevelResult& out) const;

  /// Longest gate path from any payload (data) input to any data output:
  /// the message delay of the composed switch, excluding I/O pads.
  std::uint32_t data_path_depth() const;

  /// Longest gate path from any valid input to any output (setup latency).
  std::uint32_t control_path_depth() const;

  std::size_t gate_count() const { return circuit_.gate_count(); }

 protected:
  explicit GateLevelSwitchBase(std::size_t n) : n_(n) {}

  /// Instantiate the plan's stage sequence: one HyperCircuit per chip per
  /// stage, each inter-stage link as pure node renaming (the in_src
  /// gather), outputs in readout order.  Requires a fault-free plan whose
  /// links feed every wire from a real upstream wire (every family except
  /// full Columnsort's widened pad stage).
  void build_from_plan(const plan::SwitchPlan& plan);

  std::size_t n_;
  gates::Circuit circuit_;
  std::vector<gates::NodeId> valid_inputs_;
  std::vector<gates::NodeId> data_inputs_;
};

/// Gate-level realization of any compiled plan with purely permutational
/// links: Revsort, Columnsort, and every multipass shape all build through
/// this one walk of the plan's stages.
class GateLevelPlanSwitch : public GateLevelSwitchBase {
 public:
  explicit GateLevelPlanSwitch(const plan::SwitchPlan& plan)
      : GateLevelSwitchBase(plan.n) {
    build_from_plan(plan);
  }
};

/// Gate-level Revsort switch: three stages of side-by-side chips, transpose
/// and rev-rotate wiring between them, outputs in row-major order.
class GateLevelRevsortSwitch : public GateLevelSwitchBase {
 public:
  /// n = side^2, side a power of two.
  explicit GateLevelRevsortSwitch(std::size_t n);

  std::size_t side() const noexcept { return side_; }

 private:
  std::size_t side_;
};

/// Gate-level Columnsort switch: two stages of r-wide chips with the CM->RM
/// wiring between them, outputs in row-major order.
class GateLevelColumnsortSwitch : public GateLevelSwitchBase {
 public:
  GateLevelColumnsortSwitch(std::size_t r, std::size_t s);

  std::size_t r() const noexcept { return r_; }
  std::size_t s() const noexcept { return s_; }

 private:
  std::size_t r_;
  std::size_t s_;
};

}  // namespace pcs::sw
